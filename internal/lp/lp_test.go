package lp

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/mat"
)

func TestSimpleMinimization(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 4, x <= 2, x,y >= 0. Optimum at (0,4): -8.
	p := NewProblem(2)
	p.SetObjective([]float64{-1, -2})
	p.SetBounds(0, 0, math.Inf(1))
	p.SetBounds(1, 0, math.Inf(1))
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 0}, LE, 2)
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-8)) > 1e-8 {
		t.Errorf("objective = %v, want -8 (x=%v)", sol.Objective, sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y  s.t. x + 2y = 3, x,y >= 0. Optimum at (0, 1.5): 1.5.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.SetBounds(0, 0, math.Inf(1))
	p.SetBounds(1, 0, math.Inf(1))
	p.AddConstraint([]float64{1, 2}, EQ, 3)
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-1.5) > 1e-8 {
		t.Errorf("objective = %v, want 1.5", sol.Objective)
	}
}

func TestGEConstraint(t *testing.T) {
	// min 2x + 3y  s.t. x + y >= 10, x >= 0, y >= 0. Optimum (10,0): 20.
	p := NewProblem(2)
	p.SetObjective([]float64{2, 3})
	p.SetBounds(0, 0, math.Inf(1))
	p.SetBounds(1, 0, math.Inf(1))
	p.AddConstraint([]float64{1, 1}, GE, 10)
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-20) > 1e-8 {
		t.Errorf("objective = %v, want 20", sol.Objective)
	}
}

func TestFreeVariables(t *testing.T) {
	// min x subject to x >= -5 expressed as a row (variable itself free).
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{1}, GE, -5)
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[0]-(-5)) > 1e-8 {
		t.Errorf("x = %v, want -5", sol.X[0])
	}
}

func TestNegativeBounds(t *testing.T) {
	// min x + y over the box [-3,-1] × [-2,5].
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.SetBounds(0, -3, -1)
	p.SetBounds(1, -2, 5)
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-5)) > 1e-8 {
		t.Errorf("objective = %v, want -5 (x=%v)", sol.Objective, sol.X)
	}
}

func TestUpperBoundOnlyVariable(t *testing.T) {
	// max x (min -x) with x <= 7 and a row x >= 0.
	p := NewProblem(1)
	p.SetObjective([]float64{-1})
	p.SetBounds(0, math.Inf(-1), 7)
	p.AddConstraint([]float64{1}, GE, 0)
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[0]-7) > 1e-8 {
		t.Errorf("x = %v, want 7", sol.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 4)
	if sol := p.Solve(); sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1}) // minimize a free variable
	p.AddConstraint([]float64{1}, LE, 10)
	if sol := p.Solve(); sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestDegenerate(t *testing.T) {
	// Klee-Minty-flavoured degenerate problem; checks anti-cycling.
	p := NewProblem(3)
	p.SetObjective([]float64{-100, -10, -1})
	for i := 0; i < 3; i++ {
		p.SetBounds(i, 0, math.Inf(1))
	}
	p.AddConstraint([]float64{1, 0, 0}, LE, 1)
	p.AddConstraint([]float64{20, 1, 0}, LE, 100)
	p.AddConstraint([]float64{200, 20, 1}, LE, 10000)
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-10000)) > 1e-6 {
		t.Errorf("objective = %v, want -10000", sol.Objective)
	}
}

func TestZeroObjective(t *testing.T) {
	// Pure feasibility problem.
	p := NewProblem(2)
	p.AddConstraint([]float64{1, 1}, EQ, 2)
	p.AddConstraint([]float64{1, -1}, EQ, 0)
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[0]-1) > 1e-8 || math.Abs(sol.X[1]-1) > 1e-8 {
		t.Errorf("x = %v, want [1 1]", sol.X)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// The second equality duplicates the first; phase 1 must cope with the
	// redundant artificial row.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 2})
	p.AddConstraint([]float64{1, 1}, EQ, 2)
	p.AddConstraint([]float64{2, 2}, EQ, 4)
	p.SetBounds(0, 0, math.Inf(1))
	p.SetBounds(1, 0, math.Inf(1))
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-2) > 1e-8 {
		t.Errorf("objective = %v, want 2 at (2,0)", sol.Objective)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.SetBounds(0, 0, 10)
	q := p.Clone()
	q.SetBounds(0, 5, 10)
	if got := p.Solve().X[0]; math.Abs(got) > 1e-9 {
		t.Errorf("original mutated: x = %v", got)
	}
	if got := q.Solve().X[0]; math.Abs(got-5) > 1e-9 {
		t.Errorf("clone bound ignored: x = %v", got)
	}
}

func TestMinimizeHelper(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{1}, GE, 3)
	x, obj, err := p.Minimize()
	if err != nil || math.Abs(obj-3) > 1e-9 || math.Abs(x[0]-3) > 1e-9 {
		t.Errorf("Minimize = %v %v %v", x, obj, err)
	}
	bad := NewProblem(1)
	bad.SetObjective([]float64{1})
	if _, _, err := bad.Minimize(); err == nil {
		t.Error("expected error on unbounded problem")
	}
}

// TestRandomAgainstVertexEnumeration cross-checks the simplex against brute
// force vertex enumeration on random bounded 2-D and 3-D problems.
func TestRandomAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(2) // 2 or 3 dims
		nrows := n + 1 + rng.Intn(5)

		// Box [-B, B]^n plus random halfspaces kept feasible at the origin.
		B := 1.0 + rng.Float64()*4
		type hs struct {
			a []float64
			b float64
		}
		var rowsets []hs
		for i := 0; i < n; i++ {
			e := make([]float64, n)
			e[i] = 1
			rowsets = append(rowsets, hs{a: e, b: B})
			e2 := make([]float64, n)
			e2[i] = -1
			rowsets = append(rowsets, hs{a: e2, b: B})
		}
		for i := 0; i < nrows; i++ {
			a := make([]float64, n)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			rowsets = append(rowsets, hs{a: a, b: 0.1 + rng.Float64()*3})
		}
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.NormFloat64()
		}

		p := NewProblem(n)
		p.SetObjective(c)
		for _, r := range rowsets {
			p.AddConstraint(r.a, LE, r.b)
		}
		sol := p.Solve()
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status = %v (problem contains origin)", trial, sol.Status)
		}

		// Brute force: every n-subset of active constraints defines a
		// candidate vertex; keep feasible ones and take the best.
		best := math.Inf(1)
		idx := make([]int, n)
		var rec func(start, k int)
		rec = func(start, k int) {
			if k == n {
				a := mat.New(n, n)
				b := make(mat.Vec, n)
				for r, ri := range idx {
					copy(a.Data[r*n:(r+1)*n], rowsets[ri].a)
					b[r] = rowsets[ri].b
				}
				x, err := mat.Solve(a, b)
				if err != nil {
					return
				}
				for _, r := range rowsets {
					s := 0.0
					for j := range x {
						s += r.a[j] * x[j]
					}
					if s > r.b+1e-7 {
						return
					}
				}
				obj := 0.0
				for j := range x {
					obj += c[j] * x[j]
				}
				if obj < best {
					best = obj
				}
				return
			}
			for i := start; i < len(rowsets); i++ {
				idx[k] = i
				rec(i+1, k+1)
			}
		}
		rec(0, 0)

		if math.Abs(sol.Objective-best) > 1e-6*(1+math.Abs(best)) {
			t.Fatalf("trial %d: simplex %v vs brute force %v", trial, sol.Objective, best)
		}
		// The reported X must be feasible.
		for _, r := range rowsets {
			s := 0.0
			for j := range sol.X {
				s += r.a[j] * sol.X[j]
			}
			if s > r.b+1e-7 {
				t.Fatalf("trial %d: solution infeasible: %v", trial, sol.X)
			}
		}
	}
}
