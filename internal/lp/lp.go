// Package lp implements a dense two-phase simplex solver for linear
// programs. It is the optimization kernel used by the polytope algebra
// (support functions, emptiness, redundancy), the robust MPC controller
// (1-norm objectives become LPs), and the branch-and-bound MIP solver.
//
// Problems are stated over free or bounded variables with ≤ / ≥ / =
// constraint rows and are minimized. The solver converts to equality
// standard form internally, runs phase 1 with artificial variables, and
// prices with Dantzig's rule, falling back to Bland's rule to guarantee
// termination on degenerate instances.
//
// The solver targets the small dense programs arising in this repository
// (tens of variables, at most a few hundred rows); it favors clarity and
// numerical robustness over large-scale performance.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // ≤
	GE              // ≥
	EQ              // =
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ErrNotOptimal is returned by helpers that require an optimal solution.
var ErrNotOptimal = errors.New("lp: no optimal solution")

type row struct {
	coeffs []float64
	sense  Sense
	rhs    float64
}

// Problem is a linear program: minimize c·x subject to constraint rows and
// per-variable bounds. Variables are free (−∞, +∞) by default.
type Problem struct {
	n     int
	c     []float64
	rows  []row
	lower []float64
	upper []float64
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64 // values of the original variables (valid when Optimal)
	Objective float64   // c·X (valid when Optimal)
}

// NewProblem returns a problem with n free variables and a zero objective.
func NewProblem(n int) *Problem {
	p := &Problem{n: n, c: make([]float64, n), lower: make([]float64, n), upper: make([]float64, n)}
	for i := 0; i < n; i++ {
		p.lower[i] = math.Inf(-1)
		p.upper[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.n }

// NumRows returns the number of constraint rows.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjective sets the cost vector c (minimized). len(c) must equal NumVars.
func (p *Problem) SetObjective(c []float64) {
	if len(c) != p.n {
		panic(fmt.Sprintf("lp: SetObjective: got %d coefficients, want %d", len(c), p.n))
	}
	copy(p.c, c)
}

// Bounds returns variable i's current [lo, hi] bounds.
func (p *Problem) Bounds(i int) (lo, hi float64) { return p.lower[i], p.upper[i] }

// SetBounds restricts variable i to [lo, hi]. Use ±Inf for one-sided bounds.
func (p *Problem) SetBounds(i int, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("lp: SetBounds(%d): lower %g > upper %g", i, lo, hi))
	}
	p.lower[i] = lo
	p.upper[i] = hi
}

// AddConstraint appends the row coeffs·x (sense) rhs. The coefficient slice
// is copied.
func (p *Problem) AddConstraint(coeffs []float64, sense Sense, rhs float64) {
	if len(coeffs) != p.n {
		panic(fmt.Sprintf("lp: AddConstraint: got %d coefficients, want %d", len(coeffs), p.n))
	}
	cc := make([]float64, p.n)
	copy(cc, coeffs)
	p.rows = append(p.rows, row{coeffs: cc, sense: sense, rhs: rhs})
}

// Clone returns an independent copy of the problem, useful for
// branch-and-bound which adds bounds per node.
func (p *Problem) Clone() *Problem {
	q := NewProblem(p.n)
	copy(q.c, p.c)
	copy(q.lower, p.lower)
	copy(q.upper, p.upper)
	q.rows = make([]row, len(p.rows))
	for i, r := range p.rows {
		cc := make([]float64, len(r.coeffs))
		copy(cc, r.coeffs)
		q.rows[i] = row{coeffs: cc, sense: r.sense, rhs: r.rhs}
	}
	return q
}

const (
	eps       = 1e-9
	iterCap   = 20000
	blandTrip = 2000 // switch to Bland's rule after this many Dantzig pivots
)

// varMap describes how original variable j is reconstructed from the
// nonnegative standard-form variables.
type varMap struct {
	kind  int // 0: shifted (x = shift + y), 1: mirrored (x = shift − y), 2: split (x = y1 − y2)
	col   int
	col2  int
	shift float64
}

// Solve minimizes the objective and returns the solution. The problem is
// not modified and may be solved repeatedly (e.g. with different bounds via
// Clone).
//
// Solve is a thin wrapper over a one-shot compiled Solver; callers that
// resolve the same structure with changing right-hand sides or bounds
// (MPC steps, branch-and-bound nodes) should compile once with NewSolver
// and reuse it.
func (p *Problem) Solve() *Solution {
	sol := NewSolver(p).Solve()
	out := &Solution{Status: sol.Status, Objective: sol.Objective}
	if sol.Status == Optimal {
		out.X = append([]float64(nil), sol.X...)
	}
	return out
}

// Minimize is a convenience wrapper that returns X and objective for an
// optimal solve, or an error describing the failure status.
func (p *Problem) Minimize() ([]float64, float64, error) {
	sol := p.Solve()
	if sol.Status != Optimal {
		return nil, 0, fmt.Errorf("%w: status %v", ErrNotOptimal, sol.Status)
	}
	return sol.X, sol.Objective, nil
}
