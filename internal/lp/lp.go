// Package lp implements a dense two-phase simplex solver for linear
// programs. It is the optimization kernel used by the polytope algebra
// (support functions, emptiness, redundancy), the robust MPC controller
// (1-norm objectives become LPs), and the branch-and-bound MIP solver.
//
// Problems are stated over free or bounded variables with ≤ / ≥ / =
// constraint rows and are minimized. The solver converts to equality
// standard form internally, runs phase 1 with artificial variables, and
// prices with Dantzig's rule, falling back to Bland's rule to guarantee
// termination on degenerate instances.
//
// The solver targets the small dense programs arising in this repository
// (tens of variables, at most a few hundred rows); it favors clarity and
// numerical robustness over large-scale performance.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // ≤
	GE              // ≥
	EQ              // =
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ErrNotOptimal is returned by helpers that require an optimal solution.
var ErrNotOptimal = errors.New("lp: no optimal solution")

type row struct {
	coeffs []float64
	sense  Sense
	rhs    float64
}

// Problem is a linear program: minimize c·x subject to constraint rows and
// per-variable bounds. Variables are free (−∞, +∞) by default.
type Problem struct {
	n     int
	c     []float64
	rows  []row
	lower []float64
	upper []float64
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64 // values of the original variables (valid when Optimal)
	Objective float64   // c·X (valid when Optimal)
}

// NewProblem returns a problem with n free variables and a zero objective.
func NewProblem(n int) *Problem {
	p := &Problem{n: n, c: make([]float64, n), lower: make([]float64, n), upper: make([]float64, n)}
	for i := 0; i < n; i++ {
		p.lower[i] = math.Inf(-1)
		p.upper[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.n }

// NumRows returns the number of constraint rows.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjective sets the cost vector c (minimized). len(c) must equal NumVars.
func (p *Problem) SetObjective(c []float64) {
	if len(c) != p.n {
		panic(fmt.Sprintf("lp: SetObjective: got %d coefficients, want %d", len(c), p.n))
	}
	copy(p.c, c)
}

// SetBounds restricts variable i to [lo, hi]. Use ±Inf for one-sided bounds.
func (p *Problem) SetBounds(i int, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("lp: SetBounds(%d): lower %g > upper %g", i, lo, hi))
	}
	p.lower[i] = lo
	p.upper[i] = hi
}

// AddConstraint appends the row coeffs·x (sense) rhs. The coefficient slice
// is copied.
func (p *Problem) AddConstraint(coeffs []float64, sense Sense, rhs float64) {
	if len(coeffs) != p.n {
		panic(fmt.Sprintf("lp: AddConstraint: got %d coefficients, want %d", len(coeffs), p.n))
	}
	cc := make([]float64, p.n)
	copy(cc, coeffs)
	p.rows = append(p.rows, row{coeffs: cc, sense: sense, rhs: rhs})
}

// Clone returns an independent copy of the problem, useful for
// branch-and-bound which adds bounds per node.
func (p *Problem) Clone() *Problem {
	q := NewProblem(p.n)
	copy(q.c, p.c)
	copy(q.lower, p.lower)
	copy(q.upper, p.upper)
	q.rows = make([]row, len(p.rows))
	for i, r := range p.rows {
		cc := make([]float64, len(r.coeffs))
		copy(cc, r.coeffs)
		q.rows[i] = row{coeffs: cc, sense: r.sense, rhs: r.rhs}
	}
	return q
}

const (
	eps       = 1e-9
	iterCap   = 20000
	blandTrip = 2000 // switch to Bland's rule after this many Dantzig pivots
)

// varMap describes how original variable j is reconstructed from the
// nonnegative standard-form variables.
type varMap struct {
	kind  int // 0: shifted (x = shift + y), 1: mirrored (x = shift − y), 2: split (x = y1 − y2)
	col   int
	col2  int
	shift float64
}

// Solve minimizes the objective and returns the solution. The problem is
// not modified and may be solved repeatedly (e.g. with different bounds via
// Clone).
func (p *Problem) Solve() *Solution {
	// --- Build equality standard form over nonnegative variables. ---
	maps := make([]varMap, p.n)
	ncols := 0
	type extraRow struct {
		col int
		ub  float64
	}
	var uppers []extraRow // rows y_col ≤ ub for doubly bounded variables
	for j := 0; j < p.n; j++ {
		lo, hi := p.lower[j], p.upper[j]
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			maps[j] = varMap{kind: 2, col: ncols, col2: ncols + 1}
			ncols += 2
		case !math.IsInf(lo, -1):
			maps[j] = varMap{kind: 0, col: ncols, shift: lo}
			if !math.IsInf(hi, 1) {
				uppers = append(uppers, extraRow{col: ncols, ub: hi - lo})
			}
			ncols++
		default: // upper bound only
			maps[j] = varMap{kind: 1, col: ncols, shift: hi}
			ncols++
		}
	}

	nrows := len(p.rows) + len(uppers)
	// Count slack columns.
	slackCols := 0
	for _, r := range p.rows {
		if r.sense != EQ {
			slackCols++
		}
	}
	slackCols += len(uppers)
	total := ncols + slackCols

	a := make([][]float64, nrows)
	b := make([]float64, nrows)
	for i := range a {
		a[i] = make([]float64, total)
	}
	slack := ncols
	for i, r := range p.rows {
		rhs := r.rhs
		for j, coef := range r.coeffs {
			if coef == 0 {
				continue
			}
			m := maps[j]
			switch m.kind {
			case 0:
				a[i][m.col] += coef
				rhs -= coef * m.shift
			case 1:
				a[i][m.col] -= coef
				rhs -= coef * m.shift
			case 2:
				a[i][m.col] += coef
				a[i][m.col2] -= coef
			}
		}
		switch r.sense {
		case LE:
			a[i][slack] = 1
			slack++
		case GE:
			a[i][slack] = -1
			slack++
		}
		b[i] = rhs
	}
	for k, ur := range uppers {
		i := len(p.rows) + k
		a[i][ur.col] = 1
		a[i][slack] = 1
		slack++
		b[i] = ur.ub
	}

	// Objective over standard-form columns. Constant terms from variable
	// shifts are irrelevant to the argmin and the final objective is
	// recomputed as c·x below.
	cost := make([]float64, total)
	for j, coef := range p.c {
		if coef == 0 {
			continue
		}
		m := maps[j]
		switch m.kind {
		case 0:
			cost[m.col] += coef
		case 1:
			cost[m.col] -= coef
		case 2:
			cost[m.col] += coef
			cost[m.col2] -= coef
		}
	}

	y, status := simplexSolve(a, b, cost)
	if status != Optimal {
		return &Solution{Status: status}
	}

	x := make([]float64, p.n)
	obj := 0.0
	for j := 0; j < p.n; j++ {
		m := maps[j]
		switch m.kind {
		case 0:
			x[j] = m.shift + y[m.col]
		case 1:
			x[j] = m.shift - y[m.col]
		case 2:
			x[j] = y[m.col] - y[m.col2]
		}
		obj += p.c[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}
}

// simplexSolve minimizes cost·y subject to a·y = b, y ≥ 0 using the
// two-phase tableau simplex method. It returns the optimal y.
//
// Rows whose slack column can serve as the initial basic variable (a +1
// slack with nonnegative right-hand side) skip phase-1 artificials, which
// keeps the tableau small for the inequality-heavy programs posed by the
// polytope and MPC layers.
func simplexSolve(a [][]float64, b, cost []float64) ([]float64, Status) {
	m := len(a)
	if m == 0 {
		// No constraints: optimum is 0 unless some cost is negative
		// (then the problem is unbounded below since y ≥ 0 only).
		for _, c := range cost {
			if c < -eps {
				return nil, Unbounded
			}
		}
		return make([]float64, len(cost)), Optimal
	}
	n := len(a[0])

	// Normalize to b ≥ 0.
	for i := 0; i < m; i++ {
		if b[i] < 0 {
			b[i] = -b[i]
			for j := 0; j < n; j++ {
				a[i][j] = -a[i][j]
			}
		}
	}

	// A column j can seed the basis for row i if it is a unit column
	// (+1 in row i, 0 elsewhere). Slack columns of LE rows with b ≥ 0 have
	// exactly this shape. Count column support to find them.
	basisOf := make([]int, m)
	for i := range basisOf {
		basisOf[i] = -1
	}
	colRow := make([]int, n)  // row of the single nonzero, -1 if not unit
	colOnes := make([]int, n) // count of nonzeros
	for j := 0; j < n; j++ {
		colRow[j] = -1
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if a[i][j] != 0 {
				colOnes[j]++
				colRow[j] = i
			}
		}
	}
	for j := n - 1; j >= 0; j-- { // prefer later (slack) columns
		if colOnes[j] == 1 {
			i := colRow[j]
			if basisOf[i] == -1 && a[i][j] == 1 {
				basisOf[i] = j
			}
		}
	}
	nart := 0
	for i := 0; i < m; i++ {
		if basisOf[i] == -1 {
			nart++
		}
	}

	// Tableau with nart artificial columns appended, then rhs.
	width := n + nart + 1
	t := make([][]float64, m)
	basis := make([]int, m)
	art := n
	for i := 0; i < m; i++ {
		t[i] = make([]float64, width)
		copy(t[i], a[i])
		t[i][width-1] = b[i]
		if basisOf[i] >= 0 {
			basis[i] = basisOf[i]
		} else {
			t[i][art] = 1
			basis[i] = art
			art++
		}
	}
	ncols := n + nart

	// Phase 1: minimize the sum of artificials (skipped when none exist).
	artificial := func(j int) bool { return j >= n }
	if nart > 0 {
		z := make([]float64, width)
		for i := 0; i < m; i++ {
			if !artificial(basis[i]) {
				continue
			}
			for j := 0; j < width; j++ {
				z[j] -= t[i][j]
			}
		}
		// Basic columns must have zero reduced cost.
		for i := 0; i < m; i++ {
			z[basis[i]] = 0
		}
		if st := iterate(t, z, basis, ncols, nil); st != Optimal {
			return nil, st
		}
		if -z[width-1] > 1e-7 {
			return nil, Infeasible
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if !artificial(basis[i]) {
				continue
			}
			for j := 0; j < n; j++ {
				if math.Abs(t[i][j]) > 1e-7 {
					pivot(t, z, basis, i, j)
					break
				}
			}
			// If no pivot exists the row is redundant; the artificial stays
			// basic at value 0 and is excluded from phase-2 pricing.
		}
	}

	// Phase 2: rebuild reduced costs for the real objective.
	z2 := make([]float64, width)
	copy(z2, cost)
	for i := 0; i < m; i++ {
		j := basis[i]
		if artificial(j) {
			continue
		}
		cj := z2[j]
		if cj == 0 {
			continue
		}
		for k := 0; k < width; k++ {
			z2[k] -= cj * t[i][k]
		}
	}
	var blocked []bool
	if nart > 0 {
		blocked = make([]bool, ncols)
		for j := n; j < ncols; j++ {
			blocked[j] = true
		}
	}
	if st := iterate(t, z2, basis, ncols, blocked); st != Optimal {
		return nil, st
	}

	y := make([]float64, n)
	for i, j := range basis {
		if j < n {
			y[j] = t[i][width-1]
		}
	}
	return y, Optimal
}

// iterate runs primal simplex pivots on the tableau until optimality,
// unboundedness, or the iteration cap. blocked marks columns that must not
// enter the basis (nil means none).
func iterate(t [][]float64, z []float64, basis []int, ncols int, blocked []bool) Status {
	m := len(t)
	for iter := 0; iter < iterCap; iter++ {
		bland := iter > blandTrip
		// Entering column.
		enter := -1
		best := -eps
		for j := 0; j < ncols; j++ {
			if blocked != nil && blocked[j] {
				continue
			}
			if z[j] < best {
				if bland {
					enter = j
					break
				}
				best = z[j]
				enter = j
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Ratio test; ties broken toward the smallest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][ncols] / t[i][enter]
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		pivot(t, z, basis, leave, enter)
	}
	return IterLimit
}

// pivot performs a Gauss-Jordan pivot on tableau row r, column c.
func pivot(t [][]float64, z []float64, basis []int, r, c int) {
	pr := t[r]
	inv := 1 / pr[c]
	for j := range pr {
		pr[j] *= inv
	}
	pr[c] = 1 // avoid roundoff drift on the pivot itself
	for i := range t {
		if i == r {
			continue
		}
		f := t[i][c]
		if f == 0 {
			continue
		}
		ti := t[i]
		for j := range ti {
			ti[j] -= f * pr[j]
		}
		ti[c] = 0
	}
	f := z[c]
	if f != 0 {
		for j := range z {
			z[j] -= f * pr[j]
		}
		z[c] = 0
	}
	basis[r] = c
}

// Minimize is a convenience wrapper that returns X and objective for an
// optimal solve, or an error describing the failure status.
func (p *Problem) Minimize() ([]float64, float64, error) {
	sol := p.Solve()
	if sol.Status != Optimal {
		return nil, 0, fmt.Errorf("%w: status %v", ErrNotOptimal, sol.Status)
	}
	return sol.X, sol.Objective, nil
}
