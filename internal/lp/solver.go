package lp

import "math"

// This file implements the compiled parametric solver behind Problem.Solve
// and the hot resolve paths of the RMPC and MIP layers (DESIGN.md §5.3).
//
// A Solver separates *compile* from *solve*: the standard-form conversion
// (variable maps, slack layout, the constraint matrix, and the objective)
// depends only on the problem's structure, while the right-hand sides and
// the variable bounds are per-solve parameters. Compiling once and
// resolving with fresh parameters is what makes the RMPC's per-step LP an
// O(rows) refresh instead of a full rebuild, and lets branch-and-bound
// nodes share one compiled form.
//
// Warm starts: for programs in which every row carries a slack column (no
// equality rows — the shape of every polytope, RMPC, and MIP program in
// this repository), the final tableau's slack block is B⁻¹ up to the
// compiled slack signs. A new right-hand side therefore costs one O(m²)
// basis transform; if the transformed column stays nonnegative the
// previous basis is still optimal (zero pivots), otherwise the basis is
// primal-infeasible but dual-feasible and a dual-simplex loop repairs it.
// Any failure (iteration cap, basic artificials, equality rows) falls back
// to the cold two-phase path, so warm starts never change solvability.

// upperRow is a compiled "y_col ≤ hi − lo" row for a doubly bounded
// variable.
type upperRow struct {
	v   int // original variable index
	col int // standard-form column of the shifted variable
}

// boundClass encodes which bounds of a variable are finite; parametric
// bound changes must preserve it (the standard-form structure depends on
// it).
type boundClass uint8

const (
	classLower boundClass = 1 << iota // lower bound finite
	classUpper                        // upper bound finite
)

func classOf(lo, hi float64) boundClass {
	var c boundClass
	if !math.IsInf(lo, -1) {
		c |= classLower
	}
	if !math.IsInf(hi, 1) {
		c |= classUpper
	}
	return c
}

// program is the immutable compiled form of a Problem: everything about
// the standard-form conversion that does not depend on the right-hand
// sides or the bound values. Solvers forked from one compile share it.
type program struct {
	n  int // original variables
	m0 int // original constraint rows
	m  int // total rows = m0 + len(uppers)

	maps   []varMap
	class  []boundClass
	uppers []upperRow

	ncols  int // structural (variable) columns
	total  int // ncols + slack columns
	stride int // total + m + 1: flat tableau row stride (max artificials + rhs)

	rows     []row     // compiled copy of the original rows (coeffs shared, immutable)
	sf       []float64 // m × total flat standard-form matrix, slack entries included
	slackCol []int     // per row: its slack column, or −1 (EQ row)
	slackSgn []float64 // per row: +1 (LE / upper), −1 (GE), 0 (EQ)
	allSlack bool      // every row has a slack column: warm starts possible

	cost  []float64 // standard-form objective (len total)
	c     []float64 // original objective
	lower []float64 // compiled bounds
	upper []float64
}

// Solver is a compiled Problem plus a reusable solve workspace. It is the
// allocation-free resolve engine: after the first solve, subsequent solves
// with new parameters reuse every buffer and warm-start from the previous
// optimal basis.
//
// A Solver snapshots the Problem at NewSolver time; later mutations of the
// Problem are not seen. Solvers are not safe for concurrent use — use
// Fork to give each goroutine (or each deterministic call chain) its own
// workspace over the shared compiled form.
type Solver struct {
	p *program

	// Per-solve parameter bounds (active only while paramBounds is set).
	lo, hi      []float64
	paramBounds bool

	// Workspace (lazily allocated, then reused).
	shift []float64 // current shift per variable, derived from lo/hi
	b     []float64 // standard-form rhs (shift-adjusted, unnormalized)
	newb  []float64 // candidate warm rhs column

	t     []float64 // m × stride flat tableau
	basis []int
	z     []float64 // reduced-cost row (phase 2), kept across warm solves

	colRow  []int // cold-start unit-column scan
	colOnes []int
	basisOf []int
	blocked []bool

	// Warm-start state.
	warm   bool // tableau/basis/z hold an optimal basis for the compiled cost
	nart   int  // artificial columns in the stored tableau
	rhsCol int  // rhs column index in the stored tableau (= total + nart)
	pivots int  // pivots since the last cold solve (drift guard)

	y   []float64 // standard-form solution
	sol Solution  // reused result; sol.X aliases the x buffer below
	x   []float64

	stats SolveStats
}

// SolveStats counts which path solves on a Solver took — the direct
// evidence that a hot loop is actually warm-starting — and how many
// pivots each path spent.
type SolveStats struct {
	Cold       int // cold two-phase solves (first call, fallbacks, refactorizations)
	Warm       int // warm resolves from the previous basis (incl. zero-pivot hits)
	ColdPivots int // pivots spent in successful cold solves
	WarmPivots int // dual-simplex pivots spent in warm resolves
}

// Stats returns the solve-path counters accumulated since construction or
// Fork.
func (s *Solver) Stats() SolveStats { return s.stats }

// refactorEvery bounds the pivots applied to one tableau before a cold
// refactorization, so floating-point drift from long warm chains stays
// comparable to a handful of cold solves.
const refactorEvery = 1024

// NewSolver compiles p into a parametric solver. The problem's rows,
// objective, and bounds are snapshotted; solve-time parameters override
// the right-hand sides and bound values but not the structure.
func NewSolver(p *Problem) *Solver {
	pr := &program{
		n:     p.n,
		m0:    len(p.rows),
		maps:  make([]varMap, p.n),
		class: make([]boundClass, p.n),
		c:     append([]float64(nil), p.c...),
		lower: append([]float64(nil), p.lower...),
		upper: append([]float64(nil), p.upper...),
	}

	// Variable maps, mirroring Problem.Solve's historical construction
	// order exactly (cold solves must agree bitwise with the original
	// from-scratch path).
	ncols := 0
	for j := 0; j < p.n; j++ {
		lo, hi := p.lower[j], p.upper[j]
		pr.class[j] = classOf(lo, hi)
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			pr.maps[j] = varMap{kind: 2, col: ncols, col2: ncols + 1}
			ncols += 2
		case !math.IsInf(lo, -1):
			pr.maps[j] = varMap{kind: 0, col: ncols, shift: lo}
			if !math.IsInf(hi, 1) {
				pr.uppers = append(pr.uppers, upperRow{v: j, col: ncols})
			}
			ncols++
		default: // upper bound only
			pr.maps[j] = varMap{kind: 1, col: ncols, shift: hi}
			ncols++
		}
	}
	pr.ncols = ncols
	pr.m = pr.m0 + len(pr.uppers)

	slackCols := 0
	for _, r := range p.rows {
		if r.sense != EQ {
			slackCols++
		}
	}
	slackCols += len(pr.uppers)
	pr.total = ncols + slackCols
	pr.stride = pr.total + pr.m + 1

	// Rows are snapshotted; coefficient slices are copied so later
	// Problem mutations cannot reach the compiled form.
	pr.rows = make([]row, pr.m0)
	for i, r := range p.rows {
		cc := append([]float64(nil), r.coeffs...)
		pr.rows[i] = row{coeffs: cc, sense: r.sense, rhs: r.rhs}
	}

	// Flat standard-form matrix with the slack entries in place.
	pr.sf = make([]float64, pr.m*pr.total)
	pr.slackCol = make([]int, pr.m)
	pr.slackSgn = make([]float64, pr.m)
	pr.allSlack = true
	slack := ncols
	for i, r := range pr.rows {
		ro := pr.sf[i*pr.total : (i+1)*pr.total]
		for j, coef := range r.coeffs {
			if coef == 0 {
				continue
			}
			m := pr.maps[j]
			switch m.kind {
			case 0:
				ro[m.col] += coef
			case 1:
				ro[m.col] -= coef
			case 2:
				ro[m.col] += coef
				ro[m.col2] -= coef
			}
		}
		switch r.sense {
		case LE:
			ro[slack] = 1
			pr.slackCol[i], pr.slackSgn[i] = slack, 1
			slack++
		case GE:
			ro[slack] = -1
			pr.slackCol[i], pr.slackSgn[i] = slack, -1
			slack++
		default:
			pr.slackCol[i] = -1
			pr.allSlack = false
		}
	}
	for k, ur := range pr.uppers {
		i := pr.m0 + k
		ro := pr.sf[i*pr.total : (i+1)*pr.total]
		ro[ur.col] = 1
		ro[slack] = 1
		pr.slackCol[i], pr.slackSgn[i] = slack, 1
		slack++
	}

	// Standard-form objective.
	pr.cost = make([]float64, pr.total)
	for j, coef := range p.c {
		if coef == 0 {
			continue
		}
		m := pr.maps[j]
		switch m.kind {
		case 0:
			pr.cost[m.col] += coef
		case 1:
			pr.cost[m.col] -= coef
		case 2:
			pr.cost[m.col] += coef
			pr.cost[m.col2] -= coef
		}
	}

	return &Solver{p: pr}
}

// Fork returns a new Solver over the same compiled program with its own
// (lazily allocated) workspace and no warm-start state. Forks are how
// concurrent or determinism-sensitive callers share one compile: each
// fork's warm chain depends only on its own solve sequence.
func (s *Solver) Fork() *Solver { return &Solver{p: s.p} }

// ResetWarm discards the warm-start state so the next solve takes the cold
// two-phase path, exactly as on a freshly forked solver, while keeping
// every allocated buffer. Pooled workspaces call it between logical
// sessions: a reused solver's solve chain is then bitwise identical to a
// fresh fork's, because the cold path rebuilds the tableau from the
// compiled form. The solve-path stats keep accumulating across resets.
func (s *Solver) ResetWarm() {
	s.warm = false
	s.pivots = 0
}

// NumRows returns the number of original constraint rows (the length of
// the rhs parameter accepted by SolveRHS).
func (s *Solver) NumRows() int { return s.p.m0 }

// NumVars returns the number of original decision variables.
func (s *Solver) NumVars() int { return s.p.n }

// Solve resolves the compiled problem with its compiled right-hand sides
// and bounds. The returned Solution (and its X slice) is owned by the
// Solver and only valid until the next solve on it.
func (s *Solver) Solve() *Solution { return s.solve(nil) }

// SolveRHS resolves with new right-hand sides for the original constraint
// rows (len(rhs) must equal NumRows) and the compiled bounds. rhs is read,
// not retained. The returned Solution is owned by the Solver and only
// valid until the next solve on it.
func (s *Solver) SolveRHS(rhs []float64) *Solution {
	if len(rhs) != s.p.m0 {
		panic("lp: SolveRHS: rhs length mismatch")
	}
	return s.solve(rhs)
}

// SolveParams resolves with new right-hand sides and/or new variable
// bounds; nil keeps the compiled values. Bound changes must preserve each
// variable's boundedness class (which bounds are finite) — the compiled
// structure depends on it — otherwise ok is false and the caller must
// fall back to a fresh compile. A bound pair with lo > hi reports
// Infeasible directly.
func (s *Solver) SolveParams(rhs, lo, hi []float64) (sol *Solution, ok bool) {
	p := s.p
	if lo == nil && hi == nil {
		return s.solve(rhs), true
	}
	if lo == nil {
		lo = p.lower
	}
	if hi == nil {
		hi = p.upper
	}
	if len(lo) != p.n || len(hi) != p.n {
		panic("lp: SolveParams: bounds length mismatch")
	}
	for j := 0; j < p.n; j++ {
		if classOf(lo[j], hi[j]) != p.class[j] {
			return nil, false
		}
		if lo[j] > hi[j] {
			s.sol = Solution{Status: Infeasible}
			return &s.sol, true
		}
	}
	if s.lo == nil {
		s.lo = make([]float64, p.n)
		s.hi = make([]float64, p.n)
	}
	copy(s.lo, lo)
	copy(s.hi, hi)
	s.paramBounds = true
	sol = s.solve(rhs)
	s.paramBounds = false // revert to compiled bounds for later solves
	return sol, true
}

// bounds returns the active bound slices for this solve.
func (s *Solver) bounds() (lo, hi []float64) {
	if s.paramBounds {
		return s.lo, s.hi
	}
	return s.p.lower, s.p.upper
}

// prepare derives the per-solve shifts and the standard-form rhs b from
// the active parameters. The shift-adjustment accumulation order matches
// the historical Problem.Solve construction exactly.
func (s *Solver) prepare(rhs []float64) {
	p := s.p
	if s.shift == nil {
		s.shift = make([]float64, p.n)
		s.b = make([]float64, p.m)
		s.newb = make([]float64, p.m)
		s.y = make([]float64, p.total)
		s.x = make([]float64, p.n)
	}
	lo, hi := s.bounds()
	for j := 0; j < p.n; j++ {
		switch p.maps[j].kind {
		case 0:
			s.shift[j] = lo[j]
		case 1:
			s.shift[j] = hi[j]
		default:
			s.shift[j] = 0
		}
	}
	for i, r := range p.rows {
		b := r.rhs
		if rhs != nil {
			b = rhs[i]
		}
		for j, coef := range r.coeffs {
			if coef == 0 {
				continue
			}
			if p.maps[j].kind != 2 {
				b -= coef * s.shift[j]
			}
		}
		s.b[i] = b
	}
	for k, ur := range p.uppers {
		s.b[p.m0+k] = hi[ur.v] - lo[ur.v]
	}
}

// solve runs the warm path when possible and falls back to the cold
// two-phase simplex otherwise.
func (s *Solver) solve(rhs []float64) *Solution {
	p := s.p
	s.prepare(rhs)

	if p.m == 0 {
		// No constraints: the optimum is y = 0 unless some cost is
		// negative (unbounded below, since y ≥ 0 only).
		for _, c := range p.cost {
			if c < -eps {
				s.sol = Solution{Status: Unbounded}
				return &s.sol
			}
		}
		for i := range s.y {
			s.y[i] = 0
		}
		return s.extract()
	}

	if s.warm && p.allSlack && s.pivots < refactorEvery {
		p0 := s.pivots
		if st, ok := s.resolveWarm(); ok {
			s.stats.Warm++
			s.stats.WarmPivots += s.pivots - p0
			if st != Optimal {
				s.warm = false
				s.sol = Solution{Status: st}
				return &s.sol
			}
			return s.extract()
		}
	}

	s.stats.Cold++
	st := s.solveCold()
	if st != Optimal {
		s.warm = false
		s.sol = Solution{Status: st}
		return &s.sol
	}
	s.warm = true
	return s.extract()
}

// extract reads the standard-form solution out of the tableau (or the y
// buffer for the trivial no-row case), reconstructs the original
// variables, and fills the reusable Solution.
func (s *Solver) extract() *Solution {
	p := s.p
	if p.m > 0 {
		for i := range s.y {
			s.y[i] = 0
		}
		for i, j := range s.basis {
			if j < p.total {
				s.y[j] = s.t[i*p.stride+s.rhsCol]
			}
		}
	}
	obj := 0.0
	for j := 0; j < p.n; j++ {
		m := p.maps[j]
		switch m.kind {
		case 0:
			s.x[j] = s.shift[j] + s.y[m.col]
		case 1:
			s.x[j] = s.shift[j] - s.y[m.col]
		case 2:
			s.x[j] = s.y[m.col] - s.y[m.col2]
		}
		obj += p.c[j] * s.x[j]
	}
	s.sol = Solution{Status: Optimal, X: s.x, Objective: obj}
	return &s.sol
}

// resolveWarm attempts a warm resolve of the stored optimal basis with the
// current b. ok is false when the warm path cannot certify an answer and
// the caller must run the cold path.
func (s *Solver) resolveWarm() (Status, bool) {
	p := s.p
	// New rhs column in the current basis: the slack block of the tableau
	// is B⁻¹·D·Σ for the row-sign normalization D and slack signs Σ, so
	// B⁻¹·D·b = T_slack·Σ·b — the normalization cancels.
	for i := 0; i < p.m; i++ {
		acc := 0.0
		ti := s.t[i*p.stride:]
		for k := 0; k < p.m; k++ {
			if bk := s.b[k]; bk != 0 {
				acc += ti[p.slackCol[k]] * p.slackSgn[k] * bk
			}
		}
		s.newb[i] = acc
	}
	infeasRows := 0
	for i := 0; i < p.m; i++ {
		s.t[i*p.stride+s.rhsCol] = s.newb[i]
		if s.newb[i] < -eps {
			infeasRows++
		}
	}
	if infeasRows > 0 {
		// The basis is primal-infeasible but still dual-feasible (the
		// reduced costs do not depend on b): repair with dual simplex —
		// unless the parameter jump invalidated a large fraction of the
		// rows. Dual repair needs roughly one pivot per infeasible row on
		// a dense warm tableau, while the cold solve's early pivots hit a
		// still-sparse one; past about a third of the rows the cold path
		// is cheaper (measured on the RMPC program; trajectory-local
		// resolves have 0–2 infeasible rows and never take this exit).
		if infeasRows > p.m/3 {
			return Optimal, false
		}
		if st, ok := s.dualSimplex(); !ok || st != Optimal {
			return st, ok
		}
	}
	// A basic artificial at a nonzero level would mean the "optimum"
	// violates its row; only the cold phase-1 can decide feasibility then.
	for i, j := range s.basis {
		if j >= p.total && s.t[i*p.stride+s.rhsCol] > 1e-7 {
			return Optimal, false
		}
	}
	return Optimal, true
}

// dualSimplex restores primal feasibility of a dual-feasible basis after a
// rhs change. Entering columns are restricted to the non-artificial range.
// ok is false when the iteration cap is hit (cold fallback); an Infeasible
// status is trusted only after the cold path confirms it, so it is also
// reported with ok false.
func (s *Solver) dualSimplex() (Status, bool) {
	p := s.p
	for iter := 0; iter < iterCap; iter++ {
		// Leaving row: most negative rhs.
		leave := -1
		worst := -eps
		for i := 0; i < p.m; i++ {
			if v := s.t[i*p.stride+s.rhsCol]; v < worst {
				worst = v
				leave = i
			}
		}
		if leave == -1 {
			return Optimal, true
		}
		// Entering column: dual ratio test over negative entries of the
		// leaving row; ties toward the smallest column index. The scan
		// stops at p.total — artificials must not re-enter.
		lr := s.t[leave*p.stride : leave*p.stride+p.total]
		enter := -1
		best := math.Inf(1)
		for j, a := range lr {
			if a >= -eps {
				continue
			}
			r := s.z[j] / -a
			if r < best-eps || (r < best+eps && (enter == -1 || j < enter)) {
				best = r
				enter = j
			}
		}
		if enter == -1 {
			// Dual unbounded ⇒ primal infeasible; let the cold path
			// confirm rather than trusting a drifted tableau.
			return Infeasible, false
		}
		s.pivot(leave, enter)
	}
	return IterLimit, false
}

// solveCold runs the two-phase simplex from scratch on the prepared b,
// replicating the historical from-scratch solve arithmetic on the flat
// reused tableau. On Optimal it leaves the tableau, basis, and phase-2
// reduced costs in place as the warm-start state.
func (s *Solver) solveCold() Status {
	p := s.p
	if s.t == nil {
		s.t = make([]float64, p.m*p.stride)
		s.basis = make([]int, p.m)
		s.z = make([]float64, p.stride)
		s.colRow = make([]int, p.total)
		s.colOnes = make([]int, p.total)
		s.basisOf = make([]int, p.m)
		s.blocked = make([]bool, p.stride)
	}
	s.pivots = 0
	s.warm = false

	// Copy the compiled matrix in, normalizing to b ≥ 0.
	for i := 0; i < p.m; i++ {
		ti := s.t[i*p.stride : (i+1)*p.stride]
		copy(ti, p.sf[i*p.total:(i+1)*p.total])
		for j := p.total; j < len(ti); j++ {
			ti[j] = 0
		}
		b := s.b[i]
		if b < 0 {
			b = -b
			for j := 0; j < p.total; j++ {
				ti[j] = -ti[j]
			}
		}
		ti[len(ti)-1] = 0 // rhs position assigned below once nart is known
		s.newb[i] = b     // stash normalized rhs
	}

	// Unit-column scan: a column with a single +1 entry can seed the basis
	// of its row (slack columns of LE rows with b ≥ 0 have this shape).
	for j := 0; j < p.total; j++ {
		s.colRow[j] = -1
		s.colOnes[j] = 0
	}
	for i := 0; i < p.m; i++ {
		ti := s.t[i*p.stride:]
		for j := 0; j < p.total; j++ {
			if ti[j] != 0 {
				s.colOnes[j]++
				s.colRow[j] = i
			}
		}
	}
	for i := range s.basisOf {
		s.basisOf[i] = -1
	}
	for j := p.total - 1; j >= 0; j-- { // prefer later (slack) columns
		if s.colOnes[j] == 1 {
			i := s.colRow[j]
			if s.basisOf[i] == -1 && s.t[i*p.stride+j] == 1 {
				s.basisOf[i] = j
			}
		}
	}
	nart := 0
	for i := 0; i < p.m; i++ {
		if s.basisOf[i] == -1 {
			nart++
		}
	}
	s.nart = nart
	s.rhsCol = p.total + nart
	ncols := p.total + nart

	// Place artificials and the rhs column.
	art := p.total
	for i := 0; i < p.m; i++ {
		ti := s.t[i*p.stride:]
		ti[s.rhsCol] = s.newb[i]
		if s.basisOf[i] >= 0 {
			s.basis[i] = s.basisOf[i]
		} else {
			ti[art] = 1
			s.basis[i] = art
			art++
		}
	}

	// Phase 1: minimize the sum of artificials (skipped when none exist).
	if nart > 0 {
		for j := 0; j <= s.rhsCol; j++ {
			s.z[j] = 0
		}
		for i := 0; i < p.m; i++ {
			if s.basis[i] < p.total {
				continue
			}
			ti := s.t[i*p.stride:]
			for j := 0; j <= s.rhsCol; j++ {
				s.z[j] -= ti[j]
			}
		}
		for i := 0; i < p.m; i++ {
			s.z[s.basis[i]] = 0
		}
		if st := s.iterate(ncols, false); st != Optimal {
			return st
		}
		if -s.z[s.rhsCol] > 1e-7 {
			return Infeasible
		}
		// Drive remaining artificials out of the basis where possible; a
		// row with no pivot is redundant and its artificial stays basic at
		// zero, excluded from phase-2 pricing.
		for i := 0; i < p.m; i++ {
			if s.basis[i] < p.total {
				continue
			}
			ti := s.t[i*p.stride:]
			for j := 0; j < p.total; j++ {
				if math.Abs(ti[j]) > 1e-7 {
					s.pivot(i, j)
					break
				}
			}
		}
	}

	// Phase 2: rebuild reduced costs for the real objective.
	copy(s.z[:p.total], p.cost)
	for j := p.total; j <= s.rhsCol; j++ {
		s.z[j] = 0
	}
	for i := 0; i < p.m; i++ {
		j := s.basis[i]
		if j >= p.total {
			continue
		}
		cj := s.z[j]
		if cj == 0 {
			continue
		}
		ti := s.t[i*p.stride:]
		for k := 0; k <= s.rhsCol; k++ {
			s.z[k] -= cj * ti[k]
		}
	}
	useBlocked := nart > 0
	if useBlocked {
		for j := 0; j < p.total; j++ {
			s.blocked[j] = false
		}
		for j := p.total; j < ncols; j++ {
			s.blocked[j] = true
		}
	}
	if st := s.iterate(ncols, useBlocked); st != Optimal {
		return st
	}
	s.stats.ColdPivots += s.pivots
	s.pivots = 0 // fresh factorization: reset the drift guard
	return Optimal
}

// iterate runs primal simplex pivots until optimality, unboundedness, or
// the iteration cap, replicating the historical pricing exactly (Dantzig,
// then Bland after blandTrip pivots; ratio ties toward the smallest basis
// index).
func (s *Solver) iterate(ncols int, useBlocked bool) Status {
	p := s.p
	for iter := 0; iter < iterCap; iter++ {
		bland := iter > blandTrip
		enter := -1
		best := -eps
		for j := 0; j < ncols; j++ {
			if useBlocked && s.blocked[j] {
				continue
			}
			if s.z[j] < best {
				if bland {
					enter = j
					break
				}
				best = s.z[j]
				enter = j
			}
		}
		if enter == -1 {
			return Optimal
		}
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < p.m; i++ {
			ti := s.t[i*p.stride:]
			if ti[enter] > eps {
				ratio := ti[s.rhsCol] / ti[enter]
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave == -1 || s.basis[i] < s.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		s.pivot(leave, enter)
	}
	return IterLimit
}

// pivot performs a Gauss-Jordan pivot on tableau row r, column c, updating
// the reduced-cost row alongside. Only the logical width [0, rhsCol] is
// touched. The row update is the solver's single hottest loop (>80% of a
// resolve), hence the manual 4-way unrolling.
func (s *Solver) pivot(r, c int) {
	p := s.p
	w := s.rhsCol + 1
	pr := s.t[r*p.stride : r*p.stride+w]
	inv := 1 / pr[c]
	for j := range pr {
		pr[j] *= inv
	}
	pr[c] = 1 // avoid roundoff drift on the pivot itself
	for i := 0; i < p.m; i++ {
		if i == r {
			continue
		}
		ti := s.t[i*p.stride : i*p.stride+w]
		f := ti[c]
		if f == 0 {
			continue
		}
		axpyNeg(ti, pr, f)
		ti[c] = 0
	}
	f := s.z[c]
	if f != 0 {
		axpyNeg(s.z[:w], pr, f)
		s.z[c] = 0
	}
	s.basis[r] = c
	s.pivots++
}

// axpyNeg computes dst[j] -= f·src[j], 4-way unrolled. len(dst) must equal
// len(src).
func axpyNeg(dst, src []float64, f float64) {
	n := len(dst)
	src = src[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		d := dst[j : j+4 : j+4]
		s := src[j : j+4 : j+4]
		d[0] -= f * s[0]
		d[1] -= f * s[1]
		d[2] -= f * s[2]
		d[3] -= f * s[3]
	}
	for ; j < n; j++ {
		dst[j] -= f * src[j]
	}
}
