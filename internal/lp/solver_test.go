package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem builds a random bounded-feasible LP: a box around the
// origin, extra random halfspaces feasible at the origin, a random
// objective, and a mix of bound classes.
func randomProblem(rng *rand.Rand) (*Problem, []float64) {
	n := 2 + rng.Intn(4)
	p := NewProblem(n)
	c := make([]float64, n)
	for j := range c {
		c[j] = rng.NormFloat64()
	}
	p.SetObjective(c)
	for j := 0; j < n; j++ {
		switch rng.Intn(4) {
		case 0: // free
		case 1:
			p.SetBounds(j, -1-rng.Float64()*4, math.Inf(1))
		case 2:
			p.SetBounds(j, math.Inf(-1), 1+rng.Float64()*4)
		default:
			lo := -1 - rng.Float64()*4
			p.SetBounds(j, lo, lo+1+rng.Float64()*6)
		}
	}
	// Box rows keep the problem bounded regardless of variable bounds.
	B := 2.0 + rng.Float64()*6
	var rhs []float64
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		p.AddConstraint(e, LE, B)
		rhs = append(rhs, B)
		e2 := make([]float64, n)
		e2[j] = -1
		p.AddConstraint(e2, LE, B)
		rhs = append(rhs, B)
	}
	extra := 1 + rng.Intn(5)
	for i := 0; i < extra; i++ {
		a := make([]float64, n)
		for j := range a {
			a[j] = rng.NormFloat64()
		}
		b := 0.2 + rng.Float64()*3
		sense := LE
		if rng.Intn(3) == 0 {
			sense = GE
			b = -b
		}
		p.AddConstraint(a, sense, b)
		rhs = append(rhs, b)
	}
	return p, rhs
}

// checkAgainstColdSolve compares a Solver solution against a from-scratch
// Problem.Solve of an equivalent problem: status must match, objectives
// agree within 1e-7, and the reported X must be feasible.
func checkAgainstColdSolve(t *testing.T, trial, step int, q *Problem, got *Solution) {
	t.Helper()
	want := q.Solve()
	if got.Status != want.Status {
		t.Fatalf("trial %d step %d: status %v, cold solve says %v", trial, step, got.Status, want.Status)
	}
	if got.Status != Optimal {
		return
	}
	if d := math.Abs(got.Objective - want.Objective); d > 1e-7*(1+math.Abs(want.Objective)) {
		t.Fatalf("trial %d step %d: objective %v vs cold %v (Δ=%g)", trial, step, got.Objective, want.Objective, d)
	}
	for i := 0; i < q.NumRows(); i++ {
		r := q.rows[i]
		s := 0.0
		for j, a := range r.coeffs {
			s += a * got.X[j]
		}
		switch r.sense {
		case LE:
			if s > r.rhs+1e-6 {
				t.Fatalf("trial %d step %d: row %d violated: %v > %v", trial, step, i, s, r.rhs)
			}
		case GE:
			if s < r.rhs-1e-6 {
				t.Fatalf("trial %d step %d: row %d violated: %v < %v", trial, step, i, s, r.rhs)
			}
		case EQ:
			if math.Abs(s-r.rhs) > 1e-6 {
				t.Fatalf("trial %d step %d: row %d violated: %v != %v", trial, step, i, s, r.rhs)
			}
		}
	}
	for j := 0; j < q.NumVars(); j++ {
		lo, hi := q.Bounds(j)
		if got.X[j] < lo-1e-6 || got.X[j] > hi+1e-6 {
			t.Fatalf("trial %d step %d: x[%d]=%v outside [%v,%v]", trial, step, j, got.X[j], lo, hi)
		}
	}
}

// TestSolverWarmEquivalence drives one compiled Solver through sequences
// of randomized right-hand-side changes — the RMPC resolve pattern — and
// checks every warm resolve against an independent from-scratch solve.
func TestSolverWarmEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		p, rhs0 := randomProblem(rng)
		s := NewSolver(p)
		rhs := append([]float64(nil), rhs0...)
		for step := 0; step < 8; step++ {
			// Perturb the right-hand sides; occasionally push a row hard
			// negative so infeasible instances are exercised too.
			for i := range rhs {
				rhs[i] = rhs0[i] + rng.NormFloat64()*0.5
				if rng.Intn(40) == 0 {
					rhs[i] -= 20
				}
			}
			got := s.SolveRHS(rhs)

			q := p.Clone()
			for i, b := range rhs {
				q.rows[i].rhs = b
			}
			checkAgainstColdSolve(t, trial, step, q, got)
		}
	}
}

// TestSolverParamBoundsEquivalence exercises the branch-and-bound reuse
// pattern: one compiled Solver resolved under tightened variable bounds,
// compared against a fresh problem with the same bounds.
func TestSolverParamBoundsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		p, _ := randomProblem(rng)
		n := p.NumVars()
		s := NewSolver(p)
		lo := make([]float64, n)
		hi := make([]float64, n)
		for step := 0; step < 6; step++ {
			for j := 0; j < n; j++ {
				lo[j], hi[j] = p.Bounds(j)
				// Tighten within the same boundedness class.
				if !math.IsInf(lo[j], -1) {
					lo[j] += rng.Float64()
				}
				if !math.IsInf(hi[j], 1) {
					hi[j] -= rng.Float64()
				}
				if lo[j] > hi[j] {
					lo[j], hi[j] = hi[j], lo[j]
				}
			}
			got, ok := s.SolveParams(nil, lo, hi)
			if !ok {
				t.Fatalf("trial %d step %d: bounds class unexpectedly changed", trial, step)
			}

			q := p.Clone()
			for j := 0; j < n; j++ {
				q.SetBounds(j, lo[j], hi[j])
			}
			checkAgainstColdSolve(t, trial, step, q, got)
		}
		// A class change must be refused, not mis-solved.
		for j := 0; j < n; j++ {
			l, h := p.Bounds(j)
			if math.IsInf(l, -1) {
				lo2 := make([]float64, n)
				hi2 := make([]float64, n)
				for k := 0; k < n; k++ {
					lo2[k], hi2[k] = p.Bounds(k)
				}
				lo2[j] = 0
				if _, ok := s.SolveParams(nil, lo2, hi2); ok {
					t.Fatalf("trial %d: class change (var %d lower %v→0, hi %v) accepted", trial, j, l, h)
				}
				break
			}
		}
	}
}

// TestSolverMatchesProblemSolve pins the thin-wrapper contract: a one-shot
// Solver solve and Problem.Solve agree exactly on fresh problems.
func TestSolverMatchesProblemSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		p, _ := randomProblem(rng)
		a := p.Solve()
		b := NewSolver(p).Solve()
		if a.Status != b.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, a.Status, b.Status)
		}
		if a.Status == Optimal && a.Objective != b.Objective {
			t.Fatalf("trial %d: objective %v vs %v (must be identical arithmetic)", trial, a.Objective, b.Objective)
		}
	}
}

// TestSolverEqualityRowsFallBackCold verifies that programs with equality
// rows (no warm path) still resolve correctly through the solver.
func TestSolverEqualityRowsFallBackCold(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.SetBounds(0, 0, math.Inf(1))
	p.SetBounds(1, 0, math.Inf(1))
	p.AddConstraint([]float64{1, 2}, EQ, 3)
	s := NewSolver(p)
	for step := 0; step < 4; step++ {
		b := 3.0 + float64(step)
		sol := s.SolveRHS([]float64{b})
		if sol.Status != Optimal {
			t.Fatalf("step %d: status %v", step, sol.Status)
		}
		if want := b / 2; math.Abs(sol.Objective-want) > 1e-9 {
			t.Fatalf("step %d: objective %v, want %v", step, sol.Objective, want)
		}
	}
}

// TestSolverReusedXBuffer documents the Solution ownership contract: the X
// slice is reused across solves on the same Solver.
func TestSolverReusedXBuffer(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{1}, GE, 1)
	s := NewSolver(p)
	first := s.SolveRHS([]float64{1})
	x1 := first.X[0]
	second := s.SolveRHS([]float64{5})
	if &first.X[0] != &second.X[0] {
		t.Fatal("expected the Solver to reuse its X buffer")
	}
	if x1 != 1 || second.X[0] != 5 {
		t.Fatalf("solutions wrong: %v then %v", x1, second.X[0])
	}
	// Problem.Solve, by contrast, returns an owned copy.
	a := p.Solve()
	b := p.Solve()
	if &a.X[0] == &b.X[0] {
		t.Fatal("Problem.Solve must return an owned X")
	}
}
