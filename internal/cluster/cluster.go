// Package cluster is the multi-node sharding layer of oicd (DESIGN.md
// §11): a membership registry over static configuration, consistent-hash
// shard placement keyed on the canonical engine-config fingerprint, an
// HTTP front end (cmd/oicd-router) that proxies the full /v1/* API while
// pinning every session and fleet to its shard through an ownership
// table, and trace-based live migration — the drain protocol freezes a
// session on its source node, ships its recorded episode, replays it to
// head on the target with bit-exact verification, and atomically
// repoints ownership. Failover on node death reuses the same landing
// path from the router's shadow recordings, so a SIGKILLed node's
// sessions resume on a survivor byte-identical to an uninterrupted run.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// Node is one oicd serving process in the cluster.
type Node struct {
	Name string `json:"name"`
	Addr string `json:"addr"` // base URL, e.g. http://10.0.0.7:8080
}

// Membership is the cluster's node registry. The static JSON file is the
// bootstrap implementation; the Router only consumes the resolved node
// list, so a gossip- or service-discovery-backed registry can replace
// LoadMembership without touching placement or migration.
type Membership struct {
	Nodes []Node `json:"nodes"`
}

// LoadMembership reads and validates a membership file:
//
//	{"nodes": [{"name": "a", "addr": "http://127.0.0.1:8081"}, ...]}
func LoadMembership(path string) (*Membership, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading membership: %w", err)
	}
	return ParseMembership(b)
}

// ParseMembership parses and validates membership JSON.
func ParseMembership(b []byte) (*Membership, error) {
	var m Membership
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("cluster: parsing membership: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks the structural invariants of a membership: at least
// one node, unique non-empty names, non-empty addresses.
func (m *Membership) Validate() error {
	if len(m.Nodes) == 0 {
		return errors.New("cluster: membership has no nodes")
	}
	seen := make(map[string]bool, len(m.Nodes))
	for i, n := range m.Nodes {
		if n.Name == "" {
			return fmt.Errorf("cluster: node %d has no name", i)
		}
		if n.Addr == "" {
			return fmt.Errorf("cluster: node %q has no addr", n.Name)
		}
		if seen[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	return nil
}

// Sentinel errors of the cluster layer.
var (
	// ErrNoShard: no ready node can take the placement (all down, not
	// ready, or out of forced-compute headroom).
	ErrNoShard = errors.New("cluster: no ready shard for placement")
	// ErrShardDown: the shard owning the object is unreachable.
	ErrShardDown = errors.New("cluster: shard down")
	// ErrUnknownNode: a named node is not in the membership.
	ErrUnknownNode = errors.New("cluster: unknown node")
	// ErrNotFound: the router owns no session/fleet under the given ID.
	ErrNotFound = errors.New("cluster: not found")
	// ErrNoShadow: the router holds no (or an overflowed) shadow episode
	// for the session, so it cannot fail over without the source node.
	ErrNoShadow = errors.New("cluster: no shadow episode for session")
	// ErrMigrateMismatch: the migrated session's replayed successor state
	// did not verify bit-exactly against the source — the migration was
	// rolled back rather than repointing ownership at divergent state.
	ErrMigrateMismatch = errors.New("cluster: migrated session state does not match source")
)

// NodeStatus is one node's row in a cluster status snapshot.
type NodeStatus struct {
	Name  string `json:"name"`
	Addr  string `json:"addr"`
	Live  bool   `json:"live"`           // /healthz answers 200
	Ready bool   `json:"ready"`          // /readyz answers 200
	Dead  bool   `json:"dead,omitempty"` // liveness failed DeathThreshold consecutive probes

	// Load signals scraped from the node's Prometheus gauges.
	Sessions       int     `json:"sessions"`        // oicd_sessions_active
	Fleets         int     `json:"fleets"`          // oicd_fleets_active
	Pressure       float64 `json:"pressure"`        // max oicd_fleet_pressure (forced computes / budget)
	ReclaimedRatio float64 `json:"reclaimed_ratio"` // mean oicd_fleet_reclaimed_ratio

	// Ownership counts from the router's table.
	OwnedSessions int `json:"owned_sessions"`
	OwnedFleets   int `json:"owned_fleets"`
}

// ClusterStatus is the GET /v1/cluster payload.
type ClusterStatus struct {
	Nodes    []NodeStatus `json:"nodes"`
	Sessions int          `json:"sessions"`       // router-owned sessions
	Fleets   int          `json:"fleets"`         // router-owned fleets
	Lost     int          `json:"lost,omitempty"` // sessions lost (no shadow at failover)
}

// MigrateRequest asks the router to live-migrate one session:
// POST /v1/cluster/migrate. Target may be empty to let placement choose
// (ring preference excluding the current owner).
type MigrateRequest struct {
	Session string `json:"session"`
	Target  string `json:"target,omitempty"`
}

// MigrateReport is the result of one live migration.
type MigrateReport struct {
	Session  string  `json:"session"`
	From     string  `json:"from"`
	To       string  `json:"to"`
	Steps    int     `json:"steps"`              // episode length shipped and replayed
	Failover bool    `json:"failover,omitempty"` // source unreachable; shadow episode used
	Millis   float64 `json:"ms"`                 // end-to-end migration latency
}

// DrainRequest asks the router to migrate every session off a node:
// POST /v1/cluster/drain.
type DrainRequest struct {
	Node string `json:"node"`
}

// DrainReport summarizes a drain.
type DrainReport struct {
	Node          string   `json:"node"`
	Migrated      int      `json:"migrated"`
	Failed        int      `json:"failed"`
	FleetsSkipped int      `json:"fleets_skipped,omitempty"` // fleets stay pinned; they recover via their node's journal
	Errors        []string `json:"errors,omitempty"`
}
