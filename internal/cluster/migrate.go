package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"oic/internal/obs"
	"oic/pkg/oic"
)

// Live migration is the drain protocol of DESIGN.md §11 — "record, ship,
// replay", end to end:
//
//  1. freeze  — POST {src}/v1/sessions/{id}/freeze quiesces the source;
//     the returned snapshot is the state the target must reproduce.
//  2. ship    — GET {src}/v1/sessions/{id}/trace?format=binary exports
//     the recorded episode in the canonical binary form.
//  3. replay  — POST {dst}/v1/sessions/resume imports it; the target
//     replays the episode to head with bit-exact conformance checks and
//     journals the whole imported history before acknowledging.
//  4. verify  — the landed snapshot is compared field-by-field and
//     bit-by-bit (states and energy via Float64bits) against the frozen
//     source. Divergence rolls everything back: delete the landing,
//     unfreeze the source, fail with ErrMigrateMismatch.
//  5. repoint — the ownership row flips to the target under the entry
//     lock (steps blocked on the lock land on the new owner), then the
//     source copy is deleted.
//
// Failover reuses steps 3–5 with the router's shadow episode standing in
// for the source export, which is what makes node death survivable
// without shared storage.

// bitsEqual compares float vectors bit-for-bit — migration verification
// tolerates no rounding, an exact-replay guarantee, not an approximation.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// verifyHandoff checks that the migration landing reproduced the frozen
// source state exactly.
func verifyHandoff(src, dst *oic.SessionInfo) error {
	mismatch := func(field string, s, d any) error {
		return fmt.Errorf("%w: %s: source %v, target %v", ErrMigrateMismatch, field, s, d)
	}
	if dst.T != src.T {
		return mismatch("t", src.T, dst.T)
	}
	if dst.Skips != src.Skips {
		return mismatch("skips", src.Skips, dst.Skips)
	}
	if dst.Runs != src.Runs {
		return mismatch("runs", src.Runs, dst.Runs)
	}
	if dst.Forced != src.Forced {
		return mismatch("forced", src.Forced, dst.Forced)
	}
	if dst.Violations != src.Violations {
		return mismatch("violations", src.Violations, dst.Violations)
	}
	if dst.Level != src.Level {
		return mismatch("level", src.Level, dst.Level)
	}
	if !bitsEqual(dst.X, src.X) {
		return mismatch("x", src.X, dst.X)
	}
	if math.Float64bits(dst.Energy) != math.Float64bits(src.Energy) {
		return mismatch("energy", src.Energy, dst.Energy)
	}
	return nil
}

// resolveTarget picks the landing node: the named one (which must be
// ready) or the ring-preferred ready node excluding the current owner.
func (rt *Router) resolveTarget(target string, fp string, exclude string) (*nodeState, error) {
	if target != "" {
		n, ok := rt.byName[target]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownNode, target)
		}
		if n.Name == exclude {
			return nil, fmt.Errorf("%w: session already on %q", ErrUnknownNode, target)
		}
		if !n.isReady() {
			return nil, fmt.Errorf("%w: target %q is not ready", ErrNoShard, target)
		}
		return n, nil
	}
	return rt.place(fp, map[string]bool{exclude: true})
}

// MigrateSession live-migrates one router-owned session. With an empty
// target the placement ring chooses. The entry lock is held end to end,
// so concurrent steps stall briefly and then land on the new owner.
func (rt *Router) MigrateSession(ctx context.Context, id, target string) (*MigrateReport, error) {
	e, ok := rt.session(id)
	if !ok {
		return nil, fmt.Errorf("%w: session %q", ErrNotFound, id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lost {
		return nil, fmt.Errorf("%w: session %q", ErrNoShadow, id)
	}
	src := e.node.Load()
	dst, err := rt.resolveTarget(target, e.fp, src.Name)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	if !src.isLive() {
		// The source is gone; this "migration" is a failover from the shadow.
		rep, err := rt.failoverEntry(ctx, e, dst)
		if err != nil {
			return nil, err
		}
		rep.Millis = float64(time.Since(start)) / float64(time.Millisecond)
		return rep, nil
	}
	// The span times each protocol phase into
	// oicd_migration_phase_seconds and lands in /v1/debug/ops, carrying
	// the request's trace ID so the phases correlate with both nodes'
	// logs.
	span := obs.StartSpan("migration", e.id, obs.TraceIDFrom(ctx), rt.ops, rt.m.migPhases)

	// 1. Freeze: quiesce the source and capture the reference snapshot.
	span.Phase("freeze")
	status, _, b, perr := rt.proxy(ctx, src, http.MethodPost, "/v1/sessions/"+e.localID+"/freeze", []byte("{}"))
	if perr != nil {
		// Source died under us — fall back to the shadow path.
		span.End(fmt.Errorf("source died mid-freeze; falling over: %v", perr))
		rep, err := rt.failoverEntry(ctx, e, dst)
		if err != nil {
			return nil, err
		}
		rep.Millis = float64(time.Since(start)) / float64(time.Millisecond)
		return rep, nil
	}
	if status != http.StatusOK {
		rt.m.migrateFailed.Add(1)
		err := fmt.Errorf("cluster: freeze on %s: %s", src.Name, nodeErr(status, b))
		span.End(err)
		return nil, err
	}
	var srcInfo oic.SessionInfo
	if err := json.Unmarshal(b, &srcInfo); err != nil {
		rt.m.migrateFailed.Add(1)
		err := fmt.Errorf("cluster: freeze on %s: malformed response", src.Name)
		span.End(err)
		return nil, err
	}

	fail := func(err error) (*MigrateReport, error) {
		// Abort path: the source must resume serving.
		_, _, _, _ = rt.proxy(ctx, src, http.MethodPost, "/v1/sessions/"+e.localID+"/unfreeze", []byte("{}"))
		rt.m.migrateFailed.Add(1)
		span.End(err)
		rt.log.Warn("migration failed", "session", e.id, "from", src.Name, "to", dst.Name,
			"error", err, "trace_id", obs.TraceIDFrom(ctx))
		return nil, err
	}

	// 2. Ship: export the frozen episode.
	span.Phase("export")
	status, _, bin, perr := rt.proxy(ctx, src, http.MethodGet, "/v1/sessions/"+e.localID+"/trace?format=binary", nil)
	if perr != nil {
		rt.m.migrateFailed.Add(1)
		err := fmt.Errorf("%w: %s died mid-export", ErrShardDown, src.Name)
		span.End(err)
		return nil, err
	}
	if status != http.StatusOK {
		return fail(fmt.Errorf("cluster: trace export on %s: %s", src.Name, nodeErr(status, bin)))
	}

	// 3. Replay: land the episode on the target.
	span.Phase("replay")
	dstInfo, err := rt.land(ctx, dst, bin)
	if err != nil {
		return fail(err)
	}

	// 4. Verify bit-exactly against the frozen source.
	span.Phase("verify")
	if err := verifyHandoff(&srcInfo, dstInfo); err != nil {
		_, _, _, _ = rt.proxy(ctx, dst, http.MethodDelete, "/v1/sessions/"+dstInfo.ID, nil)
		return fail(err)
	}

	// 5. Repoint ownership, refresh the shadow to the shipped episode,
	// delete the source copy (best effort — a dead source's stale copy is
	// unreachable through the router either way).
	span.Phase("repoint")
	oldID := e.localID
	e.node.Store(dst)
	e.localID = dstInfo.ID
	if tr, derr := oic.DecodeTrace(bin); derr == nil {
		e.sh = shadowFromTrace(tr, rt.cfg.ShadowLimit)
	}
	_, _, _, _ = rt.proxy(ctx, src, http.MethodDelete, "/v1/sessions/"+oldID, nil)

	span.End(nil)
	rt.m.migrations.Add(1)
	millis := float64(time.Since(start)) / float64(time.Millisecond)
	rt.log.Info("migration complete", "session", e.id, "from", src.Name, "to", dst.Name,
		"steps", dstInfo.T, "millis", millis, "trace_id", obs.TraceIDFrom(ctx))
	return &MigrateReport{
		Session: e.id, From: src.Name, To: dst.Name,
		Steps:  dstInfo.T,
		Millis: millis,
	}, nil
}

// land imports a binary episode on dst via the resume endpoint.
func (rt *Router) land(ctx context.Context, dst *nodeState, bin []byte) (*oic.SessionInfo, error) {
	body, _ := json.Marshal(oic.ResumeSessionRequest{TraceBin: bin})
	status, _, b, perr := rt.proxy(ctx, dst, http.MethodPost, "/v1/sessions/resume", body)
	if perr != nil {
		return nil, fmt.Errorf("%w: target %s unreachable", ErrShardDown, dst.Name)
	}
	if status != http.StatusCreated {
		if code := errCode(b); code == "resume_mismatch" {
			return nil, fmt.Errorf("%w: target %s rejected replay: %s", ErrMigrateMismatch, dst.Name, nodeErr(status, b))
		}
		return nil, fmt.Errorf("cluster: resume on %s: %s", dst.Name, nodeErr(status, b))
	}
	var info oic.SessionInfo
	if err := json.Unmarshal(b, &info); err != nil {
		return nil, fmt.Errorf("cluster: resume on %s: malformed response", dst.Name)
	}
	return &info, nil
}

// failoverEntry re-homes one session from its shadow episode (entry lock
// held by the caller). dst == nil lets placement choose among survivors.
func (rt *Router) failoverEntry(ctx context.Context, e *sessEntry, dst *nodeState) (*MigrateReport, error) {
	src := e.node.Load()
	if !e.sh.usable() {
		e.lost = true
		rt.m.lost.Add(1)
		rt.m.failoverFailed.Add(1)
		return nil, fmt.Errorf("%w: session %q", ErrNoShadow, e.id)
	}
	if dst == nil {
		var err error
		if dst, err = rt.place(e.fp, map[string]bool{src.Name: true}); err != nil {
			rt.m.failoverFailed.Add(1)
			return nil, err
		}
	}
	span := obs.StartSpan("failover", e.id, obs.TraceIDFrom(ctx), rt.ops, rt.m.failPhases)
	fail := func(err error) (*MigrateReport, error) {
		rt.m.failoverFailed.Add(1)
		span.End(err)
		rt.log.Warn("failover failed", "session", e.id, "from", src.Name, "to", dst.Name,
			"error", err, "trace_id", obs.TraceIDFrom(ctx))
		return nil, err
	}
	span.Phase("export")
	tr := e.sh.rec.Trace()
	bin, err := oic.EncodeTrace(tr)
	if err != nil {
		return fail(fmt.Errorf("cluster: encoding shadow episode: %w", err))
	}
	span.Phase("replay")
	info, err := rt.land(ctx, dst, bin)
	if err != nil {
		return fail(err)
	}
	// Verify the landing against the shadow head: same length, same final
	// state and energy, bit for bit. (The target already verified every
	// intermediate step during replay.)
	span.Phase("verify")
	wantX := tr.X0
	if n := tr.Len(); n > 0 {
		wantX = tr.Steps[n-1].X
	}
	if info.T != tr.Len() || !bitsEqual(info.X, wantX) ||
		math.Float64bits(info.Energy) != math.Float64bits(tr.Energy) {
		_, _, _, _ = rt.proxy(ctx, dst, http.MethodDelete, "/v1/sessions/"+info.ID, nil)
		return fail(fmt.Errorf("%w: failover landing diverged at t=%d", ErrMigrateMismatch, info.T))
	}
	span.Phase("repoint")
	e.node.Store(dst)
	e.localID = info.ID
	span.End(nil)
	rt.m.failovers.Add(1)
	rt.log.Info("failover landed", "session", e.id, "from", src.Name, "to", dst.Name,
		"steps", tr.Len(), "trace_id", obs.TraceIDFrom(ctx))
	return &MigrateReport{
		Session: e.id, From: src.Name, To: dst.Name,
		Steps: tr.Len(), Failover: true,
	}, nil
}

// FailoverNode re-homes every session owned by a dead (or dying) node
// onto survivors from their shadow episodes. Fleets stay pinned: they
// recover when the node replays its own journal (their tick responses
// carry no per-member episodes to shadow). Invoked automatically on
// death declarations when Config.AutoFailover is set.
func (rt *Router) FailoverNode(ctx context.Context, name string) (moved, failed int, err error) {
	if _, ok := rt.byName[name]; !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	for _, e := range rt.ownedSessions(name) {
		e.mu.Lock()
		if owner := e.node.Load(); e.lost || owner.Name != name || owner.isLive() {
			// Already re-homed, lost, or the node came back — nothing to do.
			e.mu.Unlock()
			continue
		}
		if _, ferr := rt.failoverEntry(ctx, e, nil); ferr != nil {
			failed++
		} else {
			moved++
		}
		e.mu.Unlock()
	}
	return moved, failed, nil
}

// ownedSessions snapshots the entries currently pointing at a node. The
// owner reads are atomic loads, not entry-lock acquisitions (which would
// invert the delete handlers' lock order); candidates are re-checked
// under the entry lock before any action.
func (rt *Router) ownedSessions(name string) []*sessEntry {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []*sessEntry
	for _, e := range rt.sessions {
		if e.nodeName() == name {
			out = append(out, e)
		}
	}
	return out
}

// DrainNode live-migrates every session off a node (decommissioning).
// Fleets are reported as skipped, not failures.
func (rt *Router) DrainNode(ctx context.Context, name string) (*DrainReport, error) {
	if _, ok := rt.byName[name]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	rep := &DrainReport{Node: name}
	for _, e := range rt.ownedSessions(name) {
		if _, err := rt.MigrateSession(ctx, e.id, ""); err != nil {
			rep.Failed++
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", e.id, err))
		} else {
			rep.Migrated++
		}
	}
	rt.mu.Lock()
	for _, f := range rt.fleets {
		if f.nodeName() == name {
			rep.FleetsSkipped++
		}
	}
	rt.mu.Unlock()
	return rep, nil
}

// MigrateMember ships one fleet member's recorded episode from its fleet
// to another router-owned fleet, preserving the member's fleet-local ID.
// The target fleet must never have issued that ID — the node answers a
// collision with resume_mismatch, surfaced here as ErrMigrateMismatch.
func (rt *Router) MigrateMember(ctx context.Context, fleetID string, member int, targetFleetID string) error {
	src, ok := rt.fleet(fleetID)
	if !ok {
		return fmt.Errorf("%w: fleet %q", ErrNotFound, fleetID)
	}
	dst, ok := rt.fleet(targetFleetID)
	if !ok {
		return fmt.Errorf("%w: fleet %q", ErrNotFound, targetFleetID)
	}
	// Lock the two pins in deterministic (public-id) order regardless of
	// src/dst role, so opposite-direction migrations between the same pair
	// cannot deadlock.
	first, second := src, dst
	if second.id < first.id {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	if second != first {
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	srcNode := src.node.Load()
	path := fmt.Sprintf("/v1/fleets/%s/sessions/%d/trace?format=binary", src.localID, member)
	status, _, bin, perr := rt.proxy(ctx, srcNode, http.MethodGet, path, nil)
	if perr != nil {
		return fmt.Errorf("%w: %s", ErrShardDown, srcNode.Name)
	}
	if status != http.StatusOK {
		return fmt.Errorf("cluster: member trace export: %s", nodeErr(status, bin))
	}
	dstNode := dst.node.Load()
	body, _ := json.Marshal(oic.FleetResumeMemberRequest{Member: member, TraceBin: bin})
	status, _, b, perr := rt.proxy(ctx, dstNode, http.MethodPost, "/v1/fleets/"+dst.localID+"/sessions/resume", body)
	if perr != nil {
		return fmt.Errorf("%w: %s", ErrShardDown, dstNode.Name)
	}
	if status != http.StatusCreated {
		if errCode(b) == "resume_mismatch" {
			return fmt.Errorf("%w: member %d: %s", ErrMigrateMismatch, member, nodeErr(status, b))
		}
		return fmt.Errorf("cluster: member resume: %s", nodeErr(status, b))
	}
	var info oic.FleetMemberInfo
	if err := json.Unmarshal(b, &info); err != nil {
		return fmt.Errorf("cluster: member resume: malformed response")
	}
	if info.ID != member {
		return fmt.Errorf("%w: member landed as %d, want %d", ErrMigrateMismatch, info.ID, member)
	}
	// The source copy stays (frozen fleets are not implemented; the
	// caller evicts it) — the verification contract is the target's
	// bit-exact replay, already enforced by the resume endpoint.
	return nil
}

// nodeErr renders a node error payload for wrapping.
func nodeErr(status int, body []byte) string {
	var er oic.ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return fmt.Sprintf("%d %s (%s)", status, er.Error, er.Code)
	}
	return fmt.Sprintf("status %d", status)
}

// errCode extracts the wire error code from a node response.
func errCode(body []byte) string {
	var er oic.ErrorResponse
	_ = json.Unmarshal(body, &er)
	return er.Code
}
