package cluster

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// nodeState is the router's view of one member: liveness (/healthz),
// readiness (/readyz), and the load signals scraped from the node's
// Prometheus gauges. Written by the prober and by inline transport
// failures on the proxy path; read by placement.
type nodeState struct {
	Node

	mu          sync.Mutex
	live        bool
	ready       bool
	dead        bool // consecFails reached the death threshold
	consecFails int

	sessions       int
	fleets         int
	pressure       float64 // max oicd_fleet_pressure across the node's fleets
	reclaimedRatio float64 // mean oicd_fleet_reclaimed_ratio
	lastProbe      time.Time
}

// snapshot returns a consistent copy of the mutable fields.
func (n *nodeState) snapshot() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeStatus{
		Name: n.Name, Addr: n.Addr,
		Live: n.live, Ready: n.ready, Dead: n.dead,
		Sessions: n.sessions, Fleets: n.fleets,
		Pressure: n.pressure, ReclaimedRatio: n.reclaimedRatio,
	}
}

func (n *nodeState) isReady() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.live && n.ready && !n.dead
}

func (n *nodeState) isLive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.live && !n.dead
}

func (n *nodeState) loadPressure() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pressure
}

func (n *nodeState) loadSessions() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sessions
}

// ProbeOnce probes every node once, in parallel: GET /healthz decides
// liveness, GET /readyz readiness, and a /metrics scrape refreshes the
// load signals. A node whose liveness has failed DeathThreshold
// consecutive probes transitions to dead exactly once, firing the
// router's failover hook; a later successful probe (the process was
// restarted and replayed its journal) clears the death mark and the node
// rejoins placement.
func (rt *Router) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, n := range rt.nodes {
		wg.Add(1)
		go func(n *nodeState) {
			defer wg.Done()
			rt.probeNode(ctx, n)
		}(n)
	}
	wg.Wait()
}

func (rt *Router) probeNode(ctx context.Context, n *nodeState) {
	live := rt.probeOK(ctx, n, "/healthz")
	ready := live && rt.probeOK(ctx, n, "/readyz")

	var sessions, fleets int
	var pressure, reclaimed float64
	haveLoad := false
	if live {
		if body, err := rt.get(ctx, n, "/metrics"); err == nil {
			sessions, fleets, pressure, reclaimed = parseLoadGauges(body)
			haveLoad = true
		}
	}

	n.mu.Lock()
	n.lastProbe = time.Now()
	n.live = live
	n.ready = ready
	if haveLoad {
		n.sessions, n.fleets, n.pressure, n.reclaimedRatio = sessions, fleets, pressure, reclaimed
	}
	died := false
	if live {
		n.consecFails = 0
		n.dead = false
	} else {
		n.consecFails++
		if n.consecFails >= rt.cfg.DeathThreshold && !n.dead {
			n.dead = true
			died = true
		}
	}
	n.mu.Unlock()

	if died {
		rt.m.nodeDeaths.Add(1)
		rt.log.Warn("node declared dead", "node", n.Name, "addr", n.Addr,
			"consecutive_failures", rt.cfg.DeathThreshold, "source", "probe",
			"auto_failover", rt.cfg.AutoFailover)
		if rt.cfg.AutoFailover {
			go rt.FailoverNode(context.Background(), n.Name)
		}
	}
}

// noteTransportError folds a proxy-path connection failure into the same
// liveness accounting as the prober, so a hammered dead node is detected
// at request rate instead of probe rate. Callers must exclude failures
// caused by the inbound request's own context cancellation (proxy does) —
// those are client exits, and counting them would let a flurry of client
// disconnects mark a healthy node dead and fire failover against a node
// that is still serving.
func (rt *Router) noteTransportError(n *nodeState) {
	n.mu.Lock()
	n.live = false
	n.ready = false
	n.consecFails++
	died := false
	if n.consecFails >= rt.cfg.DeathThreshold && !n.dead {
		n.dead = true
		died = true
	}
	n.mu.Unlock()
	if died {
		rt.m.nodeDeaths.Add(1)
		rt.log.Warn("node declared dead", "node", n.Name, "addr", n.Addr,
			"consecutive_failures", rt.cfg.DeathThreshold, "source", "transport",
			"auto_failover", rt.cfg.AutoFailover)
		if rt.cfg.AutoFailover {
			go rt.FailoverNode(context.Background(), n.Name)
		}
	}
}

// noteTransportOK resets the consecutive-failure streak after any
// successful proxied round trip: a node answering requests is alive,
// however the probes in between fared. Liveness/readiness flags stay the
// prober's to restore — this only stops sporadic transport blips from
// accumulating toward a death declaration.
func (rt *Router) noteTransportOK(n *nodeState) {
	n.mu.Lock()
	n.consecFails = 0
	n.mu.Unlock()
}

func (rt *Router) probeOK(ctx context.Context, n *nodeState, path string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.Addr+path, nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	// Drain so the connection is reusable.
	_, _ = bufio.NewReader(resp.Body).Discard(1 << 16)
	return resp.StatusCode == http.StatusOK
}

// Start runs the probe loop until Stop (or ctx cancellation).
func (rt *Router) Start(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	rt.stopOnce = sync.OnceFunc(func() { close(rt.stopCh) })
	rt.probeWG.Add(1)
	go func() {
		defer rt.probeWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		rt.ProbeOnce(ctx)
		for {
			select {
			case <-rt.stopCh:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				rt.ProbeOnce(ctx)
			}
		}
	}()
}

// Stop halts the probe loop started by Start.
func (rt *Router) Stop() {
	if rt.stopOnce != nil {
		rt.stopOnce()
		rt.probeWG.Wait()
	}
}

// parseLoadGauges extracts the placement-relevant load signals from a
// node's Prometheus text exposition: oicd_sessions_active,
// oicd_fleets_active, the max oicd_fleet_pressure across fleets (forced
// computes / budget — the "forced-compute headroom exhausted" signal),
// and the mean oicd_fleet_reclaimed_ratio.
func parseLoadGauges(body []byte) (sessions, fleets int, maxPressure, meanReclaimed float64) {
	var reclaimedSum float64
	var reclaimedN int
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		switch {
		case strings.HasPrefix(line, "oicd_sessions_active "):
			sessions = int(parseGaugeValue(line))
		case strings.HasPrefix(line, "oicd_fleets_active "):
			fleets = int(parseGaugeValue(line))
		case strings.HasPrefix(line, "oicd_fleet_pressure{"):
			if v := parseGaugeValue(line); v > maxPressure {
				maxPressure = v
			}
		case strings.HasPrefix(line, "oicd_fleet_reclaimed_ratio{"):
			reclaimedSum += parseGaugeValue(line)
			reclaimedN++
		}
	}
	if reclaimedN > 0 {
		meanReclaimed = reclaimedSum / float64(reclaimedN)
	}
	return sessions, fleets, maxPressure, meanReclaimed
}

// parseGaugeValue returns the value field of one exposition line
// ("name 3" or `name{label="x"} 0.5`), or 0 if malformed.
func parseGaugeValue(line string) float64 {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return 0
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return 0
	}
	return v
}
