package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"oic/internal/obs"
	"oic/internal/server"
	"oic/pkg/oic"
)

// lockedBuf is a goroutine-safe log sink (slog handlers issue one Write
// per record, but the server logs from request goroutines).
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRouterMetricsScrapeValid proxies real traffic through the router
// and validates its /metrics exposition with the strict parser.
func TestRouterMetricsScrapeValid(t *testing.T) {
	rt, _ := testCluster(t, 2, server.Config{}, Config{})
	c := &rc{t: t, h: rt.Handler()}

	x0, ws := accCase(t, 4)
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", X0: x0}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	for i := 0; i < 4; i++ {
		if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: ws[i]}, nil); st != http.StatusOK {
			t.Fatalf("step %d: status %d", i, st)
		}
	}

	st, body := c.raw("GET", "/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics: status %d", st)
	}
	if err := obs.ValidateMetrics(body); err != nil {
		t.Fatalf("invalid exposition: %v\n---\n%s", err, body)
	}
	if !strings.Contains(string(body), "oicd_router_proxy_seconds_count ") {
		t.Fatalf("exposition missing proxy histogram:\n%s", body)
	}
}

// TestClusterObservabilitySmoke is the cross-node correlation acceptance
// test: one client-supplied trace ID must appear in the router's log AND
// the owning shard's log for the same request, and a live migration must
// surface all five phases (freeze, export, replay, verify, repoint) with
// nonzero durations at GET /v1/debug/ops.
func TestClusterObservabilitySmoke(t *testing.T) {
	// Two real oicd nodes with debug JSON logs captured per node.
	logs := make([]*lockedBuf, 2)
	mem := &Membership{}
	nodes := make([]*testNode, 2)
	for i := 0; i < 2; i++ {
		logs[i] = &lockedBuf{}
		lg, err := obs.NewLogger(logs[i], "debug", "json")
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{Logger: lg})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		name := string(rune('a' + i))
		nodes[i] = &testNode{name: name, srv: srv, ts: ts}
		mem.Nodes = append(mem.Nodes, Node{Name: name, Addr: ts.URL})
	}
	rtLog := &lockedBuf{}
	rtLogger, err := obs.NewLogger(rtLog, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(mem, Config{Logger: rtLogger})
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeOnce(t.Context())
	c := &rc{t: t, h: rt.Handler()}

	x0, ws := accCase(t, 8)
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", X0: x0}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}

	// Step once with an injected trace ID.
	const traceID = "0123456789abcdef"
	b, _ := json.Marshal(oic.StepRequest{W: ws[0]})
	req := httptest.NewRequest("POST", "/v1/sessions/"+info.ID+"/step", bytes.NewReader(b))
	req.Header.Set(obs.TraceHeader, traceID)
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("traced step: status %d", w.Code)
	}
	if got := w.Header().Get(obs.TraceHeader); got != traceID {
		t.Fatalf("router echoed trace ID %q, want %q", got, traceID)
	}

	// The same ID must be greppable in the router's log and in the owning
	// shard's log.
	if !strings.Contains(rtLog.String(), traceID) {
		t.Fatalf("router log missing trace ID %s:\n%s", traceID, rtLog.String())
	}
	e, ok := rt.session(info.ID)
	if !ok {
		t.Fatal("router lost the session entry")
	}
	ownerLogged := false
	for i, n := range nodes {
		if n.name == e.nodeName() {
			ownerLogged = strings.Contains(logs[i].String(), traceID)
		}
	}
	if !ownerLogged {
		t.Fatalf("owning shard %s log missing trace ID %s", e.nodeName(), traceID)
	}

	// Live-migrate to the other node, then /v1/debug/ops must report a
	// migration span with all five phases nonzero.
	var target string
	for _, n := range nodes {
		if n.name != e.nodeName() {
			target = n.name
		}
	}
	var rep MigrateReport
	if st := c.do("POST", "/v1/cluster/migrate", MigrateRequest{Session: info.ID, Target: target}, &rep); st != http.StatusOK {
		t.Fatalf("migrate: status %d", st)
	}

	st, body := c.raw("GET", "/v1/debug/ops")
	if st != http.StatusOK {
		t.Fatalf("debug/ops: status %d", st)
	}
	var out struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding debug/ops %q: %v", body, err)
	}
	var mig *obs.SpanRecord
	for i := range out.Spans {
		if out.Spans[i].Op == "migration" && out.Spans[i].ID == info.ID {
			mig = &out.Spans[i]
			break
		}
	}
	if mig == nil {
		t.Fatalf("no migration span in debug/ops: %s", body)
	}
	if mig.Err != "" {
		t.Fatalf("migration span recorded error: %s", mig.Err)
	}
	want := []string{"freeze", "export", "replay", "verify", "repoint"}
	if len(mig.Phases) != len(want) {
		t.Fatalf("migration span phases %+v, want %v", mig.Phases, want)
	}
	for i, ph := range mig.Phases {
		if ph.Name != want[i] {
			t.Errorf("phase %d = %q, want %q", i, ph.Name, want[i])
		}
		if ph.Elapsed <= 0 {
			t.Errorf("phase %q has zero duration", ph.Name)
		}
	}

	// The migration itself logs under the router component with the op's
	// outcome.
	if !strings.Contains(rtLog.String(), "migration complete") {
		t.Errorf("router log missing migration completion record")
	}
}

// TestRouterForwardsNegotiationHeaders: the router must pass the client's
// Accept and Content-Type through to the shard — the binary trace export
// depends on it — and annotate proxied error bodies with the shard name.
func TestRouterForwardsNegotiationHeaders(t *testing.T) {
	rt, _ := testCluster(t, 2, server.Config{}, Config{})
	c := &rc{t: t, h: rt.Handler()}

	x0, ws := accCase(t, 2)
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", X0: x0}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: ws[0]}, nil); st != http.StatusOK {
		t.Fatal("step failed")
	}

	// Binary trace export honours the query form regardless, but the
	// proxied response must carry the shard's Content-Type through.
	req := httptest.NewRequest("GET", "/v1/sessions/"+info.ID+"/trace?format=binary", nil)
	req.Header.Set("Accept", "application/octet-stream")
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("trace export: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "octet-stream") {
		t.Fatalf("trace export Content-Type %q, want octet-stream", ct)
	}

	// A shard-originated error names the shard.
	req = httptest.NewRequest("POST", "/v1/sessions/"+info.ID+"/step",
		strings.NewReader(`{"w": [1]}`)) // wrong disturbance dimension
	req.Header.Set("Content-Type", "application/json")
	w = httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad step: status %d, body %s", w.Code, w.Body.String())
	}
	var er oic.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Node == "" {
		t.Fatalf("proxied error missing shard node: %+v", er)
	}
	if er.Node != "a" && er.Node != "b" {
		t.Fatalf("proxied error node %q, want a or b", er.Node)
	}
}
