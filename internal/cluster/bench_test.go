package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"oic/internal/server"
	"oic/pkg/oic"
)

// benchSession creates a routed session and returns its step URL plus
// the client to drive it. The router sits behind a real HTTP listener so
// both network hops (client→router, router→node) are on the wire.
func benchSession(b *testing.B, batch int) (string, *http.Client, [][]float64) {
	rt, _ := testCluster(b, 1, server.Config{}, Config{})
	rts := httptest.NewServer(rt.Handler())
	b.Cleanup(rts.Close)

	eng, err := oic.NewEngine(oic.Config{Plant: "acc", Policy: oic.PolicyAlwaysRun})
	if err != nil {
		b.Fatal(err)
	}
	x0, ws, err := eng.DrawCase(1, batch)
	if err != nil {
		b.Fatal(err)
	}
	body, _ := json.Marshal(oic.CreateSessionRequest{Plant: "acc", Policy: oic.PolicyAlwaysRun, X0: x0})
	resp, err := http.Post(rts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var info oic.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("create: %d", resp.StatusCode)
	}
	return rts.URL + "/v1/sessions/" + info.ID + "/step", rts.Client(), ws
}

// BenchmarkRouterStep measures the per-step cost of stepping through the
// router in the batched client mode (64 disturbances per request, the
// same amortization the fleet tick and sync=tick journaling lean on):
// router HTTP handling, ownership lookup, node round trip, and shadow
// append for every step. ns/op is per step. CI gates this against
// internal/server's direct single-step BenchmarkServerStep at ≤ 1.25× —
// batching amortizes the proxy's extra network hop below that budget;
// the unamortized hop is BenchmarkRouterStepSingle below.
func BenchmarkRouterStep(b *testing.B) {
	const batch = 64
	url, client, ws := benchSession(b, batch)
	body, _ := json.Marshal(oic.StepRequest{WS: ws})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkRouterStepSingle is the worst case: one step per request, so
// the proxy's second HTTP round trip is paid in full on every step.
// Kept visible (not gated) so the hop cost stays measured.
func BenchmarkRouterStepSingle(b *testing.B) {
	url, client, ws := benchSession(b, 1)
	step, _ := json.Marshal(oic.StepRequest{W: ws[0]})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(step))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
