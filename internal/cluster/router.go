package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oic/internal/obs"
	"oic/pkg/oic"
)

// Config tunes a Router.
type Config struct {
	// Vnodes is the virtual nodes per member on the placement ring
	// (default 64).
	Vnodes int
	// PressureMax is the load-aware placement override: a node whose
	// worst fleet ran at or above this forced-computes/budget ratio in
	// its last tick has exhausted its forced-compute headroom and is
	// skipped in ring order (default 1.0).
	PressureMax float64
	// ShadowLimit caps the router's per-session shadow recording
	// (default 100000, matching the node-side trace cap).
	ShadowLimit int
	// DeathThreshold is the consecutive liveness failures after which a
	// node is declared dead (default 3).
	DeathThreshold int
	// AutoFailover re-homes a dead node's sessions onto survivors from
	// their shadow episodes as soon as death is declared.
	AutoFailover bool
	// Client is the HTTP client for node traffic (default: 30s timeout).
	Client *http.Client
	// Logger receives structured request/operation logs; nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = 64
	}
	if c.PressureMax <= 0 {
		c.PressureMax = 1.0
	}
	if c.ShadowLimit <= 0 {
		c.ShadowLimit = 100_000
	}
	if c.DeathThreshold <= 0 {
		c.DeathThreshold = 3
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// sessEntry is one row of the router's session ownership table. The
// entry mutex serializes proxied operations against migration: a step
// that races a drain blocks until ownership is repointed, then lands on
// the new owner. The owner pointer is additionally atomic so status and
// candidate scans can read it without the entry lock — taking entry
// locks while holding rt.mu would invert the lock order of the delete
// handlers (entry lock, then rt.mu) and deadlock.
type sessEntry struct {
	id string // public ID ("c-N")

	mu      sync.Mutex
	node    atomic.Pointer[nodeState] // current owner; written under mu
	localID string                    // the owner's node-local ID ("s-N")
	fp      string                    // canonical config fingerprint (placement key)
	train   oic.TrainConfig
	sh      *shadow
	lost    bool // owner died without a usable shadow; terminally gone
}

// fleetPin pins a fleet to its shard. Fleets do not fail over through
// the router — tick responses carry aggregate reports, not per-member
// episodes, so the shadow technique does not apply; a dead node's fleets
// recover when the node replays its own journal. Individual members are
// still migratable via their recorded episodes (MigrateMember).
type fleetPin struct {
	id string // public ID ("cf-N")

	mu      sync.Mutex
	node    atomic.Pointer[nodeState] // written under mu; atomic for lock-free scans
	localID string                    // "f-N" on the owner
	fp      string
}

// Router is the oicd cluster front end: it speaks the full /v1/* API,
// owns the session→shard table, shadows every session's episode, and
// runs the drain/migrate/failover protocol.
type Router struct {
	cfg    Config
	client *http.Client
	nodes  []*nodeState
	byName map[string]*nodeState
	ring   *ring
	m      routerMetrics

	mu        sync.Mutex
	sessions  map[string]*sessEntry
	fleets    map[string]*fleetPin
	nextSess  int
	nextFleet int

	stopCh   chan struct{}
	stopOnce func()
	probeWG  sync.WaitGroup

	// log is the structured logger (never nil — NopLogger by default);
	// ops retains recent migration/failover spans for /v1/debug/ops.
	log *slog.Logger
	ops *obs.SpanRing
}

// New builds a Router over a validated membership.
func New(m *Membership, cfg Config) (*Router, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:      cfg,
		client:   cfg.Client,
		byName:   make(map[string]*nodeState, len(m.Nodes)),
		sessions: make(map[string]*sessEntry),
		fleets:   make(map[string]*fleetPin),
		stopCh:   make(chan struct{}),
		log:      cfg.Logger.With("component", "oicd-router"),
		ops:      obs.NewSpanRing(64),
	}
	rt.m.initHists()
	names := make([]string, 0, len(m.Nodes))
	for _, n := range m.Nodes {
		ns := &nodeState{Node: Node{Name: n.Name, Addr: strings.TrimRight(n.Addr, "/")}}
		rt.nodes = append(rt.nodes, ns)
		rt.byName[n.Name] = ns
		names = append(names, n.Name)
	}
	rt.ring = newRing(names, cfg.Vnodes)
	return rt, nil
}

// place returns the node that should own a new placement of key fp:
// the first ring-preferred node that is ready and under the pressure
// cap. If every ready node is saturated the ring-preferred ready node
// still wins (steady degradation beats refusal); if none is ready,
// ErrNoShard.
func (rt *Router) place(fp string, exclude map[string]bool) (*nodeState, error) {
	var fallback *nodeState
	for _, name := range rt.ring.order(fp) {
		n := rt.byName[name]
		if exclude[name] || !n.isReady() {
			continue
		}
		if n.loadPressure() < rt.cfg.PressureMax {
			return n, nil
		}
		if fallback == nil {
			fallback = n
		}
	}
	if fallback != nil {
		return fallback, nil
	}
	return nil, ErrNoShard
}

// leastLoaded returns the ready node with the fewest active sessions —
// placement for stateless work (replays) where cache affinity is moot.
func (rt *Router) leastLoaded() (*nodeState, error) {
	var best *nodeState
	for _, n := range rt.nodes {
		if !n.isReady() {
			continue
		}
		if best == nil || n.loadSessions() < best.loadSessions() {
			best = n
		}
	}
	if best == nil {
		return nil, ErrNoShard
	}
	return best, nil
}

// proxy performs one node round trip. A transport-level failure feeds
// the node's liveness accounting and returns a non-nil error; HTTP-level
// failures are returned as (status, body) for the caller to relay. A
// failure whose request context is already canceled is the CLIENT's
// exit (disconnect or timeout mid-step), not evidence about the node,
// so it is excluded from liveness accounting; a successful round trip
// is positive evidence and clears the failure streak.
func (rt *Router) proxy(ctx context.Context, n *nodeState, method, pathAndQuery string, body []byte) (int, string, []byte, error) {
	return rt.proxyFwd(ctx, n, method, pathAndQuery, body, nil)
}

// proxyFwd is proxy with the inbound client headers attached: the
// client's Content-Type and Accept are forwarded faithfully (JSON stays
// the default for protocol-internal calls, which pass nil), and the
// context's trace ID rides the X-Oic-Trace-Id header so the shard's logs
// carry the same ID the router minted.
func (rt *Router) proxyFwd(ctx context.Context, n *nodeState, method, pathAndQuery string, body []byte, client http.Header) (int, string, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(ctx, method, n.Addr+pathAndQuery, rd)
	if err != nil {
		return 0, "", nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if client != nil {
		if ct := client.Get("Content-Type"); ct != "" && body != nil {
			req.Header.Set("Content-Type", ct)
		}
		if ac := client.Get("Accept"); ac != "" {
			req.Header.Set("Accept", ac)
		}
	}
	if id := obs.TraceIDFrom(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.m.proxyErrors.Add(1)
		if ctx.Err() == nil {
			rt.noteTransportError(n)
		}
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		rt.m.proxyErrors.Add(1)
		if ctx.Err() == nil {
			rt.noteTransportError(n)
		}
		return 0, "", nil, err
	}
	rt.m.proxyHist.Observe(time.Since(start).Seconds())
	rt.m.proxied.Add(1)
	rt.noteTransportOK(n)
	return resp.StatusCode, resp.Header.Get("Content-Type"), b, nil
}

// get is the prober's plain GET.
func (rt *Router) get(ctx context.Context, n *nodeState, path string) ([]byte, error) {
	status, _, b, err := rt.proxy(ctx, n, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: GET %s%s: status %d", n.Addr, path, status)
	}
	return b, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	// The trace middleware stamped the response header before the handler
	// ran; echo it so every router-originated error body names its trace.
	writeJSON(w, status, oic.ErrorResponse{
		Error: msg, Code: code,
		TraceID: w.Header().Get(obs.TraceHeader),
	})
}

// relay copies a node response through unchanged — the nodes already
// speak the public wire format, including error payloads.
func relay(w http.ResponseWriter, status int, ctype string, body []byte) {
	if ctype != "" {
		w.Header().Set("Content-Type", ctype)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// relayFrom relays a node response, annotating JSON error payloads with
// the shard's name so a relayed failure names which node produced it.
func (rt *Router) relayFrom(w http.ResponseWriter, n *nodeState, status int, ctype string, body []byte) {
	if status >= 400 && strings.Contains(ctype, "json") {
		var er oic.ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" && er.Node == "" {
			er.Node = n.Name
			if out, err := json.Marshal(er); err == nil {
				relay(w, status, ctype, out)
				return
			}
		}
	}
	relay(w, status, ctype, body)
}

// shardDown writes the consistent shard-unreachable error, naming the
// shard in both the message and the structured node field.
func (rt *Router) shardDown(w http.ResponseWriter, n *nodeState) {
	rt.m.shardDown.Add(1)
	rt.log.Warn("shard unreachable", "node", n.Name, "addr", n.Addr,
		"trace_id", w.Header().Get(obs.TraceHeader))
	writeJSON(w, http.StatusServiceUnavailable, oic.ErrorResponse{
		Error:   fmt.Sprintf("shard %s (%s) is unreachable", n.Name, n.Addr),
		Code:    "shard_down",
		Node:    n.Name,
		TraceID: w.Header().Get(obs.TraceHeader),
	})
}

func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(io.LimitReader(r.Body, 8<<20))
}

// Handler returns the router's HTTP API: the full /v1/* surface of a
// node (proxied by ownership) plus the /v1/cluster endpoints.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)

	mux.HandleFunc("GET /v1/plants", rt.handlePlants)
	mux.HandleFunc("POST /v1/replay", rt.handleReplay)

	mux.HandleFunc("POST /v1/sessions", rt.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions/{id}", rt.handleSessionGet)
	mux.HandleFunc("POST /v1/sessions/{id}/step", rt.handleSessionStep)
	mux.HandleFunc("GET /v1/sessions/{id}/trace", rt.handleSessionTrace)
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.handleSessionDelete)

	mux.HandleFunc("POST /v1/fleets", rt.handleCreateFleet)
	mux.HandleFunc("GET /v1/fleets/{id}", rt.handleFleetProxy)
	mux.HandleFunc("DELETE /v1/fleets/{id}", rt.handleFleetDelete)
	mux.HandleFunc("POST /v1/fleets/{id}/tick", rt.handleFleetProxy)
	mux.HandleFunc("POST /v1/fleets/{id}/sessions", rt.handleFleetProxy)
	mux.HandleFunc("GET /v1/fleets/{id}/sessions/{mid}", rt.handleFleetProxy)
	mux.HandleFunc("DELETE /v1/fleets/{id}/sessions/{mid}", rt.handleFleetProxy)
	mux.HandleFunc("GET /v1/fleets/{id}/sessions/{mid}/trace", rt.handleFleetProxy)

	mux.HandleFunc("GET /v1/cluster", rt.handleClusterStatus)
	mux.HandleFunc("POST /v1/cluster/migrate", rt.handleClusterMigrate)
	mux.HandleFunc("POST /v1/cluster/drain", rt.handleClusterDrain)
	mux.HandleFunc("GET /v1/debug/ops", rt.handleDebugOps)
	return rt.withTrace(mux)
}

// withTrace mints (or adopts) the request's trace ID — the router is the
// usual minting point for cluster traffic — stamps it on the response,
// threads it through the context so proxyFwd forwards it to the shard,
// and logs request completion with it.
func (rt *Router) withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.TraceHeader)
		if id == "" {
			id = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(obs.WithTraceID(r.Context(), id)))
		rt.log.Debug("request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "elapsed", time.Since(start), "trace_id", id)
	})
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// handleDebugOps serves the recent migration/failover spans, newest
// first.
func (rt *Router) handleDebugOps(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"spans": rt.ops.Snapshot()})
}

// handleHealthz is router liveness: always 200.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "nodes": len(rt.nodes)})
}

// handleReadyz: ready iff at least one shard can take traffic.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready := 0
	for _, n := range rt.nodes {
		if n.isReady() {
			ready++
		}
	}
	if ready == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": false, "ready_nodes": 0})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "ready_nodes": ready})
}

// handlePlants forwards to any live node — the registry is identical
// across the cluster (compiled into the binary).
func (rt *Router) handlePlants(w http.ResponseWriter, r *http.Request) {
	for _, n := range rt.nodes {
		if !n.isLive() {
			continue
		}
		status, ctype, b, err := rt.proxyFwd(r.Context(), n, http.MethodGet, "/v1/plants", nil, r.Header)
		if err != nil {
			continue
		}
		rt.relayFrom(w, n, status, ctype, b)
		return
	}
	writeErr(w, http.StatusServiceUnavailable, "no_shard", ErrNoShard.Error())
}

// handleReplay forwards to the least-loaded ready node: replays are
// stateless, so load balance beats cache affinity.
func (rt *Router) handleReplay(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	n, err := rt.leastLoaded()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "no_shard", err.Error())
		return
	}
	status, ctype, b, perr := rt.proxyFwd(r.Context(), n, http.MethodPost, "/v1/replay", body, r.Header)
	if perr != nil {
		rt.shardDown(w, n)
		return
	}
	rt.relayFrom(w, n, status, ctype, b)
}

// handleCreateSession places a session by its canonical config
// fingerprint and opens it on the owner with trace recording forced on —
// the recorded episode is the migration medium, so an untraced session
// would be unmovable.
func (rt *Router) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var req oic.CreateSessionRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
			return
		}
	}
	canon := oic.Config{
		Plant: req.Plant, Scenario: req.Scenario, Policy: req.Policy,
		Memory: req.Memory, Train: req.Train,
	}.Canonical()
	fp := canon.Fingerprint()
	n, err := rt.place(fp, nil)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "no_shard", err.Error())
		return
	}
	req.Trace = true
	fwd, _ := json.Marshal(req)
	status, ctype, b, perr := rt.proxy(r.Context(), n, http.MethodPost, "/v1/sessions", fwd)
	if perr != nil {
		rt.shardDown(w, n)
		return
	}
	if status != http.StatusCreated {
		rt.relayFrom(w, n, status, ctype, b)
		return
	}
	var info oic.SessionInfo
	if err := json.Unmarshal(b, &info); err != nil {
		writeErr(w, http.StatusBadGateway, "bad_gateway", "node returned malformed session info")
		return
	}
	e := &sessEntry{localID: info.ID, fp: fp, train: canon.Train}
	e.node.Store(n)
	e.sh = newShadow(&info, canon.Train, rt.cfg.ShadowLimit)
	rt.mu.Lock()
	rt.nextSess++
	e.id = fmt.Sprintf("c-%d", rt.nextSess)
	rt.sessions[e.id] = e
	rt.mu.Unlock()
	rt.m.sessionsCreated.Add(1)
	info.ID = e.id
	writeJSON(w, http.StatusCreated, info)
}

func (rt *Router) session(id string) (*sessEntry, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e, ok := rt.sessions[id]
	return e, ok
}

func (rt *Router) fleet(id string) (*fleetPin, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	f, ok := rt.fleets[id]
	return f, ok
}

// handleSessionGet proxies the info read, rewriting the node-local ID to
// the public one.
func (rt *Router) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	e, ok := rt.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lost {
		writeErr(w, http.StatusGone, "session_lost", "session lost: owner died with no usable shadow episode")
		return
	}
	owner := e.node.Load()
	status, ctype, b, err := rt.proxyFwd(r.Context(), owner, http.MethodGet, "/v1/sessions/"+e.localID, nil, r.Header)
	if err != nil {
		rt.shardDown(w, owner)
		return
	}
	if status == http.StatusOK {
		var info oic.SessionInfo
		if json.Unmarshal(b, &info) == nil {
			info.ID = e.id
			writeJSON(w, http.StatusOK, info)
			return
		}
	}
	rt.relayFrom(w, owner, status, ctype, b)
}

// handleSessionStep proxies a step and folds every acknowledged result
// into the session's shadow episode. Holding the entry lock across the
// round trip serializes steps against migration repointing.
func (rt *Router) handleSessionStep(w http.ResponseWriter, r *http.Request) {
	e, ok := rt.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	body, err := readBody(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var req oic.StepRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
			return
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lost {
		writeErr(w, http.StatusGone, "session_lost", "session lost: owner died with no usable shadow episode")
		return
	}
	owner := e.node.Load()
	status, ctype, b, perr := rt.proxyFwd(r.Context(), owner, http.MethodPost, "/v1/sessions/"+e.localID+"/step", body, r.Header)
	if perr != nil {
		// The step may or may not have executed on the dying node — but it
		// was never acknowledged, so it is not in the shadow, and a failover
		// landing resumes from the last acknowledged step. The client's
		// retry therefore lands exactly once.
		rt.shardDown(w, owner)
		return
	}
	rt.recordStep(e, &req, status, b)
	rt.relayFrom(w, owner, status, ctype, b)
}

// recordStep folds a step response into the shadow. Batch responses may
// carry partial progress before a terminal error; every error-free
// result was executed and acknowledged, so each is recorded.
func (rt *Router) recordStep(e *sessEntry, req *oic.StepRequest, status int, body []byte) {
	if !e.sh.usable() {
		return
	}
	if req.WS != nil {
		var resp oic.StepResponse
		if json.Unmarshal(body, &resp) != nil {
			return
		}
		for i := range resp.Results {
			res := &resp.Results[i]
			if res.Error != "" {
				break
			}
			var w []float64
			if i < len(req.WS) {
				w = req.WS[i]
			}
			if rt.shadowAppend(e, w, res) {
				rt.m.shadowSteps.Add(1)
			}
		}
		return
	}
	if status != http.StatusOK {
		return
	}
	var res oic.StepResult
	if json.Unmarshal(body, &res) != nil {
		return
	}
	if rt.shadowAppend(e, req.W, &res) {
		rt.m.shadowSteps.Add(1)
	}
}

func (rt *Router) shadowAppend(e *sessEntry, w []float64, res *oic.StepResult) bool {
	ok := e.sh.append(w, res)
	if !ok && !e.sh.usable() {
		rt.m.shadowDropped.Add(1)
	}
	return ok
}

// handleSessionTrace proxies the episode export (JSON or binary),
// rewriting the ID in the JSON form.
func (rt *Router) handleSessionTrace(w http.ResponseWriter, r *http.Request) {
	e, ok := rt.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lost {
		writeErr(w, http.StatusGone, "session_lost", "session lost: owner died with no usable shadow episode")
		return
	}
	path := "/v1/sessions/" + e.localID + "/trace"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	owner := e.node.Load()
	status, ctype, b, err := rt.proxyFwd(r.Context(), owner, http.MethodGet, path, nil, r.Header)
	if err != nil {
		rt.shardDown(w, owner)
		return
	}
	if status == http.StatusOK && strings.Contains(ctype, "json") {
		var tr oic.TraceResponse
		if json.Unmarshal(b, &tr) == nil {
			tr.ID = e.id
			writeJSON(w, http.StatusOK, tr)
			return
		}
	}
	rt.relayFrom(w, owner, status, ctype, b)
}

// handleSessionDelete closes the session on its owner and drops the
// ownership row. The row goes away even if the owner is unreachable —
// the client asked for the session's end, and a dead owner's copy
// cannot outlive its journal replay only to serve a deleted ID.
func (rt *Router) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := rt.session(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", "unknown session")
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rt.mu.Lock()
	delete(rt.sessions, id)
	rt.mu.Unlock()
	if e.lost {
		writeErr(w, http.StatusGone, "session_lost", "session lost: owner died with no usable shadow episode")
		return
	}
	owner := e.node.Load()
	status, ctype, b, err := rt.proxyFwd(r.Context(), owner, http.MethodDelete, "/v1/sessions/"+e.localID, nil, r.Header)
	if err != nil {
		rt.shardDown(w, owner)
		return
	}
	if status == http.StatusOK {
		var info oic.SessionInfo
		if json.Unmarshal(b, &info) == nil {
			info.ID = e.id
			writeJSON(w, http.StatusOK, info)
			return
		}
	}
	rt.relayFrom(w, owner, status, ctype, b)
}

// handleCreateFleet places a fleet by its canonical config fingerprint,
// forcing member trace recording on so individual members stay
// migratable.
func (rt *Router) handleCreateFleet(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var req oic.CreateFleetRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
			return
		}
	}
	fp := oic.Config{
		Plant: req.Plant, Scenario: req.Scenario, Policy: req.Policy,
		Memory: req.Memory, Train: req.Train,
	}.Fingerprint()
	n, err := rt.place(fp, nil)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "no_shard", err.Error())
		return
	}
	req.Trace = true
	fwd, _ := json.Marshal(req)
	status, ctype, b, perr := rt.proxy(r.Context(), n, http.MethodPost, "/v1/fleets", fwd)
	if perr != nil {
		rt.shardDown(w, n)
		return
	}
	if status != http.StatusCreated {
		rt.relayFrom(w, n, status, ctype, b)
		return
	}
	var info oic.FleetInfo
	if err := json.Unmarshal(b, &info); err != nil {
		writeErr(w, http.StatusBadGateway, "bad_gateway", "node returned malformed fleet info")
		return
	}
	f := &fleetPin{localID: info.ID, fp: fp}
	f.node.Store(n)
	rt.mu.Lock()
	rt.nextFleet++
	f.id = fmt.Sprintf("cf-%d", rt.nextFleet)
	rt.fleets[f.id] = f
	rt.mu.Unlock()
	rt.m.fleetsCreated.Add(1)
	info.ID = f.id
	writeJSON(w, http.StatusCreated, info)
}

// handleFleetProxy forwards any fleet-scoped request to the pinned
// shard, rewriting the public fleet ID into the node-local one on the
// path and back in ID-bearing responses.
func (rt *Router) handleFleetProxy(w http.ResponseWriter, r *http.Request) {
	f, ok := rt.fleet(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", "unknown fleet")
		return
	}
	body, err := readBody(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	path := "/v1/fleets/" + f.localID
	if mid := r.PathValue("mid"); mid != "" {
		path += "/sessions/" + mid
		if strings.HasSuffix(r.URL.Path, "/trace") {
			path += "/trace"
		}
	} else if strings.HasSuffix(r.URL.Path, "/tick") {
		path += "/tick"
	} else if strings.HasSuffix(r.URL.Path, "/sessions") {
		path += "/sessions"
	}
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	var fwd []byte
	if len(body) > 0 {
		fwd = body
	}
	owner := f.node.Load()
	status, ctype, b, perr := rt.proxyFwd(r.Context(), owner, r.Method, path, fwd, r.Header)
	if perr != nil {
		rt.shardDown(w, owner)
		return
	}
	rt.rewriteFleetID(w, f, owner, status, ctype, b)
}

// rewriteFleetID maps node-local fleet IDs back to the public one in
// ID-bearing JSON responses; everything else relays unchanged (error
// payloads gain the shard's name).
func (rt *Router) rewriteFleetID(w http.ResponseWriter, f *fleetPin, n *nodeState, status int, ctype string, b []byte) {
	if status < 300 && strings.Contains(ctype, "json") {
		var probe map[string]json.RawMessage
		if json.Unmarshal(b, &probe) == nil {
			if raw, ok := probe["id"]; ok {
				var id string
				if json.Unmarshal(raw, &id) == nil && strings.HasPrefix(id, f.localID) {
					pub, _ := json.Marshal(f.id + strings.TrimPrefix(id, f.localID))
					probe["id"] = pub
					out, _ := json.Marshal(probe)
					relay(w, status, ctype, out)
					return
				}
			}
		}
	}
	rt.relayFrom(w, n, status, ctype, b)
}

// handleFleetDelete closes the fleet on its shard and unpins it.
func (rt *Router) handleFleetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f, ok := rt.fleet(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", "unknown fleet")
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	rt.mu.Lock()
	delete(rt.fleets, id)
	rt.mu.Unlock()
	owner := f.node.Load()
	status, ctype, b, err := rt.proxyFwd(r.Context(), owner, http.MethodDelete, "/v1/fleets/"+f.localID, nil, r.Header)
	if err != nil {
		rt.shardDown(w, owner)
		return
	}
	rt.rewriteFleetID(w, f, owner, status, ctype, b)
}

// Status snapshots the cluster: per-node health and load plus the
// router's ownership counts.
func (rt *Router) Status() ClusterStatus {
	ownedS := make(map[string]int)
	ownedF := make(map[string]int)
	rt.mu.Lock()
	sessions := len(rt.sessions)
	fleets := len(rt.fleets)
	for _, e := range rt.sessions {
		// Peeking e.node without the entry lock is fine for a status count:
		// repointing is an atomic pointer store, so a snapshot mid-migration
		// is correct for one of the two moments. Taking the entry lock here
		// would invert the delete handlers' entry-then-rt.mu lock order.
		ownedS[e.nodeName()]++
	}
	for _, f := range rt.fleets {
		ownedF[f.nodeName()]++
	}
	rt.mu.Unlock()

	st := ClusterStatus{Sessions: sessions, Fleets: fleets, Lost: int(rt.m.lost.Load())}
	for _, n := range rt.nodes {
		row := n.snapshot()
		row.OwnedSessions = ownedS[row.Name]
		row.OwnedFleets = ownedF[row.Name]
		st.Nodes = append(st.Nodes, row)
	}
	return st
}

// nodeName reads the current owner's name: an atomic load, safe with or
// without the entry lock (a mid-migration read sees one of the two
// owners, both correct for that instant).
func (e *sessEntry) nodeName() string { return e.node.Load().Name }

func (f *fleetPin) nodeName() string { return f.node.Load().Name }

func (rt *Router) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rt.Status())
}

func (rt *Router) handleClusterMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	rep, err := rt.MigrateSession(r.Context(), req.Session, req.Target)
	if err != nil {
		rt.failMigrate(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (rt *Router) handleClusterDrain(w http.ResponseWriter, r *http.Request) {
	var req DrainRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	rep, err := rt.DrainNode(r.Context(), req.Node)
	if err != nil {
		rt.failMigrate(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// failMigrate maps cluster-layer errors onto the wire convention.
func (rt *Router) failMigrate(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, ErrUnknownNode):
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, ErrMigrateMismatch):
		writeErr(w, http.StatusConflict, "migrate_mismatch", err.Error())
	case errors.Is(err, ErrNoShard):
		writeErr(w, http.StatusServiceUnavailable, "no_shard", err.Error())
	case errors.Is(err, ErrNoShadow):
		writeErr(w, http.StatusGone, "session_lost", err.Error())
	case errors.Is(err, ErrShardDown):
		writeErr(w, http.StatusServiceUnavailable, "shard_down", err.Error())
	default:
		writeErr(w, http.StatusBadGateway, "bad_gateway", err.Error())
	}
}
