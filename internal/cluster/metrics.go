package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"oic/internal/obs"
)

// routerMetrics are the router's own counters, exposed at /metrics in
// the same text exposition the nodes speak (prefix oicd_router_).
type routerMetrics struct {
	proxied     atomic.Int64 // node round trips completed (any status)
	proxyErrors atomic.Int64 // node round trips that failed at transport level
	shardDown   atomic.Int64 // requests answered 503 shard_down

	sessionsCreated atomic.Int64
	fleetsCreated   atomic.Int64

	shadowSteps   atomic.Int64 // acknowledged steps folded into shadow episodes
	shadowDropped atomic.Int64 // shadows abandoned (limit or malformed response)

	migrations     atomic.Int64 // live migrations completed
	migrateFailed  atomic.Int64
	failovers      atomic.Int64 // shadow-episode failover landings completed
	failoverFailed atomic.Int64
	nodeDeaths     atomic.Int64 // death declarations (threshold crossings)
	lost           atomic.Int64 // sessions terminally lost (owner died, no usable shadow)

	// proxyHist is the distribution of node round-trip latencies;
	// migPhases/failPhases time the individual phases of migrations and
	// failover landings (fed by the spans in migrate.go).
	proxyHist  *obs.Histogram
	migPhases  *obs.PhaseHistogram
	failPhases *obs.PhaseHistogram
}

// initHists builds the histogram set; New calls it once per router.
func (m *routerMetrics) initHists() {
	lat := obs.LatencyBuckets()
	m.proxyHist = obs.NewHistogram("oicd_router_proxy_seconds", "node round-trip latency", lat)
	m.migPhases = obs.NewPhaseHistogram("oicd_migration_phase_seconds", "live migration phase durations",
		[]string{"freeze", "export", "replay", "verify", "repoint"}, lat)
	m.failPhases = obs.NewPhaseHistogram("oicd_failover_phase_seconds", "shadow failover landing phase durations",
		[]string{"export", "replay", "verify", "repoint"}, lat)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.m.render(w, rt.Status())
}

func (m *routerMetrics) render(w io.Writer, st ClusterStatus) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP oicd_router_sessions gauge of router-owned sessions\n# TYPE oicd_router_sessions gauge\noicd_router_sessions %d\n", st.Sessions)
	fmt.Fprintf(w, "# HELP oicd_router_fleets gauge of router-owned fleets\n# TYPE oicd_router_fleets gauge\noicd_router_fleets %d\n", st.Fleets)
	counter("oicd_router_proxied_total", "node round trips completed", m.proxied.Load())
	counter("oicd_router_proxy_errors_total", "node round trips failed at transport level", m.proxyErrors.Load())
	counter("oicd_router_shard_down_total", "requests answered 503 shard_down", m.shardDown.Load())
	counter("oicd_router_sessions_created_total", "sessions created through the router", m.sessionsCreated.Load())
	counter("oicd_router_fleets_created_total", "fleets created through the router", m.fleetsCreated.Load())
	counter("oicd_router_shadow_steps_total", "acknowledged steps folded into shadow episodes", m.shadowSteps.Load())
	counter("oicd_router_shadow_dropped_total", "shadow episodes abandoned", m.shadowDropped.Load())
	counter("oicd_router_migrations_total", "live migrations completed", m.migrations.Load())
	counter("oicd_router_migrate_failed_total", "live migrations failed", m.migrateFailed.Load())
	counter("oicd_router_failovers_total", "shadow failover landings completed", m.failovers.Load())
	counter("oicd_router_failover_failed_total", "shadow failover landings failed", m.failoverFailed.Load())
	counter("oicd_router_node_deaths_total", "node death declarations", m.nodeDeaths.Load())
	counter("oicd_router_sessions_lost_total", "sessions terminally lost at failover", m.lost.Load())
	m.proxyHist.Write(w)
	m.migPhases.Write(w)
	m.failPhases.Write(w)
	obs.WriteRuntimeMetrics(w)

	fmt.Fprintf(w, "# HELP oicd_router_node_ready node readiness (1 ready, 0 not)\n# TYPE oicd_router_node_ready gauge\n")
	for _, n := range st.Nodes {
		v := 0
		if n.Ready && !n.Dead {
			v = 1
		}
		fmt.Fprintf(w, "oicd_router_node_ready{node=%q} %d\n", n.Name, v)
	}
	fmt.Fprintf(w, "# HELP oicd_router_node_owned_sessions sessions pinned to each node\n# TYPE oicd_router_node_owned_sessions gauge\n")
	for _, n := range st.Nodes {
		fmt.Fprintf(w, "oicd_router_node_owned_sessions{node=%q} %d\n", n.Name, n.OwnedSessions)
	}
}
