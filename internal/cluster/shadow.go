package cluster

import (
	"oic/internal/core"
	"oic/internal/trace"
	"oic/pkg/oic"
)

// The router shadows every proxied session: it forces trace recording on
// the owning node AND keeps its own recording of every acknowledged step,
// rebuilt from nothing but wire responses. The shadow is what makes
// failover possible without shared storage — when a node dies taking its
// journal with it, the router ships the shadow episode to a survivor and
// replays it to head. Because the shadow records only acknowledged steps,
// a step that died in flight was never recorded, so a client retry after
// failover lands exactly once.

// levelCode inverts core.Level.String() — wire responses carry the level
// as its display string, the trace format as its code.
func levelCode(s string) (uint8, bool) {
	switch s {
	case core.InXPrime.String():
		return uint8(core.InXPrime), true
	case core.InXI.String():
		return uint8(core.InXI), true
	case core.InX.String():
		return uint8(core.InX), true
	case core.Unsafe.String():
		return uint8(core.Unsafe), true
	}
	return 0, false
}

// shadow is one session's router-side recording. Not safe for concurrent
// use — the owning sessEntry's mutex serializes it.
type shadow struct {
	rec     *trace.Recorder
	nx      int
	zeros   []float64 // reusable zero disturbance for w-omitted steps
	dropped bool      // recording stopped (limit hit or malformed response); failover impossible
}

// newShadow starts a shadow from a create response. The SessionInfo wire
// type carries the resolved scenario, policy, memory, and input dimension
// precisely so this reconstruction fingerprints identically to the node's
// own recording; train is the canonicalized training budget (zero unless
// the policy is DRL).
func newShadow(info *oic.SessionInfo, train oic.TrainConfig, limit int) *shadow {
	meta := trace.Meta{
		Plant:         info.Plant,
		Scenario:      info.Scenario,
		Policy:        info.Policy,
		Memory:        info.Memory,
		TrainEpisodes: train.Episodes,
		TrainSteps:    train.Steps,
		TrainSeed:     train.Seed,
	}
	return &shadow{
		rec:   trace.NewRecorder(meta, info.X, info.NU, limit),
		nx:    len(info.X),
		zeros: make([]float64, len(info.X)),
	}
}

// shadowFromTrace rebuilds a shadow positioned at the head of an episode
// the router just shipped — after a migration the new owner's recording
// and the shadow must stay in lockstep.
func shadowFromTrace(t *oic.Trace, limit int) *shadow {
	sh := &shadow{
		rec:   trace.NewRecorder(t.Meta, t.X0, t.NU, limit),
		nx:    t.NX,
		zeros: make([]float64, t.NX),
	}
	for i := range t.Steps {
		st := &t.Steps[i]
		if err := sh.rec.Append(st.Ran, st.Forced, st.Level, st.W, st.U, st.X); err != nil {
			sh.dropped = true
			break
		}
	}
	return sh
}

// append records one acknowledged step. A nil w is the zero disturbance
// (the "empty body" step). Any inconsistency — unknown level string,
// recorder full, dimension mismatch — permanently drops the shadow
// rather than recording a lie; the session keeps serving, it just can no
// longer fail over.
func (sh *shadow) append(w []float64, res *oic.StepResult) bool {
	if sh == nil || sh.dropped || res.Error != "" {
		return false
	}
	if w == nil {
		w = sh.zeros
	}
	lv, ok := levelCode(res.Level)
	if !ok {
		sh.dropped = true
		return false
	}
	if err := sh.rec.Append(res.Ran, res.Forced, lv, w, res.U, res.X); err != nil {
		sh.dropped = true
		return false
	}
	return true
}

// usable reports whether the shadow can back a failover.
func (sh *shadow) usable() bool { return sh != nil && !sh.dropped }
