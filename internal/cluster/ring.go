package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over node names. Placement keys are the
// canonical engine-config fingerprints (pkg/oic Canonical().Fingerprint()),
// so every session of one configuration prefers the same node and its
// compiled artifact set is shared instead of rebuilt per shard — the
// cluster analogue of the single-node engine cache. Virtual nodes smooth
// the key distribution; lookups walk the ring clockwise and report nodes
// in preference order so callers can apply health and load filters
// without re-hashing.
type ring struct {
	hashes []uint64          // sorted vnode hashes
	owner  map[uint64]string // vnode hash → node name
	nodes  []string
}

// hashKey is FNV-1a with a splitmix64 avalanche finalizer: stable across
// processes and platforms (ownership must not depend on which router
// computed it), and well-mixed even for near-identical inputs — raw
// FNV-1a places "a#0".."a#63" in tight clusters, which would collapse
// the ring onto one node.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds a ring with vnodes virtual nodes per member.
func newRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{
		owner: make(map[uint64]string, len(names)*vnodes),
		nodes: append([]string(nil), names...),
	}
	for _, n := range names {
		for v := 0; v < vnodes; v++ {
			h := hashKey(fmt.Sprintf("%s#%d", n, v))
			// A (vanishingly unlikely) vnode hash collision: first owner wins,
			// deterministic because names iterate in membership order.
			if _, taken := r.owner[h]; taken {
				continue
			}
			r.owner[h] = n
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	return r
}

// order returns every node name in preference order for key: the ring
// walk clockwise from the key's hash, keeping the first occurrence of
// each node. The caller takes the first acceptable (ready, under
// pressure cap) entry; the tail is the failover order.
func (r *ring) order(key string) []string {
	if len(r.hashes) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.hashes) && len(out) < len(r.nodes); i++ {
		name := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}
