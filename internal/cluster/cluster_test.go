package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"oic/internal/server"
	"oic/pkg/oic"

	_ "oic/internal/acc"
	_ "oic/internal/thermo"
)

// testNode is one in-process oicd node behind a real listener.
type testNode struct {
	name string
	srv  *server.Server
	ts   *httptest.Server
}

// testCluster builds n in-process nodes plus a router over them and
// probes once so every node is known ready.
func testCluster(t testing.TB, n int, nodeCfg server.Config, rtCfg Config) (*Router, []*testNode) {
	t.Helper()
	mem := &Membership{}
	nodes := make([]*testNode, n)
	for i := 0; i < n; i++ {
		srv := server.New(nodeCfg)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		name := string(rune('a' + i))
		nodes[i] = &testNode{name: name, srv: srv, ts: ts}
		mem.Nodes = append(mem.Nodes, Node{Name: name, Addr: ts.URL})
	}
	rt, err := New(mem, rtCfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeOnce(context.Background())
	return rt, nodes
}

// rc is a typed client over the router handler.
type rc struct {
	t testing.TB
	h http.Handler
}

func (c *rc) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	c.h.ServeHTTP(w, req)
	if out != nil && w.Code < 300 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			c.t.Fatalf("%s %s: decoding %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w.Code
}

func (c *rc) raw(method, path string) (int, []byte) {
	c.t.Helper()
	req := httptest.NewRequest(method, path, nil)
	w := httptest.NewRecorder()
	c.h.ServeHTTP(w, req)
	return w.Code, w.Body.Bytes()
}

func accCase(t testing.TB, steps int) ([]float64, [][]float64) {
	t.Helper()
	eng, err := oic.NewEngine(oic.Config{Plant: "acc"})
	if err != nil {
		t.Fatal(err)
	}
	x0, ws, err := eng.DrawCase(9, steps)
	if err != nil {
		t.Fatal(err)
	}
	return x0, ws
}

// referenceTrace runs the same episode uninterrupted on a single node
// and exports its binary trace — the byte-identity oracle.
func referenceTrace(t testing.TB, x0 []float64, ws [][]float64) []byte {
	t.Helper()
	eng, err := oic.NewEngine(oic.Config{Plant: "acc"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StartTrace(100_000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StepMany(context.Background(), ws); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := oic.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// TestMigrationByteIdentical is the PR's acceptance criterion: a session
// created through the router, stepped 100 times, live-migrated to the
// other node, and stepped 100 more produces a trace byte-identical to
// 200 uninterrupted steps on a single node.
func TestMigrationByteIdentical(t *testing.T) {
	rt, nodes := testCluster(t, 2, server.Config{}, Config{})
	c := &rc{t: t, h: rt.Handler()}

	const half = 100
	x0, ws := accCase(t, 2*half)

	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", X0: x0}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if !strings.HasPrefix(info.ID, "c-") {
		t.Fatalf("router session ID %q, want c- prefix", info.ID)
	}
	for i := 0; i < half; i++ {
		var res oic.StepResult
		if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: ws[i]}, &res); st != http.StatusOK {
			t.Fatalf("step %d: status %d", i, st)
		}
	}

	// Live-migrate to the node that does not own it.
	e, ok := rt.session(info.ID)
	if !ok {
		t.Fatal("router lost the session entry")
	}
	from := e.nodeName()
	var target string
	for _, n := range nodes {
		if n.name != from {
			target = n.name
		}
	}
	var rep MigrateReport
	if st := c.do("POST", "/v1/cluster/migrate", MigrateRequest{Session: info.ID, Target: target}, &rep); st != http.StatusOK {
		t.Fatalf("migrate: status %d", st)
	}
	if rep.From != from || rep.To != target || rep.Steps != half || rep.Failover {
		t.Fatalf("migrate report: %+v", rep)
	}
	if got := e.nodeName(); got != target {
		t.Fatalf("ownership points at %s, want %s", got, target)
	}

	// Second half lands on the new owner (batched, exercising the WS
	// shadow path too).
	var batch oic.StepResponse
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{WS: ws[half:]}, &batch); st != http.StatusOK {
		t.Fatalf("batch after migrate: status %d", st)
	}
	if len(batch.Results) != half {
		t.Fatalf("batch results: %d, want %d", len(batch.Results), half)
	}

	var got oic.SessionInfo
	if st := c.do("GET", "/v1/sessions/"+info.ID, nil, &got); st != http.StatusOK || got.T != 2*half {
		t.Fatalf("info after migrate: status %d, %+v", st, got)
	}
	if got.Violations != 0 {
		t.Fatalf("safety violations after migration: %d", got.Violations)
	}

	st, bin := c.raw("GET", "/v1/sessions/"+info.ID+"/trace?format=binary")
	if st != http.StatusOK {
		t.Fatalf("trace export: status %d", st)
	}
	want := referenceTrace(t, x0, ws)
	if !bytes.Equal(bin, want) {
		t.Fatalf("migrated trace differs from uninterrupted reference (%d vs %d bytes)", len(bin), len(want))
	}

	// The source node no longer holds a copy.
	if e.nodeName() == from {
		t.Fatal("entry still points at source")
	}
	total := 0
	for _, n := range nodes {
		total += n.srv.SessionCount()
	}
	if total != 1 {
		t.Fatalf("%d sessions across nodes after migration, want 1", total)
	}
}

// TestMigrateMidSkipChain migrates at a cut where the previous step was
// a policy skip and the state still has nonzero remaining skip budget —
// the hardest resume point, since the successor must reproduce the
// mid-chain commitment bit-for-bit.
func TestMigrateMidSkipChain(t *testing.T) {
	const steps = 60
	x0, ws := accCase(t, steps)

	// Find a mid-skip-chain cut in the reference episode.
	ref, err := oic.DecodeTrace(referenceTrace(t, x0, ws))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := oic.NewEngine(oic.Config{Plant: "acc"})
	if err != nil {
		t.Fatal(err)
	}
	cut := -1
	for i := 1; i < steps-1; i++ {
		if ref.Steps[i-1].Ran {
			continue
		}
		if b, err := eng.SkipBudget(ref.Steps[i-1].X); err == nil && b >= 1 {
			cut = i
			break
		}
	}
	if cut < 0 {
		t.Skip("episode has no mid-skip-chain cut (policy never skipped with budget left)")
	}

	rt, nodes := testCluster(t, 2, server.Config{}, Config{})
	c := &rc{t: t, h: rt.Handler()}
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", X0: x0}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	var pre oic.StepResponse
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{WS: ws[:cut]}, &pre); st != http.StatusOK {
		t.Fatalf("steps to cut: status %d", st)
	}

	e, _ := rt.session(info.ID)
	from := e.nodeName()
	var target string
	for _, n := range nodes {
		if n.name != from {
			target = n.name
		}
	}
	if _, err := rt.MigrateSession(context.Background(), info.ID, target); err != nil {
		t.Fatalf("migrate at mid-skip-chain cut %d: %v", cut, err)
	}
	var post oic.StepResponse
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{WS: ws[cut:]}, &post); st != http.StatusOK {
		t.Fatalf("steps after cut: status %d", st)
	}
	st, bin := c.raw("GET", "/v1/sessions/"+info.ID+"/trace?format=binary")
	if st != http.StatusOK {
		t.Fatalf("trace export: status %d", st)
	}
	want, _ := oic.EncodeTrace(ref)
	if !bytes.Equal(bin, want) {
		t.Fatalf("mid-skip-chain migration trace differs from reference (cut %d)", cut)
	}
}

// TestMigrateAtTraceLimit migrates a session whose episode sits exactly
// at the node trace cap: the import must accept a limit-length episode,
// and stepping past the cap must fail identically on the new owner.
func TestMigrateAtTraceLimit(t *testing.T) {
	const limit = 8
	rt, nodes := testCluster(t, 2, server.Config{TraceLimit: limit}, Config{})
	c := &rc{t: t, h: rt.Handler()}
	x0, ws := accCase(t, limit)

	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", X0: x0}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	var resp oic.StepResponse
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{WS: ws}, &resp); st != http.StatusOK {
		t.Fatalf("steps to limit: status %d", st)
	}

	e, _ := rt.session(info.ID)
	from := e.nodeName()
	var target string
	for _, n := range nodes {
		if n.name != from {
			target = n.name
		}
	}
	rep, err := rt.MigrateSession(context.Background(), info.ID, target)
	if err != nil {
		t.Fatalf("migrate at trace limit: %v", err)
	}
	if rep.Steps != limit {
		t.Fatalf("migrated %d steps, want %d", rep.Steps, limit)
	}
	// Past the cap the new owner answers exactly like the old one would:
	// 409 trace_limit.
	var er oic.ErrorResponse
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", nil, nil); st != http.StatusConflict {
		t.Fatalf("step past limit after migration: status %d, want 409", st)
	} else {
		req := httptest.NewRequest("POST", "/v1/sessions/"+info.ID+"/step", strings.NewReader("{}"))
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, req)
		if json.Unmarshal(w.Body.Bytes(), &er) != nil || er.Code != "trace_limit" {
			t.Fatalf("step past limit: body %s, want trace_limit", w.Body.String())
		}
	}
}

// TestMigrateMemberCollision: importing a member episode under an ID the
// target fleet has already issued (live, evicted, or reserved) fails
// loudly with ErrMigrateMismatch — identity is never silently renumbered.
func TestMigrateMemberCollision(t *testing.T) {
	rt, _ := testCluster(t, 2, server.Config{}, Config{})
	c := &rc{t: t, h: rt.Handler()}

	mkFleet := func(size int, seed int64) string {
		var info oic.FleetInfo
		if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
			Plant: "acc", ComputeBudget: 8, Size: size, Seed: seed,
		}, &info); st != http.StatusCreated {
			t.Fatalf("fleet create: status %d", st)
		}
		return info.ID
	}
	src := mkFleet(3, 1)
	dstBusy := mkFleet(2, 2)  // has issued member IDs 0 and 1 already
	dstEmpty := mkFleet(0, 0) // never issued any ID

	var tick oic.FleetTickResponse
	if st := c.do("POST", "/v1/fleets/"+src+"/tick", oic.FleetTickRequest{Ticks: 5}, &tick); st != http.StatusOK {
		t.Fatalf("src tick: status %d", st)
	}

	// Collision with an already-issued ID → typed mismatch.
	err := rt.MigrateMember(context.Background(), src, 1, dstBusy)
	if !errors.Is(err, ErrMigrateMismatch) {
		t.Fatalf("member migrate onto issued ID: %v, want ErrMigrateMismatch", err)
	}
	// Eviction doesn't free the ID: delete member 1 from the busy fleet
	// and the import must still refuse it.
	if st := c.do("DELETE", "/v1/fleets/"+dstBusy+"/sessions/1", nil, nil); st != http.StatusOK {
		t.Fatalf("evict member: status %d", st)
	}
	err = rt.MigrateMember(context.Background(), src, 1, dstBusy)
	if !errors.Is(err, ErrMigrateMismatch) {
		t.Fatalf("member migrate onto evicted ID: %v, want ErrMigrateMismatch", err)
	}
	// The same episode lands cleanly where the ID was never issued.
	if err := rt.MigrateMember(context.Background(), src, 1, dstEmpty); err != nil {
		t.Fatalf("member migrate onto fresh fleet: %v", err)
	}
	var member oic.FleetMemberInfo
	if st := c.do("GET", "/v1/fleets/"+dstEmpty+"/sessions/1", nil, &member); st != http.StatusOK || member.ID != 1 || member.T != 5 {
		t.Fatalf("landed member: status %d, %+v", st, member)
	}
}

// TestFailoverByteIdentical kills the owning node outright and re-homes
// its session from the router's shadow episode: the survivor continues
// the episode and the final trace is byte-identical to an uninterrupted
// single-node run.
func TestFailoverByteIdentical(t *testing.T) {
	rt, nodes := testCluster(t, 2, server.Config{}, Config{DeathThreshold: 2})
	c := &rc{t: t, h: rt.Handler()}

	const half = 50
	x0, ws := accCase(t, 2*half)
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", X0: x0}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	for i := 0; i < half; i++ {
		if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: ws[i]}, nil); st != http.StatusOK {
			t.Fatalf("step %d: status %d", i, st)
		}
	}

	// Kill the owner.
	e, _ := rt.session(info.ID)
	owner := e.nodeName()
	for _, n := range nodes {
		if n.name == owner {
			n.ts.Close()
		}
	}
	// A step against the dead shard answers the consistent error.
	var er oic.ErrorResponse
	st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: ws[half]}, nil)
	if st != http.StatusServiceUnavailable {
		t.Fatalf("step on dead shard: status %d, want 503", st)
	}
	{
		b, _ := json.Marshal(oic.StepRequest{W: ws[half]})
		req := httptest.NewRequest("POST", "/v1/sessions/"+info.ID+"/step", bytes.NewReader(b))
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, req)
		if json.Unmarshal(w.Body.Bytes(), &er) != nil || er.Code != "shard_down" {
			t.Fatalf("dead shard error: %s, want shard_down", w.Body.String())
		}
	}

	// Declare death (threshold 2) and fail over explicitly.
	rt.ProbeOnce(context.Background())
	rt.ProbeOnce(context.Background())
	moved, failed, err := rt.FailoverNode(context.Background(), owner)
	if err != nil || moved != 1 || failed != 0 {
		t.Fatalf("failover: moved %d failed %d err %v", moved, failed, err)
	}
	if got := e.nodeName(); got == owner {
		t.Fatal("session still pinned to dead node")
	}

	// The client retries the unacknowledged step, then finishes.
	for i := half; i < 2*half; i++ {
		if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: ws[i]}, nil); st != http.StatusOK {
			t.Fatalf("step %d after failover: status %d", i, st)
		}
	}
	var got oic.SessionInfo
	if st := c.do("GET", "/v1/sessions/"+info.ID, nil, &got); st != http.StatusOK || got.T != 2*half || got.Violations != 0 {
		t.Fatalf("info after failover: status %d, %+v", st, got)
	}
	stc, bin := c.raw("GET", "/v1/sessions/"+info.ID+"/trace?format=binary")
	if stc != http.StatusOK {
		t.Fatalf("trace export: status %d", stc)
	}
	if want := referenceTrace(t, x0, ws); !bytes.Equal(bin, want) {
		t.Fatal("failover trace differs from uninterrupted reference")
	}
}

// TestDrainNode empties a node through the operator path and reports
// fleets as skipped, not failed.
func TestDrainNode(t *testing.T) {
	rt, nodes := testCluster(t, 2, server.Config{}, Config{})
	c := &rc{t: t, h: rt.Handler()}

	// A few sessions with distinct configs so both nodes own some.
	ids := make([]string, 0, 4)
	for _, cfgReq := range []oic.CreateSessionRequest{
		{Plant: "acc", Seed: 1}, {Plant: "acc", Seed: 2},
		{Plant: "thermo", Seed: 3}, {Plant: "thermo", Memory: 2, Seed: 4},
	} {
		var info oic.SessionInfo
		if st := c.do("POST", "/v1/sessions", cfgReq, &info); st != http.StatusCreated {
			t.Fatalf("create: status %d", st)
		}
		for range 10 {
			if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", nil, nil); st != http.StatusOK {
				t.Fatalf("step: status %d", st)
			}
		}
		ids = append(ids, info.ID)
	}
	var fl oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{Plant: "acc", ComputeBudget: 4, Size: 4, Seed: 9}, &fl); st != http.StatusCreated {
		t.Fatalf("fleet create: status %d", st)
	}

	victim := nodes[0].name
	var rep DrainReport
	if st := c.do("POST", "/v1/cluster/drain", DrainRequest{Node: victim}, &rep); st != http.StatusOK {
		t.Fatalf("drain: status %d", st)
	}
	if rep.Failed != 0 {
		t.Fatalf("drain failures: %+v", rep)
	}
	for _, id := range ids {
		e, ok := rt.session(id)
		if !ok {
			t.Fatalf("session %s vanished", id)
		}
		if e.nodeName() == victim {
			t.Fatalf("session %s still on drained node", id)
		}
		var got oic.SessionInfo
		if st := c.do("GET", "/v1/sessions/"+id, nil, &got); st != http.StatusOK || got.T != 10 {
			t.Fatalf("post-drain info %s: status %d, %+v", id, st, got)
		}
	}
	if nodes[0].srv.SessionCount() != 0 {
		t.Fatalf("drained node still holds %d sessions", nodes[0].srv.SessionCount())
	}
	st := rt.Status()
	for _, n := range st.Nodes {
		if n.Name == victim && n.OwnedFleets > 0 && rep.FleetsSkipped == 0 {
			t.Fatalf("fleet on drained node not reported skipped: %+v", rep)
		}
	}
}

// TestPlacementDeterministic: the ring maps equal fingerprints to equal
// nodes, every fingerprint to some node, and skips not-ready members.
func TestPlacementDeterministic(t *testing.T) {
	names := []string{"a", "b", "c"}
	r := newRing(names, 64)
	counts := map[string]int{}
	fps := []string{
		"acc|cruise|bang-bang|m0|e0|s0|seed0",
		"thermo|heat|drl|m4|e500|s200|seed1",
		"orbit|hold|always-run|m0|e0|s0|seed0",
	}
	for _, fp := range fps {
		o1, o2 := r.order(fp), r.order(fp)
		if len(o1) != len(names) {
			t.Fatalf("order(%q) covers %d nodes, want %d", fp, len(o1), len(names))
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("order(%q) not deterministic: %v vs %v", fp, o1, o2)
			}
		}
		counts[o1[0]]++
	}
	// Distribution sanity across many keys: no node starves.
	counts = map[string]int{}
	for i := 0; i < 300; i++ {
		counts[r.order(fps[0] + string(rune('a'+i%26)) + string(rune('a'+i/26)))[0]]++
	}
	for _, n := range names {
		if counts[n] == 0 {
			t.Fatalf("node %s never preferred: %v", n, counts)
		}
	}
}

// TestRouterReadyz: the router is ready iff at least one shard is.
func TestRouterReadyz(t *testing.T) {
	rt, nodes := testCluster(t, 2, server.Config{}, Config{DeathThreshold: 1})
	c := &rc{t: t, h: rt.Handler()}
	if st, _ := c.raw("GET", "/readyz"); st != http.StatusOK {
		t.Fatalf("readyz with live shards: %d", st)
	}
	if st, _ := c.raw("GET", "/healthz"); st != http.StatusOK {
		t.Fatalf("healthz: %d", st)
	}
	for _, n := range nodes {
		n.ts.Close()
	}
	rt.ProbeOnce(context.Background())
	if st, _ := c.raw("GET", "/readyz"); st != http.StatusServiceUnavailable {
		t.Fatalf("readyz with all shards down: %d, want 503", st)
	}
	// Liveness of the router itself is unaffected.
	if st, _ := c.raw("GET", "/healthz"); st != http.StatusOK {
		t.Fatalf("healthz with shards down: %d", st)
	}
	var er oic.ErrorResponse
	req := httptest.NewRequest("POST", "/v1/sessions", strings.NewReader(`{"plant":"acc"}`))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable || json.Unmarshal(w.Body.Bytes(), &er) != nil || er.Code != "no_shard" {
		t.Fatalf("create with no shards: %d %s", w.Code, w.Body.String())
	}
}

// TestMembershipValidation covers the registry's structural checks.
func TestMembershipValidation(t *testing.T) {
	for _, bad := range []string{
		`{}`,
		`{"nodes":[]}`,
		`{"nodes":[{"name":"","addr":"http://x"}]}`,
		`{"nodes":[{"name":"a","addr":""}]}`,
		`{"nodes":[{"name":"a","addr":"http://x"},{"name":"a","addr":"http://y"}]}`,
	} {
		if _, err := ParseMembership([]byte(bad)); err == nil {
			t.Errorf("ParseMembership(%s) accepted", bad)
		}
	}
	m, err := ParseMembership([]byte(`{"nodes":[{"name":"a","addr":"http://x"},{"name":"b","addr":"http://y"}]}`))
	if err != nil || len(m.Nodes) != 2 {
		t.Fatalf("valid membership rejected: %v", err)
	}
}

// TestParseLoadGauges pins the scrape parser against a realistic
// exposition fragment.
func TestParseLoadGauges(t *testing.T) {
	body := []byte(`# HELP oicd_sessions_active live sessions
# TYPE oicd_sessions_active gauge
oicd_sessions_active 42
oicd_fleets_active 2
oicd_fleet_pressure{fleet="f-1"} 0.25
oicd_fleet_pressure{fleet="f-2"} 1.5
oicd_fleet_reclaimed_ratio{fleet="f-1"} 0.5
oicd_fleet_reclaimed_ratio{fleet="f-2"} 0.7
`)
	s, f, p, rec := parseLoadGauges(body)
	if s != 42 || f != 2 || p != 1.5 || rec != 0.6000000000000001 && rec != 0.6 {
		t.Fatalf("parseLoadGauges = %d %d %g %g", s, f, p, rec)
	}
}

// TestStatusRacesDeletes pins the Status()/delete lock-order fix: Status
// used to take each entry lock while holding rt.mu, while the delete
// handlers take the entry lock first and rt.mu second — a GET
// /v1/cluster racing a DELETE could deadlock the router. Run with -race
// this also checks the lock-free owner reads.
func TestStatusRacesDeletes(t *testing.T) {
	rt, _ := testCluster(t, 2, server.Config{}, Config{})
	h := rt.Handler()

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				c := &rc{t: t, h: h}
				var info oic.SessionInfo
				if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", Seed: int64(i)}, &info); st != http.StatusCreated {
					return
				}
				c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{}, nil)
				c.do("DELETE", "/v1/sessions/"+info.ID, nil, nil)
				var fi oic.FleetInfo
				if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{Plant: "acc", ComputeBudget: 4, Size: 1, Seed: int64(i)}, &fi); st != http.StatusCreated {
					return
				}
				c.do("DELETE", "/v1/fleets/"+fi.ID, nil, nil)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				_ = rt.Status()
			}
		}()
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Status/delete race deadlocked")
	}
}

// TestClientCancelIsNotNodeFailure pins the liveness-accounting fix: a
// client disconnecting mid-request surfaces as a context-canceled proxy
// error, which must NOT count toward the owner node's death threshold —
// previously DeathThreshold aborts between probes declared a healthy
// node dead and fired failover against a node still serving.
func TestClientCancelIsNotNodeFailure(t *testing.T) {
	rt, nodes := testCluster(t, 1, server.Config{}, Config{DeathThreshold: 2})
	c := &rc{t: t, h: rt.Handler()}

	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc"}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}

	// Hammer the step path with pre-canceled client contexts, well past
	// the death threshold.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 5; i++ {
		body, _ := json.Marshal(oic.StepRequest{})
		req := httptest.NewRequest("POST", "/v1/sessions/"+info.ID+"/step", bytes.NewReader(body)).WithContext(ctx)
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("canceled step %d: status %d, want 503", i, w.Code)
		}
	}
	n := rt.byName[nodes[0].name]
	if !n.isReady() {
		t.Fatal("client cancellations marked a healthy node not-ready")
	}
	n.mu.Lock()
	dead, fails := n.dead, n.consecFails
	n.mu.Unlock()
	if dead || fails != 0 {
		t.Fatalf("client cancellations fed liveness accounting: dead=%v consecFails=%d", dead, fails)
	}

	// The node keeps serving.
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{}, nil); st != http.StatusOK {
		t.Fatalf("step after cancels: status %d", st)
	}

	// And a successful round trip clears an accumulated failure streak.
	n.mu.Lock()
	n.consecFails = 1
	n.mu.Unlock()
	if st := c.do("GET", "/v1/sessions/"+info.ID, nil, nil); st != http.StatusOK {
		t.Fatalf("get: status %d", st)
	}
	n.mu.Lock()
	fails = n.consecFails
	n.mu.Unlock()
	if fails != 0 {
		t.Fatalf("successful round trip did not reset consecFails: %d", fails)
	}
}

// TestMigrateMemberOppositeDirections pins the fleet-pair lock-order
// fix: A→B and B→A member migrations used to lock src then dst and
// could deadlock; with deterministic ordering both complete (here with
// typed collisions — both fleets have issued ID 0).
func TestMigrateMemberOppositeDirections(t *testing.T) {
	rt, _ := testCluster(t, 2, server.Config{}, Config{})
	c := &rc{t: t, h: rt.Handler()}

	mkFleet := func(seed int64) string {
		var info oic.FleetInfo
		if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
			Plant: "acc", ComputeBudget: 4, Size: 1, Seed: seed,
		}, &info); st != http.StatusCreated {
			t.Fatalf("fleet create: status %d", st)
		}
		if st := c.do("POST", "/v1/fleets/"+info.ID+"/tick", oic.FleetTickRequest{Ticks: 2}, nil); st != http.StatusOK {
			t.Fatalf("tick: status %d", st)
		}
		return info.ID
	}
	f1, f2 := mkFleet(1), mkFleet(2)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				if err := rt.MigrateMember(context.Background(), f1, 0, f2); !errors.Is(err, ErrMigrateMismatch) {
					t.Errorf("f1→f2: %v, want ErrMigrateMismatch", err)
				}
			}()
			go func() {
				defer wg.Done()
				if err := rt.MigrateMember(context.Background(), f2, 0, f1); !errors.Is(err, ErrMigrateMismatch) {
					t.Errorf("f2→f1: %v, want ErrMigrateMismatch", err)
				}
			}()
			wg.Wait()
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("opposite-direction member migrations deadlocked")
	}
}
