// Package budget implements the elastic compute-budget controller
// (DESIGN.md §13): a deterministic PI loop that retunes a fleet's
// per-tick κ-compute budget from the measured deadline margin.
//
// The paper's premise is that reclaimed κ computations are a budget to be
// re-spent. PR 9 made the spending observable — TickReport.DeadlineMargin
// is how far a tick finished ahead of its wall-time deadline — and this
// package closes the loop: margin above target means the machine has
// headroom, so the budget (and with it admission capacity) grows; margin
// below target means the tick is at risk of overrunning, so the budget
// shrinks and sheds more optional computes into certified-safe skips.
//
// The controller is intentionally boring: pure integer/float arithmetic
// with no clocks, no randomness, and no allocation, so a given input
// sequence yields one budget trajectory on every machine and worker
// count — the same determinism contract the scheduler keeps.
//
// Safety is not negotiable: Update floors its output at the caller's
// forced-compute demand, applied after every clamp, so adaptation can
// never starve a monitor-mandated computation. The scheduler would run
// forced computes over budget anyway (PlanStats.Overrun), but the floor
// keeps the controller from manufacturing overruns in the first place.
package budget

import (
	"math"
	"time"
)

// Config tunes a Controller. Zero-valued gain/band fields take the
// defaults noted on each field; Min, Max, and Target are the caller's
// contract and have no defaults (New clamps Min into [1, Max]).
type Config struct {
	// Min and Max bound the budget the controller will set. The forced
	// floor may exceed Max transiently — safety outranks the budget cap.
	Min int
	Max int
	// Target is the deadline margin the loop regulates to. Must be > 0;
	// New falls back to 1ms so a zero value cannot divide by zero.
	Target time.Duration
	// Hysteresis is the dead band as a fraction of Target: while the
	// normalized error |margin−target|/target stays inside it the budget
	// holds, which keeps a near-target fleet from dithering. Default 0.25.
	Hysteresis float64
	// Kp and Ki are the proportional and integral gains in budget units
	// per unit of normalized error. Defaults 24 and 6.
	Kp float64
	Ki float64
	// Slew caps the budget change per update (budget units), so one noisy
	// margin sample cannot halve a fleet's throughput. Default
	// max(1, (Max−Min)/8).
	Slew int
	// IntegralMax clamps the error integral (anti-windup): during a long
	// saturation at Min or Max the integral cannot wind past it, so the
	// loop re-tracks within a few updates once the disturbance clears.
	// Default 4 (normalized-error units).
	IntegralMax float64
}

func (c Config) withDefaults() Config {
	if c.Target <= 0 {
		c.Target = time.Millisecond
	}
	if c.Max < 1 {
		c.Max = 1
	}
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Min > c.Max {
		c.Min = c.Max
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.25
	}
	if c.Kp <= 0 {
		c.Kp = 24
	}
	if c.Ki <= 0 {
		c.Ki = 6
	}
	if c.Slew <= 0 {
		c.Slew = (c.Max - c.Min) / 8
		if c.Slew < 1 {
			c.Slew = 1
		}
	}
	if c.IntegralMax <= 0 {
		c.IntegralMax = 4
	}
	return c
}

// Input is one tick's controller evidence.
type Input struct {
	// Margin is the tick's measured deadline margin
	// (TickReport.DeadlineMargin): negative means the tick overran.
	Margin time.Duration
	// Forced is the tick's monitor-forced compute count — the safety
	// floor below which Update never sets the budget.
	Forced int
}

// Stats counts controller decisions for observability.
type Stats struct {
	Raises int64 `json:"raises"` // updates that grew the budget
	Lowers int64 `json:"lowers"` // updates that shrank the budget
	Holds  int64 `json:"holds"`  // updates inside the hysteresis band
	// Floors counts updates where the forced-compute floor overrode the
	// control law — the loud signal that demand, not margin, set the
	// budget.
	Floors int64 `json:"floors"`
}

// Controller is the deterministic PI budget loop. Not safe for concurrent
// use; the owning Fleet serializes calls under its own lock.
type Controller struct {
	cfg      Config
	budget   int
	integral float64
	stats    Stats
}

// New returns a controller starting at the given budget, clamped into
// [Min, Max].
func New(cfg Config, initial int) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{cfg: cfg, budget: clampInt(initial, cfg.Min, cfg.Max)}
}

// Config returns the controller's configuration with defaults applied.
func (c *Controller) Config() Config { return c.cfg }

// Budget returns the current budget (the last Update output, or the
// initial/Set value before the first Update).
func (c *Controller) Budget() int { return c.budget }

// Stats returns the cumulative decision counters.
func (c *Controller) Stats() Stats { return c.stats }

// Set re-seeds the loop at the given budget (clamped into [Min, Max]) and
// zeroes the integral — the hand-off point when a caller retunes the
// budget out-of-band via Fleet.SetComputeBudget.
func (c *Controller) Set(n int) {
	c.budget = clampInt(n, c.cfg.Min, c.cfg.Max)
	c.integral = 0
}

// Update runs one PI step and returns the next budget. The law, in order:
//
//  1. Normalized error e = (margin − target) / target.
//  2. Hysteresis: |e| ≤ band holds the budget (no integration), modulo
//     re-entry into [Min, Max] after a floor excursion.
//  3. Conditional integration (anti-windup): the clamped integral only
//     commits when the output did not saturate at Min/Max.
//  4. Slew limit: |Δbudget| ≤ Slew per update.
//  5. Forced floor, applied last: output ≥ in.Forced, even above Max.
//
// Every step is pure arithmetic on the inputs, so identical input
// sequences give byte-identical budget trajectories.
func (c *Controller) Update(in Input) int {
	prev := c.budget
	e := (in.Margin - c.cfg.Target).Seconds() / c.cfg.Target.Seconds()
	next := clampInt(prev, c.cfg.Min, c.cfg.Max)
	if math.Abs(e) > c.cfg.Hysteresis {
		i2 := clampF(c.integral+e, -c.cfg.IntegralMax, c.cfg.IntegralMax)
		d := int(math.Round(c.cfg.Kp*e + c.cfg.Ki*i2))
		d = clampInt(d, -c.cfg.Slew, c.cfg.Slew)
		raw := next + d
		next = clampInt(raw, c.cfg.Min, c.cfg.Max)
		if next == raw {
			c.integral = i2 // unsaturated: commit the integration
		}
	}
	if in.Forced > next {
		next = in.Forced
		c.stats.Floors++
	}
	switch {
	case next > prev:
		c.stats.Raises++
	case next < prev:
		c.stats.Lowers++
	default:
		c.stats.Holds++
	}
	c.budget = next
	return next
}

// Sessions is the admission half of the elastic loop: the effective
// MaxSessions coupled to the fleet's last tick. base is the configured
// capacity; reclaimed is TickReport.ReclaimedRatio (the fraction of
// worst-case κ provisioning handed back); pressure is forced/budget.
//
// Reclaimed headroom with low pressure grows capacity — a fleet skipping
// most of its computes can serve more members on the same budget, the
// paper's sessions-per-core dividend. Pressure near saturation shrinks it
// below base, shielding the forced lane before Admit's hard
// ErrFleetOverloaded backpressure trips. The scale factor is clamped to
// [½, 3/2]× base and the result to ≥ 1; pure arithmetic, deterministic.
func Sessions(base int, reclaimed, pressure float64) int {
	if base < 1 {
		base = 1
	}
	reclaimed = clampF(reclaimed, 0, 1)
	pressure = clampF(pressure, 0, 2)
	grow := 0.5 * reclaimed * (1 - clampF(pressure, 0, 1))
	shrink := 0.5 * clampF((pressure-0.8)/0.2, 0, 1)
	f := clampF(1+grow-shrink, 0.5, 1.5)
	n := int(math.Round(float64(base) * f))
	if n < 1 {
		n = 1
	}
	return n
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
