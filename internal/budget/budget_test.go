package budget

import (
	"math/rand"
	"testing"
	"time"
)

func msec(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }

// randInput draws one controller input from a seeded generator: margins
// across the whole interesting range (deep overrun to far-ahead) and
// forced demands from zero to past Max.
func randInput(rng *rand.Rand, max int) Input {
	return Input{
		Margin: msec(rng.Float64()*240 - 120), // [-120ms, +120ms)
		Forced: rng.Intn(max + max/2 + 1),
	}
}

// TestForcedFloorProperty is the safety property the elastic loop rides
// on: for arbitrary input sequences the output never drops below the
// tick's forced-compute demand, never leaves [Min, Max] except when the
// floor pushes above Max, and never moves faster than the slew limit
// except when the floor jumps it.
func TestForcedFloorProperty(t *testing.T) {
	cfg := Config{Min: 8, Max: 192, Target: 20 * time.Millisecond}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := New(cfg, 96)
		prev := c.Budget()
		for i := 0; i < 2000; i++ {
			in := randInput(rng, cfg.Max)
			got := c.Update(in)
			if got < in.Forced {
				t.Fatalf("seed %d step %d: budget %d below forced floor %d", seed, i, got, in.Forced)
			}
			if got < cfg.Min {
				t.Fatalf("seed %d step %d: budget %d below Min %d", seed, i, got, cfg.Min)
			}
			if got > cfg.Max && got != in.Forced {
				t.Fatalf("seed %d step %d: budget %d above Max %d without floor (forced %d)",
					seed, i, got, cfg.Max, in.Forced)
			}
			slew := c.Config().Slew
			if d := got - prev; d > slew && got != in.Forced {
				t.Fatalf("seed %d step %d: raise %d exceeds slew %d without floor", seed, i, d, slew)
			}
			prev = got
		}
	}
}

// TestDeterminism: identical input sequences give byte-identical budget
// trajectories and stats — the contract that lets the fleet determinism
// test hold across Workers settings.
func TestDeterminism(t *testing.T) {
	cfg := Config{Min: 4, Max: 128, Target: 10 * time.Millisecond}
	mk := func() []int {
		rng := rand.New(rand.NewSource(42))
		c := New(cfg, 64)
		out := make([]int, 0, 500)
		for i := 0; i < 500; i++ {
			out = append(out, c.Update(randInput(rng, cfg.Max)))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestHysteresisHolds: margins inside the dead band leave the budget
// untouched (and count as holds).
func TestHysteresisHolds(t *testing.T) {
	c := New(Config{Min: 1, Max: 100, Target: 20 * time.Millisecond}, 50)
	for i := 0; i < 10; i++ {
		// |e| = 0.2 < default band 0.25.
		if got := c.Update(Input{Margin: 24 * time.Millisecond}); got != 50 {
			t.Fatalf("step %d: in-band update moved budget to %d", i, got)
		}
		if got := c.Update(Input{Margin: 16 * time.Millisecond}); got != 50 {
			t.Fatalf("step %d: in-band update moved budget to %d", i, got)
		}
	}
	if st := c.Stats(); st.Holds != 20 || st.Raises != 0 || st.Lowers != 0 {
		t.Fatalf("want 20 holds, got %+v", st)
	}
}

// TestRegulation closes the loop against a toy tick-cost model (cost
// linear in budget) and checks the controller settles with the margin
// inside the hysteresis band of the target.
func TestRegulation(t *testing.T) {
	const (
		deadline = 100 * time.Millisecond
		perUnit  = 0.5 // ms of tick time per budget unit
	)
	cfg := Config{Min: 8, Max: 192, Target: 25 * time.Millisecond}
	c := New(cfg, 8)
	var margin time.Duration
	for i := 0; i < 200; i++ {
		cost := msec(10 + perUnit*float64(c.Budget()))
		margin = deadline - cost
		c.Update(Input{Margin: margin})
	}
	band := time.Duration(0.25 * float64(cfg.Target))
	if diff := margin - cfg.Target; diff > band || diff < -band {
		t.Fatalf("loop did not settle: final margin %v, target %v ± %v (budget %d)",
			margin, cfg.Target, band, c.Budget())
	}
}

// TestAntiWindup: after a long saturation at Min under deep overrun, the
// clamped integral lets the budget start recovering within a few updates
// of the disturbance clearing — an unclamped integral would pin it for
// hundreds.
func TestAntiWindup(t *testing.T) {
	c := New(Config{Min: 8, Max: 192, Target: 20 * time.Millisecond}, 96)
	for i := 0; i < 500; i++ {
		c.Update(Input{Margin: -80 * time.Millisecond})
	}
	if c.Budget() != 8 {
		t.Fatalf("expected saturation at Min, budget %d", c.Budget())
	}
	start := c.Budget()
	for i := 1; i <= 10; i++ {
		c.Update(Input{Margin: 60 * time.Millisecond})
		if c.Budget() > start {
			return
		}
	}
	t.Fatalf("budget stuck at %d for 10 updates after disturbance cleared", c.Budget())
}

// TestSet re-seeds the loop and clamps into range.
func TestSet(t *testing.T) {
	c := New(Config{Min: 10, Max: 50, Target: time.Millisecond}, 30)
	c.Set(999)
	if c.Budget() != 50 {
		t.Fatalf("Set(999) = %d, want clamp to 50", c.Budget())
	}
	c.Set(-3)
	if c.Budget() != 10 {
		t.Fatalf("Set(-3) = %d, want clamp to 10", c.Budget())
	}
}

// TestFloorAboveMax: a forced demand past Max wins (safety over cap) and
// is counted.
func TestFloorAboveMax(t *testing.T) {
	c := New(Config{Min: 8, Max: 64, Target: 20 * time.Millisecond}, 64)
	if got := c.Update(Input{Margin: 40 * time.Millisecond, Forced: 100}); got != 100 {
		t.Fatalf("floored update = %d, want 100", got)
	}
	if st := c.Stats(); st.Floors != 1 {
		t.Fatalf("want 1 floor, got %+v", st)
	}
	// Next tick without the demand: re-clamped toward [Min, Max].
	if got := c.Update(Input{Margin: 40 * time.Millisecond}); got > 64 {
		t.Fatalf("post-floor update = %d, want ≤ Max", got)
	}
}

// TestSessions pins the admission-coupling law's shape: reclaimed
// headroom grows capacity, saturation pressure shrinks it, and the output
// stays within [½, 3/2]× base and ≥ 1.
func TestSessions(t *testing.T) {
	const base = 1000
	if got := Sessions(base, 0, 0); got != base {
		t.Fatalf("neutral inputs: got %d, want %d", got, base)
	}
	if got := Sessions(base, 1, 0); got != 1500 {
		t.Fatalf("full reclaim, no pressure: got %d, want 1500", got)
	}
	if got := Sessions(base, 1, 1); got != 500 {
		t.Fatalf("saturated: got %d, want 500", got)
	}
	if hi, lo := Sessions(base, 0.9, 0.1), Sessions(base, 0.9, 0.95); hi <= lo {
		t.Fatalf("pressure should shrink capacity: %d !> %d", hi, lo)
	}
	if lo, hi := Sessions(base, 0.1, 0), Sessions(base, 0.9, 0); lo >= hi {
		t.Fatalf("reclaim should grow capacity: %d !< %d", lo, hi)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		b := rng.Intn(5000)
		got := Sessions(b, rng.Float64()*1.5-0.2, rng.Float64()*2.5-0.2)
		if got < 1 {
			t.Fatalf("Sessions(%d, ...) = %d < 1", b, got)
		}
		if b >= 1 && (got > b+(b+1)/2 || got < b/2) {
			t.Fatalf("Sessions(%d, ...) = %d outside [½, 3/2]×base", b, got)
		}
	}
}
