package exp

import (
	"encoding/csv"
	"fmt"
	"strings"

	"oic/internal/stats"
)

// paperNoteFig4 returns the ACC paper's reference numbers; other plants
// have no published baseline to annotate.
func paperNoteFig4(plantName string, kind string) string {
	if plantName != "acc" {
		return ""
	}
	switch kind {
	case "mean":
		return "   (paper: 16.28% / 23.83%)"
	case "skips":
		return "   (paper: 79.4)"
	}
	return ""
}

// RenderFig4 formats a savings-distribution result as a terminal report.
func RenderFig4(r *Fig4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — %s-cost savings vs always-run κ on plant %q (%d cases, %d steps)\n",
		r.CostLabel, r.Plant, r.Cases, r.Opt.Steps)
	fmt.Fprintf(&b, "scenario %s: %s\n\n", r.Scenario.ID, r.Scenario.Description)
	b.WriteString(stats.RenderGrouped(
		[]string{"bang-bang", "opportunistic-DRL"},
		[]*stats.Histogram{r.BBHist, r.DRLHist}, 40))
	if n := r.BBHist.Underflow + r.DRLHist.Underflow; n > 0 {
		fmt.Fprintf(&b, "saving < 0%%:   bang-bang %d, DRL %d cases\n", r.BBHist.Underflow, r.DRLHist.Underflow)
	}
	if n := r.BBHist.Overflow + r.DRLHist.Overflow; n > 0 {
		fmt.Fprintf(&b, "saving = 100%% (zero-cost run): bang-bang %d, DRL %d cases\n", r.BBHist.Overflow, r.DRLHist.Overflow)
	}
	fmt.Fprintf(&b, "\nmean %s saving:   bang-bang %6.2f%%   DRL %6.2f%%%s\n",
		r.CostLabel, r.BBMean, r.DRLMean, paperNoteFig4(r.Plant, "mean"))
	fmt.Fprintf(&b, "mean energy saving: bang-bang %6.2f%%   DRL %6.2f%%   (Σ‖u‖₁, Problem 1)\n",
		r.BBEnergy, r.DRLEnergy)
	fmt.Fprintf(&b, "mean skipped steps per 100 (DRL): %.1f%s\n", r.SkipsDRL, paperNoteFig4(r.Plant, "skips"))
	fmt.Fprintf(&b, "safety violations: %d (Theorem 1 requires 0)\n", r.Violations)
	return b.String()
}

// RenderSeries formats a ladder sweep as a terminal report.
func RenderSeries(r *SeriesResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — plant %q (%d cases per scenario, %d steps)\n",
		r.Ladder.Title, r.Plant, r.Opt.Cases, r.Opt.Steps)
	if r.Ladder.PaperNote != "" {
		fmt.Fprintf(&b, "%s\n", r.Ladder.PaperNote)
	}
	b.WriteString("\n")
	labels := make([]string, len(r.Points))
	values := make([]float64, len(r.Points))
	for i, pt := range r.Points {
		labels[i] = pt.Scenario.ID
		values[i] = pt.DRLSaving
	}
	b.WriteString(stats.RenderSeries(labels, values, "%", 40))
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s %-26s %12s %12s %10s %6s\n",
		"ID", "setting", "DRL "+r.CostLabel+" %", "BB "+r.CostLabel+" %", "skips/100", "viol")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-8s %-26s %12.2f %12.2f %10.1f %6d\n",
			pt.Scenario.ID, pt.Scenario.Detail,
			pt.DRLSaving, pt.BBSaving, pt.SkipsDRL, pt.Violations)
	}
	return b.String()
}

// RenderTiming formats the computation-time analysis.
func RenderTiming(r *TimingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section IV-A — computation-time analysis on plant %q (%d cases)\n\n", r.Plant, r.Opt.Cases)
	note := func(s string) string {
		if r.Plant != "acc" {
			return ""
		}
		return s
	}
	fmt.Fprintf(&b, "κ compute per step:           %12v%s\n", r.CtrlPerStep, note("   (paper: 0.12 s on their i7)"))
	fmt.Fprintf(&b, "monitor + policy per step:    %12v%s\n", r.MonitorPerStep, note("   (paper: 0.02 s)"))
	fmt.Fprintf(&b, "skipped steps per 100 (DRL):  %12.1f%s\n", r.SkipsPer100, note("   (paper: 79.4)"))
	fmt.Fprintf(&b, "computation-time saving:      %11.1f%%%s\n", r.ComputeSaving, note("   (paper: ≈60%)"))
	return b.String()
}

// RenderTable1 formats a scenario ladder with measured savings.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table I — scenario settings with measured savings\n\n")
	fmt.Fprintf(&b, "%-8s %-26s %14s %14s\n", "ID", "setting", "DRL saving %", "BB saving %")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8s %-26s %14.2f %14.2f\n",
			row.Scenario.ID, row.Scenario.Detail, row.DRLSaving, row.BBSaving)
	}
	return b.String()
}

// CSVFig4 renders per-case savings as CSV. It requires a result produced
// with Options.KeepPerCase; otherwise only the header is emitted.
func CSVFig4(r *Fig4Result) string {
	var b strings.Builder
	b.WriteString("case,bb_saving_pct,drl_saving_pct\n")
	for i := range r.BBSavings {
		fmt.Fprintf(&b, "%d,%.4f,%.4f\n", i, r.BBSavings[i], r.DRLSavings[i])
	}
	return b.String()
}

// CSVSeries renders a sweep as CSV (RFC 4180 quoting — Detail is
// arbitrary per-plant text).
func CSVSeries(r *SeriesResult) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write([]string{"id", "setting", "drl_saving_pct", "bb_saving_pct", "drl_energy_saving_pct", "skips_per_100", "violations"})
	for _, pt := range r.Points {
		w.Write([]string{
			pt.Scenario.ID, pt.Scenario.Detail,
			fmt.Sprintf("%.4f", pt.DRLSaving), fmt.Sprintf("%.4f", pt.BBSaving),
			fmt.Sprintf("%.4f", pt.DRLEnergy), fmt.Sprintf("%.2f", pt.SkipsDRL),
			fmt.Sprintf("%d", pt.Violations),
		})
	}
	w.Flush()
	return b.String()
}
