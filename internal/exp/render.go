package exp

import (
	"fmt"
	"strings"

	"oic/internal/stats"
)

// RenderFig4 formats a Fig. 4 reproduction as a terminal report.
func RenderFig4(r *Fig4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — fuel-consumption savings vs RMPC-only (%d cases, %d steps)\n",
		len(r.BBSavings), r.Opt.Steps)
	fmt.Fprintf(&b, "scenario: sinusoidal front vehicle (Eq. 8, a_f=9, w∈[−1,1])\n\n")
	b.WriteString(stats.RenderGrouped(
		[]string{"bang-bang", "opportunistic-DRL"},
		[]*stats.Histogram{r.BBHist, r.DRLHist}, 40))
	fmt.Fprintf(&b, "\nmean fuel saving:   bang-bang %6.2f%%   DRL %6.2f%%   (paper: 16.28%% / 23.83%%)\n",
		r.BBMean, r.DRLMean)
	fmt.Fprintf(&b, "mean energy saving: bang-bang %6.2f%%   DRL %6.2f%%   (Σ‖u‖₁, Problem 1)\n",
		r.BBEnergy, r.DRLEnergy)
	fmt.Fprintf(&b, "mean skipped steps per 100 (DRL): %.1f   (paper: 79.4)\n", r.SkipsDRL)
	fmt.Fprintf(&b, "safety violations: %d (Theorem 1 requires 0)\n", r.Violations)
	return b.String()
}

// RenderSeries formats a Fig. 5 / Fig. 6 sweep as a terminal report.
func RenderSeries(title string, r *SeriesResult, paperNote string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d cases per scenario, %d steps)\n", title, r.Opt.Cases, r.Opt.Steps)
	if paperNote != "" {
		fmt.Fprintf(&b, "%s\n", paperNote)
	}
	b.WriteString("\n")
	labels := make([]string, len(r.Points))
	values := make([]float64, len(r.Points))
	for i, pt := range r.Points {
		labels[i] = pt.Scenario.ID
		values[i] = pt.DRLSaving
	}
	b.WriteString(stats.RenderSeries(labels, values, "%", 40))
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s %-22s %12s %12s %10s %6s\n",
		"ID", "v_f range / pattern", "DRL fuel %", "BB fuel %", "skips/100", "viol")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-8s [%g, %g] %-10s %12.2f %12.2f %10.1f %6d\n",
			pt.Scenario.ID, pt.Scenario.VfMin, pt.Scenario.VfMax,
			shortName(pt.Scenario.Profile.Name()),
			pt.DRLSaving, pt.BBSaving, pt.SkipsDRL, pt.Violations)
	}
	return b.String()
}

func shortName(n string) string {
	if i := strings.IndexByte(n, '['); i > 0 {
		return n[:i]
	}
	if i := strings.IndexByte(n, '('); i > 0 {
		return n[:i]
	}
	return n
}

// RenderTiming formats the computation-time analysis.
func RenderTiming(r *TimingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section IV-A — computation-time analysis (%d cases)\n\n", r.Opt.Cases)
	fmt.Fprintf(&b, "RMPC compute per step:        %12v   (paper: 0.12 s on their i7)\n", r.RMPCPerStep)
	fmt.Fprintf(&b, "monitor + policy per step:    %12v   (paper: 0.02 s)\n", r.MonitorPerStep)
	fmt.Fprintf(&b, "skipped steps per 100 (DRL):  %12.1f   (paper: 79.4)\n", r.SkipsPer100)
	fmt.Fprintf(&b, "computation-time saving:      %11.1f%%   (paper: ≈60%%)\n", r.ComputeSaving)
	return b.String()
}

// RenderTable1 formats Table I with measured savings.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table I — v_f settings for Ex.1–Ex.5 (with measured savings)\n\n")
	fmt.Fprintf(&b, "%-8s %-16s %14s %14s\n", "ID", "range of v_f", "DRL saving %", "BB saving %")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8s [%g, %g] %14.2f %14.2f\n",
			row.Scenario.ID, row.Scenario.VfMin, row.Scenario.VfMax, row.DRLSaving, row.BBSaving)
	}
	return b.String()
}

// CSVFig4 renders per-case savings as CSV (case, bb_saving_pct, drl_saving_pct).
func CSVFig4(r *Fig4Result) string {
	var b strings.Builder
	b.WriteString("case,bb_fuel_saving_pct,drl_fuel_saving_pct\n")
	for i := range r.BBSavings {
		fmt.Fprintf(&b, "%d,%.4f,%.4f\n", i, r.BBSavings[i], r.DRLSavings[i])
	}
	return b.String()
}

// CSVSeries renders a sweep as CSV.
func CSVSeries(r *SeriesResult) string {
	var b strings.Builder
	b.WriteString("id,vf_min,vf_max,drl_fuel_saving_pct,bb_fuel_saving_pct,drl_energy_saving_pct,skips_per_100,violations\n")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%s,%g,%g,%.4f,%.4f,%.4f,%.2f,%d\n",
			pt.Scenario.ID, pt.Scenario.VfMin, pt.Scenario.VfMax,
			pt.DRLSaving, pt.BBSaving, pt.DRLEnergy, pt.SkipsDRL, pt.Violations)
	}
	return b.String()
}
