package exp

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachOrderedAbortsAfterError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := forEachOrdered(200, 4, func(i int) (Case, error) {
		ran.Add(1)
		if i == 3 {
			return Case{}, boom
		}
		return Case{}, nil
	}, func(int, *Case) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n >= 200 {
		t.Fatalf("all %d tasks ran despite early error", n)
	} else {
		t.Logf("ran %d of 200 before abort", n)
	}
}

func TestForEachOrderedVisitErrorStops(t *testing.T) {
	stop := errors.New("stop")
	var visited atomic.Int64
	err := forEachOrdered(100, 4, func(i int) (Case, error) { return Case{}, nil },
		func(i int, _ *Case) error {
			visited.Add(1)
			if i == 2 {
				return stop
			}
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
	if v := visited.Load(); v != 3 {
		t.Fatalf("visited %d, want exactly 3 (in-order delivery stops at the error)", v)
	}
}
