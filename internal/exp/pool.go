package exp

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// The shared worker pool bounds the total number of concurrently running
// evaluation episodes across every experiment in the process, so
// concurrent sweeps cannot oversubscribe the machine. Each forEachOrdered
// call additionally respects its own per-call worker cap.
var (
	poolInit sync.Once
	poolSem  chan struct{}
)

func sharedPool() chan struct{} {
	poolInit.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 1 {
			n = 1
		}
		poolSem = make(chan struct{}, n)
	})
	return poolSem
}

// forEachOrdered evaluates run(0)…run(n−1) with at most workers concurrent
// tasks (additionally bounded by the shared pool) and hands every result
// to visit in strict index order. In-order delivery makes downstream
// floating-point accumulation independent of the worker count, and the
// bounded reorder window keeps memory O(workers) regardless of n.
//
// The first error from run or visit is returned; once it occurs, no new
// tasks start (already-running tasks are drained and discarded).
func forEachOrdered(n, workers int, run func(i int) (Case, error), visit func(i int, c *Case) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	type item struct {
		i   int
		c   Case
		err error
	}
	results := make(chan item, workers)
	// window bounds the number of completed-but-undelivered cases, so a
	// slow early case cannot make the reorder buffer grow with n.
	window := make(chan struct{}, 2*workers)
	sem := make(chan struct{}, workers)
	pool := sharedPool()
	var failed atomic.Bool

	var wg sync.WaitGroup
	go func() {
		for i := 0; i < n; i++ {
			if failed.Load() {
				break
			}
			window <- struct{}{}
			sem <- struct{}{}
			pool <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var it item
				if failed.Load() {
					it = item{i: i, err: errAborted}
				} else {
					c, err := run(i)
					it = item{i: i, c: c, err: err}
				}
				<-pool
				<-sem
				results <- it
			}(i)
		}
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]item, 2*workers)
	next := 0
	var firstErr error
	for it := range results {
		if it.err != nil {
			failed.Store(true)
		}
		pending[it.i] = it
		for {
			p, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			<-window
			next++
			if firstErr != nil {
				continue
			}
			if p.err != nil {
				if !errors.Is(p.err, errAborted) {
					firstErr = p.err
				}
				continue
			}
			if err := visit(p.i, &p.c); err != nil {
				firstErr = err
				failed.Store(true)
			}
		}
	}
	return firstErr
}

// errAborted marks tasks cancelled because an earlier task already failed;
// it is never surfaced to callers.
var errAborted = errors.New("exp: aborted after earlier failure")
