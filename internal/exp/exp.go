// Package exp is the plant-agnostic experiment harness: it regenerates
// every table and figure of the paper's evaluation (Section IV) on any
// registered plant — the savings-distribution experiment of Fig. 4, the
// Section IV-A computation-time analysis, and Table-I-style scenario-
// ladder sweeps (Fig. 5 / Fig. 6). The ACC case study reproduces the
// paper's numbers; thermo, orbit, and any future plant.Plant get the same
// pipeline for free.
//
// Episodes are evaluated in parallel on a shared bounded worker pool; each
// case replays the same initial state and disturbance trace against every
// approach, so comparisons are paired. Per-case aggregation is streaming:
// memory stays O(workers), not O(cases), and results are independent of
// the worker count (cases are seeded individually and folded in index
// order).
//
// The harness is a client of the public pkg/oic facade — the same engines
// (compiled safety sets, parametric LP, trained policy) that oicd serves
// over HTTP regenerate the paper's figures here, so the served runtime and
// the published numbers can never drift apart.
package exp

import (
	"fmt"
	"runtime"
	"time"

	"oic/internal/plant"
	"oic/internal/rl"
	"oic/internal/stats"
	"oic/pkg/oic"
)

// Options tunes experiment size. The zero value reproduces the paper's
// scale (500 cases, the plant's default episode length) with a fixed seed.
type Options struct {
	Cases         int   // evaluation cases per scenario (default 500)
	Steps         int   // steps per episode (default: plant's EpisodeSteps)
	Seed          int64 // RNG seed (default 1)
	TrainEpisodes int   // DRL training episodes per scenario (default 500)
	Workers       int   // parallel evaluation workers (default GOMAXPROCS; the shared pool caps effective process-wide concurrency at GOMAXPROCS)

	// KeepPerCase retains the per-case savings slices on Fig4Result for
	// CSV export; off by default so memory stays O(1) in Cases.
	KeepPerCase bool
}

func (o Options) withDefaults(p plant.Plant) Options {
	if o.Cases == 0 {
		o.Cases = 500
	}
	if o.Steps == 0 {
		o.Steps = p.EpisodeSteps()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TrainEpisodes == 0 {
		o.TrainEpisodes = 500
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Case is one paired evaluation of the three approaches on an identical
// (x0, disturbance trace) episode.
type Case struct {
	CostRM, CostBB, CostDRL       float64 // plant cost metric (fuel, kWh, Δv)
	EnergyRM, EnergyBB, EnergyDRL float64 // Σ‖u‖₁
	SkipsBB, SkipsDRL             int
	ForcedDRL                     int
	Violations                    int // across all runs (Theorem 1: must be 0)

	CtrlTimeRM   time.Duration // κ compute time in the always-run baseline
	CtrlTimeDRL  time.Duration
	OverheadDRL  time.Duration
	CtrlCallsRM  int
	CtrlCallsDRL int
}

// saving returns the relative saving of other vs. base in percent,
// guarding against a degenerate zero-cost baseline episode (which would
// otherwise poison histograms and means with NaN/Inf).
func saving(base, other float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - other) / base
}

// SavingBB returns the bang-bang cost saving vs. the always-run baseline
// in percent (0 for a degenerate zero-cost baseline).
func (c *Case) SavingBB() float64 { return saving(c.CostRM, c.CostBB) }

// SavingDRL returns the DRL cost saving vs. the always-run baseline in
// percent (0 for a degenerate zero-cost baseline).
func (c *Case) SavingDRL() float64 { return saving(c.CostRM, c.CostDRL) }

// EnergySavingBB returns the bang-bang Σ‖u‖₁ saving in percent.
func (c *Case) EnergySavingBB() float64 { return saving(c.EnergyRM, c.EnergyBB) }

// EnergySavingDRL returns the DRL Σ‖u‖₁ saving in percent.
func (c *Case) EnergySavingDRL() float64 { return saving(c.EnergyRM, c.EnergyDRL) }

// caseSeed derives an independent per-case RNG seed (splitmix64 finalizer)
// so cases can be generated on any worker in any order and still be
// byte-identical across worker counts.
func caseSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// engineFor binds one scenario to a pkg/oic engine with the options'
// training budget. The same facade the oicd server caches per plant backs
// every experiment run here.
func engineFor(p plant.Plant, scenarioID string, opt Options, policy string) (*oic.Engine, error) {
	return oic.NewEngine(oic.Config{
		Plant: p.Name(), Scenario: scenarioID, Policy: policy,
		Train: oic.TrainConfig{Episodes: opt.TrainEpisodes, Steps: opt.Steps, Seed: opt.Seed},
	})
}

// forEachCase evaluates opt.Cases paired episodes against eng on the
// shared worker pool and folds each Case into visit in index order. With
// withPolicy the engine's configured skipping policy (the trained DRL
// agent in the pipeline) runs as the third arm; otherwise its Case fields
// stay zero.
func forEachCase(eng *oic.Engine, withPolicy bool, opt Options, visit func(i int, c *Case) error) error {
	run := func(i int) (Case, error) {
		x0, w, err := eng.DrawCase(caseSeed(opt.Seed, i), opt.Steps)
		if err != nil {
			return Case{}, fmt.Errorf("exp: case %d: %w", i, err)
		}

		var c Case
		epRM, err := eng.RunEpisode(oic.PolicyAlwaysRun, x0, w)
		if err != nil {
			return Case{}, fmt.Errorf("exp: case %d: %w", i, err)
		}
		epBB, err := eng.RunEpisode(oic.PolicyBangBang, x0, w)
		if err != nil {
			return Case{}, fmt.Errorf("exp: case %d: %w", i, err)
		}
		c.CostRM, c.EnergyRM = epRM.Cost, epRM.Energy
		c.CostBB, c.EnergyBB = epBB.Cost, epBB.Energy
		c.SkipsBB = epBB.Skips
		c.Violations = epRM.Violations + epBB.Violations
		c.CtrlTimeRM = epRM.CtrlTime
		c.CtrlCallsRM = epRM.ControllerCalls
		if withPolicy {
			epDR, err := eng.RunEpisode("", x0, w)
			if err != nil {
				return Case{}, fmt.Errorf("exp: case %d: %w", i, err)
			}
			c.CostDRL, c.EnergyDRL = epDR.Cost, epDR.Energy
			c.SkipsDRL = epDR.Skips
			c.ForcedDRL = epDR.Forced
			c.Violations += epDR.Violations
			c.CtrlTimeDRL = epDR.CtrlTime
			c.OverheadDRL = epDR.OverheadTime
			c.CtrlCallsDRL = epDR.ControllerCalls
		}
		return c, nil
	}
	return forEachOrdered(opt.Cases, opt.Workers, run, visit)
}

// Fig4Result is the savings-distribution experiment (the paper's Figure 4
// on the ACC plant): the distribution of cost savings of bang-bang and
// DRL-based opportunistic intermittent control over the always-run
// baseline, across randomly generated cases.
type Fig4Result struct {
	Plant     string // plant name
	CostLabel string // unit of the cost metric
	Scenario  plant.Scenario
	Opt       Options
	Cases     int

	BBHist     *stats.Histogram // savings histogram, 10 %-wide bins
	DRLHist    *stats.Histogram
	BBSavings  []float64 // per-case savings (%), only with Options.KeepPerCase
	DRLSavings []float64
	BBMean     float64 // paper (acc): 16.28 %
	DRLMean    float64 // paper (acc): 23.83 %
	BBEnergy   float64 // mean energy saving (%) — Problem 1's objective
	DRLEnergy  float64
	SkipsDRL   float64 // mean skipped steps per 100 (paper, acc: 79.4)
	Violations int     // total safety violations (Theorem 1: 0)
	Train      rl.TrainStats
}

// Fig4 trains the DRL agent on the plant's headline scenario and evaluates
// the three approaches on paired random cases, aggregating streamingly.
func Fig4(p plant.Plant, opt Options) (*Fig4Result, error) {
	opt = opt.withDefaults(p)
	sc := p.Headline()
	eng, err := engineFor(p, sc.ID, opt, oic.PolicyDRL)
	if err != nil {
		return nil, fmt.Errorf("exp: Fig4(%s): %w", p.Name(), err)
	}

	// 10 %-wide bins over the full attainable range: a saving vs. a
	// non-negative baseline cost cannot exceed 100 %, but plants differ in
	// where their mass lands (acc ~10–40 %, thermo's bang-bang ~80–90 %).
	// Negative savings (e.g. under-trained agents) land in Underflow and
	// are rendered explicitly; exactly 100 % (zero-cost run) in Overflow.
	edges := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	res := &Fig4Result{
		Plant:     p.Name(),
		CostLabel: p.CostLabel(),
		Scenario:  sc,
		Opt:       opt,
		BBHist:    stats.NewHistogram(edges),
		DRLHist:   stats.NewHistogram(edges),
		Train:     eng.TrainStats(),
	}
	err = forEachCase(eng, true, opt, func(_ int, c *Case) error {
		sb, sd := c.SavingBB(), c.SavingDRL()
		if opt.KeepPerCase {
			res.BBSavings = append(res.BBSavings, sb)
			res.DRLSavings = append(res.DRLSavings, sd)
		}
		res.Cases++
		res.BBHist.Add(sb)
		res.DRLHist.Add(sd)
		res.BBMean += sb
		res.DRLMean += sd
		res.BBEnergy += c.EnergySavingBB()
		res.DRLEnergy += c.EnergySavingDRL()
		res.SkipsDRL += float64(c.SkipsDRL) * 100 / float64(opt.Steps)
		res.Violations += c.Violations
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n := float64(res.Cases); n > 0 {
		res.BBMean /= n
		res.DRLMean /= n
		res.BBEnergy /= n
		res.DRLEnergy /= n
		res.SkipsDRL /= n
	}
	return res, nil
}

// SeriesPoint is one scenario's aggregate in a ladder sweep.
type SeriesPoint struct {
	Scenario   plant.Scenario
	DRLSaving  float64 // mean cost saving vs always-run (%)
	BBSaving   float64
	DRLEnergy  float64 // mean energy saving (%)
	SkipsDRL   float64
	Violations int
}

// SeriesResult is a scenario-ladder sweep (the paper's Fig. 5 / Fig. 6).
type SeriesResult struct {
	Plant     string
	CostLabel string
	Ladder    plant.Ladder
	Opt       Options
	Points    []SeriesPoint
}

// Sweep trains and evaluates one scenario per ladder rung.
func Sweep(p plant.Plant, ladder plant.Ladder, opt Options) (*SeriesResult, error) {
	opt = opt.withDefaults(p)
	res := &SeriesResult{Plant: p.Name(), CostLabel: p.CostLabel(), Ladder: ladder, Opt: opt}
	for _, sc := range ladder.Scenarios {
		eng, err := engineFor(p, sc.ID, opt, oic.PolicyDRL)
		if err != nil {
			return nil, fmt.Errorf("exp: scenario %s: %w", sc.ID, err)
		}
		pt := SeriesPoint{Scenario: sc}
		n := 0
		err = forEachCase(eng, true, opt, func(_ int, c *Case) error {
			pt.DRLSaving += c.SavingDRL()
			pt.BBSaving += c.SavingBB()
			pt.DRLEnergy += c.EnergySavingDRL()
			pt.SkipsDRL += float64(c.SkipsDRL) * 100 / float64(opt.Steps)
			pt.Violations += c.Violations
			n++
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("exp: scenario %s: %w", sc.ID, err)
		}
		if n > 0 {
			pt.DRLSaving /= float64(n)
			pt.BBSaving /= float64(n)
			pt.DRLEnergy /= float64(n)
			pt.SkipsDRL /= float64(n)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// SweepLadder runs Sweep on the plant's ladder with the given name ("" =
// the first, most important ladder).
func SweepLadder(p plant.Plant, name string, opt Options) (*SeriesResult, error) {
	ladders := p.Ladders()
	if len(ladders) == 0 {
		return nil, fmt.Errorf("exp: plant %s has no scenario ladders", p.Name())
	}
	if name == "" {
		return Sweep(p, ladders[0], opt)
	}
	for _, l := range ladders {
		if l.Name == name {
			return Sweep(p, l, opt)
		}
	}
	return nil, fmt.Errorf("exp: plant %s has no ladder %q", p.Name(), name)
}

// TimingResult is the Section IV-A computation-time analysis, generalized:
// the per-step cost of κ against the monitor+policy overhead, and the
// compute saving the skip rate buys.
type TimingResult struct {
	Plant          string
	Opt            Options
	CtrlPerStep    time.Duration // paper (acc RMPC): 0.12 s on their i7
	MonitorPerStep time.Duration // monitor + DQN inference; paper (acc): 0.02 s
	SkipsPer100    float64       // paper (acc): 79.4
	ComputeSaving  float64       // paper (acc): ≈ 60 %
}

// Timing measures the per-step cost of κ against the monitor+policy
// overhead on the headline scenario and applies the paper's accounting:
//
//	saving = (T_κ·n − (T_mon·n + T_κ·(n − skips))) / (T_κ·n).
func Timing(p plant.Plant, opt Options) (*TimingResult, error) {
	opt = opt.withDefaults(p)
	eng, err := engineFor(p, p.Headline().ID, opt, oic.PolicyDRL)
	if err != nil {
		return nil, fmt.Errorf("exp: Timing(%s): %w", p.Name(), err)
	}
	res := &TimingResult{Plant: p.Name(), Opt: opt}
	var ctrlRM, overheadDRL time.Duration
	var callsRM, steps, skips int
	err = forEachCase(eng, true, opt, func(_ int, c *Case) error {
		ctrlRM += c.CtrlTimeRM
		callsRM += c.CtrlCallsRM
		overheadDRL += c.OverheadDRL
		steps += opt.Steps
		skips += c.SkipsDRL
		return nil
	})
	if err != nil {
		return nil, err
	}
	if callsRM == 0 || steps == 0 {
		return nil, fmt.Errorf("exp: Timing: no data")
	}
	res.CtrlPerStep = ctrlRM / time.Duration(callsRM)
	res.MonitorPerStep = overheadDRL / time.Duration(steps)
	res.SkipsPer100 = float64(skips) * 100 / float64(steps)
	tk := res.CtrlPerStep.Seconds()
	tm := res.MonitorPerStep.Seconds()
	n := 100.0
	run := n - res.SkipsPer100
	res.ComputeSaving = 100 * (tk*n - (tm*n + tk*run)) / (tk * n)
	return res, nil
}

// Table1Row is one ladder rung plus the measured savings for it.
type Table1Row struct {
	Scenario  plant.Scenario
	DRLSaving float64
	BBSaving  float64
}

// Table1 reproduces Table I — the plant's primary scenario ladder
// annotated with measured savings from its sweep.
func Table1(p plant.Plant, opt Options) ([]Table1Row, error) {
	series, err := SweepLadder(p, "", opt)
	if err != nil {
		return nil, err
	}
	return Table1FromSeries(series), nil
}

// Table1FromSeries derives the Table I rows from an existing sweep,
// avoiding a second training/evaluation pass.
func Table1FromSeries(series *SeriesResult) []Table1Row {
	rows := make([]Table1Row, len(series.Points))
	for i, pt := range series.Points {
		rows[i] = Table1Row{Scenario: pt.Scenario, DRLSaving: pt.DRLSaving, BBSaving: pt.BBSaving}
	}
	return rows
}
