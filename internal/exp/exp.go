// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section IV) on top of the ACC case
// study — Fig. 4 (fuel-saving histogram over 500 cases), the Section IV-A
// computation-time analysis, Table I (the Ex.1–Ex.5 settings), Fig. 5
// (saving vs. front-speed range), and Fig. 6 (saving vs. regularity).
//
// Episodes are evaluated in parallel across cases; each case replays the
// same initial state and front-vehicle trace against every approach so
// comparisons are paired.
package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"oic/internal/acc"
	"oic/internal/core"
	"oic/internal/rl"
	"oic/internal/stats"
	"oic/internal/traffic"
)

// Options tunes experiment size. The zero value reproduces the paper's
// scale (500 cases of 100 steps) with a fixed seed.
type Options struct {
	Cases         int   // evaluation cases per scenario (default 500)
	Steps         int   // steps per episode (default 100)
	Seed          int64 // RNG seed (default 1)
	TrainEpisodes int   // DRL training episodes per scenario (default 500)
	Workers       int   // parallel evaluation workers (default GOMAXPROCS)
}

func (o Options) withDefaults() Options {
	if o.Cases == 0 {
		o.Cases = 500
	}
	if o.Steps == 0 {
		o.Steps = acc.EpisodeSteps
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TrainEpisodes == 0 {
		o.TrainEpisodes = 500
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Case is one paired evaluation of the three approaches on an identical
// (x0, v_f trace) episode.
type Case struct {
	FuelRM, FuelBB, FuelDRL       float64
	EnergyRM, EnergyBB, EnergyDRL float64
	SkipsBB, SkipsDRL             int
	ForcedDRL                     int
	Violations                    int // across all three runs (must be 0)

	CtrlTimeRM   time.Duration // κ compute time in the RMPC-only run
	CtrlTimeDRL  time.Duration
	OverheadDRL  time.Duration
	CtrlCallsRM  int
	CtrlCallsDRL int
}

// FuelSavingBB returns the bang-bang fuel saving vs. RMPC-only in percent.
func (c *Case) FuelSavingBB() float64 { return 100 * (c.FuelRM - c.FuelBB) / c.FuelRM }

// FuelSavingDRL returns the DRL fuel saving vs. RMPC-only in percent.
func (c *Case) FuelSavingDRL() float64 { return 100 * (c.FuelRM - c.FuelDRL) / c.FuelRM }

// runCases evaluates opt.Cases paired episodes in parallel. The drl policy
// may be nil to skip the DRL run (Case fields stay zero).
func runCases(m *acc.Model, profile traffic.Profile, drl core.SkipPolicy, opt Options) ([]Case, error) {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		x0 []float64
		vf []float64
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	x0s, err := m.SampleInitialStates(opt.Cases, rng)
	if err != nil {
		return nil, fmt.Errorf("exp: sampling initial states: %w", err)
	}
	jobs := make([]job, opt.Cases)
	for i := range jobs {
		jobs[i] = job{x0: x0s[i], vf: profile.Generate(rng, opt.Steps)}
	}

	out := make([]Case, opt.Cases)
	errs := make([]error, opt.Cases)
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Workers)
	fm := traffic.DefaultFuelModel()
	for i := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			j := jobs[i]
			var c Case
			epRM, err := m.RunEpisode(core.AlwaysRun{}, j.x0, j.vf, fm)
			if err != nil {
				errs[i] = err
				return
			}
			epBB, err := m.RunEpisode(core.BangBang{}, j.x0, j.vf, fm)
			if err != nil {
				errs[i] = err
				return
			}
			c.FuelRM, c.EnergyRM = epRM.Fuel, epRM.Energy
			c.FuelBB, c.EnergyBB = epBB.Fuel, epBB.Energy
			c.SkipsBB = epBB.Result.Skips
			c.Violations = epRM.Result.ViolationsX + epBB.Result.ViolationsX
			c.CtrlTimeRM = epRM.Result.CtrlTime
			c.CtrlCallsRM = epRM.Result.ControllerCalls
			if drl != nil {
				epDR, err := m.RunEpisode(drl, j.x0, j.vf, fm)
				if err != nil {
					errs[i] = err
					return
				}
				c.FuelDRL, c.EnergyDRL = epDR.Fuel, epDR.Energy
				c.SkipsDRL = epDR.Result.Skips
				c.ForcedDRL = epDR.Result.Forced
				c.Violations += epDR.Result.ViolationsX
				c.CtrlTimeDRL = epDR.Result.CtrlTime
				c.OverheadDRL = epDR.Result.OverheadTime
				c.CtrlCallsDRL = epDR.Result.ControllerCalls
			}
			out[i] = c
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Fig4Result reproduces Figure 4: the distribution of fuel-consumption
// savings of bang-bang control and DRL-based opportunistic intermittent
// control over RMPC-only, across randomly generated cases.
type Fig4Result struct {
	Opt        Options
	BBHist     *stats.Histogram // savings histogram, 10 %-wide bins
	DRLHist    *stats.Histogram
	BBSavings  []float64 // per-case fuel savings (%)
	DRLSavings []float64
	BBMean     float64 // paper: 16.28 %
	DRLMean    float64 // paper: 23.83 %
	BBEnergy   float64 // mean energy saving (%) — Problem 1's objective
	DRLEnergy  float64
	SkipsDRL   float64 // mean skipped steps per 100 (paper: 79.4)
	Violations int     // total safety violations (Theorem 1: 0)
	Train      rl.TrainStats
}

// Fig4 trains the DRL agent on the Eq. 8 sinusoid scenario and evaluates
// the three approaches on paired random cases.
func Fig4(opt Options) (*Fig4Result, error) {
	opt = opt.withDefaults()
	sc := acc.Fig4Scenario()
	m, err := acc.ModelFor(sc)
	if err != nil {
		return nil, err
	}
	agent, train, err := m.TrainDRL(sc.Profile, acc.TrainConfig{
		Episodes: opt.TrainEpisodes, Steps: opt.Steps, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	cases, err := runCases(m, sc.Profile, m.DRLPolicy(agent), opt)
	if err != nil {
		return nil, err
	}

	edges := []float64{0, 10, 20, 30, 40, 50, 60}
	res := &Fig4Result{
		Opt:     opt,
		BBHist:  stats.NewHistogram(edges),
		DRLHist: stats.NewHistogram(edges),
		Train:   train,
	}
	for i := range cases {
		c := &cases[i]
		sb, sd := c.FuelSavingBB(), c.FuelSavingDRL()
		res.BBSavings = append(res.BBSavings, sb)
		res.DRLSavings = append(res.DRLSavings, sd)
		res.BBHist.Add(sb)
		res.DRLHist.Add(sd)
		res.BBMean += sb
		res.DRLMean += sd
		res.BBEnergy += 100 * (c.EnergyRM - c.EnergyBB) / c.EnergyRM
		res.DRLEnergy += 100 * (c.EnergyRM - c.EnergyDRL) / c.EnergyRM
		res.SkipsDRL += float64(c.SkipsDRL) * 100 / float64(opt.Steps)
		res.Violations += c.Violations
	}
	n := float64(len(cases))
	res.BBMean /= n
	res.DRLMean /= n
	res.BBEnergy /= n
	res.DRLEnergy /= n
	res.SkipsDRL /= n
	return res, nil
}

// SeriesPoint is one scenario's aggregate in a Fig. 5 / Fig. 6 sweep.
type SeriesPoint struct {
	Scenario   acc.Scenario
	DRLSaving  float64 // mean fuel saving vs RMPC-only (%)
	BBSaving   float64
	DRLEnergy  float64 // mean energy saving (%)
	SkipsDRL   float64
	Violations int
}

// SeriesResult is a scenario sweep (Fig. 5 or Fig. 6).
type SeriesResult struct {
	Opt    Options
	Points []SeriesPoint
}

// sweep trains and evaluates one scenario per point.
func sweep(scs []acc.Scenario, opt Options) (*SeriesResult, error) {
	opt = opt.withDefaults()
	res := &SeriesResult{Opt: opt}
	for _, sc := range scs {
		m, err := acc.ModelFor(sc)
		if err != nil {
			return nil, fmt.Errorf("exp: scenario %s: %w", sc.ID, err)
		}
		agent, _, err := m.TrainDRL(sc.Profile, acc.TrainConfig{
			Episodes: opt.TrainEpisodes, Steps: opt.Steps, Seed: opt.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("exp: scenario %s: %w", sc.ID, err)
		}
		cases, err := runCases(m, sc.Profile, m.DRLPolicy(agent), opt)
		if err != nil {
			return nil, fmt.Errorf("exp: scenario %s: %w", sc.ID, err)
		}
		pt := SeriesPoint{Scenario: sc}
		for i := range cases {
			c := &cases[i]
			pt.DRLSaving += c.FuelSavingDRL()
			pt.BBSaving += c.FuelSavingBB()
			pt.DRLEnergy += 100 * (c.EnergyRM - c.EnergyDRL) / c.EnergyRM
			pt.SkipsDRL += float64(c.SkipsDRL) * 100 / float64(opt.Steps)
			pt.Violations += c.Violations
		}
		n := float64(len(cases))
		pt.DRLSaving /= n
		pt.BBSaving /= n
		pt.DRLEnergy /= n
		pt.SkipsDRL /= n
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Fig5 reproduces Figure 5: DRL fuel savings across the shrinking
// front-speed ranges of Ex.1–Ex.5 (Table I). The paper's shape: savings
// increase as the range narrows.
func Fig5(opt Options) (*SeriesResult, error) {
	return sweep(acc.Table1Scenarios(), opt)
}

// Fig6 reproduces Figure 6: DRL fuel savings across the regularity ladder
// Ex.6–Ex.10. The paper's shape: savings increase with regularity from
// Ex.7 to Ex.10, with purely-random Ex.6 an outlier on the high side.
func Fig6(opt Options) (*SeriesResult, error) {
	return sweep(acc.RegularityScenarios(), opt)
}

// TimingResult reproduces the Section IV-A computation-time analysis.
type TimingResult struct {
	Opt            Options
	RMPCPerStep    time.Duration // paper: 0.12 s on their i7
	MonitorPerStep time.Duration // monitor + DQN inference; paper: 0.02 s
	SkipsPer100    float64       // paper: 79.4
	ComputeSaving  float64       // paper: ≈ 60 %
}

// Timing measures the per-step cost of the RMPC against the monitor+policy
// overhead and applies the paper's accounting:
//
//	saving = (T_κ·n − (T_mon·n + T_κ·(n − skips))) / (T_κ·n).
func Timing(opt Options) (*TimingResult, error) {
	opt = opt.withDefaults()
	sc := acc.Fig4Scenario()
	m, err := acc.ModelFor(sc)
	if err != nil {
		return nil, err
	}
	agent, _, err := m.TrainDRL(sc.Profile, acc.TrainConfig{
		Episodes: opt.TrainEpisodes, Steps: opt.Steps, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	cases, err := runCases(m, sc.Profile, m.DRLPolicy(agent), opt)
	if err != nil {
		return nil, err
	}
	res := &TimingResult{Opt: opt}
	var ctrlRM, overheadDRL time.Duration
	var callsRM int
	var steps, skips int
	for i := range cases {
		c := &cases[i]
		ctrlRM += c.CtrlTimeRM
		callsRM += c.CtrlCallsRM
		overheadDRL += c.OverheadDRL
		steps += opt.Steps
		skips += c.SkipsDRL
	}
	if callsRM == 0 || steps == 0 {
		return nil, fmt.Errorf("exp: Timing: no data")
	}
	res.RMPCPerStep = ctrlRM / time.Duration(callsRM)
	res.MonitorPerStep = overheadDRL / time.Duration(steps)
	res.SkipsPer100 = float64(skips) * 100 / float64(steps)
	tk := res.RMPCPerStep.Seconds()
	tm := res.MonitorPerStep.Seconds()
	n := 100.0
	run := n - res.SkipsPer100
	res.ComputeSaving = 100 * (tk*n - (tm*n + tk*run)) / (tk * n)
	return res, nil
}

// Table1Row is one row of Table I plus our measured outcome for it.
type Table1Row struct {
	Scenario  acc.Scenario
	DRLSaving float64
	BBSaving  float64
}

// Table1 reproduces Table I (the Ex.1–Ex.5 settings) and annotates each
// row with the measured savings from the Fig. 5 sweep.
func Table1(opt Options) ([]Table1Row, error) {
	series, err := Fig5(opt)
	if err != nil {
		return nil, err
	}
	return Table1FromSeries(series), nil
}

// Table1FromSeries derives the Table I rows from an existing Fig. 5 sweep,
// avoiding a second training/evaluation pass.
func Table1FromSeries(series *SeriesResult) []Table1Row {
	rows := make([]Table1Row, len(series.Points))
	for i, pt := range series.Points {
		rows[i] = Table1Row{Scenario: pt.Scenario, DRLSaving: pt.DRLSaving, BBSaving: pt.BBSaving}
	}
	return rows
}
