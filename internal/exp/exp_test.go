package exp

import (
	"strings"
	"testing"

	"oic/internal/acc"
	"oic/internal/core"
)

// smallOpt keeps integration tests fast; full-scale runs live behind the
// CLI and benchmarks.
func smallOpt() Options {
	return Options{Cases: 6, Steps: 40, Seed: 2, TrainEpisodes: 4}
}

func TestRunCasesPairedAndSafe(t *testing.T) {
	m, err := acc.NewModel(acc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases, err := runCases(m, acc.Fig4Scenario().Profile, core.BangBang{}, smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 6 {
		t.Fatalf("cases = %d", len(cases))
	}
	for i, c := range cases {
		if c.Violations != 0 {
			t.Errorf("case %d: %d violations", i, c.Violations)
		}
		if c.FuelRM <= 0 || c.FuelBB <= 0 {
			t.Errorf("case %d: fuel %v/%v", i, c.FuelRM, c.FuelBB)
		}
		if c.CtrlCallsRM != 40 {
			t.Errorf("case %d: RMPC-only controller calls = %d, want 40", i, c.CtrlCallsRM)
		}
	}
}

func TestRunCasesDeterministicAcrossWorkerCounts(t *testing.T) {
	m, err := acc.NewModel(acc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt1 := smallOpt()
	opt1.Workers = 1
	opt8 := smallOpt()
	opt8.Workers = 8
	a, err := runCases(m, acc.Fig4Scenario().Profile, nil, opt1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runCases(m, acc.Fig4Scenario().Profile, nil, opt8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].FuelBB != b[i].FuelBB || a[i].SkipsBB != b[i].SkipsBB {
			t.Fatalf("case %d differs across worker counts", i)
		}
	}
}

func TestFig4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := Fig4(smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Violations != 0 {
		t.Errorf("violations = %d", r.Violations)
	}
	if len(r.BBSavings) != 6 || len(r.DRLSavings) != 6 {
		t.Fatalf("savings slices: %d/%d", len(r.BBSavings), len(r.DRLSavings))
	}
	if got := r.BBHist.Total() + r.BBHist.Underflow + r.BBHist.Overflow; got != 6 {
		t.Errorf("histogram total = %d", got)
	}
	out := RenderFig4(r)
	for _, want := range []string{"Figure 4", "bang-bang", "opportunistic-DRL", "Theorem 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	csv := CSVFig4(r)
	if strings.Count(csv, "\n") != 7 { // header + 6 rows
		t.Errorf("csv rows:\n%s", csv)
	}
}

func TestTimingSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := Timing(smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.RMPCPerStep <= 0 || r.MonitorPerStep <= 0 {
		t.Errorf("timings: %v / %v", r.RMPCPerStep, r.MonitorPerStep)
	}
	if r.RMPCPerStep < r.MonitorPerStep {
		t.Errorf("RMPC (%v) should dominate the monitor+policy overhead (%v)", r.RMPCPerStep, r.MonitorPerStep)
	}
	if r.ComputeSaving <= 0 || r.ComputeSaving >= 100 {
		t.Errorf("compute saving = %v%%", r.ComputeSaving)
	}
	if !strings.Contains(RenderTiming(r), "computation-time saving") {
		t.Error("render missing summary")
	}
}

func TestSweepSingleScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := sweep(acc.Table1Scenarios()[:1], smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 1 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.Points[0].Violations != 0 {
		t.Errorf("violations = %d", r.Points[0].Violations)
	}
	out := RenderSeries("Figure 5", r, "note")
	if !strings.Contains(out, "Ex.1") {
		t.Errorf("render:\n%s", out)
	}
	if !strings.Contains(CSVSeries(r), "Ex.1,30,50") {
		t.Error("csv missing scenario row")
	}
}

func TestTable1FromSeries(t *testing.T) {
	series := &SeriesResult{Points: []SeriesPoint{
		{Scenario: acc.Table1Scenarios()[0], DRLSaving: 7.5, BBSaving: 5.5},
		{Scenario: acc.Table1Scenarios()[1], DRLSaving: 8.5, BBSaving: 6.0},
	}}
	rows := Table1FromSeries(series)
	if len(rows) != 2 || rows[0].DRLSaving != 7.5 || rows[1].Scenario.ID != "Ex.2" {
		t.Fatalf("rows = %+v", rows)
	}
	out := RenderTable1(rows)
	for _, want := range []string{"Table I", "Ex.1", "[30, 50]", "7.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestShortNameHelper(t *testing.T) {
	cases := map[string]string{
		"bounded-random[30,50]|a|<=20": "bounded-random",
		"sinusoid(amp=9,noise=1)":      "sinusoid",
		"plain":                        "plain",
	}
	for in, want := range cases {
		if got := shortName(in); got != want {
			t.Errorf("shortName(%q) = %q, want %q", in, got, want)
		}
	}
}
