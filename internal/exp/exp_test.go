package exp

import (
	"strings"
	"testing"

	"oic/internal/plant"
	"oic/pkg/oic"

	// Register the case studies the tests sweep over.
	_ "oic/internal/acc"
	_ "oic/internal/orbit"
	_ "oic/internal/thermo"
)

// smallOpt keeps integration tests fast; full-scale runs live behind the
// CLI and benchmarks.
func smallOpt() Options {
	return Options{Cases: 6, Steps: 40, Seed: 2, TrainEpisodes: 4, KeepPerCase: true}
}

func accPlant(t *testing.T) plant.Plant {
	t.Helper()
	p, err := plant.Get("acc")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// headlineEngine builds the harness's facade engine for the headline
// scenario with the given skipping policy as the third experiment arm.
func headlineEngine(t *testing.T, p plant.Plant, policy string, opt Options) *oic.Engine {
	t.Helper()
	eng, err := engineFor(p, p.Headline().ID, opt, policy)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func collectCases(t *testing.T, eng *oic.Engine, withPolicy bool, opt Options) []Case {
	t.Helper()
	var out []Case
	err := forEachCase(eng, withPolicy, opt, func(i int, c *Case) error {
		if i != len(out) {
			t.Fatalf("visit out of order: got index %d, want %d", i, len(out))
		}
		out = append(out, *c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRunCasesPairedAndSafe(t *testing.T) {
	opt := smallOpt()
	eng := headlineEngine(t, accPlant(t), oic.PolicyBangBang, opt)
	cases := collectCases(t, eng, true, opt)
	if len(cases) != 6 {
		t.Fatalf("cases = %d", len(cases))
	}
	for i, c := range cases {
		if c.Violations != 0 {
			t.Errorf("case %d: %d violations", i, c.Violations)
		}
		if c.CostRM <= 0 || c.CostBB <= 0 {
			t.Errorf("case %d: cost %v/%v", i, c.CostRM, c.CostBB)
		}
		if c.CtrlCallsRM != 40 {
			t.Errorf("case %d: always-run controller calls = %d, want 40", i, c.CtrlCallsRM)
		}
	}
}

func TestRunCasesDeterministicAcrossWorkerCounts(t *testing.T) {
	opt1 := smallOpt()
	opt1.Workers = 1
	opt8 := smallOpt()
	opt8.Workers = 8
	eng := headlineEngine(t, accPlant(t), oic.PolicyBangBang, opt1)
	a := collectCases(t, eng, false, opt1)
	b := collectCases(t, eng, false, opt8)
	for i := range a {
		if a[i].CostBB != b[i].CostBB || a[i].SkipsBB != b[i].SkipsBB {
			t.Fatalf("case %d differs across worker counts", i)
		}
	}
}

func TestSavingGuardsDegenerateBaseline(t *testing.T) {
	c := &Case{CostRM: 0, CostBB: 3, CostDRL: 5, EnergyRM: 0, EnergyBB: 1, EnergyDRL: 1}
	for name, got := range map[string]float64{
		"SavingBB":        c.SavingBB(),
		"SavingDRL":       c.SavingDRL(),
		"EnergySavingBB":  c.EnergySavingBB(),
		"EnergySavingDRL": c.EnergySavingDRL(),
	} {
		if got != 0 {
			t.Errorf("%s = %v with zero baseline, want 0", name, got)
		}
	}
	c2 := &Case{CostRM: 10, CostBB: 8}
	if got := c2.SavingBB(); got != 20 {
		t.Errorf("SavingBB = %v, want 20", got)
	}
}

func TestFig4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := Fig4(accPlant(t), smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Violations != 0 {
		t.Errorf("violations = %d", r.Violations)
	}
	if r.Cases != 6 || len(r.BBSavings) != 6 || len(r.DRLSavings) != 6 {
		t.Fatalf("cases %d, savings slices: %d/%d", r.Cases, len(r.BBSavings), len(r.DRLSavings))
	}
	if got := r.BBHist.Total() + r.BBHist.Underflow + r.BBHist.Overflow; got != 6 {
		t.Errorf("histogram total = %d", got)
	}
	out := RenderFig4(r)
	for _, want := range []string{"Figure 4", "bang-bang", "opportunistic-DRL", "Theorem 1", "acc"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	csv := CSVFig4(r)
	if strings.Count(csv, "\n") != 7 { // header + 6 rows
		t.Errorf("csv rows:\n%s", csv)
	}
}

// TestFig4StreamingMatchesKeepPerCase checks the O(1)-memory path computes
// the exact same aggregates as the per-case-retaining path.
func TestFig4StreamingMatchesKeepPerCase(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := accPlant(t)
	kept, err := Fig4(p, smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	optStream := smallOpt()
	optStream.KeepPerCase = false
	stream, err := Fig4(p, optStream)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream.BBSavings) != 0 || len(stream.DRLSavings) != 0 {
		t.Errorf("streaming run retained %d/%d per-case savings", len(stream.BBSavings), len(stream.DRLSavings))
	}
	if stream.BBMean != kept.BBMean || stream.DRLMean != kept.DRLMean || stream.SkipsDRL != kept.SkipsDRL {
		t.Errorf("streaming aggregates differ: %v/%v vs %v/%v", stream.BBMean, stream.DRLMean, kept.BBMean, kept.DRLMean)
	}
}

// TestFig4DeterministicAcrossWorkerCounts is the determinism claim of
// cmd/oic's doc comment, end to end: the full experiment — DRL training
// included — produces identical results for 1 and 4 workers at a fixed
// seed.
func TestFig4DeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := accPlant(t)
	opt1 := smallOpt()
	opt1.Workers = 1
	opt4 := smallOpt()
	opt4.Workers = 4
	a, err := Fig4(p, opt1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4(p, opt4)
	if err != nil {
		t.Fatal(err)
	}
	if a.BBMean != b.BBMean || a.DRLMean != b.DRLMean ||
		a.BBEnergy != b.BBEnergy || a.DRLEnergy != b.DRLEnergy ||
		a.SkipsDRL != b.SkipsDRL || a.Violations != b.Violations {
		t.Fatalf("Fig4 differs across worker counts:\n1 worker: %+v\n4 workers: %+v", a, b)
	}
	for i := range a.BBSavings {
		if a.BBSavings[i] != b.BBSavings[i] || a.DRLSavings[i] != b.DRLSavings[i] {
			t.Fatalf("per-case savings differ at case %d", i)
		}
	}
}

func TestTimingSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := Timing(accPlant(t), smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.CtrlPerStep <= 0 || r.MonitorPerStep <= 0 {
		t.Errorf("timings: %v / %v", r.CtrlPerStep, r.MonitorPerStep)
	}
	if r.CtrlPerStep < r.MonitorPerStep {
		t.Errorf("κ (%v) should dominate the monitor+policy overhead (%v) on the RMPC plant", r.CtrlPerStep, r.MonitorPerStep)
	}
	// The derived saving follows the paper's accounting
	// saving = skip-rate − 100·T_mon/T_κ. With the warm-started RMPC, T_κ
	// is small enough that an under-trained low-skip run can legitimately
	// go slightly negative, so instead of positivity assert the bounds the
	// accounting implies: strictly below the skip rate (the monitor always
	// costs something) and above the skip rate minus the full monitor/κ
	// ratio implied by the (already asserted) T_κ ≥ T_mon, i.e. −100 %.
	if r.ComputeSaving >= r.SkipsPer100 {
		t.Errorf("compute saving %v%% not below skip rate %v%%", r.ComputeSaving, r.SkipsPer100)
	}
	if r.ComputeSaving <= r.SkipsPer100-100 {
		t.Errorf("compute saving %v%% below skip-rate−100 floor (skips %v)", r.ComputeSaving, r.SkipsPer100)
	}
	if !strings.Contains(RenderTiming(r), "computation-time saving") {
		t.Error("render missing summary")
	}
}

func TestSweepSingleScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := accPlant(t)
	ladder := p.Ladders()[0]
	ladder.Scenarios = ladder.Scenarios[:1]
	r, err := Sweep(p, ladder, smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 1 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.Points[0].Violations != 0 {
		t.Errorf("violations = %d", r.Points[0].Violations)
	}
	out := RenderSeries(r)
	if !strings.Contains(out, "Ex.1") {
		t.Errorf("render:\n%s", out)
	}
	if !strings.Contains(CSVSeries(r), "Ex.1") {
		t.Error("csv missing scenario row")
	}
}

// TestCrossPlantFig4 runs a tiny headline experiment on every registered
// plant: the whole harness — training included — must work for each, with
// zero safety violations (Theorem 1 is plant-agnostic).
func TestCrossPlantFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	for _, name := range plant.Names() {
		t.Run(name, func(t *testing.T) {
			p, err := plant.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{Cases: 3, Steps: 25, Seed: 3, TrainEpisodes: 2}
			r, err := Fig4(p, opt)
			if err != nil {
				t.Fatal(err)
			}
			if r.Violations != 0 {
				t.Errorf("violations = %d", r.Violations)
			}
			if r.Cases != 3 {
				t.Errorf("cases = %d", r.Cases)
			}
			if !strings.Contains(RenderFig4(r), p.CostLabel()) {
				t.Error("render missing cost label")
			}
		})
	}
}

func TestSweepLadderLookup(t *testing.T) {
	p := accPlant(t)
	if _, err := SweepLadder(p, "no-such-ladder", Options{Cases: 1, Steps: 5, TrainEpisodes: 1}); err == nil {
		t.Fatal("unknown ladder should fail")
	}
}

func TestTable1FromSeries(t *testing.T) {
	p := accPlant(t)
	scs := p.Ladders()[0].Scenarios
	series := &SeriesResult{Points: []SeriesPoint{
		{Scenario: scs[0], DRLSaving: 7.5, BBSaving: 5.5},
		{Scenario: scs[1], DRLSaving: 8.5, BBSaving: 6.0},
	}}
	rows := Table1FromSeries(series)
	if len(rows) != 2 || rows[0].DRLSaving != 7.5 || rows[1].Scenario.ID != "Ex.2" {
		t.Fatalf("rows = %+v", rows)
	}
	out := RenderTable1(rows)
	for _, want := range []string{"Table I", "Ex.1", "[30, 50]", "7.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
