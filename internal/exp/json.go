package exp

import (
	"oic/internal/stats"
	"oic/pkg/oic"
)

// This file converts experiment aggregates into the pkg/oic report wire
// types, the machine-readable results `oic -json` emits so CI and
// dashboards consume structured data instead of scraping text reports.

func histJSON(h *stats.Histogram) oic.Histogram {
	return oic.Histogram{
		Edges:     append([]float64(nil), h.Edges...),
		Counts:    append([]int(nil), h.Counts...),
		Underflow: h.Underflow,
		Overflow:  h.Overflow,
	}
}

// JSONFig4 converts a savings-distribution result to its wire report.
func JSONFig4(r *Fig4Result) oic.Fig4Report {
	return oic.Fig4Report{
		Kind:          "fig4",
		Plant:         r.Plant,
		CostLabel:     r.CostLabel,
		Scenario:      r.Scenario.ID,
		Cases:         r.Cases,
		Steps:         r.Opt.Steps,
		Seed:          r.Opt.Seed,
		BBHist:        histJSON(r.BBHist),
		DRLHist:       histJSON(r.DRLHist),
		BBMeanPct:     r.BBMean,
		DRLMeanPct:    r.DRLMean,
		BBEnergyPct:   r.BBEnergy,
		DRLEnergyPct:  r.DRLEnergy,
		SkipsPer100:   r.SkipsDRL,
		Violations:    r.Violations,
		TrainEpisodes: r.Train.Episodes,
	}
}

// JSONSeries converts a ladder sweep to its wire report.
func JSONSeries(r *SeriesResult) oic.SeriesReport {
	out := oic.SeriesReport{
		Kind:      "series",
		Plant:     r.Plant,
		CostLabel: r.CostLabel,
		Ladder:    r.Ladder.Name,
		Cases:     r.Opt.Cases,
		Steps:     r.Opt.Steps,
		Seed:      r.Opt.Seed,
	}
	for _, pt := range r.Points {
		out.Points = append(out.Points, oic.SeriesPointReport{
			ID:           pt.Scenario.ID,
			Detail:       pt.Scenario.Detail,
			DRLSavingPct: pt.DRLSaving,
			BBSavingPct:  pt.BBSaving,
			DRLEnergyPct: pt.DRLEnergy,
			SkipsPer100:  pt.SkipsDRL,
			Violations:   pt.Violations,
		})
	}
	return out
}

// JSONTable1 converts Table I rows to their wire report.
func JSONTable1(plantName string, rows []Table1Row) oic.Table1Report {
	out := oic.Table1Report{Kind: "table1", Plant: plantName}
	for _, row := range rows {
		out.Rows = append(out.Rows, oic.Table1RowReport{
			ID:           row.Scenario.ID,
			Detail:       row.Scenario.Detail,
			DRLSavingPct: row.DRLSaving,
			BBSavingPct:  row.BBSaving,
		})
	}
	return out
}

// JSONTiming converts the computation-time analysis to its wire report.
func JSONTiming(r *TimingResult) oic.TimingReport {
	return oic.TimingReport{
		Kind:             "timing",
		Plant:            r.Plant,
		Cases:            r.Opt.Cases,
		CtrlPerStepNS:    r.CtrlPerStep.Nanoseconds(),
		MonitorPerStepNS: r.MonitorPerStep.Nanoseconds(),
		SkipsPer100:      r.SkipsPer100,
		ComputeSavingPct: r.ComputeSaving,
	}
}
