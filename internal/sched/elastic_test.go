package sched

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"oic/internal/budget"
	"oic/internal/fault"
)

// Regression for the degraded-accounting bug: a fault-pass degradation is
// a budget-forced safe skip and must count in Shed (and ShedBudgetMin),
// not just Degraded — TickReport documents Degraded ⊆ shed, and the
// elastic controller's ReclaimedRatio input rides on Shed being right.
func TestFaultDegradationCountsAsShed(t *testing.T) {
	inj := fault.New(1)
	inj.Enable(fault.SiteSchedCompute, 1) // every compute faults
	members := []Member{
		&fakeMember{dec: Decision{Compute: true, Budget: 5}},
		&fakeMember{dec: Decision{Compute: true, Budget: 3}},
		&fakeMember{dec: Decision{Budget: 4}}, // plain skip
	}
	s := New(Config{Faults: inj})
	st, err := s.Tick(context.Background(), members)
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded != 2 {
		t.Fatalf("Degraded = %d, want 2", st.Degraded)
	}
	if st.Shed != 2 {
		t.Fatalf("Shed = %d, want 2 (degraded ⊆ shed)", st.Shed)
	}
	if st.ShedBudgetMin != 3 {
		t.Fatalf("ShedBudgetMin = %d, want 3 (min budget among degraded sheds)", st.ShedBudgetMin)
	}
	if st.Skips != 1 || st.Computes != 2 {
		t.Fatalf("lanes = %d skips / %d computes, want 1/2 (planned lanes unchanged)",
			st.Skips, st.Computes)
	}
}

// Same regression for the deadline pass: late degradations fold into the
// shed aggregate, including the ShedBudgetMin running minimum.
func TestDeadlineDegradationCountsAsShed(t *testing.T) {
	members := []Member{
		&fakeMember{dec: Decision{Compute: true, Forced: true}},
		&fakeMember{dec: Decision{Compute: true, Budget: 2}},
		&fakeMember{dec: Decision{Compute: true, Budget: 4}},
	}
	s := New(Config{TickDeadline: 1}) // 1ns: expired before the step phase
	st, err := s.Tick(context.Background(), members)
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded != 2 || st.Shed != 2 {
		t.Fatalf("Degraded/Shed = %d/%d, want 2/2", st.Degraded, st.Shed)
	}
	if st.ShedBudgetMin != 2 {
		t.Fatalf("ShedBudgetMin = %d, want 2", st.ShedBudgetMin)
	}
}

// Degradations from both passes and the planned overflow share one shed
// aggregate: a planned shed with a lower remaining budget still wins the
// ShedBudgetMin minimum.
func TestPlannedAndDegradedShedsShareAggregate(t *testing.T) {
	inj := fault.New(3)
	inj.FailFirst(fault.SiteSchedCompute, 1) // only the first compute faults
	members := []Member{
		&fakeMember{dec: Decision{Compute: true, Budget: 6}}, // computes, then faults → degrades
		&fakeMember{dec: Decision{Compute: true, Budget: 1}}, // planned shed (budget 1 runs first... see sort)
	}
	// Budget 1: the optional queue runs lowest-budget-first, so member 1
	// computes and member 0 is shed by the plan; the injected fault then
	// degrades member 1's compute.
	s := New(Config{ComputeBudget: 1, Faults: inj})
	st, err := s.Tick(context.Background(), members)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != 2 || st.Degraded != 1 {
		t.Fatalf("Shed/Degraded = %d/%d, want 2/1", st.Shed, st.Degraded)
	}
	if st.ShedBudgetMin != 1 {
		t.Fatalf("ShedBudgetMin = %d, want 1 (degraded member's budget)", st.ShedBudgetMin)
	}
}

// TickFrom pins the unified deadline clock: a tick whose caller-side
// start already exhausted the deadline degrades optional computes even
// though the scheduler-local elapsed time is ~zero. Tick (no external
// start) must not degrade under the same generous deadline.
func TestTickFromUsesCallerClock(t *testing.T) {
	mk := func() []Member {
		return []Member{
			&fakeMember{dec: Decision{Compute: true, Forced: true}},
			&fakeMember{dec: Decision{Compute: true, Budget: 3}},
		}
	}
	s := New(Config{TickDeadline: time.Minute})
	st, err := s.TickFrom(context.Background(), mk(), time.Now().Add(-2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded != 1 || st.Shed != 1 {
		t.Fatalf("stale caller clock: Degraded/Shed = %d/%d, want 1/1", st.Degraded, st.Shed)
	}
	st, err = s.Tick(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded != 0 {
		t.Fatalf("fresh clock under 1m deadline: Degraded = %d, want 0", st.Degraded)
	}
}

// The elastic forced-floor property, end to end at the scheduler layer:
// drive SetComputeBudget every tick from a budget.Controller fed
// adversarial margins (deep overruns included), and verify that (a) the
// controller never sets the budget below the previous tick's forced
// demand and (b) the plan never sheds a forced compute, whatever the
// budget trajectory does. Runs under -race in CI.
func TestElasticBudgetNeverShedsForced(t *testing.T) {
	const n = 96
	rng := rand.New(rand.NewSource(11))
	members := make([]Member, n)
	fakes := make([]*fakeMember, n)
	for i := range members {
		m := &fakeMember{}
		fakes[i] = m
		members[i] = m
	}
	ctrl := budget.New(budget.Config{Min: 1, Max: 48, Target: 10 * time.Millisecond}, 24)
	s := New(Config{ComputeBudget: ctrl.Budget(), Workers: 4})
	forced := 0
	for tick := 0; tick < 300; tick++ {
		for _, m := range fakes {
			f := rng.Float64() < 0.3
			m.dec = Decision{Compute: f || rng.Float64() < 0.5, Forced: f, Budget: rng.Intn(5)}
			if f {
				m.dec.Budget = 0
			}
		}
		margin := time.Duration(rng.Float64()*80-40) * time.Millisecond
		next := ctrl.Update(budget.Input{Margin: margin, Forced: forced})
		if next < forced {
			t.Fatalf("tick %d: controller set budget %d below forced floor %d", tick, next, forced)
		}
		s.SetComputeBudget(next)
		st, err := s.Tick(context.Background(), members)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range s.Actions() {
			if fakes[i].dec.Forced && a != Compute {
				t.Fatalf("tick %d (budget %d): forced member %d got %v", tick, next, i, a)
			}
		}
		forced = st.Forced
	}
}
