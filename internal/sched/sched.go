// Package sched implements the opportunistic fleet scheduler: the tick
// engine that lets one machine serve thousands of intermittent-control
// sessions on a fixed compute budget.
//
// The paper's cost asymmetry (DESIGN.md §5.3) is the whole premise: a full
// κ computation (warm-started RMPC) costs ~0.4 ms per step, while the
// monitor + skipping-policy decision costs microseconds. A scheduler that
// provisions every session for worst-case κ wastes exactly the processor
// time Algorithm 1 reclaims. sched schedules the *decisions* instead:
//
//  1. Decide phase — every member's cheap monitor+policy verdict runs
//     first (fanned out over the worker pool): does the member want κ this
//     tick, is it monitor-forced (x ∉ X′), and how many consecutive skips
//     can its state still absorb (the S_k budget of reach.SkipBudget)?
//  2. Plan phase — Plan assigns per-member actions against the per-tick
//     compute budget. Forced computes always run (safety is never
//     traded). Optional computes fill the remaining budget through a
//     priority queue ordered by remaining skip budget, lowest first: the
//     members closest to exhausting their S_k chain — about to become
//     forced — compute now, which flattens forced-compute storms before
//     they form. The overflow is shed: converted into guaranteed-safe
//     skips (every shed member has x ∈ X′, so Theorem 1 covers the zero
//     input regardless of what its policy wanted).
//  3. Step phase — all members advance one control period across the
//     bounded worker pool: the skip lane applies the zero input
//     (allocation-free, ~300 ns), the compute lane runs κ.
//
// Determinism: decisions and steps write to index-addressed slots and the
// plan's priority order breaks ties by member index, so a tick's actions
// and every member's trajectory are byte-identical for any worker count.
package sched

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oic/internal/fault"
)

// Decision is one member's cheap pre-step verdict: the monitor+policy
// output of Algorithm 1's lines 4–9 before any controller computation.
type Decision struct {
	// Compute reports that the member wants (policy z = 1) or needs
	// (monitor-forced) a full κ computation this tick.
	Compute bool
	// Forced reports that the monitor mandated the computation: x ∉ X′,
	// so skipping is not provably safe and the scheduler must not shed it.
	Forced bool
	// Budget is the remaining consecutive-skip budget: the largest k with
	// x ∈ S_k (0 when x ∉ S₁ = X′). Lower budgets schedule first.
	Budget int
}

// Action is the scheduler's per-member assignment for one tick.
type Action uint8

const (
	// Skip advances with the zero input because the member's policy chose
	// to; the reclaimed compute time is the paper's savings.
	Skip Action = iota
	// Compute runs the full controller κ.
	Compute
	// Shed is a budget-forced skip: the member wanted κ, but the tick's
	// compute budget was exhausted and the member's state is inside X′, so
	// the zero input is guaranteed safe (Theorem 1). Shedding is how the
	// scheduler degrades under overload without ever degrading safety.
	Shed
)

// String returns the wire label of the action.
func (a Action) String() string {
	switch a {
	case Skip:
		return "skip"
	case Compute:
		return "compute"
	case Shed:
		return "shed"
	}
	return "unknown"
}

// PlanStats aggregates one tick's plan.
type PlanStats struct {
	Skips    int // members whose policy chose the zero input
	Computes int // members assigned a full κ computation
	Forced   int // computes mandated by the monitor (subset of Computes)
	Shed     int // would-be computes converted to guaranteed-safe skips
	// Overrun counts forced computes beyond the budget: safety-mandated
	// work the scheduler executed anyway. A persistently positive overrun
	// means the fleet is oversubscribed even after shedding every optional
	// compute — the backpressure signal admission control reads.
	Overrun int
	// ShedBudgetMin is the smallest remaining skip budget among shed
	// members (0 when nothing was shed). It is the tick's safety margin:
	// every shed member can still absorb at least this many further skips.
	ShedBudgetMin int
}

// Plan assigns one Action per decision against a per-tick compute budget
// (budget ≤ 0 means unlimited) and returns the plan aggregate. acts must
// have len(dec) entries; it is fully overwritten. The assignment is
// deterministic: forced computes always run; optional computes fill the
// remaining budget lowest-skip-budget-first with ties broken by index; the
// overflow is shed. Plan never sheds a forced compute — the shed-safely
// invariant callers rely on.
func Plan(dec []Decision, budget int, acts []Action) PlanStats {
	st, _ := planInto(dec, budget, acts, nil)
	return st
}

// planInto is Plan with a reusable index scratch slice (returned grown).
func planInto(dec []Decision, budget int, acts []Action, scratch []int) (PlanStats, []int) {
	var st PlanStats
	opt := scratch[:0]
	for i, d := range dec {
		switch {
		case !d.Compute:
			acts[i] = Skip
			st.Skips++
		case d.Forced:
			acts[i] = Compute
			st.Computes++
			st.Forced++
		default:
			opt = append(opt, i)
		}
	}
	if budget > 0 && st.Forced > budget {
		st.Overrun = st.Forced - budget
	}
	// The priority queue: members nearest to exhausting their skip chain
	// compute first. The sort is stable over an index-ordered slice, so
	// equal budgets keep admission order and the plan is deterministic.
	sort.SliceStable(opt, func(a, b int) bool {
		return dec[opt[a]].Budget < dec[opt[b]].Budget
	})
	free := budget - st.Forced
	for rank, i := range opt {
		if budget <= 0 || rank < free {
			acts[i] = Compute
			st.Computes++
			continue
		}
		acts[i] = Shed
		shedOne(&st, dec[i].Budget)
	}
	return st, opt
}

// shedOne folds one safe shed into the aggregate: the Shed count and the
// running minimum of shed members' remaining skip budgets. Shared by the
// plan's budget overflow and the fault/deadline degradation passes, so a
// degraded member is accounted exactly like a planned shed.
func shedOne(st *PlanStats, budget int) {
	if st.Shed == 0 || budget < st.ShedBudgetMin {
		st.ShedBudgetMin = budget
	}
	st.Shed++
}

// Member is one schedulable closed-loop session.
type Member interface {
	// Decide classifies the member's pre-step state. It must be cheap
	// (monitor + policy, microseconds), must not mutate member state, and
	// is called concurrently with other members' Decide.
	Decide() Decision
	// Step advances the member one control period: the full controller
	// when compute is true, the guaranteed-safe zero input otherwise. The
	// scheduler only passes compute=false to members whose Decision was
	// not Forced. Steps of distinct members run concurrently.
	Step(compute bool) error
}

// Config tunes a Scheduler.
type Config struct {
	// ComputeBudget caps full κ computations per tick; ≤ 0 means
	// unlimited (every requested compute runs — no shedding).
	ComputeBudget int
	// Workers bounds the goroutine pool for the decide and step phases;
	// ≤ 0 means GOMAXPROCS. Results are independent of the choice.
	Workers int
	// Faults optionally injects synthetic solver failures at the
	// sched.compute site. An injected failure on an optional compute with
	// remaining skip budget degrades the member to a guaranteed-safe
	// shed (x ∈ X′, Theorem 1); on a forced compute — or one whose skip
	// chain is exhausted — it surfaces as that member's step error, loud.
	// The injection pass runs serially in member-index order, so a seeded
	// injector yields the same degradations every run.
	Faults *fault.Injector
	// TickDeadline bounds a tick's wall time. Once exceeded, remaining
	// *optional* computes with skip budget left degrade to safe sheds
	// instead of running κ; forced computes always run regardless —
	// the deadline trades reclaimed compute, never safety.
	TickDeadline time.Duration
}

// TickStats aggregates one executed tick.
type TickStats struct {
	Members int
	PlanStats
	Errors int // members whose Step failed (terminal κ errors)
	// Degraded counts planned computes downgraded to guaranteed-safe
	// sheds by an injected solver fault or a tick-deadline overrun.
	// Degraded members are budget-forced safe skips, so they count in
	// PlanStats.Shed (and ShedBudgetMin) exactly like planned sheds:
	// Degraded ⊆ Shed. PlanStats.Computes still reports the *planned*
	// computes; the executed count is Computes − Degraded, and the lane
	// counters sum to Members + Degraded (each degraded member appears in
	// both its planned lane and the shed lane).
	Degraded   int
	DecideTime time.Duration // wall time of the decide phase
	StepTime   time.Duration // wall time of the step phase
}

// Scheduler runs ticks over a member set, reusing its plan and result
// buffers across ticks so steady-state scheduling allocates nothing. It is
// not safe for concurrent Tick calls; callers serialize (the Fleet does).
type Scheduler struct {
	cfg     Config
	dec     []Decision
	acts    []Action
	errs    []error
	late    []bool // per-member deadline-degradation marks, index-addressed
	scratch []int
}

// New returns a scheduler with the given configuration.
func New(cfg Config) *Scheduler { return &Scheduler{cfg: cfg} }

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// SetComputeBudget retunes the per-tick compute budget; it takes effect
// on the next Tick. This is the elastic-budget control input: budget is
// per-tick state, not frozen configuration.
func (s *Scheduler) SetComputeBudget(n int) { s.cfg.ComputeBudget = n }

// Tick runs one scheduling round: decide everything, plan against the
// budget, step everything. On context cancellation between phases the tick
// aborts before its step phase, leaving every member unstepped; a tick
// whose step phase started always completes it (steps are milliseconds).
// After Tick returns, Actions and Errs expose the per-member outcome until
// the next Tick.
func (s *Scheduler) Tick(ctx context.Context, members []Member) (TickStats, error) {
	return s.TickFrom(ctx, members, time.Now())
}

// TickFrom is Tick with an externally supplied tick-start timestamp: the
// deadline clock. A caller that reports a deadline margin measured from
// its own entry point (Fleet.Tick does) passes that instant here, so the
// shedding decision and the reported margin share one clock origin
// instead of disagreeing by the caller's validation/staging time.
func (s *Scheduler) TickFrom(ctx context.Context, members []Member, start time.Time) (TickStats, error) {
	n := len(members)
	s.grow(n)
	st := TickStats{Members: n}
	if err := ctx.Err(); err != nil {
		return st, err
	}

	t0 := time.Now()
	s.fanOut(n, func(i int) { s.dec[i] = members[i].Decide() })
	st.DecideTime = time.Since(t0)

	st.PlanStats, s.scratch = planInto(s.dec[:n], s.cfg.ComputeBudget, s.acts[:n], s.scratch)

	// Synthetic solver faults, applied serially in index order so the
	// seeded injector degrades the same members every run. Forced
	// computes (and optional ones with no skip chain left) fail loudly
	// via the member's error slot; safe ones shed — and a degraded
	// member is a budget-forced safe skip, so it is accounted as one.
	for i := range s.errs[:n] {
		s.errs[i] = nil
		s.late[i] = false
	}
	if s.cfg.Faults != nil {
		for i := 0; i < n; i++ {
			if s.acts[i] != Compute {
				continue
			}
			if err := s.cfg.Faults.Hit(fault.SiteSchedCompute); err != nil {
				if !s.dec[i].Forced && s.dec[i].Budget > 0 {
					s.acts[i] = Shed
					st.Degraded++
					shedOne(&st.PlanStats, s.dec[i].Budget)
				} else {
					s.errs[i] = err
				}
			}
		}
	}

	if err := ctx.Err(); err != nil {
		return st, err
	}
	t1 := time.Now()
	s.fanOut(n, func(i int) {
		if s.errs[i] != nil {
			return // failed loudly at the fault pass; never stepped
		}
		compute := s.acts[i] == Compute
		if compute && s.cfg.TickDeadline > 0 && !s.dec[i].Forced && s.dec[i].Budget > 0 &&
			time.Since(start) > s.cfg.TickDeadline {
			// Over deadline: this optional compute's skip is still
			// certified safe, so reclaim its κ time. Marked in an
			// index-addressed slot; the serial pass below folds the
			// marks into the shed aggregate.
			s.acts[i] = Shed
			compute = false
			s.late[i] = true
		}
		s.errs[i] = members[i].Step(compute)
	})
	st.StepTime = time.Since(t1)
	for i := 0; i < n; i++ {
		if s.late[i] {
			st.Degraded++
			shedOne(&st.PlanStats, s.dec[i].Budget)
		}
		if s.errs[i] != nil {
			st.Errors++
		}
	}
	return st, nil
}

// Actions returns the last tick's per-member plan, aligned to the member
// slice Tick received. Valid until the next Tick.
func (s *Scheduler) Actions() []Action { return s.acts }

// Errs returns the last tick's per-member step errors (nil entries for
// successful steps), aligned to the member slice. Valid until the next
// Tick.
func (s *Scheduler) Errs() []error { return s.errs }

func (s *Scheduler) grow(n int) {
	if cap(s.dec) < n {
		s.dec = make([]Decision, n)
		s.acts = make([]Action, n)
		s.errs = make([]error, n)
		s.late = make([]bool, n)
	}
	s.dec = s.dec[:n]
	s.acts = s.acts[:n]
	s.errs = s.errs[:n]
	s.late = s.late[:n]
}

func (s *Scheduler) fanOut(n int, fn func(int)) { FanOut(n, s.cfg.Workers, fn) }

// FanOut applies fn to every index in [0, n) across a bounded worker pool
// (workers ≤ 0 means GOMAXPROCS). Work is claimed through an atomic cursor
// and results belong in index-addressed slots, so the outcome is
// independent of worker count and interleaving. Shared by the scheduler's
// decide/step phases and pkg/oic's StepBatch.
func FanOut(n, workers int, fn func(int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
