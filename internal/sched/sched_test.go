package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestPlanAllSkip(t *testing.T) {
	dec := []Decision{{}, {}, {}}
	acts := make([]Action, len(dec))
	st := Plan(dec, 1, acts)
	if st.Skips != 3 || st.Computes != 0 || st.Shed != 0 || st.Overrun != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	for i, a := range acts {
		if a != Skip {
			t.Fatalf("acts[%d] = %v, want Skip", i, a)
		}
	}
}

func TestPlanForcedNeverShed(t *testing.T) {
	// Five forced computes against a budget of 2: all must run, overrun 3.
	dec := make([]Decision, 5)
	for i := range dec {
		dec[i] = Decision{Compute: true, Forced: true}
	}
	acts := make([]Action, len(dec))
	st := Plan(dec, 2, acts)
	if st.Computes != 5 || st.Forced != 5 || st.Shed != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.Overrun != 3 {
		t.Fatalf("Overrun = %d, want 3", st.Overrun)
	}
	for i, a := range acts {
		if a != Compute {
			t.Fatalf("acts[%d] = %v, want Compute (forced computes are never shed)", i, a)
		}
	}
}

func TestPlanPriorityByBudget(t *testing.T) {
	// Budget 2, one forced + four optional computes with budgets 5,1,3,1:
	// the forced one takes a slot, the budget-1 member at the lowest index
	// takes the other; the rest shed (richest last to be scheduled).
	dec := []Decision{
		{Compute: true, Forced: true, Budget: 0}, // slot 1 (mandatory)
		{Compute: true, Budget: 5},
		{Compute: true, Budget: 1}, // slot 2 (lowest budget, first index)
		{Compute: true, Budget: 3},
		{Compute: true, Budget: 1}, // tie: higher index → shed
	}
	acts := make([]Action, len(dec))
	st := Plan(dec, 2, acts)
	want := []Action{Compute, Shed, Compute, Shed, Shed}
	if !reflect.DeepEqual(acts, want) {
		t.Fatalf("acts = %v, want %v", acts, want)
	}
	if st.Computes != 2 || st.Forced != 1 || st.Shed != 3 || st.Overrun != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.ShedBudgetMin != 1 {
		t.Fatalf("ShedBudgetMin = %d, want 1", st.ShedBudgetMin)
	}
}

func TestPlanUnlimitedBudget(t *testing.T) {
	dec := []Decision{
		{Compute: true, Budget: 4},
		{},
		{Compute: true, Forced: true},
	}
	acts := make([]Action, len(dec))
	st := Plan(dec, 0, acts)
	if st.Computes != 2 || st.Skips != 1 || st.Shed != 0 || st.Overrun != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	want := []Action{Compute, Skip, Compute}
	if !reflect.DeepEqual(acts, want) {
		t.Fatalf("acts = %v, want %v", acts, want)
	}
}

func TestPlanShedSafelyInvariant(t *testing.T) {
	// Property: across random decision vectors and budgets, (a) no forced
	// compute is ever shed, (b) computes never exceed max(budget, forced),
	// (c) every shed member wanted a compute and was not forced.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		dec := make([]Decision, n)
		for i := range dec {
			c := rng.Intn(3) // 0 skip, 1 optional, 2 forced
			dec[i] = Decision{Compute: c > 0, Forced: c == 2, Budget: rng.Intn(6)}
		}
		budget := rng.Intn(8) // 0 = unlimited
		acts := make([]Action, n)
		st := Plan(dec, budget, acts)
		computes := 0
		for i, a := range acts {
			switch a {
			case Compute:
				computes++
			case Shed:
				if !dec[i].Compute || dec[i].Forced {
					t.Fatalf("trial %d: shed member %d had decision %+v", trial, i, dec[i])
				}
			case Skip:
				if dec[i].Compute {
					t.Fatalf("trial %d: member %d wanted compute but got Skip", trial, i)
				}
			}
		}
		if computes != st.Computes {
			t.Fatalf("trial %d: %d computes in acts, stats say %d", trial, computes, st.Computes)
		}
		if budget > 0 {
			max := budget
			if st.Forced > max {
				max = st.Forced
			}
			if computes > max {
				t.Fatalf("trial %d: %d computes exceed max(budget %d, forced %d)", trial, computes, budget, st.Forced)
			}
		}
	}
}

// fakeMember records how it was stepped; Decide is pure.
type fakeMember struct {
	dec     Decision
	mu      sync.Mutex
	history []Action
	fail    error
}

func (m *fakeMember) Decide() Decision { return m.dec }

func (m *fakeMember) Step(compute bool) error {
	a := Skip
	if compute {
		a = Compute
	}
	m.mu.Lock()
	m.history = append(m.history, a)
	m.mu.Unlock()
	return m.fail
}

func TestTickDeterministicAcrossWorkers(t *testing.T) {
	build := func() []Member {
		rng := rand.New(rand.NewSource(9))
		ms := make([]Member, 200)
		for i := range ms {
			c := rng.Intn(3)
			ms[i] = &fakeMember{dec: Decision{Compute: c > 0, Forced: c == 2, Budget: rng.Intn(5)}}
		}
		return ms
	}
	var ref []Action
	for _, workers := range []int{1, 3, 16} {
		ms := build()
		s := New(Config{ComputeBudget: 20, Workers: workers})
		st, err := s.Tick(context.Background(), ms)
		if err != nil {
			t.Fatal(err)
		}
		if st.Members != 200 {
			t.Fatalf("Members = %d", st.Members)
		}
		acts := append([]Action(nil), s.Actions()...)
		if ref == nil {
			ref = acts
			continue
		}
		if !reflect.DeepEqual(acts, ref) {
			t.Fatalf("workers=%d: actions differ from workers=1 plan", workers)
		}
	}
}

func TestTickStepMatchesPlan(t *testing.T) {
	ms := []Member{
		&fakeMember{dec: Decision{}},                            // skip
		&fakeMember{dec: Decision{Compute: true, Forced: true}}, // forced compute
		&fakeMember{dec: Decision{Compute: true, Budget: 3}},    // shed (budget 1 taken by forced)
	}
	s := New(Config{ComputeBudget: 1, Workers: 2})
	st, err := s.Tick(context.Background(), ms)
	if err != nil {
		t.Fatal(err)
	}
	if st.Skips != 1 || st.Computes != 1 || st.Shed != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	wantStep := []Action{Skip, Compute, Skip} // shed steps as a skip
	for i, m := range ms {
		fm := m.(*fakeMember)
		if len(fm.history) != 1 || fm.history[0] != wantStep[i] {
			t.Fatalf("member %d stepped %v, want [%v]", i, fm.history, wantStep[i])
		}
	}
}

func TestTickCollectsErrors(t *testing.T) {
	boom := errors.New("kappa failed")
	ms := []Member{
		&fakeMember{dec: Decision{Compute: true, Forced: true}, fail: boom},
		&fakeMember{dec: Decision{}},
	}
	s := New(Config{})
	st, err := s.Tick(context.Background(), ms)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
	if got := s.Errs(); got[0] != boom || got[1] != nil {
		t.Fatalf("Errs() = %v", got)
	}
}

func TestTickCanceledContextStepsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms := []Member{&fakeMember{dec: Decision{Compute: true}}}
	s := New(Config{})
	if _, err := s.Tick(ctx, ms); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if h := ms[0].(*fakeMember).history; len(h) != 0 {
		t.Fatalf("member stepped %v on canceled tick", h)
	}
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{Skip: "skip", Compute: "compute", Shed: "shed", Action(9): "unknown"} {
		if got := a.String(); got != want {
			t.Fatalf("Action(%d).String() = %q, want %q", a, got, want)
		}
	}
}

// TestSchedulerReuseNoGrowth pins the steady-state property: repeated
// ticks over the same fleet size reuse the scheduler's buffers.
func TestSchedulerReuseNoGrowth(t *testing.T) {
	ms := make([]Member, 64)
	for i := range ms {
		ms[i] = &fakeMember{dec: Decision{Compute: i%2 == 0, Budget: i % 4}}
	}
	s := New(Config{ComputeBudget: 8, Workers: 1})
	for tick := 0; tick < 3; tick++ {
		if _, err := s.Tick(context.Background(), ms); err != nil {
			t.Fatal(err)
		}
	}
	first := fmt.Sprintf("%p %p", &s.dec[0], &s.acts[0])
	if _, err := s.Tick(context.Background(), ms); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%p %p", &s.dec[0], &s.acts[0]); got != first {
		t.Fatalf("buffers reallocated across same-size ticks: %s → %s", first, got)
	}
}
