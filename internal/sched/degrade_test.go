package sched

import (
	"context"
	"errors"
	"sync"
	"testing"

	"oic/internal/fault"
)

// safetyMember models the S_k skip-chain semantics the scheduler's
// degradation leans on: a member holds a consecutive-skip budget that a
// compute refills and every skip spends; skipping at budget zero is a
// safety violation — exactly the state Theorem 1 stops certifying. The
// member is monitor-forced when its budget is exhausted.
type safetyMember struct {
	mu         sync.Mutex
	budget     int // remaining consecutive safe skips
	max        int // budget after a compute
	eager      bool
	violations int
	computes   int
	skips      int
}

func (m *safetyMember) Decide() Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	forced := m.budget == 0
	// An eager member's policy wants κ whenever its chain is half spent;
	// a lazy one only computes when forced. Both shapes exist in a fleet.
	want := forced || (m.eager && m.budget <= m.max/2)
	return Decision{Compute: want, Forced: forced, Budget: m.budget}
}

func (m *safetyMember) Step(compute bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if compute {
		m.budget = m.max
		m.computes++
		return nil
	}
	if m.budget == 0 {
		m.violations++ // skipped without a certificate
	} else {
		m.budget--
	}
	m.skips++
	return nil
}

// The degradation safety property: under heavy injected solver faults,
// the scheduler never converts a compute into a skip unless the
// member's chain certifies it — so across hundreds of faulty ticks, no
// member ever skips at budget zero, every degradation is counted, and
// faults on forced computes surface as member errors instead of being
// absorbed silently.
func TestDegradationHoldsSafetyInvariant(t *testing.T) {
	run := func(seed int64) (violations, degraded, errs, computes int) {
		members := make([]Member, 0, 120)
		for i := 0; i < 120; i++ {
			members = append(members, &safetyMember{budget: i % 5, max: 1 + i%5, eager: i%3 != 0})
		}
		inj := fault.New(seed)
		inj.Enable(fault.SiteSchedCompute, 0.5)
		s := New(Config{ComputeBudget: 40, Workers: 4, Faults: inj})
		for tick := 0; tick < 200; tick++ {
			st, err := s.Tick(context.Background(), members)
			if err != nil {
				t.Fatal(err)
			}
			degraded += st.Degraded
			errs += st.Errors
			for _, e := range s.Errs() {
				if e != nil && !errors.Is(e, fault.ErrInjected) {
					t.Fatalf("non-injected member error: %v", e)
				}
			}
		}
		for _, m := range members {
			sm := m.(*safetyMember)
			violations += sm.violations
			computes += sm.computes
		}
		return
	}

	violations, degraded, errs, computes := run(17)
	if violations != 0 {
		t.Fatalf("safety invariant broken: %d skips at budget zero", violations)
	}
	if degraded == 0 {
		t.Fatal("rate-0.5 faults over 200 ticks degraded nothing; injection not reaching the plan")
	}
	if errs == 0 {
		t.Fatal("no forced-compute fault surfaced as an error; loud path untested")
	}
	if computes == 0 {
		t.Fatal("no computes executed")
	}

	// Determinism: the same seed degrades the same members the same way.
	v2, d2, e2, c2 := run(17)
	if v2 != violations || d2 != degraded || e2 != errs || c2 != computes {
		t.Fatalf("same seed diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			violations, degraded, errs, computes, v2, d2, e2, c2)
	}
}

// A fault on a forced compute must not step the member at all: the
// error surfaces in its slot and its state is untouched.
func TestForcedFaultIsLoud(t *testing.T) {
	inj := fault.New(1)
	inj.Enable(fault.SiteSchedCompute, 1) // every compute faults
	forced := &fakeMember{dec: Decision{Compute: true, Forced: true}}
	optionalSafe := &fakeMember{dec: Decision{Compute: true, Budget: 3}}
	optionalExhausted := &fakeMember{dec: Decision{Compute: true, Budget: 0}}
	s := New(Config{Faults: inj})
	st, err := s.Tick(context.Background(), []Member{forced, optionalSafe, optionalExhausted})
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 2 {
		t.Fatalf("Errors = %d, want 2 (forced + exhausted optional)", st.Errors)
	}
	if st.Degraded != 1 {
		t.Fatalf("Degraded = %d, want 1 (the optional with budget)", st.Degraded)
	}
	if !errors.Is(s.Errs()[0], fault.ErrInjected) || !errors.Is(s.Errs()[2], fault.ErrInjected) {
		t.Fatalf("errs = %v, want injected failures at 0 and 2", s.Errs())
	}
	if len(forced.history) != 0 || len(optionalExhausted.history) != 0 {
		t.Fatal("a faulted loud member was stepped")
	}
	if len(optionalSafe.history) != 1 || optionalSafe.history[0] != Skip {
		t.Fatalf("degraded member history = %v, want one skip", optionalSafe.history)
	}
	if got := s.Actions()[1]; got != Shed {
		t.Fatalf("degraded member action = %v, want Shed", got)
	}
}

// An already-expired tick deadline degrades every optional compute with
// chain left to a safe shed; forced computes still run.
func TestTickDeadlineDegrades(t *testing.T) {
	members := []Member{
		&fakeMember{dec: Decision{Compute: true, Forced: true}},
		&fakeMember{dec: Decision{Compute: true, Budget: 2}},
		&fakeMember{dec: Decision{Compute: true, Budget: 4}},
	}
	s := New(Config{TickDeadline: 1}) // 1ns: expired before the step phase
	st, err := s.Tick(context.Background(), members)
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded != 2 {
		t.Fatalf("Degraded = %d, want 2", st.Degraded)
	}
	if h := members[0].(*fakeMember).history; len(h) != 1 || h[0] != Compute {
		t.Fatalf("forced member history = %v, want one compute past deadline", h)
	}
	for i := 1; i < 3; i++ {
		if h := members[i].(*fakeMember).history; len(h) != 1 || h[0] != Skip {
			t.Fatalf("member %d history = %v, want degraded skip", i, h)
		}
		if s.Actions()[i] != Shed {
			t.Fatalf("member %d action = %v, want Shed", i, s.Actions()[i])
		}
	}
}
