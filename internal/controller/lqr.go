package controller

import (
	"errors"
	"fmt"
	"math"

	"oic/internal/mat"
)

// LQR computes the infinite-horizon discrete-time linear quadratic
// regulator gain for x⁺ = A·x + B·u with stage cost xᵀQx + uᵀRu, by
// iterating the Riccati difference equation to a fixed point:
//
//	P ← Q + Aᵀ·P·A − Aᵀ·P·B·(R + Bᵀ·P·B)⁻¹·Bᵀ·P·A.
//
// It returns K with u = K·x (note the sign: K already includes the minus),
// i.e. K = −(R + BᵀPB)⁻¹·BᵀPA. The iteration converges for stabilizable
// (A, B) with Q ⪰ 0, R ≻ 0.
func LQR(a, b, q, r *mat.Mat, maxIter int, tol float64) (*mat.Mat, error) {
	n, m := a.R, b.C
	if a.C != n || b.R != n || q.R != n || q.C != n || r.R != m || r.C != m {
		return nil, errors.New("controller: LQR: dimension mismatch")
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	if tol <= 0 {
		tol = 1e-10
	}
	p := q.Clone()
	at := a.T()
	bt := b.T()
	for iter := 0; iter < maxIter; iter++ {
		btp := bt.Mul(p)
		gram := r.Add(btp.Mul(b)) // R + BᵀPB
		ginv, err := mat.Inverse(gram)
		if err != nil {
			return nil, fmt.Errorf("controller: LQR: R + BᵀPB singular: %w", err)
		}
		// P' = Q + AᵀPA − AᵀPB·(R+BᵀPB)⁻¹·BᵀPA
		atp := at.Mul(p)
		next := q.Add(atp.Mul(a)).Sub(atp.Mul(b).Mul(ginv).Mul(btp.Mul(a)))
		if next.Equal(p, tol) {
			k := ginv.Mul(bt.Mul(next).Mul(a)).Scale(-1)
			return k, nil
		}
		p = next
	}
	return nil, errors.New("controller: LQR: Riccati iteration did not converge (is (A,B) stabilizable?)")
}

// SpectralRadius estimates the spectral radius of m via Gelfand's formula
// ρ(m) = lim ‖m^k‖^(1/k), using the max-row-sum norm at k = order. Useful
// for asserting closed-loop stability in tests and set computations.
func SpectralRadius(m *mat.Mat, order int) float64 {
	if order <= 0 {
		order = 64
	}
	p := mat.Pow(m, order)
	norm := 0.0
	for i := 0; i < p.R; i++ {
		s := p.Row(i).Norm1()
		if s > norm {
			norm = s
		}
	}
	if norm == 0 {
		return 0
	}
	return math.Pow(norm, 1/float64(order))
}
