package controller

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/mat"
)

// planCost evaluates the Eq. 5 horizon objective of an input sequence via
// the nominal (disturbance-free) rollout:
// Σ_{k=1..N−1} P·‖x(k)−XRef‖₁ + Σ_{k=0..N−1} Q·‖u(k)−URef‖₁.
func planCost(r *RMPC, x0 mat.Vec, seq []mat.Vec) float64 {
	x := x0.Clone()
	cost := 0.0
	for k := 0; k < r.cfg.Horizon; k++ {
		cost += r.cfg.InputWeight * seq[k].Sub(r.cfg.URef).Norm1()
		x = r.sys.A.MulVec(x).Add(r.sys.B.MulVec(seq[k])).Add(r.sys.C)
		if k+1 < r.cfg.Horizon {
			cost += r.cfg.StateWeight * x.Sub(r.cfg.XRef).Norm1()
		}
	}
	return cost
}

// checkPlanFeasible asserts the sequence satisfies the horizon program's
// constraints: u(k) ∈ U, the nominal x(k) in the tightened sets, and the
// terminal state in Xt.
func checkPlanFeasible(t *testing.T, r *RMPC, x0 mat.Vec, seq []mat.Vec) {
	t.Helper()
	n := r.cfg.Horizon
	x := x0.Clone()
	for k := 0; k < n; k++ {
		if !r.sys.U.Contains(seq[k], 1e-6) {
			t.Fatalf("u(%d) = %v outside U", k, seq[k])
		}
		x = r.sys.A.MulVec(x).Add(r.sys.B.MulVec(seq[k])).Add(r.sys.C)
		if k+1 < n {
			if !r.tightened[k+1].Contains(x, 1e-6) {
				t.Fatalf("nominal x(%d) = %v outside X(%d)", k+1, x, k+1)
			}
		}
	}
	if !r.terminal.Contains(x, 1e-6) {
		t.Fatalf("terminal state %v outside Xt", x)
	}
}

// TestRMPCWarmResolveMatchesColdAlongTrajectory drives the warm-started
// controller along simulated closed-loop trajectories and, at every step,
// cross-checks it against a cold resolve from a fresh workspace: both must
// report the same feasibility, achieve the same optimal objective within
// 1e-7, and return constraint-satisfying plans. This is the controller-
// level half of the warm/cold equivalence property (the LP-level half
// lives in internal/lp).
func TestRMPCWarmResolveMatchesColdAlongTrajectory(t *testing.T) {
	r := accRMPC(t) // one handle reused: cold first solve, warm afterwards
	sys := accSystem()
	feas, err := r.FeasibleSet()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	starts, err := feas.Sample(4, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	for _, x0 := range starts {
		x := x0.Clone()
		for step := 0; step < 30; step++ {
			warmSeq, warmErr := r.ComputeSequence(x)
			cold := r.ForSession().(*RMPC) // fresh workspace: guaranteed cold solve
			coldSeq, coldErr := cold.ComputeSequence(x)
			if (warmErr == nil) != (coldErr == nil) {
				t.Fatalf("step %d at %v: warm err %v, cold err %v", step, x, warmErr, coldErr)
			}
			if warmErr != nil {
				t.Fatalf("step %d: infeasible inside the feasible set at %v: %v", step, x, warmErr)
			}
			jw := planCost(r, x, warmSeq)
			jc := planCost(r, x, coldSeq)
			if d := math.Abs(jw - jc); d > 1e-7*(1+math.Abs(jc)) {
				t.Fatalf("step %d at %v: warm objective %v vs cold %v (Δ=%g)", step, x, jw, jc, d)
			}
			checkPlanFeasible(t, r, x, warmSeq)

			w := mat.Vec{2*rng.Float64() - 1, 0}
			x = sys.Step(x, warmSeq[0], w)
		}
	}
	// The chain above must actually have exercised the warm path.
	stats := r.ws.sv.Stats()
	if stats.Warm == 0 {
		t.Fatalf("warm path never taken (stats %+v)", stats)
	}
}

// TestRMPCForSessionIndependence verifies that session handles share the
// compiled program but not solve state: interleaved computations on two
// handles give the same answers as isolated ones.
func TestRMPCForSessionIndependence(t *testing.T) {
	r := accRMPC(t)
	h1 := r.ForSession().(*RMPC)
	h2 := r.ForSession().(*RMPC)
	if h1.prog != r.prog || h2.prog != r.prog {
		t.Fatal("session handles must share the compiled program")
	}
	if h1.ws == r.ws || h2.ws == r.ws || h1.ws == h2.ws {
		t.Fatal("session handles must own their workspaces")
	}
	xa := mat.Vec{150, 40}
	xb := mat.Vec{140, 45}
	ua1, err := h1.Compute(xa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Compute(xb); err != nil { // pollute h2's warm state
		t.Fatal(err)
	}
	ua2, err := h1.Compute(xa)
	if err != nil {
		t.Fatal(err)
	}
	if !ua1.Equal(ua2, 1e-9) {
		t.Fatalf("handle state leaked across sessions: %v vs %v", ua1, ua2)
	}
}

// TestRMPCComputeMatchesSequenceHead pins the Compute fast path: it must
// return exactly the first element of ComputeSequence without the tail.
func TestRMPCComputeMatchesSequenceHead(t *testing.T) {
	r := accRMPC(t)
	x := mat.Vec{145, 42}
	u, err := r.Compute(x)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := r.ComputeSequence(x)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(seq[0], 1e-12) {
		t.Fatalf("Compute %v != sequence head %v", u, seq[0])
	}
}
