package controller

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
)

// paperVerbatimSystem is the paper's Eq. 1 form: zero drift, origin-centred
// sets (the shifted ACC coordinates).
func paperVerbatimSystem() *lti.System {
	a := mat.FromRows([][]float64{{1, -0.1}, {0, 0.98}})
	b := mat.FromRows([][]float64{{0}, {0.1}})
	return lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-30, -15}, []float64{30, 15}),
		poly.Box([]float64{-48}, []float64{32}),
		poly.Box([]float64{-1, 0}, []float64{1, 0}),
	)
}

func TestRMPCZeroDriftShiftedCoordinates(t *testing.T) {
	sys := paperVerbatimSystem()
	r, err := NewRMPC(sys, RMPCConfig{Horizon: 10, StateWeight: 1, InputWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// At the origin the optimal plan applies (near) zero input.
	u, err := r.Compute(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u[0]) > 0.5 {
		t.Errorf("u at origin = %v, want ≈ 0", u[0])
	}
	// The shifted-coordinate feasible set must contain the origin.
	feas, err := r.FeasibleSet()
	if err != nil {
		t.Fatal(err)
	}
	if !feas.Contains(mat.Vec{0, 0}, 1e-9) {
		t.Error("origin outside feasible set")
	}
}

func TestRMPCTerminalSetOverride(t *testing.T) {
	sys := paperVerbatimSystem()
	custom := poly.Box([]float64{-1, -1}, []float64{1, 1})
	r, err := NewRMPC(sys, RMPCConfig{Horizon: 5, StateWeight: 1, InputWeight: 1, TerminalSet: custom})
	if err != nil {
		t.Fatal(err)
	}
	if r.TerminalSet() != custom {
		t.Error("terminal set override ignored")
	}
}

// The planned nominal trajectory must satisfy the tightened constraints:
// roll the plan through the disturbance-free dynamics and check.
func TestRMPCPlanSatisfiesTightenedConstraints(t *testing.T) {
	sys := paperVerbatimSystem()
	r, err := NewRMPC(sys, RMPCConfig{Horizon: 10, StateWeight: 1, InputWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	feas, err := r.FeasibleSet()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := feas.Sample(10, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	tight := r.TightenedSets()
	for _, x0 := range pts {
		seq, err := r.ComputeSequence(x0)
		if err != nil {
			t.Fatalf("infeasible inside feasible set at %v: %v", x0, err)
		}
		x := x0.Clone()
		for k, u := range seq {
			x = sys.Step(x, u, nil)
			idx := k + 1
			set := r.TerminalSet() // the horizon end is bound by Xt
			if idx < len(tight)-1 {
				set = tight[idx]
			}
			if v := set.Violation(x); v > 1e-6 {
				t.Fatalf("plan from %v violates constraint at step %d by %v", x0, idx, v)
			}
		}
	}
}

func TestEquilibriumInputToleranceParameter(t *testing.T) {
	sys := paperVerbatimSystem()
	// The origin is an equilibrium with u = 0 for the shifted system.
	u, err := EquilibriumInput(sys, mat.Vec{0, 0}, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u[0]) > 1e-10 {
		t.Errorf("u = %v", u)
	}
}
