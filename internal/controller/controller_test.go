package controller

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
)

func TestAffineFeedback(t *testing.T) {
	k := mat.FromRows([][]float64{{-1, -2}})
	f := NewAffineFeedback(k, mat.Vec{1, 0}, mat.Vec{5})
	u, err := f.Compute(mat.Vec{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// u = K(x − xref) + uref = (-1)(1) + (-2)(3) + 5 = -2.
	if !u.Equal(mat.Vec{-2}, 1e-12) {
		t.Errorf("u = %v, want [-2]", u)
	}
	if f.Name() == "" {
		t.Error("empty name")
	}
}

func TestAffineFeedbackNilRefs(t *testing.T) {
	k := mat.FromRows([][]float64{{-1, 0}})
	f := NewAffineFeedback(k, nil, nil)
	u, _ := f.Compute(mat.Vec{3, 1})
	if !u.Equal(mat.Vec{-3}, 1e-12) {
		t.Errorf("u = %v", u)
	}
}

func TestEquilibriumInputACC(t *testing.T) {
	sys := accSystem()
	u, err := EquilibriumInput(sys, mat.Vec{150, 40}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At v = 40 the drag term kv = 8 must be cancelled.
	if math.Abs(u[0]-8) > 1e-9 {
		t.Errorf("equilibrium input = %v, want 8", u[0])
	}
	// The equilibrium must be a fixed point of the drift dynamics.
	next := sys.Step(mat.Vec{150, 40}, u, nil)
	if !next.Equal(mat.Vec{150, 40}, 1e-9) {
		t.Errorf("equilibrium not fixed: %v", next)
	}
}

func TestEquilibriumInputNoSolution(t *testing.T) {
	// x⁺ = x + [1;0]·u: the second state cannot be held anywhere except
	// where its drift vanishes; ask for an impossible equilibrium.
	a := mat.FromRows([][]float64{{1, 0}, {0, 2}})
	b := mat.FromRows([][]float64{{1}, {0}})
	sys := lti.NewSystem(a, b)
	if _, err := EquilibriumInput(sys, mat.Vec{1, 1}, 0); err == nil {
		t.Error("expected error for unreachable equilibrium")
	}
}

func TestLQRStabilizes(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 0.1}, {0, 1}})
	b := mat.FromRows([][]float64{{0}, {0.1}})
	k, err := LQR(a, b, mat.Identity(2), mat.Identity(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	acl := a.Add(b.Mul(k))
	if rho := SpectralRadius(acl, 128); rho >= 1 {
		t.Errorf("closed loop unstable: spectral radius %v", rho)
	}
}

func TestLQRScalarKnownSolution(t *testing.T) {
	// Scalar: a=1, b=1, q=1, r=1. DARE: p = 1 + p − p²/(1+p) ⇒ p² − p − 1 = 0
	// ⇒ p = φ ≈ 1.618; k = −p/(1+p) ≈ −0.618.
	a := mat.FromRows([][]float64{{1}})
	b := mat.FromRows([][]float64{{1}})
	k, err := LQR(a, b, mat.Identity(1), mat.Identity(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	phi := (1 + math.Sqrt(5)) / 2
	want := -phi / (1 + phi)
	if math.Abs(k.At(0, 0)-want) > 1e-6 {
		t.Errorf("k = %v, want %v", k.At(0, 0), want)
	}
}

func TestSpectralRadius(t *testing.T) {
	m := mat.FromRows([][]float64{{0.5, 0}, {0, 0.25}})
	if rho := SpectralRadius(m, 64); math.Abs(rho-0.5) > 1e-6 {
		t.Errorf("rho = %v, want 0.5", rho)
	}
	r := mat.FromRows([][]float64{{0, 1}, {-1, 0}}) // rotation: rho = 1
	if rho := SpectralRadius(r, 64); math.Abs(rho-1) > 1e-6 {
		t.Errorf("rotation rho = %v, want 1", rho)
	}
}

// accSystem builds the paper's ACC model in physical coordinates:
//
//	s⁺ = s − δ(v − v_f) = s − δv + δ·40 + w₁,  w₁ = δ(v_f − 40) ∈ [−1, 1]
//	v⁺ = (1 − kδ)v + δu
//
// with X = [120,180]×[25,55], U = [−40,40], δ = 0.1, k = 0.2.
func accSystem() *lti.System {
	const delta, drag = 0.1, 0.2
	a := mat.FromRows([][]float64{{1, -delta}, {0, 1 - drag*delta}})
	b := mat.FromRows([][]float64{{0}, {delta}})
	return lti.NewSystem(a, b).
		WithDrift(mat.Vec{delta * 40, 0}).
		WithConstraints(
			poly.Box([]float64{120, 25}, []float64{180, 55}),
			poly.Box([]float64{-40}, []float64{40}),
			poly.Box([]float64{-1, 0}, []float64{1, 0}),
		)
}

func accRMPC(t *testing.T) *RMPC {
	t.Helper()
	sys := accSystem()
	r, err := NewRMPC(sys, RMPCConfig{
		Horizon:     10,
		StateWeight: 1,
		InputWeight: 1,
		XRef:        mat.Vec{150, 40},
		URef:        mat.Vec{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRMPCConstruction(t *testing.T) {
	r := accRMPC(t)
	if got := len(r.TightenedSets()); got != 11 {
		t.Fatalf("tightened sets = %d, want 11", got)
	}
	// X(k) must be nested decreasing.
	for k := 1; k <= 10; k++ {
		ok, err := r.TightenedSets()[k-1].Covers(r.TightenedSets()[k], 1e-7)
		if err != nil || !ok {
			t.Errorf("X(%d) ⊄ X(%d): %v %v", k, k-1, ok, err)
		}
	}
	// Terminal set inside X(N).
	ok, err := r.TightenedSets()[10].Covers(r.TerminalSet(), 1e-7)
	if err != nil || !ok {
		t.Errorf("Xt ⊄ X(N): %v %v", ok, err)
	}
}

func TestRMPCComputeAtEquilibrium(t *testing.T) {
	r := accRMPC(t)
	u, err := r.Compute(mat.Vec{150, 40})
	if err != nil {
		t.Fatal(err)
	}
	// At the reference the cheapest plan is to hold the equilibrium input.
	if math.Abs(u[0]-8) > 0.5 {
		t.Errorf("u at equilibrium = %v, want ≈ 8", u[0])
	}
}

func TestRMPCSequenceLengthAndBounds(t *testing.T) {
	r := accRMPC(t)
	seq, err := r.ComputeSequence(mat.Vec{140, 45})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 10 {
		t.Fatalf("sequence length = %d", len(seq))
	}
	for k, u := range seq {
		if u[0] < -40-1e-6 || u[0] > 40+1e-6 {
			t.Errorf("u(%d) = %v outside U", k, u[0])
		}
	}
}

func TestRMPCInfeasibleOutsideX(t *testing.T) {
	r := accRMPC(t)
	if _, err := r.Compute(mat.Vec{200, 40}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

// TestRMPCKeepsSystemSafe runs the closed loop under worst-case-ish random
// disturbances from several feasible starting states and asserts the state
// never leaves X. This is the "κ is a safe controller" premise of the paper.
func TestRMPCKeepsSystemSafe(t *testing.T) {
	r := accRMPC(t)
	sys := accSystem()
	feas, err := r.FeasibleSet()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	starts, err := feas.Sample(8, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	for _, x0 := range starts {
		x := x0.Clone()
		for step := 0; step < 60; step++ {
			u, err := r.Compute(x)
			if err != nil {
				t.Fatalf("RMPC infeasible at %v (step %d from %v): %v", x, step, x0, err)
			}
			// Adversarial-ish disturbance: extreme values of W.
			w := mat.Vec{1, 0}
			if rng.Float64() < 0.5 {
				w[0] = -1
			}
			x = sys.Step(x, u, w)
			if !sys.X.Contains(x, 1e-6) {
				t.Fatalf("state %v left X at step %d from %v", x, step, x0)
			}
		}
	}
}

// TestRMPCFeasibleSetIsRCI exercises Proposition 1: from any sampled state
// in the feasible region, applying the RMPC keeps the successor inside the
// region for extreme disturbances.
func TestRMPCFeasibleSetIsRCI(t *testing.T) {
	r := accRMPC(t)
	sys := accSystem()
	feas, err := r.FeasibleSet()
	if err != nil {
		t.Fatal(err)
	}
	if feas.IsEmpty() {
		t.Fatal("feasible set empty")
	}
	rng := rand.New(rand.NewSource(37))
	pts, err := feas.Sample(25, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range pts {
		u, err := r.Compute(x)
		if err != nil {
			t.Fatalf("infeasible inside feasible set at %v: %v", x, err)
		}
		for _, w1 := range []float64{-1, 1} {
			next := sys.Step(x, u, mat.Vec{w1, 0})
			if !feas.Contains(next, 1e-5) {
				t.Fatalf("successor %v of %v (w=%v) left the feasible set", next, x, w1)
			}
		}
	}
}

func TestRMPCRejectsBadConfig(t *testing.T) {
	sys := accSystem()
	if _, err := NewRMPC(sys, RMPCConfig{Horizon: 0}); err == nil {
		t.Error("horizon 0 accepted")
	}
	bare := lti.NewSystem(sys.A, sys.B)
	if _, err := NewRMPC(bare, RMPCConfig{Horizon: 5}); err == nil {
		t.Error("missing constraint sets accepted")
	}
}
