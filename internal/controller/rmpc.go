package controller

import (
	"errors"
	"fmt"
	"math"

	"oic/internal/lp"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
	"oic/internal/reach"
)

// RMPCConfig parameterizes the tube-based robust MPC of Eq. 5 in the paper
// (after Chisci, Rossiter, Zappa 2001): a nominal prediction model with
// recursively tightened constraints X(k) = X(k−1) ⊖ A^{k−1}·W and a robust
// invariant terminal set.
type RMPCConfig struct {
	Horizon     int     // prediction horizon N (paper: 10)
	StateWeight float64 // P in the 1-norm stage cost P‖x−XRef‖₁
	InputWeight float64 // Q in the 1-norm stage cost Q‖u−URef‖₁

	// XRef/URef shift the stage cost so tracking a nonzero equilibrium is
	// expressible in physical coordinates; nil means the origin (the
	// paper's shifted coordinates).
	XRef mat.Vec
	URef mat.Vec

	// TerminalSet overrides the terminal constraint Xt. When nil it is
	// computed as the maximal robust invariant subset of X(N) under the
	// affine feedback with LocalGain.
	TerminalSet *poly.Polytope
	// LocalGain is the terminal local controller κL's gain; nil means an
	// LQR gain with identity weights.
	LocalGain *mat.Mat
}

// RMPC is the robust model predictive controller κR. Its 1-norm objective
// makes every Compute call a linear program solved by the internal simplex.
// RMPC is not safe for concurrent use.
type RMPC struct {
	sys *lti.System
	cfg RMPCConfig

	tightened []*poly.Polytope // X(0) … X(N)
	terminal  *poly.Polytope   // Xt ⊆ X(N)
	apow      []*mat.Mat       // A^0 … A^N
	drift     []mat.Vec        // d_k = Σ_{i<k} A^i·c
	gain      *mat.Mat         // local gain used for the terminal set

	feasible *poly.Polytope // lazily computed feasible region (Prop. 1)
}

// NewRMPC constructs the controller, precomputing tightened constraint
// sets, the terminal set, and the nominal prediction matrices. sys must
// have X, U, and W constraint sets.
func NewRMPC(sys *lti.System, cfg RMPCConfig) (*RMPC, error) {
	if sys.X == nil || sys.U == nil || sys.W == nil {
		return nil, errors.New("controller: NewRMPC: system must have X, U, and W sets")
	}
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("controller: NewRMPC: horizon %d < 1", cfg.Horizon)
	}
	if cfg.StateWeight < 0 || cfg.InputWeight < 0 {
		return nil, errors.New("controller: NewRMPC: negative cost weight")
	}
	if cfg.XRef == nil {
		cfg.XRef = make(mat.Vec, sys.NX())
	}
	if cfg.URef == nil {
		cfg.URef = make(mat.Vec, sys.NU())
	}
	n := cfg.Horizon

	r := &RMPC{sys: sys, cfg: cfg}

	// Powers of A and accumulated drift d_k = Σ_{i<k} A^i c.
	r.apow = make([]*mat.Mat, n+1)
	r.drift = make([]mat.Vec, n+1)
	r.apow[0] = mat.Identity(sys.NX())
	r.drift[0] = make(mat.Vec, sys.NX())
	for k := 1; k <= n; k++ {
		r.apow[k] = r.apow[k-1].Mul(sys.A)
		r.drift[k] = r.apow[k-1].MulVec(sys.C).Add(r.drift[k-1])
	}

	// Tightened constraints per the paper's recursion:
	// X(0) = X, X(k) = X(k−1) ⊖ A^{k−1}·W.
	r.tightened = make([]*poly.Polytope, n+1)
	r.tightened[0] = sys.X.ReduceRedundancy()
	for k := 1; k <= n; k++ {
		tk, err := poly.ErodeMapped(r.tightened[k-1], r.apow[k-1], sys.W)
		if err != nil {
			return nil, fmt.Errorf("controller: NewRMPC: tightening step %d: %w", k, err)
		}
		if tk.IsEmpty() {
			return nil, fmt.Errorf("controller: NewRMPC: tightened set X(%d) is empty; disturbance too large for horizon %d", k, n)
		}
		r.tightened[k] = tk
	}

	// Terminal set.
	if cfg.TerminalSet != nil {
		r.terminal = cfg.TerminalSet
	} else {
		gain := cfg.LocalGain
		if gain == nil {
			var err error
			gain, err = LQR(sys.A, sys.B, mat.Identity(sys.NX()), mat.Identity(sys.NU()), 0, 0)
			if err != nil {
				return nil, fmt.Errorf("controller: NewRMPC: terminal LQR synthesis: %w", err)
			}
		}
		r.gain = gain
		term, err := r.computeTerminalSet(gain)
		if err != nil {
			return nil, err
		}
		r.terminal = term
	}
	if r.terminal.IsEmpty() {
		return nil, errors.New("controller: NewRMPC: terminal set is empty")
	}
	return r, nil
}

// computeTerminalSet returns the maximal robust invariant subset of X(N)
// where the local affine feedback u = gain·(x−XRef) + URef is admissible:
// the standard choice satisfying the stability premise of Proposition 1.
func (r *RMPC) computeTerminalSet(gain *mat.Mat) (*poly.Polytope, error) {
	sys := r.sys
	// Input-admissibility of the local law as state constraints:
	// H_U·(K(x−xref)+uref) ≤ h_U  ⇔  (H_U·K)·x ≤ h_U − H_U·(uref − K·xref).
	off := r.cfg.URef.Sub(gain.MulVec(r.cfg.XRef))
	ha := sys.U.A.Mul(gain)
	hb := sys.U.B.Sub(sys.U.A.MulVec(off))
	admissible := poly.New(ha, hb)

	domain := poly.Intersect(r.tightened[r.cfg.Horizon], admissible).ReduceRedundancy()
	if domain.IsEmpty() {
		return nil, errors.New("controller: NewRMPC: no input-admissible terminal region")
	}
	acl, ccl := sys.ClosedLoop(gain, r.cfg.XRef, r.cfg.URef)
	term, err := reach.MaximalInvariantSet(domain, acl, ccl, sys.W, reach.Options{})
	if err != nil {
		return nil, fmt.Errorf("controller: NewRMPC: terminal invariant set: %w", err)
	}
	return term, nil
}

// Name implements Controller.
func (r *RMPC) Name() string { return "rmpc" }

// Horizon returns the prediction horizon N.
func (r *RMPC) Horizon() int { return r.cfg.Horizon }

// TightenedSets returns X(0)…X(N) (shared slices; do not mutate).
func (r *RMPC) TightenedSets() []*poly.Polytope { return r.tightened }

// TerminalSet returns Xt.
func (r *RMPC) TerminalSet() *poly.Polytope { return r.terminal }

// Compute implements Controller: it solves the horizon LP and returns the
// first planned input u*(0|t).
func (r *RMPC) Compute(x mat.Vec) (mat.Vec, error) {
	seq, err := r.ComputeSequence(x)
	if err != nil {
		return nil, err
	}
	return seq[0], nil
}

// ComputeSequence solves the horizon optimization (Eq. 5) and returns the
// full planned input sequence u*(0|t) … u*(N−1|t).
func (r *RMPC) ComputeSequence(x mat.Vec) ([]mat.Vec, error) {
	sys := r.sys
	nx, nu, n := sys.NX(), sys.NU(), r.cfg.Horizon
	if len(x) != nx {
		panic(fmt.Sprintf("controller: RMPC.Compute: state dim %d, want %d", len(x), nx))
	}
	if !r.tightened[0].Contains(x, 1e-7) {
		return nil, fmt.Errorf("%w: state outside X(0)", ErrInfeasible)
	}

	// Variable layout: u(0..N−1) | ax(1..N−1) | au(0..N−1).
	uOff := 0
	axOff := n * nu
	auOff := axOff + (n-1)*nx
	nvars := auOff + n*nu

	prob := lp.NewProblem(nvars)
	obj := make([]float64, nvars)
	for k := 1; k < n; k++ {
		for i := 0; i < nx; i++ {
			obj[axOff+(k-1)*nx+i] = r.cfg.StateWeight
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < nu; i++ {
			obj[auOff+k*nu+i] = r.cfg.InputWeight
		}
	}
	prob.SetObjective(obj)
	for j := axOff; j < nvars; j++ {
		prob.SetBounds(j, 0, math.Inf(1))
	}

	// xTerm(k) = A^k·x + d_k, the input-independent part of the prediction.
	xterm := make([]mat.Vec, n+1)
	for k := 0; k <= n; k++ {
		xterm[k] = r.apow[k].MulVec(x).Add(r.drift[k])
	}
	// coef(k, j) = A^{k−1−j}·B, the sensitivity of x(k) to u(j), j < k.
	coef := func(k, j int) *mat.Mat { return r.apow[k-1-j].Mul(sys.B) }

	addStateRows := func(k int, set *poly.Polytope) {
		for row := 0; row < set.A.R; row++ {
			h := set.A.Row(row)
			coeffs := make([]float64, nvars)
			for j := 0; j < k; j++ {
				cb := coef(k, j)
				for c := 0; c < nu; c++ {
					s := 0.0
					for i := 0; i < nx; i++ {
						s += h[i] * cb.At(i, c)
					}
					coeffs[uOff+j*nu+c] = s
				}
			}
			prob.AddConstraint(coeffs, lp.LE, set.B[row]-h.Dot(xterm[k]))
		}
	}
	for k := 1; k < n; k++ {
		addStateRows(k, r.tightened[k])
	}
	addStateRows(n, r.terminal)

	// Input constraints H_U·u(k) ≤ h_U.
	for k := 0; k < n; k++ {
		for row := 0; row < sys.U.A.R; row++ {
			coeffs := make([]float64, nvars)
			for c := 0; c < nu; c++ {
				coeffs[uOff+k*nu+c] = sys.U.A.At(row, c)
			}
			prob.AddConstraint(coeffs, lp.LE, sys.U.B[row])
		}
	}

	// |x(k) − XRef| ≤ ax(k) componentwise, k = 1..N−1.
	for k := 1; k < n; k++ {
		for i := 0; i < nx; i++ {
			for _, sign := range []float64{1, -1} {
				coeffs := make([]float64, nvars)
				for j := 0; j < k; j++ {
					cb := coef(k, j)
					for c := 0; c < nu; c++ {
						coeffs[uOff+j*nu+c] = sign * cb.At(i, c)
					}
				}
				coeffs[axOff+(k-1)*nx+i] = -1
				rhs := sign * (r.cfg.XRef[i] - xterm[k][i])
				prob.AddConstraint(coeffs, lp.LE, rhs)
			}
		}
	}
	// |u(k) − URef| ≤ au(k) componentwise.
	for k := 0; k < n; k++ {
		for c := 0; c < nu; c++ {
			for _, sign := range []float64{1, -1} {
				coeffs := make([]float64, nvars)
				coeffs[uOff+k*nu+c] = sign
				coeffs[auOff+k*nu+c] = -1
				prob.AddConstraint(coeffs, lp.LE, sign*r.cfg.URef[c])
			}
		}
	}

	sol := prob.Solve()
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("%w: LP status %v", ErrInfeasible, sol.Status)
	}
	seq := make([]mat.Vec, n)
	for k := 0; k < n; k++ {
		u := make(mat.Vec, nu)
		copy(u, sol.X[uOff+k*nu:uOff+(k+1)*nu])
		seq[k] = u
	}
	return seq, nil
}

// FeasibleSet returns the feasible region X_F of the horizon optimization
// projected onto the state (Proposition 1: X_F is the robust control
// invariant set XI of the RMPC). The result is cached.
func (r *RMPC) FeasibleSet() (*poly.Polytope, error) {
	if r.feasible != nil {
		return r.feasible, nil
	}
	sys := r.sys
	nx, nu, n := sys.NX(), sys.NU(), r.cfg.Horizon
	nvars := nx + n*nu // (x0, u(0..N−1)); aux cost variables do not bind

	var rows []mat.Vec
	var rhs []float64
	add := func(c mat.Vec, b float64) {
		rows = append(rows, c)
		rhs = append(rhs, b)
	}

	// x0 ∈ X(0).
	for row := 0; row < r.tightened[0].A.R; row++ {
		c := make(mat.Vec, nvars)
		copy(c[:nx], r.tightened[0].A.Row(row))
		add(c, r.tightened[0].B[row])
	}
	// State constraints: H·(A^k·x0 + Σ A^{k−1−j}B·u(j) + d_k) ≤ h.
	state := func(k int, set *poly.Polytope) {
		ha := set.A.Mul(r.apow[k])
		for row := 0; row < set.A.R; row++ {
			c := make(mat.Vec, nvars)
			for i := 0; i < nx; i++ {
				c[i] = ha.At(row, i)
			}
			h := set.A.Row(row)
			for j := 0; j < k; j++ {
				cb := r.apow[k-1-j].Mul(sys.B)
				for col := 0; col < nu; col++ {
					s := 0.0
					for i := 0; i < nx; i++ {
						s += h[i] * cb.At(i, col)
					}
					c[nx+j*nu+col] = s
				}
			}
			add(c, set.B[row]-h.Dot(r.drift[k]))
		}
	}
	for k := 1; k < n; k++ {
		state(k, r.tightened[k])
	}
	state(n, r.terminal)
	// Input constraints.
	for k := 0; k < n; k++ {
		for row := 0; row < sys.U.A.R; row++ {
			c := make(mat.Vec, nvars)
			for col := 0; col < nu; col++ {
				c[nx+k*nu+col] = sys.U.A.At(row, col)
			}
			add(c, sys.U.B[row])
		}
	}

	a := mat.New(len(rows), nvars)
	for i, rrow := range rows {
		for j := 0; j < nvars; j++ {
			a.Set(i, j, rrow[j])
		}
	}
	joint := poly.New(a, rhs)
	keep := make([]int, nx)
	for j := range keep {
		keep[j] = j
	}
	r.feasible = joint.Project(keep).ReduceRedundancy()
	return r.feasible, nil
}
