package controller

import (
	"errors"
	"fmt"
	"math"

	"oic/internal/lp"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
	"oic/internal/reach"
)

// RMPCConfig parameterizes the tube-based robust MPC of Eq. 5 in the paper
// (after Chisci, Rossiter, Zappa 2001): a nominal prediction model with
// recursively tightened constraints X(k) = X(k−1) ⊖ A^{k−1}·W and a robust
// invariant terminal set.
type RMPCConfig struct {
	Horizon     int     // prediction horizon N (paper: 10)
	StateWeight float64 // P in the 1-norm stage cost P‖x−XRef‖₁
	InputWeight float64 // Q in the 1-norm stage cost Q‖u−URef‖₁

	// XRef/URef shift the stage cost so tracking a nonzero equilibrium is
	// expressible in physical coordinates; nil means the origin (the
	// paper's shifted coordinates).
	XRef mat.Vec
	URef mat.Vec

	// TerminalSet overrides the terminal constraint Xt. When nil it is
	// computed as the maximal robust invariant subset of X(N) under the
	// affine feedback with LocalGain.
	TerminalSet *poly.Polytope
	// LocalGain is the terminal local controller κL's gain; nil means an
	// LQR gain with identity weights.
	LocalGain *mat.Mat
}

// RMPC is the robust model predictive controller κR. Its 1-norm objective
// makes every Compute call a linear program; the horizon LP is compiled
// once at construction (constraint matrix, objective, sparsity) and every
// Compute only refreshes the O(rows) affine-in-x right-hand side and
// resolves warm from the previous optimal basis (DESIGN.md §5.3).
//
// An RMPC value is not safe for concurrent use: the warm-start workspace
// is mutable call-to-call state. Concurrent (or determinism-sensitive)
// callers obtain independent handles over the shared compiled program via
// ForSession — core.Session does this automatically.
type RMPC struct {
	sys *lti.System
	cfg RMPCConfig

	tightened []*poly.Polytope // X(0) … X(N)
	terminal  *poly.Polytope   // Xt ⊆ X(N)
	apow      []*mat.Mat       // A^0 … A^N
	abpow     []*mat.Mat       // A^0·B … A^{N−1}·B (the hoisted coef(k,j) products)
	drift     []mat.Vec        // d_k = Σ_{i<k} A^i·c
	gain      *mat.Mat         // local gain used for the terminal set

	prog *rmpcProgram   // compiled horizon LP (shared, immutable)
	ws   *rmpcWorkspace // this handle's solver workspace (mutable)

	feasible *poly.Polytope // lazily computed feasible region (Prop. 1)
}

// rmpcProgram is the compiled horizon LP of Eq. 5: the constraint matrix,
// objective, and bounds are state-independent; only the right-hand side is
// affine in the measured state, rhs(x) = rhsConst + rhsGrad·x.
//
// The 1-norm input cost is posed through the split u(k) = URef + u⁺(k) −
// u⁻(k) with u⁺, u⁻ ≥ 0 and cost Q·(u⁺ + u⁻), which both removes the au
// auxiliary variables with their 2·N·nu absolute-value rows and keeps
// every remaining variable nonnegative (no free-variable column split in
// the solver). The state deviation cost keeps explicit ax variables —
// x(k) is an affine expression of the inputs, so its absolute value needs
// the two-row epigraph form.
type rmpcProgram struct {
	nx, nu, n           int
	upOff, unOff, axOff int
	nvars               int

	solver   *lp.Solver // compile master; workspaces Fork it
	rhsConst []float64  // rows
	rhsGrad  []float64  // rows × nx, row-major (zero rows for state-independent constraints)
}

// rmpcWorkspace is the per-handle mutable solve state: a forked solver
// (own tableau, own warm basis) plus the reused rhs buffer.
type rmpcWorkspace struct {
	sv  *lp.Solver
	rhs []float64
}

func (p *rmpcProgram) newWorkspace() *rmpcWorkspace {
	return &rmpcWorkspace{sv: p.solver.Fork(), rhs: make([]float64, p.solver.NumRows())}
}

// NewRMPC constructs the controller, precomputing tightened constraint
// sets, the terminal set, and the nominal prediction matrices. sys must
// have X, U, and W constraint sets.
func NewRMPC(sys *lti.System, cfg RMPCConfig) (*RMPC, error) {
	if sys.X == nil || sys.U == nil || sys.W == nil {
		return nil, errors.New("controller: NewRMPC: system must have X, U, and W sets")
	}
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("controller: NewRMPC: horizon %d < 1", cfg.Horizon)
	}
	if cfg.StateWeight < 0 || cfg.InputWeight < 0 {
		return nil, errors.New("controller: NewRMPC: negative cost weight")
	}
	if cfg.XRef == nil {
		cfg.XRef = make(mat.Vec, sys.NX())
	}
	if cfg.URef == nil {
		cfg.URef = make(mat.Vec, sys.NU())
	}
	n := cfg.Horizon

	r := &RMPC{sys: sys, cfg: cfg}

	// Powers of A, the hoisted input-sensitivity products A^i·B (the
	// coef(k, j) = A^{k−1−j}·B terms of the prediction), and accumulated
	// drift d_k = Σ_{i<k} A^i c.
	r.apow = make([]*mat.Mat, n+1)
	r.abpow = make([]*mat.Mat, n)
	r.drift = make([]mat.Vec, n+1)
	r.apow[0] = mat.Identity(sys.NX())
	r.drift[0] = make(mat.Vec, sys.NX())
	for k := 1; k <= n; k++ {
		r.apow[k] = r.apow[k-1].Mul(sys.A)
		r.drift[k] = r.apow[k-1].MulVec(sys.C).Add(r.drift[k-1])
	}
	for k := 0; k < n; k++ {
		r.abpow[k] = r.apow[k].Mul(sys.B)
	}

	// Tightened constraints per the paper's recursion:
	// X(0) = X, X(k) = X(k−1) ⊖ A^{k−1}·W.
	r.tightened = make([]*poly.Polytope, n+1)
	r.tightened[0] = sys.X.ReduceRedundancy()
	for k := 1; k <= n; k++ {
		tk, err := poly.ErodeMapped(r.tightened[k-1], r.apow[k-1], sys.W)
		if err != nil {
			return nil, fmt.Errorf("controller: NewRMPC: tightening step %d: %w", k, err)
		}
		if tk.IsEmpty() {
			return nil, fmt.Errorf("controller: NewRMPC: tightened set X(%d) is empty; disturbance too large for horizon %d", k, n)
		}
		r.tightened[k] = tk
	}

	// Terminal set.
	if cfg.TerminalSet != nil {
		r.terminal = cfg.TerminalSet
	} else {
		gain := cfg.LocalGain
		if gain == nil {
			var err error
			gain, err = LQR(sys.A, sys.B, mat.Identity(sys.NX()), mat.Identity(sys.NU()), 0, 0)
			if err != nil {
				return nil, fmt.Errorf("controller: NewRMPC: terminal LQR synthesis: %w", err)
			}
		}
		r.gain = gain
		term, err := r.computeTerminalSet(gain)
		if err != nil {
			return nil, err
		}
		r.terminal = term
	}
	if r.terminal.IsEmpty() {
		return nil, errors.New("controller: NewRMPC: terminal set is empty")
	}
	r.prog = r.compileProgram()
	r.ws = r.prog.newWorkspace()
	return r, nil
}

// compileProgram builds the horizon LP once: variable layout, objective,
// bounds, the full constraint matrix, and the affine-in-x description of
// the right-hand side. Everything Compute needs per step afterwards is an
// O(rows·nx) rhs refresh plus a warm LP resolve.
func (r *RMPC) compileProgram() *rmpcProgram {
	sys := r.sys
	nx, nu, n := sys.NX(), sys.NU(), r.cfg.Horizon

	// Variable layout: u⁺(0..N−1) | u⁻(0..N−1) | ax(1..N−1), all ≥ 0,
	// with u(k) = URef + u⁺(k) − u⁻(k).
	p := &rmpcProgram{nx: nx, nu: nu, n: n}
	p.upOff = 0
	p.unOff = n * nu
	p.axOff = 2 * n * nu
	p.nvars = p.axOff + (n-1)*nx

	prob := lp.NewProblem(p.nvars)
	obj := make([]float64, p.nvars)
	for j := 0; j < 2*n*nu; j++ {
		obj[j] = r.cfg.InputWeight // Q·(u⁺ + u⁻) = Q·|u − URef| at the optimum
	}
	for k := 1; k < n; k++ {
		for i := 0; i < nx; i++ {
			obj[p.axOff+(k-1)*nx+i] = r.cfg.StateWeight
		}
	}
	prob.SetObjective(obj)
	for j := 0; j < p.nvars; j++ {
		prob.SetBounds(j, 0, math.Inf(1))
	}

	// With the input split, the nominal prediction is
	// x(k) = A^k·x + Σ_{j<k} A^{k−1−j}·B·(URef + u⁺(j) − u⁻(j)) + d_k,
	// so the reference contribution bsum_k = Σ_{i<k} A^i·B·URef joins the
	// drift on the constant side of every state row.
	bsum := make([]mat.Vec, n+1)
	bsum[0] = make(mat.Vec, nx)
	buref := sys.B.MulVec(r.cfg.URef)
	for k := 1; k <= n; k++ {
		bsum[k] = bsum[k-1].Add(r.apow[k-1].MulVec(buref))
	}

	// rhs(x) = rhsConst + rhsGrad·x, accumulated row by row alongside the
	// constraint matrix. A state row h·x(k) ≤ h_b contributes const
	// h_b − h·(d_k + bsum_k) and gradient −hᵀ·A^k.
	var rhsConst []float64
	var rhsGrad []float64
	addRow := func(coeffs []float64, c float64, g mat.Vec) {
		prob.AddConstraint(coeffs, lp.LE, c)
		rhsConst = append(rhsConst, c)
		if g == nil {
			rhsGrad = append(rhsGrad, make([]float64, nx)...)
		} else {
			rhsGrad = append(rhsGrad, g...)
		}
	}

	coeffs := make([]float64, p.nvars)
	clear := func() {
		for i := range coeffs {
			coeffs[i] = 0
		}
	}

	addStateRows := func(k int, set *poly.Polytope) {
		hak := set.A.Mul(r.apow[k]) // row r: hᵀ·A^k
		for row := 0; row < set.A.R; row++ {
			h := set.A.RowView(row)
			clear()
			for j := 0; j < k; j++ {
				cb := r.abpow[k-1-j]
				for c := 0; c < nu; c++ {
					s := 0.0
					for i := 0; i < nx; i++ {
						s += h[i] * cb.At(i, c)
					}
					coeffs[p.upOff+j*nu+c] = s
					coeffs[p.unOff+j*nu+c] = -s
				}
			}
			g := make(mat.Vec, nx)
			for i := 0; i < nx; i++ {
				g[i] = -hak.At(row, i)
			}
			addRow(coeffs, set.B[row]-h.Dot(r.drift[k])-h.Dot(bsum[k]), g)
		}
	}
	for k := 1; k < n; k++ {
		addStateRows(k, r.tightened[k])
	}
	addStateRows(n, r.terminal)

	// Input constraints H_U·u(k) ≤ h_U (state-independent):
	// H_U·(u⁺ − u⁻) ≤ h_U − H_U·URef.
	huref := sys.U.A.MulVec(r.cfg.URef)
	for k := 0; k < n; k++ {
		for row := 0; row < sys.U.A.R; row++ {
			clear()
			for c := 0; c < nu; c++ {
				coeffs[p.upOff+k*nu+c] = sys.U.A.At(row, c)
				coeffs[p.unOff+k*nu+c] = -sys.U.A.At(row, c)
			}
			addRow(coeffs, sys.U.B[row]-huref[row], nil)
		}
	}

	// |x(k) − XRef| ≤ ax(k) componentwise, k = 1..N−1:
	// ±(x(k)−XRef) − ax(k) ≤ 0, with the input-independent part of x(k)
	// moved to the rhs.
	for k := 1; k < n; k++ {
		for i := 0; i < nx; i++ {
			for _, sign := range []float64{1, -1} {
				clear()
				for j := 0; j < k; j++ {
					cb := r.abpow[k-1-j]
					for c := 0; c < nu; c++ {
						coeffs[p.upOff+j*nu+c] = sign * cb.At(i, c)
						coeffs[p.unOff+j*nu+c] = -sign * cb.At(i, c)
					}
				}
				coeffs[p.axOff+(k-1)*nx+i] = -1
				g := make(mat.Vec, nx)
				for j := 0; j < nx; j++ {
					g[j] = -sign * r.apow[k].At(i, j)
				}
				addRow(coeffs, sign*(r.cfg.XRef[i]-r.drift[k][i]-bsum[k][i]), g)
			}
		}
	}

	p.solver = lp.NewSolver(prob)
	p.rhsConst = rhsConst
	p.rhsGrad = rhsGrad
	return p
}

// ForSession returns a controller handle sharing this RMPC's compiled
// program and offline sets but owning a fresh warm-start workspace.
// Handles are what make concurrent sessions race-free and every session's
// solve chain deterministic (cold first step, then warm) regardless of
// scheduling.
func (r *RMPC) ForSession() Controller {
	cp := *r
	cp.ws = r.prog.newWorkspace()
	return &cp
}

// ResetSession implements SessionResetter: it returns this handle's
// warm-start workspace to its cold state (keeping the allocated tableau),
// so a pooled handle behaves byte-identically to a fresh ForSession fork.
func (r *RMPC) ResetSession() { r.ws.sv.ResetWarm() }

// computeTerminalSet returns the maximal robust invariant subset of X(N)
// where the local affine feedback u = gain·(x−XRef) + URef is admissible:
// the standard choice satisfying the stability premise of Proposition 1.
func (r *RMPC) computeTerminalSet(gain *mat.Mat) (*poly.Polytope, error) {
	sys := r.sys
	// Input-admissibility of the local law as state constraints:
	// H_U·(K(x−xref)+uref) ≤ h_U  ⇔  (H_U·K)·x ≤ h_U − H_U·(uref − K·xref).
	off := r.cfg.URef.Sub(gain.MulVec(r.cfg.XRef))
	ha := sys.U.A.Mul(gain)
	hb := sys.U.B.Sub(sys.U.A.MulVec(off))
	admissible := poly.New(ha, hb)

	domain := poly.Intersect(r.tightened[r.cfg.Horizon], admissible).ReduceRedundancy()
	if domain.IsEmpty() {
		return nil, errors.New("controller: NewRMPC: no input-admissible terminal region")
	}
	acl, ccl := sys.ClosedLoop(gain, r.cfg.XRef, r.cfg.URef)
	term, err := reach.MaximalInvariantSet(domain, acl, ccl, sys.W, reach.Options{})
	if err != nil {
		return nil, fmt.Errorf("controller: NewRMPC: terminal invariant set: %w", err)
	}
	return term, nil
}

// Name implements Controller.
func (r *RMPC) Name() string { return "rmpc" }

// Horizon returns the prediction horizon N.
func (r *RMPC) Horizon() int { return r.cfg.Horizon }

// TightenedSets returns X(0)…X(N) (shared slices; do not mutate).
func (r *RMPC) TightenedSets() []*poly.Polytope { return r.tightened }

// TerminalSet returns Xt.
func (r *RMPC) TerminalSet() *poly.Polytope { return r.terminal }

// solveAt refreshes the affine-in-x right-hand side and resolves the
// compiled horizon LP, warm-starting from this handle's previous basis.
// The returned Solution is owned by the workspace and only valid until the
// next solve.
func (r *RMPC) solveAt(x mat.Vec) (*lp.Solution, error) {
	p := r.prog
	if len(x) != p.nx {
		panic(fmt.Sprintf("controller: RMPC.Compute: state dim %d, want %d", len(x), p.nx))
	}
	if !r.tightened[0].Contains(x, 1e-7) {
		return nil, fmt.Errorf("%w: state outside X(0)", ErrInfeasible)
	}
	ws := r.ws
	for i := range ws.rhs {
		acc := p.rhsConst[i]
		g := p.rhsGrad[i*p.nx : (i+1)*p.nx]
		for j, gv := range g {
			acc += gv * x[j]
		}
		ws.rhs[i] = acc
	}
	sol := ws.sv.SolveRHS(ws.rhs)
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("%w: LP status %v", ErrInfeasible, sol.Status)
	}
	return sol, nil
}

// inputAt reconstructs u(k) = URef + u⁺(k) − u⁻(k) from the LP solution.
func (p *rmpcProgram) inputAt(dst mat.Vec, uref mat.Vec, X []float64, k int) {
	for c := 0; c < p.nu; c++ {
		dst[c] = uref[c] + X[p.upOff+k*p.nu+c] - X[p.unOff+k*p.nu+c]
	}
}

// Compute implements Controller: it solves the horizon LP and returns the
// first planned input u*(0|t) without materializing the rest of the
// sequence (one O(nu) allocation per call).
func (r *RMPC) Compute(x mat.Vec) (mat.Vec, error) {
	sol, err := r.solveAt(x)
	if err != nil {
		return nil, err
	}
	u := make(mat.Vec, r.prog.nu)
	r.prog.inputAt(u, r.cfg.URef, sol.X, 0)
	return u, nil
}

// ComputeSequence solves the horizon optimization (Eq. 5) and returns the
// full planned input sequence u*(0|t) … u*(N−1|t).
func (r *RMPC) ComputeSequence(x mat.Vec) ([]mat.Vec, error) {
	sol, err := r.solveAt(x)
	if err != nil {
		return nil, err
	}
	p := r.prog
	seq := make([]mat.Vec, p.n)
	for k := 0; k < p.n; k++ {
		u := make(mat.Vec, p.nu)
		p.inputAt(u, r.cfg.URef, sol.X, k)
		seq[k] = u
	}
	return seq, nil
}

// FeasibleSet returns the feasible region X_F of the horizon optimization
// projected onto the state (Proposition 1: X_F is the robust control
// invariant set XI of the RMPC). The result is cached.
func (r *RMPC) FeasibleSet() (*poly.Polytope, error) {
	if r.feasible != nil {
		return r.feasible, nil
	}
	sys := r.sys
	nx, nu, n := sys.NX(), sys.NU(), r.cfg.Horizon
	nvars := nx + n*nu // (x0, u(0..N−1)); aux cost variables do not bind

	var rows []mat.Vec
	var rhs []float64
	add := func(c mat.Vec, b float64) {
		rows = append(rows, c)
		rhs = append(rhs, b)
	}

	// x0 ∈ X(0).
	for row := 0; row < r.tightened[0].A.R; row++ {
		c := make(mat.Vec, nvars)
		copy(c[:nx], r.tightened[0].A.Row(row))
		add(c, r.tightened[0].B[row])
	}
	// State constraints: H·(A^k·x0 + Σ A^{k−1−j}B·u(j) + d_k) ≤ h.
	state := func(k int, set *poly.Polytope) {
		ha := set.A.Mul(r.apow[k])
		for row := 0; row < set.A.R; row++ {
			c := make(mat.Vec, nvars)
			for i := 0; i < nx; i++ {
				c[i] = ha.At(row, i)
			}
			h := set.A.RowView(row)
			for j := 0; j < k; j++ {
				cb := r.abpow[k-1-j]
				for col := 0; col < nu; col++ {
					s := 0.0
					for i := 0; i < nx; i++ {
						s += h[i] * cb.At(i, col)
					}
					c[nx+j*nu+col] = s
				}
			}
			add(c, set.B[row]-h.Dot(r.drift[k]))
		}
	}
	for k := 1; k < n; k++ {
		state(k, r.tightened[k])
	}
	state(n, r.terminal)
	// Input constraints.
	for k := 0; k < n; k++ {
		for row := 0; row < sys.U.A.R; row++ {
			c := make(mat.Vec, nvars)
			for col := 0; col < nu; col++ {
				c[nx+k*nu+col] = sys.U.A.At(row, col)
			}
			add(c, sys.U.B[row])
		}
	}

	a := mat.New(len(rows), nvars)
	for i, rrow := range rows {
		for j := 0; j < nvars; j++ {
			a.Set(i, j, rrow[j])
		}
	}
	joint := poly.New(a, rhs)
	keep := make([]int, nx)
	for j := range keep {
		keep[j] = j
	}
	r.feasible = joint.Project(keep).ReduceRedundancy()
	return r.feasible, nil
}
