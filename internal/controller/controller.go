// Package controller provides the safe feedback controllers κ that the
// intermittent-control framework wraps: affine state feedback (with LQR
// gain synthesis) and the tube-based robust model predictive controller of
// Chisci, Rossiter, and Zappa that the paper uses for its ACC case study.
package controller

import (
	"errors"
	"fmt"

	"oic/internal/lti"
	"oic/internal/mat"
)

// Controller computes a control input from the measured state. It is the κ
// of the paper: a controller that, applied at every step, keeps the system
// inside its robust invariant set.
type Controller interface {
	// Compute returns the input for state x, or an error when no
	// admissible input exists (e.g. MPC infeasibility outside the
	// feasible region).
	Compute(x mat.Vec) (mat.Vec, error)
	// Name identifies the controller in logs and experiment tables.
	Name() string
}

// SessionController is implemented by controllers that keep mutable
// per-call solver state (e.g. the RMPC's warm-start workspace). ForSession
// returns a handle that shares the expensive compiled and offline data but
// owns a fresh workspace, so concurrent sessions never race and each
// session's results depend only on its own call sequence — core.Session
// forks one automatically.
type SessionController interface {
	Controller
	ForSession() Controller
}

// SessionResetter is implemented by session handles whose mutable solve
// workspace can be returned to its post-construction (cold) state without
// reallocating. Resetting is what makes handles poolable: a reused handle's
// solve chain is indistinguishable from a freshly forked one's, so session
// pools (pkg/oic) recycle the expensive workspace buffers while preserving
// per-session determinism. core.Session.Reset calls it automatically.
type SessionResetter interface {
	Controller
	ResetSession()
}

// AffineFeedback is u = K·(x − XRef) + URef, the analytic controller class
// for which the paper's model-based skipping approach applies.
type AffineFeedback struct {
	K    *mat.Mat
	XRef mat.Vec
	URef mat.Vec
}

// NewAffineFeedback returns the affine feedback law u = k·(x−xref) + uref.
// nil references default to zero vectors.
func NewAffineFeedback(k *mat.Mat, xref, uref mat.Vec) *AffineFeedback {
	if xref == nil {
		xref = make(mat.Vec, k.C)
	}
	if uref == nil {
		uref = make(mat.Vec, k.R)
	}
	if len(xref) != k.C || len(uref) != k.R {
		panic(fmt.Sprintf("controller: NewAffineFeedback: K is %dx%d but refs are %d/%d",
			k.R, k.C, len(uref), len(xref)))
	}
	return &AffineFeedback{K: k, XRef: xref.Clone(), URef: uref.Clone()}
}

// Compute implements Controller.
func (f *AffineFeedback) Compute(x mat.Vec) (mat.Vec, error) {
	return f.K.MulVec(x.Sub(f.XRef)).Add(f.URef), nil
}

// Name implements Controller.
func (f *AffineFeedback) Name() string { return "affine-feedback" }

// EquilibriumInput solves B·u = xref − A·xref − c for the input that holds
// the system at xref, via the normal equations. It errors when no exact
// equilibrium input exists (residual above tol).
func EquilibriumInput(sys *lti.System, xref mat.Vec, tol float64) (mat.Vec, error) {
	if tol <= 0 {
		tol = 1e-8
	}
	rhs := xref.Sub(sys.A.MulVec(xref)).Sub(sys.C)
	bt := sys.B.T()
	btb := bt.Mul(sys.B)
	u, err := mat.Solve(btb, bt.MulVec(rhs))
	if err != nil {
		return nil, fmt.Errorf("controller: EquilibriumInput: %w", err)
	}
	if resid := sys.B.MulVec(u).Sub(rhs).NormInf(); resid > tol {
		return nil, fmt.Errorf("controller: EquilibriumInput: no exact equilibrium at %v (residual %g)", xref, resid)
	}
	return u, nil
}

// ErrInfeasible is returned by optimization-based controllers when the
// current state admits no constraint-satisfying input plan.
var ErrInfeasible = errors.New("controller: optimization infeasible")
