// Package traffic is the repository's SUMO substitute (see DESIGN.md §2):
// a longitudinal two-vehicle micro-world providing (i) the front-vehicle
// speed profiles the paper's experiments exercise (pure random, bounded-
// acceleration random, and sinusoids with varying disturbance, Eq. 8), and
// (ii) a physically-derived fuel-rate model standing in for SUMO's HBEFA
// emission tables.
//
// The ego vehicle's dynamics are exactly the paper's difference equations
// and are simulated by the control stack (package lti / core); this package
// generates the exogenous environment and meters fuel over the resulting
// trajectories, which is how the paper uses SUMO.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
)

// Profile generates a front-vehicle speed sequence for an episode.
type Profile interface {
	// Generate returns steps speed samples v_f(0..steps-1), each within
	// the profile's configured range.
	Generate(rng *rand.Rand, steps int) []float64
	Name() string
}

// clampRange clips v into [lo, hi].
func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Constant is a fixed-speed front vehicle (useful in tests).
type Constant struct{ V float64 }

// Generate implements Profile.
func (c Constant) Generate(_ *rand.Rand, steps int) []float64 {
	out := make([]float64, steps)
	for i := range out {
		out[i] = c.V
	}
	return out
}

// Name implements Profile.
func (c Constant) Name() string { return fmt.Sprintf("constant(%g)", c.V) }

// PureRandom redraws v_f uniformly in [Min, Max] at every step — the
// paper's Ex.6, where "a drastic change is allowed instantly".
type PureRandom struct{ Min, Max float64 }

// Generate implements Profile.
func (p PureRandom) Generate(rng *rand.Rand, steps int) []float64 {
	out := make([]float64, steps)
	for i := range out {
		out[i] = p.Min + rng.Float64()*(p.Max-p.Min)
	}
	return out
}

// Name implements Profile.
func (p PureRandom) Name() string { return fmt.Sprintf("pure-random[%g,%g]", p.Min, p.Max) }

// BoundedRandom is a continuous random walk: at each step the front
// vehicle picks a random acceleration in [−AccelMax, AccelMax] applied over
// the period Delta, clamped to [Min, Max]. This is the paper's Ex.1–Ex.5
// and Ex.7 ("the velocity can only change continuously", v_f′ ∈ [−20, 20]).
type BoundedRandom struct {
	Min, Max float64
	AccelMax float64
	Delta    float64 // control period; the paper's δ = 0.1
}

// Generate implements Profile.
func (p BoundedRandom) Generate(rng *rand.Rand, steps int) []float64 {
	out := make([]float64, steps)
	v := p.Min + rng.Float64()*(p.Max-p.Min)
	for i := range out {
		out[i] = v
		a := (2*rng.Float64() - 1) * p.AccelMax
		v = clampRange(v+a*p.Delta, p.Min, p.Max)
	}
	return out
}

// Name implements Profile.
func (p BoundedRandom) Name() string {
	return fmt.Sprintf("bounded-random[%g,%g]|a|<=%g", p.Min, p.Max, p.AccelMax)
}

// Sinusoid is the paper's Eq. 8 pattern:
//
//	v_f(t) = VE + Amp·sin(π/2·Delta·t) + w,  w ~ U[−Noise, Noise],
//
// clamped to [Min, Max]. Ex.8–Ex.10 instantiate it with decreasing noise
// (more "regularity"); Fig. 4's scenario is Amp = 9, Noise = 1.
type Sinusoid struct {
	VE       float64 // mean speed (paper: 40)
	Amp      float64 // a_f
	Noise    float64 // uniform disturbance half-range
	Delta    float64 // control period (paper: 0.1)
	Min, Max float64 // clamp range (paper: [30, 50])
}

// Generate implements Profile.
func (p Sinusoid) Generate(rng *rand.Rand, steps int) []float64 {
	out := make([]float64, steps)
	for i := range out {
		w := (2*rng.Float64() - 1) * p.Noise
		v := p.VE + p.Amp*math.Sin(math.Pi/2*p.Delta*float64(i)) + w
		out[i] = clampRange(v, p.Min, p.Max)
	}
	return out
}

// Name implements Profile.
func (p Sinusoid) Name() string {
	return fmt.Sprintf("sinusoid(amp=%g,noise=%g)", p.Amp, p.Noise)
}

// FuelModel meters fuel from speed and commanded acceleration, standing in
// for SUMO's HBEFA tables. The ego dynamics are v̇ = u − k·v, so u is the
// engine/brake command per unit mass: positive u demands traction power
// P = u·v (per unit mass), negative u is (fuel-free) friction braking.
//
// Rate(v, u) = Idle + C1·max(0, u·v) + C2·max(0, u·v)², in volume per
// second. The quadratic term models falling engine efficiency at high
// power demand, which is what makes "coast, then correct hard" strategies
// pay a premium over smooth actuation — the effect the paper's fuel
// numbers reflect.
type FuelModel struct {
	Idle float64 // volume/s at zero traction
	C1   float64 // volume per unit traction energy
	C2   float64 // efficiency loss at high power
}

// DefaultFuelModel returns coefficients calibrated so a 100-step (10 s)
// episode at the ACC operating point burns on the order of 10 mL,
// comparable to a passenger car at 40 m/s. The quadratic coefficient is
// small, matching the mildly convex power-to-fuel maps of SUMO's HBEFA
// passenger-car classes: traction fuel scales roughly linearly with
// commanded power, with a modest premium for hard accelerations.
func DefaultFuelModel() *FuelModel {
	return &FuelModel{Idle: 0.15, C1: 0.003, C2: 1e-7}
}

// Rate returns the instantaneous fuel-volume rate for ego speed v and
// command u.
func (f *FuelModel) Rate(v, u float64) float64 {
	p := u * v
	if p < 0 {
		p = 0
	}
	return f.Idle + f.C1*p + f.C2*p*p
}

// Episode meters fuel and actuation energy over an ego trajectory: speeds
// v(0..n), commands u(0..n-1), period delta. It returns total fuel volume
// and the 1-norm actuation energy Σ|u|.
func (f *FuelModel) Episode(v []float64, u []float64, delta float64) (fuel, energy float64) {
	if len(v) != len(u)+1 {
		panic(fmt.Sprintf("traffic: FuelModel.Episode: %d speeds for %d commands", len(v), len(u)))
	}
	for t := range u {
		fuel += f.Rate(v[t], u[t]) * delta
		energy += math.Abs(u[t])
	}
	return fuel, energy
}
