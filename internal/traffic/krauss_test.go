package traffic

import (
	"math"
	"math/rand"
	"testing"
)

func TestSafeSpeedProperties(t *testing.T) {
	k := DefaultKrauss()
	// Zero gap forces a stop.
	if v := k.SafeSpeed(0, 30); v != 0 {
		t.Errorf("safe speed at zero gap = %v", v)
	}
	// Monotone in gap and in leader speed.
	prev := -1.0
	for gap := 1.0; gap <= 100; gap += 10 {
		v := k.SafeSpeed(gap, 20)
		if v <= prev {
			t.Fatalf("safe speed not increasing in gap at %v", gap)
		}
		prev = v
	}
	if k.SafeSpeed(30, 10) >= k.SafeSpeed(30, 30) {
		t.Error("safe speed not increasing in leader speed")
	}
}

func TestSafeSpeedStoppingGuarantee(t *testing.T) {
	// Following at exactly the safe speed, a follower that brakes at b
	// while the leader brakes at b too must not collide. Simulate the
	// emergency braking envelope.
	k := DefaultKrauss()
	k.Sigma = 0 // deterministic
	gap := 25.0
	vl := 30.0
	v := k.SafeSpeed(gap, vl)
	pos, posL := 0.0, gap+5 // leader 5 m vehicle length ahead of bumper
	for step := 0; step < 2000; step++ {
		v = math.Max(0, v-k.Decel*k.Delta)
		vl = math.Max(0, vl-k.Decel*k.Delta)
		pos += v * k.Delta
		posL += vl * k.Delta
		if pos >= posL {
			t.Fatalf("collision at step %d (gap was safe-speed certified)", step)
		}
		if v == 0 && vl == 0 {
			return
		}
	}
}

func TestKraussStepBounds(t *testing.T) {
	k := DefaultKrauss()
	rng := rand.New(rand.NewSource(1))
	v := 20.0
	for i := 0; i < 100; i++ {
		next := k.Step(v, 40, 25, rng)
		if next < 0 || next > k.VMax+1e-9 {
			t.Fatalf("speed %v out of [0, vmax]", next)
		}
		if next > v+k.Accel*k.Delta+1e-9 {
			t.Fatalf("acceleration bound violated: %v -> %v", v, next)
		}
		v = next
	}
}

func TestSquareWave(t *testing.T) {
	w := SquareWave{VHigh: 40, VLow: 20, HighSteps: 5, LowSteps: 5}
	vs := w.Generate(nil, 20)
	if vs[0] != 40 || vs[4] != 40 {
		t.Errorf("high phase wrong: %v", vs[:5])
	}
	if vs[5] != 20 || vs[9] != 20 {
		t.Errorf("low phase wrong: %v", vs[5:10])
	}
	if vs[10] != 40 {
		t.Errorf("period wrong: vs[10] = %v", vs[10])
	}
}

func TestSquareWaveRamp(t *testing.T) {
	w := SquareWave{VHigh: 40, VLow: 20, HighSteps: 10, LowSteps: 10, Ramp: 2}
	vs := w.Generate(nil, 40)
	for i := 1; i < len(vs); i++ {
		if d := math.Abs(vs[i] - vs[i-1]); d > 2+1e-9 {
			t.Fatalf("ramp violated at %d: %v", i, d)
		}
	}
}

func TestPlatoonNoCollisionAndWaves(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Platoon{
		Model: DefaultKrauss(),
		N:     5,
		Head:  SquareWave{VHigh: 45, VLow: 15, HighSteps: 80, LowSteps: 40, Ramp: 1},
	}
	vs := p.Generate(rng, 600)
	if len(vs) != 600 {
		t.Fatalf("trace length %d", len(vs))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if v < 0 {
			t.Fatalf("negative speed %v", v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	// The congestion wave must actually oscillate at the platoon tail.
	if hi-lo < 10 {
		t.Errorf("no visible stop-and-go wave: range [%v, %v]", lo, hi)
	}
}

func TestPlatoonClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Platoon{
		Model: DefaultKrauss(),
		N:     3,
		Head:  SquareWave{VHigh: 50, VLow: 10, HighSteps: 50, LowSteps: 50, Ramp: 1},
		Min:   30, Max: 50,
	}
	for _, v := range p.Generate(rng, 400) {
		if v < 30-1e-9 || v > 50+1e-9 {
			t.Fatalf("clamped trace out of range: %v", v)
		}
	}
}

func TestPlatoonDeterministicWithSeed(t *testing.T) {
	p := Platoon{Model: DefaultKrauss(), N: 2, Head: Constant{V: 30}}
	a := p.Generate(rand.New(rand.NewSource(7)), 100)
	b := p.Generate(rand.New(rand.NewSource(7)), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}
