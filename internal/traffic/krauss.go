package traffic

import (
	"fmt"
	"math"
	"math/rand"
)

// Krauss is the Krauß car-following model, SUMO's default: a driver keeps
// the largest speed that still allows stopping safely behind the leader,
// minus a stochastic imperfection.
//
//	v_safe = −b·τ + sqrt((b·τ)² + v_lead² + 2·b·gap)
//	v_des  = min(v + a·Δt, v_safe, v_max)
//	v⁺     = max(0, v_des − σ·a·Δt·U[0,1])
//
// It generates the emergent stop-and-go waves the paper's introduction
// motivates ("stop-and-go in a traffic jam") without needing SUMO itself.
type Krauss struct {
	Accel float64 // maximum acceleration a (m/s²)
	Decel float64 // comfortable deceleration b (m/s²)
	Tau   float64 // driver reaction time τ (s)
	Sigma float64 // imperfection σ ∈ [0, 1]
	VMax  float64 // speed limit
	Delta float64 // simulation step Δt (s)
}

// DefaultKrauss returns passenger-car parameters in SUMO's default range.
func DefaultKrauss() Krauss {
	return Krauss{Accel: 2.6, Decel: 4.5, Tau: 1.0, Sigma: 0.5, VMax: 55, Delta: 0.1}
}

// SafeSpeed returns the Krauß safe speed for the given bumper-to-bumper gap
// and leader speed.
func (k Krauss) SafeSpeed(gap, vLeader float64) float64 {
	if gap <= 0 {
		return 0
	}
	bt := k.Decel * k.Tau
	return -bt + math.Sqrt(bt*bt+vLeader*vLeader+2*k.Decel*gap)
}

// Step advances one follower: given its speed, the gap to its leader, and
// the leader's speed, it returns the follower's next speed.
func (k Krauss) Step(v, gap, vLeader float64, rng *rand.Rand) float64 {
	des := v + k.Accel*k.Delta
	if safe := k.SafeSpeed(gap, vLeader); safe < des {
		des = safe
	}
	if des > k.VMax {
		des = k.VMax
	}
	if rng != nil && k.Sigma > 0 {
		des -= k.Sigma * k.Accel * k.Delta * rng.Float64()
	}
	if des < 0 {
		return 0
	}
	return des
}

// Platoon simulates a column of Krauß followers behind a scripted head
// vehicle and reports the speed trace of the last follower — the vehicle
// an ego ACC would actually face inside congested traffic. Waves amplify
// down the platoon, producing realistic stop-and-go oscillations.
type Platoon struct {
	Model     Krauss
	N         int     // number of followers (≥ 1)
	Head      Profile // speed trace of the platoon head
	InitGap   float64 // initial bumper-to-bumper gaps (default 30 m)
	InitSpeed float64 // initial speed of every follower (default head's first sample)

	// Min/Max clamp the reported trace so it can drive a controller whose
	// disturbance set was designed for that speed range. Zero values mean
	// no clamping.
	Min, Max float64
}

// Generate implements Profile.
func (p Platoon) Generate(rng *rand.Rand, steps int) []float64 {
	if p.N < 1 {
		panic("traffic: Platoon: need at least one follower")
	}
	head := p.Head.Generate(rng, steps)
	gap := p.InitGap
	if gap <= 0 {
		gap = 30
	}
	dt := p.Model.Delta
	if dt <= 0 {
		dt = 0.1
	}

	// Positions and speeds: index 0 is the scripted head.
	pos := make([]float64, p.N+1)
	vel := make([]float64, p.N+1)
	v0 := p.InitSpeed
	if v0 == 0 && steps > 0 {
		v0 = head[0]
	}
	for i := 0; i <= p.N; i++ {
		pos[i] = -float64(i) * gap
		vel[i] = v0
	}

	out := make([]float64, steps)
	for t := 0; t < steps; t++ {
		vel[0] = head[t]
		// Update followers back to front using current leader states.
		for i := 1; i <= p.N; i++ {
			g := pos[i-1] - pos[i] - 5 // 5 m vehicle length
			vel[i] = p.Model.Step(vel[i], g, vel[i-1], rng)
		}
		for i := 0; i <= p.N; i++ {
			pos[i] += vel[i] * dt
		}
		v := vel[p.N]
		if p.Max > p.Min {
			v = clampRange(v, p.Min, p.Max)
		}
		out[t] = v
	}
	return out
}

// Name implements Profile.
func (p Platoon) Name() string {
	return fmt.Sprintf("platoon(n=%d,head=%s)", p.N, p.Head.Name())
}

// SquareWave is a scripted stop-and-go head vehicle: VHigh for HighSteps,
// then VLow for LowSteps, repeating. Speed ramps are limited by Ramp per
// step so the trace stays physically plausible.
type SquareWave struct {
	VHigh, VLow         float64
	HighSteps, LowSteps int
	Ramp                float64 // max speed change per step (default: instant)
}

// Generate implements Profile.
func (w SquareWave) Generate(_ *rand.Rand, steps int) []float64 {
	period := w.HighSteps + w.LowSteps
	if period <= 0 {
		panic("traffic: SquareWave: period must be positive")
	}
	out := make([]float64, steps)
	v := w.VHigh
	for t := 0; t < steps; t++ {
		target := w.VHigh
		if t%period >= w.HighSteps {
			target = w.VLow
		}
		if w.Ramp > 0 {
			if target > v+w.Ramp {
				target = v + w.Ramp
			} else if target < v-w.Ramp {
				target = v - w.Ramp
			}
		}
		v = target
		out[t] = v
	}
	return out
}

// Name implements Profile.
func (w SquareWave) Name() string {
	return fmt.Sprintf("square(%g/%g)", w.VHigh, w.VLow)
}
