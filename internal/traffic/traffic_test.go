package traffic

import (
	"math"
	"math/rand"
	"testing"
)

func TestConstantProfile(t *testing.T) {
	vs := Constant{V: 42}.Generate(nil, 10)
	for _, v := range vs {
		if v != 42 {
			t.Fatalf("constant profile produced %v", v)
		}
	}
}

func TestPureRandomRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := PureRandom{Min: 30, Max: 50}
	vs := p.Generate(rng, 1000)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if v < 30 || v > 50 {
			t.Fatalf("speed %v outside [30,50]", v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	// With 1000 draws the empirical range should nearly fill [30, 50].
	if lo > 31 || hi < 49 {
		t.Errorf("empirical range [%v, %v] suspiciously narrow", lo, hi)
	}
}

func TestBoundedRandomContinuity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := BoundedRandom{Min: 30, Max: 50, AccelMax: 20, Delta: 0.1}
	vs := p.Generate(rng, 500)
	for i := 1; i < len(vs); i++ {
		if d := math.Abs(vs[i] - vs[i-1]); d > 20*0.1+1e-9 {
			t.Fatalf("step %d jumps by %v > AccelMax·Delta", i, d)
		}
		if vs[i] < 30 || vs[i] > 50 {
			t.Fatalf("speed %v outside range", vs[i])
		}
	}
}

func TestSinusoidShape(t *testing.T) {
	p := Sinusoid{VE: 40, Amp: 9, Noise: 0, Delta: 0.1, Min: 30, Max: 50}
	vs := p.Generate(rand.New(rand.NewSource(3)), 200)
	// Period of sin(π/2·0.1·t) is 40 steps: peak near t = 10, trough near t = 30.
	if math.Abs(vs[10]-49) > 1e-9 {
		t.Errorf("peak vs[10] = %v, want 49", vs[10])
	}
	if math.Abs(vs[30]-31) > 1e-9 {
		t.Errorf("trough vs[30] = %v, want 31", vs[30])
	}
	if math.Abs(vs[0]-40) > 1e-9 {
		t.Errorf("vs[0] = %v, want 40", vs[0])
	}
}

func TestSinusoidNoiseBounded(t *testing.T) {
	p := Sinusoid{VE: 40, Amp: 5, Noise: 5, Delta: 0.1, Min: 30, Max: 50}
	vs := p.Generate(rand.New(rand.NewSource(4)), 1000)
	for i, v := range vs {
		base := 40 + 5*math.Sin(math.Pi/2*0.1*float64(i))
		if math.Abs(v-base) > 5+1e-9 {
			t.Fatalf("noise at %d exceeds bound: %v vs base %v", i, v, base)
		}
	}
}

func TestFuelRateMonotoneInPower(t *testing.T) {
	f := DefaultFuelModel()
	prev := -1.0
	for u := 0.0; u <= 40; u += 5 {
		r := f.Rate(40, u)
		if r <= prev {
			t.Fatalf("fuel rate not increasing at u=%v", u)
		}
		prev = r
	}
}

func TestFuelCoastingAndBrakingAtIdle(t *testing.T) {
	f := DefaultFuelModel()
	if got := f.Rate(40, 0); got != f.Idle {
		t.Errorf("coasting rate = %v, want idle %v", got, f.Idle)
	}
	if got := f.Rate(40, -20); got != f.Idle {
		t.Errorf("braking rate = %v, want idle %v", got, f.Idle)
	}
}

func TestFuelQuadraticPremium(t *testing.T) {
	// One hard correction must burn more than two gentle ones totalling the
	// same commanded impulse — the convexity that rewards smooth control.
	f := DefaultFuelModel()
	hard := f.Rate(40, 20)
	gentle := 2 * f.Rate(40, 10)
	if hard+f.Idle <= gentle {
		t.Errorf("no convex premium: hard+idle %v vs gentle %v", hard+f.Idle, gentle)
	}
}

func TestEpisodeAccounting(t *testing.T) {
	f := &FuelModel{Idle: 1, C1: 0, C2: 0}
	v := []float64{40, 40, 40}
	u := []float64{5, -3}
	fuel, energy := f.Episode(v, u, 0.1)
	if math.Abs(fuel-0.2) > 1e-12 {
		t.Errorf("fuel = %v, want 0.2 (idle only)", fuel)
	}
	if math.Abs(energy-8) > 1e-12 {
		t.Errorf("energy = %v, want 8", energy)
	}
}

func TestEpisodeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultFuelModel().Episode([]float64{40, 40}, []float64{1, 2}, 0.1)
}

func TestProfileNames(t *testing.T) {
	for _, p := range []Profile{
		Constant{V: 1}, PureRandom{}, BoundedRandom{}, Sinusoid{},
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}
