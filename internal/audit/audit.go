// Package audit re-verifies recorded framework runs offline. It treats the
// execution as untrusted and checks, step by step, that
//
//   - the realized disturbances were inside the declared set W (an
//     out-of-model environment voids every guarantee — the most common
//     integration mistake);
//   - the recorded transitions are consistent with the declared dynamics;
//   - every state respected the Theorem 1 invariant (x ∈ XI) and the safe
//     set X;
//   - the monitor behaved per Algorithm 1: interventions happened exactly
//     when the state was outside X′, and skipped steps applied zero input;
//   - the reported energy matches the inputs.
//
// The auditor is the runtime-assurance complement to the constructive
// guarantees: DESIGN.md's safety claims are validated on every experiment's
// recorded data, not just proven about the code.
package audit

import (
	"fmt"

	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
)

// Finding is one audit violation.
type Finding struct {
	Step int
	Kind Kind
	Msg  string
}

// Kind classifies audit findings.
type Kind int

// Finding kinds.
const (
	OutOfModelDisturbance Kind = iota // w(t) ∉ W
	DynamicsMismatch                  // x(t+1) ≠ A·x + B·u + c + w
	SafetyViolation                   // x ∉ X
	InvariantViolation                // x ∉ XI
	MonitorInconsistency              // forced flag disagrees with X′ membership
	SkipActuated                      // z = 0 but u ≠ 0
	EnergyMismatch                    // reported energy ≠ Σ‖u‖₁
)

func (k Kind) String() string {
	switch k {
	case OutOfModelDisturbance:
		return "out-of-model-disturbance"
	case DynamicsMismatch:
		return "dynamics-mismatch"
	case SafetyViolation:
		return "safety-violation"
	case InvariantViolation:
		return "invariant-violation"
	case MonitorInconsistency:
		return "monitor-inconsistency"
	case SkipActuated:
		return "skip-actuated"
	case EnergyMismatch:
		return "energy-mismatch"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Report is the outcome of an audit.
type Report struct {
	Steps    int
	Findings []Finding
}

// OK reports whether the audit found no violations.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

// Count returns the number of findings of the given kind.
func (r *Report) Count(k Kind) int {
	n := 0
	for _, f := range r.Findings {
		if f.Kind == k {
			n++
		}
	}
	return n
}

// String summarizes the report.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("audit: %d steps, clean", r.Steps)
	}
	return fmt.Sprintf("audit: %d steps, %d findings (first: step %d %v: %s)",
		r.Steps, len(r.Findings), r.Findings[0].Step, r.Findings[0].Kind, r.Findings[0].Msg)
}

// Options tunes audit tolerances. Zero values select defaults.
type Options struct {
	DynTol    float64 // dynamics residual tolerance (default 1e-7)
	SetTol    float64 // set membership tolerance (default 1e-7)
	EnergyTol float64 // energy accounting tolerance (default 1e-6)
}

func (o Options) withDefaults() Options {
	if o.DynTol == 0 {
		o.DynTol = 1e-7
	}
	if o.SetTol == 0 {
		o.SetTol = 1e-7
	}
	if o.EnergyTol == 0 {
		o.EnergyTol = 1e-6
	}
	return o
}

// Run audits a framework result against the declared system and safety
// sets.
func Run(sys *lti.System, sets core.SafetySets, res *core.Result, opt Options) *Report {
	opt = opt.withDefaults()
	rep := &Report{Steps: len(res.Records)}
	add := func(step int, kind Kind, format string, args ...interface{}) {
		rep.Findings = append(rep.Findings, Finding{Step: step, Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}

	energy := 0.0
	for _, rec := range res.Records {
		energy += rec.U.Norm1()

		// Disturbance inside W.
		if sys.W != nil {
			if v := sys.W.Violation(rec.W); v > opt.SetTol {
				add(rec.T, OutOfModelDisturbance, "w=%v violates W by %.3g", rec.W, v)
			}
		}
		// Transition consistency.
		pred := sys.Step(rec.X, rec.U, rec.W)
		if !pred.Equal(rec.Next, opt.DynTol) {
			add(rec.T, DynamicsMismatch, "recorded %v vs predicted %v", rec.Next, pred)
		}
		// Safety and invariance of the successor.
		if v := sets.X.Violation(rec.Next); v > opt.SetTol {
			add(rec.T, SafetyViolation, "x⁺=%v outside X by %.3g", rec.Next, v)
		}
		if v := sets.XI.Violation(rec.Next); v > opt.SetTol {
			add(rec.T, InvariantViolation, "x⁺=%v outside XI by %.3g", rec.Next, v)
		}
		// Monitor semantics (Algorithm 1): outside X′ ⇒ ran and forced;
		// a recorded skip must be inside X′ and must not actuate.
		inXPrime := sets.XPrime.Contains(rec.X, opt.SetTol)
		if !inXPrime && !rec.Ran {
			add(rec.T, MonitorInconsistency, "skipped outside X' at %v", rec.X)
		}
		if rec.Forced && inXPrime {
			// Tolerance asymmetry can misclassify states on the boundary;
			// flag only clear interior points.
			if sets.XPrime.Violation(rec.X) < -opt.SetTol {
				add(rec.T, MonitorInconsistency, "forced inside X' at %v", rec.X)
			}
		}
		if !rec.Ran {
			if rec.U.Norm1() > 0 {
				add(rec.T, SkipActuated, "skip applied u=%v", rec.U)
			}
		}
	}
	if diff := energy - res.Energy; diff > opt.EnergyTol || diff < -opt.EnergyTol {
		add(len(res.Records), EnergyMismatch, "records sum %.9g, reported %.9g", energy, res.Energy)
	}
	return rep
}

// RunSequence audits a raw trajectory (states, inputs, disturbances)
// against the system and the original safe set only — useful for
// third-party logs that lack framework records.
func RunSequence(sys *lti.System, states, inputs, dists []mat.Vec, opt Options) *Report {
	opt = opt.withDefaults()
	rep := &Report{Steps: len(inputs)}
	add := func(step int, kind Kind, format string, args ...interface{}) {
		rep.Findings = append(rep.Findings, Finding{Step: step, Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}
	if len(states) != len(inputs)+1 || len(dists) != len(inputs) {
		add(0, DynamicsMismatch, "inconsistent lengths: %d states, %d inputs, %d dists",
			len(states), len(inputs), len(dists))
		return rep
	}
	for t := range inputs {
		if sys.W != nil {
			if v := sys.W.Violation(dists[t]); v > opt.SetTol {
				add(t, OutOfModelDisturbance, "w=%v violates W by %.3g", dists[t], v)
			}
		}
		pred := sys.Step(states[t], inputs[t], dists[t])
		if !pred.Equal(states[t+1], opt.DynTol) {
			add(t, DynamicsMismatch, "recorded %v vs predicted %v", states[t+1], pred)
		}
		if sys.X != nil {
			if v := sys.X.Violation(states[t+1]); v > opt.SetTol {
				add(t, SafetyViolation, "x⁺=%v outside X by %.3g", states[t+1], v)
			}
		}
	}
	return rep
}
