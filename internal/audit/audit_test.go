package audit

import (
	"math/rand"
	"testing"

	"oic/internal/controller"
	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
	"oic/internal/reach"
)

func rig(t *testing.T) (*lti.System, *core.Framework, core.SafetySets) {
	t.Helper()
	a := mat.FromRows([][]float64{{1, 0.1}, {0, 1}})
	b := mat.FromRows([][]float64{{0}, {0.1}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-5, -3}, []float64{5, 3}),
		poly.Box([]float64{-4}, []float64{4}),
		poly.Box([]float64{-0.03, -0.03}, []float64{0.03, 0.03}),
	)
	k, err := controller.LQR(a, b, mat.Identity(2), mat.Identity(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fb := controller.NewAffineFeedback(k, nil, nil)
	acl, ccl := sys.ClosedLoop(k, mat.Vec{0, 0}, mat.Vec{0})
	adm := poly.New(sys.U.A.Mul(k), sys.U.B.Clone())
	xi, err := reach.MaximalInvariantSet(poly.Intersect(sys.X, adm).ReduceRedundancy(), acl, ccl, sys.W, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sets, err := core.ComputeSafetySets(sys, xi)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.NewFramework(sys, fb, sets, core.BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sys, fw, sets
}

func cleanRun(t *testing.T, sys *lti.System, fw *core.Framework) *core.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	wVerts, err := sys.W.Vertices()
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.Run(mat.Vec{0.5, 0.2}, 80, func(int) mat.Vec {
		return wVerts[rng.Intn(len(wVerts))].Clone()
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCleanRunAuditsClean(t *testing.T) {
	sys, fw, sets := rig(t)
	res := cleanRun(t, sys, fw)
	rep := Run(sys, sets, res, Options{})
	if !rep.OK() {
		t.Fatalf("clean run flagged: %v", rep)
	}
	if rep.Steps != 80 {
		t.Errorf("steps = %d", rep.Steps)
	}
}

func TestDetectsOutOfModelDisturbance(t *testing.T) {
	sys, fw, sets := rig(t)
	res := cleanRun(t, sys, fw)
	res.Records[10].W = mat.Vec{0.5, 0} // way outside W
	rep := Run(sys, sets, res, Options{})
	if rep.Count(OutOfModelDisturbance) == 0 {
		t.Error("tampered disturbance not flagged")
	}
}

func TestDetectsDynamicsMismatch(t *testing.T) {
	sys, fw, sets := rig(t)
	res := cleanRun(t, sys, fw)
	res.Records[5].Next = res.Records[5].Next.Add(mat.Vec{0.1, 0})
	rep := Run(sys, sets, res, Options{})
	if rep.Count(DynamicsMismatch) == 0 {
		t.Error("tampered transition not flagged")
	}
}

func TestDetectsSkipActuated(t *testing.T) {
	sys, fw, sets := rig(t)
	res := cleanRun(t, sys, fw)
	// Find a skipped step and forge an actuation on it (also breaking
	// dynamics, but the SkipActuated finding must fire regardless).
	for i := range res.Records {
		if !res.Records[i].Ran {
			res.Records[i].U = mat.Vec{1}
			break
		}
	}
	rep := Run(sys, sets, res, Options{})
	if rep.Count(SkipActuated) == 0 {
		t.Error("actuated skip not flagged")
	}
}

func TestDetectsEnergyMismatch(t *testing.T) {
	sys, fw, sets := rig(t)
	res := cleanRun(t, sys, fw)
	res.Energy += 1
	rep := Run(sys, sets, res, Options{})
	if rep.Count(EnergyMismatch) == 0 {
		t.Error("energy tampering not flagged")
	}
}

func TestDetectsMonitorInconsistency(t *testing.T) {
	sys, fw, sets := rig(t)
	res := cleanRun(t, sys, fw)
	// Forge a record claiming a skip at a state far outside X′.
	res.Records[3].X = mat.Vec{4.9, 2.9}
	res.Records[3].Ran = false
	rep := Run(sys, sets, res, Options{})
	if rep.Count(MonitorInconsistency) == 0 && rep.Count(DynamicsMismatch) == 0 {
		t.Error("forged monitor state not flagged at all")
	}
}

func TestRunSequence(t *testing.T) {
	sys, fw, _ := rig(t)
	res := cleanRun(t, sys, fw)
	tr := res.Trajectory()
	rep := RunSequence(sys, tr.States, tr.Inputs, tr.Dists, Options{})
	if !rep.OK() {
		t.Fatalf("clean trajectory flagged: %v", rep)
	}
	// Out-of-model disturbance must be caught here too (the thermostat
	// example's historical bug class).
	tr.Dists[2] = mat.Vec{1, 0}
	rep = RunSequence(sys, tr.States, tr.Inputs, tr.Dists, Options{})
	if rep.Count(OutOfModelDisturbance) == 0 {
		t.Error("sequence audit missed bad disturbance")
	}
}

func TestRunSequenceLengthMismatch(t *testing.T) {
	sys, _, _ := rig(t)
	rep := RunSequence(sys, []mat.Vec{{0, 0}}, []mat.Vec{{0}}, nil, Options{})
	if rep.OK() {
		t.Error("length mismatch not flagged")
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Steps: 5}
	if r.String() == "" || !r.OK() {
		t.Error("empty report misbehaves")
	}
	r.Findings = append(r.Findings, Finding{Step: 2, Kind: SafetyViolation, Msg: "x"})
	if r.OK() || r.String() == "" {
		t.Error("non-empty report misbehaves")
	}
}
