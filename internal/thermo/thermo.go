// Package thermo is the room-thermostat case study, promoted from an
// example to a first-class plant: framework generality beyond driving.
//
// The plant is a two-mass thermal model, Euler-discretized at 30 s. State:
// (room temperature deviation from setpoint, heater core temperature
// deviation). Input: heater power delta. Disturbance: outdoor temperature
// fluctuation and occupancy heat load:
//
//	x⁺ = [0.96 0.05; 0 0.90]·x + [0; 0.12]·u + w,  w ∈ [−0.08, 0.08]×[−0.1, 0.1].
//
// κ is an LQR affine feedback; XI is the maximal robust invariant set of
// the closed loop inside the comfort band intersected with the input-
// admissible region, and X′ = B(XI, 0) ∩ XI as everywhere. Skipping saves
// the controller computation and, more importantly for hardware lifetime,
// actuator switching.
package thermo

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"oic/internal/controller"
	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/plant"
	"oic/internal/poly"
	"oic/internal/reach"
	"oic/internal/rl"
)

// Plant constants.
const (
	Delta        = 30.0 // seconds per control step
	ComfortBand  = 1.5  // room deviation limit (°C)
	CoreBand     = 6.0  // heater core deviation limit (°C)
	PowerMax     = 3.0  // heater power delta bound
	WTempMax     = 0.08 // weather disturbance bound on the room channel
	WCoreMax     = 0.1  // load disturbance bound on the core channel
	PowerPerUnit = 0.5  // kW per unit of power delta, for the kWh cost metric
	EpisodeSteps = 240  // 2 hours per episode
)

// Weather is the exogenous disturbance process: a diurnal cycle plus a
// persistent bias (cold snap) and uniform noise, clamped to the design
// disturbance box so the safety guarantees stay valid.
type Weather struct {
	Bias        float64 // persistent outdoor bias on the room channel
	CycleAmp    float64 // diurnal-cycle amplitude on the room channel
	CyclePeriod int     // steps per cycle (0 = no cycle)
	Noise       float64 // uniform noise half-range, room channel
	CoreNoise   float64 // uniform noise half-range, core channel (occupancy load)
}

// Trace draws an episode-long disturbance sequence inside the W box.
func (we Weather) Trace(rng *rand.Rand, steps int) []mat.Vec {
	out := make([]mat.Vec, steps)
	for t := range out {
		w0 := we.Bias + we.Noise*(2*rng.Float64()-1)
		if we.CyclePeriod > 0 {
			w0 += we.CycleAmp * math.Sin(2*math.Pi*float64(t)/float64(we.CyclePeriod))
		}
		w1 := we.CoreNoise * (2*rng.Float64() - 1)
		out[t] = mat.Vec{
			min(max(w0, -WTempMax), WTempMax),
			min(max(w1, -WCoreMax), WCoreMax),
		}
	}
	return out
}

// Model bundles the thermal system, the LQR κ, and the safety sets. The
// sets are scenario-independent: every weather pattern lives in the same
// design disturbance box.
type Model struct {
	Sys   *lti.System
	Gain  *mat.Mat
	Kappa controller.Controller
	Sets  core.SafetySets
}

// NewModel constructs the thermostat plant: dynamics, LQR feedback, the
// maximal robust invariant set XI of the closed loop, and X′.
func NewModel() (*Model, error) {
	a := mat.FromRows([][]float64{
		{0.96, 0.05},
		{0.00, 0.90},
	})
	b := mat.FromRows([][]float64{{0}, {0.12}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-ComfortBand, -CoreBand}, []float64{ComfortBand, CoreBand}),
		poly.Box([]float64{-PowerMax}, []float64{PowerMax}),
		poly.Box([]float64{-WTempMax, -WCoreMax}, []float64{WTempMax, WCoreMax}),
	)

	k, err := controller.LQR(sys.A, sys.B,
		mat.Diag([]float64{4, 0.2}), mat.Identity(1), 0, 0)
	if err != nil {
		return nil, fmt.Errorf("thermo: NewModel: LQR: %w", err)
	}
	kappa := controller.NewAffineFeedback(k, nil, nil)

	acl, ccl := sys.ClosedLoop(k, mat.Vec{0, 0}, mat.Vec{0})
	admissible := poly.New(sys.U.A.Mul(k), sys.U.B.Clone())
	xi, err := reach.MaximalInvariantSet(
		poly.Intersect(sys.X, admissible).ReduceRedundancy(), acl, ccl, sys.W, reach.Options{})
	if err != nil {
		return nil, fmt.Errorf("thermo: NewModel: invariant set: %w", err)
	}
	sets, err := core.ComputeSafetySets(sys, xi)
	if err != nil {
		return nil, fmt.Errorf("thermo: NewModel: %w", err)
	}
	return &Model{Sys: sys, Gain: k, Kappa: kappa, Sets: sets}, nil
}

// NewModelWithSets rebuilds the model around precompiled safety sets:
// the dynamics and the LQR feedback are re-derived (cheap, exact), while
// the expensive invariant-set fixpoint and safe-set synthesis are skipped
// and the supplied sets used verbatim — the artifact-load path.
func NewModelWithSets(sets core.SafetySets) (*Model, error) {
	if sets.X == nil || sets.XI == nil || sets.XPrime == nil {
		return nil, fmt.Errorf("thermo: NewModelWithSets: incomplete safety sets")
	}
	if sets.XI.Dim() != 2 || sets.XPrime.Dim() != 2 {
		return nil, fmt.Errorf("thermo: NewModelWithSets: sets have dimension %d, want 2", sets.XI.Dim())
	}
	a := mat.FromRows([][]float64{
		{0.96, 0.05},
		{0.00, 0.90},
	})
	b := mat.FromRows([][]float64{{0}, {0.12}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-ComfortBand, -CoreBand}, []float64{ComfortBand, CoreBand}),
		poly.Box([]float64{-PowerMax}, []float64{PowerMax}),
		poly.Box([]float64{-WTempMax, -WCoreMax}, []float64{WTempMax, WCoreMax}),
	)
	k, err := controller.LQR(sys.A, sys.B,
		mat.Diag([]float64{4, 0.2}), mat.Identity(1), 0, 0)
	if err != nil {
		return nil, fmt.Errorf("thermo: NewModelWithSets: LQR: %w", err)
	}
	return &Model{Sys: sys, Gain: k, Kappa: controller.NewAffineFeedback(k, nil, nil), Sets: sets}, nil
}

// Plant implements plant.Plant; it is registered under "thermo".
type Plant struct{}

func init() { plant.Register(Plant{}) }

// Name implements plant.Plant.
func (Plant) Name() string { return "thermo" }

// Description implements plant.Plant.
func (Plant) Description() string {
	return "room thermostat with a guaranteed comfort band (LQR, heater-energy cost)"
}

// CostLabel implements plant.Plant.
func (Plant) CostLabel() string { return "kWh" }

// EpisodeSteps implements plant.Plant.
func (Plant) EpisodeSteps() int { return EpisodeSteps }

// scenario couples the generic descriptor with its weather process.
type scenario struct {
	plant.Scenario
	Weather Weather
}

// scenarios is the severity ladder Th.1–Th.4 plus the headline cold snap.
func scenarios() []scenario {
	return []scenario{
		{
			Scenario: plant.Scenario{
				ID:          "Th.1",
				Description: "calm weather: small zero-mean fluctuation",
				Detail:      "noise ±0.02",
			},
			Weather: Weather{Noise: 0.02, CoreNoise: 0.04},
		},
		{
			Scenario: plant.Scenario{
				ID:          "Th.2",
				Description: "diurnal cycle with mild noise",
				Detail:      "cycle 0.04, noise ±0.03",
			},
			Weather: Weather{CycleAmp: 0.04, CyclePeriod: 240, Noise: 0.03, CoreNoise: 0.06},
		},
		{
			Scenario: plant.Scenario{
				ID:          "Th.3",
				Description: "cold snap: persistent negative bias over the diurnal cycle",
				Detail:      "bias −0.04, cycle 0.03",
			},
			Weather: Weather{Bias: -0.04, CycleAmp: 0.03, CyclePeriod: 240, Noise: 0.03, CoreNoise: 0.08},
		},
		{
			Scenario: plant.Scenario{
				ID:          "Th.4",
				Description: "storm: near-full-range disturbance on both channels",
				Detail:      "bias −0.02, noise ±0.06",
			},
			Weather: Weather{Bias: -0.02, Noise: 0.06, CoreNoise: 0.1},
		},
	}
}

// Headline implements plant.Plant: the cold-snap scenario, where the
// monitor genuinely has to force heater interventions.
func (Plant) Headline() plant.Scenario { return scenarios()[2].Scenario }

// Ladders implements plant.Plant: one severity ladder Th.1–Th.4.
func (Plant) Ladders() []plant.Ladder {
	scs := scenarios()
	out := make([]plant.Scenario, len(scs))
	for i, sc := range scs {
		out[i] = sc.Scenario
	}
	return []plant.Ladder{{
		Name:      "weather",
		Title:     "DRL heater-energy saving vs weather severity (Th.1–Th.4)",
		PaperNote: "expected shape: savings shrink as the disturbance grows and forced runs dominate",
		Scenarios: out,
	}}
}

// sharedModel caches the scenario-independent model: every weather
// pattern lives in the same design disturbance box, so the LQR synthesis
// and invariant-set fixpoint run once per process, not once per ladder
// rung. The model is immutable after construction and safe to share.
var sharedModel = sync.OnceValues(NewModel)

// Instantiate implements plant.Plant.
func (Plant) Instantiate(gsc plant.Scenario) (plant.Instance, error) {
	for _, sc := range scenarios() {
		if sc.ID == gsc.ID {
			m, err := sharedModel()
			if err != nil {
				return nil, err
			}
			return &Instance{m: m, sc: sc}, nil
		}
	}
	return nil, fmt.Errorf("thermo: %w %q", plant.ErrUnknownScenario, gsc.ID)
}

// Instance is the thermostat model bound to one weather scenario.
type Instance struct {
	m  *Model
	sc scenario
}

// Model exposes the underlying thermostat model.
func (in *Instance) Model() *Model { return in.m }

// System implements plant.Instance.
func (in *Instance) System() *lti.System { return in.m.Sys }

// Sets implements plant.Instance.
func (in *Instance) Sets() core.SafetySets { return in.m.Sets }

// Framework implements plant.Instance.
func (in *Instance) Framework(policy core.SkipPolicy, memory int) (*core.Framework, error) {
	return core.NewFramework(in.m.Sys, in.m.Kappa, in.m.Sets, policy, memory)
}

// SampleInitialStates implements plant.Instance.
func (in *Instance) SampleInitialStates(n int, rng *rand.Rand) ([]mat.Vec, error) {
	return in.m.Sets.XPrime.Sample(n, rng.Float64)
}

// Disturbances implements plant.Instance.
func (in *Instance) Disturbances(rng *rand.Rand, steps int) []mat.Vec {
	return in.sc.Weather.Trace(rng, steps)
}

// RunEpisode implements plant.Instance; Cost is heater energy in kWh
// (Σ|u|·PowerPerUnit·Δ).
func (in *Instance) RunEpisode(policy core.SkipPolicy, x0 mat.Vec, w []mat.Vec) (*plant.Episode, error) {
	res, err := plant.RunFramework(in, policy, x0, w)
	if err != nil {
		return nil, fmt.Errorf("thermo: RunEpisode: %w", err)
	}
	cost := res.Energy * PowerPerUnit * Delta / 3600
	return &plant.Episode{Result: res, Cost: cost, Energy: res.Energy}, nil
}

// TrainSkipPolicy implements plant.Instance via the generic DRL trainer.
func (in *Instance) TrainSkipPolicy(cfg plant.TrainConfig) (core.SkipPolicy, rl.TrainStats, error) {
	return plant.TrainDRL(in, cfg, EpisodeSteps)
}

// InstantiateWithSets implements plant.SetsLoader: the artifact-load path
// that skips the invariant-set fixpoint.
func (Plant) InstantiateWithSets(gsc plant.Scenario, sets core.SafetySets) (plant.Instance, error) {
	for _, sc := range scenarios() {
		if sc.ID == gsc.ID {
			m, err := NewModelWithSets(sets)
			if err != nil {
				return nil, err
			}
			return &Instance{m: m, sc: sc}, nil
		}
	}
	return nil, fmt.Errorf("thermo: %w %q", plant.ErrUnknownScenario, gsc.ID)
}

// RestoreSkipPolicy implements plant.PolicyRestorer via the generic DRL
// restore (the thermostat trains through plant.TrainDRL).
func (in *Instance) RestoreSkipPolicy(snap *plant.PolicySnapshot) (core.SkipPolicy, error) {
	return plant.RestoreDRLPolicy(snap)
}
