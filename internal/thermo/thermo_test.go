package thermo

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/core"
)

func TestNewModelSetsNested(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := m.Sets.XI.Covers(m.Sets.XPrime, 1e-6); !ok {
		t.Error("X' ⊄ XI")
	}
	if ok, _ := m.Sets.X.Covers(m.Sets.XI, 1e-6); !ok {
		t.Error("XI ⊄ X")
	}
	if m.Sets.XPrime.IsEmpty() {
		t.Error("X' empty: skipping never admissible")
	}
}

func TestWeatherTraceStaysInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sc := range scenarios() {
		w := sc.Weather.Trace(rng, 500)
		for i, wt := range w {
			if math.Abs(wt[0]) > WTempMax+1e-12 || math.Abs(wt[1]) > WCoreMax+1e-12 {
				t.Fatalf("%s: disturbance %v at step %d outside design box", sc.ID, wt, i)
			}
		}
	}
}

func TestWeatherTraceDeterministic(t *testing.T) {
	we := scenarios()[2].Weather
	a := we.Trace(rand.New(rand.NewSource(5)), 50)
	b := we.Trace(rand.New(rand.NewSource(5)), 50)
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Fatalf("trace differs at step %d for identical seeds", i)
		}
	}
}

func TestBangBangSavesEnergyWithoutViolations(t *testing.T) {
	var p Plant
	inst, err := p.Instantiate(p.Headline())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	x0s, err := inst.SampleInitialStates(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, x0 := range x0s {
		w := inst.Disturbances(rng, EpisodeSteps)
		always, err := inst.RunEpisode(core.AlwaysRun{}, x0, w)
		if err != nil {
			t.Fatal(err)
		}
		bang, err := inst.RunEpisode(core.BangBang{}, x0, w)
		if err != nil {
			t.Fatal(err)
		}
		if always.Result.ViolationsX != 0 || bang.Result.ViolationsX != 0 {
			t.Fatalf("violations: always %d, bang %d", always.Result.ViolationsX, bang.Result.ViolationsX)
		}
		if bang.Cost >= always.Cost {
			t.Errorf("bang-bang cost %v not below always-run %v", bang.Cost, always.Cost)
		}
		if bang.Result.Skips == 0 {
			t.Error("bang-bang never skipped")
		}
	}
}

func TestScenarioLadderWellFormed(t *testing.T) {
	var p Plant
	ladders := p.Ladders()
	if len(ladders) != 1 || len(ladders[0].Scenarios) != 4 {
		t.Fatalf("ladders = %+v", ladders)
	}
	seen := map[string]bool{}
	for _, sc := range ladders[0].Scenarios {
		if sc.ID == "" || sc.Description == "" || seen[sc.ID] {
			t.Errorf("bad or duplicate scenario %+v", sc)
		}
		seen[sc.ID] = true
		if _, err := p.Instantiate(sc); err != nil {
			t.Errorf("Instantiate(%s): %v", sc.ID, err)
		}
	}
	if !seen[p.Headline().ID] {
		t.Error("headline scenario not in the ladder")
	}
}
