package lti

import (
	"math"
	"testing"

	"oic/internal/mat"
	"oic/internal/poly"
)

func doubleIntegrator() *System {
	a := mat.FromRows([][]float64{{1, 0.1}, {0, 1}})
	b := mat.FromRows([][]float64{{0}, {0.1}})
	return NewSystem(a, b)
}

func TestStep(t *testing.T) {
	s := doubleIntegrator()
	x := mat.Vec{1, 2}
	u := mat.Vec{3}
	next := s.Step(x, u, nil)
	want := mat.Vec{1.2, 2.3}
	if !next.Equal(want, 1e-12) {
		t.Errorf("Step = %v, want %v", next, want)
	}
}

func TestStepWithDriftAndDisturbance(t *testing.T) {
	s := doubleIntegrator().WithDrift(mat.Vec{0.5, 0})
	next := s.Step(mat.Vec{0, 0}, mat.Vec{0}, mat.Vec{0.1, -0.1})
	if !next.Equal(mat.Vec{0.6, -0.1}, 1e-12) {
		t.Errorf("Step = %v", next)
	}
}

func TestClosedLoop(t *testing.T) {
	s := doubleIntegrator()
	k := mat.FromRows([][]float64{{-1, -2}})
	acl, ccl := s.ClosedLoop(k, mat.Vec{0, 0}, mat.Vec{0})
	// A + BK = [[1, 0.1], [-0.1, 0.8]]
	want := mat.FromRows([][]float64{{1, 0.1}, {-0.1, 0.8}})
	if !acl.Equal(want, 1e-12) {
		t.Errorf("Acl = %v", acl)
	}
	if !ccl.Equal(mat.Vec{0, 0}, 1e-12) {
		t.Errorf("ccl = %v", ccl)
	}
}

func TestClosedLoopWithReferences(t *testing.T) {
	s := doubleIntegrator()
	k := mat.FromRows([][]float64{{-1, 0}})
	xref := mat.Vec{2, 0}
	uref := mat.Vec{5}
	acl, ccl := s.ClosedLoop(k, xref, uref)
	// Closed loop applied at xref must reproduce Step(xref, uref).
	got := acl.MulVec(xref).Add(ccl)
	want := s.Step(xref, uref, nil)
	if !got.Equal(want, 1e-12) {
		t.Errorf("closed loop at xref = %v, want %v", got, want)
	}
}

func TestSimulateEnergyAndViolation(t *testing.T) {
	s := doubleIntegrator()
	safe := poly.Box([]float64{-10, -10}, []float64{10, 10})
	tr := s.Simulate(mat.Vec{0, 0}, 5,
		func(t int, x mat.Vec) mat.Vec { return mat.Vec{1} },
		func(t int) mat.Vec { return mat.Vec{0, 0} },
	)
	if tr.Steps() != 5 || len(tr.States) != 6 {
		t.Fatalf("trajectory sizes: %d steps, %d states", tr.Steps(), len(tr.States))
	}
	if math.Abs(tr.Energy()-5) > 1e-12 {
		t.Errorf("Energy = %v, want 5", tr.Energy())
	}
	if v := tr.MaxViolation(safe); v >= 0 {
		t.Errorf("MaxViolation = %v, want negative", v)
	}
}

func TestSimulateNilDisturbance(t *testing.T) {
	s := doubleIntegrator()
	tr := s.Simulate(mat.Vec{1, 0}, 3, func(int, mat.Vec) mat.Vec { return mat.Vec{0} }, nil)
	if len(tr.Dists) != 3 {
		t.Fatalf("Dists = %d", len(tr.Dists))
	}
	for _, w := range tr.Dists {
		if !w.Equal(mat.Vec{0, 0}, 0) {
			t.Errorf("nil disturbance recorded as %v", w)
		}
	}
	// Position integrates velocity 0: stays at 1.
	if !tr.States[3].Equal(mat.Vec{1, 0}, 1e-12) {
		t.Errorf("final state = %v", tr.States[3])
	}
}

func TestConstraintValidation(t *testing.T) {
	s := doubleIntegrator()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong X dimension")
		}
	}()
	s.WithConstraints(poly.Box([]float64{0}, []float64{1}), nil, nil)
}
