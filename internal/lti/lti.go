// Package lti models discrete-time affine linear time-invariant systems
// with additive bounded disturbances,
//
//	x(t+1) = A·x(t) + B·u(t) + c + w(t),   w(t) ∈ W,
//
// together with polytopic constraints on states (safe set X), inputs (U),
// and disturbances (W). The affine drift c generalizes the paper's model
// (Eq. 1, where c = 0) so that case studies can run in physical coordinates
// where "skip ⇒ u = 0" genuinely means no actuation; see DESIGN.md §5.1.
package lti

import (
	"fmt"

	"oic/internal/mat"
	"oic/internal/poly"
)

// System is a discrete affine LTI plant with constraint polytopes.
type System struct {
	A *mat.Mat // n×n state transition
	B *mat.Mat // n×m input map
	C mat.Vec  // length-n affine drift (zero in the paper's formulation)

	X *poly.Polytope // safe state set
	U *poly.Polytope // admissible input set
	W *poly.Polytope // disturbance set
}

// NewSystem returns a system with the given dynamics, zero drift, and no
// constraint sets.
func NewSystem(a, b *mat.Mat) *System {
	if a.R != a.C {
		panic(fmt.Sprintf("lti: NewSystem: A is %dx%d, want square", a.R, a.C))
	}
	if b.R != a.R {
		panic(fmt.Sprintf("lti: NewSystem: B has %d rows, want %d", b.R, a.R))
	}
	return &System{A: a, B: b, C: make(mat.Vec, a.R)}
}

// WithDrift sets the affine term c and returns the system for chaining.
func (s *System) WithDrift(c mat.Vec) *System {
	if len(c) != s.NX() {
		panic("lti: WithDrift: dimension mismatch")
	}
	s.C = c.Clone()
	return s
}

// WithConstraints sets the safe, input, and disturbance polytopes and
// returns the system for chaining. Any of them may be nil when a caller
// does not need it.
func (s *System) WithConstraints(x, u, w *poly.Polytope) *System {
	if x != nil && x.Dim() != s.NX() {
		panic("lti: WithConstraints: X dimension mismatch")
	}
	if u != nil && u.Dim() != s.NU() {
		panic("lti: WithConstraints: U dimension mismatch")
	}
	if w != nil && w.Dim() != s.NX() {
		panic("lti: WithConstraints: W dimension mismatch")
	}
	s.X, s.U, s.W = x, u, w
	return s
}

// NX returns the state dimension.
func (s *System) NX() int { return s.A.R }

// NU returns the input dimension.
func (s *System) NU() int { return s.B.C }

// Step returns A·x + B·u + c + w. A nil w is treated as zero.
func (s *System) Step(x, u, w mat.Vec) mat.Vec {
	next := make(mat.Vec, s.NX())
	s.StepInto(next, x, u, w)
	return next
}

// StepInto writes A·x + B·u + c + w into dst without allocating — the
// Algorithm-1 skip path calls this every step. dst must have length NX and
// must not alias x. A nil w is treated as zero.
func (s *System) StepInto(dst, x, u, w mat.Vec) {
	s.A.MulVecInto(dst, x)
	nu := s.NU()
	for i := range dst {
		acc := dst[i] + s.C[i]
		row := s.B.Data[i*nu : (i+1)*nu]
		for j, b := range row {
			acc += b * u[j]
		}
		if w != nil {
			acc += w[i]
		}
		dst[i] = acc
	}
}

// ClosedLoop returns the autonomous affine dynamics (Acl, ccl) obtained by
// substituting the affine feedback u = K·(x − xref) + uref:
//
//	x⁺ = (A + B·K)·x + (c + B·(uref − K·xref)) + w.
func (s *System) ClosedLoop(k *mat.Mat, xref, uref mat.Vec) (*mat.Mat, mat.Vec) {
	if k.R != s.NU() || k.C != s.NX() {
		panic(fmt.Sprintf("lti: ClosedLoop: K is %dx%d, want %dx%d", k.R, k.C, s.NU(), s.NX()))
	}
	acl := s.A.Add(s.B.Mul(k))
	ccl := s.C.Add(s.B.MulVec(uref.Sub(k.MulVec(xref))))
	return acl, ccl
}

// Trajectory records the evolution of a simulation run. States has one more
// entry than Inputs and Dists.
type Trajectory struct {
	States []mat.Vec
	Inputs []mat.Vec
	Dists  []mat.Vec
}

// Energy returns the accumulated 1-norm actuation cost Σ‖u(t)‖₁, the
// paper's energy objective (Problem 1).
func (tr *Trajectory) Energy() float64 {
	e := 0.0
	for _, u := range tr.Inputs {
		e += u.Norm1()
	}
	return e
}

// Steps returns the number of simulated transitions.
func (tr *Trajectory) Steps() int { return len(tr.Inputs) }

// MaxViolation returns the worst constraint violation of any state against
// the polytope p (negative when all states are strictly inside).
func (tr *Trajectory) MaxViolation(p *poly.Polytope) float64 {
	worst := -1e300
	for _, x := range tr.States {
		if v := p.Violation(x); v > worst {
			worst = v
		}
	}
	return worst
}

// Control produces an input for the current step; Disturb produces the
// disturbance realization.
type (
	Control func(t int, x mat.Vec) mat.Vec
	Disturb func(t int) mat.Vec
)

// Simulate rolls the system forward for steps transitions from x0 using the
// given control and disturbance laws (nil disturbance means zero) and
// records the trajectory.
func (s *System) Simulate(x0 mat.Vec, steps int, ctrl Control, dist Disturb) *Trajectory {
	tr := &Trajectory{States: []mat.Vec{x0.Clone()}}
	x := x0.Clone()
	for t := 0; t < steps; t++ {
		u := ctrl(t, x)
		var w mat.Vec
		if dist != nil {
			w = dist(t)
		}
		x = s.Step(x, u, w)
		tr.Inputs = append(tr.Inputs, u.Clone())
		if w != nil {
			tr.Dists = append(tr.Dists, w.Clone())
		} else {
			tr.Dists = append(tr.Dists, make(mat.Vec, s.NX()))
		}
		tr.States = append(tr.States, x.Clone())
	}
	return tr
}
