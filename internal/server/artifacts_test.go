package server

import (
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"oic/pkg/oic"
)

// TestReadyzPreloading pins the liveness/readiness split: /readyz
// answers 503 with a "preloading" marker from the moment BeginPreload
// returns until its runner finishes and 200 on both sides of the window
// — load balancers hold traffic while a warm boot materializes the
// catalogue — while /healthz (pure liveness) stays 200 throughout.
func TestReadyzPreloading(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	if err := srv.OpenArtifactStore(t.TempDir()); err != nil {
		t.Fatal(err)
	}

	var hz map[string]any
	if st := c.do("GET", "/readyz", nil, &hz); st != http.StatusOK || hz["ok"] != true {
		t.Fatalf("readyz before preload: %d %v", st, hz)
	}

	run, err := srv.BeginPreload()
	if err != nil {
		t.Fatal(err)
	}
	// Not ready from the moment BeginPreload returns — no startup window
	// in which an LB could route to a cold cache.
	hz = nil
	if st := c.do("GET", "/readyz", nil, &hz); st != http.StatusServiceUnavailable {
		t.Fatalf("readyz during preload: status %d, want 503", st)
	}
	if hz["ok"] != false || hz["preloading"] != true {
		t.Fatalf("readyz during preload: %v", hz)
	}
	// Liveness is orthogonal: the process is up, so /healthz stays 200
	// even while readiness gates traffic.
	hz = nil
	if st := c.do("GET", "/healthz", nil, &hz); st != http.StatusOK || hz["ok"] != true || hz["preloading"] != true {
		t.Fatalf("healthz during preload: %d %v, want 200 ok with preloading marker", st, hz)
	}

	if n, err := run(); err != nil || n != 0 {
		t.Fatalf("preload of empty store = (%d, %v), want (0, nil)", n, err)
	}
	hz = nil
	if st := c.do("GET", "/readyz", nil, &hz); st != http.StatusOK || hz["ok"] != true {
		t.Fatalf("readyz after preload: %d %v", st, hz)
	}
}

// TestReadyzPreloadWithoutStore: BeginPreload without a store is a
// configuration error and must not wedge readiness.
func TestReadyzPreloadWithoutStore(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	if _, err := srv.BeginPreload(); err == nil {
		t.Fatal("BeginPreload without a store succeeded")
	}
	if st := c.do("GET", "/readyz", nil, nil); st != http.StatusOK {
		t.Fatalf("readyz after failed BeginPreload: status %d", st)
	}
}

// corruptEntry truncates a store file to half its length, simulating a
// torn write from a crashed process or a damaged disk.
func corruptEntry(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

func createSession(t *testing.T, c *client, req oic.CreateSessionRequest) oic.SessionInfo {
	t.Helper()
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", req, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d (%+v)", st, info)
	}
	return info
}

// TestServerArtifactStore drives the full cache hierarchy: the first
// server builds an engine and writes the artifact back; a second server
// sharing the directory serves the same configuration from the store
// without compiling anything; a third preloads the catalogue at boot and
// serves the first session without even a store lookup.
func TestServerArtifactStore(t *testing.T) {
	dir := t.TempDir()
	req := oic.CreateSessionRequest{Plant: "thermo", Policy: oic.PolicyBangBang, Seed: 5}

	// Cold server: miss, build, write-back.
	srvA, cA := newTestServer(t, Config{})
	if err := srvA.OpenArtifactStore(dir); err != nil {
		t.Fatal(err)
	}
	createSession(t, cA, req)
	if got := srvA.m.enginesBuilt.Load(); got != 1 {
		t.Fatalf("server A built %d engines, want 1", got)
	}
	stats := srvA.ArtifactStats()
	if stats.Misses != 1 || stats.Writes != 1 || stats.Hits != 0 {
		t.Fatalf("server A store stats %+v, want one miss and one write", stats)
	}

	// Warm server: hit, no build.
	srvB, cB := newTestServer(t, Config{})
	if err := srvB.OpenArtifactStore(dir); err != nil {
		t.Fatal(err)
	}
	createSession(t, cB, req)
	if got := srvB.m.enginesBuilt.Load(); got != 0 {
		t.Errorf("server B built %d engines, want 0 (artifact hit)", got)
	}
	if got := srvB.m.enginesLoaded.Load(); got != 1 {
		t.Errorf("server B loaded %d engines, want 1", got)
	}
	if stats := srvB.ArtifactStats(); stats.Hits != 1 {
		t.Errorf("server B store stats %+v, want one hit", stats)
	}

	// Preloaded server: the engine is live before the first request.
	srvC, cC := newTestServer(t, Config{})
	if err := srvC.OpenArtifactStore(dir); err != nil {
		t.Fatal(err)
	}
	run, err := srvC.BeginPreload()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := run(); err != nil || n != 1 {
		t.Fatalf("preload = (%d, %v), want (1, nil)", n, err)
	}
	createSession(t, cC, req)
	if got := srvC.m.enginesBuilt.Load(); got != 0 {
		t.Errorf("server C built %d engines after preload, want 0", got)
	}
	if got := srvC.m.artifactPreloaded.Load(); got != 1 {
		t.Errorf("server C preloaded %d engines, want 1", got)
	}
	if stats := srvC.ArtifactStats(); stats.Hits != 0 || stats.Misses != 0 {
		t.Errorf("server C store stats %+v, want no lookups (cache pre-fired)", stats)
	}

	// The artifact counters are on the scrape surface.
	reqM, _ := http.NewRequest("GET", cC.base+"/metrics", nil)
	resp, err := cC.hc.Do(reqM)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"oicd_engines_loaded_total",
		"oicd_artifact_hits_total",
		"oicd_artifact_misses_total",
		"oicd_artifact_corrupt_total",
		"oicd_artifact_writes_total",
		"oicd_artifact_preloaded_total 1",
	} {
		if !strings.Contains(string(raw), metric) {
			t.Errorf("metrics missing %q", metric)
		}
	}
}

// TestServerCorruptArtifactFallsBack: a damaged store entry degrades to
// an in-process build — never a failed request — and is dropped and
// counted so the rebuilt engine's write-back heals the store.
func TestServerCorruptArtifactFallsBack(t *testing.T) {
	dir := t.TempDir()
	req := oic.CreateSessionRequest{Plant: "thermo", Policy: oic.PolicyBangBang, Seed: 5}

	srvA, cA := newTestServer(t, Config{})
	if err := srvA.OpenArtifactStore(dir); err != nil {
		t.Fatal(err)
	}
	createSession(t, cA, req)

	// Truncate the single stored entry.
	files, err := srvA.store.Files()
	if err != nil || len(files) != 1 {
		t.Fatalf("store files = (%v, %v)", files, err)
	}
	corruptEntry(t, files[0])

	srvB, cB := newTestServer(t, Config{})
	if err := srvB.OpenArtifactStore(dir); err != nil {
		t.Fatal(err)
	}
	createSession(t, cB, req)
	if got := srvB.m.enginesBuilt.Load(); got != 1 {
		t.Errorf("corrupt entry: server built %d engines, want 1 (fallback)", got)
	}
	stats := srvB.ArtifactStats()
	if stats.Corrupt != 1 {
		t.Errorf("store stats %+v, want one corrupt entry", stats)
	}
	// The write-back after the rebuild healed the store.
	if stats.Writes != 1 {
		t.Errorf("store stats %+v, want one healing write", stats)
	}
}
