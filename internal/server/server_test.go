package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oic/pkg/oic"

	_ "oic/internal/acc"
	_ "oic/internal/thermo"
)

// client is a minimal typed wrapper over the httptest server.
type client struct {
	t    testing.TB
	base string
	hc   *http.Client
}

func newTestServer(t testing.TB, cfg Config) (*Server, *client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, &client{t: t, base: ts.URL, hc: ts.Client()}
}

// do issues a request and decodes the JSON response into out (skipped when
// out is nil), returning the HTTP status.
func (c *client) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: decoding %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

func TestServerEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Config{})

	// Plant catalogue.
	var plants struct {
		Plants []oic.PlantInfo `json:"plants"`
	}
	if st := c.do("GET", "/v1/plants", nil, &plants); st != http.StatusOK {
		t.Fatalf("plants: status %d", st)
	}
	if len(plants.Plants) < 2 {
		t.Fatalf("catalogue too small: %+v", plants.Plants)
	}

	// Create with a sampled initial state.
	var info oic.SessionInfo
	st := c.do("POST", "/v1/sessions",
		oic.CreateSessionRequest{Plant: "thermo", Policy: oic.PolicyBangBang, Seed: 5}, &info)
	if st != http.StatusCreated {
		t.Fatalf("create: status %d (%+v)", st, info)
	}
	if info.ID == "" || info.Level != "X'" || len(info.X) == 0 {
		t.Fatalf("create info: %+v", info)
	}

	// Single step, zero disturbance (empty body).
	var step oic.StepResult
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", nil, &step); st != http.StatusOK {
		t.Fatalf("step: status %d", st)
	}
	if step.T != 0 || len(step.X) != len(info.X) {
		t.Fatalf("step result: %+v", step)
	}

	// Batched steps.
	nx := len(info.X)
	ws := make([][]float64, 5)
	for i := range ws {
		ws[i] = make([]float64, nx)
	}
	var batch oic.StepResponse
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{WS: ws}, &batch); st != http.StatusOK {
		t.Fatalf("batch: status %d", st)
	}
	if len(batch.Results) != 5 || batch.Results[4].T != 5 {
		t.Fatalf("batch results: %+v", batch.Results)
	}

	// Snapshot reflects the 6 executed steps.
	var got oic.SessionInfo
	if st := c.do("GET", "/v1/sessions/"+info.ID, nil, &got); st != http.StatusOK {
		t.Fatalf("get: status %d", st)
	}
	if got.T != 6 || got.Skips+got.Runs != 6 {
		t.Fatalf("snapshot: %+v", got)
	}

	// Metrics reflect the steps.
	req, _ := http.NewRequest("GET", c.base+"/metrics", nil)
	resp, err := c.hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "oicd_steps_total 6") {
		t.Errorf("metrics missing step count:\n%s", raw)
	}

	// Delete, then the session is gone and stepping it 404s.
	var closed oic.SessionInfo
	if st := c.do("DELETE", "/v1/sessions/"+info.ID, nil, &closed); st != http.StatusOK || !closed.Closed {
		t.Fatalf("delete: status %d, %+v", st, closed)
	}
	var e oic.ErrorResponse
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", nil, &e); st != http.StatusNotFound {
		t.Fatalf("step after delete: status %d (%+v)", st, e)
	}

	// Healthz.
	var hz map[string]any
	if st := c.do("GET", "/healthz", nil, &hz); st != http.StatusOK || hz["ok"] != true {
		t.Fatalf("healthz: %d %v", st, hz)
	}
}

func TestServerErrorMapping(t *testing.T) {
	_, c := newTestServer(t, Config{})
	var e oic.ErrorResponse

	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "nope"}, &e); st != http.StatusNotFound || e.Code != "not_found" {
		t.Errorf("unknown plant: %d %+v", st, e)
	}
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", Scenario: "Ex.99"}, &e); st != http.StatusNotFound {
		t.Errorf("unknown scenario: %d %+v", st, e)
	}
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", Policy: "nope"}, &e); st != http.StatusBadRequest {
		t.Errorf("unknown policy: %d %+v", st, e)
	}
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", X0: []float64{1e9, 1e9}}, &e); st != http.StatusUnprocessableEntity || e.Code != "unsafe" {
		t.Errorf("unsafe x0: %d %+v", st, e)
	}
	if st := c.do("GET", "/v1/sessions/s-404", nil, &e); st != http.StatusNotFound {
		t.Errorf("unknown session: %d %+v", st, e)
	}
	// Per-object cost caps: absurd memory / training budgets are rejected
	// before any engine or session construction.
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", Memory: 1 << 30}, &e); st != http.StatusBadRequest {
		t.Errorf("huge memory: %d %+v", st, e)
	}
	if st := c.do("POST", "/v1/sessions",
		oic.CreateSessionRequest{Plant: "acc", Policy: oic.PolicyDRL,
			Train: oic.TrainConfig{Episodes: 1 << 30}}, &e); st != http.StatusBadRequest {
		t.Errorf("huge training budget: %d %+v", st, e)
	}
	// Fields within their individual caps but with an unbounded product
	// are rejected too.
	if st := c.do("POST", "/v1/sessions",
		oic.CreateSessionRequest{Plant: "acc", Policy: oic.PolicyDRL,
			Train: oic.TrainConfig{Episodes: 20000, Steps: 20000}}, &e); st != http.StatusBadRequest {
		t.Errorf("huge training product: %d %+v", st, e)
	}

	// Capacity cap.
	_, c2 := newTestServer(t, Config{MaxSessions: 1})
	var info oic.SessionInfo
	if st := c2.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "thermo"}, &info); st != http.StatusCreated {
		t.Fatalf("first create: %d", st)
	}
	if st := c2.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "thermo"}, &e); st != http.StatusTooManyRequests || e.Code != "capacity" {
		t.Errorf("capacity: %d %+v", st, e)
	}
}

// TestServerSmoke is the oicd smoke test CI runs: start a server, drive
// 100 steps over HTTP against the ACC plant, and assert every skip
// decision, input, and state is byte-identical to the in-process pkg/oic
// library path on the same episode.
func TestServerSmoke(t *testing.T) {
	const steps = 100

	// Library path.
	eng, err := oic.NewEngine(oic.Config{Plant: "acc", Policy: oic.PolicyBangBang})
	if err != nil {
		t.Fatal(err)
	}
	x0, w, err := eng.DrawCase(1, steps)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	want, err := sess.StepMany(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}

	// Server path: same episode over HTTP (its own engine cache).
	_, c := newTestServer(t, Config{})
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions",
		oic.CreateSessionRequest{Plant: "acc", Policy: oic.PolicyBangBang, X0: x0}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	var skips int
	for i := 0; i < steps; i++ {
		var got oic.StepResult
		if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: w[i]}, &got); st != http.StatusOK {
			t.Fatalf("step %d: status %d", i, st)
		}
		if got.Ran != want[i].Ran || got.Forced != want[i].Forced || got.Level != want[i].Level {
			t.Fatalf("step %d: decision (%v,%v,%s) vs library (%v,%v,%s)",
				i, got.Ran, got.Forced, got.Level, want[i].Ran, want[i].Forced, want[i].Level)
		}
		for j := range want[i].X {
			if got.X[j] != want[i].X[j] {
				t.Fatalf("step %d: x[%d] = %v vs library %v", i, j, got.X[j], want[i].X[j])
			}
		}
		for j := range want[i].U {
			if got.U[j] != want[i].U[j] {
				t.Fatalf("step %d: u[%d] = %v vs library %v", i, j, got.U[j], want[i].U[j])
			}
		}
		if !got.Ran {
			skips++
		}
	}
	if skips == 0 {
		t.Fatal("smoke episode never skipped; monitor not exercised")
	}
}

func TestServerEviction(t *testing.T) {
	now := time.Now()
	clock := &now
	srv, c := newTestServer(t, Config{
		SessionTTL: time.Minute,
		Now:        func() time.Time { return *clock },
	})

	var a, b oic.SessionInfo
	c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "thermo"}, &a)
	next := now.Add(50 * time.Second)
	clock = &next
	c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "thermo"}, &b)

	// a is 50s idle, b fresh: nothing beyond the TTL yet.
	if n := srv.EvictIdle(); n != 0 {
		t.Fatalf("evicted %d sessions before TTL", n)
	}
	// 70s later a is 120s idle (out), b is 70s idle (out too? TTL=60s → yes).
	// Touch b via GET to keep it alive.
	later := now.Add(110 * time.Second)
	clock = &later
	if st := c.do("GET", "/v1/sessions/"+b.ID, nil, nil); st != http.StatusOK {
		t.Fatalf("touch b: %d", st)
	}
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1 (only the idle one)", n)
	}
	if st := c.do("GET", "/v1/sessions/"+a.ID, nil, nil); st != http.StatusNotFound {
		t.Errorf("evicted session still served: %d", st)
	}
	if st := c.do("GET", "/v1/sessions/"+b.ID, nil, nil); st != http.StatusOK {
		t.Errorf("live session evicted: %d", st)
	}
}

// TestServerEngineCaching pins the artifact-sharing model: two sessions
// with the same configuration share one engine build.
func TestServerEngineCaching(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		var info oic.SessionInfo
		if st := c.do("POST", "/v1/sessions",
			oic.CreateSessionRequest{Plant: "thermo", Seed: int64(i)}, &info); st != http.StatusCreated {
			t.Fatalf("create %d: %d", i, st)
		}
	}
	if n := srv.m.enginesBuilt.Load(); n != 1 {
		t.Errorf("engines built = %d, want 1 (cache shared)", n)
	}
	// Semantically identical configs share a slot: empty policy/scenario
	// canonicalize to bang-bang on the headline, and training parameters
	// are ignored for untrained policies.
	for _, req := range []oic.CreateSessionRequest{
		{Plant: "thermo", Policy: oic.PolicyBangBang},
		{Plant: "thermo", Scenario: "Th.3", Train: oic.TrainConfig{Seed: 99}}, // Th.3 is the headline
		{Plant: "thermo", Memory: 1},                                          // the untrained-policy default window
	} {
		var info oic.SessionInfo
		if st := c.do("POST", "/v1/sessions", req, &info); st != http.StatusCreated {
			t.Fatalf("create %+v: %d", req, st)
		}
	}
	if n := srv.m.enginesBuilt.Load(); n != 1 {
		t.Errorf("engines built = %d, want 1 (canonicalized configs must share)", n)
	}
	// A different plant builds (and caches) a second engine.
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions",
		oic.CreateSessionRequest{Plant: "acc"}, &info); st != http.StatusCreated {
		t.Fatalf("acc create: %d", st)
	}
	if n := srv.m.enginesBuilt.Load(); n != 2 {
		t.Errorf("engines built = %d, want 2", n)
	}
	// DRL configs share too: memory 0 and the explicit default window
	// train the same encoder, so they must not retrain.
	tiny := oic.TrainConfig{Episodes: 1, Steps: 5}
	for _, mem := range []int{0, 1} {
		if st := c.do("POST", "/v1/sessions",
			oic.CreateSessionRequest{Plant: "thermo", Policy: oic.PolicyDRL, Memory: mem, Train: tiny}, &info); st != http.StatusCreated {
			t.Fatalf("drl create (memory %d): %d", mem, st)
		}
	}
	if n := srv.m.enginesBuilt.Load(); n != 3 {
		t.Errorf("engines built = %d, want 3 (drl default-memory configs must share)", n)
	}
}

// TestServerEngineCap bounds the client-controlled configuration space: a
// request needing one engine too many is rejected, existing ones keep
// serving.
func TestServerEngineCap(t *testing.T) {
	_, c := newTestServer(t, Config{MaxEngines: 1})
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "thermo"}, &info); st != http.StatusCreated {
		t.Fatalf("first engine: %d", st)
	}
	var e oic.ErrorResponse
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc"}, &e); st != http.StatusTooManyRequests || e.Code != "capacity" {
		t.Fatalf("engine cap: %d %+v", st, e)
	}
	// The cached configuration still serves.
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "thermo"}, &info); st != http.StatusCreated {
		t.Fatalf("cached engine after cap: %d", st)
	}
}

// BenchmarkServerStep measures a full HTTP step round trip (request
// marshal, routing, facade step on the RMPC warm path, response marshal)
// against an httptest loopback server.
func BenchmarkServerStep(b *testing.B) {
	_, c := newTestServer(b, Config{})
	eng, err := oic.NewEngine(oic.Config{Plant: "acc", Policy: oic.PolicyAlwaysRun})
	if err != nil {
		b.Fatal(err)
	}
	x0, w, err := eng.DrawCase(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions",
		oic.CreateSessionRequest{Plant: "acc", Policy: oic.PolicyAlwaysRun, X0: x0}, &info); st != http.StatusCreated {
		b.Fatalf("create: %d", st)
	}
	body, _ := json.Marshal(oic.StepRequest{W: w[0]})
	url := c.base + "/v1/sessions/" + info.ID + "/step"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.hc.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
