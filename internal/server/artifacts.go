package server

import (
	"fmt"
	"os"

	"oic/pkg/oic"
)

// Artifact-store wiring: the engine cache consults a content-addressed
// on-disk catalogue before paying for set compilation and DRL training,
// and writes freshly built engines back. The cache key and the store key
// are the same canonical config fingerprint (oic.Config.Fingerprint), so
// an engine built by `oic export` on another machine serves here without
// recomputing anything.

// OpenArtifactStore attaches the on-disk artifact store rooted at dir.
// Call before serving traffic (the store pointer is not synchronized).
func (s *Server) OpenArtifactStore(dir string) error {
	store, err := oic.OpenArtifactStore(dir)
	if err != nil {
		return err
	}
	store.SetFaults(s.faults)
	s.store = store
	return nil
}

// ArtifactStats snapshots the store's hit/miss/corrupt/write counters
// (zero value when no store is attached).
func (s *Server) ArtifactStats() oic.ArtifactStoreStats {
	if s.store == nil {
		return oic.ArtifactStoreStats{}
	}
	return s.store.Stats()
}

// loadFromStore tries to materialize cfg's engine from the artifact
// store. A decoded artifact whose fingerprint disagrees with the lookup
// key is dropped as corrupt (content addressing means the file was
// tampered with or collided); any failure falls back to an in-process
// build, so a damaged store degrades to cold-start behavior instead of
// erroring requests.
func (s *Server) loadFromStore(key string) (*oic.Engine, bool) {
	if s.store == nil {
		return nil, false
	}
	a, err := s.store.Get(key)
	if a == nil || err != nil {
		return nil, false
	}
	if oic.ConfigFromArtifact(a).Fingerprint() != key {
		s.store.MarkCorrupt(key)
		return nil, false
	}
	eng, err := oic.LoadEngine(a)
	if err != nil {
		s.store.MarkCorrupt(key)
		return nil, false
	}
	s.m.enginesLoaded.Add(1)
	return eng, true
}

// writeBack persists a freshly built engine so the next process (or the
// next corrupted-entry rebuild) starts warm. Best-effort: a full disk or
// an unsnapshottable policy must not fail the request that built the
// engine.
func (s *Server) writeBack(key string, eng *oic.Engine) {
	if s.store == nil {
		return
	}
	a, err := eng.Artifact()
	if err != nil {
		return
	}
	_ = s.store.Put(key, a)
}

// BeginPreload flips the server into the preloading state (readyz 503)
// and returns the closure that materializes every store entry into the
// engine cache; run it on a background goroutine and let it flip
// readiness back when done. Split this way so callers observe 503 from
// the moment the server is constructed, with no startup race window.
func (s *Server) BeginPreload() (run func() (int, error), err error) {
	if s.store == nil {
		return nil, fmt.Errorf("server: preload requested without an artifact store")
	}
	s.preloading.Store(true)
	return func() (int, error) {
		defer s.preloading.Store(false)
		files, err := s.store.Files()
		if err != nil {
			return 0, err
		}
		loaded := 0
		for _, path := range files {
			b, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			a, err := oic.DecodeArtifact(b)
			if err != nil {
				continue
			}
			key := oic.ConfigFromArtifact(a).Fingerprint()
			eng, err := oic.LoadEngine(a)
			if err != nil {
				continue
			}
			s.mu.Lock()
			_, exists := s.engines[key]
			full := len(s.engines) >= s.cfg.MaxEngines
			if !exists && !full {
				slot := &engineSlot{eng: eng}
				slot.once.Do(func() {}) // pre-fire: serving requests never rebuild
				s.engines[key] = slot
			}
			s.mu.Unlock()
			if exists || full {
				continue
			}
			s.m.artifactPreloaded.Add(1)
			loaded++
		}
		return loaded, nil
	}, nil
}
