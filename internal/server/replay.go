package server

import (
	"fmt"
	"net/http"

	"oic/pkg/oic"
)

// Trace and replay endpoints: the server face of the trace record/replay
// subsystem (DESIGN.md §8).
//
//	GET  /v1/sessions/{id}/trace  recorded episode of a ?trace=true session
//	                              (JSON; ?format=binary streams the
//	                              canonical binary encoding)
//	POST /v1/replay               re-run a recorded episode under the same
//	                              or a substituted policy/budget and diff
//
// A replay resolves its engine from the trace's fingerprint through the
// same per-configuration cache sessions use, so replaying against a
// config the server already serves costs no rebuild.

// Bounds on client-controlled trace cost.
const (
	// maxTraceSteps caps a traced session's episode length; past it,
	// steps fail with 409 trace_limit instead of growing server memory
	// without bound. At the largest plant dimensions this bounds one
	// recording to a few tens of MB.
	maxTraceSteps = 100_000
	// maxReplaySteps caps the length of an episode a replay request may
	// submit (a replay is a full closed-loop re-run, one κ solve per
	// recorded compute).
	maxReplaySteps = 100_000
)

// resolveReplayTrace extracts, decodes, and validates the trace and
// options of a replay request — everything short of touching an engine,
// so the fuzzer can drive it directly.
func resolveReplayTrace(req *oic.ReplayRequest) (*oic.Trace, error) {
	if (req.Trace == nil) == (len(req.TraceBin) == 0) {
		return nil, badRequest(`set exactly one of "trace" or "trace_bin"`)
	}
	tr := req.Trace
	if tr == nil {
		var err error
		if tr, err = oic.DecodeTrace(req.TraceBin); err != nil {
			return nil, badRequest("invalid binary trace: " + err.Error())
		}
	} else if err := tr.Validate(); err != nil {
		return nil, badRequest(err.Error())
	}
	if req.ComputeBudget < 0 {
		return nil, badRequest("compute_budget must be ≥ 0")
	}
	if tr.Len() > maxReplaySteps {
		return nil, badRequest(fmt.Sprintf("trace has %d steps, limit %d", tr.Len(), maxReplaySteps))
	}
	// The replay may build the trace's engine; its fingerprint obeys the
	// same cost caps as a session-creation request.
	cfg := oic.ConfigFromTrace(tr)
	sessReq := oic.CreateSessionRequest{
		Plant: cfg.Plant, Scenario: cfg.Scenario, Policy: cfg.Policy,
		Memory: cfg.Memory, Train: cfg.Train,
	}
	if err := validateCreate(&sessReq); err != nil {
		return nil, err
	}
	return tr, nil
}

func (s *Server) handleSessionTrace(w http.ResponseWriter, r *http.Request) {
	se, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	s.touch(se)
	tr, err := se.s.Trace()
	if err != nil {
		s.fail(w, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		s.m.tracesServed.Add(1)
		writeJSON(w, http.StatusOK, oic.TraceResponse{ID: se.id, Trace: tr})
	case "binary":
		b, err := oic.EncodeTrace(tr)
		if err != nil {
			s.fail(w, err)
			return
		}
		s.m.tracesServed.Add(1)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(b)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
	default:
		s.fail(w, badRequest(fmt.Sprintf("unknown trace format %q (json|binary)", format)))
	}
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req oic.ReplayRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	tr, err := resolveReplayTrace(&req)
	if err != nil {
		s.fail(w, err)
		return
	}
	eng, err := s.engine(oic.ConfigFromTrace(tr))
	if err != nil {
		s.m.replayErrors.Add(1)
		s.fail(w, err)
		return
	}
	rep, err := eng.Replay(tr, oic.ReplayOptions{
		Policy:        req.Policy,
		ComputeBudget: req.ComputeBudget,
		Audit:         req.Audit,
		IncludeTrace:  req.IncludeTrace,
	})
	if err != nil {
		s.m.replayErrors.Add(1)
		s.fail(w, err)
		return
	}
	s.m.replays.Add(1)
	s.m.replaySteps.Add(int64(rep.Diff.Steps))
	s.m.replayHist.Observe(rep.Elapsed.Seconds())
	writeJSON(w, http.StatusOK, rep)
}
