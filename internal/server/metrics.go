package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics holds the servable counters: steps, skip decisions, latency,
// session and engine lifecycle. All atomics, written on the hot path
// without locks.
type metrics struct {
	sessionsCreated atomic.Int64
	sessionsClosed  atomic.Int64
	sessionsEvicted atomic.Int64
	enginesBuilt    atomic.Int64

	steps      atomic.Int64 // executed steps (single + batched)
	skips      atomic.Int64 // steps with z = 0
	forced     atomic.Int64 // monitor-forced runs
	stepErrors atomic.Int64
	stepNanos  atomic.Int64 // total wall time inside stepping
}

// render writes the Prometheus text exposition.
func (m *metrics) render(w io.Writer, liveSessions, cachedEngines int) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("oicd_sessions_active", "live sessions", int64(liveSessions))
	gauge("oicd_engines_cached", "cached engines (compiled artifact sets)", int64(cachedEngines))
	counter("oicd_sessions_created_total", "sessions created", m.sessionsCreated.Load())
	counter("oicd_sessions_closed_total", "sessions closed by clients", m.sessionsClosed.Load())
	counter("oicd_sessions_evicted_total", "sessions evicted by the TTL janitor", m.sessionsEvicted.Load())
	counter("oicd_engines_built_total", "engines compiled", m.enginesBuilt.Load())
	counter("oicd_steps_total", "control steps executed", m.steps.Load())
	counter("oicd_skips_total", "steps that skipped the controller (z=0)", m.skips.Load())
	counter("oicd_forced_total", "runs forced by the safety monitor", m.forced.Load())
	counter("oicd_step_errors_total", "failed step requests", m.stepErrors.Load())
	// Seconds-sum + count: avg step latency = sum/oicd_steps_total.
	fmt.Fprintf(w, "# HELP oicd_step_seconds_sum total wall time inside stepping\n# TYPE oicd_step_seconds_sum counter\noicd_step_seconds_sum %g\n",
		float64(m.stepNanos.Load())/1e9)
}
