package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"oic/internal/journal"
	"oic/internal/obs"
	"oic/pkg/oic"
)

// metrics holds the servable counters: steps, skip decisions, latency,
// session, fleet, and engine lifecycle. All atomics, written on the hot
// path without locks.
type metrics struct {
	sessionsCreated atomic.Int64
	sessionsClosed  atomic.Int64
	sessionsEvicted atomic.Int64
	enginesBuilt    atomic.Int64

	enginesLoaded     atomic.Int64 // engines restored from the artifact store on demand
	artifactPreloaded atomic.Int64 // engines materialized by -preload at boot

	steps      atomic.Int64 // executed steps (single + batched)
	skips      atomic.Int64 // steps with z = 0
	forced     atomic.Int64 // monitor-forced runs
	stepErrors atomic.Int64

	tracesServed atomic.Int64 // recorded traces fetched by clients
	replays      atomic.Int64 // replay requests served
	replayErrors atomic.Int64 // failed replay requests
	replaySteps  atomic.Int64 // steps re-executed by replays

	fleetsCreated atomic.Int64
	fleetsClosed  atomic.Int64
	fleetsEvicted atomic.Int64

	fleetTicks    atomic.Int64
	fleetSteps    atomic.Int64 // session-steps executed by fleet ticks
	fleetComputes atomic.Int64
	fleetSkips    atomic.Int64
	fleetShed     atomic.Int64
	fleetForced   atomic.Int64
	fleetOverrun  atomic.Int64
	fleetDegraded atomic.Int64 // computes shed by fault/deadline degradation

	sessionsFrozen   atomic.Int64 // freeze handoffs requested (migration drains)
	sessionsResumed  atomic.Int64 // sessions imported via POST /v1/sessions/resume
	membersResumed   atomic.Int64 // fleet members imported via the member resume endpoint
	resumeMismatches atomic.Int64 // imports rejected because the episode did not replay bit-exactly

	journalErrors    atomic.Int64 // journal appends/syncs that failed (durability degraded, requests unaffected)
	journalTornTails atomic.Int64 // segments truncated at a torn tail by the last recovery
	journalOrphans   atomic.Int64 // records referencing unknown ids in the last recovery

	recoveredSessions atomic.Int64 // sessions resumed by the last journal recovery
	recoveredFleets   atomic.Int64 // fleets resumed by the last journal recovery
	recoveredMembers  atomic.Int64 // fleet members resumed by the last journal recovery
	recoveredSteps    atomic.Int64 // steps replayed (and conformance-verified) by the last recovery
	recoveryFailed    atomic.Int64 // journaled objects that failed to resume

	// Latency histograms (internal/obs): full distributions replace the
	// former sum-only counters so tail behavior is visible. stepHist and
	// tickHist are per *request/tick* (their _count differs from the
	// per-step oicd_steps_total by design); marginHist records the tick
	// deadline margin (TickDeadline − elapsed) for deadline-bearing fleets
	// — negative buckets are overruns. journalAppend/journalSync are fed
	// from inside the journal writer via Options hooks.
	stepHist          *obs.Histogram
	replayHist        *obs.Histogram
	tickHist          *obs.Histogram
	marginHist        *obs.Histogram
	journalAppendHist *obs.Histogram
	journalSyncHist   *obs.Histogram
	recoveryPhases    *obs.PhaseHistogram
}

// initHists builds the histogram set; New calls it once per server.
func (m *metrics) initHists() {
	lat := obs.LatencyBuckets()
	m.stepHist = obs.NewHistogram("oicd_step_seconds", "step request latency (single or batched)", lat)
	m.replayHist = obs.NewHistogram("oicd_replay_seconds", "replay request latency", lat)
	m.tickHist = obs.NewHistogram("oicd_fleet_tick_seconds", "fleet tick latency", lat)
	m.marginHist = obs.NewHistogram("oicd_fleet_deadline_margin_seconds", "tick deadline margin (TickDeadline - elapsed; negative = overrun)", obs.MarginBuckets())
	m.journalAppendHist = obs.NewHistogram("oicd_journal_append_seconds", "write-ahead journal append latency", lat)
	m.journalSyncHist = obs.NewHistogram("oicd_journal_sync_seconds", "write-ahead journal fsync latency", lat)
	m.recoveryPhases = obs.NewPhaseHistogram("oicd_recovery_phase_seconds", "boot journal recovery phase durations", []string{"scan", "rebuild", "replay"}, lat)
}

// observeTick folds one fleet tick into the counters and, when the fleet
// carries a tick deadline, the margin histogram.
func (m *metrics) observeTick(rep oic.TickReport, deadline time.Duration) {
	m.fleetTicks.Add(1)
	m.tickHist.Observe(rep.Elapsed.Seconds())
	if deadline > 0 {
		m.marginHist.Observe((deadline - rep.Elapsed).Seconds())
	}
	m.fleetSteps.Add(int64(rep.Sessions))
	m.fleetComputes.Add(int64(rep.Computes))
	m.fleetSkips.Add(int64(rep.Skips))
	m.fleetShed.Add(int64(rep.Shed))
	m.fleetForced.Add(int64(rep.Forced))
	m.fleetOverrun.Add(int64(rep.Overrun))
	m.fleetDegraded.Add(int64(rep.Degraded))
}

// fleetGauge is one live fleet's scrape-time gauge snapshot, labeled by
// fleet ID — per-fleet values would be meaningless as server-global
// last-writer gauges once two fleets tick concurrently.
type fleetGauge struct {
	id    string
	stats oic.FleetStats
}

// render writes the Prometheus text exposition.
func (m *metrics) render(w io.Writer, liveSessions, cachedEngines int, fleets []fleetGauge, store oic.ArtifactStoreStats, js journal.WriterStats) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	// fleetGaugeF emits one labeled gauge line per live fleet.
	fleetGaugeF := func(name, help string, v func(oic.FleetStats) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, fg := range fleets {
			fmt.Fprintf(w, "%s{fleet=%q} %g\n", name, fg.id, v(fg.stats))
		}
	}
	gauge("oicd_sessions_active", "live sessions", int64(liveSessions))
	gauge("oicd_engines_cached", "cached engines (compiled artifact sets)", int64(cachedEngines))
	gauge("oicd_fleets_active", "live fleets", int64(len(fleets)))
	counter("oicd_sessions_created_total", "sessions created", m.sessionsCreated.Load())
	counter("oicd_sessions_closed_total", "sessions closed by clients", m.sessionsClosed.Load())
	counter("oicd_sessions_evicted_total", "sessions evicted by the TTL janitor", m.sessionsEvicted.Load())
	counter("oicd_engines_built_total", "engines compiled", m.enginesBuilt.Load())
	counter("oicd_engines_loaded_total", "engines restored from the artifact store", m.enginesLoaded.Load())
	counter("oicd_artifact_hits_total", "artifact store lookups that found a healthy entry", store.Hits)
	counter("oicd_artifact_misses_total", "artifact store lookups that found no entry", store.Misses)
	counter("oicd_artifact_corrupt_total", "artifact store entries dropped as corrupt", store.Corrupt)
	counter("oicd_artifact_writes_total", "artifacts written back after engine builds", store.Writes)
	counter("oicd_artifact_retries_total", "transient artifact read failures absorbed by the bounded retry loop", store.Retries)
	counter("oicd_artifact_preloaded_total", "engines materialized from artifacts at boot", m.artifactPreloaded.Load())
	counter("oicd_steps_total", "control steps executed", m.steps.Load())
	counter("oicd_skips_total", "steps that skipped the controller (z=0)", m.skips.Load())
	counter("oicd_forced_total", "runs forced by the safety monitor", m.forced.Load())
	counter("oicd_step_errors_total", "failed step requests", m.stepErrors.Load())
	// Full latency distribution (histogram _sum/_count subsume the former
	// *_seconds_sum counters).
	m.stepHist.Write(w)

	counter("oicd_traces_served_total", "recorded session traces fetched", m.tracesServed.Load())
	counter("oicd_replays_total", "trace replays served", m.replays.Load())
	counter("oicd_replay_errors_total", "failed replay requests", m.replayErrors.Load())
	counter("oicd_replay_steps_total", "steps re-executed by replays", m.replaySteps.Load())
	m.replayHist.Write(w)

	counter("oicd_fleets_created_total", "fleets created", m.fleetsCreated.Load())
	counter("oicd_fleets_closed_total", "fleets closed by clients", m.fleetsClosed.Load())
	counter("oicd_fleets_evicted_total", "fleets evicted by the TTL janitor", m.fleetsEvicted.Load())
	counter("oicd_fleet_ticks_total", "fleet scheduler ticks executed", m.fleetTicks.Load())
	counter("oicd_fleet_steps_total", "session-steps executed by fleet ticks", m.fleetSteps.Load())
	counter("oicd_fleet_computes_total", "full controller computations scheduled by fleets", m.fleetComputes.Load())
	counter("oicd_fleet_skips_total", "policy-chosen skips inside fleet ticks", m.fleetSkips.Load())
	counter("oicd_fleet_shed_total", "would-be computes shed into guaranteed-safe skips", m.fleetShed.Load())
	counter("oicd_fleet_forced_total", "monitor-forced computes inside fleet ticks", m.fleetForced.Load())
	counter("oicd_fleet_overrun_total", "forced computes beyond the per-tick budget", m.fleetOverrun.Load())
	counter("oicd_fleet_degraded_total", "computes shed into certified-safe skips by fault or deadline degradation", m.fleetDegraded.Load())
	m.tickHist.Write(w)
	m.marginHist.Write(w)

	counter("oicd_sessions_frozen_total", "sessions frozen for migration handoff", m.sessionsFrozen.Load())
	counter("oicd_sessions_resumed_total", "sessions imported from exported episodes (migration/failover landings)", m.sessionsResumed.Load())
	counter("oicd_members_resumed_total", "fleet members imported from exported episodes", m.membersResumed.Load())
	counter("oicd_resume_mismatch_total", "episode imports rejected by bit-exact replay verification", m.resumeMismatches.Load())

	counter("oicd_journal_appends_total", "write-ahead journal records appended", js.Appends)
	counter("oicd_journal_syncs_total", "write-ahead journal fsyncs issued", js.Syncs)
	counter("oicd_journal_rotations_total", "write-ahead journal segments opened", js.Rotations)
	counter("oicd_journal_bytes_total", "write-ahead journal bytes written", js.Bytes)
	counter("oicd_journal_errors_total", "journal appends or syncs that failed (durability degraded, requests unaffected)", m.journalErrors.Load())
	m.journalAppendHist.Write(w)
	m.journalSyncHist.Write(w)
	counter("oicd_journal_torn_tails_total", "segments truncated at a torn tail by the last recovery", m.journalTornTails.Load())
	counter("oicd_journal_orphans_total", "journal records referencing unknown ids in the last recovery", m.journalOrphans.Load())
	counter("oicd_recovered_sessions_total", "sessions resumed by the last journal recovery", m.recoveredSessions.Load())
	counter("oicd_recovered_fleets_total", "fleets resumed by the last journal recovery", m.recoveredFleets.Load())
	counter("oicd_recovered_members_total", "fleet members resumed by the last journal recovery", m.recoveredMembers.Load())
	counter("oicd_recovered_steps_total", "steps replayed and conformance-verified by the last recovery", m.recoveredSteps.Load())
	counter("oicd_recovery_failed_total", "journaled objects that failed to resume", m.recoveryFailed.Load())
	m.recoveryPhases.Write(w)
	obs.WriteRuntimeMetrics(w)
	if len(fleets) > 0 {
		// fleetCounterF emits one labeled cumulative counter per live fleet
		// (monotone per fleet lifetime, like the controller decision counts).
		fleetCounterF := func(name, help string, v func(oic.FleetStats) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, fg := range fleets {
				fmt.Fprintf(w, "%s{fleet=%q} %d\n", name, fg.id, v(fg.stats))
			}
		}
		fleetGaugeF("oicd_fleet_sessions", "live members per fleet",
			func(st oic.FleetStats) float64 { return float64(st.Sessions) })
		fleetGaugeF("oicd_fleet_utilization", "mean computes per tick / compute budget",
			func(st oic.FleetStats) float64 { return st.Utilization })
		fleetGaugeF("oicd_fleet_reclaimed_ratio", "(skips+shed) / steps",
			func(st oic.FleetStats) float64 { return st.ReclaimedRatio })
		fleetGaugeF("oicd_fleet_pressure", "last tick's forced computes / compute budget",
			func(st oic.FleetStats) float64 { return st.Pressure })
		fleetGaugeF("oicd_fleet_budget", "live per-tick compute budget (elastic fleets retune it every tick)",
			func(st oic.FleetStats) float64 { return float64(st.Budget) })
		fleetGaugeF("oicd_fleet_effective_sessions", "elastic admission capacity in force (0 on static fleets)",
			func(st oic.FleetStats) float64 { return float64(st.EffectiveMaxSessions) })
		fleetCounterF("oicd_fleet_budget_raises_total", "elastic controller budget increases",
			func(st oic.FleetStats) int64 { return st.BudgetRaises })
		fleetCounterF("oicd_fleet_budget_lowers_total", "elastic controller budget decreases",
			func(st oic.FleetStats) int64 { return st.BudgetLowers })
		fleetCounterF("oicd_fleet_budget_floors_total", "elastic updates overridden by the forced-compute floor",
			func(st oic.FleetStats) int64 { return st.BudgetFloors })
	}
}
