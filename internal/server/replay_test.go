package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"oic/pkg/oic"
)

// traceSession opens a traced bang-bang ACC session, streams steps
// disturbances through it, and returns its ID.
func traceSession(t *testing.T, c *client, steps int) string {
	t.Helper()
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions",
		oic.CreateSessionRequest{Plant: "acc", Policy: oic.PolicyBangBang, Seed: 7, Trace: true},
		&info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	ws := make([][]float64, steps)
	for i := range ws {
		ws[i] = []float64{0.25, 0}
	}
	var sr oic.StepResponse
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{WS: ws}, &sr); st != http.StatusOK {
		t.Fatalf("step: status %d", st)
	}
	return info.ID
}

func TestServerTraceEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	const steps = 10
	id := traceSession(t, c, steps)

	// JSON form.
	var tres oic.TraceResponse
	if st := c.do("GET", "/v1/sessions/"+id+"/trace", nil, &tres); st != http.StatusOK {
		t.Fatalf("trace: status %d", st)
	}
	if tres.ID != id || tres.Trace == nil || tres.Trace.Len() != steps {
		t.Fatalf("trace response %+v", tres)
	}
	if err := tres.Trace.Validate(); err != nil {
		t.Errorf("served trace invalid: %v", err)
	}
	if tres.Trace.Meta.Plant != "acc" || tres.Trace.Meta.Policy != oic.PolicyBangBang {
		t.Errorf("served trace meta %+v", tres.Trace.Meta)
	}

	// Binary form decodes to the same trace.
	resp, err := c.hc.Get(c.base + "/v1/sessions/" + id + "/trace?format=binary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("binary trace: status %d type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	bt, err := oic.DecodeTrace(raw)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Len() != steps || bt.Energy != tres.Trace.Energy {
		t.Errorf("binary trace disagrees with JSON trace")
	}

	// Unknown format, untraced session, and missing session.
	var er oic.ErrorResponse
	if st := c.do("GET", "/v1/sessions/"+id+"/trace?format=yaml", nil, &er); st != http.StatusBadRequest {
		t.Errorf("unknown format: status %d", st)
	}
	var plain oic.SessionInfo
	if st := c.do("POST", "/v1/sessions",
		oic.CreateSessionRequest{Plant: "acc", Seed: 3}, &plain); st != http.StatusCreated {
		t.Fatalf("untraced create: status %d", st)
	}
	if st := c.do("GET", "/v1/sessions/"+plain.ID+"/trace", nil, &er); st != http.StatusConflict || er.Code != "not_tracing" {
		t.Errorf("untraced trace fetch: status %d code %q", st, er.Code)
	}
	if st := c.do("GET", "/v1/sessions/s-999/trace", nil, &er); st != http.StatusNotFound {
		t.Errorf("missing session: status %d", st)
	}
}

// TestServerReplayConformance drives the full loop over HTTP: record a
// session, fetch its trace, replay it, and require the byte-identical
// verdict plus a clean audit — the server-path form of the golden
// conformance contract.
func TestServerReplayConformance(t *testing.T) {
	_, c := newTestServer(t, Config{})
	id := traceSession(t, c, 12)

	var tres oic.TraceResponse
	if st := c.do("GET", "/v1/sessions/"+id+"/trace", nil, &tres); st != http.StatusOK {
		t.Fatalf("trace: status %d", st)
	}
	var rep oic.ReplayReport
	if st := c.do("POST", "/v1/replay", oic.ReplayRequest{Trace: tres.Trace, Audit: true}, &rep); st != http.StatusOK {
		t.Fatalf("replay: status %d", st)
	}
	if !rep.Diff.Identical {
		t.Errorf("server replay diverged: %+v", rep.Diff)
	}
	if rep.Audit == nil || !rep.Audit.Clean {
		t.Errorf("server replay audit: %+v", rep.Audit)
	}
	if rep.Violations != 0 {
		t.Errorf("violations %d", rep.Violations)
	}

	// Binary submission replays identically too.
	b, err := oic.EncodeTrace(tres.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var rep2 oic.ReplayReport
	if st := c.do("POST", "/v1/replay", oic.ReplayRequest{TraceBin: b}, &rep2); st != http.StatusOK {
		t.Fatalf("binary replay: status %d", st)
	}
	if !rep2.Diff.Identical {
		t.Errorf("binary-submitted replay diverged: %+v", rep2.Diff)
	}

	// What-if: substitute always-run; decisions must flip and compute
	// spend rise, still with zero violations.
	var what oic.ReplayReport
	if st := c.do("POST", "/v1/replay",
		oic.ReplayRequest{Trace: tres.Trace, Policy: oic.PolicyAlwaysRun, IncludeTrace: true}, &what); st != http.StatusOK {
		t.Fatalf("what-if replay: status %d", st)
	}
	if what.Diff.Identical || what.Diff.ComputesB <= what.Diff.ComputesA {
		t.Errorf("what-if diff incoherent: %+v", what.Diff)
	}
	if what.Violations != 0 || what.Trace == nil {
		t.Errorf("what-if violations %d trace %v", what.Violations, what.Trace != nil)
	}

	// Metrics picked the new counters up.
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"oicd_replays_total 3", "oicd_traces_served_total", "oicd_replay_steps_total"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServerReplayValidation(t *testing.T) {
	_, c := newTestServer(t, Config{})
	id := traceSession(t, c, 3)
	var tres oic.TraceResponse
	if st := c.do("GET", "/v1/sessions/"+id+"/trace", nil, &tres); st != http.StatusOK {
		t.Fatalf("trace: status %d", st)
	}
	tr := tres.Trace

	var er oic.ErrorResponse
	// Neither and both forms.
	if st := c.do("POST", "/v1/replay", oic.ReplayRequest{}, &er); st != http.StatusBadRequest {
		t.Errorf("empty replay: status %d", st)
	}
	b, _ := oic.EncodeTrace(tr)
	if st := c.do("POST", "/v1/replay", oic.ReplayRequest{Trace: tr, TraceBin: b}, &er); st != http.StatusBadRequest {
		t.Errorf("both forms: status %d", st)
	}
	// Corrupt binary.
	if st := c.do("POST", "/v1/replay", oic.ReplayRequest{TraceBin: b[:len(b)-2]}, &er); st != http.StatusBadRequest {
		t.Errorf("corrupt binary: status %d", st)
	}
	// Invalid JSON trace (dimension mismatch inside).
	bad := *tr
	bad.X0 = bad.X0[:1]
	if st := c.do("POST", "/v1/replay", oic.ReplayRequest{Trace: &bad}, &er); st != http.StatusBadRequest {
		t.Errorf("invalid trace: status %d", st)
	}
	// Negative budget.
	if st := c.do("POST", "/v1/replay", oic.ReplayRequest{Trace: tr, ComputeBudget: -1}, &er); st != http.StatusBadRequest {
		t.Errorf("negative budget: status %d", st)
	}
	// Unknown plant in the fingerprint.
	ghost := *tr
	ghost.Meta.Plant = "nope"
	if st := c.do("POST", "/v1/replay", oic.ReplayRequest{Trace: &ghost}, &er); st != http.StatusNotFound {
		t.Errorf("unknown plant: status %d code %q", st, er.Code)
	}
	// Oversized training fingerprint is rejected by the session-cost caps.
	heavy := *tr
	heavy.Meta.Policy = oic.PolicyDRL
	heavy.Meta.TrainEpisodes = 20000
	heavy.Meta.TrainSteps = 20000
	if st := c.do("POST", "/v1/replay", oic.ReplayRequest{Trace: &heavy}, &er); st != http.StatusBadRequest {
		t.Errorf("oversized training: status %d", st)
	}
	// Unknown replay policy.
	if st := c.do("POST", "/v1/replay", oic.ReplayRequest{Trace: tr, Policy: "sometimes"}, &er); st != http.StatusBadRequest {
		t.Errorf("unknown policy: status %d", st)
	}
}

// TestServerTraceLimit pins the trace-cap contract end to end with a tiny
// recorder limit injected through the library path: the server-side cap
// itself (100k steps) is too expensive to exercise over HTTP, so this
// test validates the 409 mapping instead.
func TestServerTraceLimitMapping(t *testing.T) {
	if s, code := statusAndCode(oic.ErrTraceLimit); s != http.StatusConflict || code != "trace_limit" {
		t.Errorf("ErrTraceLimit maps to %d %q", s, code)
	}
	if s, code := statusAndCode(oic.ErrNotTracing); s != http.StatusConflict || code != "not_tracing" {
		t.Errorf("ErrNotTracing maps to %d %q", s, code)
	}
	if s, code := statusAndCode(oic.ErrTraceMismatch); s != http.StatusBadRequest || code != "trace_mismatch" {
		t.Errorf("ErrTraceMismatch maps to %d %q", s, code)
	}
}
