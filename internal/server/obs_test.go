package server

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"oic/internal/obs"
	"oic/pkg/oic"
)

// scrape fetches /metrics from a live test server.
func scrape(t *testing.T, c *client) string {
	t.Helper()
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// histCount extracts the _count value of a histogram series whose line
// starts with prefix (name plus any label opener).
func histCount(t *testing.T, exposition, prefix string) uint64 {
	t.Helper()
	var total uint64
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, prefix) || !strings.Contains(line, "_count") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseUint(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		total += v
	}
	return total
}

// TestMetricsScrapeValid exercises the serving paths that feed the
// histograms, then validates the full /metrics exposition with the strict
// parser: declared types, cumulative buckets ending at +Inf, and
// _count == +Inf for every histogram series.
func TestMetricsScrapeValid(t *testing.T) {
	_, c := newTestServer(t, Config{})

	// Sessions: create + step feed oicd_step_seconds.
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions",
		oic.CreateSessionRequest{Plant: "thermo", Policy: oic.PolicyBangBang, Seed: 3}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", nil, nil); st != http.StatusOK {
		t.Fatalf("step: status %d", st)
	}

	// Fleets with a tick deadline feed oicd_fleet_tick_seconds AND
	// oicd_fleet_deadline_margin_seconds.
	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", ComputeBudget: 2, Size: 4, Seed: 1,
		TickDeadline: time.Second,
	}, &fi); st != http.StatusCreated {
		t.Fatalf("fleet create: status %d", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{Ticks: 3}, nil); st != http.StatusOK {
		t.Fatalf("tick: status %d", st)
	}

	exposition := scrape(t, c)
	if err := obs.ValidateMetrics([]byte(exposition)); err != nil {
		t.Fatalf("invalid exposition: %v\n---\n%s", err, exposition)
	}

	// The paper-facing acceptance criterion: the deadline-margin histogram
	// is exported and populated after deadline-bearing ticks.
	if n := histCount(t, exposition, "oicd_fleet_deadline_margin_seconds"); n < 3 {
		t.Errorf("oicd_fleet_deadline_margin_seconds count = %d, want ≥ 3", n)
	}
	if n := histCount(t, exposition, "oicd_step_seconds"); n < 1 {
		t.Errorf("oicd_step_seconds count = %d, want ≥ 1", n)
	}
	for _, name := range []string{"go_goroutines", "go_heap_inuse_bytes", "go_gc_pause_seconds_total"} {
		if !strings.Contains(exposition, name+" ") {
			t.Errorf("exposition missing runtime metric %s", name)
		}
	}
}

// TestTraceIDPropagation: the server mints an X-Oic-Trace-Id when the
// client sends none, adopts the client's when present, and echoes the ID
// in error bodies so failures are correlatable.
func TestTraceIDPropagation(t *testing.T) {
	_, c := newTestServer(t, Config{})

	// Minted when absent.
	resp, err := c.hc.Get(c.base + "/v1/plants")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get(obs.TraceHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(minted) {
		t.Fatalf("minted trace ID %q, want 16 hex chars", minted)
	}

	// Adopted when present, and echoed into the error payload.
	const want = "feedc0dedeadbeef"
	req, _ := http.NewRequest("GET", c.base+"/v1/sessions/nope", nil)
	req.Header.Set(obs.TraceHeader, want)
	resp, err = c.hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != want {
		t.Fatalf("echoed trace ID %q, want %q", got, want)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"trace_id":"`+want+`"`)) {
		t.Fatalf("error body missing trace_id: %s", body)
	}
}
