package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"oic/pkg/oic"
)

// FuzzWireRequests fuzzes the server's request decode + validation paths
// — every byte-level surface a client controls short of engine
// construction: session create, step, fleet create, fleet tick, and
// replay (including the embedded binary-trace decoder). Properties: no
// panics, and every accepted replay body yields a structurally valid
// trace within the server's cost caps.
//
// The seed corpus covers each request shape, valid and hostile, plus the
// golden traces in both JSON and base64-binary embedding.
func FuzzWireRequests(f *testing.F) {
	seed := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(oic.CreateSessionRequest{Plant: "acc", Policy: "bang-bang", Seed: 7, Trace: true})
	seed(oic.CreateSessionRequest{Plant: "acc", Policy: "drl",
		Train: oic.TrainConfig{Episodes: 20000, Steps: 20000}})
	seed(oic.StepRequest{W: []float64{0.5, 0}})
	seed(oic.StepRequest{WS: [][]float64{{0.5, 0}, {-0.5, 0}}})
	seed(oic.CreateFleetRequest{Plant: "acc", ComputeBudget: 8, Size: 64})
	seed(oic.FleetTickRequest{Ticks: 3})
	seed(oic.FleetTickRequest{WS: map[int][]float64{0: {0.5, 0}}})
	seed(oic.ReplayRequest{Policy: "always-run", ComputeBudget: 5})
	if golden, err := filepath.Glob(filepath.Join("..", "trace", "testdata", "golden", "*.oict")); err == nil {
		for _, path := range golden {
			raw, err := os.ReadFile(path)
			if err != nil {
				f.Fatal(err)
			}
			seed(oic.ReplayRequest{TraceBin: raw, Audit: true})
			if tr, err := oic.DecodeTrace(raw); err == nil {
				seed(oic.ReplayRequest{Trace: tr, Policy: "bang-bang"})
			}
		}
	}
	f.Add([]byte(`{"trace":{"version":1,"meta":{"plant":"acc"},"nx":1000000}}`))
	f.Add([]byte(`{"trace_bin":"` + base64.StdEncoding.EncodeToString([]byte("OICT\x01\x00garbage")) + `"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Each request type gets its own decode pass over the same bytes,
		// mirroring what the handlers do before touching any engine.
		decode := func(dst any) error {
			r := httptest.NewRequest("POST", "/fuzz", bytes.NewReader(data))
			return decodeJSON(r, dst)
		}

		var cs oic.CreateSessionRequest
		if err := decode(&cs); err == nil {
			if verr := validateCreate(&cs); verr == nil {
				// Accepted configurations stay within the cost caps.
				if cs.Memory < 0 || cs.Memory > maxMemory ||
					cs.Train.Episodes*cs.Train.Steps > maxTrainTotal {
					t.Fatalf("validateCreate accepted out-of-cap request %+v", cs)
				}
			}
		}

		var st oic.StepRequest
		_ = decode(&st)

		var fc oic.CreateFleetRequest
		if err := decode(&fc); err == nil {
			if verr := validateFleetCreate(&fc); verr == nil {
				if fc.MaxSessions < 0 || fc.MaxSessions > maxFleetSessions || fc.ComputeBudget < 0 {
					t.Fatalf("validateFleetCreate accepted out-of-cap request %+v", fc)
				}
			}
		}

		var tk oic.FleetTickRequest
		_ = decode(&tk)

		var rr oic.ReplayRequest
		if err := decode(&rr); err == nil {
			tr, verr := resolveReplayTrace(&rr)
			if verr == nil {
				if tr == nil {
					t.Fatal("resolveReplayTrace accepted a request but returned no trace")
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("resolveReplayTrace accepted an invalid trace: %v", err)
				}
				if tr.Len() > maxReplaySteps {
					t.Fatalf("resolveReplayTrace accepted %d steps", tr.Len())
				}
			}
		}
	})
}
