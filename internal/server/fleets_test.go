package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"oic/pkg/oic"
)

func TestFleetEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Config{})

	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", Policy: oic.PolicyAlwaysRun,
		ComputeBudget: 2, Size: 8, Seed: 1,
	}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if fi.ID == "" || fi.Sessions != 8 || fi.Budget != 2 {
		t.Fatalf("create info: %+v", fi)
	}
	if fi.MaxSkipBudget < 1 {
		t.Fatalf("MaxSkipBudget = %d, want ≥ 1", fi.MaxSkipBudget)
	}

	// Five zero-disturbance ticks: with always-run and budget 2, six of
	// eight members shed every tick while they stay inside X′.
	var tr oic.FleetTickResponse
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{Ticks: 5}, &tr); st != http.StatusOK {
		t.Fatalf("tick: status %d", st)
	}
	if len(tr.Reports) != 5 {
		t.Fatalf("got %d reports, want 5", len(tr.Reports))
	}
	for i, rep := range tr.Reports {
		if rep.Sessions != 8 {
			t.Fatalf("report %d: sessions %d", i, rep.Sessions)
		}
		if rep.Violations != 0 {
			t.Fatalf("report %d: %d violations", i, rep.Violations)
		}
		if rep.Computes > 2 && rep.Overrun == 0 {
			t.Fatalf("report %d: computes %d over budget without overrun", i, rep.Computes)
		}
	}

	// Single tick with explicit disturbances for two members.
	var single oic.FleetTickResponse
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{
		WS: map[int][]float64{0: {0.5, 0}, 1: {-0.5, 0}},
	}, &single); st != http.StatusOK {
		t.Fatalf("tick ws: status %d", st)
	}

	// Admit a ninth member, inspect it, evict it.
	var mi oic.FleetMemberInfo
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/sessions", oic.FleetAdmitRequest{Seed: 9}, &mi); st != http.StatusCreated {
		t.Fatalf("admit: status %d", st)
	}
	if mi.T != 0 || mi.SkipBudget < 1 {
		t.Fatalf("admitted member: %+v", mi)
	}
	var got oic.FleetMemberInfo
	if st := c.do("GET", fmt.Sprintf("/v1/fleets/%s/sessions/%d", fi.ID, mi.ID), nil, &got); st != http.StatusOK {
		t.Fatalf("member get: status %d", st)
	}
	if st := c.do("DELETE", fmt.Sprintf("/v1/fleets/%s/sessions/%d", fi.ID, mi.ID), nil, nil); st != http.StatusOK {
		t.Fatalf("member delete: status %d", st)
	}
	if st := c.do("GET", fmt.Sprintf("/v1/fleets/%s/sessions/%d", fi.ID, mi.ID), nil, nil); st != http.StatusNotFound {
		t.Fatalf("member get after evict: status %d, want 404", st)
	}

	// Stats reflect the six executed ticks.
	var snap oic.FleetInfo
	if st := c.do("GET", "/v1/fleets/"+fi.ID, nil, &snap); st != http.StatusOK {
		t.Fatalf("get: status %d", st)
	}
	if snap.Ticks != 6 || snap.Sessions != 8 || snap.Violations != 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.ReclaimedRatio <= 0.5 {
		t.Fatalf("reclaimed ratio %.2f, want > 0.5 (budget 2 of 8 always-run)", snap.ReclaimedRatio)
	}

	var closed oic.FleetInfo
	if st := c.do("DELETE", "/v1/fleets/"+fi.ID, nil, &closed); st != http.StatusOK {
		t.Fatalf("delete: status %d", st)
	}
	if !closed.Closed {
		t.Fatalf("delete response not marked closed: %+v", closed)
	}
	if st := c.do("GET", "/v1/fleets/"+fi.ID, nil, nil); st != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", st)
	}
}

func TestFleetValidation(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  oic.CreateFleetRequest
		want int
	}{
		{"missing plant", oic.CreateFleetRequest{}, http.StatusBadRequest},
		{"unknown plant", oic.CreateFleetRequest{Plant: "nope"}, http.StatusNotFound},
		{"oversized max_sessions", oic.CreateFleetRequest{Plant: "acc", MaxSessions: maxFleetSessions + 1}, http.StatusBadRequest},
		{"size over max", oic.CreateFleetRequest{Plant: "acc", MaxSessions: 4, Size: 5}, http.StatusBadRequest},
		{"negative budget", oic.CreateFleetRequest{Plant: "acc", ComputeBudget: -1}, http.StatusBadRequest},
		{"negative workers", oic.CreateFleetRequest{Plant: "acc", Workers: -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var er oic.ErrorResponse
		if st := c.do("POST", "/v1/fleets", tc.req, &er); st != tc.want {
			t.Errorf("%s: status %d, want %d (%+v)", tc.name, st, tc.want, er)
		}
	}

	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{Plant: "acc", Size: 2, Seed: 1}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{Ticks: maxTicksPerReq + 1}, nil); st != http.StatusBadRequest {
		t.Fatalf("oversized ticks: status %d, want 400", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{
		Ticks: 2, WS: map[int][]float64{0: {0, 0}},
	}, nil); st != http.StatusBadRequest {
		t.Fatalf("ws with ticks>1: status %d, want 400", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{
		WS: map[int][]float64{99: {0, 0}},
	}, nil); st != http.StatusNotFound {
		t.Fatalf("unknown member in ws: status %d, want 404", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{
		WS: map[int][]float64{0: {1}},
	}, nil); st != http.StatusBadRequest {
		t.Fatalf("short disturbance: status %d, want 400", st)
	}
	if st := c.do("GET", "/v1/fleets/"+fi.ID+"/sessions/abc", nil, nil); st != http.StatusBadRequest {
		t.Fatalf("non-integer member id: status %d, want 400", st)
	}
	if st := c.do("POST", "/v1/fleets/nope/tick", nil, nil); st != http.StatusNotFound {
		t.Fatalf("unknown fleet tick: status %d, want 404", st)
	}
}

func TestFleetCapacity(t *testing.T) {
	_, c := newTestServer(t, Config{MaxFleets: 1})
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{Plant: "acc"}, nil); st != http.StatusCreated {
		t.Fatalf("first create: status %d", st)
	}
	var er oic.ErrorResponse
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{Plant: "acc"}, &er); st != http.StatusTooManyRequests {
		t.Fatalf("second create: status %d, want 429 (%+v)", st, er)
	}
	if er.Code != "capacity" {
		t.Fatalf("error code %q, want capacity", er.Code)
	}
}

func TestFleetAdmissionFullOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{})
	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", MaxSessions: 2, Size: 2, Seed: 1,
	}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	var er oic.ErrorResponse
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/sessions", oic.FleetAdmitRequest{Seed: 3}, &er); st != http.StatusTooManyRequests {
		t.Fatalf("admit past capacity: status %d (%+v)", st, er)
	}
	if er.Code != "capacity" {
		t.Fatalf("error code %q, want capacity", er.Code)
	}
}

func TestFleetEviction(t *testing.T) {
	now := time.Now()
	cfg := Config{SessionTTL: time.Minute, Now: func() time.Time { return now }}
	srv, c := newTestServer(t, cfg)
	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{Plant: "acc", Size: 2, Seed: 1}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	now = now.Add(30 * time.Second)
	if n := srv.EvictIdle(); n != 0 {
		t.Fatalf("evicted %d before TTL", n)
	}
	now = now.Add(2 * time.Minute)
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if st := c.do("GET", "/v1/fleets/"+fi.ID, nil, nil); st != http.StatusNotFound {
		t.Fatalf("get after eviction: status %d, want 404", st)
	}
}

func TestFleetElasticOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{})

	// Validation of the elastic wire fields.
	bad := []oic.CreateFleetRequest{
		{Plant: "acc", Elastic: &oic.ElasticConfig{MaxBudget: 8}}, // no deadline
		{Plant: "acc", TickDeadline: time.Second, Elastic: &oic.ElasticConfig{}},
		{Plant: "acc", TickDeadline: time.Second, Elastic: &oic.ElasticConfig{MinBudget: 9, MaxBudget: 8}},
		{Plant: "acc", TickDeadline: time.Second, Elastic: &oic.ElasticConfig{MaxBudget: 8, TargetMargin: time.Second}},
		{Plant: "acc", TickDeadline: time.Second, Elastic: &oic.ElasticConfig{MaxBudget: maxFleetSessions + 1}},
	}
	for i, req := range bad {
		var er oic.ErrorResponse
		if st := c.do("POST", "/v1/fleets", req, &er); st != http.StatusBadRequest {
			t.Errorf("bad elastic %d: status %d, want 400 (%+v)", i, st, er)
		}
	}

	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", Policy: oic.PolicyAlwaysRun,
		ComputeBudget: 2, Size: 8, Seed: 1, MaxSessions: 16,
		TickDeadline: time.Second,
		Elastic:      &oic.ElasticConfig{MinBudget: 2, MaxBudget: 6, TargetMargin: 100 * time.Millisecond},
	}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	var tr oic.FleetTickResponse
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{Ticks: 8}, &tr); st != http.StatusOK {
		t.Fatalf("tick: status %d", st)
	}
	for i, rep := range tr.Reports {
		if rep.Violations != 0 {
			t.Fatalf("report %d: %d violations", i, rep.Violations)
		}
		if rep.NextBudget < 2 && rep.NextBudget < rep.Forced {
			t.Fatalf("report %d: NextBudget %d below bounds and floor", i, rep.NextBudget)
		}
		if rep.EffectiveMaxSessions < 8 || rep.EffectiveMaxSessions > 24 {
			t.Fatalf("report %d: EffectiveMaxSessions %d outside [½, 3/2]×16", i, rep.EffectiveMaxSessions)
		}
	}
	var snap oic.FleetInfo
	if st := c.do("GET", "/v1/fleets/"+fi.ID, nil, &snap); st != http.StatusOK {
		t.Fatalf("get: status %d", st)
	}
	// Test-box margins dwarf the 1s deadline, so the loop must have grown
	// the budget to its cap.
	if snap.Budget != 6 {
		t.Fatalf("snapshot budget %d, want MaxBudget 6 under huge margins", snap.Budget)
	}
	if snap.BudgetRaises == 0 || snap.EffectiveMaxSessions == 0 {
		t.Fatalf("controller stats missing from snapshot: %+v", snap.FleetStats)
	}

	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"oicd_fleet_budget{fleet=",
		"oicd_fleet_effective_sessions{fleet=",
		"oicd_fleet_budget_raises_total{fleet=",
		"oicd_fleet_budget_lowers_total{fleet=",
		"oicd_fleet_budget_floors_total{fleet=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestFleetElasticDefaults(t *testing.T) {
	_, c := newTestServer(t, Config{ElasticDefaults: true})

	// Deadline + finite budget, no explicit elastic → server defaults in.
	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", ComputeBudget: 8, Size: 4, Seed: 1, TickDeadline: time.Second,
	}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	var tr oic.FleetTickResponse
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{Ticks: 1}, &tr); st != http.StatusOK {
		t.Fatalf("tick: status %d", st)
	}
	if tr.Reports[0].NextBudget == 0 {
		t.Fatalf("-elastic default did not engage the controller: %+v", tr.Reports[0])
	}

	// No deadline → stays static even under -elastic.
	var fi2 oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", ComputeBudget: 8, Size: 4, Seed: 1,
	}, &fi2); st != http.StatusCreated {
		t.Fatalf("create static: status %d", st)
	}
	var tr2 oic.FleetTickResponse
	if st := c.do("POST", "/v1/fleets/"+fi2.ID+"/tick", oic.FleetTickRequest{Ticks: 1}, &tr2); st != http.StatusOK {
		t.Fatalf("tick static: status %d", st)
	}
	if tr2.Reports[0].NextBudget != 0 {
		t.Fatalf("deadline-less fleet became elastic: %+v", tr2.Reports[0])
	}
}

func TestFleetMetricsExposition(t *testing.T) {
	_, c := newTestServer(t, Config{})
	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", Policy: oic.PolicyAlwaysRun, ComputeBudget: 1, Size: 4, Seed: 1,
	}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{Ticks: 3}, nil); st != http.StatusOK {
		t.Fatalf("tick: status %d", st)
	}
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"oicd_fleets_active 1",
		"oicd_fleet_ticks_total 3",
		"oicd_fleet_steps_total 12",
		"oicd_fleet_shed_total",
		"oicd_fleet_utilization",
		"oicd_fleet_reclaimed_ratio",
		"oicd_fleet_tick_seconds_sum",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
