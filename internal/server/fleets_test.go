package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"oic/pkg/oic"
)

func TestFleetEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Config{})

	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", Policy: oic.PolicyAlwaysRun,
		ComputeBudget: 2, Size: 8, Seed: 1,
	}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if fi.ID == "" || fi.Sessions != 8 || fi.Budget != 2 {
		t.Fatalf("create info: %+v", fi)
	}
	if fi.MaxSkipBudget < 1 {
		t.Fatalf("MaxSkipBudget = %d, want ≥ 1", fi.MaxSkipBudget)
	}

	// Five zero-disturbance ticks: with always-run and budget 2, six of
	// eight members shed every tick while they stay inside X′.
	var tr oic.FleetTickResponse
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{Ticks: 5}, &tr); st != http.StatusOK {
		t.Fatalf("tick: status %d", st)
	}
	if len(tr.Reports) != 5 {
		t.Fatalf("got %d reports, want 5", len(tr.Reports))
	}
	for i, rep := range tr.Reports {
		if rep.Sessions != 8 {
			t.Fatalf("report %d: sessions %d", i, rep.Sessions)
		}
		if rep.Violations != 0 {
			t.Fatalf("report %d: %d violations", i, rep.Violations)
		}
		if rep.Computes > 2 && rep.Overrun == 0 {
			t.Fatalf("report %d: computes %d over budget without overrun", i, rep.Computes)
		}
	}

	// Single tick with explicit disturbances for two members.
	var single oic.FleetTickResponse
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{
		WS: map[int][]float64{0: {0.5, 0}, 1: {-0.5, 0}},
	}, &single); st != http.StatusOK {
		t.Fatalf("tick ws: status %d", st)
	}

	// Admit a ninth member, inspect it, evict it.
	var mi oic.FleetMemberInfo
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/sessions", oic.FleetAdmitRequest{Seed: 9}, &mi); st != http.StatusCreated {
		t.Fatalf("admit: status %d", st)
	}
	if mi.T != 0 || mi.SkipBudget < 1 {
		t.Fatalf("admitted member: %+v", mi)
	}
	var got oic.FleetMemberInfo
	if st := c.do("GET", fmt.Sprintf("/v1/fleets/%s/sessions/%d", fi.ID, mi.ID), nil, &got); st != http.StatusOK {
		t.Fatalf("member get: status %d", st)
	}
	if st := c.do("DELETE", fmt.Sprintf("/v1/fleets/%s/sessions/%d", fi.ID, mi.ID), nil, nil); st != http.StatusOK {
		t.Fatalf("member delete: status %d", st)
	}
	if st := c.do("GET", fmt.Sprintf("/v1/fleets/%s/sessions/%d", fi.ID, mi.ID), nil, nil); st != http.StatusNotFound {
		t.Fatalf("member get after evict: status %d, want 404", st)
	}

	// Stats reflect the six executed ticks.
	var snap oic.FleetInfo
	if st := c.do("GET", "/v1/fleets/"+fi.ID, nil, &snap); st != http.StatusOK {
		t.Fatalf("get: status %d", st)
	}
	if snap.Ticks != 6 || snap.Sessions != 8 || snap.Violations != 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.ReclaimedRatio <= 0.5 {
		t.Fatalf("reclaimed ratio %.2f, want > 0.5 (budget 2 of 8 always-run)", snap.ReclaimedRatio)
	}

	var closed oic.FleetInfo
	if st := c.do("DELETE", "/v1/fleets/"+fi.ID, nil, &closed); st != http.StatusOK {
		t.Fatalf("delete: status %d", st)
	}
	if !closed.Closed {
		t.Fatalf("delete response not marked closed: %+v", closed)
	}
	if st := c.do("GET", "/v1/fleets/"+fi.ID, nil, nil); st != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", st)
	}
}

func TestFleetValidation(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  oic.CreateFleetRequest
		want int
	}{
		{"missing plant", oic.CreateFleetRequest{}, http.StatusBadRequest},
		{"unknown plant", oic.CreateFleetRequest{Plant: "nope"}, http.StatusNotFound},
		{"oversized max_sessions", oic.CreateFleetRequest{Plant: "acc", MaxSessions: maxFleetSessions + 1}, http.StatusBadRequest},
		{"size over max", oic.CreateFleetRequest{Plant: "acc", MaxSessions: 4, Size: 5}, http.StatusBadRequest},
		{"negative budget", oic.CreateFleetRequest{Plant: "acc", ComputeBudget: -1}, http.StatusBadRequest},
		{"negative workers", oic.CreateFleetRequest{Plant: "acc", Workers: -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var er oic.ErrorResponse
		if st := c.do("POST", "/v1/fleets", tc.req, &er); st != tc.want {
			t.Errorf("%s: status %d, want %d (%+v)", tc.name, st, tc.want, er)
		}
	}

	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{Plant: "acc", Size: 2, Seed: 1}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{Ticks: maxTicksPerReq + 1}, nil); st != http.StatusBadRequest {
		t.Fatalf("oversized ticks: status %d, want 400", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{
		Ticks: 2, WS: map[int][]float64{0: {0, 0}},
	}, nil); st != http.StatusBadRequest {
		t.Fatalf("ws with ticks>1: status %d, want 400", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{
		WS: map[int][]float64{99: {0, 0}},
	}, nil); st != http.StatusNotFound {
		t.Fatalf("unknown member in ws: status %d, want 404", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{
		WS: map[int][]float64{0: {1}},
	}, nil); st != http.StatusBadRequest {
		t.Fatalf("short disturbance: status %d, want 400", st)
	}
	if st := c.do("GET", "/v1/fleets/"+fi.ID+"/sessions/abc", nil, nil); st != http.StatusBadRequest {
		t.Fatalf("non-integer member id: status %d, want 400", st)
	}
	if st := c.do("POST", "/v1/fleets/nope/tick", nil, nil); st != http.StatusNotFound {
		t.Fatalf("unknown fleet tick: status %d, want 404", st)
	}
}

func TestFleetCapacity(t *testing.T) {
	_, c := newTestServer(t, Config{MaxFleets: 1})
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{Plant: "acc"}, nil); st != http.StatusCreated {
		t.Fatalf("first create: status %d", st)
	}
	var er oic.ErrorResponse
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{Plant: "acc"}, &er); st != http.StatusTooManyRequests {
		t.Fatalf("second create: status %d, want 429 (%+v)", st, er)
	}
	if er.Code != "capacity" {
		t.Fatalf("error code %q, want capacity", er.Code)
	}
}

func TestFleetAdmissionFullOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{})
	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", MaxSessions: 2, Size: 2, Seed: 1,
	}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	var er oic.ErrorResponse
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/sessions", oic.FleetAdmitRequest{Seed: 3}, &er); st != http.StatusTooManyRequests {
		t.Fatalf("admit past capacity: status %d (%+v)", st, er)
	}
	if er.Code != "capacity" {
		t.Fatalf("error code %q, want capacity", er.Code)
	}
}

func TestFleetEviction(t *testing.T) {
	now := time.Now()
	cfg := Config{SessionTTL: time.Minute, Now: func() time.Time { return now }}
	srv, c := newTestServer(t, cfg)
	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{Plant: "acc", Size: 2, Seed: 1}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	now = now.Add(30 * time.Second)
	if n := srv.EvictIdle(); n != 0 {
		t.Fatalf("evicted %d before TTL", n)
	}
	now = now.Add(2 * time.Minute)
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if st := c.do("GET", "/v1/fleets/"+fi.ID, nil, nil); st != http.StatusNotFound {
		t.Fatalf("get after eviction: status %d, want 404", st)
	}
}

func TestFleetMetricsExposition(t *testing.T) {
	_, c := newTestServer(t, Config{})
	var fi oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", Policy: oic.PolicyAlwaysRun, ComputeBudget: 1, Size: 4, Seed: 1,
	}, &fi); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fi.ID+"/tick", oic.FleetTickRequest{Ticks: 3}, nil); st != http.StatusOK {
		t.Fatalf("tick: status %d", st)
	}
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"oicd_fleets_active 1",
		"oicd_fleet_ticks_total 3",
		"oicd_fleet_steps_total 12",
		"oicd_fleet_shed_total",
		"oicd_fleet_utilization",
		"oicd_fleet_reclaimed_ratio",
		"oicd_fleet_tick_seconds_sum",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
