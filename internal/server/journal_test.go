package server

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"testing"
	"time"

	"oic/internal/journal"
	"oic/pkg/oic"
)

// raw issues a request and returns the response body bytes verbatim (for
// binary-trace byte-identity assertions).
func (c *client) raw(method, path string) []byte {
	c.t.Helper()
	req, err := http.NewRequest(method, c.base+path, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("%s %s: status %d, body %q", method, path, resp.StatusCode, b)
	}
	return b
}

// journalServer builds a test server with a write-ahead journal at dir.
func journalServer(t testing.TB, dir string, cfg Config, policy journal.SyncPolicy) (*Server, *client) {
	t.Helper()
	srv, c := newTestServer(t, cfg)
	if err := srv.OpenJournal(journal.Options{Dir: dir, Policy: policy}); err != nil {
		t.Fatal(err)
	}
	return srv, c
}

// stepW returns a deterministic per-step disturbance for an acc session.
func stepW(i int) []float64 {
	return []float64{0.05 * math.Sin(float64(i)), 0.03 * math.Cos(float64(2*i))}
}

// TestRequestTimeoutDeadline503 drives a step into an expired server-side
// deadline and asserts the 503 "deadline" mapping — and that the same
// machinery keeps the 499 client-cancel exit distinct.
func TestRequestTimeoutDeadline503(t *testing.T) {
	_, c := newTestServer(t, Config{RequestTimeout: time.Nanosecond})

	// Creation does no context-gated compute, so it succeeds even with an
	// already-expired request context.
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc"}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	// Stepping checks the context first: the expired deadline surfaces as
	// 503 {"code":"deadline"}, a retryable server condition.
	var e oic.ErrorResponse
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: stepW(0)}, &e); st != http.StatusServiceUnavailable {
		t.Fatalf("step under expired deadline: status %d, body %+v", st, e)
	}
	if e.Code != "deadline" {
		t.Fatalf("step under expired deadline: code %q, want \"deadline\"", e.Code)
	}

	// The client-cancel exit must stay distinguishable: same context
	// machinery, different status and code.
	if st, code := statusAndCode(context.Canceled); st != 499 || code != "canceled" {
		t.Fatalf("client cancel maps to (%d, %q), want (499, \"canceled\")", st, code)
	}
	if st, code := statusAndCode(context.DeadlineExceeded); st != http.StatusServiceUnavailable || code != "deadline" {
		t.Fatalf("deadline maps to (%d, %q), want (503, \"deadline\")", st, code)
	}
}

// TestRecoveryGatesTraffic verifies the recovering state: /readyz 503
// {"recovering":true} and creation endpoints 503 "recovering" until the
// replay closure completes, while /healthz (liveness) stays 200.
func TestRecoveryGatesTraffic(t *testing.T) {
	dir := t.TempDir()
	srv, c := journalServer(t, dir, Config{}, journal.SyncEveryTick)

	run, err := srv.BeginJournalRecovery(dir)
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		OK         bool `json:"ok"`
		Recovering bool `json:"recovering"`
	}
	if st := c.do("GET", "/readyz", nil, &hz); st != http.StatusServiceUnavailable || !hz.Recovering {
		t.Fatalf("readyz while recovering: status %d, body %+v", st, hz)
	}
	if st := c.do("GET", "/healthz", nil, &hz); st != http.StatusOK || !hz.OK || !hz.Recovering {
		t.Fatalf("healthz while recovering: status %d, body %+v, want live with recovering marker", st, hz)
	}
	var e oic.ErrorResponse
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc"}, &e); st != http.StatusServiceUnavailable || e.Code != "recovering" {
		t.Fatalf("create while recovering: status %d, code %q", st, e.Code)
	}
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{Plant: "acc"}, &e); st != http.StatusServiceUnavailable || e.Code != "recovering" {
		t.Fatalf("fleet create while recovering: status %d, code %q", st, e.Code)
	}

	if _, err := run(); err != nil {
		t.Fatal(err)
	}
	if st := c.do("GET", "/readyz", nil, &hz); st != http.StatusOK || !hz.OK {
		t.Fatalf("readyz after recovery: status %d, body %+v", st, hz)
	}
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc"}, nil); st != http.StatusCreated {
		t.Fatalf("create after recovery: status %d", st)
	}
}

// TestJournalRecoveryByteIdentical is the in-process crash test: journal a
// served workload, drop the server without closing anything (the crash),
// recover into a fresh server, and require byte-identical state — session
// info, binary traces, and every post-recovery step must match an
// uninterrupted reference run exactly.
func TestJournalRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	const cut, total = 12, 20

	// Reference: one uninterrupted session over the full disturbance
	// sequence, straight through the library.
	eng, err := oic.NewEngine(oic.Config{Plant: "acc", Policy: oic.PolicyBangBang})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := eng.SampleInitialStates(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := xs[0]
	ref, err := eng.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	var refResults []oic.StepResult
	for i := 0; i < total; i++ {
		r, err := ref.Step(context.Background(), stepW(i))
		if err != nil {
			t.Fatal(err)
		}
		refResults = append(refResults, r)
	}

	// Phase 1: serve cut steps with the journal attached, plus a second
	// session that gets closed (it must NOT be resurrected), then crash.
	srvA, cA := journalServer(t, dir, Config{}, journal.SyncEveryTick)
	var info oic.SessionInfo
	if st := cA.do("POST", "/v1/sessions",
		oic.CreateSessionRequest{Plant: "acc", Policy: oic.PolicyBangBang, X0: x0, Trace: true}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	for i := 0; i < cut; i++ {
		if st := cA.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: stepW(i)}, nil); st != http.StatusOK {
			t.Fatalf("step %d: status %d", i, st)
		}
	}
	var closed oic.SessionInfo
	if st := cA.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", Policy: oic.PolicyBangBang}, &closed); st != http.StatusCreated {
		t.Fatalf("create closed-session: status %d", st)
	}
	if st := cA.do("DELETE", "/v1/sessions/"+closed.ID, nil, nil); st != http.StatusOK {
		t.Fatalf("delete: status %d", st)
	}
	var preInfo oic.SessionInfo
	cA.do("GET", "/v1/sessions/"+info.ID, nil, &preInfo)
	preTrace := cA.raw("GET", "/v1/sessions/"+info.ID+"/trace?format=binary")
	// The crash: flush what SyncEveryTick buffered (each request synced, so
	// this is a no-op for acknowledged work) and abandon the server without
	// Close records.
	srvA.Close()

	// Phase 2: recover into a fresh server over the same journal dir.
	srvB, cB := journalServer(t, dir, Config{}, journal.SyncEveryTick)
	run, err := srvB.BeginJournalRecovery(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 1 || rep.StepsReplayed != cut || rep.Failed != 0 || rep.Skipped != 1 {
		t.Fatalf("recovery report %+v, want 1 session, %d steps, 1 skipped, 0 failed", rep, cut)
	}

	// The recovered snapshot and binary trace are byte-identical.
	var postInfo oic.SessionInfo
	if st := cB.do("GET", "/v1/sessions/"+info.ID, nil, &postInfo); st != http.StatusOK {
		t.Fatalf("recovered session GET: status %d", st)
	}
	if postInfo.T != preInfo.T || !bitsEq(postInfo.X, preInfo.X) ||
		postInfo.Skips != preInfo.Skips || postInfo.Forced != preInfo.Forced ||
		postInfo.Violations != preInfo.Violations {
		t.Fatalf("recovered info %+v != pre-crash %+v", postInfo, preInfo)
	}
	postTrace := cB.raw("GET", "/v1/sessions/"+info.ID+"/trace?format=binary")
	if string(postTrace) != string(preTrace) {
		t.Fatalf("recovered binary trace differs: %d bytes vs %d", len(postTrace), len(preTrace))
	}
	// The closed session stays closed, and new IDs don't collide.
	if st := cB.do("GET", "/v1/sessions/"+closed.ID, nil, nil); st != http.StatusNotFound {
		t.Fatalf("closed session resurrected: status %d", st)
	}
	var fresh oic.SessionInfo
	if st := cB.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc"}, &fresh); st != http.StatusCreated {
		t.Fatalf("post-recovery create: status %d", st)
	}
	if fresh.ID == info.ID || fresh.ID == closed.ID {
		t.Fatalf("post-recovery ID %q collides with a journaled ID", fresh.ID)
	}

	// Post-recovery steps continue the uninterrupted reference bit-for-bit.
	for i := cut; i < total; i++ {
		var got oic.StepResult
		if st := cB.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: stepW(i)}, &got); st != http.StatusOK {
			t.Fatalf("recovered step %d: status %d", i, st)
		}
		want := refResults[i]
		if got.T != want.T || got.Ran != want.Ran || !bitsEq(got.U, want.U) || !bitsEq(got.X, want.X) {
			t.Fatalf("recovered step %d = %+v, want %+v", i, got, want)
		}
	}
	srvB.Close()
}

// TestJournalRecoveryFleet round-trips a fleet — create-time admits, ticks
// with per-member disturbances, a live admit, an evict — through a crash
// and verifies recovered member states bit-for-bit.
func TestJournalRecoveryFleet(t *testing.T) {
	dir := t.TempDir()
	srvA, cA := journalServer(t, dir, Config{}, journal.SyncEveryTick)

	var fl oic.FleetInfo
	if st := cA.do("POST", "/v1/fleets",
		oic.CreateFleetRequest{Plant: "acc", ComputeBudget: 2, Size: 4, Seed: 11}, &fl); st != http.StatusCreated {
		t.Fatalf("fleet create: status %d", st)
	}
	for i := 0; i < 6; i++ {
		ws := map[int][]float64{0: stepW(i), 2: stepW(i + 3)}
		if st := cA.do("POST", "/v1/fleets/"+fl.ID+"/tick", oic.FleetTickRequest{WS: ws}, nil); st != http.StatusOK {
			t.Fatalf("tick %d: status %d", i, st)
		}
	}
	var admitted oic.FleetMemberInfo
	if st := cA.do("POST", "/v1/fleets/"+fl.ID+"/sessions", oic.FleetAdmitRequest{Seed: 42}, &admitted); st != http.StatusCreated {
		t.Fatalf("admit: status %d", st)
	}
	if st := cA.do("DELETE", "/v1/fleets/"+fl.ID+"/sessions/1", nil, nil); st != http.StatusOK {
		t.Fatalf("evict: status %d", st)
	}
	if st := cA.do("POST", "/v1/fleets/"+fl.ID+"/tick", oic.FleetTickRequest{}, nil); st != http.StatusOK {
		t.Fatalf("final tick: status %d", st)
	}
	live := []int{0, 2, 3, admitted.ID}
	pre := map[int]oic.FleetMemberInfo{}
	for _, id := range live {
		var mi oic.FleetMemberInfo
		if st := cA.do("GET", "/v1/fleets/"+fl.ID+"/sessions/"+itoa(id), nil, &mi); st != http.StatusOK {
			t.Fatalf("member %d: status %d", id, st)
		}
		pre[id] = mi
	}
	srvA.Close() // crash: no close records

	srvB, cB := journalServer(t, dir, Config{}, journal.SyncEveryTick)
	run, err := srvB.BeginJournalRecovery(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fleets != 1 || rep.Members != len(live) || rep.Failed != 0 {
		t.Fatalf("recovery report %+v, want 1 fleet with %d live members", rep, len(live))
	}
	for _, id := range live {
		var mi oic.FleetMemberInfo
		if st := cB.do("GET", "/v1/fleets/"+fl.ID+"/sessions/"+itoa(id), nil, &mi); st != http.StatusOK {
			t.Fatalf("recovered member %d: status %d", id, st)
		}
		want := pre[id]
		if mi.T != want.T || !bitsEq(mi.X, want.X) || mi.Skips != want.Skips ||
			mi.Forced != want.Forced || mi.SkipBudget != want.SkipBudget {
			t.Fatalf("recovered member %d = %+v, want %+v", id, mi, want)
		}
	}
	// The evicted member stays gone, and its ID is never reissued.
	if st := cB.do("GET", "/v1/fleets/"+fl.ID+"/sessions/1", nil, nil); st != http.StatusNotFound {
		t.Fatalf("evicted member resurrected")
	}
	var fresh oic.FleetMemberInfo
	if st := cB.do("POST", "/v1/fleets/"+fl.ID+"/sessions", oic.FleetAdmitRequest{Seed: 43}, &fresh); st != http.StatusCreated {
		t.Fatalf("post-recovery admit: status %d", st)
	}
	if fresh.ID != admitted.ID+1 {
		t.Fatalf("post-recovery member ID %d, want %d", fresh.ID, admitted.ID+1)
	}
	// Recovered fleets keep ticking, and their reports stay clean.
	var ticks oic.FleetTickResponse
	if st := cB.do("POST", "/v1/fleets/"+fl.ID+"/tick", oic.FleetTickRequest{Ticks: 3}, &ticks); st != http.StatusOK {
		t.Fatalf("post-recovery tick: status %d", st)
	}
	for _, rep := range ticks.Reports {
		if rep.Violations != 0 || len(rep.Errors) != 0 {
			t.Fatalf("post-recovery tick report %+v", rep)
		}
	}
	srvB.Close()
}

// TestShutdownFlushesJournal drives a buffered-policy journal (nothing
// synced per request) and verifies Close lands every acknowledged record
// durably on disk — with the session left open, not close-journaled, so
// it survives into the next recovery.
func TestShutdownFlushesJournal(t *testing.T) {
	dir := t.TempDir()
	srv, c := journalServer(t, dir, Config{}, journal.SyncNone)

	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc"}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	const steps = 9
	for i := 0; i < steps; i++ {
		if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: stepW(i)}, nil); st != http.StatusOK {
			t.Fatalf("step %d: status %d", i, st)
		}
	}
	srv.Close()

	rv, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Sessions) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(rv.Sessions))
	}
	st := rv.Sessions[0]
	if st.ID != info.ID || len(st.Steps) != steps {
		t.Fatalf("recovered %q with %d steps, want %q with %d", st.ID, len(st.Steps), info.ID, steps)
	}
	if st.Closed {
		t.Fatal("shutdown wrote a close record; live sessions must survive restarts")
	}
	if rv.TornTails != 0 {
		t.Fatalf("clean shutdown left %d torn tails", rv.TornTails)
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// bitsEq is the test-side exact float comparison.
func bitsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
