package server

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"oic/internal/journal"
	"oic/internal/obs"
	"oic/pkg/oic"
)

// Write-ahead journal wiring (DESIGN.md §10). With -journal-dir set, every
// durable state transition — session open, acknowledged step, close, and
// the fleet equivalents — is appended to an OICJ segment *before* the
// response leaves the server (the step hooks fire inside the session lock,
// ahead of the result). On restart, BeginJournalRecovery folds the journal
// back into live state: engines are rebuilt from the journaled config
// fingerprints (warm via the artifact store), every open session and fleet
// member is replayed to its head with bit-exact conformance checking
// (oic.ResumeSession / Fleet.ResumeMember), and /readyz holds 503 until
// the server again serves exactly what it had acknowledged.
//
// Journal append failures degrade durability, never availability: they are
// counted (oicd_journal_errors_total) and the request proceeds. A server
// shutdown closes the journal *without* writing close records, so live
// sessions survive restarts by design.

// errRecovering gates mutating creation endpoints while replay-to-head
// runs; clients retry after /readyz flips ready.
var errRecovering = errors.New("recovering sessions from journal; retry shortly")

// OpenJournal attaches a write-ahead journal. Call before serving traffic
// and after SetFaults (the injector threads into journal I/O). Recovery of
// a previous journal in the same directory is separate — BeginJournalRecovery —
// and safe in either order: the writer never reads old segments, and it
// opens a fresh segment lazily on first append.
func (s *Server) OpenJournal(opts journal.Options) error {
	if opts.Faults == nil {
		opts.Faults = s.faults
	}
	if opts.AppendHist == nil {
		opts.AppendHist = s.m.journalAppendHist
	}
	if opts.SyncHist == nil {
		opts.SyncHist = s.m.journalSyncHist
	}
	w, err := journal.OpenWriter(opts)
	if err != nil {
		return err
	}
	s.jw = w
	s.jopts = opts
	return nil
}

// JournalStats snapshots the journal writer's counters (zero value when
// no journal is attached).
func (s *Server) JournalStats() journal.WriterStats {
	if s.jw == nil {
		return journal.WriterStats{}
	}
	return s.jw.Stats()
}

// Recovering reports whether journal replay-to-head is still running.
func (s *Server) Recovering() bool { return s.recovering.Load() }

// journalAppend appends one record, counting (not failing on) errors.
func (s *Server) journalAppend(r *journal.Record) {
	if s.jw == nil {
		return
	}
	if err := s.jw.Append(r); err != nil {
		s.m.journalErrors.Add(1)
	}
}

// journalSyncRequest fsyncs at a request boundary under the per-tick
// policy (per-step syncs happen inside Append; the other policies manage
// themselves).
func (s *Server) journalSyncRequest() {
	if s.jw == nil || s.jopts.Policy != journal.SyncEveryTick {
		return
	}
	if err := s.jw.Sync(); err != nil {
		s.m.journalErrors.Add(1)
	}
}

// journalOpenSession writes the session-open record and installs the
// write-ahead step hook. Called with the ID reserved but before the first
// step can execute.
func (s *Server) journalOpenSession(id string, eng *oic.Engine, sess *oic.Session, x0 []float64) {
	if s.jw == nil {
		return
	}
	s.journalAppend(&journal.Record{
		Type: journal.TypeOpen, ID: id, Meta: eng.TraceMeta(),
		NX: eng.NX(), NU: eng.NU(), X0: x0,
	})
	s.hookSession(id, eng, sess)
}

// hookSession installs the step hook alone — recovery reuses it for
// resumed sessions, whose open records already live in the journal.
func (s *Server) hookSession(id string, eng *oic.Engine, sess *oic.Session) {
	if s.jw == nil {
		return
	}
	nx, nu := eng.NX(), eng.NU()
	sess.SetStepHook(func(ev oic.StepEvent) {
		s.journalAppend(&journal.Record{
			Type: journal.TypeStep, ID: id, NX: nx, NU: nu,
			Ran: ev.Ran, Forced: ev.Forced, Level: ev.Level,
			W: ev.W, U: ev.U, X: ev.X,
		})
	})
}

// journalImportSession journals a migrated-in session: the open record
// plus one step record per replayed prefix step, then the live hook. The
// source node's journal holds this history too, but it is unreachable
// from here (and may be destroyed) — an import is durable only if the
// whole episode lands in *this* node's journal before acknowledgment.
func (s *Server) journalImportSession(id string, eng *oic.Engine, sess *oic.Session, t *oic.Trace) {
	if s.jw == nil {
		return
	}
	nx, nu := eng.NX(), eng.NU()
	s.journalAppend(&journal.Record{
		Type: journal.TypeOpen, ID: id, Meta: eng.TraceMeta(),
		NX: nx, NU: nu, X0: t.X0,
	})
	for i := range t.Steps {
		st := &t.Steps[i]
		s.journalAppend(&journal.Record{
			Type: journal.TypeStep, ID: id, NX: nx, NU: nu,
			Ran: st.Ran, Forced: st.Forced, Level: st.Level,
			W: st.W, U: st.U, X: st.X,
		})
	}
	s.hookSession(id, eng, sess)
}

// journalImportMember journals a migrated-in fleet member: the admit
// record under its preserved ID plus its replayed prefix. The member
// step hook is already installed fleet-wide.
func (s *Server) journalImportMember(fleetID string, member int, eng *oic.Engine, t *oic.Trace) {
	if s.jw == nil {
		return
	}
	nx, nu := eng.NX(), eng.NU()
	s.journalAppend(&journal.Record{
		Type: journal.TypeFleetAdmit, ID: fleetID, Member: uint32(member), NX: nx, X0: t.X0,
	})
	for i := range t.Steps {
		st := &t.Steps[i]
		s.journalAppend(&journal.Record{
			Type: journal.TypeFleetStep, ID: fleetID, Member: uint32(member), NX: nx, NU: nu,
			Ran: st.Ran, Forced: st.Forced, Level: st.Level,
			W: st.W, U: st.U, X: st.X,
		})
	}
}

// journalCloseSession records a client delete or TTL eviction (never a
// shutdown — live sessions must survive restarts).
func (s *Server) journalCloseSession(id string) {
	if s.jw == nil {
		return
	}
	s.journalAppend(&journal.Record{Type: journal.TypeClose, ID: id})
}

// journalOpenFleet writes the fleet-open record plus one admit record per
// already-admitted member (create-time Size admissions), and installs the
// member step hook.
func (s *Server) journalOpenFleet(id string, eng *oic.Engine, f *oic.Fleet, x0s [][]float64) {
	if s.jw == nil {
		return
	}
	cfg := f.Config()
	nx, nu := eng.NX(), eng.NU()
	s.journalAppend(&journal.Record{
		Type: journal.TypeFleetOpen, ID: id, Meta: eng.TraceMeta(), NX: nx, NU: nu,
		Budget: cfg.ComputeBudget, Workers: cfg.Workers, MaxSessions: cfg.MaxSessions,
	})
	for i, x0 := range x0s {
		s.journalAppend(&journal.Record{
			Type: journal.TypeFleetAdmit, ID: id, Member: uint32(i), NX: nx, X0: x0,
		})
	}
	s.hookFleet(id, eng, f)
}

func (s *Server) hookFleet(id string, eng *oic.Engine, f *oic.Fleet) {
	if s.jw == nil {
		return
	}
	nx, nu := eng.NX(), eng.NU()
	f.SetStepHook(func(member int, ev oic.StepEvent) {
		s.journalAppend(&journal.Record{
			Type: journal.TypeFleetStep, ID: id, Member: uint32(member), NX: nx, NU: nu,
			Ran: ev.Ran, Forced: ev.Forced, Level: ev.Level,
			W: ev.W, U: ev.U, X: ev.X,
		})
	})
}

func (s *Server) journalAdmit(id string, member int, nx int, x0 []float64) {
	if s.jw == nil {
		return
	}
	s.journalAppend(&journal.Record{
		Type: journal.TypeFleetAdmit, ID: id, Member: uint32(member), NX: nx, X0: x0,
	})
}

func (s *Server) journalEvict(id string, member int) {
	if s.jw == nil {
		return
	}
	s.journalAppend(&journal.Record{Type: journal.TypeFleetEvict, ID: id, Member: uint32(member)})
}

func (s *Server) journalCloseFleet(id string) {
	if s.jw == nil {
		return
	}
	s.journalAppend(&journal.Record{Type: journal.TypeFleetClose, ID: id})
}

// RecoveryReport summarizes one journal replay-to-head.
type RecoveryReport struct {
	Sessions      int // sessions resumed live
	Fleets        int // fleets resumed live
	Members       int // fleet members resumed live
	StepsReplayed int // total steps re-executed (and conformance-verified)
	Skipped       int // journaled objects seen closed/evicted — not resurrected
	Failed        int // objects that failed to resume (engine build or replay divergence)

	Segments  int // segment files read
	Records   int // records applied
	TornTails int // segments truncated at a torn or corrupt tail
	Orphans   int // records referencing unknown ids
}

// BeginJournalRecovery flips the server into the recovering state
// (readyz 503, creation endpoints 503) and returns the closure that
// replays the journal at dir to its head; run it on a background
// goroutine and let it flip readiness back when done. Split this way —
// mirroring BeginPreload — so callers observe 503 from the moment the
// server is constructed, with no startup race window.
//
// Resumed objects keep their pre-crash IDs; the ID counters advance past
// every journaled ID (including closed ones) so post-recovery creations
// never collide.
func (s *Server) BeginJournalRecovery(dir string) (run func() (RecoveryReport, error), err error) {
	if dir == "" {
		return nil, fmt.Errorf("server: journal recovery requires a journal directory")
	}
	s.recovering.Store(true)
	return func() (RecoveryReport, error) {
		defer s.recovering.Store(false)
		var rep RecoveryReport
		// Recovery is phase-timed: scan (read + validate segments),
		// rebuild (materialize every distinct engine, warm via the
		// artifact store), replay (resume each object to its head). The
		// span lands in /v1/debug/ops and each phase in
		// oicd_recovery_phase_seconds, so a slow boot is attributable.
		span := obs.StartSpan("recovery", dir, "", s.ops, s.m.recoveryPhases)
		span.Phase("scan")
		rv, err := journal.Recover(dir)
		if err != nil {
			span.End(err)
			s.log.Error("journal recovery failed", "dir", dir, "error", err)
			return rep, err
		}
		rv.SortMembers()
		rep.Segments, rep.Records = rv.Segments, rv.Records
		rep.TornTails, rep.Orphans = rv.TornTails, rv.Orphans
		s.m.journalTornTails.Store(int64(rv.TornTails))
		s.m.journalOrphans.Store(int64(rv.Orphans))

		// Rebuild: prefetch every distinct engine configuration once,
		// single-flight through the engine cache, so the replay phase
		// below measures replay work, not engine construction.
		span.Phase("rebuild")
		seen := map[string]bool{}
		prefetch := func(cfg oic.Config) {
			cfg = cfg.Canonical()
			if key := cfg.Fingerprint(); !seen[key] {
				seen[key] = true
				_, _ = s.engine(cfg)
			}
		}
		for _, st := range rv.Sessions {
			if !st.Closed {
				prefetch(oic.ConfigFromTrace(st.Trace()))
			}
		}
		for _, fs := range rv.Fleets {
			if !fs.Closed {
				prefetch(fleetRecoveryConfig(fs))
			}
		}

		span.Phase("replay")
		var maxSID, maxFID uint64
		for _, st := range rv.Sessions {
			if n, ok := numericID(st.ID, "s-"); ok && n > maxSID {
				maxSID = n
			}
			if st.Closed {
				rep.Skipped++
				continue
			}
			if s.resumeSession(st) {
				rep.Sessions++
				rep.StepsReplayed += len(st.Steps)
			} else {
				rep.Failed++
			}
		}
		for _, fs := range rv.Fleets {
			if n, ok := numericID(fs.ID, "f-"); ok && n > maxFID {
				maxFID = n
			}
			if fs.Closed {
				rep.Skipped++
				continue
			}
			s.resumeFleet(fs, &rep)
		}
		s.mu.Lock()
		if maxSID > s.nextID {
			s.nextID = maxSID
		}
		if maxFID > s.nextFleetID {
			s.nextFleetID = maxFID
		}
		s.mu.Unlock()
		s.m.recoveredSessions.Store(int64(rep.Sessions))
		s.m.recoveredFleets.Store(int64(rep.Fleets))
		s.m.recoveredMembers.Store(int64(rep.Members))
		s.m.recoveredSteps.Store(int64(rep.StepsReplayed))
		s.m.recoveryFailed.Store(int64(rep.Failed))
		span.End(nil)
		s.log.Info("journal recovery complete",
			"dir", dir, "sessions", rep.Sessions, "fleets", rep.Fleets,
			"members", rep.Members, "steps_replayed", rep.StepsReplayed,
			"skipped", rep.Skipped, "failed", rep.Failed,
			"torn_tails", rep.TornTails, "orphans", rep.Orphans)
		return rep, nil
	}, nil
}

// fleetRecoveryConfig is the engine configuration a journaled fleet
// resumes under (shared with resumeFleet).
func fleetRecoveryConfig(fs *journal.FleetState) oic.Config {
	return oic.Config{
		Plant: fs.Meta.Plant, Scenario: fs.Meta.Scenario, Policy: fs.Meta.Policy,
		Memory: fs.Meta.Memory,
		Train: oic.TrainConfig{
			Episodes: fs.Meta.TrainEpisodes, Steps: fs.Meta.TrainSteps, Seed: fs.Meta.TrainSeed,
		},
	}
}

// resumeSession rebuilds one journaled session at its head. Recovered
// sessions always record their episode (the journal held the complete
// history anyway), capped like any traced session.
func (s *Server) resumeSession(st *journal.SessionState) bool {
	t := st.Trace()
	eng, err := s.engine(oic.ConfigFromTrace(t))
	if err != nil {
		return false
	}
	sess, err := eng.ResumeSession(t, oic.ResumeOptions{Trace: true, TraceLimit: s.cfg.TraceLimit})
	if err != nil {
		return false
	}
	se := &session{id: st.ID, s: sess}
	s.touch(se)
	// Hook before publishing: once the id is in s.sessions it is
	// steppable, and a step landing before the hook is installed would be
	// acknowledged without being journaled. (The open record already lives
	// in the journal being recovered; a hook on a session we then discard
	// never fires.)
	s.hookSession(st.ID, eng, sess)
	s.mu.Lock()
	_, exists := s.sessions[st.ID]
	full := len(s.sessions) >= s.cfg.MaxSessions
	if !exists && !full {
		s.sessions[st.ID] = se
	}
	s.mu.Unlock()
	if exists || full {
		sess.Close()
		return false
	}
	return true
}

// resumeFleet rebuilds one journaled fleet: same scheduler shape, every
// live member replayed to head under its old ID, evicted IDs reserved.
func (s *Server) resumeFleet(fs *journal.FleetState, rep *RecoveryReport) {
	eng, err := s.engine(fleetRecoveryConfig(fs))
	if err != nil {
		rep.Failed++
		return
	}
	f, err := eng.NewFleet(oic.FleetConfig{
		ComputeBudget: fs.Budget, Workers: fs.Workers, MaxSessions: fs.MaxSessions,
		Trace: true, TraceLimit: s.cfg.TraceLimit,
	})
	if err != nil {
		rep.Failed++
		return
	}
	next := 0
	for _, m := range fs.Members {
		if int(m.Member)+1 > next {
			next = int(m.Member) + 1
		}
		if m.Evicted {
			rep.Skipped++
			continue
		}
		if err := f.ResumeMember(int(m.Member), fs.Trace(m)); err != nil {
			rep.Failed++
			continue
		}
		rep.Members++
		rep.StepsReplayed += len(m.Steps)
	}
	f.ReserveMemberIDs(next)

	fe := &fleetEntry{id: fs.ID, f: f, eng: eng}
	s.touch(fe)
	s.mu.Lock()
	_, exists := s.fleets[fs.ID]
	full := len(s.fleets) >= s.cfg.MaxFleets
	if !exists && !full {
		s.fleets[fs.ID] = fe
	}
	s.mu.Unlock()
	if exists || full {
		f.Close()
		rep.Failed++
		return
	}
	s.hookFleet(fs.ID, eng, f)
	rep.Fleets++
}

// numericID parses the numeric suffix of a server-issued "s-N"/"f-N" id.
func numericID(id, prefix string) (uint64, bool) {
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.ParseUint(id[len(prefix):], 10, 64)
	return n, err == nil
}
