// Package server implements oicd, the long-running HTTP/JSON session
// server over the pkg/oic facade (DESIGN.md §6). It exposes the runtime
// monitor as a service: clients open control sessions against registered
// plants and stream states in, one step (or a batch of steps) per request.
//
//	POST   /v1/sessions           create a session (engine cached per config)
//	GET    /v1/sessions/{id}      session snapshot
//	POST   /v1/sessions/{id}/step advance: {"w": [...]} or {"ws": [[...], ...]}
//	DELETE /v1/sessions/{id}      close the session, recycle its workspace
//	GET    /v1/plants             plant + scenario catalogue
//	GET    /healthz               liveness + basic stats (always 200 while serving)
//	GET    /readyz                readiness (503 while preloading or recovering)
//	GET    /metrics               Prometheus text format
//
// Artifact sharing: engines (safety sets, compiled LP, trained policy)
// are cached per configuration and shared by every session; session
// workspaces are pooled inside each engine. Sessions idle longer than the
// TTL are evicted by a janitor so abandoned clients cannot pin memory.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oic/internal/fault"
	"oic/internal/journal"
	"oic/internal/obs"
	"oic/pkg/oic"
)

// Config tunes the server. The zero value serves with 15-minute session
// TTL and a 4096-session cap.
type Config struct {
	// SessionTTL evicts sessions idle longer than this; ≤ 0 means 15m.
	SessionTTL time.Duration
	// MaxSessions rejects new sessions beyond this live count; ≤ 0 means 4096.
	MaxSessions int
	// MaxEngines rejects session configurations beyond this many cached
	// engines; ≤ 0 means 64. Engines are expensive (set compilation, DRL
	// training) and cached for the server's lifetime, so the cap bounds
	// what client-controlled configuration space can pin.
	MaxEngines int
	// MaxFleets rejects new fleets beyond this live count; ≤ 0 means 16.
	// A fleet can hold thousands of pooled sessions, so the cap is much
	// smaller than MaxSessions.
	MaxFleets int
	// RequestTimeout bounds each request's handling time: on expiry the
	// request context cancels and the response is 503 {"code":"deadline"} —
	// distinct from 499, which is reserved for the client going away.
	// ≤ 0 disables (the http.Server read/write timeouts still apply).
	RequestTimeout time.Duration
	// TraceLimit caps a traced or imported session's episode length; past
	// it, steps fail with 409 trace_limit instead of growing server memory
	// without bound. ≤ 0 means the default (maxTraceSteps, 100k).
	TraceLimit int
	// ElasticDefaults (the oicd -elastic flag) opts every fleet created
	// with a tick deadline and a finite compute budget — but no explicit
	// elastic config — into the elastic-budget controller with derived
	// bounds: [budget/4, budget×4] regulating to TickDeadline/5. An
	// explicit CreateFleetRequest.Elastic always wins.
	ElasticDefaults bool
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// Logger receives structured request/operation logs; nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.MaxEngines <= 0 {
		c.MaxEngines = 64
	}
	if c.MaxFleets <= 0 {
		c.MaxFleets = 16
	}
	if c.TraceLimit <= 0 {
		c.TraceLimit = maxTraceSteps
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// engineSlot caches one engine per configuration; the once gate makes
// expensive construction (set compilation, DRL training) single-flight.
type engineSlot struct {
	once sync.Once
	eng  *oic.Engine
	err  error
}

// touchable carries the TTL janitor's last-use stamp; embed it in every
// evictable server object.
type touchable struct {
	lastUsed atomic.Int64 // unix nanos of the last touch
}

func (t *touchable) stamp(ns int64) { t.lastUsed.Store(ns) }

// session is one live server-side session.
type session struct {
	id string
	s  *oic.Session
	touchable
}

// Server is the oicd request handler plus its session and engine state.
type Server struct {
	cfg Config

	mu          sync.Mutex
	engines     map[string]*engineSlot
	sessions    map[string]*session
	fleets      map[string]*fleetEntry
	nextID      uint64
	nextFleetID uint64

	m metrics

	// store is the optional on-disk artifact catalogue (OpenArtifactStore);
	// nil means every engine is built in-process. preloading gates /readyz
	// readiness while BeginPreload materializes the catalogue.
	store      *oic.ArtifactStore
	preloading atomic.Bool

	// jw is the optional write-ahead journal (OpenJournal); recovering
	// gates /readyz and the creation endpoints while BeginJournalRecovery
	// replays a previous journal to head.
	jw         *journal.Writer
	jopts      journal.Options
	recovering atomic.Bool

	// faults is the optional deterministic fault injector (SetFaults),
	// threaded into the artifact store, the journal, and every fleet.
	faults *fault.Injector

	stopJanitor chan struct{}
	janitorWG   sync.WaitGroup

	// log is the structured logger (never nil — NopLogger by default);
	// ops retains recent multi-phase operation spans for /v1/debug/ops.
	log *slog.Logger
	ops *obs.SpanRing
}

// New returns a server; call Handler for its http.Handler and Close on
// shutdown.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		engines:  map[string]*engineSlot{},
		sessions: map[string]*session{},
		fleets:   map[string]*fleetEntry{},
		ops:      obs.NewSpanRing(64),
	}
	s.log = s.cfg.Logger.With("component", "oicd")
	s.m.initHists()
	return s
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/plants", s.handlePlants)
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("POST /v1/sessions/resume", s.handleSessionResume)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	mux.HandleFunc("GET /v1/sessions/{id}/trace", s.handleSessionTrace)
	mux.HandleFunc("POST /v1/sessions/{id}/freeze", s.handleSessionFreeze)
	mux.HandleFunc("POST /v1/sessions/{id}/unfreeze", s.handleSessionUnfreeze)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/replay", s.handleReplay)
	mux.HandleFunc("POST /v1/fleets", s.handleFleetCreate)
	mux.HandleFunc("GET /v1/fleets/{id}", s.handleFleetGet)
	mux.HandleFunc("DELETE /v1/fleets/{id}", s.handleFleetDelete)
	mux.HandleFunc("POST /v1/fleets/{id}/tick", s.handleFleetTick)
	mux.HandleFunc("POST /v1/fleets/{id}/sessions", s.handleFleetAdmit)
	mux.HandleFunc("POST /v1/fleets/{id}/sessions/resume", s.handleFleetMemberResume)
	mux.HandleFunc("GET /v1/fleets/{id}/sessions/{mid}", s.handleFleetMemberGet)
	mux.HandleFunc("GET /v1/fleets/{id}/sessions/{mid}/trace", s.handleFleetMemberTrace)
	mux.HandleFunc("DELETE /v1/fleets/{id}/sessions/{mid}", s.handleFleetMemberDelete)
	mux.HandleFunc("GET /v1/debug/ops", s.handleDebugOps)
	var h http.Handler = mux
	if s.cfg.RequestTimeout > 0 {
		h = s.withRequestTimeout(h)
	}
	// Trace middleware goes outermost so every handler (and the timeout
	// wrapper's context) sees the request's trace ID.
	return s.withTrace(h)
}

// withTrace adopts the caller's X-Oic-Trace-Id (minted by oicd-router on
// proxied calls) or mints one for direct hits, attaches it to the request
// context and the response header, and logs request completion with it so
// one trace ID correlates router and shard logs.
func (s *Server) withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.TraceHeader)
		if id == "" {
			id = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(obs.WithTraceID(r.Context(), id)))
		s.log.Debug("request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "elapsed", time.Since(start), "trace_id", id)
	})
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// handleDebugOps serves the recent multi-phase operation spans (newest
// first): migrations landed here, failover landings, boot recovery.
func (s *Server) handleDebugOps(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"spans": s.ops.Snapshot()})
}

// withRequestTimeout bounds each request's context. Handlers that respect
// the context (stepping, ticking) observe context.DeadlineExceeded and map
// it to 503 "deadline"; a client disconnect still cancels with
// context.Canceled and maps to 499 — the two exits stay distinguishable.
func (s *Server) withRequestTimeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// SetFaults installs (or clears, with nil) the deterministic fault
// injector on every faultable subsystem the server owns: artifact-store
// I/O, journal I/O (applied at OpenJournal), and fleet schedulers
// (applied at fleet creation). Call before serving traffic.
func (s *Server) SetFaults(inj *fault.Injector) {
	s.faults = inj
	if s.store != nil {
		s.store.SetFaults(inj)
	}
}

// StartJanitor launches the TTL eviction loop; Close stops it.
func (s *Server) StartJanitor() {
	interval := s.cfg.SessionTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	s.stopJanitor = make(chan struct{})
	s.janitorWG.Add(1)
	go func() {
		defer s.janitorWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.EvictIdle()
			case <-s.stopJanitor:
				return
			}
		}
	}()
}

// SessionCount reports the number of live sessions — an observability
// hook for cluster tests and operators (the /metrics gauge is the
// scrape-path equivalent).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Close shuts the server down in durability order: flush and close the
// journal first (the caller has already drained HTTP, so every
// acknowledged step is in the buffer and must reach disk), then stop the
// TTL janitor, then release every live session and fleet WITHOUT writing
// close records — a shutdown is not a close, and the journal's open
// sessions must survive into the next process's recovery.
func (s *Server) Close() {
	if s.jw != nil {
		if err := s.jw.Close(); err != nil {
			s.m.journalErrors.Add(1)
		}
	}
	if s.stopJanitor != nil {
		close(s.stopJanitor)
		s.janitorWG.Wait()
		s.stopJanitor = nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, se := range s.sessions {
		se.s.Close()
		delete(s.sessions, id)
	}
	for id, fe := range s.fleets {
		fe.f.Close()
		delete(s.fleets, id)
	}
}

// EvictIdle closes and removes every session and fleet idle longer than
// the TTL, returning how many objects were evicted. The janitor calls it
// periodically; tests call it directly.
func (s *Server) EvictIdle() int {
	deadline := s.cfg.Now().Add(-s.cfg.SessionTTL).UnixNano()
	s.mu.Lock()
	var victims []*session
	for id, se := range s.sessions {
		if se.lastUsed.Load() < deadline {
			victims = append(victims, se)
			delete(s.sessions, id)
		}
	}
	var fleetVictims []*fleetEntry
	for id, fe := range s.fleets {
		if fe.lastUsed.Load() < deadline {
			fleetVictims = append(fleetVictims, fe)
			delete(s.fleets, id)
		}
	}
	s.mu.Unlock()
	for _, se := range victims {
		se.s.Close()
		s.journalCloseSession(se.id)
		s.m.sessionsEvicted.Add(1)
	}
	for _, fe := range fleetVictims {
		fe.f.Close()
		s.journalCloseFleet(fe.id)
		s.m.fleetsEvicted.Add(1)
	}
	if len(victims)+len(fleetVictims) > 0 {
		s.journalSyncRequest()
	}
	return len(victims) + len(fleetVictims)
}

// Bounds on client-controlled construction cost: the counts caps
// (MaxSessions/MaxEngines) bound how many objects exist, these bound how
// expensive a single one may be (disturbance-ring size, training work).
const (
	maxMemory        = 64
	maxTrainEpisodes = 20000
	maxTrainSteps    = 20000
	// maxTrainTotal bounds episodes × steps — the actual training work,
	// which runs synchronously inside the first create for a config. 1M
	// steps is ~2× the paper's full scale (500 × 1000) and tens of
	// seconds of CPU; anything larger belongs in an offline pipeline, not
	// a serving request.
	maxTrainTotal = 1_000_000
)

// validateCreate rejects requests whose per-object cost is unbounded.
func validateCreate(req *oic.CreateSessionRequest) error {
	if req.Memory < 0 || req.Memory > maxMemory {
		return badRequest(fmt.Sprintf("memory %d outside [0, %d]", req.Memory, maxMemory))
	}
	if req.Train.Episodes < 0 || req.Train.Episodes > maxTrainEpisodes {
		return badRequest(fmt.Sprintf("train.episodes %d outside [0, %d]", req.Train.Episodes, maxTrainEpisodes))
	}
	if req.Train.Steps < 0 || req.Train.Steps > maxTrainSteps {
		return badRequest(fmt.Sprintf("train.steps %d outside [0, %d]", req.Train.Steps, maxTrainSteps))
	}
	if total := req.Train.Episodes * req.Train.Steps; total > maxTrainTotal {
		return badRequest(fmt.Sprintf("train.episodes × train.steps = %d exceeds %d total training steps", total, maxTrainTotal))
	}
	return nil
}

// engine returns the cached engine for cfg, building it on first use.
// Configs canonicalize (oic.Config.Canonical) so semantically identical
// requests share one cache slot, and the cache key is the same
// fingerprint the artifact store is addressed by: a store hit restores
// the engine from disk instead of recompiling sets and retraining.
func (s *Server) engine(cfg oic.Config) (*oic.Engine, error) {
	cfg = cfg.Canonical()
	key := cfg.Fingerprint()
	s.mu.Lock()
	slot, ok := s.engines[key]
	if !ok {
		if len(s.engines) >= s.cfg.MaxEngines {
			s.mu.Unlock()
			return nil, errEngineCapacity
		}
		slot = &engineSlot{}
		s.engines[key] = slot
	}
	s.mu.Unlock()
	slot.once.Do(func() {
		if eng, ok := s.loadFromStore(key); ok {
			slot.eng = eng
			return
		}
		slot.eng, slot.err = oic.NewEngine(cfg)
		if slot.err == nil {
			s.m.enginesBuilt.Add(1)
			s.writeBack(key, slot.eng)
		}
	})
	if slot.err != nil {
		// Drop failed slots so a later, corrected registry state (or a
		// transient failure) is not cached forever.
		s.mu.Lock()
		if s.engines[key] == slot {
			delete(s.engines, key)
		}
		s.mu.Unlock()
	}
	return slot.eng, slot.err
}

func (s *Server) touch(t interface{ stamp(int64) }) { t.stamp(s.cfg.Now().UnixNano()) }

func (s *Server) lookup(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.sessions[id]
	return se, ok
}

// ---- handlers ----

// handleHealthz is pure liveness: a 200 means the process is up and
// serving HTTP, nothing more. Cluster supervisors key kill decisions on
// this — a node that is preloading or recovering is *alive* and must not
// be restarted, so those states appear in the body but never change the
// status. Route traffic on /readyz instead.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	live := len(s.sessions)
	engines := len(s.engines)
	fleets := len(s.fleets)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"preloading": s.preloading.Load(),
		"recovering": s.recovering.Load(),
		"sessions":   live,
		"engines":    engines,
		"fleets":     fleets,
	})
}

// handleReadyz is readiness: 503 while the server cannot yet serve
// correct answers — during -preload (the artifact catalogue is still
// materializing) and during journal recovery (the server must not serve
// until it again holds exactly the state it had acknowledged before the
// crash). Load balancers and the oicd-router hold traffic on 503 here
// without concluding the node is dead.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	live := len(s.sessions)
	engines := len(s.engines)
	fleets := len(s.fleets)
	s.mu.Unlock()
	body := map[string]any{
		"ok":       true,
		"sessions": live,
		"engines":  engines,
		"fleets":   fleets,
	}
	switch {
	case s.preloading.Load():
		body["ok"] = false
		body["preloading"] = true
		writeJSON(w, http.StatusServiceUnavailable, body)
	case s.recovering.Load():
		body["ok"] = false
		body["recovering"] = true
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		writeJSON(w, http.StatusOK, body)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	live := len(s.sessions)
	engines := len(s.engines)
	entries := make([]*fleetEntry, 0, len(s.fleets))
	for _, fe := range s.fleets {
		entries = append(entries, fe)
	}
	s.mu.Unlock()
	// Serve each fleet's last *published* stats snapshot (stored by the
	// operation that completed it) rather than calling Stats() here: a
	// scrape-time Stats() would block on a fleet mutex held for the whole
	// duration of an in-flight tick, and two concurrently ticking fleets
	// would interleave mid-tick cuts into one scrape. The published
	// snapshots are lock-free to read and each is internally consistent.
	// Stable ID order keeps the scrape diffable.
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	gauges := make([]fleetGauge, len(entries))
	for i, fe := range entries {
		gauges[i] = fleetGauge{id: fe.id, stats: fe.snapshotStats()}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.render(w, live, engines, gauges, s.ArtifactStats(), s.JournalStats())
}

func (s *Server) handlePlants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"plants": oic.Plants()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		s.fail(w, errRecovering)
		return
	}
	var req oic.CreateSessionRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if req.Plant == "" {
		s.fail(w, badRequest("missing plant"))
		return
	}
	if err := validateCreate(&req); err != nil {
		s.fail(w, err)
		return
	}
	eng, err := s.engine(oic.Config{
		Plant: req.Plant, Scenario: req.Scenario, Policy: req.Policy,
		Memory: req.Memory, Train: req.Train,
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	x0 := req.X0
	if x0 == nil {
		xs, err := eng.SampleInitialStates(req.Seed, 1)
		if err != nil {
			s.fail(w, fmt.Errorf("sampling initial state: %w", err))
			return
		}
		if len(xs) == 0 {
			s.fail(w, errors.New("sampling initial state: empty sample from X'"))
			return
		}
		x0 = xs[0]
	}

	sess, err := eng.NewSession(x0)
	if err != nil {
		s.fail(w, err)
		return
	}
	if req.Trace {
		// The session is fresh (t = 0), so StartTrace cannot be late; the
		// cap keeps a hostile client from growing a recording unboundedly.
		if err := sess.StartTrace(s.cfg.TraceLimit); err != nil {
			sess.Close()
			s.fail(w, err)
			return
		}
	}
	// Capacity check and insert share one critical section, so concurrent
	// creates cannot overshoot the cap between check and insert.
	se := &session{s: sess}
	s.touch(se)
	s.mu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		sess.Close()
		s.fail(w, errCapacity)
		return
	}
	s.nextID++
	id := fmt.Sprintf("s-%d", s.nextID)
	se.id = id
	s.sessions[id] = se
	s.mu.Unlock()
	s.m.sessionsCreated.Add(1)
	// Write-ahead: the open record and step hook are in place before the
	// create response (and so before any step) can be acknowledged.
	s.journalOpenSession(id, eng, sess, x0)
	s.journalSyncRequest()

	info := sess.Info()
	info.ID = id
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	se, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	s.touch(se)
	info := se.s.Info()
	info.ID = se.id
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	se, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	info := se.s.Info()
	info.ID = se.id
	info.Closed = true
	se.s.Close()
	s.journalCloseSession(se.id)
	s.journalSyncRequest()
	s.m.sessionsClosed.Add(1)
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	se, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	var req oic.StepRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if req.W != nil && req.WS != nil {
		s.fail(w, badRequest(`set either "w" or "ws", not both`))
		return
	}
	s.touch(se)
	ctx := r.Context()

	if req.WS != nil {
		start := s.cfg.Now()
		results, err := se.s.StepMany(ctx, req.WS)
		s.observeSteps(results, start)
		// Under the per-tick policy the batch is the sync unit: all of it
		// reaches disk before any of it is acknowledged.
		s.journalSyncRequest()
		if err != nil {
			// Partial progress plus the terminal error, per-step shaped.
			results = append(results, oic.StepResult{Error: err.Error()})
			s.countStepError(err)
		}
		writeJSON(w, statusForStepErr(err), oic.StepResponse{Results: results})
		return
	}

	start := s.cfg.Now()
	res, err := se.s.Step(ctx, req.W)
	if err != nil {
		s.countStepError(err)
		s.fail(w, err)
		return
	}
	s.observeSteps([]oic.StepResult{res}, start)
	s.journalSyncRequest()
	writeJSON(w, http.StatusOK, res)
}

// countStepError increments the error counter, except for client-side
// cancellations — a dropped connection is not a serving failure and must
// not inflate the error-rate metric.
func (s *Server) countStepError(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	s.m.stepErrors.Add(1)
}

// observeSteps folds executed steps into the step/skip/latency counters.
func (s *Server) observeSteps(results []oic.StepResult, start time.Time) {
	if len(results) == 0 {
		return
	}
	elapsed := s.cfg.Now().Sub(start)
	s.m.steps.Add(int64(len(results)))
	s.m.stepHist.Observe(elapsed.Seconds())
	var skips, forced int64
	for _, r := range results {
		if r.Error != "" {
			continue
		}
		if !r.Ran {
			skips++
		}
		if r.Forced {
			forced++
		}
	}
	s.m.skips.Add(skips)
	s.m.forced.Add(forced)
}

// ---- error mapping and JSON plumbing ----

var (
	errNotFound       = errors.New("session not found")
	errCapacity       = errors.New("session capacity reached")
	errEngineCapacity = errors.New("engine cache capacity reached (too many distinct configurations)")
)

type badRequestErr string

func badRequest(msg string) error     { return badRequestErr(msg) }
func (e badRequestErr) Error() string { return string(e) }

// statusAndCode maps API errors to HTTP status + wire code.
func statusAndCode(err error) (int, string) {
	var br badRequestErr
	switch {
	case errors.Is(err, errNotFound), errors.Is(err, oic.ErrUnknownPlant),
		errors.Is(err, oic.ErrUnknownScenario), errors.Is(err, oic.ErrUnknownMember):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, errCapacity), errors.Is(err, errEngineCapacity),
		errors.Is(err, errFleetCapacity), errors.Is(err, oic.ErrFleetFull):
		return http.StatusTooManyRequests, "capacity"
	case errors.Is(err, oic.ErrFleetOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, oic.ErrFleetClosed):
		return http.StatusGone, "fleet_closed"
	case errors.Is(err, errRecovering):
		// Journal recovery is replaying to head; the client should retry
		// once /readyz flips ready.
		return http.StatusServiceUnavailable, "recovering"
	case errors.Is(err, context.Canceled):
		// Client went away mid-step: not a server error. 499 is nginx's
		// "client closed request" convention.
		return 499, "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		// The server's own -request-timeout expired: a retryable server
		// condition (503), distinct from the 499 client-cancel above.
		return http.StatusServiceUnavailable, "deadline"
	case errors.Is(err, oic.ErrSessionClosed):
		return http.StatusGone, "session_closed"
	case errors.Is(err, oic.ErrSessionFrozen):
		// A migration handoff is in flight; the step may be retried — the
		// router repoints ownership once the target verifies.
		return http.StatusConflict, "frozen"
	case errors.Is(err, oic.ErrResumeMismatch):
		// The imported episode did not replay bit-for-bit; the session
		// must not serve.
		return http.StatusConflict, "resume_mismatch"
	case errors.Is(err, oic.ErrNotTracing):
		return http.StatusConflict, "not_tracing"
	case errors.Is(err, oic.ErrTraceLimit):
		return http.StatusConflict, "trace_limit"
	case errors.Is(err, oic.ErrTraceMismatch):
		return http.StatusBadRequest, "trace_mismatch"
	case errors.Is(err, oic.ErrUnsafe):
		return http.StatusUnprocessableEntity, "unsafe"
	case errors.Is(err, oic.ErrInfeasible):
		return http.StatusUnprocessableEntity, "infeasible"
	case errors.As(err, &br), errors.Is(err, oic.ErrBadDimension), errors.Is(err, oic.ErrUnknownPolicy),
		errors.Is(err, oic.ErrBadConfig):
		return http.StatusBadRequest, "bad_request"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// statusForStepErr keeps batch responses 200 on success and maps the
// terminal error otherwise (the body still carries partial results).
func statusForStepErr(err error) int {
	if err == nil {
		return http.StatusOK
	}
	st, _ := statusAndCode(err)
	return st
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	st, code := statusAndCode(err)
	// The trace middleware stamped the response header before the handler
	// ran; echoing it here puts the trace ID in every error body without
	// threading a context through every fail call site.
	writeJSON(w, st, oic.ErrorResponse{
		Error: err.Error(), Code: code,
		TraceID: w.Header().Get(obs.TraceHeader),
	})
}

func decodeJSON(r *http.Request, dst any) error {
	if r.Body == nil || r.ContentLength == 0 {
		return nil // empty body = zero-value request
	}
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	if err := dec.Decode(dst); err != nil {
		return badRequest("invalid JSON: " + strings.SplitN(err.Error(), "\n", 2)[0])
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
