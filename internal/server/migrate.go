package server

import (
	"fmt"
	"net/http"

	"oic/pkg/oic"
)

// Migration endpoints: the node-side half of the cluster drain protocol
// (DESIGN.md §11). A live migration is "record, ship, replay": the router
// freezes the source session, exports its recorded episode
// (GET /v1/sessions/{id}/trace?format=binary), imports it on the target
// via the resume endpoint below — which replays it to head with the same
// bit-exact conformance check journal recovery uses — and repoints
// ownership once the successor state verifies.
//
//	POST /v1/sessions/{id}/freeze          quiesce for handoff (steps 409 frozen)
//	POST /v1/sessions/{id}/unfreeze        abort the handoff, resume stepping
//	POST /v1/sessions/resume               import an exported episode as a live session
//	POST /v1/fleets/{id}/sessions/resume   import one member episode under its old ID
//	GET  /v1/fleets/{id}/sessions/{mid}/trace  export one member episode

// handleSessionFreeze quiesces a session for migration. The returned
// snapshot is the state the migration target must reproduce bit-for-bit;
// reads (GET, trace export) keep serving while frozen, so the episode
// copy cannot race a step.
func (s *Server) handleSessionFreeze(w http.ResponseWriter, r *http.Request) {
	se, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	s.touch(se)
	info, err := se.s.Freeze()
	if err != nil {
		s.fail(w, err)
		return
	}
	s.m.sessionsFrozen.Add(1)
	info.ID = se.id
	writeJSON(w, http.StatusOK, info)
}

// handleSessionUnfreeze is the abort path of a handoff: the migration
// failed verification (or the operator changed their mind), so the
// source resumes serving.
func (s *Server) handleSessionUnfreeze(w http.ResponseWriter, r *http.Request) {
	se, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	s.touch(se)
	if err := se.s.Unfreeze(); err != nil {
		s.fail(w, err)
		return
	}
	info := se.s.Info()
	info.ID = se.id
	writeJSON(w, http.StatusOK, info)
}

// resolveResumeTrace extracts, decodes, and validates the episode of a
// resume request, enforcing the same cost caps as session creation (the
// import may build the trace's engine).
func (s *Server) resolveResumeTrace(tr *oic.Trace, bin []byte) (*oic.Trace, error) {
	if (tr == nil) == (len(bin) == 0) {
		return nil, badRequest(`set exactly one of "trace" or "trace_bin"`)
	}
	if tr == nil {
		var err error
		if tr, err = oic.DecodeTrace(bin); err != nil {
			return nil, badRequest("invalid binary trace: " + err.Error())
		}
	} else if err := tr.Validate(); err != nil {
		return nil, badRequest(err.Error())
	}
	if tr.Len() > s.cfg.TraceLimit {
		return nil, badRequest(fmt.Sprintf("trace has %d steps, limit %d", tr.Len(), s.cfg.TraceLimit))
	}
	cfg := oic.ConfigFromTrace(tr)
	sessReq := oic.CreateSessionRequest{
		Plant: cfg.Plant, Scenario: cfg.Scenario, Policy: cfg.Policy,
		Memory: cfg.Memory, Train: cfg.Train,
	}
	if err := validateCreate(&sessReq); err != nil {
		return nil, err
	}
	return tr, nil
}

// handleSessionResume imports an exported episode as a live session: the
// landing half of live migration and node failover. The engine comes
// from the trace's fingerprint through the per-configuration cache, the
// episode is replayed to head with bit-exact verification (any
// divergence is 409 resume_mismatch and nothing is registered), and the
// whole imported history is journaled before the response — so a crash
// right after a migration lands recovers the migrated session too.
func (s *Server) handleSessionResume(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		s.fail(w, errRecovering)
		return
	}
	var req oic.ResumeSessionRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	tr, err := s.resolveResumeTrace(req.Trace, req.TraceBin)
	if err != nil {
		s.fail(w, err)
		return
	}
	eng, err := s.engine(oic.ConfigFromTrace(tr))
	if err != nil {
		s.fail(w, err)
		return
	}
	sess, err := eng.ResumeSession(tr, oic.ResumeOptions{Trace: true, TraceLimit: s.cfg.TraceLimit})
	if err != nil {
		s.m.resumeMismatches.Add(1)
		s.fail(w, err)
		return
	}
	// Publish frozen: the id is steppable the moment it lands in
	// s.sessions, but the imported prefix is not journaled yet — a step
	// acknowledged in that window would be lost by a crash. Frozen, such a
	// step is refused (409, never executed, never acknowledged) until the
	// write-ahead records below are in place.
	if _, err := sess.Freeze(); err != nil {
		sess.Close()
		s.fail(w, err)
		return
	}
	se := &session{s: sess}
	s.touch(se)
	s.mu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		sess.Close()
		s.fail(w, errCapacity)
		return
	}
	s.nextID++
	id := fmt.Sprintf("s-%d", s.nextID)
	se.id = id
	s.sessions[id] = se
	s.mu.Unlock()
	s.m.sessionsResumed.Add(1)
	// Write-ahead: the open record AND the imported prefix land in this
	// node's journal before the import is acknowledged — the source node's
	// journal is not reachable from here (it may be dead).
	s.journalImportSession(id, eng, sess, tr)
	s.journalSyncRequest()
	if err := sess.Unfreeze(); err != nil {
		s.fail(w, err)
		return
	}

	info := sess.Info()
	info.ID = id
	writeJSON(w, http.StatusCreated, info)
}

// handleFleetMemberTrace exports one member's recorded episode, the
// fleet-side analogue of GET /v1/sessions/{id}/trace. 409 not_tracing
// unless the fleet was created with "trace": true.
func (s *Server) handleFleetMemberTrace(w http.ResponseWriter, r *http.Request) {
	fe, ok := s.lookupFleet(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	mid, err := s.fleetMemberID(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.touch(fe)
	tr, err := fe.f.MemberTrace(mid)
	if err != nil {
		s.fail(w, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		s.m.tracesServed.Add(1)
		writeJSON(w, http.StatusOK, oic.TraceResponse{ID: fmt.Sprintf("%s/%d", fe.id, mid), Trace: tr})
	case "binary":
		b, err := oic.EncodeTrace(tr)
		if err != nil {
			s.fail(w, err)
			return
		}
		s.m.tracesServed.Add(1)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(b)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
	default:
		s.fail(w, badRequest(fmt.Sprintf("unknown trace format %q (json|binary)", format)))
	}
}

// handleFleetMemberResume imports one exported member episode under its
// original fleet-local ID. The fleet refuses IDs it has already issued
// (live, evicted, or reserved) with 409 resume_mismatch — identity
// preservation is what makes member migration auditable, so a collision
// is a loud failure, never a silent renumber.
func (s *Server) handleFleetMemberResume(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		s.fail(w, errRecovering)
		return
	}
	fe, ok := s.lookupFleet(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	var req oic.FleetResumeMemberRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if req.Member < 0 {
		s.fail(w, badRequest("member id must be ≥ 0"))
		return
	}
	tr, err := s.resolveResumeTrace(req.Trace, req.TraceBin)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.touch(fe)
	if err := fe.f.ResumeMember(req.Member, tr); err != nil {
		s.m.resumeMismatches.Add(1)
		s.fail(w, err)
		return
	}
	s.m.membersResumed.Add(1)
	s.journalImportMember(fe.id, req.Member, fe.eng, tr)
	s.journalSyncRequest()
	fe.publishStats()
	info, err := fe.f.Member(req.Member)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}
