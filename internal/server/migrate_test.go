package server

import (
	"math"
	"net/http"
	"testing"

	"oic/pkg/oic"
)

// TestFreezeHandoff pins the node-side half of the drain protocol:
// freeze quiesces stepping (409 frozen) while reads and the trace export
// keep serving; unfreeze resumes exactly where the session stopped.
func TestFreezeHandoff(t *testing.T) {
	_, c := newTestServer(t, Config{})
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", Seed: 3, Trace: true}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	for range 5 {
		if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", nil, nil); st != http.StatusOK {
			t.Fatalf("step: status %d", st)
		}
	}

	var frozen oic.SessionInfo
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/freeze", nil, &frozen); st != http.StatusOK {
		t.Fatalf("freeze: status %d", st)
	}
	if !frozen.Frozen || frozen.T != 5 || frozen.ID != info.ID {
		t.Fatalf("frozen snapshot: %+v", frozen)
	}
	var er oic.ErrorResponse
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", nil, &er); st != http.StatusConflict || er.Code != "frozen" {
		t.Fatalf("step while frozen: status %d code %q, want 409 frozen", st, er.Code)
	}
	// Reads keep serving while frozen — the migration copies through them.
	var got oic.SessionInfo
	if st := c.do("GET", "/v1/sessions/"+info.ID, nil, &got); st != http.StatusOK || !got.Frozen {
		t.Fatalf("get while frozen: status %d, %+v", st, got)
	}
	var tr oic.TraceResponse
	if st := c.do("GET", "/v1/sessions/"+info.ID+"/trace", nil, &tr); st != http.StatusOK || tr.Trace.Len() != 5 {
		t.Fatalf("trace while frozen: status %d", st)
	}
	// Freeze is idempotent (a retried drain must not error)...
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/freeze", nil, nil); st != http.StatusOK {
		t.Fatalf("re-freeze: status %d", st)
	}
	// ...and unfreeze is the abort path: stepping resumes. (Fresh struct:
	// "frozen" is omitempty, so decoding over the old one would keep it.)
	var thawed oic.SessionInfo
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/unfreeze", nil, &thawed); st != http.StatusOK || thawed.Frozen {
		t.Fatalf("unfreeze: status %d, %+v", st, thawed)
	}
	var res oic.StepResult
	if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", nil, &res); st != http.StatusOK || res.T != 5 {
		t.Fatalf("step after unfreeze: status %d, %+v", st, res)
	}
}

// TestSessionResumeEndpoint: a clean import lands bit-exactly under a
// fresh ID; a tampered episode is rejected with 409 resume_mismatch and
// registers nothing.
func TestSessionResumeEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	var info oic.SessionInfo
	if st := c.do("POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", Seed: 11, Trace: true}, &info); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	for range 12 {
		if st := c.do("POST", "/v1/sessions/"+info.ID+"/step", nil, nil); st != http.StatusOK {
			t.Fatalf("step: status %d", st)
		}
	}
	var src oic.SessionInfo
	if st := c.do("GET", "/v1/sessions/"+info.ID, nil, &src); st != http.StatusOK {
		t.Fatalf("get: status %d", st)
	}
	var tr oic.TraceResponse
	if st := c.do("GET", "/v1/sessions/"+info.ID+"/trace", nil, &tr); st != http.StatusOK {
		t.Fatalf("trace: status %d", st)
	}

	var landed oic.SessionInfo
	if st := c.do("POST", "/v1/sessions/resume", oic.ResumeSessionRequest{Trace: tr.Trace}, &landed); st != http.StatusCreated {
		t.Fatalf("resume: status %d", st)
	}
	if landed.ID == info.ID || landed.T != src.T {
		t.Fatalf("landed: %+v, source %+v", landed, src)
	}
	for i := range src.X {
		if math.Float64bits(landed.X[i]) != math.Float64bits(src.X[i]) {
			t.Fatalf("landed X[%d] = %x, source %x", i, landed.X[i], src.X[i])
		}
	}
	if math.Float64bits(landed.Energy) != math.Float64bits(src.Energy) {
		t.Fatalf("landed energy %x, source %x", landed.Energy, src.Energy)
	}

	// Tamper with one recorded input: the replay diverges, the import is
	// refused with the typed code, and no session is registered.
	tampered := *tr.Trace
	tampered.Steps = append([]oic.TraceStep(nil), tr.Trace.Steps...)
	s6 := tampered.Steps[6]
	s6.X = append([]float64(nil), s6.X...)
	s6.X[0] += 1e-9
	tampered.Steps[6] = s6
	var er oic.ErrorResponse
	if st := c.do("POST", "/v1/sessions/resume", oic.ResumeSessionRequest{Trace: &tampered}, &er); st != http.StatusConflict || er.Code != "resume_mismatch" {
		t.Fatalf("tampered resume: status %d code %q, want 409 resume_mismatch", st, er.Code)
	}

	// Exactly-one-of is enforced.
	if st := c.do("POST", "/v1/sessions/resume", oic.ResumeSessionRequest{}, &er); st != http.StatusBadRequest {
		t.Fatalf("empty resume: status %d", st)
	}
}

// TestMemberTraceAndResume covers the fleet-side export/import pair,
// including the not-tracing guard.
func TestMemberTraceAndResume(t *testing.T) {
	_, c := newTestServer(t, Config{})
	var fl oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", ComputeBudget: 4, Size: 2, Seed: 7, Trace: true,
	}, &fl); st != http.StatusCreated {
		t.Fatalf("fleet create: status %d", st)
	}
	if st := c.do("POST", "/v1/fleets/"+fl.ID+"/tick", oic.FleetTickRequest{Ticks: 4}, nil); st != http.StatusOK {
		t.Fatalf("tick: status %d", st)
	}
	var tr oic.TraceResponse
	if st := c.do("GET", "/v1/fleets/"+fl.ID+"/sessions/1/trace", nil, &tr); st != http.StatusOK || tr.Trace.Len() != 4 {
		t.Fatalf("member trace: status %d", st)
	}

	// Import into a second, tracing-enabled empty fleet under the same ID.
	var fl2 oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", ComputeBudget: 4, Trace: true,
	}, &fl2); st != http.StatusCreated {
		t.Fatalf("fleet2 create: status %d", st)
	}
	var member oic.FleetMemberInfo
	if st := c.do("POST", "/v1/fleets/"+fl2.ID+"/sessions/resume", oic.FleetResumeMemberRequest{
		Member: 1, Trace: tr.Trace,
	}, &member); st != http.StatusCreated || member.ID != 1 || member.T != 4 {
		t.Fatalf("member resume: status %d, %+v", st, member)
	}

	// An untraced fleet cannot export members — migration needs the
	// episode, so the error is loud.
	var fl3 oic.FleetInfo
	if st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", ComputeBudget: 4, Size: 1, Seed: 8,
	}, &fl3); st != http.StatusCreated {
		t.Fatalf("fleet3 create: status %d", st)
	}
	var er oic.ErrorResponse
	if st := c.do("GET", "/v1/fleets/"+fl3.ID+"/sessions/0/trace", nil, &er); st != http.StatusConflict {
		t.Fatalf("untraced member trace: status %d, want 409 (%+v)", st, er)
	}
}
