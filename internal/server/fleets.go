package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"oic/pkg/oic"
)

// Fleet endpoints: the server face of the opportunistic fleet scheduler
// (pkg/oic.Fleet, DESIGN.md §7). A fleet multiplexes up to thousands of
// sessions of one engine over a per-tick compute budget; clients drive it
// tick by tick and read the budget accounting back.
//
//	POST   /v1/fleets                    create (engine cached per config)
//	GET    /v1/fleets/{id}               stats snapshot
//	POST   /v1/fleets/{id}/tick          advance: {"ws": {...}} or {"ticks": n}
//	POST   /v1/fleets/{id}/sessions      admit one member
//	GET    /v1/fleets/{id}/sessions/{mid} member snapshot (incl. skip budget)
//	DELETE /v1/fleets/{id}/sessions/{mid} evict one member
//	DELETE /v1/fleets/{id}               close the fleet

// Bounds on client-controlled fleet cost, alongside the session bounds in
// server.go: the fleet caps bound members per fleet and ticks per request
// (a tick is O(members) monitor work plus up to budget κ computes).
const (
	maxFleetSessions = 8192
	maxTicksPerReq   = 1000
)

// fleetEntry is one live server-side fleet. The engine pointer is kept so
// snapshot and admit paths never re-resolve the engine cache (a cache miss
// would rebuild expensive artifacts for nothing).
type fleetEntry struct {
	id  string
	f   *oic.Fleet
	eng *oic.Engine
	// published is the stats snapshot of the last *completed* operation
	// (create, tick, admit, evict). /metrics scrapes read it lock-free:
	// calling Stats() at scrape time would block on the fleet mutex for
	// the whole duration of an in-flight tick, and concurrent ticks across
	// fleets would interleave mid-operation cuts into one scrape.
	published atomic.Pointer[oic.FleetStats]
	touchable
}

// publishStats stores a fresh consistent stats snapshot for scrapes.
// Call after any operation that moved the fleet's counters.
func (fe *fleetEntry) publishStats() oic.FleetStats {
	st := fe.f.Stats()
	fe.published.Store(&st)
	return st
}

// snapshotStats returns the last published snapshot without touching the
// fleet mutex (falling back to a live read only before the first publish,
// which create always performs).
func (fe *fleetEntry) snapshotStats() oic.FleetStats {
	if p := fe.published.Load(); p != nil {
		return *p
	}
	return fe.f.Stats()
}

func validateFleetCreate(req *oic.CreateFleetRequest) error {
	if req.MaxSessions < 0 || req.MaxSessions > maxFleetSessions {
		return badRequest(fmt.Sprintf("max_sessions %d outside [0, %d]", req.MaxSessions, maxFleetSessions))
	}
	limit := req.MaxSessions
	if limit == 0 {
		limit = oic.DefaultFleetSessions
	}
	if req.Size < 0 || req.Size > limit {
		return badRequest(fmt.Sprintf("size %d outside [0, max_sessions %d]", req.Size, limit))
	}
	if req.ComputeBudget < 0 {
		return badRequest("compute_budget must be ≥ 0")
	}
	if req.Workers < 0 {
		return badRequest("workers must be ≥ 0")
	}
	if req.TickDeadline < 0 {
		return badRequest("tick_deadline_ns must be ≥ 0")
	}
	if el := req.Elastic; el != nil {
		if req.TickDeadline == 0 {
			return badRequest("elastic requires tick_deadline_ns > 0")
		}
		if el.MinBudget < 0 {
			return badRequest("elastic.min_budget must be ≥ 0")
		}
		if el.MaxBudget < 1 || el.MaxBudget > maxFleetSessions {
			return badRequest(fmt.Sprintf("elastic.max_budget %d outside [1, %d]", el.MaxBudget, maxFleetSessions))
		}
		if el.MinBudget > el.MaxBudget {
			return badRequest(fmt.Sprintf("elastic.min_budget %d > max_budget %d", el.MinBudget, el.MaxBudget))
		}
		if el.TargetMargin < 0 || el.TargetMargin >= req.TickDeadline {
			return badRequest("elastic.target_margin_ns must be in [0, tick_deadline_ns)")
		}
	}
	return nil
}

// defaultElastic derives the -elastic default bounds for a fleet that
// opted into a tick deadline and a finite budget but no explicit elastic
// config: the controller may shed down to a quarter of — or grow to 4× —
// the requested budget, regulating to the NewFleet default target margin
// (TickDeadline/5).
func defaultElastic(req *oic.CreateFleetRequest) *oic.ElasticConfig {
	if req.TickDeadline <= 0 || req.ComputeBudget <= 0 {
		return nil
	}
	min := req.ComputeBudget / 4
	if min < 1 {
		min = 1
	}
	max := req.ComputeBudget * 4
	if max > maxFleetSessions {
		max = maxFleetSessions
	}
	return &oic.ElasticConfig{MinBudget: min, MaxBudget: max}
}

func (s *Server) handleFleetCreate(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		s.fail(w, errRecovering)
		return
	}
	var req oic.CreateFleetRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if req.Plant == "" {
		s.fail(w, badRequest("missing plant"))
		return
	}
	sessReq := oic.CreateSessionRequest{
		Plant: req.Plant, Scenario: req.Scenario, Policy: req.Policy,
		Memory: req.Memory, Train: req.Train,
	}
	if err := validateCreate(&sessReq); err != nil {
		s.fail(w, err)
		return
	}
	if err := validateFleetCreate(&req); err != nil {
		s.fail(w, err)
		return
	}
	// Cheap capacity precheck before any expensive work (engine build,
	// sampling, admitting thousands of members); the authoritative
	// check-and-insert below still closes the race window.
	s.mu.Lock()
	full := len(s.fleets) >= s.cfg.MaxFleets
	s.mu.Unlock()
	if full {
		s.fail(w, errFleetCapacity)
		return
	}
	eng, err := s.engine(oic.Config{
		Plant: req.Plant, Scenario: req.Scenario, Policy: req.Policy,
		Memory: req.Memory, Train: req.Train,
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	elastic := req.Elastic
	if elastic == nil && s.cfg.ElasticDefaults {
		elastic = defaultElastic(&req)
	}
	fleet, err := eng.NewFleet(oic.FleetConfig{
		ComputeBudget: req.ComputeBudget,
		Workers:       req.Workers,
		MaxSessions:   req.MaxSessions,
		Degrade:       req.Degrade,
		TickDeadline:  req.TickDeadline,
		Elastic:       elastic,
		Trace:         req.Trace,
		TraceLimit:    s.cfg.TraceLimit,
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	fleet.SetFaults(s.faults)
	var x0s [][]float64
	if req.Size > 0 {
		x0s, err = eng.SampleInitialStates(req.Seed, req.Size)
		if err != nil {
			fleet.Close()
			s.fail(w, fmt.Errorf("sampling initial states: %w", err))
			return
		}
		for _, x0 := range x0s {
			if _, err := fleet.Admit(x0); err != nil {
				fleet.Close()
				s.fail(w, fmt.Errorf("admitting initial member: %w", err))
				return
			}
		}
	}

	fe := &fleetEntry{f: fleet, eng: eng}
	s.touch(fe)
	s.mu.Lock()
	if len(s.fleets) >= s.cfg.MaxFleets {
		s.mu.Unlock()
		fleet.Close()
		s.fail(w, errFleetCapacity)
		return
	}
	s.nextFleetID++
	fe.id = fmt.Sprintf("f-%d", s.nextFleetID)
	s.fleets[fe.id] = fe
	s.mu.Unlock()
	s.m.fleetsCreated.Add(1)
	// Write-ahead: the fleet-open record, the create-time admits, and the
	// member step hook land before the create is acknowledged.
	s.journalOpenFleet(fe.id, eng, fleet, x0s)
	s.journalSyncRequest()

	writeJSON(w, http.StatusCreated, s.fleetInfo(fe))
}

// fleetInfo assembles the wire snapshot of a fleet entry, republishing
// the scrape snapshot as a side effect (it computed fresh stats anyway).
// The S_k chain was compiled at fleet creation, so MaxSkipBudget never
// errors here.
func (s *Server) fleetInfo(fe *fleetEntry) oic.FleetInfo {
	info := oic.FleetInfo{ID: fe.id, FleetStats: fe.publishStats()}
	info.MaxSkipBudget, _ = fe.eng.MaxSkipBudget()
	return info
}

func (s *Server) lookupFleet(id string) (*fleetEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fe, ok := s.fleets[id]
	return fe, ok
}

func (s *Server) handleFleetGet(w http.ResponseWriter, r *http.Request) {
	fe, ok := s.lookupFleet(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	s.touch(fe)
	writeJSON(w, http.StatusOK, s.fleetInfo(fe))
}

func (s *Server) handleFleetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	fe, ok := s.fleets[id]
	if ok {
		delete(s.fleets, id)
	}
	s.mu.Unlock()
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	info := s.fleetInfo(fe)
	info.Closed = true
	fe.f.Close()
	s.journalCloseFleet(fe.id)
	s.journalSyncRequest()
	s.m.fleetsClosed.Add(1)
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleFleetTick(w http.ResponseWriter, r *http.Request) {
	fe, ok := s.lookupFleet(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	var req oic.FleetTickRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	ticks := req.Ticks
	if ticks <= 0 {
		ticks = 1
	}
	if ticks > maxTicksPerReq {
		s.fail(w, badRequest(fmt.Sprintf("ticks %d exceeds %d per request", ticks, maxTicksPerReq)))
		return
	}
	if ticks > 1 && len(req.WS) > 0 {
		s.fail(w, badRequest(`"ws" applies to a single tick; use ticks=1`))
		return
	}
	s.touch(fe)
	resp := oic.FleetTickResponse{Reports: make([]oic.TickReport, 0, ticks)}
	for i := 0; i < ticks; i++ {
		rep, err := fe.f.Tick(r.Context(), req.WS)
		if err != nil {
			s.countStepError(err)
			if len(resp.Reports) > 0 {
				// Partial progress: return what executed plus the terminal
				// error and its status, mirroring the batched-step
				// convention.
				s.journalSyncRequest()
				fe.publishStats()
				resp.Error = err.Error()
				writeJSON(w, statusForStepErr(err), resp)
				return
			}
			s.fail(w, err)
			return
		}
		// Members whose step failed terminally were evicted inside Tick;
		// the journal must agree, or recovery would try to replay them.
		for _, fe2 := range rep.Errors {
			s.journalEvict(fe.id, fe2.ID)
		}
		s.m.observeTick(rep, fe.f.Config().TickDeadline)
		resp.Reports = append(resp.Reports, rep)
	}
	// One fsync per tick request amortizes durability over every member's
	// step (SyncEveryTick); it lands before the ticks are acknowledged.
	s.journalSyncRequest()
	fe.publishStats()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFleetAdmit(w http.ResponseWriter, r *http.Request) {
	fe, ok := s.lookupFleet(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	var req oic.FleetAdmitRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	s.touch(fe)
	x0 := req.X0
	if x0 == nil {
		xs, err := fe.eng.SampleInitialStates(req.Seed, 1)
		if err != nil {
			s.fail(w, fmt.Errorf("sampling initial state: %w", err))
			return
		}
		if len(xs) == 0 {
			s.fail(w, errors.New("sampling initial state: empty sample from X'"))
			return
		}
		x0 = xs[0]
	}
	id, err := fe.f.Admit(x0)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.journalAdmit(fe.id, id, fe.eng.NX(), x0)
	s.journalSyncRequest()
	fe.publishStats()
	info, err := fe.f.Member(id)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) fleetMemberID(r *http.Request) (int, error) {
	mid, err := strconv.Atoi(r.PathValue("mid"))
	if err != nil {
		return 0, badRequest("member id must be an integer")
	}
	return mid, nil
}

func (s *Server) handleFleetMemberGet(w http.ResponseWriter, r *http.Request) {
	fe, ok := s.lookupFleet(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	mid, err := s.fleetMemberID(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.touch(fe)
	info, err := fe.f.Member(mid)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleFleetMemberDelete(w http.ResponseWriter, r *http.Request) {
	fe, ok := s.lookupFleet(r.PathValue("id"))
	if !ok {
		s.fail(w, errNotFound)
		return
	}
	mid, err := s.fleetMemberID(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.touch(fe)
	info, err := fe.f.Member(mid)
	if err != nil {
		s.fail(w, err)
		return
	}
	if err := fe.f.Evict(mid); err != nil {
		s.fail(w, err)
		return
	}
	s.journalEvict(fe.id, mid)
	s.journalSyncRequest()
	fe.publishStats()
	writeJSON(w, http.StatusOK, info)
}

var errFleetCapacity = errors.New("fleet capacity reached (too many live fleets)")
