package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"oic/pkg/oic"
)

// TestMetricsScrapeRace pins the fix for the per-fleet gauge snapshot
// race: /metrics scrapes read each fleet's last *published* stats
// snapshot (an atomic pointer swapped after every completed operation)
// instead of calling into the fleet under its tick mutex — so a scrape
// never blocks on an in-flight tick and never observes a half-updated
// cut. Two fleets tick concurrently while a scraper hammers /metrics;
// under -race this fails loudly if any snapshot path races.
func TestMetricsScrapeRace(t *testing.T) {
	_, c := newTestServer(t, Config{})

	var ids [2]string
	for i := range ids {
		var info oic.FleetInfo
		st := c.do("POST", "/v1/fleets", oic.CreateFleetRequest{
			Plant: "acc", ComputeBudget: 4, Size: 12, Seed: int64(100 + i),
		}, &info)
		if st != http.StatusCreated {
			t.Fatalf("fleet %d create: status %d", i, st)
		}
		ids[i] = info.ID
	}

	scrape := func() string {
		req, _ := http.NewRequest("GET", c.base+"/metrics", nil)
		resp, err := c.hc.Do(req)
		if err != nil {
			t.Error(err)
			return ""
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body)
	}

	const ticksPerFleet = 30
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for range ticksPerFleet {
				var resp oic.FleetTickResponse
				if st := c.do("POST", "/v1/fleets/"+id+"/tick", oic.FleetTickRequest{}, &resp); st != http.StatusOK {
					t.Errorf("tick %s: status %d", id, st)
					return
				}
			}
		}(id)
	}
	stop := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := scrape()
			if body == "" {
				return
			}
			if !strings.Contains(body, "oicd_fleets_active 2") {
				t.Errorf("scrape %d missing fleet gauge:\n%s", i, body)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-scrapeDone
	if t.Failed() {
		t.FailNow()
	}

	// The published snapshots converge once ticking stops: both fleets
	// report their full membership in the final scrape.
	body := scrape()
	for _, id := range ids {
		if !strings.Contains(body, fmt.Sprintf("oicd_fleet_sessions{fleet=%q} 12", id)) {
			t.Errorf("final scrape missing %s membership gauge:\n%s", id, body)
		}
	}
}
