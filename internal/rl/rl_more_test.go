package rl

import (
	"math/rand"
	"testing"

	"oic/internal/mat"
)

func TestTargetNetworkSync(t *testing.T) {
	agent, err := NewDDQN(Config{
		StateDim: 1, NumActions: 2, Hidden: []int{4},
		TargetSync: 10, WarmUp: 5, BatchSize: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := mat.Vec{0.5}
	tr := Transition{S: s, A: 0, R: 1, S2: s, Done: true}
	// After WarmUp the online net trains every step and diverges from the
	// target; on the sync step they must coincide again.
	for i := 0; i < 9; i++ {
		agent.Observe(tr)
	}
	qOnline := agent.online.Forward(s)
	qTarget := agent.target.Forward(s)
	if qOnline.Equal(qTarget, 1e-12) {
		t.Fatal("online never diverged from target; test ineffective")
	}
	agent.Observe(tr) // step 10: sync
	qOnline = agent.online.Forward(s)
	qTarget = agent.target.Forward(s)
	if !qOnline.Equal(qTarget, 0) {
		t.Error("target not synced on TargetSync boundary")
	}
}

func TestWarmUpDefersTraining(t *testing.T) {
	agent, err := NewDDQN(Config{StateDim: 1, NumActions: 2, WarmUp: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := Transition{S: mat.Vec{0}, A: 0, R: 0, S2: mat.Vec{0}, Done: true}
	for i := 0; i < 49; i++ {
		agent.Observe(tr)
	}
	if agent.TrainOps() != 0 {
		t.Errorf("trained before warm-up: %d ops", agent.TrainOps())
	}
	agent.Observe(tr)
	if agent.TrainOps() != 1 {
		t.Errorf("train ops after warm-up = %d, want 1", agent.TrainOps())
	}
}

func TestActExploresAndExploits(t *testing.T) {
	agent, err := NewDDQN(Config{
		StateDim: 1, NumActions: 2, Hidden: []int{4},
		EpsStart: 1.0, EpsEnd: 1.0, EpsDecay: 1, WarmUp: 1 << 30, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With ε pinned to 1, actions must be (pseudo)uniform.
	s := mat.Vec{0}
	counts := [2]int{}
	for i := 0; i < 400; i++ {
		counts[agent.Act(s)]++
	}
	if counts[0] < 120 || counts[1] < 120 {
		t.Errorf("exploration skewed: %v", counts)
	}
}

func TestTrainPropagatesEnvErrors(t *testing.T) {
	agent, err := NewDDQN(Config{StateDim: 1, NumActions: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	env := &erroringEnv{}
	if _, err := Train(agent, env, 1, 5); err == nil {
		t.Error("env error swallowed")
	}
}

type erroringEnv struct{ calls int }

func (e *erroringEnv) Reset(*rand.Rand) (mat.Vec, error) { return mat.Vec{0}, nil }
func (e *erroringEnv) Step(int) (mat.Vec, float64, bool, error) {
	return nil, 0, false, errTest
}

var errTest = &envError{}

type envError struct{}

func (*envError) Error() string { return "env exploded" }
