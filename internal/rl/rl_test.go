package rl

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/mat"
)

func TestReplayRingBuffer(t *testing.T) {
	r := NewReplay(3)
	for i := 0; i < 5; i++ {
		r.Add(Transition{R: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	// Entries 0 and 1 must have been evicted.
	rng := rand.New(rand.NewSource(1))
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		for _, tr := range r.Sample(3, rng) {
			seen[tr.R] = true
		}
	}
	if seen[0] || seen[1] {
		t.Error("evicted transitions still sampled")
	}
	if !seen[2] || !seen[3] || !seen[4] {
		t.Error("recent transitions missing from samples")
	}
}

func TestEpsilonAnneal(t *testing.T) {
	agent, err := NewDDQN(Config{StateDim: 2, NumActions: 2, EpsDecay: 100, WarmUp: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if e := agent.Epsilon(); math.Abs(e-1.0) > 1e-9 {
		t.Errorf("initial epsilon = %v", e)
	}
	for i := 0; i < 50; i++ {
		agent.Observe(Transition{S: mat.Vec{0, 0}, S2: mat.Vec{0, 0}})
	}
	if e := agent.Epsilon(); math.Abs(e-0.525) > 1e-9 {
		t.Errorf("mid epsilon = %v, want 0.525", e)
	}
	for i := 0; i < 200; i++ {
		agent.Observe(Transition{S: mat.Vec{0, 0}, S2: mat.Vec{0, 0}})
	}
	if e := agent.Epsilon(); math.Abs(e-0.05) > 1e-9 {
		t.Errorf("final epsilon = %v, want 0.05", e)
	}
}

func TestGreedyPicksArgmax(t *testing.T) {
	agent, err := NewDDQN(Config{StateDim: 1, NumActions: 3, Hidden: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	s := mat.Vec{0.5}
	q := agent.QValues(s)
	best := 0
	for a := 1; a < 3; a++ {
		if q[a] > q[best] {
			best = a
		}
	}
	if got := agent.Greedy(s); got != best {
		t.Errorf("Greedy = %d, want %d (q=%v)", got, best, q)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewDDQN(Config{StateDim: 0, NumActions: 2}); err == nil {
		t.Error("zero state dim accepted")
	}
	if _, err := NewDDQN(Config{StateDim: 2, NumActions: 1}); err == nil {
		t.Error("single action accepted")
	}
}

// twoArmedBandit is a 1-step environment where action 1 always pays 1 and
// action 0 pays 0: the simplest sanity check that learning moves toward the
// rewarded action.
type twoArmedBandit struct{ state mat.Vec }

func (b *twoArmedBandit) Reset(*rand.Rand) (mat.Vec, error) { return b.state, nil }
func (b *twoArmedBandit) Step(a int) (mat.Vec, float64, bool, error) {
	r := 0.0
	if a == 1 {
		r = 1
	}
	return b.state, r, true, nil
}

func TestDDQNLearnsBandit(t *testing.T) {
	agent, err := NewDDQN(Config{
		StateDim: 1, NumActions: 2, Hidden: []int{8},
		EpsDecay: 300, WarmUp: 20, TargetSync: 50, BatchSize: 8, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := &twoArmedBandit{state: mat.Vec{1}}
	if _, err := Train(agent, env, 600, 1); err != nil {
		t.Fatal(err)
	}
	if got := agent.Greedy(mat.Vec{1}); got != 1 {
		t.Errorf("greedy action = %d, want 1 (q=%v)", got, agent.QValues(mat.Vec{1}))
	}
}

// chainEnv is a 5-state corridor: action 1 moves right (+0 reward until the
// end pays +1), action 0 moves left. Requires credit assignment across
// steps, exercising the bootstrapped target.
type chainEnv struct{ pos int }

func (c *chainEnv) Reset(*rand.Rand) (mat.Vec, error) {
	c.pos = 0
	return mat.Vec{0}, nil
}

func (c *chainEnv) Step(a int) (mat.Vec, float64, bool, error) {
	if a == 1 {
		c.pos++
	} else if c.pos > 0 {
		c.pos--
	}
	if c.pos >= 4 {
		return mat.Vec{1}, 1, true, nil
	}
	return mat.Vec{float64(c.pos) / 4}, 0, false, nil
}

func TestDDQNLearnsChain(t *testing.T) {
	agent, err := NewDDQN(Config{
		StateDim: 1, NumActions: 2, Hidden: []int{16},
		Gamma: 0.9, EpsDecay: 2000, WarmUp: 50, TargetSync: 100, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := &chainEnv{}
	stats, err := Train(agent, env, 400, 30)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Episodes != 400 {
		t.Fatalf("episodes = %d", stats.Episodes)
	}
	// The greedy policy must walk the chain to the reward from every state.
	for pos := 0; pos < 4; pos++ {
		s := mat.Vec{float64(pos) / 4}
		if agent.Greedy(s) != 1 {
			t.Errorf("greedy at pos %d is not 'right' (q=%v)", pos, agent.QValues(s))
		}
	}
	// Late training should be rewarded in (almost) every episode.
	late := stats.RewardHistory[len(stats.RewardHistory)-50:]
	hits := 0
	for _, r := range late {
		if r > 0.5 {
			hits++
		}
	}
	if hits < 40 {
		t.Errorf("only %d/50 late episodes reached the goal", hits)
	}
}

func TestTrainDeterministicWithSeed(t *testing.T) {
	run := func() []float64 {
		agent, err := NewDDQN(Config{StateDim: 1, NumActions: 2, Hidden: []int{8}, Seed: 99, WarmUp: 10})
		if err != nil {
			t.Fatal(err)
		}
		env := &twoArmedBandit{state: mat.Vec{1}}
		stats, err := Train(agent, env, 50, 1)
		if err != nil {
			t.Fatal(err)
		}
		return stats.RewardHistory
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at episode %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSetPolicy(t *testing.T) {
	a1, _ := NewDDQN(Config{StateDim: 2, NumActions: 2, Seed: 1})
	a2, _ := NewDDQN(Config{StateDim: 2, NumActions: 2, Seed: 2})
	s := mat.Vec{0.3, -0.4}
	if a1.QValues(s).Equal(a2.QValues(s), 1e-12) {
		t.Fatal("different seeds produced identical networks")
	}
	a2.SetPolicy(a1.Policy())
	if !a1.QValues(s).Equal(a2.QValues(s), 0) {
		t.Error("SetPolicy did not copy weights")
	}
}
