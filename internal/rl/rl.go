// Package rl implements the deep reinforcement learning machinery for the
// paper's DRL-based skipping decision function Ω: a replay buffer, an
// ε-greedy exploration schedule, and double deep Q-learning (Van Hasselt,
// Guez, Silver 2016 — the paper's reference [24]).
//
// The agent's state is the paper's s(t) = {x(t), w(t−r+1), …, w(t)}; its
// two actions are z = 0 (skip) and z = 1 (run the controller); the reward
// is R = −w₁·[x⁺ ∉ X′] − w₂·‖κ(x)‖₁ (Section III-B.2). The environment
// that realizes this reward on top of the core framework lives in the case
// study packages; package rl is task-agnostic.
package rl

import (
	"fmt"
	"math/rand"

	"oic/internal/mat"
	"oic/internal/nn"
)

// Transition is one (s, a, r, s', done) experience tuple.
type Transition struct {
	S    mat.Vec
	A    int
	R    float64
	S2   mat.Vec
	Done bool
}

// Replay is a fixed-capacity ring buffer of transitions with uniform
// sampling.
type Replay struct {
	buf  []Transition
	next int
	full bool
}

// NewReplay returns a buffer holding up to capacity transitions.
func NewReplay(capacity int) *Replay {
	if capacity < 1 {
		panic("rl: NewReplay: capacity must be positive")
	}
	return &Replay{buf: make([]Transition, 0, capacity)}
}

// Add stores a transition, evicting the oldest when full.
func (r *Replay) Add(tr Transition) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, tr)
		return
	}
	r.full = true
	r.buf[r.next] = tr
	r.next = (r.next + 1) % cap(r.buf)
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int { return len(r.buf) }

// Sample draws n transitions uniformly with replacement.
func (r *Replay) Sample(n int, rng *rand.Rand) []Transition {
	out := make([]Transition, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(len(r.buf))]
	}
	return out
}

// Config parameterizes a double DQN agent. Zero values select the listed
// defaults.
type Config struct {
	StateDim   int   // required
	NumActions int   // required (2 for the skipping problem)
	Hidden     []int // hidden layer sizes; default {64, 64}

	LearningRate float64 // default 1e-3
	Gamma        float64 // discount; default 0.95
	EpsStart     float64 // initial exploration rate; default 1.0
	EpsEnd       float64 // final exploration rate; default 0.05
	EpsDecay     int     // steps to anneal epsilon over; default 10000
	BatchSize    int     // default 32
	ReplayCap    int     // default 20000
	TargetSync   int     // online→target sync period in steps; default 250
	WarmUp       int     // transitions before learning starts; default 500
	Seed         int64   // RNG seed; default 1

	// Prioritized switches from uniform replay to proportional prioritized
	// replay (Schaul et al. 2016). The paper's agent samples uniformly;
	// this is an opt-in extension.
	Prioritized   bool
	PriorityAlpha float64 // prioritization exponent; default 0.6
	PriorityBeta  float64 // initial IS-correction exponent, annealed to 1; default 0.4
}

func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.LearningRate == 0 {
		c.LearningRate = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.95
	}
	if c.EpsStart == 0 {
		c.EpsStart = 1.0
	}
	if c.EpsEnd == 0 {
		c.EpsEnd = 0.05
	}
	if c.EpsDecay == 0 {
		c.EpsDecay = 10000
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.ReplayCap == 0 {
		c.ReplayCap = 20000
	}
	if c.TargetSync == 0 {
		c.TargetSync = 250
	}
	if c.WarmUp == 0 {
		c.WarmUp = 500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PriorityAlpha == 0 {
		c.PriorityAlpha = 0.6
	}
	if c.PriorityBeta == 0 {
		c.PriorityBeta = 0.4
	}
	return c
}

// DDQN is a double deep Q-learning agent.
type DDQN struct {
	cfg     Config
	online  *nn.MLP
	target  *nn.MLP
	opt     *nn.Adam
	grads   *nn.Grads
	replay  *Replay
	preplay *PrioritizedReplay // non-nil when cfg.Prioritized
	rng     *rand.Rand

	steps     int // environment steps observed
	trainOps  int // gradient updates performed
	lossEMA   float64
	lossCount int
}

// NewDDQN builds an agent from the config.
func NewDDQN(cfg Config) (*DDQN, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDim < 1 || cfg.NumActions < 2 {
		return nil, fmt.Errorf("rl: NewDDQN: bad dims (state %d, actions %d)", cfg.StateDim, cfg.NumActions)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := append(append([]int{cfg.StateDim}, cfg.Hidden...), cfg.NumActions)
	online := nn.NewMLP(sizes, rng)
	agent := &DDQN{
		cfg:    cfg,
		online: online,
		target: online.Clone(),
		opt:    nn.NewAdam(online, cfg.LearningRate),
		grads:  nn.NewGrads(online),
		rng:    rng,
	}
	if cfg.Prioritized {
		agent.preplay = NewPrioritizedReplay(cfg.ReplayCap, cfg.PriorityAlpha)
	} else {
		agent.replay = NewReplay(cfg.ReplayCap)
	}
	return agent, nil
}

// Epsilon returns the current exploration rate (linear anneal).
func (d *DDQN) Epsilon() float64 {
	f := float64(d.steps) / float64(d.cfg.EpsDecay)
	if f > 1 {
		f = 1
	}
	return d.cfg.EpsStart + f*(d.cfg.EpsEnd-d.cfg.EpsStart)
}

// QValues returns the online network's action values for state s.
func (d *DDQN) QValues(s mat.Vec) mat.Vec { return d.online.Forward(s) }

// Greedy returns argmax_a Q(s, a) under the online network.
func (d *DDQN) Greedy(s mat.Vec) int {
	q := d.online.Forward(s)
	best := 0
	for a := 1; a < len(q); a++ {
		if q[a] > q[best] {
			best = a
		}
	}
	return best
}

// Act returns an ε-greedy action for training.
func (d *DDQN) Act(s mat.Vec) int {
	if d.rng.Float64() < d.Epsilon() {
		return d.rng.Intn(d.cfg.NumActions)
	}
	return d.Greedy(s)
}

// Observe records a transition and performs a learning step when warmed up.
func (d *DDQN) Observe(tr Transition) {
	stored := 0
	if d.preplay != nil {
		d.preplay.Add(tr)
		stored = d.preplay.Len()
	} else {
		d.replay.Add(tr)
		stored = d.replay.Len()
	}
	d.steps++
	if stored >= d.cfg.WarmUp {
		d.trainStep()
	}
	if d.steps%d.cfg.TargetSync == 0 {
		d.target.CopyFrom(d.online)
	}
}

// beta returns the annealed importance-sampling exponent (β → 1).
func (d *DDQN) beta() float64 {
	f := float64(d.steps) / float64(d.cfg.EpsDecay)
	if f > 1 {
		f = 1
	}
	return d.cfg.PriorityBeta + f*(1-d.cfg.PriorityBeta)
}

// trainStep samples a batch and applies one double-DQN TD update:
//
//	y = r + γ·Q_target(s', argmax_a Q_online(s', a))   (0 terminal)
//	L = mean (Q_online(s, a) − y)²,
//
// with importance-sampling weights and priority refresh when prioritized
// replay is enabled.
func (d *DDQN) trainStep() {
	var batch []Transition
	var idx []int
	var ws []float64
	if d.preplay != nil {
		batch, idx, ws = d.preplay.Sample(d.cfg.BatchSize, d.beta(), d.rng)
	} else {
		batch = d.replay.Sample(d.cfg.BatchSize, d.rng)
	}
	d.grads.Zero()
	loss := 0.0
	for k, tr := range batch {
		y := tr.R
		if !tr.Done {
			aStar := d.Greedy(tr.S2)
			y += d.cfg.Gamma * d.target.Forward(tr.S2)[aStar]
		}
		q := d.online.Forward(tr.S)
		diff := q[tr.A] - y
		loss += diff * diff
		w := 1.0
		if ws != nil {
			w = ws[k]
			d.preplay.UpdatePriority(idx[k], diff)
		}
		gradOut := make(mat.Vec, len(q))
		gradOut[tr.A] = 2 * w * diff / float64(len(batch))
		d.online.Accumulate(d.grads, tr.S, gradOut)
	}
	d.opt.Step(d.online, d.grads)
	d.trainOps++
	loss /= float64(len(batch))
	if d.lossCount == 0 {
		d.lossEMA = loss
	} else {
		d.lossEMA = 0.99*d.lossEMA + 0.01*loss
	}
	d.lossCount++
}

// LossEMA returns an exponential moving average of the TD loss (0 before
// any training).
func (d *DDQN) LossEMA() float64 { return d.lossEMA }

// Steps returns how many transitions the agent has observed.
func (d *DDQN) Steps() int { return d.steps }

// TrainOps returns how many gradient updates have been applied.
func (d *DDQN) TrainOps() int { return d.trainOps }

// Policy returns the trained greedy policy network (shared storage).
func (d *DDQN) Policy() *nn.MLP { return d.online }

// SetPolicy overwrites the online and target networks (e.g. with weights
// loaded from disk).
func (d *DDQN) SetPolicy(m *nn.MLP) {
	d.online.CopyFrom(m)
	d.target.CopyFrom(m)
}

// Env is a task for Train: an episodic environment over vector states and
// discrete actions.
type Env interface {
	// Reset starts a new episode and returns the initial agent state.
	Reset(rng *rand.Rand) (mat.Vec, error)
	// Step applies the action; it returns the successor state, the reward,
	// and whether the episode terminated.
	Step(action int) (next mat.Vec, reward float64, done bool, err error)
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Episodes      int
	TotalSteps    int
	MeanReward    float64   // mean per-episode total reward
	RewardHistory []float64 // per-episode totals
	FinalEpsilon  float64
	FinalLossEMA  float64
}

// Train runs episodes of ε-greedy interaction with env, learning online.
// maxSteps bounds each episode's length.
func Train(agent *DDQN, env Env, episodes, maxSteps int) (TrainStats, error) {
	stats := TrainStats{}
	rng := rand.New(rand.NewSource(agent.cfg.Seed + 7919))
	for ep := 0; ep < episodes; ep++ {
		s, err := env.Reset(rng)
		if err != nil {
			return stats, fmt.Errorf("rl: Train: reset episode %d: %w", ep, err)
		}
		total := 0.0
		for step := 0; step < maxSteps; step++ {
			a := agent.Act(s)
			s2, r, done, err := env.Step(a)
			if err != nil {
				return stats, fmt.Errorf("rl: Train: step %d of episode %d: %w", step, ep, err)
			}
			agent.Observe(Transition{S: s, A: a, R: r, S2: s2, Done: done})
			total += r
			s = s2
			stats.TotalSteps++
			if done {
				break
			}
		}
		stats.Episodes++
		stats.RewardHistory = append(stats.RewardHistory, total)
		stats.MeanReward += total
	}
	if stats.Episodes > 0 {
		stats.MeanReward /= float64(stats.Episodes)
	}
	stats.FinalEpsilon = agent.Epsilon()
	stats.FinalLossEMA = agent.LossEMA()
	return stats, nil
}
