package rl

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/mat"
)

func TestPrioritizedSumTreeConsistency(t *testing.T) {
	r := NewPrioritizedReplay(8, 1)
	for i := 0; i < 8; i++ {
		r.Add(Transition{R: float64(i)})
	}
	// Fresh transitions share the max priority: total = 8 · (1+1e-8)^1.
	if math.Abs(r.total()-8*(1+1e-8)) > 1e-6 {
		t.Errorf("total = %v", r.total())
	}
	// Push one priority up; its sampling frequency must dominate.
	r.UpdatePriority(3, 100)
	rng := rand.New(rand.NewSource(1))
	hits := 0
	for k := 0; k < 2000; k++ {
		if r.sampleIndex(rng.Float64()) == 3 {
			hits++
		}
	}
	if hits < 1500 {
		t.Errorf("high-priority leaf sampled only %d/2000", hits)
	}
}

func TestPrioritizedSamplingDistribution(t *testing.T) {
	r := NewPrioritizedReplay(4, 1)
	for i := 0; i < 4; i++ {
		r.Add(Transition{R: float64(i)})
	}
	// Priorities 1, 2, 3, 4 → probabilities ∝ i+1.
	for i := 0; i < 4; i++ {
		r.UpdatePriority(i, float64(i+1))
	}
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 4)
	const n = 40000
	for k := 0; k < n; k++ {
		counts[r.sampleIndex(rng.Float64())]++
	}
	for i := 0; i < 4; i++ {
		want := float64(i+1) / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("leaf %d frequency %v, want ≈ %v", i, got, want)
		}
	}
}

func TestPrioritizedISWeights(t *testing.T) {
	r := NewPrioritizedReplay(4, 1)
	for i := 0; i < 4; i++ {
		r.Add(Transition{})
	}
	r.UpdatePriority(0, 10)
	for i := 1; i < 4; i++ {
		r.UpdatePriority(i, 1)
	}
	rng := rand.New(rand.NewSource(3))
	_, idx, ws := r.Sample(64, 1, rng)
	// High-priority samples must carry LOWER IS weights than rare ones.
	var wHigh, wLow float64
	var nHigh, nLow int
	for k, i := range idx {
		if i == 0 {
			wHigh += ws[k]
			nHigh++
		} else {
			wLow += ws[k]
			nLow++
		}
	}
	if nHigh == 0 || nLow == 0 {
		t.Skip("sampling did not cover both priority classes")
	}
	if wHigh/float64(nHigh) >= wLow/float64(nLow) {
		t.Errorf("IS weights not inverse to priority: high %v vs low %v",
			wHigh/float64(nHigh), wLow/float64(nLow))
	}
	for _, w := range ws {
		if w < 0 || w > 1+1e-12 {
			t.Fatalf("weight %v outside (0,1]", w)
		}
	}
}

func TestPrioritizedRingOverwrite(t *testing.T) {
	r := NewPrioritizedReplay(2, 1)
	for i := 0; i < 5; i++ {
		r.Add(Transition{R: float64(i)})
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	rng := rand.New(rand.NewSource(4))
	trs, _, _ := r.Sample(50, 0.5, rng)
	for _, tr := range trs {
		if tr.R < 3 {
			t.Fatalf("evicted transition %v sampled", tr.R)
		}
	}
}

func TestDDQNPrioritizedLearnsBandit(t *testing.T) {
	agent, err := NewDDQN(Config{
		StateDim: 1, NumActions: 2, Hidden: []int{8},
		EpsDecay: 300, WarmUp: 20, TargetSync: 50, BatchSize: 8, Seed: 42,
		Prioritized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := &twoArmedBandit{state: mat.Vec{1}}
	if _, err := Train(agent, env, 600, 1); err != nil {
		t.Fatal(err)
	}
	if got := agent.Greedy(mat.Vec{1}); got != 1 {
		t.Errorf("greedy action = %d (q=%v)", got, agent.QValues(mat.Vec{1}))
	}
}

func TestBetaAnneal(t *testing.T) {
	agent, err := NewDDQN(Config{
		StateDim: 1, NumActions: 2, Prioritized: true,
		EpsDecay: 100, WarmUp: 1 << 30, PriorityBeta: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b := agent.beta(); math.Abs(b-0.4) > 1e-12 {
		t.Errorf("initial beta = %v", b)
	}
	for i := 0; i < 200; i++ {
		agent.Observe(Transition{S: mat.Vec{0}, S2: mat.Vec{0}})
	}
	if b := agent.beta(); math.Abs(b-1) > 1e-12 {
		t.Errorf("final beta = %v", b)
	}
}
