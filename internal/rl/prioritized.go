package rl

import (
	"math"
	"math/rand"
)

// PrioritizedReplay is a proportional prioritized experience replay buffer
// (Schaul et al. 2016): transitions are sampled with probability
// pᵢ^α / Σ p^α where pᵢ is the last absolute TD error, and gradient updates
// are corrected with importance-sampling weights (N·P(i))^−β. A sum tree
// gives O(log n) insertion and sampling.
//
// It is the opt-in alternative to the uniform Replay buffer
// (Config.Prioritized); the paper's agent uses uniform sampling.
type PrioritizedReplay struct {
	cap   int
	alpha float64

	tree  []float64 // binary sum tree over capacity leaves
	data  []Transition
	next  int
	size  int
	maxPr float64 // priority assigned to fresh transitions
}

// NewPrioritizedReplay returns a buffer with the given capacity and
// prioritization exponent α (0 = uniform, 1 = fully proportional).
func NewPrioritizedReplay(capacity int, alpha float64) *PrioritizedReplay {
	if capacity < 1 {
		panic("rl: NewPrioritizedReplay: capacity must be positive")
	}
	// Round capacity up to a power of two for a complete tree.
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &PrioritizedReplay{
		cap:   c,
		alpha: alpha,
		tree:  make([]float64, 2*c),
		data:  make([]Transition, c),
		maxPr: 1,
	}
}

// Len returns the number of stored transitions.
func (r *PrioritizedReplay) Len() int { return r.size }

// Add stores a transition with the current maximum priority so that every
// experience is replayed at least once with high probability.
func (r *PrioritizedReplay) Add(tr Transition) {
	i := r.next
	r.data[i] = tr
	r.setPriority(i, r.maxPr)
	r.next = (r.next + 1) % r.cap
	if r.size < r.cap {
		r.size++
	}
}

// setPriority writes p^α into leaf i and updates the path to the root.
func (r *PrioritizedReplay) setPriority(i int, p float64) {
	v := math.Pow(p+1e-8, r.alpha)
	node := r.cap + i
	delta := v - r.tree[node]
	for node >= 1 {
		r.tree[node] += delta
		node >>= 1
	}
}

// total returns Σ p^α.
func (r *PrioritizedReplay) total() float64 { return r.tree[1] }

// sampleIndex draws a leaf proportionally to its priority mass.
func (r *PrioritizedReplay) sampleIndex(u float64) int {
	node := 1
	target := u * r.total()
	for node < r.cap {
		left := 2 * node
		if target <= r.tree[left] || r.tree[2*node+1] == 0 {
			node = left
		} else {
			target -= r.tree[left]
			node = left + 1
		}
	}
	i := node - r.cap
	if i >= r.size { // numeric edge: clamp into the filled region
		i = r.size - 1
	}
	return i
}

// Sample draws n transitions with proportional prioritization and returns
// them with their indices and importance-sampling weights normalized to a
// maximum of 1. beta is the IS correction exponent.
func (r *PrioritizedReplay) Sample(n int, beta float64, rng *rand.Rand) ([]Transition, []int, []float64) {
	trs := make([]Transition, n)
	idx := make([]int, n)
	ws := make([]float64, n)
	total := r.total()
	maxW := 0.0
	for k := 0; k < n; k++ {
		i := r.sampleIndex(rng.Float64())
		idx[k] = i
		trs[k] = r.data[i]
		p := r.tree[r.cap+i] / total
		w := math.Pow(float64(r.size)*p, -beta)
		ws[k] = w
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for k := range ws {
			ws[k] /= maxW
		}
	}
	return trs, idx, ws
}

// UpdatePriority records the new absolute TD error of a sampled transition.
func (r *PrioritizedReplay) UpdatePriority(i int, tdErr float64) {
	p := math.Abs(tdErr)
	if p > r.maxPr {
		r.maxPr = p
	}
	r.setPriority(i, p)
}
