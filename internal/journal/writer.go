package journal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"oic/internal/fault"
	"oic/internal/obs"
)

// SyncPolicy selects when the writer fsyncs the active segment — the
// durability/throughput dial (DESIGN.md §10 quantifies the trade).
type SyncPolicy int

const (
	// SyncNone never fsyncs explicitly (the OS flushes on its schedule);
	// a crash can lose everything since the last rotation. Benchmarks and
	// tests only.
	SyncNone SyncPolicy = iota
	// SyncEveryStep fsyncs after every append: no acknowledged step is
	// ever lost, at the cost of one fsync per step.
	SyncEveryStep
	// SyncEveryTick fsyncs when the owner calls Sync() — the fleet path
	// calls it once per scheduler tick, amortizing one fsync over every
	// member's step. A crash loses at most the current tick.
	SyncEveryTick
	// SyncInterval fsyncs from a background timer every Interval; a
	// crash loses at most one interval's worth of steps.
	SyncInterval
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncEveryStep:
		return "step"
	case SyncEveryTick:
		return "tick"
	case SyncInterval:
		return "interval"
	}
	return fmt.Sprintf("policy-%d", int(p))
}

// ParsePolicy parses the -journal-sync flag values.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return SyncNone, nil
	case "step":
		return SyncEveryStep, nil
	case "tick":
		return SyncEveryTick, nil
	case "interval":
		return SyncInterval, nil
	}
	return 0, fmt.Errorf("journal: unknown sync policy %q (want none, step, tick, or interval)", s)
}

// Ext is the segment file extension.
const Ext = ".oicj"

const (
	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero: large enough that rotation cost is noise, small
	// enough that recovery reads segments, not one unbounded file.
	DefaultSegmentBytes = 4 << 20
	// DefaultInterval is the SyncInterval period when unset.
	DefaultInterval = 100 * time.Millisecond
)

// Options configures a Writer.
type Options struct {
	// Dir is the journal directory (created if missing).
	Dir string
	// SegmentBytes rotates the segment when it would grow past this.
	SegmentBytes int
	// Policy is the fsync policy.
	Policy SyncPolicy
	// Interval is the SyncInterval period.
	Interval time.Duration
	// Faults optionally injects failures at the journal.append and
	// journal.sync sites; nil means no injection.
	Faults *fault.Injector
	// AppendHist and SyncHist, when set, receive per-append and per-fsync
	// latencies (seconds). Both are nil-safe no-ops when unset.
	AppendHist *obs.Histogram
	SyncHist   *obs.Histogram
}

// WriterStats is a snapshot of a writer's accounting.
type WriterStats struct {
	Appends   int64 // records appended
	Syncs     int64 // fsyncs issued
	Rotations int64 // segments opened
	Bytes     int64 // bytes written across all segments
}

// Writer appends records to rotating segment files. It is safe for
// concurrent use. Failures are sticky: once an append, sync, or rotate
// fails, every later call returns the first error — a half-written
// journal must not keep accepting acknowledged steps.
type Writer struct {
	opts Options

	mu    sync.Mutex
	f     *os.File
	bw    *bufio.Writer
	size  int    // bytes in the active segment
	seq   int    // next segment sequence number
	buf   []byte // encode scratch, reused across appends
	dirty bool   // unsynced bytes outstanding
	err   error  // sticky failure
	stats WriterStats

	stop chan struct{} // interval ticker shutdown
	done chan struct{}
}

// OpenWriter creates (if needed) and scans dir, then returns a writer
// whose next segment continues the existing numbering. It never appends
// to an existing segment — a restart always starts a fresh segment, so
// a prior torn tail stays where recovery truncated it.
func OpenWriter(opts Options) (*Writer, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("journal: empty directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	segs, err := Segments(opts.Dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{opts: opts, seq: len(segs)}
	if len(segs) > 0 {
		// Numbering continues after the highest existing index even if
		// earlier segments were pruned.
		var last int
		fmt.Sscanf(filepath.Base(segs[len(segs)-1]), segmentPattern, &last)
		w.seq = last + 1
	}
	if opts.Policy == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop(w.stop, w.done)
	}
	return w, nil
}

const segmentPattern = "journal-%08d" + Ext

// Segments lists dir's segment files in write order.
func Segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "journal-") && strings.HasSuffix(e.Name(), Ext) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// syncLoop receives its channels as arguments so it never reads the
// struct fields Close mutates under the writer lock.
func (w *Writer) syncLoop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.Sync()
		case <-stop:
			return
		}
	}
}

// rotateLocked closes the active segment (flushing and syncing it) and
// opens the next one with a fresh header.
func (w *Writer) rotateLocked() error {
	if w.f != nil {
		if err := w.flushLocked(true); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		w.f = nil
	}
	path := filepath.Join(w.opts.Dir, fmt.Sprintf(segmentPattern, w.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.seq++
	w.f = f
	if w.bw == nil {
		w.bw = bufio.NewWriterSize(f, 1<<16)
	} else {
		w.bw.Reset(f)
	}
	// The encode scratch (w.buf) still holds the record being appended;
	// the header gets its own stack buffer.
	var hdr [HeaderSize]byte
	if _, err := w.bw.Write(AppendHeader(hdr[:0])); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.size = HeaderSize
	w.stats.Rotations++
	w.stats.Bytes += HeaderSize
	w.dirty = true
	return nil
}

// flushLocked drains the buffer and, if sync is set, fsyncs the file.
func (w *Writer) flushLocked(sync bool) error {
	if w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if !sync || !w.dirty {
		return nil
	}
	if err := w.opts.Faults.Hit(fault.SiteJournalSync); err != nil {
		return err
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.opts.SyncHist.Observe(time.Since(start).Seconds())
	w.dirty = false
	w.stats.Syncs++
	return nil
}

// Append validates, frames, and writes one record, then applies the
// sync policy. The error, once non-nil, repeats on every later call.
func (w *Writer) Append(r *Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	start := time.Now()
	if err := w.appendLocked(r); err != nil {
		w.err = err
		return err
	}
	w.opts.AppendHist.Observe(time.Since(start).Seconds())
	return nil
}

func (w *Writer) appendLocked(r *Record) error {
	if err := w.opts.Faults.Hit(fault.SiteJournalAppend); err != nil {
		return err
	}
	buf, err := AppendRecord(w.buf[:0], r)
	if err != nil {
		return err
	}
	w.buf = buf
	if w.f == nil || w.size+len(buf) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.size += len(w.buf)
	w.stats.Appends++
	w.stats.Bytes += int64(len(w.buf))
	w.dirty = true
	if w.opts.Policy == SyncEveryStep {
		return w.flushLocked(true)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the active segment. The
// fleet tick path calls it once per tick under SyncEveryTick; it is a
// no-op when nothing is outstanding.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.flushLocked(true); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Stats snapshots the writer's accounting.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Err returns the sticky failure, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close stops the interval ticker, flushes, fsyncs, and closes the
// active segment. Safe to call more than once.
func (w *Writer) Close() error {
	w.mu.Lock()
	stop, done := w.stop, w.done
	w.stop = nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	err := w.flushLocked(true)
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("journal: %w", cerr)
	}
	w.f = nil
	if w.err == nil {
		w.err = err
	}
	return err
}
