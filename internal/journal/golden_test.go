package journal

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"oic/internal/trace"
)

// The golden journal corpus pins the OICJ wire format across PRs: three
// committed segments under testdata/golden (shared with
// FuzzDecodeJournal's seed corpus). The conformance test reads each,
// requires a clean (untorn) parse, and requires re-encoding the parsed
// records behind a fresh header to reproduce the committed bytes
// exactly — any codec change trips it.
//
// Regenerate after an *intentional* format change with:
//
//	go test ./internal/journal -run TestGoldenJournals -update
var updateGolden = flag.Bool("update", false, "regenerate golden journal segments")

const goldenDir = "testdata/golden"

func goldenCases() map[string][]*Record {
	meta := trace.Meta{Plant: "acc", Scenario: "acc-default", Policy: "always-run"}
	drl := trace.Meta{
		Plant: "thermo", Scenario: "thermo-default", Policy: "drl",
		TrainEpisodes: 24, TrainSteps: 40, TrainSeed: 5,
	}
	all := sampleRecords()
	return map[string][]*Record{
		// One session's full lifecycle.
		"session": {
			{Type: TypeOpen, ID: "s-7", Meta: meta, NX: 2, NU: 1, X0: []float64{25, -1.25}},
			{Type: TypeStep, ID: "s-7", NX: 2, NU: 1, Ran: true, Level: 1,
				W: []float64{0.01, -0.02}, U: []float64{1.5}, X: []float64{24.9, -1.2}},
			{Type: TypeStep, ID: "s-7", NX: 2, NU: 1, Ran: false, Level: 0,
				W: []float64{0, 0}, U: []float64{0}, X: []float64{24.8, -1.15}},
			{Type: TypeClose, ID: "s-7"},
		},
		// One fleet's lifecycle, DRL fingerprint.
		"fleet": {
			{Type: TypeFleetOpen, ID: "f-3", Meta: drl, NX: 1, NU: 1, Budget: 50, Workers: 2, MaxSessions: 100},
			{Type: TypeFleetAdmit, ID: "f-3", Member: 0, NX: 1, X0: []float64{21.5}},
			{Type: TypeFleetStep, ID: "f-3", Member: 0, NX: 1, NU: 1, Ran: true, Forced: true, Level: 2,
				W: []float64{0.1}, U: []float64{-0.8}, X: []float64{21.3}},
			{Type: TypeFleetEvict, ID: "f-3", Member: 0},
			{Type: TypeFleetClose, ID: "f-3"},
		},
		// Every record type interleaved (the round-trip sample set).
		"mixed": all,
	}
}

func TestGoldenJournals(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, recs := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(goldenDir, name+Ext)
			if *updateGolden {
				b := encodeSegment(t, recs)
				if err := os.WriteFile(path, b, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes, %d records)", path, len(b), len(recs))
				return
			}
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden segment (regenerate with -update): %v", err)
			}
			got, torn, err := ReadSegment(b)
			if err != nil {
				t.Fatalf("parsing golden segment: %v", err)
			}
			if torn {
				t.Fatal("golden segment reports torn tail")
			}
			if len(got) != len(recs) {
				t.Fatalf("parsed %d records, want %d", len(got), len(recs))
			}
			// Canonical form: re-encoding reproduces the committed bytes.
			b2 := AppendHeader(nil)
			for _, r := range got {
				if b2, err = AppendRecord(b2, r); err != nil {
					t.Fatal(err)
				}
			}
			if string(b2) != string(b) {
				t.Errorf("re-encoding differs from committed bytes (%d vs %d)", len(b2), len(b))
			}
		})
	}
}
