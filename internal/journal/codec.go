package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Segment layout (all integers little-endian, floats IEEE-754 bits):
//
//	magic   [4]byte  "OICJ"
//	u16     version
//	u16     reserved (zero)
//	records…
//
// Each record:
//
//	u32     payload length
//	u8      type
//	payload (per-type layout below)
//	u32     CRC-32 (IEEE) of the preceding 5+length bytes
//
// Per-type payloads (str = u16 length + bytes, mirroring the trace
// codec; step flags reuse the trace step flag byte):
//
//	open:        str id, u16 nx, u16 nu, u16 memory, u32 episodes,
//	             u32 steps, u64 seed, str plant, str scenario,
//	             str policy, f64×nx x0
//	step:        str id, u16 nx, u16 nu, u8 flags, f64×nx w,
//	             f64×nu u, f64×nx x
//	close:       str id
//	fleet-open:  str id, u16 nx, u16 nu, u16 memory, u32 episodes,
//	             u32 steps, u64 seed, str plant, str scenario,
//	             str policy, u32 budget, u32 workers, u32 max sessions
//	fleet-admit: str id, u32 member, u16 nx, f64×nx x0
//	fleet-step:  str id, u32 member, u16 nx, u16 nu, u8 flags,
//	             f64×nx w, f64×nu u, f64×nx x
//	fleet-evict: str id, u32 member
//	fleet-close: str id
//
// The layout has no optional fields and no padding, so every valid
// record has exactly one encoding — an accepted record re-encodes to
// the identical bytes (fuzz-pinned), the same canonical-form property
// the trace and artifact formats hold.

const (
	magic = "OICJ"
	// HeaderSize is the segment header length in bytes.
	HeaderSize = 8
	// frameOverhead is a record's framing cost: length, type, CRC.
	frameOverhead = 4 + 1 + 4

	flagRan    = 1 << 0
	flagForced = 1 << 1
	levelShift = 2
	levelMask  = 0b11
	flagKnown  = flagRan | flagForced | levelMask<<levelShift
)

// AppendHeader appends a segment header to dst.
func AppendHeader(dst []byte) []byte {
	dst = append(dst, magic...)
	dst = binary.LittleEndian.AppendUint16(dst, Version)
	dst = binary.LittleEndian.AppendUint16(dst, 0)
	return dst
}

// CheckHeader validates a segment header prefix.
func CheckHeader(b []byte) error {
	if len(b) < HeaderSize {
		return fmt.Errorf("journal: segment shorter than header (%d bytes)", len(b))
	}
	if string(b[:4]) != magic {
		return fmt.Errorf("journal: bad magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != Version {
		return fmt.Errorf("journal: unsupported version %d (want %d)", v, Version)
	}
	if r := binary.LittleEndian.Uint16(b[6:]); r != 0 {
		return fmt.Errorf("journal: nonzero reserved field %d", r)
	}
	return nil
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendF64s(dst []byte, vs []float64) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func stepFlags(ran, forced bool, level uint8) byte {
	var f byte
	if ran {
		f |= flagRan
	}
	if forced {
		f |= flagForced
	}
	return f | (level&levelMask)<<levelShift
}

// AppendRecord validates r and appends its framed encoding to dst.
// The returned slice reuses dst's storage when capacity allows, so the
// writer's hot path stays allocation-free after warm-up.
func AppendRecord(dst []byte, r *Record) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	start := len(dst)
	// Reserve the length prefix; backfill once the payload is known.
	dst = append(dst, 0, 0, 0, 0, byte(r.Type))
	body := len(dst)
	dst = appendStr(dst, r.ID)
	switch r.Type {
	case TypeOpen, TypeFleetOpen:
		dst = binary.LittleEndian.AppendUint16(dst, uint16(r.NX))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(r.NU))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(r.Meta.Memory))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Meta.TrainEpisodes))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Meta.TrainSteps))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Meta.TrainSeed))
		dst = appendStr(dst, r.Meta.Plant)
		dst = appendStr(dst, r.Meta.Scenario)
		dst = appendStr(dst, r.Meta.Policy)
		if r.Type == TypeOpen {
			dst = appendF64s(dst, r.X0)
		} else {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Budget))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Workers))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(r.MaxSessions))
		}
	case TypeStep:
		dst = binary.LittleEndian.AppendUint16(dst, uint16(r.NX))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(r.NU))
		dst = append(dst, stepFlags(r.Ran, r.Forced, r.Level))
		dst = appendF64s(dst, r.W)
		dst = appendF64s(dst, r.U)
		dst = appendF64s(dst, r.X)
	case TypeClose, TypeFleetClose:
		// id only
	case TypeFleetAdmit:
		dst = binary.LittleEndian.AppendUint32(dst, r.Member)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(r.NX))
		dst = appendF64s(dst, r.X0)
	case TypeFleetStep:
		dst = binary.LittleEndian.AppendUint32(dst, r.Member)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(r.NX))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(r.NU))
		dst = append(dst, stepFlags(r.Ran, r.Forced, r.Level))
		dst = appendF64s(dst, r.W)
		dst = appendF64s(dst, r.U)
		dst = appendF64s(dst, r.X)
	case TypeFleetEvict:
		dst = binary.LittleEndian.AppendUint32(dst, r.Member)
	}
	payload := len(dst) - body
	if payload > MaxPayload {
		return nil, fmt.Errorf("journal: record payload %d exceeds %d", payload, MaxPayload)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(payload))
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum), nil
}

// rdecoder is a bounds-checked cursor over one record payload.
type rdecoder struct {
	b   []byte
	off int
}

func (d *rdecoder) need(n int) error {
	if len(d.b)-d.off < n {
		return fmt.Errorf("journal: truncated payload at offset %d (need %d bytes)", d.off, n)
	}
	return nil
}

func (d *rdecoder) u8() byte    { v := d.b[d.off]; d.off++; return v }
func (d *rdecoder) u16() uint16 { v := binary.LittleEndian.Uint16(d.b[d.off:]); d.off += 2; return v }
func (d *rdecoder) u32() uint32 { v := binary.LittleEndian.Uint32(d.b[d.off:]); d.off += 4; return v }
func (d *rdecoder) u64() uint64 { v := binary.LittleEndian.Uint64(d.b[d.off:]); d.off += 8; return v }

func (d *rdecoder) f64s(n int) ([]float64, error) {
	if err := d.need(8 * n); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(d.u64())
	}
	return out, nil
}

func (d *rdecoder) str() (string, error) {
	if err := d.need(2); err != nil {
		return "", err
	}
	n := int(d.u16())
	if n > MaxString {
		return "", fmt.Errorf("journal: string length %d exceeds %d", n, MaxString)
	}
	if err := d.need(n); err != nil {
		return "", err
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s, nil
}

func (d *rdecoder) dims(r *Record) error {
	if err := d.need(4); err != nil {
		return err
	}
	r.NX, r.NU = int(d.u16()), int(d.u16())
	if r.NX < 1 || r.NX > MaxDim || r.NU < 1 || r.NU > MaxDim {
		return fmt.Errorf("journal: dimensions %d×%d outside [1, %d]", r.NX, r.NU, MaxDim)
	}
	return nil
}

func (d *rdecoder) meta(r *Record) error {
	if err := d.need(2 + 4 + 4 + 8); err != nil {
		return err
	}
	r.Meta.Memory = int(d.u16())
	r.Meta.TrainEpisodes = int(d.u32())
	r.Meta.TrainSteps = int(d.u32())
	r.Meta.TrainSeed = int64(d.u64())
	if r.Meta.Memory > MaxDim {
		return fmt.Errorf("journal: memory %d exceeds %d", r.Meta.Memory, MaxDim)
	}
	var err error
	if r.Meta.Plant, err = d.str(); err != nil {
		return err
	}
	if r.Meta.Scenario, err = d.str(); err != nil {
		return err
	}
	if r.Meta.Policy, err = d.str(); err != nil {
		return err
	}
	return nil
}

func (d *rdecoder) step(r *Record) error {
	if err := d.need(1); err != nil {
		return err
	}
	flags := d.u8()
	if flags&^byte(flagKnown) != 0 {
		return fmt.Errorf("journal: unknown flag bits 0x%02x", flags)
	}
	r.Ran = flags&flagRan != 0
	r.Forced = flags&flagForced != 0
	r.Level = (flags >> levelShift) & levelMask
	var err error
	if r.W, err = d.f64s(r.NX); err != nil {
		return err
	}
	if r.U, err = d.f64s(r.NU); err != nil {
		return err
	}
	r.X, err = d.f64s(r.NX)
	return err
}

// DecodeRecord parses one framed record from the front of b, returning
// the record and the number of bytes consumed. It is strict: the CRC
// must match, the payload must decode exactly (no trailing bytes), and
// every field must be in range. A short or corrupt b returns an error
// and consumes nothing — the caller treats that as the torn tail.
func DecodeRecord(b []byte) (*Record, int, error) {
	if len(b) < frameOverhead {
		return nil, 0, fmt.Errorf("journal: truncated frame (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n > MaxPayload {
		return nil, 0, fmt.Errorf("journal: payload length %d exceeds %d", n, MaxPayload)
	}
	total := frameOverhead + n
	if len(b) < total {
		return nil, 0, fmt.Errorf("journal: truncated record (have %d of %d bytes)", len(b), total)
	}
	stored := binary.LittleEndian.Uint32(b[total-4:])
	if got := crc32.ChecksumIEEE(b[:total-4]); got != stored {
		return nil, 0, fmt.Errorf("journal: checksum mismatch (stored %08x, computed %08x)", stored, got)
	}
	r := &Record{Type: Type(b[4])}
	d := &rdecoder{b: b[5 : total-4]}
	var err error
	if r.ID, err = d.str(); err != nil {
		return nil, 0, err
	}
	switch r.Type {
	case TypeOpen, TypeFleetOpen:
		if err := d.dims(r); err != nil {
			return nil, 0, err
		}
		if err := d.meta(r); err != nil {
			return nil, 0, err
		}
		if r.Type == TypeOpen {
			if r.X0, err = d.f64s(r.NX); err != nil {
				return nil, 0, err
			}
		} else {
			if err := d.need(12); err != nil {
				return nil, 0, err
			}
			r.Budget = int(d.u32())
			r.Workers = int(d.u32())
			r.MaxSessions = int(d.u32())
		}
	case TypeStep:
		if err := d.dims(r); err != nil {
			return nil, 0, err
		}
		if err := d.step(r); err != nil {
			return nil, 0, err
		}
	case TypeClose, TypeFleetClose:
		// id only
	case TypeFleetAdmit:
		if err := d.need(4 + 2); err != nil {
			return nil, 0, err
		}
		r.Member = d.u32()
		r.NX = int(d.u16())
		if r.NX < 1 || r.NX > MaxDim {
			return nil, 0, fmt.Errorf("journal: nx %d outside [1, %d]", r.NX, MaxDim)
		}
		if r.X0, err = d.f64s(r.NX); err != nil {
			return nil, 0, err
		}
	case TypeFleetStep:
		if err := d.need(4); err != nil {
			return nil, 0, err
		}
		r.Member = d.u32()
		if err := d.dims(r); err != nil {
			return nil, 0, err
		}
		if err := d.step(r); err != nil {
			return nil, 0, err
		}
	case TypeFleetEvict:
		if err := d.need(4); err != nil {
			return nil, 0, err
		}
		r.Member = d.u32()
	default:
		return nil, 0, fmt.Errorf("journal: unknown record type %d", r.Type)
	}
	if d.off != len(d.b) {
		return nil, 0, fmt.Errorf("journal: %d trailing payload bytes", len(d.b)-d.off)
	}
	if err := r.Validate(); err != nil {
		return nil, 0, err
	}
	return r, total, nil
}

// ReadSegment parses a whole segment. The header must be valid (a file
// that is not a journal is an error); the record stream is read until
// the first torn or corrupt record, which truncates the segment there —
// torn reports whether any bytes were discarded. No prefix of a valid
// segment, and no corruption of one, panics (fuzz-pinned).
func ReadSegment(b []byte) (recs []*Record, torn bool, err error) {
	if err := CheckHeader(b); err != nil {
		return nil, false, err
	}
	off := HeaderSize
	for off < len(b) {
		r, n, err := DecodeRecord(b[off:])
		if err != nil {
			return recs, true, nil
		}
		recs = append(recs, r)
		off += n
	}
	return recs, false, nil
}
