package journal

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"oic/internal/fault"
	"oic/internal/trace"
)

func sampleRecords() []*Record {
	meta := trace.Meta{
		Plant: "acc", Scenario: "acc-default", Policy: "drl",
		TrainEpisodes: 24, TrainSteps: 40, TrainSeed: 5,
	}
	return []*Record{
		{Type: TypeOpen, ID: "s-1", Meta: meta, NX: 2, NU: 1, X0: []float64{10, -0.5}},
		{Type: TypeStep, ID: "s-1", NX: 2, NU: 1, Ran: true, Forced: false, Level: 1,
			W: []float64{0.1, -0.2}, U: []float64{0.75}, X: []float64{9.8, -0.4}},
		{Type: TypeStep, ID: "s-1", NX: 2, NU: 1, Ran: false, Level: 0,
			W: []float64{0, 0.05}, U: []float64{0}, X: []float64{9.7, -0.35}},
		{Type: TypeFleetOpen, ID: "f-1", Meta: meta, NX: 2, NU: 1,
			Budget: 100, Workers: 4, MaxSessions: 1000},
		{Type: TypeFleetAdmit, ID: "f-1", Member: 0, NX: 2, X0: []float64{12, 0}},
		{Type: TypeFleetAdmit, ID: "f-1", Member: 1, NX: 2, X0: []float64{11, 0.25}},
		{Type: TypeFleetStep, ID: "f-1", Member: 0, NX: 2, NU: 1, Ran: true, Forced: true, Level: 2,
			W: []float64{-0.1, 0}, U: []float64{-1.5}, X: []float64{11.9, 0.1}},
		{Type: TypeFleetEvict, ID: "f-1", Member: 1},
		{Type: TypeClose, ID: "s-1"},
		{Type: TypeFleetClose, ID: "f-1"},
	}
}

// encodeSegment builds an in-memory segment holding recs.
func encodeSegment(t *testing.T, recs []*Record) []byte {
	t.Helper()
	b := AppendHeader(nil)
	for _, r := range recs {
		var err error
		if b, err = AppendRecord(b, r); err != nil {
			t.Fatalf("AppendRecord(%s): %v", r.Type, err)
		}
	}
	return b
}

// Every record type round-trips through the codec and re-encodes to
// identical bytes (the canonical-form property the fuzzer pins).
func TestRecordRoundTrip(t *testing.T) {
	for _, r := range sampleRecords() {
		enc, err := AppendRecord(nil, r)
		if err != nil {
			t.Fatalf("%s: %v", r.Type, err)
		}
		got, n, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", r.Type, err)
		}
		if n != len(enc) {
			t.Fatalf("%s: consumed %d of %d bytes", r.Type, n, len(enc))
		}
		enc2, err := AppendRecord(nil, got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", r.Type, err)
		}
		if string(enc2) != string(enc) {
			t.Fatalf("%s: re-encoding differs", r.Type)
		}
	}
}

func TestReadSegment(t *testing.T) {
	recs := sampleRecords()
	b := encodeSegment(t, recs)
	got, torn, err := ReadSegment(b)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean segment reported torn")
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Type != recs[i].Type || r.ID != recs[i].ID {
			t.Fatalf("record %d: got %s/%s, want %s/%s", i, r.Type, r.ID, recs[i].Type, recs[i].ID)
		}
	}
}

// The corruption suite: every way a segment can be damaged — flipped
// CRC, truncated record, truncated header, empty file, flipped payload
// byte, oversized length prefix — must truncate at the damage, never
// panic, and report torn.
func TestCorruptionSuite(t *testing.T) {
	recs := sampleRecords()
	clean := encodeSegment(t, recs)

	// Offsets of each record boundary, so cases can address record k.
	bounds := []int{HeaderSize}
	for off := HeaderSize; off < len(clean); {
		n := int(binary.LittleEndian.Uint32(clean[off:])) + frameOverhead
		off += n
		bounds = append(bounds, off)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   int // records surviving
	}{
		{"flipped crc last record", func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}, len(recs) - 1},
		{"flipped crc mid record", func(b []byte) []byte {
			b[bounds[4]-1] ^= 0xff // corrupt record 3's CRC
			return b
		}, 3},
		{"flipped payload byte", func(b []byte) []byte {
			b[bounds[2]+10] ^= 0x01 // inside record 2's payload
			return b
		}, 2},
		{"truncated record", func(b []byte) []byte {
			return b[:bounds[5]+7] // partial frame of record 5
		}, 5},
		{"truncated mid-length-prefix", func(b []byte) []byte {
			return b[:bounds[1]+2]
		}, 1},
		{"oversized length prefix", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[bounds[3]:], MaxPayload+1)
			return b
		}, 3},
		{"unknown record type", func(b []byte) []byte {
			// Valid frame, valid CRC, unknown type byte.
			bad := append([]byte(nil), b[:bounds[2]]...)
			frame := []byte{3, 0, 0, 0, 0xEE, 'x', 'y', 'z'}
			var crc [4]byte
			binary.LittleEndian.PutUint32(crc[:], crc32ieee(frame))
			return append(bad, append(frame, crc[:]...)...)
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), clean...))
			got, torn, err := ReadSegment(b)
			if err != nil {
				t.Fatalf("ReadSegment errored (must truncate, not fail): %v", err)
			}
			if !torn {
				t.Fatal("damage not reported as torn")
			}
			if len(got) != tc.want {
				t.Fatalf("survived %d records, want %d", len(got), tc.want)
			}
		})
	}

	t.Run("truncated header", func(t *testing.T) {
		if _, _, err := ReadSegment(clean[:5]); err == nil {
			t.Fatal("truncated header accepted")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), clean...)
		b[0] = 'X'
		if _, _, err := ReadSegment(b); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("empty input", func(t *testing.T) {
		if _, _, err := ReadSegment(nil); err == nil {
			t.Fatal("empty input accepted")
		}
	})
	t.Run("header only", func(t *testing.T) {
		got, torn, err := ReadSegment(AppendHeader(nil))
		if err != nil || torn || len(got) != 0 {
			t.Fatalf("header-only segment: recs=%d torn=%v err=%v", len(got), torn, err)
		}
	})
}

func crc32ieee(b []byte) uint32 {
	// Tiny local mirror to keep the test self-contained.
	const poly = 0xedb88320
	crc := ^uint32(0)
	for _, c := range b {
		crc ^= uint32(c)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// Writer → Recover round trip: records written across a rotation come
// back in order with the right per-session/per-fleet structure.
func TestWriterRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(Options{Dir: dir, SegmentBytes: 256, Policy: SyncEveryStep})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append(%s): %v", r.Type, err)
		}
	}
	st := w.Stats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Rotations < 2 {
		t.Fatalf("SegmentBytes=256 produced %d segments, want rotation", st.Rotations)
	}
	if st.Syncs < st.Appends {
		t.Fatalf("SyncEveryStep: %d syncs for %d appends", st.Syncs, st.Appends)
	}

	rv, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rv.TornTails != 0 || rv.Orphans != 0 {
		t.Fatalf("clean journal: torn=%d orphans=%d", rv.TornTails, rv.Orphans)
	}
	if len(rv.Sessions) != 1 || len(rv.Fleets) != 1 {
		t.Fatalf("recovered %d sessions, %d fleets", len(rv.Sessions), len(rv.Fleets))
	}
	s := rv.Sessions[0]
	if s.ID != "s-1" || !s.Closed || len(s.Steps) != 2 {
		t.Fatalf("session: id=%s closed=%v steps=%d", s.ID, s.Closed, len(s.Steps))
	}
	f := rv.Fleets[0]
	if f.ID != "f-1" || !f.Closed || len(f.Members) != 2 {
		t.Fatalf("fleet: id=%s closed=%v members=%d", f.ID, f.Closed, len(f.Members))
	}
	if !f.Members[1].Evicted || len(f.Members[0].Steps) != 1 {
		t.Fatal("member eviction/steps not recovered")
	}
	if live, fleets := rv.Live(); live != 0 || fleets != 0 {
		t.Fatalf("Live() = %d, %d after closes", live, fleets)
	}

	// The assembled trace validates and carries the Norm1 energy.
	tr := s.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("assembled trace invalid: %v", err)
	}
	if want := 0.75 + 0.0; math.Abs(tr.Energy-want) > 1e-15 {
		t.Fatalf("energy %v, want %v", tr.Energy, want)
	}
}

// A torn tail on disk (simulating a crash mid-write) is truncated and
// counted; the records before the tear survive.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(Options{Dir: dir, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs[:3] { // open + 2 steps, no close
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	// Tear the last 5 bytes off, as a power cut mid-write would.
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	rv, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rv.TornTails != 1 {
		t.Fatalf("torn tails = %d, want 1", rv.TornTails)
	}
	if len(rv.Sessions) != 1 || len(rv.Sessions[0].Steps) != 1 {
		t.Fatalf("want the pre-tear prefix (1 step), got %d sessions / %d steps",
			len(rv.Sessions), len(rv.Sessions[0].Steps))
	}
	if rv.Sessions[0].Closed {
		t.Fatal("torn session must recover as live")
	}
}

// A restart continues segment numbering and recovery folds all
// segments; a zero-byte segment (crash between create and header) is
// tolerated and counted.
func TestRecoverAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()

	w1, err := OpenWriter(Options{Dir: dir, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Append(recs[0]); err != nil { // open s-1
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWriter(Options{Dir: dir, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(recs[1]); err != nil { // step s-1
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulated crash between segment create and header write.
	if err := os.WriteFile(filepath.Join(dir, "journal-99999999"+Ext), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("segments = %d, want 3 (two writers + empty)", len(segs))
	}
	rv, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Sessions) != 1 || len(rv.Sessions[0].Steps) != 1 {
		t.Fatalf("cross-segment fold failed: %d sessions", len(rv.Sessions))
	}
	if rv.TornTails != 1 {
		t.Fatalf("empty segment not counted as torn (torn=%d)", rv.TornTails)
	}
}

// Recovering a missing directory is an empty recovery, not an error.
func TestRecoverMissingDir(t *testing.T) {
	rv, err := Recover(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Sessions)+len(rv.Fleets)+rv.Segments != 0 {
		t.Fatal("missing dir should recover empty")
	}
}

// An injected append failure is sticky: the journal freezes at the cut
// and every later append returns the injected error.
func TestWriterFaultInjection(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(1)
	inj.FailAfter(fault.SiteJournalAppend, 2)
	w, err := OpenWriter(Options{Dir: dir, Policy: SyncEveryStep, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := w.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[2]); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append 3: want injected failure, got %v", err)
	}
	if err := w.Append(recs[2]); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append 4: sticky error lost: %v", err)
	}
	w.Close()

	rv, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Sessions) != 1 || len(rv.Sessions[0].Steps) != 1 {
		t.Fatalf("journal cut at the injected point: want 1 step, got %d sessions", len(rv.Sessions))
	}
}

// Sync policies: tick-sync only syncs on Sync(); interval syncs on its
// own; none never syncs until close.
func TestSyncPolicies(t *testing.T) {
	rec := sampleRecords()[0]
	t.Run("tick", func(t *testing.T) {
		w, err := OpenWriter(Options{Dir: t.TempDir(), Policy: SyncEveryTick})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.Append(rec)
		if st := w.Stats(); st.Syncs != 0 {
			t.Fatalf("tick policy synced on append (%d)", st.Syncs)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if st := w.Stats(); st.Syncs != 1 {
			t.Fatalf("Sync() did not sync (%d)", st.Syncs)
		}
		// Idempotent when clean.
		w.Sync()
		if st := w.Stats(); st.Syncs != 1 {
			t.Fatalf("clean Sync() synced again (%d)", st.Syncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		w, err := OpenWriter(Options{Dir: t.TempDir(), Policy: SyncInterval, Interval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.Append(rec)
		deadline := time.Now().Add(2 * time.Second)
		for w.Stats().Syncs == 0 {
			if time.Now().After(deadline) {
				t.Fatal("interval policy never synced")
			}
			time.Sleep(time.Millisecond)
		}
	})
	t.Run("none", func(t *testing.T) {
		w, err := OpenWriter(Options{Dir: t.TempDir(), Policy: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		w.Append(rec)
		if st := w.Stats(); st.Syncs != 0 {
			t.Fatalf("none policy synced (%d)", st.Syncs)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{
		"none": SyncNone, "step": SyncEveryStep, "tick": SyncEveryTick, "interval": SyncInterval,
		" Step ": SyncEveryStep,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus")
	}
}

// Records that reference ids never opened (pruned segments) are counted
// as orphans, not errors.
func TestRecoverOrphans(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(Options{Dir: dir, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := w.Append(recs[1]); err != nil { // step for unopened s-1
		t.Fatal(err)
	}
	if err := w.Append(recs[8]); err != nil { // close for unopened s-1
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rv, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Orphans != 2 || len(rv.Sessions) != 0 {
		t.Fatalf("orphans=%d sessions=%d, want 2/0", rv.Orphans, len(rv.Sessions))
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []*Record{
		{Type: TypeOpen, ID: "", NX: 2, NU: 1},
		{Type: TypeOpen, ID: "s", Meta: trace.Meta{Plant: "acc"}, NX: 0, NU: 1},
		{Type: TypeOpen, ID: "s", Meta: trace.Meta{Plant: "acc"}, NX: MaxDim + 1, NU: 1, X0: make([]float64, MaxDim+1)},
		{Type: TypeOpen, ID: "s", Meta: trace.Meta{}, NX: 2, NU: 1, X0: []float64{1, 2}},
		{Type: TypeStep, ID: "s", NX: 2, NU: 1, Level: 4, W: []float64{1, 2}, U: []float64{1}, X: []float64{1, 2}},
		{Type: TypeStep, ID: "s", NX: 2, NU: 1, W: []float64{1}, U: []float64{1}, X: []float64{1, 2}},
		{Type: TypeFleetOpen, ID: "f", Meta: trace.Meta{Plant: "acc"}, NX: 2, NU: 1, Budget: -1},
		{Type: TypeFleetAdmit, ID: "f", NX: 2, X0: []float64{1}},
		{Type: Type(99), ID: "x"},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d (%s): invalid record accepted", i, r.Type)
		}
		if _, err := AppendRecord(nil, r); err == nil {
			t.Errorf("case %d (%s): invalid record encoded", i, r.Type)
		}
	}
}
