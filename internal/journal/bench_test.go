package journal

import (
	"testing"

	"oic/internal/trace"
)

func benchStep() *Record {
	return &Record{
		Type: TypeStep, ID: "s-1", NX: 2, NU: 1, Ran: true, Level: 1,
		W: []float64{0.1, -0.2}, U: []float64{0.75}, X: []float64{9.8, -0.4},
	}
}

// BenchmarkJournalEncode is the pure codec cost of one step record —
// the irreducible CPU floor under every append.
func BenchmarkJournalEncode(b *testing.B) {
	r := benchStep()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendRecord(buf[:0], r)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalAppend measures the full hot-path append (encode +
// buffered write) per fsync policy. The policy sweep is the
// EXPERIMENTS.md journaling-overhead table; SyncEveryStep pays one
// fsync per op, SyncEveryTick amortizes one fsync over a simulated
// 64-member tick, SyncNone is the buffered floor.
func BenchmarkJournalAppend(b *testing.B) {
	r := benchStep()
	open := &Record{Type: TypeOpen, ID: "s-1",
		Meta: trace.Meta{Plant: "acc", Scenario: "acc-default", Policy: "always-run"},
		NX: 2, NU: 1, X0: []float64{10, -0.5}}
	run := func(b *testing.B, policy SyncPolicy, tickEvery int) {
		w, err := OpenWriter(Options{Dir: b.TempDir(), Policy: policy})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		if err := w.Append(open); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Append(r); err != nil {
				b.Fatal(err)
			}
			if tickEvery > 0 && i%tickEvery == tickEvery-1 {
				if err := w.Sync(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("none", func(b *testing.B) { run(b, SyncNone, 0) })
	b.Run("tick64", func(b *testing.B) { run(b, SyncEveryTick, 64) })
	b.Run("step", func(b *testing.B) { run(b, SyncEveryStep, 0) })
}

// BenchmarkJournalRecover measures replay-to-image speed: fold a
// 10k-step single-session journal back into a SessionState.
func BenchmarkJournalRecover(b *testing.B) {
	dir := b.TempDir()
	w, err := OpenWriter(Options{Dir: dir, Policy: SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	open := &Record{Type: TypeOpen, ID: "s-1",
		Meta: trace.Meta{Plant: "acc", Scenario: "acc-default", Policy: "always-run"},
		NX: 2, NU: 1, X0: []float64{10, -0.5}}
	if err := w.Append(open); err != nil {
		b.Fatal(err)
	}
	r := benchStep()
	for i := 0; i < 10000; i++ {
		if err := w.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rv, err := Recover(dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(rv.Sessions) != 1 || len(rv.Sessions[0].Steps) != 10000 {
			b.Fatal("bad recovery")
		}
	}
}
