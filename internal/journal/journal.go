// Package journal is the runtime's write-ahead log (DESIGN.md §10): an
// append-only record of every durable state transition a serving node
// makes — session opened, step taken, session closed, and the fleet
// equivalents — written *before* the result is acknowledged to the
// client. Because a recorded step plus the PR 5 conformance-replay
// guarantee reconstructs a session byte-identically (the engine re-runs
// Algorithm 1 with the recorded skip/run choices and disturbances, which
// reproduces the LP warm-start chain exactly), replaying the journal to
// its head after a crash restores the server to the precise state the
// last acknowledged step left it in.
//
// The on-disk unit is a segment file: an 8-byte header (OICJ magic,
// version, reserved) followed by length-prefixed records, each closed by
// a CRC-32 (IEEE) of its own bytes. Segments rotate at a size threshold;
// the writer offers four fsync policies trading durability for
// throughput. The reader is strict per record (exact lengths, bounded
// dimensions, canonical encoding) but tolerant at the tail: a torn or
// corrupt record truncates the segment at the last good boundary —
// exactly what a power cut mid-write leaves behind — and is counted,
// never fatal. FuzzDecodeJournal pins that no byte prefix panics and
// that every accepted record re-encodes to identical bytes.
package journal

import (
	"fmt"

	"oic/internal/trace"
)

// Version is the OICJ wire-format version. Readers accept exactly this
// version; bumping it is a wire-format change.
const Version = 1

// Format limits. Dimension and string bounds mirror the trace format so
// a journal can hold anything the trace recorder can; MaxPayload bounds
// what a hostile length prefix can make the reader allocate.
const (
	// MaxDim caps state/input dimensions (= trace.MaxDim).
	MaxDim = trace.MaxDim
	// MaxString caps id and fingerprint string lengths (= trace.MaxString).
	MaxString = trace.MaxString
	// MaxPayload caps one record's payload. The largest legal record (a
	// fleet-open with maximal strings) is under 5 KiB; 16 KiB leaves
	// headroom without letting a corrupt length prefix allocate much.
	MaxPayload = 1 << 14
)

// Type discriminates journal records.
type Type uint8

const (
	// TypeOpen opens a session: id, engine fingerprint, dims, x0.
	TypeOpen Type = 1
	// TypeStep appends one session step: id, dims, flags, w/u/x.
	TypeStep Type = 2
	// TypeClose closes a session (client delete or TTL eviction — never
	// written on server shutdown, so live sessions survive restarts).
	TypeClose Type = 3
	// TypeFleetOpen opens a fleet: id, engine fingerprint, dims, and the
	// scheduler shape (budget, workers, max sessions).
	TypeFleetOpen Type = 4
	// TypeFleetAdmit admits a member: fleet id, member index, x0.
	TypeFleetAdmit Type = 5
	// TypeFleetStep appends one member step.
	TypeFleetStep Type = 6
	// TypeFleetEvict removes a member (client release or step error).
	TypeFleetEvict Type = 7
	// TypeFleetClose closes a fleet.
	TypeFleetClose Type = 8
)

func (t Type) String() string {
	switch t {
	case TypeOpen:
		return "open"
	case TypeStep:
		return "step"
	case TypeClose:
		return "close"
	case TypeFleetOpen:
		return "fleet-open"
	case TypeFleetAdmit:
		return "fleet-admit"
	case TypeFleetStep:
		return "fleet-step"
	case TypeFleetEvict:
		return "fleet-evict"
	case TypeFleetClose:
		return "fleet-close"
	}
	return fmt.Sprintf("type-%d", uint8(t))
}

// Record is one journal entry. It is a tagged union: Type selects which
// fields are meaningful (and encoded) — see the codec for the per-type
// wire layouts. Step flags reuse the trace step encoding (bit0 ran,
// bit1 forced, bits 2–3 level).
type Record struct {
	Type Type

	// ID names the session or fleet. All record types carry it.
	ID string

	// Member is the fleet member index (fleet-admit/step/evict).
	Member uint32

	// Meta is the engine-configuration fingerprint (open/fleet-open).
	Meta trace.Meta

	// NX, NU are the plant dimensions (open, step, fleet-open,
	// fleet-admit [NX only], fleet-step). Records are self-describing so
	// the reader never needs cross-record context to bound a decode.
	NX, NU int

	// X0 is the initial state (open, fleet-admit).
	X0 []float64

	// Budget, Workers, MaxSessions are the scheduler shape (fleet-open).
	Budget, Workers, MaxSessions int

	// Step payload (step, fleet-step) — mirrors trace.Step.
	Ran    bool
	Forced bool
	Level  uint8
	W, U, X []float64
}

// Validate checks the structural invariants of a record for its type:
// id present and bounded, dimensions in range, slice lengths consistent.
// Encode runs it; Decode enforces the same bounds field by field.
func (r *Record) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("journal: %s record with empty id", r.Type)
	}
	if len(r.ID) > MaxString {
		return fmt.Errorf("journal: id exceeds %d bytes", MaxString)
	}
	checkDims := func() error {
		if r.NX < 1 || r.NX > MaxDim {
			return fmt.Errorf("journal: nx %d outside [1, %d]", r.NX, MaxDim)
		}
		if r.NU < 1 || r.NU > MaxDim {
			return fmt.Errorf("journal: nu %d outside [1, %d]", r.NU, MaxDim)
		}
		return nil
	}
	checkMeta := func() error {
		if r.Meta.Plant == "" {
			return fmt.Errorf("journal: %s record with empty plant", r.Type)
		}
		for _, s := range []string{r.Meta.Plant, r.Meta.Scenario, r.Meta.Policy} {
			if len(s) > MaxString {
				return fmt.Errorf("journal: fingerprint string exceeds %d bytes", MaxString)
			}
		}
		if r.Meta.Memory < 0 || r.Meta.Memory > MaxDim {
			return fmt.Errorf("journal: memory %d outside [0, %d]", r.Meta.Memory, MaxDim)
		}
		if r.Meta.TrainEpisodes < 0 || r.Meta.TrainSteps < 0 {
			return fmt.Errorf("journal: negative training budget")
		}
		return nil
	}
	checkStep := func() error {
		if r.Level > 3 {
			return fmt.Errorf("journal: level %d out of range", r.Level)
		}
		if len(r.W) != r.NX || len(r.X) != r.NX {
			return fmt.Errorf("journal: w/x dims %d/%d, want %d", len(r.W), len(r.X), r.NX)
		}
		if len(r.U) != r.NU {
			return fmt.Errorf("journal: u dim %d, want %d", len(r.U), r.NU)
		}
		return nil
	}
	switch r.Type {
	case TypeOpen:
		if err := checkDims(); err != nil {
			return err
		}
		if err := checkMeta(); err != nil {
			return err
		}
		if len(r.X0) != r.NX {
			return fmt.Errorf("journal: x0 dim %d, want %d", len(r.X0), r.NX)
		}
	case TypeStep:
		if err := checkDims(); err != nil {
			return err
		}
		if err := checkStep(); err != nil {
			return err
		}
	case TypeClose, TypeFleetClose:
		// id only
	case TypeFleetOpen:
		if err := checkDims(); err != nil {
			return err
		}
		if err := checkMeta(); err != nil {
			return err
		}
		if r.Budget < 0 || r.Workers < 0 || r.MaxSessions < 0 {
			return fmt.Errorf("journal: negative fleet shape")
		}
	case TypeFleetAdmit:
		if r.NX < 1 || r.NX > MaxDim {
			return fmt.Errorf("journal: nx %d outside [1, %d]", r.NX, MaxDim)
		}
		if len(r.X0) != r.NX {
			return fmt.Errorf("journal: x0 dim %d, want %d", len(r.X0), r.NX)
		}
	case TypeFleetStep:
		if err := checkDims(); err != nil {
			return err
		}
		if err := checkStep(); err != nil {
			return err
		}
	case TypeFleetEvict:
		// id + member
	default:
		return fmt.Errorf("journal: unknown record type %d", r.Type)
	}
	return nil
}
