package journal

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"

	"oic/internal/trace"
)

// SessionState is one session reconstructed from the journal: its
// engine fingerprint, initial state, and every acknowledged step, in
// order — exactly the material replay-to-head needs.
type SessionState struct {
	ID     string
	Meta   trace.Meta
	NX, NU int
	X0     []float64
	Steps  []trace.Step
	// Closed marks a session the journal saw explicitly closed (client
	// delete or TTL eviction); recovery skips resurrecting it.
	Closed bool
}

// MemberState is one fleet member's reconstructed history.
type MemberState struct {
	Member uint32
	X0     []float64
	Steps  []trace.Step
	// Evicted marks a member released (or error-evicted) before the
	// crash; recovery does not re-admit it.
	Evicted bool
}

// FleetState is one fleet reconstructed from the journal.
type FleetState struct {
	ID          string
	Meta        trace.Meta
	NX, NU      int
	Budget      int
	Workers     int
	MaxSessions int
	Members     []*MemberState // admission order
	Closed      bool

	byMember map[uint32]*MemberState
}

// Recovery is the replayable image of a journal directory.
type Recovery struct {
	Sessions []*SessionState // open order
	Fleets   []*FleetState   // open order

	Segments  int // segment files read
	Records   int // records applied
	TornTails int // segments truncated at a torn or corrupt record
	Orphans   int // records referencing an id the journal never opened
}

// Live counts sessions and fleets that were open at the journal head.
func (rv *Recovery) Live() (sessions, fleets int) {
	for _, s := range rv.Sessions {
		if !s.Closed {
			sessions++
		}
	}
	for _, f := range rv.Fleets {
		if !f.Closed {
			fleets++
		}
	}
	return
}

// Trace assembles the session's history as a replayable trace. Energy
// is accumulated per step as ‖u‖₁ in the same float order the runtime
// uses, so the assembled trace passes the engine's conformance checks.
func (s *SessionState) Trace() *trace.Trace {
	return assembleTrace(s.Meta, s.NX, s.NU, s.X0, s.Steps)
}

// Trace assembles one member's history against the fleet's fingerprint.
func (f *FleetState) Trace(m *MemberState) *trace.Trace {
	return assembleTrace(f.Meta, f.NX, f.NU, m.X0, m.Steps)
}

func assembleTrace(meta trace.Meta, nx, nu int, x0 []float64, steps []trace.Step) *trace.Trace {
	t := &trace.Trace{
		Version: trace.Version,
		Meta:    meta,
		NX:      nx,
		NU:      nu,
		X0:      x0,
		Steps:   steps,
	}
	for i := range steps {
		n1 := 0.0
		for _, v := range steps[i].U {
			n1 += math.Abs(v)
		}
		t.Energy += n1
	}
	return t
}

// Recover reads every segment in dir in write order and folds the
// record stream into per-session and per-fleet state. Torn tails
// truncate their segment and are counted; records for ids the journal
// never opened (possible when older segments were pruned) are counted
// as orphans and skipped. Only an unreadable directory or file is an
// error — a journal that decodes to nothing is an empty Recovery.
func Recover(dir string) (*Recovery, error) {
	segs, err := Segments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &Recovery{}, nil
		}
		return nil, err
	}
	rv := &Recovery{}
	sessions := map[string]*SessionState{}
	fleets := map[string]*FleetState{}
	for _, path := range segs {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		if len(b) == 0 {
			// A crash between create and header write leaves a zero-byte
			// segment; it holds no records by construction.
			rv.Segments++
			rv.TornTails++
			continue
		}
		recs, torn, err := ReadSegment(b)
		if err != nil {
			return nil, fmt.Errorf("journal: %s: %w", path, err)
		}
		rv.Segments++
		if torn {
			rv.TornTails++
		}
		for _, r := range recs {
			rv.Records++
			rv.apply(r, sessions, fleets)
		}
	}
	return rv, nil
}

func (rv *Recovery) apply(r *Record, sessions map[string]*SessionState, fleets map[string]*FleetState) {
	switch r.Type {
	case TypeOpen:
		s := &SessionState{ID: r.ID, Meta: r.Meta, NX: r.NX, NU: r.NU, X0: r.X0}
		sessions[r.ID] = s
		rv.Sessions = append(rv.Sessions, s)
	case TypeStep:
		s := sessions[r.ID]
		if s == nil || s.Closed || s.NX != r.NX || s.NU != r.NU || len(s.Steps) >= trace.MaxSteps {
			rv.Orphans++
			return
		}
		s.Steps = append(s.Steps, trace.Step{
			Ran: r.Ran, Forced: r.Forced, Level: r.Level, W: r.W, U: r.U, X: r.X,
		})
	case TypeClose:
		s := sessions[r.ID]
		if s == nil {
			rv.Orphans++
			return
		}
		s.Closed = true
	case TypeFleetOpen:
		f := &FleetState{
			ID: r.ID, Meta: r.Meta, NX: r.NX, NU: r.NU,
			Budget: r.Budget, Workers: r.Workers, MaxSessions: r.MaxSessions,
			byMember: map[uint32]*MemberState{},
		}
		fleets[r.ID] = f
		rv.Fleets = append(rv.Fleets, f)
	case TypeFleetAdmit:
		f := fleets[r.ID]
		if f == nil || f.Closed || f.NX != r.NX {
			rv.Orphans++
			return
		}
		m := &MemberState{Member: r.Member, X0: r.X0}
		f.byMember[r.Member] = m
		f.Members = append(f.Members, m)
	case TypeFleetStep:
		f := fleets[r.ID]
		if f == nil || f.Closed || f.NX != r.NX || f.NU != r.NU {
			rv.Orphans++
			return
		}
		m := f.byMember[r.Member]
		if m == nil || m.Evicted || len(m.Steps) >= trace.MaxSteps {
			rv.Orphans++
			return
		}
		m.Steps = append(m.Steps, trace.Step{
			Ran: r.Ran, Forced: r.Forced, Level: r.Level, W: r.W, U: r.U, X: r.X,
		})
	case TypeFleetEvict:
		f := fleets[r.ID]
		if f == nil {
			rv.Orphans++
			return
		}
		if m := f.byMember[r.Member]; m != nil {
			m.Evicted = true
		} else {
			rv.Orphans++
		}
	case TypeFleetClose:
		f := fleets[r.ID]
		if f == nil {
			rv.Orphans++
			return
		}
		f.Closed = true
	}
}

// SortMembers orders each fleet's members by index; Fleet recovery
// re-admits in index order so recovered member ids match the originals.
func (rv *Recovery) SortMembers() {
	for _, f := range rv.Fleets {
		sort.Slice(f.Members, func(i, j int) bool { return f.Members[i].Member < f.Members[j].Member })
	}
}
