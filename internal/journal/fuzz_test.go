package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeJournal hammers the segment reader with mutated inputs,
// seeded with the golden corpus. Properties: ReadSegment never panics
// on any input; whatever prefix it accepts re-encodes to exactly the
// bytes it consumed (canonical form), so truncation is the *only*
// information loss a torn or corrupt tail can cause.
func FuzzDecodeJournal(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("testdata", "golden", "*"+Ext))
	for _, path := range seeds {
		if b, err := os.ReadFile(path); err == nil {
			f.Add(b)
		}
	}
	f.Add(AppendHeader(nil))
	f.Add([]byte("OICJ"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, torn, err := ReadSegment(b)
		if err != nil {
			return
		}
		out := AppendHeader(nil)
		for _, r := range recs {
			var aerr error
			if out, aerr = AppendRecord(out, r); aerr != nil {
				t.Fatalf("accepted record fails to re-encode: %v", aerr)
			}
		}
		if torn {
			// The accepted prefix must be byte-identical to the consumed
			// prefix of the input.
			if len(out) > len(b) || string(b[:len(out)]) != string(out) {
				t.Fatalf("torn parse not a faithful prefix (%d of %d bytes)", len(out), len(b))
			}
		} else if string(out) != string(b) {
			t.Fatalf("clean parse not canonical (%d vs %d bytes)", len(out), len(b))
		}
	})
}
