package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary wire layout (all integers little-endian, floats IEEE-754 bits):
//
//	magic   [4]byte  "OICT"
//	u16     version
//	u16     nx
//	u16     nu
//	u16     memory
//	u32     train episodes
//	u32     train steps
//	u64     train seed (two's complement)
//	str     plant     (u16 length + bytes)
//	str     scenario  (u16 length + bytes)
//	str     policy    (u16 length + bytes)
//	u32     step count
//	f64     energy
//	f64×nx  x0
//	steps:  u8 flags (bit0 ran, bit1 forced, bits 2–3 level, rest zero)
//	        f64×nx w, f64×nu u, f64×nx x
//	u32     CRC-32 (IEEE) of every preceding byte
//
// The layout has no optional fields and no padding, so every valid trace
// has exactly one encoding: Encode(Decode(b)) == b (fuzz-pinned), which
// makes byte equality of encoded traces a sound conformance check.

const (
	magic      = "OICT"
	flagRan    = 1 << 0
	flagForced = 1 << 1
	levelShift = 2
	levelMask  = 0b11
	flagKnown  = flagRan | flagForced | levelMask<<levelShift
)

// stepSize returns the encoded size of one step for the given dimensions.
func stepSize(nx, nu int) int { return 1 + 8*(2*nx+nu) }

// EncodedSize returns the exact byte length Encode will produce.
func (t *Trace) EncodedSize() int {
	return 4 + 2 + 2 + 2 + 2 + 4 + 4 + 8 +
		2 + len(t.Meta.Plant) + 2 + len(t.Meta.Scenario) + 2 + len(t.Meta.Policy) +
		4 + 8 + 8*t.NX + len(t.Steps)*stepSize(t.NX, t.NU) + 4
}

// Encode serializes the trace into the canonical binary form. The trace
// must be valid (Validate), or an error is returned.
func Encode(t *Trace) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, t.EncodedSize())
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(t.Version))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(t.NX))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(t.NU))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(t.Meta.Memory))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Meta.TrainEpisodes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Meta.TrainSteps))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Meta.TrainSeed))
	for _, s := range []string{t.Meta.Plant, t.Meta.Scenario, t.Meta.Policy} {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Steps)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.Energy))
	for _, v := range t.X0 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for i := range t.Steps {
		st := &t.Steps[i]
		var flags byte
		if st.Ran {
			flags |= flagRan
		}
		if st.Forced {
			flags |= flagForced
		}
		flags |= (st.Level & levelMask) << levelShift
		buf = append(buf, flags)
		for _, v := range st.W {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		for _, v := range st.U {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		for _, v := range st.X {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// decoder is a bounds-checked cursor over an encoded trace.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) need(n int) error {
	if len(d.b)-d.off < n {
		return fmt.Errorf("trace: truncated at offset %d (need %d bytes)", d.off, n)
	}
	return nil
}

func (d *decoder) u8() byte    { v := d.b[d.off]; d.off++; return v }
func (d *decoder) u16() uint16 { v := binary.LittleEndian.Uint16(d.b[d.off:]); d.off += 2; return v }
func (d *decoder) u32() uint32 { v := binary.LittleEndian.Uint32(d.b[d.off:]); d.off += 4; return v }
func (d *decoder) u64() uint64 { v := binary.LittleEndian.Uint64(d.b[d.off:]); d.off += 8; return v }
func (d *decoder) f64s(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(d.u64())
	}
	return out
}

func (d *decoder) str() (string, error) {
	if err := d.need(2); err != nil {
		return "", err
	}
	n := int(d.u16())
	if n > MaxString {
		return "", fmt.Errorf("trace: string length %d exceeds %d", n, MaxString)
	}
	if err := d.need(n); err != nil {
		return "", err
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s, nil
}

// Decode parses a canonical binary trace. It is strict: unknown versions,
// out-of-range dimensions, unknown flag bits, length mismatches, trailing
// bytes, and checksum failures are all rejected, and no allocation happens
// before the header's implied size has been checked against the input
// length — a hostile header cannot make Decode allocate more than the
// input's own size.
func Decode(b []byte) (*Trace, error) {
	d := &decoder{b: b}
	if err := d.need(4 + 2); err != nil {
		return nil, err
	}
	if string(d.b[:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", d.b[:4])
	}
	d.off = 4
	t := &Trace{Version: int(d.u16())}
	if t.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", t.Version, Version)
	}
	if err := d.need(2 + 2 + 2 + 4 + 4 + 8); err != nil {
		return nil, err
	}
	t.NX = int(d.u16())
	t.NU = int(d.u16())
	t.Meta.Memory = int(d.u16())
	t.Meta.TrainEpisodes = int(d.u32())
	t.Meta.TrainSteps = int(d.u32())
	t.Meta.TrainSeed = int64(d.u64())
	var err error
	if t.Meta.Plant, err = d.str(); err != nil {
		return nil, err
	}
	if t.Meta.Scenario, err = d.str(); err != nil {
		return nil, err
	}
	if t.Meta.Policy, err = d.str(); err != nil {
		return nil, err
	}
	if err := d.need(4 + 8); err != nil {
		return nil, err
	}
	nsteps := int(d.u32())
	if nsteps > MaxSteps {
		return nil, fmt.Errorf("trace: %d steps exceeds %d", nsteps, MaxSteps)
	}
	if t.NX < 1 || t.NX > MaxDim || t.NU < 1 || t.NU > MaxDim {
		return nil, fmt.Errorf("trace: dimensions %d×%d outside [1, %d]", t.NX, t.NU, MaxDim)
	}
	// The header fixes the remaining length exactly; reject before
	// allocating step storage.
	rest := 8*t.NX + nsteps*stepSize(t.NX, t.NU) + 4
	if len(d.b)-d.off-8 != rest {
		return nil, fmt.Errorf("trace: body length %d does not match header (want %d)", len(d.b)-d.off-8, rest)
	}
	t.Energy = math.Float64frombits(d.u64())
	t.X0 = d.f64s(t.NX)
	t.Steps = make([]Step, nsteps)
	for i := range t.Steps {
		flags := d.u8()
		if flags&^byte(flagKnown) != 0 {
			return nil, fmt.Errorf("trace: step %d: unknown flag bits 0x%02x", i, flags)
		}
		t.Steps[i] = Step{
			Ran:    flags&flagRan != 0,
			Forced: flags&flagForced != 0,
			Level:  (flags >> levelShift) & levelMask,
			W:      d.f64s(t.NX),
			U:      d.f64s(t.NU),
			X:      d.f64s(t.NX),
		}
	}
	sum := d.u32()
	if got := crc32.ChecksumIEEE(b[:len(b)-4]); got != sum {
		return nil, fmt.Errorf("trace: checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
