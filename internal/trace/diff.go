package trace

import "math"

// Diff summarizes how two traces of the same episode differ — the data
// core of a replay report. A is conventionally the recorded episode, B
// the replayed one.
type Diff struct {
	// Steps is the number of compared steps (the shorter length).
	Steps int `json:"steps"`
	// LengthMismatch reports differing step counts.
	LengthMismatch bool `json:"length_mismatch,omitempty"`

	// DecisionFlips counts steps whose run/skip decision differs;
	// FirstFlip is the first such step (−1 when none).
	DecisionFlips int `json:"decision_flips"`
	FirstFlip     int `json:"first_flip"`

	// ComputesA/B count ran steps; ForcedA/B count monitor-forced runs.
	ComputesA int `json:"computes_a"`
	ComputesB int `json:"computes_b"`
	ForcedA   int `json:"forced_a"`
	ForcedB   int `json:"forced_b"`

	// EnergyA/B are the recorded Σ‖u‖₁ totals.
	EnergyA float64 `json:"energy_a"`
	EnergyB float64 `json:"energy_b"`

	// MaxStateDivergence is the largest L∞ distance between aligned
	// states (x0 and every compared successor); DivergeStep is the first
	// step whose successor states differ bitwise (−1 when none).
	MaxStateDivergence float64 `json:"max_state_divergence"`
	DivergeStep        int     `json:"diverge_step"`

	// Identical means byte-identical episodes: same length, bitwise-equal
	// x0, disturbances, decisions, inputs, states, and energy — the
	// conformance criterion.
	Identical bool `json:"identical"`
}

// Compare diffs two traces step by step.
func Compare(a, b *Trace) Diff {
	d := Diff{FirstFlip: -1, DivergeStep: -1}
	d.LengthMismatch = len(a.Steps) != len(b.Steps)
	d.Steps = len(a.Steps)
	if len(b.Steps) < d.Steps {
		d.Steps = len(b.Steps)
	}
	d.EnergyA, d.EnergyB = a.Energy, b.Energy

	identical := !d.LengthMismatch && a.Energy == b.Energy &&
		a.NX == b.NX && a.NU == b.NU
	maxDiv := func(p, q []float64) float64 {
		m := 0.0
		for i := range p {
			if i >= len(q) {
				break
			}
			if v := math.Abs(p[i] - q[i]); v > m {
				m = v
			}
		}
		return m
	}
	bitEq := func(p, q []float64) bool {
		if len(p) != len(q) {
			return false
		}
		for i := range p {
			if math.Float64bits(p[i]) != math.Float64bits(q[i]) {
				return false
			}
		}
		return true
	}

	if v := maxDiv(a.X0, b.X0); v > d.MaxStateDivergence {
		d.MaxStateDivergence = v
	}
	if !bitEq(a.X0, b.X0) {
		identical = false
	}
	for _, st := range a.Steps {
		if st.Ran {
			d.ComputesA++
			if st.Forced {
				d.ForcedA++
			}
		}
	}
	for _, st := range b.Steps {
		if st.Ran {
			d.ComputesB++
			if st.Forced {
				d.ForcedB++
			}
		}
	}
	for i := 0; i < d.Steps; i++ {
		sa, sb := &a.Steps[i], &b.Steps[i]
		if sa.Ran != sb.Ran {
			d.DecisionFlips++
			if d.FirstFlip < 0 {
				d.FirstFlip = i
			}
		}
		if v := maxDiv(sa.X, sb.X); v > d.MaxStateDivergence {
			d.MaxStateDivergence = v
		}
		if d.DivergeStep < 0 && !bitEq(sa.X, sb.X) {
			d.DivergeStep = i
		}
		if sa.Ran != sb.Ran || sa.Forced != sb.Forced || sa.Level != sb.Level ||
			!bitEq(sa.W, sb.W) || !bitEq(sa.U, sb.U) || !bitEq(sa.X, sb.X) {
			identical = false
		}
	}
	d.Identical = identical
	return d
}
