// Package trace defines the recorded-episode wire format of the runtime
// (DESIGN.md §8): a versioned, deterministic encoding of one closed-loop
// run of Algorithm 1 — the engine-configuration fingerprint, the initial
// state, and per step the realized disturbance, the skip/run decision, the
// applied input, and the successor state.
//
// A trace is the runtime's audit trail (internal/audit re-verifies every
// recorded step against the declared model and safety sets) and the input
// to the replay service (pkg/oic.Replay re-runs a logged episode under the
// same or a substituted policy/budget and diffs the accounting). The
// binary encoding is canonical: Encode(Decode(b)) == b for every valid b,
// a property the FuzzDecodeTrace fuzzer pins, so byte comparison of
// encoded traces is a valid conformance check across refactors.
package trace

import (
	"fmt"
	"math"

	"oic/internal/core"
	"oic/internal/mat"
)

// Version is the wire-format version this package encodes. Decoders accept
// exactly this version; bumping it is a wire-format change.
const Version = 1

// Hard format limits, enforced by Validate and Decode. They bound what a
// hostile encoded trace can make a decoder allocate.
const (
	// MaxDim caps the state and input dimensions (the largest plant is
	// far below this; matches the server's disturbance-memory cap).
	MaxDim = 64
	// MaxSteps caps the episode length.
	MaxSteps = 1 << 20
	// MaxString caps the fingerprint string lengths.
	MaxString = 1024
)

// Meta is the engine-configuration fingerprint a trace was recorded
// under: the exact pkg/oic.Config needed to rebuild the engine (compiled
// sets, controller program, trained policy) that produced the episode.
// Scenario is always the resolved ID, never the empty headline shorthand,
// so a fingerprint is stable across default changes.
type Meta struct {
	Plant         string `json:"plant"`
	Scenario      string `json:"scenario"`
	Policy        string `json:"policy"`
	Memory        int    `json:"memory,omitempty"`
	TrainEpisodes int    `json:"train_episodes,omitempty"`
	TrainSteps    int    `json:"train_steps,omitempty"`
	TrainSeed     int64  `json:"train_seed,omitempty"`
}

// Step is one recorded control step. X is the successor state; the
// pre-step state is the previous step's X (or the trace's X0), so states
// are stored once.
type Step struct {
	Ran    bool      `json:"ran"`              // effective z(t): κ computed and applied
	Forced bool      `json:"forced,omitempty"` // monitor overrode the policy (x ∉ X′)
	Level  uint8     `json:"level"`            // core.Level code of the pre-step state
	W      []float64 `json:"w"`                // realized disturbance
	U      []float64 `json:"u"`                // applied input (zeros when skipped)
	X      []float64 `json:"x"`                // successor state
}

// Trace is one recorded episode.
type Trace struct {
	Version int       `json:"version"`
	Meta    Meta      `json:"meta"`
	NX      int       `json:"nx"`
	NU      int       `json:"nu"`
	X0      []float64 `json:"x0"`
	Steps   []Step    `json:"steps"`
	// Energy is Σ‖u‖₁ as accumulated by the runtime (same float order),
	// so a clean audit implies the recorded accounting matches the inputs.
	Energy float64 `json:"energy"`
}

// Len returns the number of recorded steps.
func (t *Trace) Len() int { return len(t.Steps) }

// Validate checks the structural invariants of a trace: supported
// version, dimensions and lengths within the format limits and consistent
// across steps, level codes in range, and finite energy. Decode runs it;
// JSON consumers must call it themselves.
func (t *Trace) Validate() error {
	if t.Version != Version {
		return fmt.Errorf("trace: unsupported version %d (want %d)", t.Version, Version)
	}
	if len(t.Meta.Plant) == 0 {
		return fmt.Errorf("trace: empty plant name")
	}
	for _, s := range []struct{ name, v string }{
		{"plant", t.Meta.Plant}, {"scenario", t.Meta.Scenario}, {"policy", t.Meta.Policy},
	} {
		if len(s.v) > MaxString {
			return fmt.Errorf("trace: %s name exceeds %d bytes", s.name, MaxString)
		}
	}
	if t.Meta.Memory < 0 || t.Meta.Memory > MaxDim {
		return fmt.Errorf("trace: memory %d outside [0, %d]", t.Meta.Memory, MaxDim)
	}
	if t.Meta.TrainEpisodes < 0 || t.Meta.TrainSteps < 0 {
		return fmt.Errorf("trace: negative training budget")
	}
	if t.NX < 1 || t.NX > MaxDim {
		return fmt.Errorf("trace: nx %d outside [1, %d]", t.NX, MaxDim)
	}
	if t.NU < 1 || t.NU > MaxDim {
		return fmt.Errorf("trace: nu %d outside [1, %d]", t.NU, MaxDim)
	}
	if len(t.Steps) > MaxSteps {
		return fmt.Errorf("trace: %d steps exceeds %d", len(t.Steps), MaxSteps)
	}
	if len(t.X0) != t.NX {
		return fmt.Errorf("trace: x0 has dim %d, want %d", len(t.X0), t.NX)
	}
	for i := range t.Steps {
		st := &t.Steps[i]
		if st.Level > uint8(core.Unsafe) {
			return fmt.Errorf("trace: step %d: level code %d out of range", i, st.Level)
		}
		if len(st.W) != t.NX || len(st.X) != t.NX {
			return fmt.Errorf("trace: step %d: w/x dims %d/%d, want %d", i, len(st.W), len(st.X), t.NX)
		}
		if len(st.U) != t.NU {
			return fmt.Errorf("trace: step %d: u has dim %d, want %d", i, len(st.U), t.NU)
		}
	}
	if math.IsNaN(t.Energy) || math.IsInf(t.Energy, 0) {
		return fmt.Errorf("trace: non-finite energy")
	}
	return nil
}

// ToResult reassembles the trace into a core.Result whose Records chain
// X0 → Steps[0].X → … — the shape internal/audit re-verifies. Counters
// (runs, skips, forced, energy) are recomputed from the records except
// Energy, which carries the recorded total so audit checks the recorded
// accounting, not a recomputation of it. Slices are shared with the
// trace; do not mutate.
func (t *Trace) ToResult() *core.Result {
	res := &core.Result{Energy: t.Energy}
	if len(t.Steps) > 0 {
		res.Records = make([]core.StepRecord, len(t.Steps))
	}
	prev := mat.Vec(t.X0)
	for i := range t.Steps {
		st := &t.Steps[i]
		res.Records[i] = core.StepRecord{
			T:      i,
			X:      prev,
			Level:  core.Level(st.Level),
			Ran:    st.Ran,
			Forced: st.Forced,
			U:      mat.Vec(st.U),
			W:      mat.Vec(st.W),
			Next:   mat.Vec(st.X),
		}
		if st.Ran {
			res.Runs++
			res.ControllerCalls++
			if st.Forced {
				res.Forced++
			}
		} else {
			res.Skips++
		}
		prev = mat.Vec(st.X)
	}
	return res
}

// States returns the state sequence X0, Steps[0].X, …, Steps[n-1].X as
// views into the trace (do not mutate).
func (t *Trace) States() []mat.Vec {
	out := make([]mat.Vec, 0, len(t.Steps)+1)
	out = append(out, mat.Vec(t.X0))
	for i := range t.Steps {
		out = append(out, mat.Vec(t.Steps[i].X))
	}
	return out
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	out := *t
	out.X0 = append([]float64(nil), t.X0...)
	out.Steps = make([]Step, len(t.Steps))
	for i, st := range t.Steps {
		st.W = append([]float64(nil), st.W...)
		st.U = append([]float64(nil), st.U...)
		st.X = append([]float64(nil), st.X...)
		out.Steps[i] = st
	}
	return &out
}
