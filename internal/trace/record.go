package trace

import (
	"fmt"
	"math"
)

// Recorder accumulates one episode's steps into flat per-field arenas
// (one slice per field family, not three slices per step), so the
// amortized per-step cost is three bounded appends and a flag byte — the
// recording hook the pkg/oic facade and fleets call on their hot path.
// Materialize the episode with Trace.
//
// A Recorder is not safe for concurrent use; each session or fleet member
// owns its own.
type Recorder struct {
	meta   Meta
	nx, nu int
	x0     []float64
	limit  int // 0 = unlimited

	flags   []byte
	w, u, x []float64 // arenas: step i occupies [i*dim, (i+1)*dim)
	energy  float64
}

// NewRecorder starts a recording at x0. limit caps the recorded steps
// (0 = unlimited); once reached, Append refuses further steps, so a
// server-side recording cannot grow without bound.
func NewRecorder(meta Meta, x0 []float64, nu, limit int) *Recorder {
	return &Recorder{
		meta:  meta,
		nx:    len(x0),
		nu:    nu,
		x0:    append([]float64(nil), x0...),
		limit: limit,
	}
}

// Len returns the number of recorded steps.
func (r *Recorder) Len() int { return len(r.flags) }

// Full reports whether the recorder reached its step limit.
func (r *Recorder) Full() bool { return r.limit > 0 && len(r.flags) >= r.limit }

// Append records one executed step (the slices are copied, so buffer
// views from a recording-off core session are fine). It returns an error
// when the recorder is full or a slice has the wrong length; the episode
// recorded so far stays intact either way.
func (r *Recorder) Append(ran, forced bool, level uint8, w, u, x []float64) error {
	if r.Full() {
		return fmt.Errorf("trace: recording full at %d steps", r.limit)
	}
	if len(w) != r.nx || len(x) != r.nx || len(u) != r.nu {
		return fmt.Errorf("trace: Append dims w=%d u=%d x=%d, want %d/%d/%d",
			len(w), len(u), len(x), r.nx, r.nu, r.nx)
	}
	var flags byte
	if ran {
		flags |= flagRan
	}
	if forced {
		flags |= flagForced
	}
	flags |= (level & levelMask) << levelShift
	r.flags = append(r.flags, flags)
	r.w = append(r.w, w...)
	r.u = append(r.u, u...)
	r.x = append(r.x, x...)
	// Accumulate Σ‖u‖₁ in the exact float order core.Result does, so the
	// recorded energy is bit-identical to the runtime's own counter.
	s := 0.0
	for _, v := range u {
		s += math.Abs(v)
	}
	r.energy += s
	return nil
}

// Trace materializes the recording into an owned Trace; the recorder
// remains usable and may keep appending. Step slices are views into one
// backing array per field, copied out of the arenas.
func (r *Recorder) Trace() *Trace {
	n := len(r.flags)
	t := &Trace{
		Version: Version,
		Meta:    r.meta,
		NX:      r.nx,
		NU:      r.nu,
		X0:      append([]float64(nil), r.x0...),
		Energy:  r.energy,
	}
	if n == 0 {
		return t
	}
	w := append([]float64(nil), r.w...)
	u := append([]float64(nil), r.u...)
	x := append([]float64(nil), r.x...)
	t.Steps = make([]Step, n)
	for i := 0; i < n; i++ {
		flags := r.flags[i]
		t.Steps[i] = Step{
			Ran:    flags&flagRan != 0,
			Forced: flags&flagForced != 0,
			Level:  (flags >> levelShift) & levelMask,
			W:      w[i*r.nx : (i+1)*r.nx : (i+1)*r.nx],
			U:      u[i*r.nu : (i+1)*r.nu : (i+1)*r.nu],
			X:      x[i*r.nx : (i+1)*r.nx : (i+1)*r.nx],
		}
	}
	return t
}
