package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeTrace fuzzes the binary decoder — the one parser in the
// system that consumes attacker-controlled bytes (uploaded replay
// requests). Properties:
//
//   - Decode never panics and never allocates unboundedly (the header
//     length check bounds allocation by the input size);
//   - every accepted input is a valid trace (Validate passes);
//   - the format is canonical: re-encoding an accepted input reproduces
//     the exact bytes, so Encode∘Decode = id on the accepted language.
//
// The seed corpus is the committed golden traces plus hand-rolled edge
// cases.
func FuzzDecodeTrace(f *testing.F) {
	golden, err := filepath.Glob(filepath.Join("testdata", "golden", "*.oict"))
	if err != nil {
		f.Fatal(err)
	}
	if len(golden) == 0 {
		f.Log("no golden traces found; fuzzing from synthetic seeds only")
	}
	for _, path := range golden {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	if b, err := Encode(sample()); err == nil {
		f.Add(b)
	}
	empty := sample()
	empty.Steps = nil
	empty.Energy = 0
	if b, err := Encode(empty); err == nil {
		f.Add(b)
	}
	f.Add([]byte(magic))
	f.Add([]byte("OICT\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("Decode accepted a trace Validate rejects: %v", verr)
		}
		out, err := Encode(tr)
		if err != nil {
			t.Fatalf("Encode failed on a decoded trace: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("encoding not canonical: %d in, %d out", len(data), len(out))
		}
		// The diff and audit surfaces must tolerate any accepted trace.
		d := Compare(tr, tr)
		if !d.Identical {
			t.Fatalf("self-compare of accepted trace not identical: %+v", d)
		}
		_ = tr.ToResult()
	})
}
