package trace

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"oic/internal/core"
)

// sample builds a small hand-rolled valid trace.
func sample() *Trace {
	return &Trace{
		Version: Version,
		Meta: Meta{
			Plant: "acc", Scenario: "Fig.4", Policy: "bang-bang",
			Memory: 2, TrainEpisodes: 10, TrainSteps: 20, TrainSeed: -3,
		},
		NX: 2, NU: 1,
		X0: []float64{130.5, 45.25},
		Steps: []Step{
			{Ran: false, Forced: false, Level: 0, W: []float64{0.5, 0}, U: []float64{0}, X: []float64{129.5, 44.0}},
			{Ran: true, Forced: true, Level: 1, W: []float64{-0.5, 0.25}, U: []float64{1.5}, X: []float64{128.0, 43.5}},
			{Ran: true, Forced: false, Level: 0, W: []float64{0, 0}, U: []float64{-0.25}, X: []float64{127.75, 43.25}},
		},
		Energy: 1.75,
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	tr := sample()
	b, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != tr.EncodedSize() {
		t.Errorf("encoded %d bytes, EncodedSize says %d", len(b), tr.EncodedSize())
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("roundtrip mismatch:\n in %+v\nout %+v", tr, got)
	}
	// Canonical form: re-encoding the decoded trace reproduces the bytes.
	b2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("encoding is not canonical")
	}
}

func TestDecodeRejections(t *testing.T) {
	tr := sample()
	b, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func() []byte{
		"empty":     func() []byte { return nil },
		"bad magic": func() []byte { c := bytes.Clone(b); c[0] = 'X'; return c },
		"bad version": func() []byte {
			c := bytes.Clone(b)
			c[4] = 99
			return c
		},
		"truncated":     func() []byte { return b[:len(b)-5] },
		"trailing byte": func() []byte { return append(bytes.Clone(b), 0) },
		"flipped payload bit (crc)": func() []byte {
			c := bytes.Clone(b)
			c[len(c)-12] ^= 1
			return c
		},
		"huge step count": func() []byte {
			c := bytes.Clone(b)
			// Step count sits right after the three strings; corrupt it to
			// a huge value — the length consistency check must fire before
			// any allocation.
			off := 4 + 2 + 2 + 2 + 2 + 4 + 4 + 8 +
				2 + len(tr.Meta.Plant) + 2 + len(tr.Meta.Scenario) + 2 + len(tr.Meta.Policy)
			c[off] = 0xff
			c[off+1] = 0xff
			c[off+2] = 0x0f
			return c
		},
	}
	for name, mk := range cases {
		if _, err := Decode(mk()); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	mods := map[string]func(*Trace){
		"version":      func(t *Trace) { t.Version = 2 },
		"empty plant":  func(t *Trace) { t.Meta.Plant = "" },
		"bad nx":       func(t *Trace) { t.NX = 0 },
		"huge nu":      func(t *Trace) { t.NU = MaxDim + 1 },
		"x0 dim":       func(t *Trace) { t.X0 = t.X0[:1] },
		"step w dim":   func(t *Trace) { t.Steps[1].W = t.Steps[1].W[:1] },
		"step u dim":   func(t *Trace) { t.Steps[0].U = append(t.Steps[0].U, 0) },
		"level range":  func(t *Trace) { t.Steps[2].Level = 7 },
		"nan energy":   func(t *Trace) { t.Energy = math.NaN() },
		"neg memory":   func(t *Trace) { t.Meta.Memory = -1 },
		"neg training": func(t *Trace) { t.Meta.TrainEpisodes = -1 },
	}
	for name, mod := range mods {
		tr := sample()
		mod(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid trace", name)
		}
		if _, err := Encode(tr); err == nil {
			t.Errorf("%s: Encode accepted invalid trace", name)
		}
	}
}

func TestRecorder(t *testing.T) {
	tr := sample()
	rec := NewRecorder(tr.Meta, tr.X0, tr.NU, 0)
	for _, st := range tr.Steps {
		if err := rec.Append(st.Ran, st.Forced, st.Level, st.W, st.U, st.X); err != nil {
			t.Fatal(err)
		}
	}
	got := rec.Trace()
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("recorded trace mismatch:\nwant %+v\n got %+v", tr, got)
	}
	// The recorder stays usable after materializing, and earlier
	// materializations are unaffected by later appends.
	if err := rec.Append(true, false, 0, []float64{1, 1}, []float64{2}, []float64{3, 3}); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || rec.Len() != 4 {
		t.Errorf("materialized trace grew with the recorder: %d/%d", got.Len(), rec.Len())
	}
	if rec.Trace().Energy != tr.Energy+2 {
		t.Errorf("energy accumulation: %v", rec.Trace().Energy)
	}

	// Dimension guard.
	if err := rec.Append(true, false, 0, []float64{1}, []float64{2}, []float64{3, 3}); err == nil {
		t.Error("Append accepted wrong-length w")
	}

	// Limit.
	lim := NewRecorder(tr.Meta, tr.X0, tr.NU, 2)
	for i := 0; i < 2; i++ {
		if err := lim.Append(false, false, 0, []float64{0, 0}, []float64{0}, []float64{0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if !lim.Full() {
		t.Error("recorder not full at limit")
	}
	if err := lim.Append(false, false, 0, []float64{0, 0}, []float64{0}, []float64{0, 0}); err == nil {
		t.Error("Append accepted step beyond limit")
	}
	if lim.Len() != 2 {
		t.Errorf("limited recorder has %d steps, want 2", lim.Len())
	}
}

func TestCompare(t *testing.T) {
	a := sample()
	if d := Compare(a, a.Clone()); !d.Identical || d.DecisionFlips != 0 ||
		d.MaxStateDivergence != 0 || d.FirstFlip != -1 || d.DivergeStep != -1 {
		t.Fatalf("self-compare not identical: %+v", d)
	}

	b := a.Clone()
	b.Steps[1].Ran = false
	b.Steps[1].Forced = false
	b.Steps[2].X[0] += 0.5
	b.Energy -= 1.5
	d := Compare(a, b)
	if d.Identical {
		t.Error("diff reported identical")
	}
	if d.DecisionFlips != 1 || d.FirstFlip != 1 {
		t.Errorf("flips %d first %d, want 1 at 1", d.DecisionFlips, d.FirstFlip)
	}
	if d.DivergeStep != 2 || d.MaxStateDivergence != 0.5 {
		t.Errorf("divergence %v at %d, want 0.5 at 2", d.MaxStateDivergence, d.DivergeStep)
	}
	if d.ComputesA != 2 || d.ComputesB != 1 || d.ForcedA != 1 || d.ForcedB != 0 {
		t.Errorf("compute counts %+v", d)
	}

	// Length mismatch.
	c := a.Clone()
	c.Steps = c.Steps[:2]
	if d := Compare(a, c); !d.LengthMismatch || d.Identical || d.Steps != 2 {
		t.Errorf("length mismatch diff %+v", d)
	}
}

func TestToResult(t *testing.T) {
	tr := sample()
	res := tr.ToResult()
	if len(res.Records) != 3 {
		t.Fatalf("records %d", len(res.Records))
	}
	if res.Runs != 2 || res.Skips != 1 || res.Forced != 1 || res.ControllerCalls != 2 {
		t.Errorf("counters %+v", res)
	}
	if res.Energy != tr.Energy {
		t.Errorf("energy %v", res.Energy)
	}
	// Records chain: X of step i is X0 / previous successor.
	if &res.Records[0].X[0] != &tr.X0[0] {
		t.Error("record 0 pre-state is not x0")
	}
	if res.Records[1].X[0] != tr.Steps[0].X[0] || res.Records[1].T != 1 {
		t.Error("record 1 pre-state is not step 0 successor")
	}
	if res.Records[2].Level != core.InXPrime || res.Records[1].Level != core.InXI {
		t.Error("levels not preserved")
	}
}
