package trace

import (
	"fmt"
	"testing"
)

// benchTrace builds a synthetic 128-step, 2×1-dimensional episode — the
// ACC shape at the server's typical trace length.
func benchTrace(b *testing.B) *Trace {
	b.Helper()
	const steps = 128
	rec := NewRecorder(Meta{Plant: "acc", Scenario: "Fig.4", Policy: "bang-bang"},
		[]float64{130, 45}, 1, 0)
	for i := 0; i < steps; i++ {
		f := float64(i)
		if err := rec.Append(i%3 == 0, i%7 == 0, uint8(i%2),
			[]float64{0.5 - f/steps, 0.1}, []float64{f / 17}, []float64{130 - f/3, 45 - f/9}); err != nil {
			b.Fatal(err)
		}
	}
	return rec.Trace()
}

// BenchmarkTraceEncode measures serializing one 128-step episode to the
// canonical binary form.
func BenchmarkTraceEncode(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceDecode measures parsing + validating the same episode —
// the per-request cost floor of the replay endpoint's input handling.
func BenchmarkTraceDecode(b *testing.B) {
	tr := benchTrace(b)
	raw, err := Encode(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecorderAppend measures the raw recording hook: one step into
// the flat arenas (the cost a traced session adds per step, minus the
// facade plumbing).
func BenchmarkRecorderAppend(b *testing.B) {
	w := []float64{0.5, 0.1}
	u := []float64{1.25}
	x := []float64{130, 45}
	rec := NewRecorder(Meta{Plant: "acc"}, x, 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%(1<<16) == 0 {
			// Restart periodically so arena growth, not resident size,
			// is what's measured.
			b.StopTimer()
			rec = NewRecorder(Meta{Plant: "acc"}, x, 1, 0)
			b.StartTimer()
		}
		if err := rec.Append(true, false, 0, w, u, x); err != nil {
			b.Fatal(err)
		}
	}
	if rec.Len() == 0 {
		b.Fatal(fmt.Errorf("recorder empty"))
	}
}
