// Package orbit is a spacecraft station-keeping case study, after the
// impulsive orbit-keeping setting of Ong, Bahati & Ames (2022): a double
// integrator tracking the center of a station-keeping window under bounded
// perturbation accelerations (drag, solar radiation pressure, third-body
// residuals), with impulsive thrust bounds.
//
// State: (along-track position deviation p, velocity deviation v) in
// normalized units. One control period δ is one decision epoch:
//
//	p⁺ = p + v·δ + δ²/2·u + w_p
//	v⁺ = v + u·δ + w_v
//
// κ is the same tube-based RMPC as the ACC case study (Eq. 5), so the
// plant exercises the Proposition 1 feasible-set route to XI on a second,
// marginally stable system. The cost metric is Δv = Σ|u|·δ — the
// propellant currency of station-keeping: every skipped step is a thrust
// opportunity the spacecraft declines at zero propellant.
package orbit

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"oic/internal/controller"
	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/plant"
	"oic/internal/poly"
	"oic/internal/rl"
)

// Plant constants (normalized units).
const (
	Delta = 1.0 // decision period

	PosMax = 10.0 // station-keeping window half-width
	VelMax = 1.0  // velocity deviation bound
	UMax   = 0.2  // impulsive thrust acceleration bound

	WPosMax = 0.01 // design bound, position channel perturbation
	WVelMax = 0.02 // design bound, velocity channel perturbation

	DefaultHorizon = 10
	EpisodeSteps   = 120
)

// SpaceWeather is the exogenous perturbation process: an orbital-harmonic
// component (periodic drag/SRP variation), a bounded random walk, and
// uniform noise, clamped to the design disturbance box.
type SpaceWeather struct {
	HarmonicAmp float64 // harmonic amplitude on the velocity channel
	Period      int     // harmonic period in steps (0 = none)
	WalkStep    float64 // random-walk step half-range, velocity channel
	Noise       float64 // uniform noise half-range, velocity channel
	PosNoise    float64 // uniform noise half-range, position channel
}

// Trace draws an episode-long perturbation sequence inside the W box.
func (sw SpaceWeather) Trace(rng *rand.Rand, steps int) []mat.Vec {
	out := make([]mat.Vec, steps)
	walk := 0.0
	for t := range out {
		wv := sw.Noise * (2*rng.Float64() - 1)
		if sw.Period > 0 {
			wv += sw.HarmonicAmp * math.Sin(2*math.Pi*float64(t)/float64(sw.Period))
		}
		if sw.WalkStep > 0 {
			walk = min(max(walk+sw.WalkStep*(2*rng.Float64()-1), -WVelMax), WVelMax)
			wv += walk
		}
		wp := sw.PosNoise * (2*rng.Float64() - 1)
		out[t] = mat.Vec{
			min(max(wp, -WPosMax), WPosMax),
			min(max(wv, -WVelMax), WVelMax),
		}
	}
	return out
}

// Model bundles the station-keeping system, the RMPC κ, and the safety
// sets. Like the ACC model, XI is the RMPC's feasible region
// (Proposition 1) and X′ = B(XI, 0) ∩ XI.
type Model struct {
	Sys  *lti.System
	RMPC *controller.RMPC
	Sets core.SafetySets
}

// NewModel constructs the station-keeping plant.
func NewModel() (*Model, error) {
	a := mat.FromRows([][]float64{{1, Delta}, {0, 1}})
	b := mat.FromRows([][]float64{{Delta * Delta / 2}, {Delta}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-PosMax, -VelMax}, []float64{PosMax, VelMax}),
		poly.Box([]float64{-UMax}, []float64{UMax}),
		poly.Box([]float64{-WPosMax, -WVelMax}, []float64{WPosMax, WVelMax}),
	)

	rmpc, err := controller.NewRMPC(sys, controller.RMPCConfig{
		Horizon:     DefaultHorizon,
		StateWeight: 1,
		InputWeight: 0.1,
	})
	if err != nil {
		return nil, fmt.Errorf("orbit: NewModel: %w", err)
	}
	xi, err := rmpc.FeasibleSet()
	if err != nil {
		return nil, fmt.Errorf("orbit: NewModel: feasible set: %w", err)
	}
	sets, err := core.ComputeSafetySets(sys, xi)
	if err != nil {
		return nil, fmt.Errorf("orbit: NewModel: %w", err)
	}
	return &Model{Sys: sys, RMPC: rmpc, Sets: sets}, nil
}

// NewModelWithSets rebuilds the model around precompiled safety sets: the
// dynamics and the RMPC program are re-derived (cheap, exact) while the
// feasible-set projection and safe-set synthesis are skipped and the
// supplied sets used verbatim — the artifact-load path.
func NewModelWithSets(sets core.SafetySets) (*Model, error) {
	if sets.X == nil || sets.XI == nil || sets.XPrime == nil {
		return nil, fmt.Errorf("orbit: NewModelWithSets: incomplete safety sets")
	}
	if sets.XI.Dim() != 2 || sets.XPrime.Dim() != 2 {
		return nil, fmt.Errorf("orbit: NewModelWithSets: sets have dimension %d, want 2", sets.XI.Dim())
	}
	a := mat.FromRows([][]float64{{1, Delta}, {0, 1}})
	b := mat.FromRows([][]float64{{Delta * Delta / 2}, {Delta}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-PosMax, -VelMax}, []float64{PosMax, VelMax}),
		poly.Box([]float64{-UMax}, []float64{UMax}),
		poly.Box([]float64{-WPosMax, -WVelMax}, []float64{WPosMax, WVelMax}),
	)
	rmpc, err := controller.NewRMPC(sys, controller.RMPCConfig{
		Horizon:     DefaultHorizon,
		StateWeight: 1,
		InputWeight: 0.1,
	})
	if err != nil {
		return nil, fmt.Errorf("orbit: NewModelWithSets: %w", err)
	}
	return &Model{Sys: sys, RMPC: rmpc, Sets: sets}, nil
}

// Plant implements plant.Plant; it is registered under "orbit".
type Plant struct{}

func init() { plant.Register(Plant{}) }

// Name implements plant.Plant.
func (Plant) Name() string { return "orbit" }

// Description implements plant.Plant.
func (Plant) Description() string {
	return "spacecraft station-keeping with impulsive thrust bounds, after Ong et al. 2022 (RMPC, Δv cost)"
}

// CostLabel implements plant.Plant.
func (Plant) CostLabel() string { return "Δv" }

// EpisodeSteps implements plant.Plant.
func (Plant) EpisodeSteps() int { return EpisodeSteps }

// scenario couples the generic descriptor with its perturbation process.
type scenario struct {
	plant.Scenario
	Weather SpaceWeather
}

// scenarios is the space-weather ladder Orb.1–Orb.4.
func scenarios() []scenario {
	return []scenario{
		{
			Scenario: plant.Scenario{
				ID:          "Orb.1",
				Description: "quiet: small uncorrelated perturbations",
				Detail:      "noise ±0.005",
			},
			Weather: SpaceWeather{Noise: 0.005, PosNoise: 0.002},
		},
		{
			Scenario: plant.Scenario{
				ID:          "Orb.2",
				Description: "nominal: slowly varying drag via a bounded random walk",
				Detail:      "walk ±0.004/step",
			},
			Weather: SpaceWeather{WalkStep: 0.004, Noise: 0.004, PosNoise: 0.004},
		},
		{
			Scenario: plant.Scenario{
				ID:          "Orb.3",
				Description: "active: orbital-harmonic drag/SRP variation with noise",
				Detail:      "harmonic 0.012 / 60 steps",
			},
			Weather: SpaceWeather{HarmonicAmp: 0.012, Period: 60, Noise: 0.004, PosNoise: 0.004},
		},
		{
			Scenario: plant.Scenario{
				ID:          "Orb.4",
				Description: "storm: near-full-range perturbations on both channels",
				Detail:      "noise ±0.018",
			},
			Weather: SpaceWeather{Noise: 0.018, PosNoise: 0.009},
		},
	}
}

// Headline implements plant.Plant: the harmonic Orb.3 scenario — the most
// structure for a learned policy to exploit, like the ACC's Fig. 4
// sinusoid.
func (Plant) Headline() plant.Scenario { return scenarios()[2].Scenario }

// Ladders implements plant.Plant: one space-weather severity ladder.
func (Plant) Ladders() []plant.Ladder {
	scs := scenarios()
	out := make([]plant.Scenario, len(scs))
	for i, sc := range scs {
		out[i] = sc.Scenario
	}
	return []plant.Ladder{{
		Name:      "weather",
		Title:     "DRL Δv saving vs space-weather severity (Orb.1–Orb.4)",
		PaperNote: "expected shape: savings shrink as perturbations approach the design bound",
		Scenarios: out,
	}}
}

// sharedModel caches the scenario-independent model: every space-weather
// pattern shares the same design disturbance box, so the RMPC synthesis
// and feasible-set projection run once per process. The model is
// immutable after construction (the feasible set is materialized inside
// NewModel) and safe to share.
var sharedModel = sync.OnceValues(NewModel)

// Instantiate implements plant.Plant.
func (Plant) Instantiate(gsc plant.Scenario) (plant.Instance, error) {
	for _, sc := range scenarios() {
		if sc.ID == gsc.ID {
			m, err := sharedModel()
			if err != nil {
				return nil, err
			}
			return &Instance{m: m, sc: sc}, nil
		}
	}
	return nil, fmt.Errorf("orbit: %w %q", plant.ErrUnknownScenario, gsc.ID)
}

// Instance is the station-keeping model bound to one space-weather
// scenario.
type Instance struct {
	m  *Model
	sc scenario
}

// Model exposes the underlying station-keeping model.
func (in *Instance) Model() *Model { return in.m }

// System implements plant.Instance.
func (in *Instance) System() *lti.System { return in.m.Sys }

// Sets implements plant.Instance.
func (in *Instance) Sets() core.SafetySets { return in.m.Sets }

// Framework implements plant.Instance.
func (in *Instance) Framework(policy core.SkipPolicy, memory int) (*core.Framework, error) {
	return core.NewFramework(in.m.Sys, in.m.RMPC, in.m.Sets, policy, memory)
}

// SampleInitialStates implements plant.Instance.
func (in *Instance) SampleInitialStates(n int, rng *rand.Rand) ([]mat.Vec, error) {
	return in.m.Sets.XPrime.Sample(n, rng.Float64)
}

// Disturbances implements plant.Instance.
func (in *Instance) Disturbances(rng *rand.Rand, steps int) []mat.Vec {
	return in.sc.Weather.Trace(rng, steps)
}

// RunEpisode implements plant.Instance; Cost is Δv = Σ|u|·δ.
func (in *Instance) RunEpisode(policy core.SkipPolicy, x0 mat.Vec, w []mat.Vec) (*plant.Episode, error) {
	res, err := plant.RunFramework(in, policy, x0, w)
	if err != nil {
		return nil, fmt.Errorf("orbit: RunEpisode: %w", err)
	}
	return &plant.Episode{Result: res, Cost: res.Energy * Delta, Energy: res.Energy}, nil
}

// TrainSkipPolicy implements plant.Instance via the generic DRL trainer.
func (in *Instance) TrainSkipPolicy(cfg plant.TrainConfig) (core.SkipPolicy, rl.TrainStats, error) {
	return plant.TrainDRL(in, cfg, EpisodeSteps)
}

// InstantiateWithSets implements plant.SetsLoader: the artifact-load path
// that skips the feasible-set projection.
func (Plant) InstantiateWithSets(gsc plant.Scenario, sets core.SafetySets) (plant.Instance, error) {
	for _, sc := range scenarios() {
		if sc.ID == gsc.ID {
			m, err := NewModelWithSets(sets)
			if err != nil {
				return nil, err
			}
			return &Instance{m: m, sc: sc}, nil
		}
	}
	return nil, fmt.Errorf("orbit: %w %q", plant.ErrUnknownScenario, gsc.ID)
}

// RestoreSkipPolicy implements plant.PolicyRestorer via the generic DRL
// restore (the plant trains through plant.TrainDRL).
func (in *Instance) RestoreSkipPolicy(snap *plant.PolicySnapshot) (core.SkipPolicy, error) {
	return plant.RestoreDRLPolicy(snap)
}
