package orbit

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/core"
	"oic/internal/mat"
	"oic/internal/reach"
)

func TestNewModelSetsNested(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := m.Sets.XI.Covers(m.Sets.XPrime, 1e-6); !ok {
		t.Error("X' ⊄ XI")
	}
	if ok, _ := m.Sets.X.Covers(m.Sets.XI, 1e-6); !ok {
		t.Error("XI ⊄ X")
	}
	if m.Sets.XPrime.IsEmpty() {
		t.Error("X' empty: skipping never admissible")
	}
}

func TestSpaceWeatherTraceStaysInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sc := range scenarios() {
		w := sc.Weather.Trace(rng, 500)
		for i, wt := range w {
			if math.Abs(wt[0]) > WPosMax+1e-12 || math.Abs(wt[1]) > WVelMax+1e-12 {
				t.Fatalf("%s: disturbance %v at step %d outside design box", sc.ID, wt, i)
			}
		}
	}
}

// TestSkippingIsSafeUnderAdversarialPolicy is the Theorem 1 property on
// the orbit plant: any skipping decision sequence keeps the state in XI.
func TestSkippingIsSafeUnderAdversarialPolicy(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	adversary := core.PolicyFunc{
		Fn:    func(int, mat.Vec, []mat.Vec) bool { return rng.Intn(2) == 0 },
		Label: "adversarial-random",
	}
	fw, err := core.NewFramework(m.Sys, m.RMPC, m.Sets, adversary, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0s, err := m.Sets.XPrime.Sample(4, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	sw := scenarios()[3].Weather // storm
	for _, x0 := range x0s {
		sess, err := fw.NewSession(x0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range sw.Trace(rng, 150) {
			if _, err := sess.Step(w); err != nil {
				t.Fatal(err)
			}
		}
		if sess.Result.ViolationsX != 0 || sess.Result.ViolationsXI != 0 {
			t.Fatalf("violations X=%d XI=%d", sess.Result.ViolationsX, sess.Result.ViolationsXI)
		}
	}
}

// TestConsecutiveSkipChain sanity-checks the weakly-hard extension on the
// orbit plant: the S_k chain must be nested and start inside XI.
func TestConsecutiveSkipChain(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	chain, err := reach.ConsecutiveSkipSets(m.Sets.XI, m.Sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) == 0 {
		t.Fatal("empty chain")
	}
	prev := m.Sets.XI
	for k, s := range chain {
		if ok, _ := prev.Covers(s, 1e-6); !ok {
			t.Errorf("S%d not contained in predecessor", k+1)
		}
		prev = s
	}
}
