// Package reach implements the set-based robust reachability computations
// the paper's safety argument rests on (Section III-A):
//
//   - robust Pre operators for autonomous and controlled affine systems;
//   - maximal robust (control) invariant sets by fixpoint iteration;
//   - the Rakovic et al. outer approximation of the minimal robust
//     positively invariant set, matching the paper's formula
//     XI = α(W ⊕ A_K W ⊕ … ⊕ A_K^n W) for linear feedback;
//   - one-step robust backward reachable sets B(Y, z) (Definition 2);
//   - the strengthened safe set X′ = B(XI, 0) ∩ XI (Definition 3).
//
// All computations are exact in H-representation; no matrix inversion is
// required (see DESIGN.md §5.2).
package reach

import (
	"errors"
	"fmt"

	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
)

// ErrNoConvergence is returned when a fixpoint iteration hits its iteration
// budget before converging.
var ErrNoConvergence = errors.New("reach: fixpoint iteration did not converge")

// ErrEmptyResult is returned when a computed invariant set is empty, i.e.
// the constraints admit no robust invariant region.
var ErrEmptyResult = errors.New("reach: computed set is empty")

// PreAutonomous returns the robust one-step predecessor set of target under
// the autonomous affine dynamics x⁺ = acl·x + ccl + w:
//
//	Pre(S) = {x | ∀w ∈ W: acl·x + ccl + w ∈ S} = preimage(S ⊖ W).
//
// A nil W means no disturbance.
func PreAutonomous(target *poly.Polytope, acl *mat.Mat, ccl mat.Vec, w *poly.Polytope) (*poly.Polytope, error) {
	shrunk := target
	if w != nil {
		var err error
		shrunk, err = poly.Erode(target, w)
		if err != nil {
			return nil, fmt.Errorf("reach: PreAutonomous: %w", err)
		}
	}
	return shrunk.PreimageAffine(acl, ccl), nil
}

// PreControlled returns the robust one-step predecessor set of target under
// the controlled dynamics of sys:
//
//	Pre(S) = {x | ∃u ∈ U, ∀w ∈ W: A·x + B·u + c + w ∈ S},
//
// computed by building the joint (x, u) constraint polytope and projecting
// out the input coordinates with Fourier–Motzkin elimination. sys.U must be
// set; a nil sys.W means no disturbance.
func PreControlled(target *poly.Polytope, sys *lti.System) (*poly.Polytope, error) {
	if sys.U == nil {
		return nil, errors.New("reach: PreControlled: system has no input set U")
	}
	shrunk := target
	if sys.W != nil {
		var err error
		shrunk, err = poly.Erode(target, sys.W)
		if err != nil {
			return nil, fmt.Errorf("reach: PreControlled: %w", err)
		}
	}
	nx, nu := sys.NX(), sys.NU()
	// Joint rows: [H_S·A  H_S·B]·(x,u) ≤ h_S − H_S·c  and  [0  H_U]·(x,u) ≤ h_U.
	ha := shrunk.A.Mul(sys.A)
	hb := shrunk.A.Mul(sys.B)
	rows := shrunk.A.R + sys.U.A.R
	a := mat.New(rows, nx+nu)
	b := make(mat.Vec, rows)
	for i := 0; i < shrunk.A.R; i++ {
		for j := 0; j < nx; j++ {
			a.Set(i, j, ha.At(i, j))
		}
		for j := 0; j < nu; j++ {
			a.Set(i, nx+j, hb.At(i, j))
		}
		b[i] = shrunk.B[i] - shrunk.A.Row(i).Dot(sys.C)
	}
	for i := 0; i < sys.U.A.R; i++ {
		for j := 0; j < nu; j++ {
			a.Set(shrunk.A.R+i, nx+j, sys.U.A.At(i, j))
		}
		b[shrunk.A.R+i] = sys.U.B[i]
	}
	joint := poly.New(a, b)
	keep := make([]int, nx)
	for j := range keep {
		keep[j] = j
	}
	return joint.Project(keep), nil
}

// Options tunes the fixpoint iterations.
type Options struct {
	MaxIter int     // default 100
	Tol     float64 // set-inclusion tolerance, default 1e-7
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	return o
}

// MaximalInvariantSet returns the maximal robust positively invariant set
// contained in safe for the autonomous affine dynamics x⁺ = acl·x + ccl + w,
// by iterating S ← S ∩ Pre(S) to convergence. This is the robust invariant
// set XI of a fixed feedback controller (Definition 1 with κ substituted).
func MaximalInvariantSet(safe *poly.Polytope, acl *mat.Mat, ccl mat.Vec, w *poly.Polytope, opt Options) (*poly.Polytope, error) {
	opt = opt.withDefaults()
	s := safe.ReduceRedundancy()
	for iter := 0; iter < opt.MaxIter; iter++ {
		pre, err := PreAutonomous(s, acl, ccl, w)
		if err != nil {
			return nil, err
		}
		next := poly.Intersect(s, pre).ReduceRedundancy()
		if next.IsEmpty() {
			return nil, ErrEmptyResult
		}
		done, err := next.Covers(s, opt.Tol)
		if err != nil {
			return nil, err
		}
		if done { // next ⊇ s and next ⊆ s by construction ⇒ fixpoint
			return next, nil
		}
		s = next
	}
	return nil, ErrNoConvergence
}

// MaximalRCI returns the maximal robust control invariant set contained in
// sys.X: the largest set of states from which *some* admissible input keeps
// the state inside the set for every disturbance. It iterates
// S ← S ∩ PreControlled(S) to convergence.
func MaximalRCI(sys *lti.System, opt Options) (*poly.Polytope, error) {
	if sys.X == nil {
		return nil, errors.New("reach: MaximalRCI: system has no safe set X")
	}
	opt = opt.withDefaults()
	s := sys.X.ReduceRedundancy()
	for iter := 0; iter < opt.MaxIter; iter++ {
		pre, err := PreControlled(s, sys)
		if err != nil {
			return nil, err
		}
		next := poly.Intersect(s, pre).ReduceRedundancy()
		if next.IsEmpty() {
			return nil, ErrEmptyResult
		}
		done, err := next.Covers(s, opt.Tol)
		if err != nil {
			return nil, err
		}
		if done {
			return next, nil
		}
		s = next
	}
	return nil, ErrNoConvergence
}

// MRPI computes the Rakovic et al. (2005) outer approximation of the
// minimal robust positively invariant set of the stable autonomous system
// x⁺ = acl·x + w, w ∈ W:
//
//	F(α, s) = (1 − α)⁻¹ · (W ⊕ acl·W ⊕ … ⊕ acl^{s−1}·W),
//
// where α is the smallest factor with acl^s·W ⊆ α·W. This is the paper's
// "XI = α(W ⊕ (A+BK)W ⊕ … ⊕ (A+BK)ⁿW)" computation for linear feedback.
// s is increased until α ≤ alphaMax (or maxS is hit). acl must be strictly
// stable; W must contain the origin (flat directions are permitted, e.g.
// the ACC's W = [−1,1]×{0}).
func MRPI(acl *mat.Mat, w *poly.Polytope, alphaMax float64, maxS int) (*poly.Polytope, error) {
	if alphaMax <= 0 || alphaMax >= 1 {
		return nil, fmt.Errorf("reach: MRPI: alphaMax %v outside (0,1)", alphaMax)
	}
	if maxS <= 0 {
		maxS = 50
	}
	n := acl.R

	// Rakovic's α-condition acl^s·W ⊆ α·W is unattainable when W is flat in
	// some direction and the dynamics rotate it. Inflate W by a tiny box in
	// that case: the result is RPI for the inflated set and therefore also
	// for the original W (invariance is monotone in the disturbance set).
	flat := false
	for i := range w.B {
		if w.B[i] <= 1e-12 {
			flat = true
			break
		}
	}
	if flat {
		lo, hi, err := w.BoundingBox()
		if err != nil {
			return nil, fmt.Errorf("reach: MRPI: %w", err)
		}
		scale := 1.0
		for j := range lo {
			if e := hi[j] - lo[j]; e > scale {
				scale = e
			}
		}
		eps := 1e-6 * scale
		epsLo := make([]float64, n)
		epsHi := make([]float64, n)
		for j := range epsLo {
			epsLo[j], epsHi[j] = -eps, eps
		}
		inflated, err := poly.MinkowskiSum(w, poly.Box(epsLo, epsHi))
		if err != nil {
			return nil, fmt.Errorf("reach: MRPI: inflating flat W: %w", err)
		}
		w = inflated.ReduceRedundancy()
	}

	for s := 1; s <= maxS; s++ {
		// α(s) = max_i h_W((acl^s)ᵀ·f_i) / g_i over rows f_i·x ≤ g_i of W.
		as := mat.Pow(acl, s)
		ast := as.T()
		alpha := 0.0
		feasible := true
		for i := 0; i < w.A.R; i++ {
			h, _, err := w.Support(ast.MulVec(w.A.Row(i)))
			if err != nil {
				return nil, err
			}
			if w.B[i] <= 1e-12 {
				// Degenerate face (W is flat in this direction, e.g. the
				// ACC's W = [−1,1]×{0}): inclusion needs h ≤ 0 outright.
				if h > 1e-9 {
					feasible = false
					break
				}
				continue
			}
			if a := h / w.B[i]; a > alpha {
				alpha = a
			}
		}
		if !feasible || alpha > alphaMax {
			continue
		}
		// F_s = ⊕_{i<s} acl^i·W, then scale by 1/(1−α).
		sum := w.Clone()
		for i := 1; i < s; i++ {
			img, err := w.ImageAffine(mat.Pow(acl, i), make(mat.Vec, n))
			if err != nil {
				return nil, fmt.Errorf("reach: MRPI: acl^%d singular: %w", i, err)
			}
			sum, err = poly.MinkowskiSum(sum, img)
			if err != nil {
				return nil, err
			}
		}
		return sum.Scale(1 / (1 - alpha)).ReduceRedundancy(), nil
	}
	return nil, fmt.Errorf("reach: MRPI: alpha did not reach %v within s ≤ %d (is acl stable?)", alphaMax, maxS)
}

// Backward returns the one-step robust backward reachable set B(Y, z) of
// Definition 2 for the skip branch z = 0 (zero input):
//
//	B(Y, 0) = {x | ∀w ∈ W: A·x + c + w ∈ Y}.
//
// This is the set the strengthened safe set construction needs. For the
// z = 1 branch under an affine feedback use BackwardControlled.
func Backward(target *poly.Polytope, sys *lti.System) (*poly.Polytope, error) {
	return PreAutonomous(target, sys.A, sys.C, sys.W)
}

// BackwardControlled returns B(Y, 1) for an affine feedback
// u = K·(x − xref) + uref (Definition 2 with κ substituted).
func BackwardControlled(target *poly.Polytope, sys *lti.System, k *mat.Mat, xref, uref mat.Vec) (*poly.Polytope, error) {
	acl, ccl := sys.ClosedLoop(k, xref, uref)
	return PreAutonomous(target, acl, ccl, sys.W)
}

// StrengthenedSafeSet returns X′ = B(XI, 0) ∩ XI (Definition 3): the states
// from which even a skipped control (u = 0) robustly lands back inside XI.
func StrengthenedSafeSet(xi *poly.Polytope, sys *lti.System) (*poly.Polytope, error) {
	b0, err := Backward(xi, sys)
	if err != nil {
		return nil, fmt.Errorf("reach: StrengthenedSafeSet: %w", err)
	}
	return poly.Intersect(b0, xi).ReduceRedundancy(), nil
}

// ForwardReachAutonomous returns the forward reachable tube of the
// autonomous affine system x⁺ = acl·x + ccl + w from the initial set x0,
// i.e. a slice holding Reach_0 = x0 through Reach_steps. acl must be
// invertible (true for discretizations of continuous dynamics).
func ForwardReachAutonomous(x0 *poly.Polytope, acl *mat.Mat, ccl mat.Vec, w *poly.Polytope, steps int) ([]*poly.Polytope, error) {
	out := []*poly.Polytope{x0.Clone()}
	cur := x0
	for t := 0; t < steps; t++ {
		img, err := cur.ImageAffine(acl, ccl)
		if err != nil {
			return nil, fmt.Errorf("reach: ForwardReachAutonomous: %w", err)
		}
		if w != nil {
			img, err = poly.MinkowskiSum(img, w)
			if err != nil {
				return nil, err
			}
		}
		img = img.ReduceRedundancy()
		out = append(out, img)
		cur = img
	}
	return out, nil
}
