package reach

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
)

// scalarSystem builds x⁺ = x + u + w with X = [-1,1], U = [-umax, umax],
// W = [-wmax, wmax].
func scalarSystem(umax, wmax float64) *lti.System {
	a := mat.FromRows([][]float64{{1}})
	b := mat.FromRows([][]float64{{1}})
	return lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-1}, []float64{1}),
		poly.Box([]float64{-umax}, []float64{umax}),
		poly.Box([]float64{-wmax}, []float64{wmax}),
	)
}

func TestPreAutonomousScalar(t *testing.T) {
	// x⁺ = 0.5x + w, target [-1,1], W = [-0.2, 0.2]:
	// Pre = {x | 0.5x ∈ [-0.8, 0.8]} = [-1.6, 1.6].
	target := poly.Box([]float64{-1}, []float64{1})
	w := poly.Box([]float64{-0.2}, []float64{0.2})
	acl := mat.FromRows([][]float64{{0.5}})
	pre, err := PreAutonomous(target, acl, mat.Vec{0}, w)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := pre.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo[0]+1.6) > 1e-8 || math.Abs(hi[0]-1.6) > 1e-8 {
		t.Errorf("Pre = [%v, %v], want [-1.6, 1.6]", lo[0], hi[0])
	}
}

func TestPreAutonomousWithDrift(t *testing.T) {
	// x⁺ = x + 0.3 (no disturbance), target [0,1] ⇒ Pre = [-0.3, 0.7].
	target := poly.Box([]float64{0}, []float64{1})
	acl := mat.FromRows([][]float64{{1}})
	pre, err := PreAutonomous(target, acl, mat.Vec{0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := pre.BoundingBox()
	if math.Abs(lo[0]+0.3) > 1e-8 || math.Abs(hi[0]-0.7) > 1e-8 {
		t.Errorf("Pre = [%v, %v], want [-0.3, 0.7]", lo[0], hi[0])
	}
}

func TestPreControlledScalar(t *testing.T) {
	// x⁺ = x + u + w, target [-1,1], U=[-0.5,0.5], W=[-0.1,0.1]:
	// Pre = {x | ∃u: x+u ∈ [-0.9,0.9]} = [-1.4, 1.4].
	sys := scalarSystem(0.5, 0.1)
	pre, err := PreControlled(poly.Box([]float64{-1}, []float64{1}), sys)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := pre.BoundingBox()
	if math.Abs(lo[0]+1.4) > 1e-8 || math.Abs(hi[0]-1.4) > 1e-8 {
		t.Errorf("Pre = [%v, %v], want [-1.4, 1.4]", lo[0], hi[0])
	}
}

func TestMaximalRCIScalar(t *testing.T) {
	// With U=[-0.5,0.5] ⊃ W=[-0.1,0.1], the whole X=[-1,1] is control
	// invariant.
	sys := scalarSystem(0.5, 0.1)
	xi, err := MaximalRCI(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := xi.BoundingBox()
	if math.Abs(lo[0]+1) > 1e-7 || math.Abs(hi[0]-1) > 1e-7 {
		t.Errorf("RCI = [%v, %v], want [-1, 1]", lo[0], hi[0])
	}
}

func TestMaximalRCIShrinks(t *testing.T) {
	// x⁺ = 2x + u + w with small authority: the invariant core is smaller
	// than X. For |x| ≤ r to be invariant: 2r − umax + wmax ≤ r, i.e.
	// r ≤ umax − wmax = 0.4.
	a := mat.FromRows([][]float64{{2}})
	b := mat.FromRows([][]float64{{1}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-1}, []float64{1}),
		poly.Box([]float64{-0.5}, []float64{0.5}),
		poly.Box([]float64{-0.1}, []float64{0.1}),
	)
	xi, err := MaximalRCI(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := xi.BoundingBox()
	if math.Abs(lo[0]+0.4) > 1e-6 || math.Abs(hi[0]-0.4) > 1e-6 {
		t.Errorf("RCI = [%v, %v], want [-0.4, 0.4]", lo[0], hi[0])
	}
}

func TestMaximalRCIEmpty(t *testing.T) {
	// Disturbance overwhelms the input: no invariant set inside X.
	a := mat.FromRows([][]float64{{3}})
	b := mat.FromRows([][]float64{{1}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-1}, []float64{1}),
		poly.Box([]float64{-0.1}, []float64{0.1}),
		poly.Box([]float64{-0.5}, []float64{0.5}),
	)
	if _, err := MaximalRCI(sys, Options{}); err == nil {
		t.Error("expected empty/no-convergence error")
	}
}

func doubleIntegratorClosedLoop() (*lti.System, *mat.Mat, mat.Vec) {
	a := mat.FromRows([][]float64{{1, 0.1}, {0, 1}})
	b := mat.FromRows([][]float64{{0}, {0.1}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-5, -5}, []float64{5, 5}),
		poly.Box([]float64{-10}, []float64{10}),
		poly.Box([]float64{-0.05, -0.05}, []float64{0.05, 0.05}),
	)
	k := mat.FromRows([][]float64{{-2, -3}}) // stabilizing gain
	acl, ccl := sys.ClosedLoop(k, mat.Vec{0, 0}, mat.Vec{0})
	return sys, acl, ccl
}

func TestMaximalInvariantSetIsInvariant(t *testing.T) {
	sys, acl, ccl := doubleIntegratorClosedLoop()
	inv, err := MaximalInvariantSet(sys.X, acl, ccl, sys.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inv.IsEmpty() {
		t.Fatal("invariant set empty")
	}
	// Property: sampled x ∈ inv stepped with extreme disturbances stays in inv.
	rng := rand.New(rand.NewSource(17))
	pts, err := inv.Sample(60, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	wVerts, err := sys.W.Vertices()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range pts {
		for _, w := range wVerts {
			next := acl.MulVec(x).Add(ccl).Add(w)
			if !inv.Contains(next, 1e-6) {
				t.Fatalf("invariance violated: x=%v w=%v next=%v", x, w, next)
			}
		}
	}
}

func TestMRPIIsInvariant(t *testing.T) {
	_, acl, _ := doubleIntegratorClosedLoop()
	w := poly.Box([]float64{-0.05, -0.05}, []float64{0.05, 0.05})
	f, err := MRPI(acl, w, 0.2, 100)
	if err != nil {
		t.Fatal(err)
	}
	// RPI property: acl·F ⊕ W ⊆ F.
	img, err := f.ImageAffine(acl, mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := poly.MinkowskiSum(img, w)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := f.Covers(sum, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("MRPI set is not robustly invariant")
	}
}

func TestMRPIDegenerateW(t *testing.T) {
	// Disturbance flat in the second coordinate, like the ACC model.
	_, acl, _ := doubleIntegratorClosedLoop()
	w := poly.Box([]float64{-0.05, 0}, []float64{0.05, 0})
	f, err := MRPI(acl, w, 0.5, 200)
	if err != nil {
		t.Fatal(err)
	}
	img, err := f.ImageAffine(acl, mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := poly.MinkowskiSum(img, w)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := f.Covers(sum, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("MRPI with degenerate W not invariant")
	}
}

func TestBackwardMatchesInverseFormula(t *testing.T) {
	// DESIGN.md §5.2: B(Y,0) computed via preimage must equal A⁻¹(Y ⊖ W)
	// when A is invertible.
	a := mat.FromRows([][]float64{{1, -0.1}, {0, 0.98}})
	b := mat.FromRows([][]float64{{0}, {0.1}})
	w := poly.Box([]float64{-1, 0}, []float64{1, 0})
	sys := lti.NewSystem(a, b).WithConstraints(nil, nil, w)
	y := poly.Box([]float64{-30, -15}, []float64{30, 15})

	viaPreimage, err := Backward(y, sys)
	if err != nil {
		t.Fatal(err)
	}

	eroded, err := poly.Erode(y, w)
	if err != nil {
		t.Fatal(err)
	}
	ainv, err := mat.Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	viaInverse, err := eroded.ImageAffine(ainv, mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}

	ok1, err1 := viaPreimage.Covers(viaInverse, 1e-6)
	ok2, err2 := viaInverse.Covers(viaPreimage, 1e-6)
	if err1 != nil || err2 != nil || !ok1 || !ok2 {
		t.Errorf("preimage and inverse formulas disagree: %v %v %v %v", ok1, ok2, err1, err2)
	}
}

func TestStrengthenedSafeSetNesting(t *testing.T) {
	// Scalar system: XI = [-1,1]; X′ = B(XI,0) ∩ XI = [-0.9, 0.9].
	sys := scalarSystem(0.5, 0.1)
	xi, err := MaximalRCI(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xp, err := StrengthenedSafeSet(xi, sys)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := xp.BoundingBox()
	if math.Abs(lo[0]+0.9) > 1e-6 || math.Abs(hi[0]-0.9) > 1e-6 {
		t.Errorf("X' = [%v, %v], want [-0.9, 0.9]", lo[0], hi[0])
	}
	// Nesting X′ ⊆ XI ⊆ X.
	if ok, _ := xi.Covers(xp, 1e-7); !ok {
		t.Error("X' ⊄ XI")
	}
	if ok, _ := sys.X.Covers(xi, 1e-7); !ok {
		t.Error("XI ⊄ X")
	}
}

// TestStrengthenedSafeSetSkipProperty verifies Definition 3 semantically:
// from any sampled x ∈ X′, a zero input under any vertex disturbance lands
// inside XI.
func TestStrengthenedSafeSetSkipProperty(t *testing.T) {
	sys, acl, ccl := doubleIntegratorClosedLoop()
	inv, err := MaximalInvariantSet(sys.X, acl, ccl, sys.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xp, err := StrengthenedSafeSet(inv, sys)
	if err != nil {
		t.Fatal(err)
	}
	if xp.IsEmpty() {
		t.Skip("strengthened set empty for this gain; nothing to sample")
	}
	rng := rand.New(rand.NewSource(23))
	pts, err := xp.Sample(40, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	wVerts, err := sys.W.Vertices()
	if err != nil {
		t.Fatal(err)
	}
	zero := make(mat.Vec, sys.NU())
	for _, x := range pts {
		for _, w := range wVerts {
			next := sys.Step(x, zero, w)
			if !inv.Contains(next, 1e-6) {
				t.Fatalf("skip from x=%v with w=%v leaves XI: %v", x, w, next)
			}
		}
	}
}

func TestForwardReachAutonomous(t *testing.T) {
	// Stable scalar map contracts toward a fixed point.
	acl := mat.FromRows([][]float64{{0.5}})
	x0 := poly.Box([]float64{-4}, []float64{4})
	w := poly.Box([]float64{-0.1}, []float64{0.1})
	tube, err := ForwardReachAutonomous(x0, acl, mat.Vec{0}, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tube) != 6 {
		t.Fatalf("tube length %d", len(tube))
	}
	// Reach_1 = 0.5·[-4,4] ⊕ [-0.1,0.1] = [-2.1, 2.1].
	lo, hi, _ := tube[1].BoundingBox()
	if math.Abs(lo[0]+2.1) > 1e-8 || math.Abs(hi[0]-2.1) > 1e-8 {
		t.Errorf("Reach_1 = [%v, %v], want [-2.1, 2.1]", lo[0], hi[0])
	}
	// The tube must keep shrinking toward the invariant set.
	loEnd, hiEnd, _ := tube[5].BoundingBox()
	if hiEnd[0] >= hi[0] || loEnd[0] <= lo[0] {
		t.Errorf("tube did not contract: step1 [%v,%v], step5 [%v,%v]", lo[0], hi[0], loEnd[0], hiEnd[0])
	}
}
