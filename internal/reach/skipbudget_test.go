package reach

import (
	"math/rand"
	"testing"

	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
)

// budgetRig builds the scalar system x⁺ = 0.9x + w with X = [-1,1],
// W = [-wmax, wmax] and returns its maximal invariant set under zero input
// as XI, so the S_k chain is nontrivial but exactly analyzable.
func budgetRig(t *testing.T, wmax float64) (*lti.System, *poly.Polytope) {
	t.Helper()
	a := mat.FromRows([][]float64{{0.9}})
	b := mat.FromRows([][]float64{{1}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-1}, []float64{1}),
		poly.Box([]float64{-1}, []float64{1}),
		poly.Box([]float64{-wmax}, []float64{wmax}),
	)
	xi, err := MaximalInvariantSet(sys.X, sys.A, sys.C, sys.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, xi
}

// TestSkipBudgetMatchesLinearScan is the oracle's defining property: the
// binary-searched Remaining equals the naive largest-k-with-x∈S_k scan over
// the chain the fixpoint computation produced.
func TestSkipBudgetMatchesLinearScan(t *testing.T) {
	sys, xi := budgetRig(t, 0.05)
	const depth = 8
	sb, err := NewSkipBudget(xi, sys, depth)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Max() < 1 || sb.Max() > depth {
		t.Fatalf("Max() = %d, want within [1, %d]", sb.Max(), depth)
	}
	chain := sb.Sets()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		x := mat.Vec{rng.Float64()*2.4 - 1.2} // cover inside and outside X
		naive := 0
		for k, s := range chain {
			if !s.Contains(x, 1e-9) {
				break
			}
			naive = k + 1
		}
		if got := sb.Remaining(x); got != naive {
			t.Fatalf("Remaining(%v) = %d, naive scan = %d", x, got, naive)
		}
	}
}

// TestSkipBudgetCertifiesSkips verifies the semantic contract against the
// dynamics: from any state with Remaining ≥ k, k consecutive zero-input
// steps under worst-case admissible disturbances stay inside XI.
func TestSkipBudgetCertifiesSkips(t *testing.T) {
	sys, xi := budgetRig(t, 0.05)
	sb, err := NewSkipBudget(xi, sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	wWorst := []float64{-0.05, 0.05} // extreme points of W
	rng := rand.New(rand.NewSource(11))
	lo, hi, err := xi.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	zero := mat.Vec{0}
	for trial := 0; trial < 300; trial++ {
		x := mat.Vec{lo[0] + rng.Float64()*(hi[0]-lo[0])}
		k := sb.Remaining(x)
		if k == 0 {
			continue
		}
		// Exhaustively push the worst disturbance sign at every step.
		for _, sign := range wWorst {
			cur := x.Clone()
			for step := 0; step < k; step++ {
				cur = sys.Step(cur, zero, mat.Vec{sign})
				if !xi.Contains(cur, 1e-7) {
					t.Fatalf("x=%v budget=%d: left XI at skip %d (w=%v): %v",
						x, k, step+1, sign, cur)
				}
			}
		}
	}
}

// TestSkipBudgetChainMonotone pins the structural invariant Remaining
// relies on: deeper sets are contained in shallower ones, so membership is
// a prefix property.
func TestSkipBudgetChainMonotone(t *testing.T) {
	sys, xi := budgetRig(t, 0.02)
	sb, err := NewSkipBudget(xi, sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	chain := sb.Sets()
	for k := 1; k < len(chain); k++ {
		ok, err := chain[k-1].Covers(chain[k], 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("S_%d ⊄ S_%d: chain not monotone", k+1, k)
		}
	}
	// The Chebyshev center of S_k must carry a budget of at least k.
	for k, s := range chain {
		c, _, err := s.Chebyshev()
		if err != nil {
			t.Fatal(err)
		}
		if got := sb.Remaining(c); got < k+1 {
			t.Errorf("center of S_%d has Remaining %d, want ≥ %d", k+1, got, k+1)
		}
	}
}

// TestBudgetFromChain covers the wrap-an-existing-chain path and the empty
// chain edge case.
func TestBudgetFromChain(t *testing.T) {
	sys, xi := budgetRig(t, 0.05)
	chain, err := ConsecutiveSkipSets(xi, sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	sb := BudgetFromChain(chain)
	if sb.Max() != len(chain) {
		t.Fatalf("Max() = %d, want %d", sb.Max(), len(chain))
	}
	empty := BudgetFromChain(nil)
	if empty.Max() != 0 {
		t.Fatalf("empty chain Max() = %d, want 0", empty.Max())
	}
	if got := empty.Remaining(mat.Vec{0}); got != 0 {
		t.Fatalf("empty chain Remaining = %d, want 0", got)
	}
}
