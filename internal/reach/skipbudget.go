package reach

import (
	"fmt"

	"oic/internal/lti"
	"oic/internal/poly"
)

// ConsecutiveSkipSets generalizes the strengthened safe set to multi-step
// skip budgets: it returns S₁ … S_m where
//
//	S₁ = B(XI, 0) ∩ XI            (the paper's X′)
//	S_k = B(S_{k−1}, 0) ∩ XI,
//
// so x ∈ S_k guarantees that k consecutive zero-input steps keep the state
// inside XI at every intermediate step, for every admissible disturbance
// sequence. The chain is monotone decreasing (S_{k+1} ⊆ S_k); computation
// stops early when a set becomes empty (the returned slice is shorter) or
// when the chain reaches a fixed point (the remaining entries share the
// fixed point, which then tolerates unbounded skipping).
//
// This connects the framework to the weakly-hard real-time literature the
// paper builds on ([4]–[6]): membership in S_k certifies an (m, K)-style
// skip pattern without any online monitoring during the committed window.
func ConsecutiveSkipSets(xi *poly.Polytope, sys *lti.System, maxSkips int) ([]*poly.Polytope, error) {
	if maxSkips < 1 {
		return nil, fmt.Errorf("reach: ConsecutiveSkipSets: maxSkips %d < 1", maxSkips)
	}
	out := make([]*poly.Polytope, 0, maxSkips)
	prev := xi
	for k := 1; k <= maxSkips; k++ {
		b0, err := Backward(prev, sys)
		if err != nil {
			return nil, fmt.Errorf("reach: ConsecutiveSkipSets: step %d: %w", k, err)
		}
		sk := poly.Intersect(b0, xi).ReduceRedundancy()
		if sk.IsEmpty() {
			return out, nil
		}
		if len(out) > 0 {
			same, err := sk.Covers(out[len(out)-1], 1e-9)
			if err != nil {
				return nil, err
			}
			if same {
				// Fixed point: every further budget level equals this set.
				for ; k <= maxSkips; k++ {
					out = append(out, sk)
				}
				return out, nil
			}
		}
		out = append(out, sk)
		prev = sk
	}
	return out, nil
}
