package reach

import (
	"fmt"

	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
)

// ConsecutiveSkipSets generalizes the strengthened safe set to multi-step
// skip budgets: it returns S₁ … S_m where
//
//	S₁ = B(XI, 0) ∩ XI            (the paper's X′)
//	S_k = B(S_{k−1}, 0) ∩ XI,
//
// so x ∈ S_k guarantees that k consecutive zero-input steps keep the state
// inside XI at every intermediate step, for every admissible disturbance
// sequence. The chain is monotone decreasing (S_{k+1} ⊆ S_k); computation
// stops early when a set becomes empty (the returned slice is shorter) or
// when the chain reaches a fixed point (the remaining entries share the
// fixed point, which then tolerates unbounded skipping).
//
// This connects the framework to the weakly-hard real-time literature the
// paper builds on ([4]–[6]): membership in S_k certifies an (m, K)-style
// skip pattern without any online monitoring during the committed window.
func ConsecutiveSkipSets(xi *poly.Polytope, sys *lti.System, maxSkips int) ([]*poly.Polytope, error) {
	if maxSkips < 1 {
		return nil, fmt.Errorf("reach: ConsecutiveSkipSets: maxSkips %d < 1", maxSkips)
	}
	out := make([]*poly.Polytope, 0, maxSkips)
	prev := xi
	for k := 1; k <= maxSkips; k++ {
		b0, err := Backward(prev, sys)
		if err != nil {
			return nil, fmt.Errorf("reach: ConsecutiveSkipSets: step %d: %w", k, err)
		}
		sk := poly.Intersect(b0, xi).ReduceRedundancy()
		if sk.IsEmpty() {
			return out, nil
		}
		if len(out) > 0 {
			same, err := sk.Covers(out[len(out)-1], 1e-9)
			if err != nil {
				return nil, err
			}
			if same {
				// Fixed point: every further budget level equals this set.
				for ; k <= maxSkips; k++ {
					out = append(out, sk)
				}
				return out, nil
			}
		}
		out = append(out, sk)
		prev = sk
	}
	return out, nil
}

// SkipBudget is the precomputed oracle over a consecutive-skip chain
// S₁ ⊇ S₂ ⊇ … ⊇ S_m: it answers "how many consecutive zero-input steps can
// this state still absorb without leaving XI" in O(log m) membership tests,
// so schedulers and clients read the remaining budget online without
// re-deriving the chain. The oracle is immutable and safe for concurrent
// use (membership tests are read-only).
type SkipBudget struct {
	chain []*poly.Polytope
	tol   float64
}

// NewSkipBudget computes the skip chain for (xi, sys) up to maxSkips and
// wraps it in an oracle. The chain may be shorter than maxSkips when a set
// becomes empty (see ConsecutiveSkipSets).
func NewSkipBudget(xi *poly.Polytope, sys *lti.System, maxSkips int) (*SkipBudget, error) {
	chain, err := ConsecutiveSkipSets(xi, sys, maxSkips)
	if err != nil {
		return nil, err
	}
	return BudgetFromChain(chain), nil
}

// BudgetFromChain wraps an already-computed monotone chain S₁ ⊇ … ⊇ S_m.
// The chain is retained, not copied.
func BudgetFromChain(chain []*poly.Polytope) *SkipBudget {
	return &SkipBudget{chain: chain, tol: 1e-9}
}

// Max returns the chain depth m: no budget larger than Max is ever
// reported, even when the chain reached a fixed point that would tolerate
// unbounded skipping.
func (b *SkipBudget) Max() int { return len(b.chain) }

// Sets returns the underlying chain S₁ … S_m (shared; do not mutate).
func (b *SkipBudget) Sets() []*poly.Polytope { return b.chain }

// ValidateSkipChain checks that a chain S₁ … S_m (e.g. one decoded from a
// persisted artifact) has the monotonicity ConsecutiveSkipSets guarantees
// by construction: every set is nonempty, shares one ambient dimension,
// and S_{k+1} ⊆ S_k within tol. BudgetFromChain's binary search is only
// correct on a monotone chain, so loaders must validate before wrapping
// untrusted bytes in an oracle.
func ValidateSkipChain(chain []*poly.Polytope, tol float64) error {
	for i, s := range chain {
		if s == nil {
			return fmt.Errorf("reach: skip chain S_%d is nil", i+1)
		}
		if s.Dim() != chain[0].Dim() {
			return fmt.Errorf("reach: skip chain S_%d has dimension %d, S_1 has %d", i+1, s.Dim(), chain[0].Dim())
		}
		if s.IsEmpty() {
			return fmt.Errorf("reach: skip chain S_%d is empty", i+1)
		}
		if i > 0 {
			nested, err := chain[i-1].Covers(s, tol)
			if err != nil {
				return fmt.Errorf("reach: skip chain S_%d ⊆ S_%d check: %w", i+1, i, err)
			}
			if !nested {
				return fmt.Errorf("reach: skip chain not monotone: S_%d ⊄ S_%d", i+1, i)
			}
		}
	}
	return nil
}

// Remaining returns the largest k with x ∈ S_k — the number of consecutive
// skipped control steps the state is certified to absorb while staying
// inside XI under every admissible disturbance — or 0 when x ∉ S₁ = X′
// (skipping is not provably safe at all). Because the chain is monotone
// decreasing, membership is a prefix property and a binary search suffices.
func (b *SkipBudget) Remaining(x mat.Vec) int {
	lo, hi := 0, len(b.chain) // invariant: x ∈ S_lo (S_0 := everything), x ∉ S_{hi+1}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if b.chain[mid-1].Contains(x, b.tol) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
