package core

import (
	"errors"
	"strings"
	"testing"

	"oic/internal/mat"
)

// failingController always errors; the framework must surface the failure
// with context rather than actuating garbage.
type failingController struct{}

func (failingController) Compute(mat.Vec) (mat.Vec, error) {
	return nil, errors.New("actuator offline")
}
func (failingController) Name() string { return "failing" }

func TestSessionSurfacesControllerError(t *testing.T) {
	sys, _, sets := testRig(t)
	f, err := NewFramework(sys, failingController{}, sets, AlwaysRun{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Step(mat.Vec{0, 0})
	if err == nil {
		t.Fatal("controller failure swallowed")
	}
	if !strings.Contains(err.Error(), "actuator offline") {
		t.Errorf("error lost cause: %v", err)
	}
}

func TestSkipPathDoesNotTouchController(t *testing.T) {
	// With a policy that always skips, a failing κ must never be invoked
	// while the state stays within X'.
	sys, _, sets := testRig(t)
	f, err := NewFramework(sys, failingController{}, sets, BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// The undisturbed double integrator stays at the origin under u = 0.
	for i := 0; i < 10; i++ {
		rec, err := sess.Step(mat.Vec{0, 0})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if rec.Ran {
			t.Fatalf("step %d ran the controller on the skip path", i)
		}
	}
	if sess.Result.ControllerCalls != 0 {
		t.Errorf("controller calls = %d", sess.Result.ControllerCalls)
	}
}

func TestMonitorTolerance(t *testing.T) {
	_, _, sets := testRig(t)
	m := NewMonitor(sets)
	// A point epsilon outside X' must classify as the next level out, and
	// widening the tolerance must pull it back in.
	lo, hi, err := sets.XPrime.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	_ = lo
	probe := mat.Vec{hi[0] + 1e-6, 0}
	if m.Level(probe) == InXPrime {
		t.Skip("probe still inside X' (non-box boundary); tolerance probe inconclusive")
	}
	// Widening the tolerance beyond the probe's actual violation must pull
	// it back into X'.
	m.Tol = sets.XPrime.Violation(probe) + 1e-9
	if m.Level(probe) != InXPrime {
		t.Errorf("tolerance not honored")
	}
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{
		InXPrime: "X'", InXI: "XI", InX: "X", Unsafe: "unsafe",
	} {
		if lv.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(lv), lv.String(), want)
		}
	}
}

func TestSkipRate(t *testing.T) {
	r := &Result{Skips: 3, Runs: 1}
	if got := r.SkipRate(); got != 0.75 {
		t.Errorf("SkipRate = %v", got)
	}
	if got := (&Result{}).SkipRate(); got != 0 {
		t.Errorf("empty SkipRate = %v", got)
	}
}
