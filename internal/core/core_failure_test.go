package core

import (
	"errors"
	"strings"
	"testing"

	"oic/internal/mat"
)

// failingController always errors; the framework must surface the failure
// with context rather than actuating garbage.
type failingController struct{}

func (failingController) Compute(mat.Vec) (mat.Vec, error) {
	return nil, errors.New("actuator offline")
}
func (failingController) Name() string { return "failing" }

func TestSessionSurfacesControllerError(t *testing.T) {
	sys, _, sets := testRig(t)
	f, err := NewFramework(sys, failingController{}, sets, AlwaysRun{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Step(mat.Vec{0, 0})
	if err == nil {
		t.Fatal("controller failure swallowed")
	}
	if !strings.Contains(err.Error(), "actuator offline") {
		t.Errorf("error lost cause: %v", err)
	}
}

func TestSkipPathDoesNotTouchController(t *testing.T) {
	// With a policy that always skips, a failing κ must never be invoked
	// while the state stays within X'.
	sys, _, sets := testRig(t)
	f, err := NewFramework(sys, failingController{}, sets, BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// The undisturbed double integrator stays at the origin under u = 0.
	for i := 0; i < 10; i++ {
		rec, err := sess.Step(mat.Vec{0, 0})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if rec.Ran {
			t.Fatalf("step %d ran the controller on the skip path", i)
		}
	}
	if sess.Result.ControllerCalls != 0 {
		t.Errorf("controller calls = %d", sess.Result.ControllerCalls)
	}
}

func TestMonitorTolerance(t *testing.T) {
	_, _, sets := testRig(t)
	m := NewMonitor(sets)
	// A point epsilon outside X' must classify as the next level out, and
	// widening the tolerance must pull it back in.
	lo, hi, err := sets.XPrime.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	_ = lo
	probe := mat.Vec{hi[0] + 1e-6, 0}
	if m.Level(probe) == InXPrime {
		t.Skip("probe still inside X' (non-box boundary); tolerance probe inconclusive")
	}
	// Widening the tolerance beyond the probe's actual violation must pull
	// it back into X'.
	m.Tol = sets.XPrime.Violation(probe) + 1e-9
	if m.Level(probe) != InXPrime {
		t.Errorf("tolerance not honored")
	}
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{
		InXPrime: "X'", InXI: "XI", InX: "X", Unsafe: "unsafe",
	} {
		if lv.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(lv), lv.String(), want)
		}
	}
}

func TestSkipRate(t *testing.T) {
	r := &Result{Skips: 3, Runs: 1}
	if got := r.SkipRate(); got != 0.75 {
		t.Errorf("SkipRate = %v", got)
	}
	if got := (&Result{}).SkipRate(); got != 0 {
		t.Errorf("empty SkipRate = %v", got)
	}
}

func TestDegradeOptionalComputeFailure(t *testing.T) {
	// Degraded mode: at the origin (x ∈ X′) an AlwaysRun policy wants κ,
	// κ fails, and the step falls back to the certified zero-input skip
	// instead of closing the session.
	sys, _, sets := testRig(t)
	f, err := NewFramework(sys, failingController{}, sets, AlwaysRun{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sess.SetDegrade(true)
	for i := 0; i < 6; i++ {
		rec, err := sess.Step(mat.Vec{0, 0})
		if err != nil {
			t.Fatalf("step %d: degraded session errored: %v", i, err)
		}
		if rec.Ran {
			t.Fatalf("step %d: degraded step recorded as a run", i)
		}
	}
	if sess.Closed() {
		t.Fatal("degraded session closed")
	}
	res := sess.Result
	if res.Degraded != 6 || res.Skips != 6 || res.Runs != 0 {
		t.Fatalf("counters: degraded=%d skips=%d runs=%d, want 6/6/0", res.Degraded, res.Skips, res.Runs)
	}
	if res.ViolationsX != 0 || res.ViolationsXI != 0 {
		t.Fatalf("degradation violated safety: %d/%d", res.ViolationsX, res.ViolationsXI)
	}
}

func TestDegradeForcedComputeStaysTerminal(t *testing.T) {
	// A κ failure on a monitor-forced compute has no safe fallback: even
	// in degraded mode the session must close loudly.
	sys, _, sets := testRig(t)
	m := NewMonitor(sets)
	_, hi, err := sets.XPrime.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	probe := mat.Vec{hi[0] + 1e-6, 0}
	if m.Level(probe) != InXI {
		t.Skip("probe not in XI \\ X'; forced-state construction inconclusive")
	}
	f, err := NewFramework(sys, failingController{}, sets, BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(probe)
	if err != nil {
		t.Fatal(err)
	}
	sess.SetDegrade(true)
	if _, err := sess.Step(mat.Vec{0, 0}); err == nil {
		t.Fatal("forced κ failure survived degraded mode")
	}
	if !sess.Closed() {
		t.Fatal("session open after terminal forced failure")
	}
	if _, err := sess.Step(mat.Vec{0, 0}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("stepping a closed session: %v", err)
	}
}

func TestResetClearsDegrade(t *testing.T) {
	// Reset restores the cold default (degrade off) so pooled sessions
	// never inherit a previous tenant's failure mode.
	sys, _, sets := testRig(t)
	f, err := NewFramework(sys, failingController{}, sets, AlwaysRun{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sess.SetDegrade(true)
	if _, err := sess.Step(mat.Vec{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Reset(mat.Vec{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(mat.Vec{0, 0}); err == nil {
		t.Fatal("degrade survived Reset")
	}
}
