package core

import (
	"math/rand"
	"testing"

	"oic/internal/mat"
	"oic/internal/reach"
)

func TestWindowMisses(t *testing.T) {
	mk := func(pattern string) []StepRecord {
		recs := make([]StepRecord, len(pattern))
		for i, c := range pattern {
			recs[i].Ran = c == '1'
		}
		return recs
	}
	cases := []struct {
		pattern string
		k, want int
	}{
		{"1111", 2, 0},
		{"0000", 2, 2},
		{"1010", 2, 1},
		{"10010", 3, 2},
		{"0110", 1, 1},
		{"01", 5, 0}, // window longer than the record
	}
	for _, c := range cases {
		if got := WindowMisses(mk(c.pattern), c.k); got != c.want {
			t.Errorf("WindowMisses(%q, %d) = %d, want %d", c.pattern, c.k, got, c.want)
		}
	}
	if !SatisfiesMK(mk("10010"), 2, 3) || SatisfiesMK(mk("10010"), 1, 3) {
		t.Error("SatisfiesMK misjudged the pattern")
	}
}

func TestConsecutiveSkipSetsChain(t *testing.T) {
	sys, _, sets := testRig(t)
	chain, err := reach.ConsecutiveSkipSets(sets.XI, sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) == 0 {
		t.Fatal("empty chain")
	}
	// S₁ must equal the strengthened safe set X′.
	ok1, _ := chain[0].Covers(sets.XPrime, 1e-6)
	ok2, _ := sets.XPrime.Covers(chain[0], 1e-6)
	if !ok1 || !ok2 {
		t.Error("S1 differs from X'")
	}
	// Monotone decreasing.
	for k := 1; k < len(chain); k++ {
		ok, err := chain[k-1].Covers(chain[k], 1e-6)
		if err != nil || !ok {
			t.Errorf("S%d ⊄ S%d: %v %v", k+1, k, ok, err)
		}
	}
}

// The semantic guarantee: from x ∈ S_k, k zero-input steps under vertex
// disturbances stay inside XI throughout.
func TestConsecutiveSkipSetsSemantics(t *testing.T) {
	sys, _, sets := testRig(t)
	chain, err := reach.ConsecutiveSkipSets(sets.XI, sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	wVerts, err := sys.W.Vertices()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	zero := make(mat.Vec, sys.NU())
	for k := 1; k <= len(chain); k++ {
		pts, err := chain[k-1].Sample(15, rng.Float64)
		if err != nil {
			t.Fatal(err)
		}
		for _, x0 := range pts {
			// Depth-first over disturbance vertex sequences would be 4^k;
			// sample random vertex sequences instead.
			for trial := 0; trial < 20; trial++ {
				x := x0.Clone()
				for step := 0; step < k; step++ {
					x = sys.Step(x, zero, wVerts[rng.Intn(len(wVerts))])
					if !sets.XI.Contains(x, 1e-6) {
						t.Fatalf("S%d: skip step %d left XI from %v", k, step, x0)
					}
				}
			}
		}
	}
}

func TestMaxConsecutiveSkips(t *testing.T) {
	sys, _, sets := testRig(t)
	chain, err := reach.ConsecutiveSkipSets(sets.XI, sys, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The origin sits deep inside every set of this chain.
	if got := MaxConsecutiveSkips(chain, mat.Vec{0, 0}, 1e-9); got != len(chain) {
		t.Errorf("budget at origin = %d, want %d", got, len(chain))
	}
	// A state outside S1 has budget 0.
	far := mat.Vec{4.9, 2.9}
	if chain[0].Contains(far, 1e-9) {
		t.Skip("probe state unexpectedly inside S1")
	}
	if got := MaxConsecutiveSkips(chain, far, 1e-9); got != 0 {
		t.Errorf("budget at %v = %d, want 0", far, got)
	}
}

func TestBudgetPolicyRunsAndSaves(t *testing.T) {
	sys, fb, sets := testRig(t)
	chain, err := reach.ConsecutiveSkipSets(sets.XI, sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	pol := &BudgetPolicy{SkipSets: chain, MinBudget: 2}
	if pol.Name() == "" {
		t.Error("empty name")
	}
	f, err := NewFramework(sys, fb, sets, pol, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	wVerts, _ := sys.W.Vertices()
	res, err := f.Run(mat.Vec{0.5, 0}, 150, func(int) mat.Vec {
		return wVerts[rng.Intn(len(wVerts))].Clone()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationsX != 0 || res.ViolationsXI != 0 {
		t.Errorf("violations: X=%d XI=%d", res.ViolationsX, res.ViolationsXI)
	}
	if res.Skips == 0 {
		t.Error("budget policy never skipped")
	}
	// Against always-run on the same disturbance stream it must not be
	// more expensive than never skipping... (energy of feedback is state
	// dependent, so just require meaningful skipping).
	if res.SkipRate() < 0.2 {
		t.Errorf("skip rate %.2f suspiciously low", res.SkipRate())
	}
}
