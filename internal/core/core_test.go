package core

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/controller"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
	"oic/internal/reach"
)

// testRig builds a double-integrator with a stabilizing LQR feedback, its
// maximal invariant set XI, and the strengthened safe set X′.
func testRig(t *testing.T) (*lti.System, *controller.AffineFeedback, SafetySets) {
	t.Helper()
	a := mat.FromRows([][]float64{{1, 0.1}, {0, 1}})
	b := mat.FromRows([][]float64{{0}, {0.1}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-5, -3}, []float64{5, 3}),
		poly.Box([]float64{-4}, []float64{4}),
		poly.Box([]float64{-0.03, -0.03}, []float64{0.03, 0.03}),
	)
	k, err := controller.LQR(a, b, mat.Identity(2), mat.Identity(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fb := controller.NewAffineFeedback(k, nil, nil)

	acl, ccl := sys.ClosedLoop(k, mat.Vec{0, 0}, mat.Vec{0})
	// Restrict to states where the feedback is admissible, then find the
	// maximal invariant set of the closed loop.
	ha := sys.U.A.Mul(k)
	adm := poly.New(ha, sys.U.B.Clone())
	xi, err := reach.MaximalInvariantSet(poly.Intersect(sys.X, adm).ReduceRedundancy(), acl, ccl, sys.W, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sets, err := ComputeSafetySets(sys, xi)
	if err != nil {
		t.Fatal(err)
	}
	return sys, fb, sets
}

func TestComputeSafetySetsNesting(t *testing.T) {
	sys, _, sets := testRig(t)
	if ok, _ := sets.XI.Covers(sets.XPrime, 1e-6); !ok {
		t.Error("X' ⊄ XI")
	}
	if ok, _ := sys.X.Covers(sets.XI, 1e-6); !ok {
		t.Error("XI ⊄ X")
	}
}

func TestComputeSafetySetsRejectsBadXI(t *testing.T) {
	sys, _, _ := testRig(t)
	tooBig := poly.Box([]float64{-50, -50}, []float64{50, 50})
	if _, err := ComputeSafetySets(sys, tooBig); err == nil {
		t.Error("XI larger than X accepted")
	}
}

func TestMonitorLevels(t *testing.T) {
	_, _, sets := testRig(t)
	m := NewMonitor(sets)
	// Origin is deep inside every set.
	if lv := m.Level(mat.Vec{0, 0}); lv != InXPrime {
		t.Errorf("origin level = %v", lv)
	}
	if lv := m.Level(mat.Vec{100, 100}); lv != Unsafe {
		t.Errorf("far state level = %v", lv)
	}
}

func TestFrameworkValidation(t *testing.T) {
	sys, fb, sets := testRig(t)
	if _, err := NewFramework(nil, fb, sets, BangBang{}, 1); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := NewFramework(sys, fb, SafetySets{}, BangBang{}, 1); err == nil {
		t.Error("empty sets accepted")
	}
	if _, err := NewFramework(sys, fb, sets, BangBang{}, -1); err == nil {
		t.Error("negative memory accepted")
	}
}

func TestSessionRejectsStartOutsideXI(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.NewSession(mat.Vec{100, 0}); err == nil {
		t.Error("start outside XI accepted")
	}
}

func TestAlwaysRunNeverSkips(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, AlwaysRun{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(mat.Vec{0.5, 0}, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skips != 0 || res.Runs != 50 {
		t.Errorf("skips=%d runs=%d", res.Skips, res.Runs)
	}
	if res.ControllerCalls != 50 {
		t.Errorf("controller calls = %d", res.ControllerCalls)
	}
}

func TestBangBangSkipsInsideXPrime(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(mat.Vec{0, 0}, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skips == 0 {
		t.Error("bang-bang never skipped from the origin")
	}
	if res.ViolationsX != 0 || res.ViolationsXI != 0 {
		t.Errorf("violations: X=%d XI=%d", res.ViolationsX, res.ViolationsXI)
	}
	// Every run must have been forced by the monitor (policy always says skip).
	if res.Forced != res.Runs {
		t.Errorf("forced=%d runs=%d; bang-bang runs must all be monitor-forced", res.Forced, res.Runs)
	}
}

// TestTheorem1SafetyRandomPolicy is the paper's central guarantee: for ANY
// decision function Ω — here an adversarial coin-flip — the system never
// leaves XI (and therefore X), under worst-case vertex disturbances.
func TestTheorem1SafetyRandomPolicy(t *testing.T) {
	sys, fb, sets := testRig(t)
	wVerts, err := sys.W.Vertices()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	starts, err := sets.XI.Sample(10, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	for trial, x0 := range starts {
		policy := PolicyFunc{
			Fn:    func(int, mat.Vec, []mat.Vec) bool { return rng.Float64() < 0.3 },
			Label: "random",
		}
		f, err := NewFramework(sys, fb, sets, policy, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(x0, 120, func(int) mat.Vec {
			return wVerts[rng.Intn(len(wVerts))].Clone()
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.ViolationsX != 0 || res.ViolationsXI != 0 {
			t.Fatalf("trial %d: Theorem 1 violated: X=%d XI=%d violations",
				trial, res.ViolationsX, res.ViolationsXI)
		}
	}
}

func TestSessionStepWithChoiceMonitorOverride(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Start inside XI but outside X′ if possible: walk outward along x1.
	var x0 mat.Vec
	for s := 0.0; s < 6; s += 0.01 {
		cand := mat.Vec{s, 0}
		if sets.XI.Contains(cand, 1e-9) && !sets.XPrime.Contains(cand, 1e-9) {
			x0 = cand
			break
		}
	}
	if x0 == nil {
		t.Skip("no XI \\ X' state found on the probe ray")
	}
	sess, err := f.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.StepWithChoice(mat.Vec{0, 0}, false) // ask to skip
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Ran || !rec.Forced {
		t.Errorf("monitor failed to override skip outside X': ran=%v forced=%v", rec.Ran, rec.Forced)
	}
}

func TestResultTrajectoryAndEnergy(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, AlwaysRun{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(mat.Vec{1, 0}, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trajectory()
	if tr.Steps() != 20 || len(tr.States) != 21 {
		t.Fatalf("trajectory sizes wrong: %d steps", tr.Steps())
	}
	if math.Abs(tr.Energy()-res.Energy) > 1e-9 {
		t.Errorf("energy mismatch: %v vs %v", tr.Energy(), res.Energy)
	}
}

func TestRecentWWindow(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, BangBang{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := sess.Step(mat.Vec{float64(i) * 0.001, 0}); err != nil {
			t.Fatal(err)
		}
	}
	w := sess.RecentW()
	if len(w) != 3 {
		t.Fatalf("window size %d", len(w))
	}
	// Most recent last: 0.002, 0.003, 0.004.
	for i, want := range []float64{0.002, 0.003, 0.004} {
		if math.Abs(w[i][0]-want) > 1e-12 {
			t.Errorf("w[%d] = %v, want %v", i, w[i][0], want)
		}
	}
}

// TestModelBasedPolicyOnKnownDisturbance checks the MIP policy skips when
// skipping is free (zero disturbance at the origin) and still maintains
// safety on a disturbed run.
func TestModelBasedPolicyOnKnownDisturbance(t *testing.T) {
	sys, fb, sets := testRig(t)
	zeroW := func(int) mat.Vec { return mat.Vec{0, 0} }
	pol := &ModelBasedPolicy{
		Sys:     SysModel{A: sys.A, B: sys.B, C: sys.C},
		Kappa:   fb,
		XPrime:  sets.XPrime,
		U:       sys.U,
		Horizon: 4,
		KnownW:  zeroW,
	}
	if err := pol.Validate(); err != nil {
		t.Fatal(err)
	}
	// At the origin with zero disturbance, skipping costs nothing: z = 0.
	if pol.Decide(0, mat.Vec{0, 0}, nil) {
		t.Error("model-based policy ran κ at the origin with zero disturbance")
	}

	// Full run with a known sinusoidal disturbance.
	wf := func(tt int) mat.Vec {
		return mat.Vec{0.03 * math.Sin(float64(tt)*0.3), 0}
	}
	pol2 := &ModelBasedPolicy{
		Sys:     SysModel{A: sys.A, B: sys.B, C: sys.C},
		Kappa:   fb,
		XPrime:  sets.XPrime,
		U:       sys.U,
		Horizon: 4,
		KnownW:  wf,
	}
	f, err := NewFramework(sys, fb, sets, pol2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(mat.Vec{0.5, 0.2}, 40, func(tt int) mat.Vec { return wf(tt) })
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationsX != 0 || res.ViolationsXI != 0 {
		t.Errorf("violations: X=%d XI=%d", res.ViolationsX, res.ViolationsXI)
	}
	if res.Skips == 0 {
		t.Error("model-based policy never skipped")
	}

	// The optimizing policy must not spend more energy than always running.
	fAlways, _ := NewFramework(sys, fb, sets, AlwaysRun{}, 1)
	resAlways, err := fAlways.Run(mat.Vec{0.5, 0.2}, 40, func(tt int) mat.Vec { return wf(tt) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy > resAlways.Energy+1e-9 {
		t.Errorf("model-based energy %v exceeds always-run %v", res.Energy, resAlways.Energy)
	}
}

func TestModelBasedStatsAndFallback(t *testing.T) {
	sys, fb, sets := testRig(t)
	// Horizon 0 is invalid: Decide must fall back to running κ.
	bad := &ModelBasedPolicy{
		Sys: SysModel{A: sys.A, B: sys.B, C: sys.C}, Kappa: fb,
		XPrime: sets.XPrime, U: sys.U, Horizon: 0,
		KnownW: func(int) mat.Vec { return mat.Vec{0, 0} },
	}
	if !bad.Decide(0, mat.Vec{0, 0}, nil) {
		t.Error("invalid policy did not fall back to z=1")
	}
	if bad.Stats().Fallbacks != 1 {
		t.Errorf("fallbacks = %d", bad.Stats().Fallbacks)
	}
}
