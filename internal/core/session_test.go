package core

import (
	"context"
	"errors"
	"testing"

	"oic/internal/mat"
)

// TestSessionClosedAfterTerminalFailure pins the terminal-failure contract:
// a κ error closes the session and every later Step reports the stable
// sentinel ErrSessionClosed instead of undefined behavior on reuse.
func TestSessionClosedAfterTerminalFailure(t *testing.T) {
	sys, _, sets := testRig(t)
	f, err := NewFramework(sys, failingController{}, sets, AlwaysRun{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(mat.Vec{0, 0}); err == nil {
		t.Fatal("controller failure swallowed")
	}
	if !sess.Closed() {
		t.Fatal("session not closed after terminal κ failure")
	}
	if _, err := sess.Step(mat.Vec{0, 0}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("step after failure: got %v, want ErrSessionClosed", err)
	}
}

// TestSessionCloseAndReset exercises explicit Close and the pooling Reset:
// Close refuses further steps, Reset reopens with fresh counters, and an
// out-of-XI reset is refused with the ErrUnsafe sentinel.
func TestSessionCloseAndReset(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	w := make(mat.Vec, sys.NX())
	if _, err := sess.Step(w); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if _, err := sess.Step(w); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("step after Close: got %v, want ErrSessionClosed", err)
	}

	if err := sess.Reset(mat.Vec{100, 0}); !errors.Is(err, ErrUnsafe) {
		t.Fatalf("reset outside XI: got %v, want ErrUnsafe", err)
	}
	if err := sess.Reset(mat.Vec{0.5, 0}); err != nil {
		t.Fatal(err)
	}
	if sess.Closed() || sess.Time() != 0 || sess.Result.Skips != 0 {
		t.Fatalf("reset session not fresh: closed=%v t=%d skips=%d",
			sess.Closed(), sess.Time(), sess.Result.Skips)
	}
	if got := sess.StateView(); got[0] != 0.5 {
		t.Fatalf("reset state = %v", got)
	}
	if _, err := sess.Step(w); err != nil {
		t.Fatal(err)
	}
}

// TestNewSessionErrUnsafe makes the precondition failure errors.Is-able.
func TestNewSessionErrUnsafe(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.NewSession(mat.Vec{100, 0}); !errors.Is(err, ErrUnsafe) {
		t.Fatalf("NewSession outside XI: got %v, want ErrUnsafe", err)
	}
	if _, err := f.NewSession(mat.Vec{0}); err == nil {
		t.Fatal("NewSession accepted a wrong-dimension state")
	}
}

// TestStepContextCancellation threads a canceled context through Step.
func TestStepContextCancellation(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	w := make(mat.Vec, sys.NX())
	if _, err := sess.StepContext(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.StepContext(ctx, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled step: got %v, want context.Canceled", err)
	}
	if sess.Time() != 1 {
		t.Fatalf("canceled step advanced the session: t=%d", sess.Time())
	}
}
