package core

import (
	"errors"
	"fmt"
	"math"

	"oic/internal/controller"
	"oic/internal/lp"
	"oic/internal/mat"
	"oic/internal/mip"
	"oic/internal/poly"
)

// ModelBasedPolicy is the paper's model-based skipping decision function
// (Eq. 6): when the underlying controller κ has an analytic (affine) form
// and the disturbance w(t) is known ahead of time, the skipping choices
// over a horizon H are optimized by a mixed-integer program minimizing
// Σ‖u(k)‖₁ subject to
//
//	x(k+1) = A·x(k) + B·u(k) + c + w(t+k),
//	x(k+1) ∈ X′,  u(k) ∈ U,
//	u(k) = z(k)·κ(x(k)),  z(k) ∈ {0, 1},
//
// and applies the first decision z*(0|t) (receding horizon, like MPC but
// without a terminal constraint — Remark 1).
//
// The product z(k)·κ(x(k)) is linearized exactly with big-M constraints:
// |u(k) − κ(x(k))| ≤ M(1−z(k)) and |u(k)| ≤ M·z(k).
type ModelBasedPolicy struct {
	Sys     SysModel
	Kappa   *controller.AffineFeedback
	XPrime  *poly.Polytope
	U       *poly.Polytope
	Horizon int
	// KnownW returns the disturbance that will act at absolute time step t.
	KnownW func(t int) mat.Vec
	// BigM bounds |u| and |u − κ(x)| over the admissible region; 0 means
	// it is derived from U with a safety factor.
	BigM float64
	// MaxNodes caps branch-and-bound work per decision (0 = solver default).
	MaxNodes int

	// Fallback decision when the MIP is infeasible or truncated without an
	// incumbent: run the controller (safe and conservative).
	stats ModelBasedStats
}

// SysModel is the slice of lti.System the policy needs; it avoids carrying
// constraint sets the MIP encodes explicitly.
type SysModel struct {
	A *mat.Mat
	B *mat.Mat
	C mat.Vec
}

// ModelBasedStats counts solver outcomes for diagnostics.
type ModelBasedStats struct {
	Solved     int
	Fallbacks  int
	TotalNodes int
}

// Stats returns solver outcome counters.
func (p *ModelBasedPolicy) Stats() ModelBasedStats { return p.stats }

// Name implements SkipPolicy.
func (p *ModelBasedPolicy) Name() string { return "model-based-mip" }

// Validate checks the policy configuration.
func (p *ModelBasedPolicy) Validate() error {
	if p.Sys.A == nil || p.Sys.B == nil {
		return errors.New("core: ModelBasedPolicy: missing dynamics")
	}
	if p.Kappa == nil || p.XPrime == nil || p.U == nil || p.KnownW == nil {
		return errors.New("core: ModelBasedPolicy: missing component")
	}
	if p.Horizon < 1 {
		return fmt.Errorf("core: ModelBasedPolicy: horizon %d < 1", p.Horizon)
	}
	return nil
}

func (p *ModelBasedPolicy) bigM() float64 {
	if p.BigM > 0 {
		return p.BigM
	}
	// Bound from U: M ≥ 2·max|u| is enough for both |u| ≤ Mz and
	// |u − κ(x)| ≤ M(1−z) as long as κ's output is admissible on X′.
	m := 1.0
	nu := p.Sys.B.C
	d := make(mat.Vec, nu)
	for j := 0; j < nu; j++ {
		for _, s := range []float64{1, -1} {
			d[j] = s
			if h, _, err := p.U.Support(d); err == nil && math.Abs(h) > m {
				m = math.Abs(h)
			}
			d[j] = 0
		}
	}
	return 4 * m
}

// Decide implements SkipPolicy by solving the horizon MIP and applying the
// first skipping choice.
func (p *ModelBasedPolicy) Decide(t int, x mat.Vec, _ []mat.Vec) bool {
	if err := p.Validate(); err != nil {
		p.stats.Fallbacks++
		return true
	}
	nx := p.Sys.A.R
	nu := p.Sys.B.C
	h := p.Horizon
	bigM := p.bigM()

	// Variable layout: u(0..H−1) | x(1..H) | z(0..H−1) | au(0..H−1).
	uOff := 0
	xOff := h * nu
	zOff := xOff + h*nx
	auOff := zOff + h
	nvars := auOff + h*nu

	prob := mip.NewProblem(nvars)
	obj := make([]float64, nvars)
	for j := auOff; j < nvars; j++ {
		obj[j] = 1
	}
	prob.SetObjective(obj)
	for k := 0; k < h; k++ {
		prob.SetBinary(zOff + k)
	}
	for j := auOff; j < nvars; j++ {
		prob.SetBounds(j, 0, math.Inf(1))
	}

	xVar := func(k, i int) int { // x(k), k = 1..H
		return xOff + (k-1)*nx + i
	}

	// Dynamics equalities: x(k+1) − A·x(k) − B·u(k) = c + w(t+k).
	for k := 0; k < h; k++ {
		w := p.KnownW(t + k)
		for i := 0; i < nx; i++ {
			row := make([]float64, nvars)
			row[xVar(k+1, i)] = 1
			rhs := p.Sys.C[i] + w[i]
			if k == 0 {
				// A·x(0) is a known constant.
				rhs += p.Sys.A.Row(i).Dot(x)
			} else {
				for j2 := 0; j2 < nx; j2++ {
					row[xVar(k, j2)] = -p.Sys.A.At(i, j2)
				}
			}
			for c := 0; c < nu; c++ {
				row[uOff+k*nu+c] = -p.Sys.B.At(i, c)
			}
			prob.AddConstraint(row, lp.EQ, rhs)
		}
	}

	// State constraints x(k) ∈ X′ for k = 1..H (Eq. 6 constrains every
	// predicted successor to the strengthened safe set).
	for k := 1; k <= h; k++ {
		for r := 0; r < p.XPrime.A.R; r++ {
			row := make([]float64, nvars)
			for i := 0; i < nx; i++ {
				row[xVar(k, i)] = p.XPrime.A.At(r, i)
			}
			prob.AddConstraint(row, lp.LE, p.XPrime.B[r])
		}
	}

	// Input constraints u(k) ∈ U.
	for k := 0; k < h; k++ {
		for r := 0; r < p.U.A.R; r++ {
			row := make([]float64, nvars)
			for c := 0; c < nu; c++ {
				row[uOff+k*nu+c] = p.U.A.At(r, c)
			}
			prob.AddConstraint(row, lp.LE, p.U.B[r])
		}
	}

	// Big-M linking u(k) = z(k)·κ(x(k)) with κ(x) = K·x + koff.
	koff := p.Kappa.URef.Sub(p.Kappa.K.MulVec(p.Kappa.XRef))
	for k := 0; k < h; k++ {
		for c := 0; c < nu; c++ {
			// ±(u − K·x(k) − koff) ≤ M(1 − z)
			for _, sign := range []float64{1, -1} {
				row := make([]float64, nvars)
				row[uOff+k*nu+c] = sign
				rhs := bigM + sign*koff[c]
				if k == 0 {
					rhs += sign * p.Kappa.K.Row(c).Dot(x)
				} else {
					for i := 0; i < nx; i++ {
						row[xVar(k, i)] = -sign * p.Kappa.K.At(c, i)
					}
				}
				row[zOff+k] = bigM
				prob.AddConstraint(row, lp.LE, rhs)
			}
			// ±u ≤ M·z
			for _, sign := range []float64{1, -1} {
				row := make([]float64, nvars)
				row[uOff+k*nu+c] = sign
				row[zOff+k] = -bigM
				prob.AddConstraint(row, lp.LE, 0)
			}
			// 1-norm epigraph: ±u ≤ au.
			for _, sign := range []float64{1, -1} {
				row := make([]float64, nvars)
				row[uOff+k*nu+c] = sign
				row[auOff+k*nu+c] = -1
				prob.AddConstraint(row, lp.LE, 0)
			}
		}
	}

	sol := prob.Solve(mip.Options{MaxNodes: p.MaxNodes})
	p.stats.TotalNodes += sol.Nodes
	if sol.Status == mip.Optimal || (sol.Status == mip.NodeLimit && sol.HasIncumbent) {
		p.stats.Solved++
		return sol.X[zOff] > 0.5
	}
	// Infeasible (e.g. no plan keeps every successor in X′ for this
	// disturbance future): fall back to running the safe controller.
	p.stats.Fallbacks++
	return true
}
