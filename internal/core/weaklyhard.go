package core

import (
	"fmt"

	"oic/internal/mat"
	"oic/internal/poly"
)

// MaxConsecutiveSkips returns the largest k such that x lies in skipSets[k-1]
// (the S_k chain from reach.ConsecutiveSkipSets), i.e. the number of
// consecutive control skips that are provably safe from x without further
// monitoring. It returns 0 when even a single skip is not certified.
func MaxConsecutiveSkips(skipSets []*poly.Polytope, x mat.Vec, tol float64) int {
	// The chain is monotone decreasing, so scan from the deepest budget.
	for k := len(skipSets); k >= 1; k-- {
		if skipSets[k-1].Contains(x, tol) {
			return k
		}
	}
	return 0
}

// BudgetPolicy skips only while a safety margin of at least MinBudget
// consecutive future skips is certified by the skip-set chain. Compared
// with bang-bang (which rides the X′ boundary and provokes hard forced
// corrections), it backs off earlier, trading a few extra controller runs
// for gentler interventions — an ablation point between always-run and
// bang-bang.
type BudgetPolicy struct {
	SkipSets  []*poly.Polytope // from reach.ConsecutiveSkipSets
	MinBudget int              // skip while budget ≥ MinBudget (≥ 1)
	Tol       float64          // membership tolerance (default 1e-9)
}

// Decide implements SkipPolicy.
func (p *BudgetPolicy) Decide(_ int, x mat.Vec, _ []mat.Vec) bool {
	tol := p.Tol
	if tol == 0 {
		tol = 1e-9
	}
	min := p.MinBudget
	if min < 1 {
		min = 1
	}
	return MaxConsecutiveSkips(p.SkipSets, x, tol) < min
}

// Name implements SkipPolicy.
func (p *BudgetPolicy) Name() string { return fmt.Sprintf("budget(>=%d)", p.MinBudget) }

// WindowMisses returns, over the executed step records, the maximum number
// of skipped controls (z = 0) in any window of k consecutive steps — the
// quantity bounded by an (m, k) weakly-hard constraint. It returns 0 for
// windows longer than the record.
func WindowMisses(records []StepRecord, k int) int {
	if k <= 0 || len(records) < k {
		return 0
	}
	misses := 0
	for i := 0; i < k; i++ {
		if !records[i].Ran {
			misses++
		}
	}
	max := misses
	for i := k; i < len(records); i++ {
		if !records[i].Ran {
			misses++
		}
		if !records[i-k].Ran {
			misses--
		}
		if misses > max {
			max = misses
		}
	}
	return max
}

// SatisfiesMK reports whether the executed skip pattern satisfies the
// (m, k) weakly-hard constraint "at most m misses in any k consecutive
// instances" (Hamdaoui & Ramanathan's notation, the paper's reference [4]).
func SatisfiesMK(records []StepRecord, m, k int) bool {
	return WindowMisses(records, k) <= m
}
