package core

import (
	"testing"

	"oic/internal/mat"
)

// TestSkipPathZeroAllocs pins the Algorithm-1 skip path (monitor + policy
// + zero input + plant update + counters) at zero allocations per step
// once per-step recording is off — the regression guard behind
// BenchmarkFrameworkStepSkip's 0 allocs/op.
func TestSkipPathZeroAllocs(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The origin is an equilibrium of the drift-free double integrator, so
	// with w = 0 and skipping (u = 0) every step stays in X′.
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sess.SetRecording(false)
	w := make(mat.Vec, sys.NX())
	if _, err := sess.Step(w); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := sess.Step(w); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("skip path allocates %v times per step, want 0", allocs)
	}
	if sess.Result.Runs != 0 {
		t.Fatalf("expected a pure skip run, got %d controller runs", sess.Result.Runs)
	}
	if sess.Result.ViolationsX != 0 {
		t.Fatalf("violations on the skip path: %d", sess.Result.ViolationsX)
	}
}

// TestMonitorLevelZeroAllocs keeps the per-step membership check
// allocation-free on its own.
func TestMonitorLevelZeroAllocs(t *testing.T) {
	_, _, sets := testRig(t)
	m := NewMonitor(sets)
	x := mat.Vec{0, 0}
	allocs := testing.AllocsPerRun(200, func() { m.Level(x) })
	if allocs != 0 {
		t.Errorf("Monitor.Level allocates %v times, want 0", allocs)
	}
}

// TestSessionViewReadsZeroAllocs pins the snapshot-vs-view split: the view
// accessors the serving hot path and the DRL encoders use must not clone,
// while the snapshot accessors return owned copies.
func TestSessionViewReadsZeroAllocs(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, BangBang{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_ = sess.StateView()
		_ = sess.RecentWView()
	})
	if allocs != 0 {
		t.Errorf("view reads allocate %v times per call, want 0", allocs)
	}

	// Snapshots are owned: mutating them must not touch the live session.
	snap := sess.State()
	snap[0] = 99
	if sess.StateView()[0] == 99 {
		t.Error("State snapshot aliases the live buffer")
	}
	wsnap := sess.RecentW()
	wsnap[0][0] = 99
	if sess.RecentWView()[0][0] == 99 {
		t.Error("RecentW snapshot aliases the live ring")
	}
}

// TestRecordingToggle documents the SetRecording contract: scalar history
// is kept either way, per-step records only while recording.
func TestRecordingToggle(t *testing.T) {
	sys, fb, sets := testRig(t)
	f, err := NewFramework(sys, fb, sets, BangBang{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := f.NewSession(mat.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	w := make(mat.Vec, sys.NX())
	if _, err := sess.Step(w); err != nil {
		t.Fatal(err)
	}
	sess.SetRecording(false)
	rec, err := sess.Step(w)
	if err != nil {
		t.Fatal(err)
	}
	// Non-recording records carry views of the session buffers, not owned
	// clones: the successor view must alias the live state.
	if &rec.Next[0] != &sess.StateView()[0] {
		t.Error("non-recording step should carry buffer views (Next aliasing the live state)")
	}
	if rec.T != 1 {
		t.Errorf("rec.T = %d, want 1", rec.T)
	}
	if got := len(sess.Result.Records); got != 1 {
		t.Errorf("records = %d, want only the recorded step", got)
	}
	if got := sess.Result.Skips; got != 2 {
		t.Errorf("skips = %d, want 2 (counters track every step)", got)
	}
}
