// Package core implements the paper's primary contribution: the online
// opportunistic intermittent-control framework (Algorithm 1).
//
// The framework wraps an existing safe controller κ. At every control step
// it monitors the measured state against the strengthened safe set X′:
//
//   - x(t) ∈ X′ — safety is guaranteed for either choice, so a pluggable
//     skipping policy Ω (bang-bang, model-based MIP, or DRL) freely decides
//     whether to run κ (z = 1) or to skip computation and actuation
//     entirely (z = 0, zero input);
//   - x(t) ∉ X′ — the monitor forces z = 1 and κ is applied.
//
// Theorem 1 of the paper: with X′ = B(XI, 0) ∩ XI built from the robust
// control invariant set XI of κ, the closed loop never leaves XI — for any
// policy Ω. The property test in core_test.go exercises exactly this with
// adversarial random policies.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"oic/internal/controller"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
	"oic/internal/reach"
)

// Sentinel errors of the runtime, all errors.Is-able through wrapping.
var (
	// ErrUnsafe reports a state outside the safe set required for the
	// requested operation — e.g. an initial state outside XI, where
	// Algorithm 1's precondition (line 2) does not hold.
	ErrUnsafe = errors.New("core: state outside safe set")

	// ErrSessionClosed is returned by Session.Step after the session was
	// closed, either explicitly (Close) or by a terminal failure (a κ
	// error). A closed session's state and counters remain readable; only
	// stepping is refused, so reuse after failure is well-defined instead
	// of undefined behavior.
	ErrSessionClosed = errors.New("core: session closed")
)

// SafetySets bundles the three nested sets of the paper (Fig. 1):
// X′ ⊆ XI ⊆ X.
type SafetySets struct {
	X      *poly.Polytope // original safe set
	XI     *poly.Polytope // robust control invariant set of κ
	XPrime *poly.Polytope // strengthened safe set B(XI,0) ∩ XI
}

// ComputeSafetySets derives X′ from a given robust control invariant set XI
// (obtained from RMPC.FeasibleSet via Proposition 1, reach.MaximalRCI, or
// reach.MRPI) and validates the nesting X′ ⊆ XI ⊆ X.
func ComputeSafetySets(sys *lti.System, xi *poly.Polytope) (SafetySets, error) {
	if sys.X == nil {
		return SafetySets{}, errors.New("core: ComputeSafetySets: system has no safe set X")
	}
	if ok, err := sys.X.Covers(xi, 1e-6); err != nil || !ok {
		return SafetySets{}, fmt.Errorf("core: ComputeSafetySets: XI ⊄ X (ok=%v err=%v)", ok, err)
	}
	xprime, err := reach.StrengthenedSafeSet(xi, sys)
	if err != nil {
		return SafetySets{}, err
	}
	if xprime.IsEmpty() {
		return SafetySets{}, errors.New("core: ComputeSafetySets: strengthened safe set is empty; skipping is never admissible")
	}
	return SafetySets{X: sys.X, XI: xi, XPrime: xprime}, nil
}

// Level classifies a state against the nested safety sets.
type Level int

// Membership levels, from most to least permissive.
const (
	InXPrime Level = iota // skipping is admissible
	InXI                  // controllable: κ must run
	InX                   // safe now, but not guaranteed controllable
	Unsafe                // outside the original safe set
)

func (l Level) String() string {
	switch l {
	case InXPrime:
		return "X'"
	case InXI:
		return "XI"
	case InX:
		return "X"
	case Unsafe:
		return "unsafe"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Monitor performs the runtime membership checks of Algorithm 1 (line 4–9).
type Monitor struct {
	Sets SafetySets
	Tol  float64 // membership tolerance, default 1e-9
}

// NewMonitor returns a monitor over the given sets.
func NewMonitor(sets SafetySets) *Monitor { return &Monitor{Sets: sets, Tol: 1e-9} }

// Level returns the tightest set containing x.
func (m *Monitor) Level(x mat.Vec) Level {
	switch {
	case m.Sets.XPrime.Contains(x, m.Tol):
		return InXPrime
	case m.Sets.XI.Contains(x, m.Tol):
		return InXI
	case m.Sets.X.Contains(x, m.Tol):
		return InX
	default:
		return Unsafe
	}
}

// SkipPolicy is the decision function Ω: given the time step, the state,
// and the recent observed disturbances (most recent last), it returns true
// to run the controller (z = 1) or false to skip (z = 0). It is consulted
// only when the monitor has established x ∈ X′.
type SkipPolicy interface {
	Decide(t int, x mat.Vec, wRecent []mat.Vec) bool
	Name() string
}

// AlwaysRun runs κ at every step: the traditional baseline ("RMPC only" in
// the paper's experiments).
type AlwaysRun struct{}

// Decide implements SkipPolicy.
func (AlwaysRun) Decide(int, mat.Vec, []mat.Vec) bool { return true }

// Name implements SkipPolicy.
func (AlwaysRun) Name() string { return "always-run" }

// BangBang skips whenever the monitor permits it (Eq. 7): zero input inside
// X′, κ otherwise. The monitor supplies the "otherwise" branch, so the
// policy itself never requests κ.
type BangBang struct{}

// Decide implements SkipPolicy.
func (BangBang) Decide(int, mat.Vec, []mat.Vec) bool { return false }

// Name implements SkipPolicy.
func (BangBang) Name() string { return "bang-bang" }

// PolicyFunc adapts a plain function (e.g. a trained DQN's greedy action)
// into a SkipPolicy.
type PolicyFunc struct {
	Fn    func(t int, x mat.Vec, wRecent []mat.Vec) bool
	Label string
}

// Decide implements SkipPolicy.
func (p PolicyFunc) Decide(t int, x mat.Vec, w []mat.Vec) bool { return p.Fn(t, x, w) }

// Name implements SkipPolicy.
func (p PolicyFunc) Name() string { return p.Label }

// StepRecord documents one executed control step.
type StepRecord struct {
	T      int
	X      mat.Vec // state at decision time
	Level  Level   // monitor classification of X
	Ran    bool    // effective z(t): true means κ was computed and applied
	Forced bool    // true when the monitor overrode the policy (x ∉ X′)
	U      mat.Vec // applied input (zero vector when skipped)
	W      mat.Vec // disturbance realized during the step
	Next   mat.Vec // successor state
}

// Result aggregates a framework run.
type Result struct {
	Records []StepRecord

	Energy          float64 // Σ‖u(t)‖₁ (Problem 1's objective)
	Skips           int     // steps with z = 0
	Runs            int     // steps with z = 1
	Forced          int     // runs forced by the monitor
	Degraded        int     // optional κ failures downgraded to safe skips
	ViolationsX     int     // states outside X (Theorem 1: must be 0)
	ViolationsXI    int     // states outside XI (Theorem 1: must be 0)
	ControllerCalls int

	CtrlTime     time.Duration // wall time inside κ.Compute
	OverheadTime time.Duration // wall time inside monitor + policy
}

// SkipRate returns the fraction of steps that skipped the controller.
func (r *Result) SkipRate() float64 {
	n := r.Skips + r.Runs
	if n == 0 {
		return 0
	}
	return float64(r.Skips) / float64(n)
}

// Trajectory reassembles the state/input/disturbance sequences.
func (r *Result) Trajectory() *lti.Trajectory {
	tr := &lti.Trajectory{}
	for i, rec := range r.Records {
		if i == 0 {
			tr.States = append(tr.States, rec.X)
		}
		tr.Inputs = append(tr.Inputs, rec.U)
		tr.Dists = append(tr.Dists, rec.W)
		tr.States = append(tr.States, rec.Next)
	}
	return tr
}

// Framework is the online opportunistic intermittent-control loop.
type Framework struct {
	Sys     *lti.System
	Kappa   controller.Controller
	Sets    SafetySets
	Policy  SkipPolicy
	WMemory int // r: how many recent disturbances the policy sees (≥ 0)

	monitor *Monitor
}

// NewFramework validates and assembles the framework. WMemory defaults to 1
// (the paper's r = 1).
func NewFramework(sys *lti.System, kappa controller.Controller, sets SafetySets, policy SkipPolicy, wMemory int) (*Framework, error) {
	if sys == nil || kappa == nil || policy == nil {
		return nil, errors.New("core: NewFramework: nil component")
	}
	if sets.X == nil || sets.XI == nil || sets.XPrime == nil {
		return nil, errors.New("core: NewFramework: incomplete safety sets")
	}
	if wMemory < 0 {
		return nil, errors.New("core: NewFramework: negative disturbance memory")
	}
	if wMemory == 0 {
		wMemory = 1
	}
	return &Framework{
		Sys: sys, Kappa: kappa, Sets: sets, Policy: policy, WMemory: wMemory,
		monitor: NewMonitor(sets),
	}, nil
}

// Monitor exposes the framework's runtime monitor.
func (f *Framework) Monitor() *Monitor { return f.monitor }

// Session is an in-flight run of Algorithm 1 that external simulators can
// drive step by step (the traffic simulator and the DRL trainer both do).
//
// Each session runs against its own controller handle: when the framework
// controller implements controller.SessionController (the RMPC does), the
// session forks a per-session workspace at creation, so concurrent
// sessions over one shared framework never race and every session's solve
// chain (cold first run, warm afterwards) depends only on its own steps.
type Session struct {
	f      *Framework
	kappa  controller.Controller
	x      mat.Vec // current state (owned buffer)
	xNext  mat.Vec // successor scratch, swapped with x each step
	zeroU  mat.Vec // the skip input; never written
	t      int
	wHist   []mat.Vec // ring of owned buffers, most recent last
	record  bool
	degrade bool
	closed  bool
	Result  *Result
}

// NewSession starts a run at x0, which must lie inside XI (Algorithm 1,
// line 2).
func (f *Framework) NewSession(x0 mat.Vec) (*Session, error) {
	if len(x0) != f.Sys.NX() {
		return nil, fmt.Errorf("core: NewSession: initial state has dim %d, want %d", len(x0), f.Sys.NX())
	}
	if !f.Sets.XI.Contains(x0, 1e-9) {
		return nil, fmt.Errorf("core: NewSession: initial state %v outside XI: %w", x0, ErrUnsafe)
	}
	kappa := f.Kappa
	if sc, ok := kappa.(controller.SessionController); ok {
		kappa = sc.ForSession()
	}
	wh := make([]mat.Vec, f.WMemory)
	for i := range wh {
		wh[i] = make(mat.Vec, f.Sys.NX())
	}
	return &Session{
		f:      f,
		kappa:  kappa,
		x:      x0.Clone(),
		xNext:  make(mat.Vec, f.Sys.NX()),
		zeroU:  make(mat.Vec, f.Sys.NU()),
		wHist:  wh,
		record: true,
		Result: &Result{},
	}, nil
}

// SetRecording toggles per-step record retention (on by default). With
// recording off the session keeps only the aggregate Result counters, the
// returned StepRecords carry *views* of the session buffers (valid until
// the next Step) instead of owned clones, and the skip path allocates
// nothing — the mode the embedded-runtime benchmarks, the alloc regression
// tests, and long-running serving sessions use (records would otherwise
// grow without bound).
func (s *Session) SetRecording(on bool) { s.record = on }

// SetDegrade toggles degraded mode (off by default). With it on, a κ
// failure on an *optional* compute — the policy wanted κ but the monitor
// did not mandate it, so x ∈ X′ — downgrades the step to the
// guaranteed-safe zero-input skip (Theorem 1 covers it) and counts in
// Result.Degraded, instead of terminally closing the session. A failure
// on a monitor-forced compute stays terminal: there the zero input has
// no safety certificate, so surviving it would trade away exactly the
// guarantee the framework exists to keep.
func (s *Session) SetDegrade(on bool) { s.degrade = on }

// State returns an owned snapshot of the current state.
func (s *Session) State() mat.Vec { return s.x.Clone() }

// StateView returns the current state as a view into the session's own
// buffer: valid only until the next Step or Reset, and never to be
// mutated. It is the allocation-free read the serving hot path uses;
// callers that retain the value take State instead.
func (s *Session) StateView() mat.Vec { return s.x }

// Time returns the number of completed steps.
func (s *Session) Time() int { return s.t }

// Closed reports whether the session has terminated (explicit Close or a
// terminal κ failure); further Steps return ErrSessionClosed.
func (s *Session) Closed() bool { return s.closed }

// Close marks the session terminated. State, counters, and records remain
// readable; stepping afterwards returns ErrSessionClosed. Close is
// idempotent.
func (s *Session) Close() { s.closed = true }

// RecentW returns an owned snapshot of the last WMemory observed
// disturbances, most recent last.
func (s *Session) RecentW() []mat.Vec {
	out := make([]mat.Vec, len(s.wHist))
	for i, w := range s.wHist {
		out[i] = w.Clone()
	}
	return out
}

// RecentWView returns the disturbance window (most recent last) as a view
// into the session's ring buffers: valid only until the next Step or
// Reset, never to be mutated. The DRL feature encoders and the serving
// path read it without allocating; callers that retain it take RecentW.
func (s *Session) RecentWView() []mat.Vec { return s.wHist }

// Reset rebinds the session to a fresh run from x0, reusing every buffer
// and the per-session controller workspace. A workspace that supports it
// (controller.SessionResetter — the RMPC does) is returned to its cold
// state, so a pooled session's solve chain is byte-identical to a newly
// created session's; otherwise a fresh workspace is forked. Recording is
// restored to its default (on) and the previous Result is abandoned to its
// holders.
func (s *Session) Reset(x0 mat.Vec) error {
	f := s.f
	if len(x0) != f.Sys.NX() {
		return fmt.Errorf("core: Session.Reset: initial state has dim %d, want %d", len(x0), f.Sys.NX())
	}
	if !f.Sets.XI.Contains(x0, 1e-9) {
		return fmt.Errorf("core: Session.Reset: initial state %v outside XI: %w", x0, ErrUnsafe)
	}
	if rc, ok := s.kappa.(controller.SessionResetter); ok {
		rc.ResetSession()
	} else if sc, ok := f.Kappa.(controller.SessionController); ok {
		s.kappa = sc.ForSession()
	}
	copy(s.x, x0)
	for _, w := range s.wHist {
		for i := range w {
			w[i] = 0
		}
	}
	s.t = 0
	s.record = true
	s.degrade = false
	s.closed = false
	s.Result = &Result{}
	return nil
}

// Step executes one iteration of Algorithm 1 under the session policy,
// realizing the disturbance w, and returns the step record.
func (s *Session) Step(w mat.Vec) (StepRecord, error) {
	return s.step(w, nil)
}

// StepContext is Step with cooperative cancellation: a canceled context is
// checked before any work and its error returned verbatim, so servers can
// thread request contexts through long stepping loops.
func (s *Session) StepContext(ctx context.Context, w mat.Vec) (StepRecord, error) {
	if err := ctx.Err(); err != nil {
		return StepRecord{}, err
	}
	return s.step(w, nil)
}

// StepWithChoice executes one iteration with an externally supplied
// skipping choice (used by the DRL trainer during exploration). The monitor
// still overrides the choice whenever x ∉ X′, so training can never break
// safety.
func (s *Session) StepWithChoice(w mat.Vec, run bool) (StepRecord, error) {
	return s.step(w, &run)
}

func (s *Session) step(w mat.Vec, choice *bool) (StepRecord, error) {
	if s.closed {
		return StepRecord{}, ErrSessionClosed
	}
	f := s.f
	res := s.Result

	tMon := time.Now()
	level := f.monitor.Level(s.x)
	var run, forced bool
	if level == InXPrime {
		if choice != nil {
			run = *choice
		} else {
			run = f.Policy.Decide(s.t, s.x, s.wHist)
		}
	} else {
		run, forced = true, true // Algorithm 1, line 9
	}
	res.OverheadTime += time.Since(tMon)

	u := s.zeroU // the skip path applies zero input and allocates nothing
	if run {
		tCtl := time.Now()
		uc, err := s.kappa.Compute(s.x)
		res.CtrlTime += time.Since(tCtl)
		switch {
		case err == nil:
			u = uc
			res.ControllerCalls++
		case s.degrade && !forced:
			// Degraded mode: the compute was optional (x ∈ X′), so the
			// zero-input skip it falls back to is exactly the choice
			// Theorem 1 already certifies — the step proceeds as a skip.
			run = false
			res.Degraded++
		default:
			// A κ failure with no safe fallback is terminal: the session
			// has no admissible input to apply, so it closes and every
			// further Step reports ErrSessionClosed instead of undefined
			// behavior on reuse.
			s.closed = true
			return StepRecord{}, fmt.Errorf("core: Session.Step: κ failed at %v (level %v): %w", s.x, level, err)
		}
	}

	f.Sys.StepInto(s.xNext, s.x, u, w)

	rec := StepRecord{T: s.t, Level: level, Ran: run, Forced: forced}
	if s.record {
		rec.X = s.x.Clone()
		rec.U = u.Clone()
		rec.W = w.Clone()
		rec.Next = s.xNext.Clone()
		res.Records = append(res.Records, rec)
	} else {
		// Allocation-free views, valid only until the next Step: the state
		// buffers are recycled, u is either the shared zero input or the
		// controller's per-call output, and w is the caller's own slice.
		rec.X = s.x
		rec.U = u
		rec.W = w
		rec.Next = s.xNext
	}
	res.Energy += u.Norm1()
	if run {
		res.Runs++
		if forced {
			res.Forced++
		}
	} else {
		res.Skips++
	}
	if !f.Sets.X.Contains(s.xNext, 1e-7) {
		res.ViolationsX++
	}
	if !f.Sets.XI.Contains(s.xNext, 1e-7) {
		res.ViolationsXI++
	}

	// Slide the disturbance window (most recent last), recycling the
	// oldest slot's buffer for the incoming disturbance.
	oldest := s.wHist[0]
	copy(s.wHist, s.wHist[1:])
	s.wHist[len(s.wHist)-1] = oldest
	copy(oldest, w)

	s.x, s.xNext = s.xNext, s.x
	s.t++
	return rec, nil
}

// Run executes steps iterations of Algorithm 1 from x0 with disturbances
// drawn from dist (nil means zero disturbance).
func (f *Framework) Run(x0 mat.Vec, steps int, dist lti.Disturb) (*Result, error) {
	sess, err := f.NewSession(x0)
	if err != nil {
		return nil, err
	}
	for t := 0; t < steps; t++ {
		var w mat.Vec
		if dist != nil {
			w = dist(t)
		} else {
			w = make(mat.Vec, f.Sys.NX())
		}
		if _, err := sess.Step(w); err != nil {
			return sess.Result, err
		}
	}
	return sess.Result, nil
}
