package poly

import (
	"encoding/binary"
	"fmt"
	"math"

	"oic/internal/mat"
)

// Binary codec helpers for persisting polytopes inside larger wire
// formats (internal/artifact). The layout is fixed little-endian:
//
//	u16 rows · u16 cols · f64×rows×cols A (row-major) · f64×rows B
//
// Float64s are serialized as raw IEEE-754 bits, so Encode∘Decode is the
// identity on the float data (including NaN payloads) and a decoded
// polytope is bit-identical to the encoded one.

// EncodedBinarySize returns the exact number of bytes AppendBinary emits.
func EncodedBinarySize(p *Polytope) int {
	return 2 + 2 + 8*p.A.R*p.A.C + 8*p.A.R
}

// AppendBinary appends p's binary form to buf and returns the extended
// slice. Dimensions beyond uint16 cannot be represented and panic; the
// polytopes in this codebase are orders of magnitude smaller.
func AppendBinary(buf []byte, p *Polytope) []byte {
	if p.A.R > math.MaxUint16 || p.A.C > math.MaxUint16 {
		panic(fmt.Sprintf("poly: AppendBinary: %d×%d exceeds uint16 dimensions", p.A.R, p.A.C))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(p.A.R))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(p.A.C))
	for _, v := range p.A.Data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range p.B {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeBinary parses one polytope from the front of b and returns it
// together with the number of bytes consumed. Rows and columns must lie
// in [1, maxRows] and [1, maxCols]; every length is checked against the
// remaining input before any allocation, so a hostile prefix cannot make
// the decoder allocate more than the input could justify.
func DecodeBinary(b []byte, maxRows, maxCols int) (*Polytope, int, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("poly: decode: truncated header (%d bytes)", len(b))
	}
	rows := int(binary.LittleEndian.Uint16(b[0:2]))
	cols := int(binary.LittleEndian.Uint16(b[2:4]))
	if rows < 1 || rows > maxRows {
		return nil, 0, fmt.Errorf("poly: decode: %d rows outside [1,%d]", rows, maxRows)
	}
	if cols < 1 || cols > maxCols {
		return nil, 0, fmt.Errorf("poly: decode: %d cols outside [1,%d]", cols, maxCols)
	}
	need := 4 + 8*rows*cols + 8*rows
	if len(b) < need {
		return nil, 0, fmt.Errorf("poly: decode: %d×%d polytope needs %d bytes, have %d", rows, cols, need, len(b))
	}
	a := mat.New(rows, cols)
	off := 4
	for i := range a.Data {
		a.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off : off+8]))
		off += 8
	}
	bv := make(mat.Vec, rows)
	for i := range bv {
		bv[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off : off+8]))
		off += 8
	}
	return New(a, bv), off, nil
}
