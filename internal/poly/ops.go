package poly

import (
	"fmt"

	"oic/internal/lp"
	"oic/internal/mat"
)

// Erode returns the Minkowski difference P ⊖ Q = {x | x + Q ⊆ P}, computed
// exactly in H-representation by tightening every row offset by the support
// of Q along the row normal:
//
//	P ⊖ Q = {x | A_i·x ≤ B_i − h_Q(A_i)}.
//
// Q must be bounded along the row normals of P.
func Erode(p, q *Polytope) (*Polytope, error) {
	if p.Dim() != q.Dim() {
		panic(fmt.Sprintf("poly: Erode: dims %d vs %d", p.Dim(), q.Dim()))
	}
	b := make(mat.Vec, p.A.R)
	for i := 0; i < p.A.R; i++ {
		h, _, err := q.Support(p.A.Row(i))
		if err != nil {
			return nil, fmt.Errorf("poly: Erode: row %d: %w", i, err)
		}
		b[i] = p.B[i] - h
	}
	return &Polytope{A: p.A.Clone(), B: b}, nil
}

// ErodeMapped returns P ⊖ (M·Q) = {x | A_i·x ≤ B_i − h_Q(Mᵀ·A_i)}, the
// Minkowski difference of P by the linear image M·Q, computed without
// forming the image (and hence without inverting M).
func ErodeMapped(p *Polytope, m *mat.Mat, q *Polytope) (*Polytope, error) {
	if m.C != q.Dim() || m.R != p.Dim() {
		panic(fmt.Sprintf("poly: ErodeMapped: map is %dx%d for P dim %d, Q dim %d", m.R, m.C, p.Dim(), q.Dim()))
	}
	mt := m.T()
	b := make(mat.Vec, p.A.R)
	for i := 0; i < p.A.R; i++ {
		h, _, err := q.Support(mt.MulVec(p.A.Row(i)))
		if err != nil {
			return nil, fmt.Errorf("poly: ErodeMapped: row %d: %w", i, err)
		}
		b[i] = p.B[i] - h
	}
	return &Polytope{A: p.A.Clone(), B: b}, nil
}

// PreimageAffine returns {x | M·x + c ∈ P} = {x | (A·M)·x ≤ B − A·c}.
// M must map into P's ambient space; no invertibility is required, which is
// how this repository computes robust backward reachable sets without the
// paper's A⁻¹ (see DESIGN.md §5.2).
func (p *Polytope) PreimageAffine(m *mat.Mat, c mat.Vec) *Polytope {
	if m.R != p.Dim() {
		panic(fmt.Sprintf("poly: PreimageAffine: map rows %d vs polytope dim %d", m.R, p.Dim()))
	}
	if len(c) != p.Dim() {
		panic("poly: PreimageAffine: offset dimension mismatch")
	}
	a := p.A.Mul(m)
	b := p.B.Sub(p.A.MulVec(c))
	return New(a, b)
}

// ImageAffine returns the exact image M·P + c for an invertible matrix M:
// {M·x + c | x ∈ P} = {y | (A·M⁻¹)·y ≤ B + A·M⁻¹·c}.
func (p *Polytope) ImageAffine(m *mat.Mat, c mat.Vec) (*Polytope, error) {
	if m.R != m.C || m.C != p.Dim() {
		panic("poly: ImageAffine: matrix must be square with the polytope's dimension")
	}
	inv, err := mat.Inverse(m)
	if err != nil {
		return nil, fmt.Errorf("poly: ImageAffine: %w", err)
	}
	a := p.A.Mul(inv)
	b := p.B.Add(a.MulVec(c))
	return New(a, b), nil
}

// MinkowskiSum returns P ⊕ Q = {x + y | x ∈ P, y ∈ Q}.
//
// In dimension ≤ 2 the result is exact: the vertices of both operands are
// enumerated, summed pairwise, and the convex hull is converted back to
// H-representation. In higher dimension the result is a tight outer
// approximation on the template formed by the row normals of both operands
// (exact along every template direction, h_{P⊕Q}(d) = h_P(d) + h_Q(d)).
// Both operands must be bounded and nonempty.
func MinkowskiSum(p, q *Polytope) (*Polytope, error) {
	if p.Dim() != q.Dim() {
		panic(fmt.Sprintf("poly: MinkowskiSum: dims %d vs %d", p.Dim(), q.Dim()))
	}
	if p.Dim() == 1 {
		return minkowskiSum1D(p, q)
	}
	if p.Dim() == 2 {
		return minkowskiSum2D(p, q)
	}
	return minkowskiSumTemplate(p, q)
}

func minkowskiSum1D(p, q *Polytope) (*Polytope, error) {
	hiP, _, err := p.Support(mat.Vec{1})
	if err != nil {
		return nil, err
	}
	loP, _, err := p.Support(mat.Vec{-1})
	if err != nil {
		return nil, err
	}
	hiQ, _, err := q.Support(mat.Vec{1})
	if err != nil {
		return nil, err
	}
	loQ, _, err := q.Support(mat.Vec{-1})
	if err != nil {
		return nil, err
	}
	return Box([]float64{-(loP + loQ)}, []float64{hiP + hiQ}), nil
}

func minkowskiSum2D(p, q *Polytope) (*Polytope, error) {
	vp, err := p.Vertices()
	if err != nil {
		return nil, fmt.Errorf("poly: MinkowskiSum: left operand: %w", err)
	}
	vq, err := q.Vertices()
	if err != nil {
		return nil, fmt.Errorf("poly: MinkowskiSum: right operand: %w", err)
	}
	if len(vp) == 0 || len(vq) == 0 {
		return nil, ErrEmpty
	}
	sums := make([]mat.Vec, 0, len(vp)*len(vq))
	for _, a := range vp {
		for _, b := range vq {
			sums = append(sums, a.Add(b))
		}
	}
	return FromVertices2D(sums)
}

func minkowskiSumTemplate(p, q *Polytope) (*Polytope, error) {
	n := p.Dim()
	// Template: all row normals of both operands plus signed axes.
	dirs := make([]mat.Vec, 0, p.A.R+q.A.R+2*n)
	for i := 0; i < p.A.R; i++ {
		dirs = append(dirs, p.A.Row(i))
	}
	for i := 0; i < q.A.R; i++ {
		dirs = append(dirs, q.A.Row(i))
	}
	for j := 0; j < n; j++ {
		e := make(mat.Vec, n)
		e[j] = 1
		dirs = append(dirs, e)
		e2 := make(mat.Vec, n)
		e2[j] = -1
		dirs = append(dirs, e2)
	}
	a := mat.New(len(dirs), n)
	b := make(mat.Vec, len(dirs))
	for i, d := range dirs {
		hp, _, err := p.Support(d)
		if err != nil {
			return nil, err
		}
		hq, _, err := q.Support(d)
		if err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			a.Set(i, j, d[j])
		}
		b[i] = hp + hq
	}
	return New(a, b), nil
}

// ReduceRedundancy returns an equivalent polytope with redundant rows
// removed: row i is dropped when maximizing A_i·x subject to all remaining
// rows cannot exceed B_i. Duplicate and trivially slack rows are removed
// first. The polytope itself is not modified.
func (p *Polytope) ReduceRedundancy() *Polytope {
	type rowT struct {
		a   mat.Vec
		b   float64
		del bool
	}
	rows := make([]rowT, p.A.R)
	for i := range rows {
		rows[i] = rowT{a: p.A.Row(i), b: p.B[i]}
	}

	// Normalize rows for duplicate detection and numerics.
	for i := range rows {
		n := rows[i].a.Norm2()
		if n < 1e-12 {
			// 0·x ≤ b: vacuous when b ≥ 0; keep (it encodes emptiness) when b < 0.
			rows[i].del = rows[i].b >= 0
			continue
		}
		rows[i].a = rows[i].a.Scale(1 / n)
		rows[i].b /= n
	}
	// Drop duplicates, keeping the tightest offset per direction.
	for i := range rows {
		if rows[i].del {
			continue
		}
		for j := i + 1; j < len(rows); j++ {
			if rows[j].del {
				continue
			}
			if rows[i].a.Equal(rows[j].a, 1e-10) {
				if rows[j].b < rows[i].b {
					rows[i].b = rows[j].b
				}
				rows[j].del = true
			}
		}
	}

	// LP-based pass: a row is redundant iff it cannot be violated subject to
	// the others. The feasible region is boxed loosely so directions that
	// are unconstrained by the remaining rows read as "can be violated"
	// (hence not redundant) instead of erroring on unboundedness.
	const big = 1e9
	for i := range rows {
		if rows[i].del {
			continue
		}
		prob := lp.NewProblem(p.Dim())
		for j, r := range rows {
			if r.del || j == i {
				continue
			}
			prob.AddConstraint(r.a, lp.LE, r.b)
		}
		for j := 0; j < p.Dim(); j++ {
			prob.SetBounds(j, -big, big)
		}
		prob.SetObjective(rows[i].a.Scale(-1)) // maximize A_i·x
		sol := prob.Solve()
		if sol.Status == lp.Optimal && -sol.Objective <= rows[i].b+1e-9 {
			rows[i].del = true
		}
	}

	kept := 0
	for i := range rows {
		if !rows[i].del {
			kept++
		}
	}
	a := mat.New(kept, p.Dim())
	b := make(mat.Vec, kept)
	k := 0
	for i := range rows {
		if rows[i].del {
			continue
		}
		for j := 0; j < p.Dim(); j++ {
			a.Set(k, j, rows[i].a[j])
		}
		b[k] = rows[i].b
		k++
	}
	return New(a, b)
}

// BoundingBox returns the tightest axis-aligned box containing P.
func (p *Polytope) BoundingBox() (lo, hi []float64, err error) {
	n := p.Dim()
	lo = make([]float64, n)
	hi = make([]float64, n)
	d := make(mat.Vec, n)
	for j := 0; j < n; j++ {
		d[j] = 1
		h, _, err := p.Support(d)
		if err != nil {
			return nil, nil, err
		}
		hi[j] = h
		d[j] = -1
		h, _, err = p.Support(d)
		if err != nil {
			return nil, nil, err
		}
		lo[j] = -h
		d[j] = 0
	}
	return lo, hi, nil
}

// Sample returns k points inside P by hit-and-run style rejection from its
// bounding box, using the provided uniform source in [0,1). It returns
// fewer than k points only if acceptance is pathologically low.
func (p *Polytope) Sample(k int, unif func() float64) ([]mat.Vec, error) {
	lo, hi, err := p.BoundingBox()
	if err != nil {
		return nil, err
	}
	var out []mat.Vec
	attempts := 0
	maxAttempts := 10000 * k
	n := p.Dim()
	for len(out) < k && attempts < maxAttempts {
		attempts++
		x := make(mat.Vec, n)
		for j := 0; j < n; j++ {
			x[j] = lo[j] + unif()*(hi[j]-lo[j])
		}
		if p.Contains(x, 1e-12) {
			out = append(out, x)
		}
	}
	return out, nil
}
