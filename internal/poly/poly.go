// Package poly implements convex polytopes in halfspace representation
// (H-polytopes) together with the set algebra required by robust
// reachability analysis: support functions, intersection, translation,
// Minkowski difference (erosion), Minkowski sum, affine images and
// preimages, Fourier–Motzkin projection, redundancy removal, Chebyshev
// centers, and vertex enumeration.
//
// A Polytope is the set {x ∈ Rⁿ | A·x ≤ B}. All operations are exact in
// H-representation except MinkowskiSum in dimension ≥ 3, which falls back
// to a tight template-based outer approximation (documented on the method).
package poly

import (
	"errors"
	"fmt"
	"math"

	"oic/internal/lp"
	"oic/internal/mat"
)

// Polytope is the convex set {x | A·x ≤ B}.
type Polytope struct {
	A *mat.Mat
	B mat.Vec
}

// ErrUnbounded is returned when an operation requires a bounded polytope or
// a bounded support value.
var ErrUnbounded = errors.New("poly: polytope is unbounded in a required direction")

// ErrEmpty is returned when an operation requires a nonempty polytope.
var ErrEmpty = errors.New("poly: polytope is empty")

// New returns the polytope {x | A·x ≤ b}. The arguments are retained.
func New(a *mat.Mat, b mat.Vec) *Polytope {
	if a.R != len(b) {
		panic(fmt.Sprintf("poly: New: %d rows vs %d offsets", a.R, len(b)))
	}
	return &Polytope{A: a, B: b}
}

// Box returns the axis-aligned box Π [lo_i, hi_i] as a polytope.
func Box(lo, hi []float64) *Polytope {
	if len(lo) != len(hi) {
		panic("poly: Box: bound length mismatch")
	}
	n := len(lo)
	a := mat.New(2*n, n)
	b := make(mat.Vec, 2*n)
	for i := 0; i < n; i++ {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("poly: Box: lo[%d]=%g > hi[%d]=%g", i, lo[i], i, hi[i]))
		}
		a.Set(2*i, i, 1)
		b[2*i] = hi[i]
		a.Set(2*i+1, i, -1)
		b[2*i+1] = -lo[i]
	}
	return New(a, b)
}

// Singleton returns the degenerate polytope {p}.
func Singleton(p mat.Vec) *Polytope {
	n := len(p)
	a := mat.New(2*n, n)
	b := make(mat.Vec, 2*n)
	for i := 0; i < n; i++ {
		a.Set(2*i, i, 1)
		b[2*i] = p[i]
		a.Set(2*i+1, i, -1)
		b[2*i+1] = -p[i]
	}
	return New(a, b)
}

// Dim returns the ambient dimension.
func (p *Polytope) Dim() int { return p.A.C }

// NumRows returns the number of halfspace constraints.
func (p *Polytope) NumRows() int { return p.A.R }

// Clone returns a deep copy.
func (p *Polytope) Clone() *Polytope {
	return &Polytope{A: p.A.Clone(), B: p.B.Clone()}
}

// Contains reports whether A·x ≤ B + tol holds row-wise.
func (p *Polytope) Contains(x mat.Vec, tol float64) bool {
	if len(x) != p.Dim() {
		panic(fmt.Sprintf("poly: Contains: point dim %d vs polytope dim %d", len(x), p.Dim()))
	}
	for i := 0; i < p.A.R; i++ {
		s := 0.0
		for j := 0; j < p.A.C; j++ {
			s += p.A.At(i, j) * x[j]
		}
		if s > p.B[i]+tol {
			return false
		}
	}
	return true
}

// Violation returns the largest constraint violation A_i·x − B_i (negative
// when x is strictly inside every halfspace).
func (p *Polytope) Violation(x mat.Vec) float64 {
	worst := math.Inf(-1)
	for i := 0; i < p.A.R; i++ {
		s := 0.0
		for j := 0; j < p.A.C; j++ {
			s += p.A.At(i, j) * x[j]
		}
		if v := s - p.B[i]; v > worst {
			worst = v
		}
	}
	return worst
}

// feasibilityLP builds the LP "find x with A·x ≤ B" with a zero objective.
func (p *Polytope) feasibilityLP() *lp.Problem {
	prob := lp.NewProblem(p.Dim())
	for i := 0; i < p.A.R; i++ {
		// AddConstraint copies, so the no-copy row view is safe here.
		prob.AddConstraint(p.A.RowView(i), lp.LE, p.B[i])
	}
	return prob
}

// IsEmpty reports whether the polytope has no points.
func (p *Polytope) IsEmpty() bool {
	if p.A.R == 0 {
		return false // whole space
	}
	return p.feasibilityLP().Solve().Status == lp.Infeasible
}

// Support returns the support function h(d) = max{d·x | x ∈ P} and a
// maximizing point. It returns ErrUnbounded when the maximum is +∞ and
// ErrEmpty when P is empty.
func (p *Polytope) Support(d mat.Vec) (float64, mat.Vec, error) {
	if len(d) != p.Dim() {
		panic(fmt.Sprintf("poly: Support: direction dim %d vs polytope dim %d", len(d), p.Dim()))
	}
	prob := p.feasibilityLP()
	neg := make([]float64, len(d))
	for i, v := range d {
		neg[i] = -v
	}
	prob.SetObjective(neg)
	sol := prob.Solve()
	switch sol.Status {
	case lp.Optimal:
		return -sol.Objective, mat.Vec(sol.X), nil
	case lp.Unbounded:
		return math.Inf(1), nil, ErrUnbounded
	case lp.Infeasible:
		return math.Inf(-1), nil, ErrEmpty
	}
	return 0, nil, fmt.Errorf("poly: Support: solver status %v", sol.Status)
}

// Chebyshev returns the Chebyshev center (the center of the largest
// inscribed ball) and its radius. A negative radius cannot occur; an empty
// polytope yields ErrEmpty, an unbounded one ErrUnbounded.
func (p *Polytope) Chebyshev() (mat.Vec, float64, error) {
	n := p.Dim()
	// Variables: x (n) and r; maximize r subject to A_i·x + ‖A_i‖r ≤ B_i.
	prob := lp.NewProblem(n + 1)
	obj := make([]float64, n+1)
	obj[n] = -1
	prob.SetObjective(obj)
	prob.SetBounds(n, 0, math.Inf(1))
	for i := 0; i < p.A.R; i++ {
		row := make([]float64, n+1)
		norm := 0.0
		for j := 0; j < n; j++ {
			v := p.A.At(i, j)
			row[j] = v
			norm += v * v
		}
		row[n] = math.Sqrt(norm)
		prob.AddConstraint(row, lp.LE, p.B[i])
	}
	sol := prob.Solve()
	switch sol.Status {
	case lp.Optimal:
		return mat.Vec(sol.X[:n]), sol.X[n], nil
	case lp.Infeasible:
		return nil, 0, ErrEmpty
	case lp.Unbounded:
		return nil, 0, ErrUnbounded
	}
	return nil, 0, fmt.Errorf("poly: Chebyshev: solver status %v", sol.Status)
}

// IsBounded reports whether the polytope is bounded, by checking the
// support in every signed coordinate direction.
func (p *Polytope) IsBounded() bool {
	n := p.Dim()
	d := make(mat.Vec, n)
	for j := 0; j < n; j++ {
		for _, s := range []float64{1, -1} {
			d[j] = s
			_, _, err := p.Support(d)
			d[j] = 0
			if errors.Is(err, ErrUnbounded) {
				return false
			}
		}
	}
	return true
}

// Intersect returns P ∩ Q by stacking constraint rows.
func Intersect(p, q *Polytope) *Polytope {
	if p.Dim() != q.Dim() {
		panic(fmt.Sprintf("poly: Intersect: dims %d vs %d", p.Dim(), q.Dim()))
	}
	a := mat.New(p.A.R+q.A.R, p.Dim())
	copy(a.Data[:p.A.R*p.Dim()], p.A.Data)
	copy(a.Data[p.A.R*p.Dim():], q.A.Data)
	b := make(mat.Vec, 0, len(p.B)+len(q.B))
	b = append(b, p.B...)
	b = append(b, q.B...)
	return New(a, b)
}

// Translate returns P + t = {x + t | x ∈ P}.
func (p *Polytope) Translate(t mat.Vec) *Polytope {
	if len(t) != p.Dim() {
		panic("poly: Translate: dimension mismatch")
	}
	b := p.B.Clone()
	for i := 0; i < p.A.R; i++ {
		s := 0.0
		for j := 0; j < p.A.C; j++ {
			s += p.A.At(i, j) * t[j]
		}
		b[i] += s
	}
	return &Polytope{A: p.A.Clone(), B: b}
}

// Scale returns α·P for α > 0.
func (p *Polytope) Scale(alpha float64) *Polytope {
	if alpha <= 0 {
		panic("poly: Scale: alpha must be positive")
	}
	return &Polytope{A: p.A.Clone(), B: p.B.Scale(alpha)}
}

// Covers reports whether P ⊇ Q within tolerance tol, by checking that the
// support of Q along every row normal of P stays below the row offset.
// Q must be nonempty and bounded along P's normals.
func (p *Polytope) Covers(q *Polytope, tol float64) (bool, error) {
	if p.Dim() != q.Dim() {
		panic("poly: Covers: dimension mismatch")
	}
	for i := 0; i < p.A.R; i++ {
		h, _, err := q.Support(p.A.Row(i))
		if err != nil {
			return false, err
		}
		if h > p.B[i]+tol {
			return false, nil
		}
	}
	return true, nil
}
