package poly

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"oic/internal/mat"
)

func box2(t *testing.T, lo0, lo1, hi0, hi1 float64) *Polytope {
	t.Helper()
	return Box([]float64{lo0, lo1}, []float64{hi0, hi1})
}

// randomPoly2D builds a random bounded 2-D polytope as the hull of 3–8
// random points.
func randomPoly2D(t *testing.T, rng *rand.Rand) *Polytope {
	t.Helper()
	k := 3 + rng.Intn(6)
	pts := make([]mat.Vec, k)
	for i := range pts {
		pts[i] = mat.Vec{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	p, err := FromVertices2D(pts)
	if err != nil {
		t.Fatalf("randomPoly2D: %v", err)
	}
	return p
}

func TestBoxContains(t *testing.T) {
	p := box2(t, -1, -2, 3, 4)
	cases := []struct {
		x    mat.Vec
		want bool
	}{
		{mat.Vec{0, 0}, true},
		{mat.Vec{-1, -2}, true}, // corner
		{mat.Vec{3, 4}, true},
		{mat.Vec{3.001, 0}, false},
		{mat.Vec{0, -2.001}, false},
	}
	for _, c := range cases {
		if got := p.Contains(c.x, 1e-9); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestViolation(t *testing.T) {
	p := box2(t, 0, 0, 1, 1)
	if v := p.Violation(mat.Vec{0.5, 0.5}); math.Abs(v-(-0.5)) > 1e-12 {
		t.Errorf("interior violation = %v, want -0.5", v)
	}
	if v := p.Violation(mat.Vec{2, 0.5}); math.Abs(v-1) > 1e-12 {
		t.Errorf("exterior violation = %v, want 1", v)
	}
}

func TestIsEmpty(t *testing.T) {
	p := box2(t, 0, 0, 1, 1)
	if p.IsEmpty() {
		t.Error("unit box reported empty")
	}
	q := Intersect(p, box2(t, 5, 5, 6, 6))
	if !q.IsEmpty() {
		t.Error("disjoint intersection reported nonempty")
	}
}

func TestSupportBox(t *testing.T) {
	p := box2(t, -1, -2, 3, 4)
	cases := []struct {
		d    mat.Vec
		want float64
	}{
		{mat.Vec{1, 0}, 3},
		{mat.Vec{-1, 0}, 1},
		{mat.Vec{0, 1}, 4},
		{mat.Vec{1, 1}, 7},
		{mat.Vec{2, 0}, 6},
	}
	for _, c := range cases {
		h, arg, err := p.Support(c.d)
		if err != nil {
			t.Fatalf("Support(%v): %v", c.d, err)
		}
		if math.Abs(h-c.want) > 1e-8 {
			t.Errorf("Support(%v) = %v, want %v", c.d, h, c.want)
		}
		if math.Abs(c.d.Dot(arg)-h) > 1e-8 {
			t.Errorf("Support(%v): argmax %v does not attain %v", c.d, arg, h)
		}
	}
}

func TestSupportUnboundedAndEmpty(t *testing.T) {
	// Halfplane x0 <= 1 is unbounded in direction (0,1).
	a := mat.FromRows([][]float64{{1, 0}})
	p := New(a, mat.Vec{1})
	if _, _, err := p.Support(mat.Vec{0, 1}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("unbounded support err = %v", err)
	}
	q := Intersect(Box([]float64{0, 0}, []float64{1, 1}), Box([]float64{2, 2}, []float64{3, 3}))
	if _, _, err := q.Support(mat.Vec{1, 0}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty support err = %v", err)
	}
}

func TestChebyshev(t *testing.T) {
	p := box2(t, 0, 0, 4, 2)
	c, r, err := p.Chebyshev()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-8 {
		t.Errorf("radius = %v, want 1", r)
	}
	if math.Abs(c[1]-1) > 1e-8 {
		t.Errorf("center y = %v, want 1", c[1])
	}
	if c[0] < 1-1e-8 || c[0] > 3+1e-8 {
		t.Errorf("center x = %v, want within [1,3]", c[0])
	}
}

func TestIsBounded(t *testing.T) {
	if !box2(t, 0, 0, 1, 1).IsBounded() {
		t.Error("box reported unbounded")
	}
	half := New(mat.FromRows([][]float64{{1, 0}}), mat.Vec{1})
	if half.IsBounded() {
		t.Error("halfplane reported bounded")
	}
}

func TestTranslate(t *testing.T) {
	p := box2(t, 0, 0, 1, 1)
	q := p.Translate(mat.Vec{10, -5})
	if !q.Contains(mat.Vec{10.5, -4.5}, 1e-9) || q.Contains(mat.Vec{0.5, 0.5}, 1e-9) {
		t.Error("Translate misplaced the box")
	}
}

func TestScale(t *testing.T) {
	p := box2(t, -1, -1, 1, 1)
	q := p.Scale(3)
	h, _, err := q.Support(mat.Vec{1, 0})
	if err != nil || math.Abs(h-3) > 1e-8 {
		t.Errorf("Scale support = %v, %v", h, err)
	}
}

func TestCovers(t *testing.T) {
	outer := box2(t, -2, -2, 2, 2)
	inner := box2(t, -1, -1, 1, 1)
	if ok, err := outer.Covers(inner, 1e-9); err != nil || !ok {
		t.Errorf("outer ⊇ inner: %v %v", ok, err)
	}
	if ok, err := inner.Covers(outer, 1e-9); err != nil || ok {
		t.Errorf("inner ⊉ outer expected: %v %v", ok, err)
	}
}

func TestSingleton(t *testing.T) {
	s := Singleton(mat.Vec{1, 2})
	if !s.Contains(mat.Vec{1, 2}, 1e-12) || s.Contains(mat.Vec{1.01, 2}, 1e-9) {
		t.Error("Singleton membership wrong")
	}
}

func TestErodeBox(t *testing.T) {
	p := box2(t, -10, -10, 10, 10)
	w := box2(t, -1, -2, 1, 2)
	e, err := Erode(p, w)
	if err != nil {
		t.Fatal(err)
	}
	want := box2(t, -9, -8, 9, 8)
	mustSameSet(t, e, want)
}

func TestErodeUnboundedOperand(t *testing.T) {
	p := box2(t, -1, -1, 1, 1)
	half := New(mat.FromRows([][]float64{{1, 0}}), mat.Vec{0})
	if _, err := Erode(p, half); err == nil {
		t.Error("expected error eroding by an unbounded set")
	}
}

// (P ⊖ Q) ⊕ Q ⊆ P, and x ∈ P⊖Q ⇒ x + q ∈ P for sampled q.
func TestErodeSumInclusionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		p := randomPoly2D(t, rng)
		q := Box([]float64{-0.2 - rng.Float64()*0.3, -0.2}, []float64{0.2, 0.2 + rng.Float64()*0.3})
		e, err := Erode(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if e.IsEmpty() {
			continue
		}
		s, err := MinkowskiSum(e, q)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := p.Covers(s, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: (P⊖Q)⊕Q ⊄ P", trial)
		}
	}
}

func TestMinkowskiSumBoxes(t *testing.T) {
	p := box2(t, -1, -1, 1, 1)
	q := box2(t, -2, -3, 2, 3)
	s, err := MinkowskiSum(p, q)
	if err != nil {
		t.Fatal(err)
	}
	mustSameSet(t, s, box2(t, -3, -4, 3, 4))
}

func TestMinkowskiSum1D(t *testing.T) {
	p := Box([]float64{-1}, []float64{2})
	q := Box([]float64{-3}, []float64{1})
	s, err := MinkowskiSum(p, q)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := s.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo[0]-(-4)) > 1e-8 || math.Abs(hi[0]-3) > 1e-8 {
		t.Errorf("1-D sum = [%v, %v], want [-4, 3]", lo[0], hi[0])
	}
}

// In 2-D the sum is exact, so support functions must be additive.
func TestMinkowskiSumSupportAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		p := randomPoly2D(t, rng)
		q := randomPoly2D(t, rng)
		s, err := MinkowskiSum(p, q)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 8; k++ {
			theta := rng.Float64() * 2 * math.Pi
			d := mat.Vec{math.Cos(theta), math.Sin(theta)}
			hp, _, err1 := p.Support(d)
			hq, _, err2 := q.Support(d)
			hs, _, err3 := s.Support(d)
			if err1 != nil || err2 != nil || err3 != nil {
				t.Fatal(err1, err2, err3)
			}
			if math.Abs(hs-(hp+hq)) > 1e-6 {
				t.Fatalf("trial %d: h_{P⊕Q}(%v) = %v, want %v", trial, d, hs, hp+hq)
			}
		}
	}
}

func TestMinkowskiSumTemplate3D(t *testing.T) {
	p := Box([]float64{-1, -1, -1}, []float64{1, 1, 1})
	q := Box([]float64{-2, 0, -1}, []float64{2, 1, 0})
	s, err := MinkowskiSum(p, q)
	if err != nil {
		t.Fatal(err)
	}
	// Boxes sum exactly even under the template method.
	want := Box([]float64{-3, -1, -2}, []float64{3, 2, 1})
	mustSameSet(t, s, want)
}

func TestPreimageAffine(t *testing.T) {
	// P = unit box, M doubles x0; preimage must halve the x0 extent.
	p := box2(t, -1, -1, 1, 1)
	m := mat.FromRows([][]float64{{2, 0}, {0, 1}})
	pre := p.PreimageAffine(m, mat.Vec{0, 0})
	mustSameSet(t, pre, box2(t, -0.5, -1, 0.5, 1))
}

func TestPreimageAffineWithOffset(t *testing.T) {
	// {x | x + c ∈ P} = P translated by −c.
	p := box2(t, 0, 0, 2, 2)
	pre := p.PreimageAffine(mat.Identity(2), mat.Vec{1, 1})
	mustSameSet(t, pre, box2(t, -1, -1, 1, 1))
}

func TestImagePreimageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		p := randomPoly2D(t, rng)
		m := mat.FromRows([][]float64{
			{1 + rng.Float64(), 0.3 * rng.NormFloat64()},
			{0.3 * rng.NormFloat64(), 1 + rng.Float64()},
		})
		c := mat.Vec{rng.NormFloat64(), rng.NormFloat64()}
		img, err := p.ImageAffine(m, c)
		if err != nil {
			t.Fatal(err)
		}
		back := img.PreimageAffine(m, c)
		mustSameSet(t, back, p)
	}
}

func TestReduceRedundancy(t *testing.T) {
	// Unit box plus a slack constraint x0 <= 5 and a duplicate x0 <= 1.
	a := mat.FromRows([][]float64{
		{1, 0}, {-1, 0}, {0, 1}, {0, -1},
		{1, 0}, // duplicate
		{1, 0}, // slack (x0 <= 5 after scaling below)
		{0.5, 0.5},
	})
	b := mat.Vec{1, 1, 1, 1, 1, 5, 10}
	p := New(a, b)
	r := p.ReduceRedundancy()
	if r.NumRows() != 4 {
		t.Errorf("reduced rows = %d, want 4", r.NumRows())
	}
	mustSameSet(t, r, p)
}

func TestReduceRedundancyKeepsEmptiness(t *testing.T) {
	// x <= -1 and -x <= -1 (i.e. x >= 1) is empty; reduction must not
	// accidentally turn it feasible.
	a := mat.FromRows([][]float64{{1}, {-1}})
	p := New(a, mat.Vec{-1, -1})
	if !p.ReduceRedundancy().IsEmpty() {
		t.Error("reduction made an empty polytope feasible")
	}
}

func TestBoundingBox(t *testing.T) {
	p, err := FromVertices2D([]mat.Vec{{0, 0}, {2, 0}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := p.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 2, 3}
	got := []float64{lo[0], lo[1], hi[0], hi[1]}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Errorf("BoundingBox[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, err := FromVertices2D([]mat.Vec{{0, 0}, {4, 0}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := p.Sample(50, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("got %d samples", len(pts))
	}
	for _, x := range pts {
		if !p.Contains(x, 1e-9) {
			t.Fatalf("sample %v outside polytope", x)
		}
	}
}

func TestVerticesBox(t *testing.T) {
	p := box2(t, -1, -2, 3, 4)
	vs, err := p.Vertices()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Fatalf("got %d vertices, want 4: %v", len(vs), vs)
	}
	for _, want := range []mat.Vec{{-1, -2}, {-1, 4}, {3, -2}, {3, 4}} {
		found := false
		for _, v := range vs {
			if v.Equal(want, 1e-8) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("vertex %v missing", want)
		}
	}
}

func TestVerticesUnbounded(t *testing.T) {
	half := New(mat.FromRows([][]float64{{1, 0}}), mat.Vec{1})
	if _, err := half.Vertices(); err == nil {
		t.Error("expected error for unbounded polytope")
	}
}

func TestVertices3DBox(t *testing.T) {
	p := Box([]float64{0, 0, 0}, []float64{1, 2, 3})
	vs, err := p.Vertices()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 8 {
		t.Errorf("3-D box has %d vertices, want 8", len(vs))
	}
}

func TestConvexHull2D(t *testing.T) {
	pts := []mat.Vec{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.5, 0}}
	hull := ConvexHull2D(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4: %v", len(hull), hull)
	}
}

func TestConvexHull2DCollinear(t *testing.T) {
	pts := []mat.Vec{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	hull := ConvexHull2D(pts)
	if len(hull) != 2 {
		t.Fatalf("collinear hull size = %d, want 2: %v", len(hull), hull)
	}
}

func TestFromVertices2DSegmentAndPoint(t *testing.T) {
	seg, err := FromVertices2D([]mat.Vec{{0, 0}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Contains(mat.Vec{1, 1}, 1e-9) || seg.Contains(mat.Vec{1, 1.1}, 1e-9) {
		t.Error("segment membership wrong")
	}
	pt, err := FromVertices2D([]mat.Vec{{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Contains(mat.Vec{3, 4}, 1e-9) || pt.Contains(mat.Vec{3, 4.2}, 1e-9) {
		t.Error("point membership wrong")
	}
}

func TestVolume2D(t *testing.T) {
	p := box2(t, 0, 0, 2, 3)
	v, err := p.Volume2D()
	if err != nil || math.Abs(v-6) > 1e-8 {
		t.Errorf("Volume2D = %v, %v; want 6", v, err)
	}
	tri, _ := FromVertices2D([]mat.Vec{{0, 0}, {2, 0}, {0, 2}})
	v, err = tri.Volume2D()
	if err != nil || math.Abs(v-2) > 1e-8 {
		t.Errorf("triangle Volume2D = %v, %v; want 2", v, err)
	}
}

func TestEliminateVarBox(t *testing.T) {
	p := Box([]float64{0, 10, -5}, []float64{1, 20, 5})
	q := p.EliminateVar(1) // drop the middle coordinate
	mustSameSet(t, q, Box([]float64{0, -5}, []float64{1, 5}))
}

func TestProjectBox(t *testing.T) {
	p := Box([]float64{0, 10, -5}, []float64{1, 20, 5})
	q := p.Project([]int{2, 0}) // order: (x2, x0)
	mustSameSet(t, q, Box([]float64{-5, 0}, []float64{5, 1}))
}

func TestProjectSimplex(t *testing.T) {
	// Simplex x,y,z >= 0, x+y+z <= 1 projected onto (x,y) is the triangle
	// x,y >= 0, x+y <= 1.
	a := mat.FromRows([][]float64{
		{-1, 0, 0}, {0, -1, 0}, {0, 0, -1}, {1, 1, 1},
	})
	p := New(a, mat.Vec{0, 0, 0, 1})
	q := p.Project([]int{0, 1})
	want := New(mat.FromRows([][]float64{{-1, 0}, {0, -1}, {1, 1}}), mat.Vec{0, 0, 1})
	mustSameSet(t, q, want)
}

// Projection must preserve support functions along kept directions.
func TestProjectSupportConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		// Random bounded 3-D polytope: box ∩ random halfspaces through a
		// neighbourhood of the origin.
		p := Box([]float64{-2, -2, -2}, []float64{2, 2, 2})
		for i := 0; i < 3; i++ {
			row := mat.Vec{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			p = Intersect(p, New(mat.FromRows([][]float64{row}), mat.Vec{0.5 + rng.Float64()}))
		}
		q := p.Project([]int{0, 1})
		for k := 0; k < 6; k++ {
			theta := rng.Float64() * 2 * math.Pi
			d2 := mat.Vec{math.Cos(theta), math.Sin(theta)}
			d3 := mat.Vec{d2[0], d2[1], 0}
			h3, _, err1 := p.Support(d3)
			h2, _, err2 := q.Support(d2)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if math.Abs(h3-h2) > 1e-6 {
				t.Fatalf("trial %d: projection support mismatch %v vs %v", trial, h2, h3)
			}
		}
	}
}

// mustSameSet asserts mutual coverage of two polytopes.
func mustSameSet(t *testing.T, got, want *Polytope) {
	t.Helper()
	ok1, err1 := got.Covers(want, 1e-6)
	ok2, err2 := want.Covers(got, 1e-6)
	if err1 != nil || err2 != nil {
		t.Fatalf("Covers errors: %v, %v", err1, err2)
	}
	if !ok1 || !ok2 {
		t.Fatalf("sets differ:\n got: A=\n%v b=%v\nwant: A=\n%v b=%v", got.A, got.B, want.A, want.B)
	}
}
