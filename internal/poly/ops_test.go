package poly

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/mat"
)

func TestErodeMappedMatchesExplicitImage(t *testing.T) {
	// P ⊖ (M·Q) via support tightening must equal Erode(P, image(M, Q))
	// when the image is computable (M invertible).
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 25; trial++ {
		p := randomPoly2D(t, rng)
		q := Box([]float64{-0.3, -0.2}, []float64{0.3, 0.2})
		m := mat.FromRows([][]float64{
			{1 + 0.5*rng.Float64(), 0.2 * rng.NormFloat64()},
			{0.2 * rng.NormFloat64(), 1 + 0.5*rng.Float64()},
		})
		viaSupport, err := ErodeMapped(p, m, q)
		if err != nil {
			t.Fatal(err)
		}
		img, err := q.ImageAffine(m, mat.Vec{0, 0})
		if err != nil {
			t.Fatal(err)
		}
		viaImage, err := Erode(p, img)
		if err != nil {
			t.Fatal(err)
		}
		if viaSupport.IsEmpty() && viaImage.IsEmpty() {
			continue
		}
		mustSameSet(t, viaSupport, viaImage)
	}
}

func TestErodeMappedDegenerateDirection(t *testing.T) {
	// Mapping a 1-D disturbance into 2-D: the ACC's W = [-1,1]×{0} pattern.
	p := Box([]float64{-10, -10}, []float64{10, 10})
	m := mat.FromRows([][]float64{{1}, {0}})
	q := Box([]float64{-1}, []float64{1})
	e, err := ErodeMapped(p, m, q)
	if err != nil {
		t.Fatal(err)
	}
	mustSameSet(t, e, Box([]float64{-9, -10}, []float64{9, 10}))
}

// ReduceRedundancy must preserve the set exactly on random polytopes with
// injected redundant rows.
func TestReduceRedundancyPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		p := randomPoly2D(t, rng)
		// Inject duplicates and slack rows.
		rows := [][]float64{}
		b := mat.Vec{}
		for i := 0; i < p.A.R; i++ {
			rows = append(rows, p.A.Row(i))
			b = append(b, p.B[i])
		}
		for k := 0; k < 3; k++ {
			i := rng.Intn(p.A.R)
			rows = append(rows, p.A.Row(i))
			b = append(b, p.B[i]+1+rng.Float64()) // strictly slack
		}
		fat := New(mat.FromRows(rows), b)
		red := fat.ReduceRedundancy()
		if red.NumRows() > p.A.R {
			t.Fatalf("trial %d: reduction kept %d rows (original %d)", trial, red.NumRows(), p.A.R)
		}
		mustSameSet(t, red, p)
	}
}

// Erosion is antitone in the structuring element: Q1 ⊆ Q2 ⇒ P⊖Q2 ⊆ P⊖Q1.
func TestErodeMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 25; trial++ {
		p := randomPoly2D(t, rng)
		small := Box([]float64{-0.1, -0.1}, []float64{0.1, 0.1})
		big := Box([]float64{-0.3, -0.3}, []float64{0.3, 0.3})
		e1, err := Erode(p, small)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Erode(p, big)
		if err != nil {
			t.Fatal(err)
		}
		if e2.IsEmpty() {
			continue
		}
		ok, err := e1.Covers(e2, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: erosion not antitone", trial)
		}
	}
}

// Chebyshev center must be deep: the ball around it stays inside.
func TestChebyshevDeepProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		p := randomPoly2D(t, rng)
		c, r, err := p.Chebyshev()
		if err != nil {
			t.Fatal(err)
		}
		if r < 0 {
			t.Fatalf("negative radius %v", r)
		}
		for k := 0; k < 8; k++ {
			theta := 2 * math.Pi * float64(k) / 8
			x := mat.Vec{c[0] + 0.999*r*math.Cos(theta), c[1] + 0.999*r*math.Sin(theta)}
			if !p.Contains(x, 1e-7) {
				t.Fatalf("trial %d: inscribed ball pokes out at %v", trial, x)
			}
		}
	}
}

// Intersection is the greatest lower bound: P∩Q ⊆ P, P∩Q ⊆ Q, and any
// sampled point of both is in the intersection.
func TestIntersectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 20; trial++ {
		p := randomPoly2D(t, rng)
		q := p.Translate(mat.Vec{0.5 * rng.NormFloat64(), 0.5 * rng.NormFloat64()})
		in := Intersect(p, q)
		if in.IsEmpty() {
			continue
		}
		okP, _ := p.Covers(in, 1e-7)
		okQ, _ := q.Covers(in, 1e-7)
		if !okP || !okQ {
			t.Fatalf("trial %d: intersection not contained in operands", trial)
		}
		pts, err := in.Sample(10, rng.Float64)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range pts {
			if !p.Contains(x, 1e-9) || !q.Contains(x, 1e-9) {
				t.Fatalf("trial %d: sampled intersection point outside an operand", trial)
			}
		}
	}
}
