package poly

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"oic/internal/mat"
)

// ErrTooLarge is returned by Vertices when the combinatorial enumeration
// budget would be exceeded.
var ErrTooLarge = errors.New("poly: vertex enumeration budget exceeded")

// maxVertexSubsets caps the number of row subsets Vertices will inspect.
const maxVertexSubsets = 2_000_000

// Vertices enumerates the vertices of a bounded polytope by intersecting
// every subset of n constraint rows and keeping the feasible intersection
// points. Runtime is C(m, n); suitable for the low-dimensional polytopes in
// this repository (the ACC state space is 2-D).
func (p *Polytope) Vertices() ([]mat.Vec, error) {
	n := p.Dim()
	m := p.A.R
	if n == 0 {
		return nil, errors.New("poly: Vertices: zero-dimensional polytope")
	}
	if m < n {
		return nil, ErrUnbounded
	}
	if binomialExceeds(m, n, maxVertexSubsets) {
		return nil, fmt.Errorf("%w: C(%d,%d) subsets", ErrTooLarge, m, n)
	}

	var verts []mat.Vec
	idx := make([]int, n)
	a := mat.New(n, n)
	b := make(mat.Vec, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			for r, ri := range idx {
				for j := 0; j < n; j++ {
					a.Set(r, j, p.A.At(ri, j))
				}
				b[r] = p.B[ri]
			}
			x, err := mat.Solve(a, b)
			if err != nil {
				return // rows not independent
			}
			if !p.Contains(x, 1e-7) {
				return
			}
			for _, v := range verts {
				if v.Equal(x, 1e-7) {
					return
				}
			}
			verts = append(verts, x)
			return
		}
		for i := start; i < m; i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return verts, nil
}

func binomialExceeds(m, n, cap int) bool {
	c := 1.0
	for i := 0; i < n; i++ {
		c *= float64(m-i) / float64(i+1)
		if c > float64(cap) {
			return true
		}
	}
	return false
}

// FromVertices2D returns the H-representation of the convex hull of the
// given 2-D points (Andrew's monotone chain). At least one point is
// required; collinear and duplicate inputs are handled.
func FromVertices2D(points []mat.Vec) (*Polytope, error) {
	if len(points) == 0 {
		return nil, ErrEmpty
	}
	for _, p := range points {
		if len(p) != 2 {
			panic("poly: FromVertices2D: points must be 2-D")
		}
	}
	hull := ConvexHull2D(points)
	switch len(hull) {
	case 1:
		return Singleton(hull[0]), nil
	case 2:
		// A segment: two halfspaces along the segment normal plus two caps.
		d := hull[1].Sub(hull[0])
		nrm := mat.Vec{-d[1], d[0]}
		a := mat.New(4, 2)
		b := make(mat.Vec, 4)
		a.Set(0, 0, nrm[0])
		a.Set(0, 1, nrm[1])
		b[0] = nrm.Dot(hull[0])
		a.Set(1, 0, -nrm[0])
		a.Set(1, 1, -nrm[1])
		b[1] = -nrm.Dot(hull[0])
		a.Set(2, 0, d[0])
		a.Set(2, 1, d[1])
		b[2] = d.Dot(hull[1])
		a.Set(3, 0, -d[0])
		a.Set(3, 1, -d[1])
		b[3] = -d.Dot(hull[0])
		return New(a, b), nil
	}
	// For each hull edge (counterclockwise), the outward normal halfspace.
	a := mat.New(len(hull), 2)
	b := make(mat.Vec, len(hull))
	for i := range hull {
		p0 := hull[i]
		p1 := hull[(i+1)%len(hull)]
		d := p1.Sub(p0)
		nrm := mat.Vec{d[1], -d[0]} // outward for a CCW hull
		ln := nrm.Norm2()
		nrm = nrm.Scale(1 / ln)
		a.Set(i, 0, nrm[0])
		a.Set(i, 1, nrm[1])
		b[i] = nrm.Dot(p0)
	}
	return New(a, b), nil
}

// ConvexHull2D returns the convex hull of the points in counterclockwise
// order without repetition (Andrew's monotone chain algorithm). Collinear
// interior points are dropped.
func ConvexHull2D(points []mat.Vec) []mat.Vec {
	pts := make([]mat.Vec, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i][0] != pts[j][0] {
			return pts[i][0] < pts[j][0]
		}
		return pts[i][1] < pts[j][1]
	})
	// Dedupe.
	uniq := pts[:0]
	for _, p := range pts {
		if len(uniq) == 0 || !uniq[len(uniq)-1].Equal(p, 1e-12) {
			uniq = append(uniq, p)
		}
	}
	pts = uniq
	if len(pts) <= 2 {
		out := make([]mat.Vec, len(pts))
		copy(out, pts)
		return out
	}

	cross := func(o, a, b mat.Vec) float64 {
		return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
	}
	var lower, upper []mat.Vec
	for _, p := range pts {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 1e-12 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(pts) - 1; i >= 0; i-- {
		p := pts[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 1e-12 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) == 0 { // fully collinear input collapsed; fall back to extremes
		return []mat.Vec{pts[0], pts[len(pts)-1]}
	}
	return hull
}

// Volume2D returns the area of a bounded 2-D polytope via the shoelace
// formula over its hull vertices.
func (p *Polytope) Volume2D() (float64, error) {
	if p.Dim() != 2 {
		return 0, errors.New("poly: Volume2D: polytope is not 2-D")
	}
	verts, err := p.Vertices()
	if err != nil {
		return 0, err
	}
	if len(verts) < 3 {
		return 0, nil
	}
	hull := ConvexHull2D(verts)
	area := 0.0
	for i := range hull {
		j := (i + 1) % len(hull)
		area += hull[i][0]*hull[j][1] - hull[j][0]*hull[i][1]
	}
	return math.Abs(area) / 2, nil
}
