package poly

import (
	"fmt"

	"oic/internal/mat"
)

// EliminateVar projects the polytope onto the coordinates other than j by
// Fourier–Motzkin elimination: every pair of rows with opposite signs on
// variable j combines into one row without it. The result lives in
// dimension Dim()−1 (variable j's column removed) and is redundancy-reduced
// to keep row growth under control.
func (p *Polytope) EliminateVar(j int) *Polytope {
	n := p.Dim()
	if j < 0 || j >= n {
		panic(fmt.Sprintf("poly: EliminateVar: variable %d out of range [0,%d)", j, n))
	}
	const tol = 1e-11
	var pos, neg, zero []int
	for i := 0; i < p.A.R; i++ {
		c := p.A.At(i, j)
		switch {
		case c > tol:
			pos = append(pos, i)
		case c < -tol:
			neg = append(neg, i)
		default:
			zero = append(zero, i)
		}
	}

	drop := func(row mat.Vec) mat.Vec {
		out := make(mat.Vec, 0, n-1)
		out = append(out, row[:j]...)
		out = append(out, row[j+1:]...)
		return out
	}

	rows := make([]mat.Vec, 0, len(zero)+len(pos)*len(neg))
	rhs := make(mat.Vec, 0, cap(rows))
	for _, i := range zero {
		rows = append(rows, drop(p.A.Row(i)))
		rhs = append(rhs, p.B[i])
	}
	for _, ip := range pos {
		cp := p.A.At(ip, j)
		rp := p.A.Row(ip)
		for _, in := range neg {
			cn := -p.A.At(in, j)
			rn := p.A.Row(in)
			// cn·rowP + cp·rowN has coefficient cn·cp − cp·cn = 0 on var j.
			comb := make(mat.Vec, n)
			for k := 0; k < n; k++ {
				comb[k] = cn*rp[k] + cp*rn[k]
			}
			rows = append(rows, drop(comb))
			rhs = append(rhs, cn*p.B[ip]+cp*p.B[in])
		}
	}

	a := mat.New(len(rows), n-1)
	for i, r := range rows {
		for k := 0; k < n-1; k++ {
			a.Set(i, k, r[k])
		}
	}
	return New(a, rhs).ReduceRedundancy()
}

// Project returns the orthogonal projection of the polytope onto the given
// coordinate subset (in the given order), eliminating every other variable
// by Fourier–Motzkin. keep must list distinct, valid coordinate indices.
func (p *Polytope) Project(keep []int) *Polytope {
	n := p.Dim()
	inKeep := make([]bool, n)
	for _, k := range keep {
		if k < 0 || k >= n {
			panic(fmt.Sprintf("poly: Project: coordinate %d out of range", k))
		}
		if inKeep[k] {
			panic(fmt.Sprintf("poly: Project: duplicate coordinate %d", k))
		}
		inKeep[k] = true
	}

	// Eliminate discarded variables from the highest index down so lower
	// indices remain stable during elimination.
	q := p
	for j := n - 1; j >= 0; j-- {
		if !inKeep[j] {
			q = q.EliminateVar(j)
		}
	}

	// q's coordinates are the kept ones in increasing order; permute to the
	// requested order.
	sorted := make([]int, 0, len(keep))
	for j := 0; j < n; j++ {
		if inKeep[j] {
			sorted = append(sorted, j)
		}
	}
	perm := make([]int, len(keep)) // perm[c] = column of q holding keep[c]
	for c, k := range keep {
		for s, orig := range sorted {
			if orig == k {
				perm[c] = s
				break
			}
		}
	}
	a := mat.New(q.A.R, len(keep))
	for i := 0; i < q.A.R; i++ {
		for c := range keep {
			a.Set(i, c, q.A.At(i, perm[c]))
		}
	}
	return New(a, q.B.Clone())
}
