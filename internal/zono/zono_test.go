package zono

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oic/internal/mat"
	"oic/internal/poly"
)

func TestFromBoxAndHull(t *testing.T) {
	z := FromBox([]float64{-1, 2}, []float64{3, 2})
	lo, hi := z.IntervalHull()
	if lo[0] != -1 || hi[0] != 3 || lo[1] != 2 || hi[1] != 2 {
		t.Errorf("hull = [%v %v] x [%v %v]", lo[0], hi[0], lo[1], hi[1])
	}
	if z.Order() != 1 { // degenerate dimension contributes no generator
		t.Errorf("order = %d", z.Order())
	}
}

func TestSupportClosedForm(t *testing.T) {
	z := New(mat.Vec{1, 1}, []mat.Vec{{1, 0}, {0, 2}, {1, 1}})
	// h((1,0)) = 1 + 1 + 0 + 1 = 3; h((0,1)) = 1 + 0 + 2 + 1 = 4.
	if got := z.Support(mat.Vec{1, 0}); math.Abs(got-3) > 1e-12 {
		t.Errorf("h(e1) = %v", got)
	}
	if got := z.Support(mat.Vec{0, 1}); math.Abs(got-4) > 1e-12 {
		t.Errorf("h(e2) = %v", got)
	}
}

func TestMapExactness(t *testing.T) {
	z := FromBox([]float64{-1, -1}, []float64{1, 1})
	m := mat.FromRows([][]float64{{2, 0}, {0, 3}})
	img := z.Map(m, mat.Vec{5, -5})
	lo, hi := img.IntervalHull()
	if lo[0] != 3 || hi[0] != 7 || lo[1] != -8 || hi[1] != -2 {
		t.Errorf("mapped hull = [%v %v] x [%v %v]", lo[0], hi[0], lo[1], hi[1])
	}
}

func TestSumConcatenatesGenerators(t *testing.T) {
	a := FromBox([]float64{-1, -1}, []float64{1, 1})
	b := FromBox([]float64{-2, 0}, []float64{2, 0})
	s := Sum(a, b)
	if s.Order() != a.Order()+b.Order() {
		t.Errorf("order = %d", s.Order())
	}
	lo, hi := s.IntervalHull()
	if lo[0] != -3 || hi[0] != 3 || lo[1] != -1 || hi[1] != 1 {
		t.Errorf("sum hull = [%v %v] x [%v %v]", lo[0], hi[0], lo[1], hi[1])
	}
}

// Support must be additive under Minkowski sum and compatible with affine
// maps: h_{M·Z}(d) = h_Z(Mᵀd).
func TestSupportPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z := randomZono(rng)
		y := randomZono(rng)
		d := mat.Vec{rng.NormFloat64(), rng.NormFloat64()}
		lhs := Sum(z, y).Support(d)
		rhs := z.Support(d) + y.Support(d)
		if math.Abs(lhs-rhs) > 1e-9 {
			return false
		}
		m := mat.FromRows([][]float64{
			{rng.NormFloat64(), rng.NormFloat64()},
			{rng.NormFloat64(), rng.NormFloat64()},
		})
		lhs2 := z.Map(m, nil).Support(d)
		rhs2 := z.Support(m.T().MulVec(d))
		return math.Abs(lhs2-rhs2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func randomZono(rng *rand.Rand) *Zonotope {
	k := 1 + rng.Intn(5)
	gens := make([]mat.Vec, k)
	for i := range gens {
		gens[i] = mat.Vec{rng.NormFloat64(), rng.NormFloat64()}
	}
	return New(mat.Vec{rng.NormFloat64(), rng.NormFloat64()}, gens)
}

func TestInsidePolytope(t *testing.T) {
	z := FromBox([]float64{-1, -1}, []float64{1, 1})
	if !z.InsidePolytope(poly.Box([]float64{-2, -2}, []float64{2, 2}), 1e-9) {
		t.Error("box zonotope not inside larger box")
	}
	if z.InsidePolytope(poly.Box([]float64{-0.5, -2}, []float64{2, 2}), 1e-9) {
		t.Error("zonotope should poke out of the shifted box")
	}
}

func TestVertices2DSquare(t *testing.T) {
	z := FromBox([]float64{0, 0}, []float64{2, 2})
	vs, err := z.Vertices2D()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Fatalf("vertices = %d: %v", len(vs), vs)
	}
	for _, want := range []mat.Vec{{0, 0}, {2, 0}, {2, 2}, {0, 2}} {
		found := false
		for _, v := range vs {
			if v.Equal(want, 1e-9) {
				found = true
			}
		}
		if !found {
			t.Errorf("vertex %v missing", want)
		}
	}
}

// ToPolytope must agree with the zonotope's own support function.
func TestToPolytopeSupportAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		z := randomZono(rng)
		p, err := z.ToPolytope()
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 8; k++ {
			theta := rng.Float64() * 2 * math.Pi
			d := mat.Vec{math.Cos(theta), math.Sin(theta)}
			hp, _, err := p.Support(d)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(hp-z.Support(d)) > 1e-6 {
				t.Fatalf("trial %d: polytope support %v vs zonotope %v", trial, hp, z.Support(d))
			}
		}
	}
}

func TestReduceContainsOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		z := randomZono(rng)
		for z.Order() < 8 { // ensure something to reduce
			z = Sum(z, randomZono(rng))
		}
		r := z.Reduce(4)
		if r.Order() > 4 {
			t.Fatalf("order after reduce = %d", r.Order())
		}
		// Over-approximation: h_r(d) ≥ h_z(d) in sampled directions.
		for k := 0; k < 12; k++ {
			theta := rng.Float64() * 2 * math.Pi
			d := mat.Vec{math.Cos(theta), math.Sin(theta)}
			if r.Support(d) < z.Support(d)-1e-9 {
				t.Fatalf("trial %d: reduction lost coverage along %v", trial, d)
			}
		}
	}
}

func TestForwardReachMatchesPolytopeReach(t *testing.T) {
	// Cross-check the zonotope tube against the exact H-rep tube from
	// package reach's building blocks on a stable affine system.
	a := mat.FromRows([][]float64{{0.9, 0.1}, {-0.05, 0.85}})
	c := mat.Vec{0.01, -0.02}
	x0z := FromBox([]float64{-1, -1}, []float64{1, 1})
	wz := FromBox([]float64{-0.05, -0.02}, []float64{0.05, 0.02})
	tube := ForwardReach(x0z, a, c, wz, 6, 0)
	if len(tube) != 7 {
		t.Fatalf("tube length = %d", len(tube))
	}

	x0p := poly.Box([]float64{-1, -1}, []float64{1, 1})
	wp := poly.Box([]float64{-0.05, -0.02}, []float64{0.05, 0.02})
	cur := x0p
	for t2 := 1; t2 <= 6; t2++ {
		img, err := cur.ImageAffine(a, c)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := poly.MinkowskiSum(img, wp)
		if err != nil {
			t.Fatal(err)
		}
		cur = sum
		// Supports must agree (both are exact).
		for k := 0; k < 6; k++ {
			theta := 2 * math.Pi * float64(k) / 6
			d := mat.Vec{math.Cos(theta), math.Sin(theta)}
			hp, _, err := cur.Support(d)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(hp-tube[t2].Support(d)) > 1e-6 {
				t.Fatalf("step %d: poly %v vs zono %v along %v", t2, hp, tube[t2].Support(d), d)
			}
		}
	}
}

func TestForwardReachWithReduction(t *testing.T) {
	a := mat.FromRows([][]float64{{0.95, 0.05}, {0, 0.9}})
	x0 := FromBox([]float64{-1, -1}, []float64{1, 1})
	w := FromBox([]float64{-0.1, -0.1}, []float64{0.1, 0.1})
	exact := ForwardReach(x0, a, nil, w, 20, 0)
	reduced := ForwardReach(x0, a, nil, w, 20, 6)
	last := len(exact) - 1
	if reduced[last].Order() > 6 {
		t.Fatalf("order = %d", reduced[last].Order())
	}
	// Reduction must over-approximate the exact tube.
	for k := 0; k < 8; k++ {
		theta := 2 * math.Pi * float64(k) / 8
		d := mat.Vec{math.Cos(theta), math.Sin(theta)}
		if reduced[last].Support(d) < exact[last].Support(d)-1e-9 {
			t.Fatal("reduced tube lost coverage")
		}
	}
}
