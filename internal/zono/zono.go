// Package zono implements zonotopes — centrally symmetric polytopes
// Z = {c + Σ αᵢ·gᵢ | αᵢ ∈ [−1, 1]} given by a center and generators —
// the workhorse representation of forward reachability analysis (Girard
// 2005; Althoff et al.). Affine maps and Minkowski sums are exact and
// cheap (O(generators)), which makes zonotopes the natural complement to
// package poly's H-representation: forward tubes are propagated here,
// membership-style checks happen against H-polytopes via support
// functions.
package zono

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"oic/internal/mat"
	"oic/internal/poly"
)

// Zonotope is the set {Center + Σ αᵢ·Generators[i] | αᵢ ∈ [−1, 1]}.
type Zonotope struct {
	Center     mat.Vec
	Generators []mat.Vec // each of the same dimension as Center
}

// New returns the zonotope with the given center and generators (retained,
// not copied).
func New(center mat.Vec, gens []mat.Vec) *Zonotope {
	for i, g := range gens {
		if len(g) != len(center) {
			panic(fmt.Sprintf("zono: New: generator %d has dim %d, want %d", i, len(g), len(center)))
		}
	}
	return &Zonotope{Center: center, Generators: gens}
}

// FromBox returns the axis-aligned box Π[lo, hi] as a zonotope with one
// generator per nondegenerate dimension.
func FromBox(lo, hi []float64) *Zonotope {
	if len(lo) != len(hi) {
		panic("zono: FromBox: bound length mismatch")
	}
	n := len(lo)
	c := make(mat.Vec, n)
	var gens []mat.Vec
	for i := 0; i < n; i++ {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("zono: FromBox: lo[%d] > hi[%d]", i, i))
		}
		c[i] = (lo[i] + hi[i]) / 2
		if r := (hi[i] - lo[i]) / 2; r > 0 {
			g := make(mat.Vec, n)
			g[i] = r
			gens = append(gens, g)
		}
	}
	return New(c, gens)
}

// Dim returns the ambient dimension.
func (z *Zonotope) Dim() int { return len(z.Center) }

// Order returns the number of generators.
func (z *Zonotope) Order() int { return len(z.Generators) }

// Clone returns a deep copy.
func (z *Zonotope) Clone() *Zonotope {
	gens := make([]mat.Vec, len(z.Generators))
	for i, g := range z.Generators {
		gens[i] = g.Clone()
	}
	return New(z.Center.Clone(), gens)
}

// Map returns the exact affine image M·Z + t.
func (z *Zonotope) Map(m *mat.Mat, t mat.Vec) *Zonotope {
	if m.C != z.Dim() {
		panic(fmt.Sprintf("zono: Map: matrix has %d columns for dim %d", m.C, z.Dim()))
	}
	c := m.MulVec(z.Center)
	if t != nil {
		c = c.Add(t)
	}
	gens := make([]mat.Vec, len(z.Generators))
	for i, g := range z.Generators {
		gens[i] = m.MulVec(g)
	}
	return New(c, gens)
}

// Sum returns the exact Minkowski sum Z ⊕ Y (generator concatenation).
func Sum(z, y *Zonotope) *Zonotope {
	if z.Dim() != y.Dim() {
		panic("zono: Sum: dimension mismatch")
	}
	gens := make([]mat.Vec, 0, len(z.Generators)+len(y.Generators))
	for _, g := range z.Generators {
		gens = append(gens, g.Clone())
	}
	for _, g := range y.Generators {
		gens = append(gens, g.Clone())
	}
	return New(z.Center.Add(y.Center), gens)
}

// Support returns the support function h_Z(d) = max{d·x | x ∈ Z}, which is
// closed-form for zonotopes: d·c + Σ |d·gᵢ|.
func (z *Zonotope) Support(d mat.Vec) float64 {
	h := d.Dot(z.Center)
	for _, g := range z.Generators {
		h += math.Abs(d.Dot(g))
	}
	return h
}

// IntervalHull returns the tightest axis-aligned bounding box.
func (z *Zonotope) IntervalHull() (lo, hi []float64) {
	n := z.Dim()
	lo = make([]float64, n)
	hi = make([]float64, n)
	for j := 0; j < n; j++ {
		r := 0.0
		for _, g := range z.Generators {
			r += math.Abs(g[j])
		}
		lo[j] = z.Center[j] - r
		hi[j] = z.Center[j] + r
	}
	return lo, hi
}

// InsidePolytope reports whether Z ⊆ P, exactly, via the support function
// of Z along every row normal of P.
func (z *Zonotope) InsidePolytope(p *poly.Polytope, tol float64) bool {
	if p.Dim() != z.Dim() {
		panic("zono: InsidePolytope: dimension mismatch")
	}
	for i := 0; i < p.A.R; i++ {
		if z.Support(p.A.Row(i)) > p.B[i]+tol {
			return false
		}
	}
	return true
}

// Reduce returns a zonotope with at most order generators that contains z,
// using Girard's reduction: the smallest generators are over-approximated
// by their interval hull. order must be at least the dimension.
func (z *Zonotope) Reduce(order int) *Zonotope {
	n := z.Dim()
	if order < n {
		panic("zono: Reduce: order below dimension")
	}
	if len(z.Generators) <= order {
		return z.Clone()
	}
	// Sort generators by ‖g‖₁ − ‖g‖∞ ascending: the "boxiest" smallest ones
	// get absorbed into an interval hull.
	idx := make([]int, len(z.Generators))
	for i := range idx {
		idx[i] = i
	}
	score := func(g mat.Vec) float64 { return g.Norm1() - g.NormInf() }
	sort.Slice(idx, func(a, b int) bool {
		return score(z.Generators[idx[a]]) < score(z.Generators[idx[b]])
	})
	nAbsorb := len(z.Generators) - order + n
	absorbed := make(mat.Vec, n)
	var kept []mat.Vec
	for rank, i := range idx {
		g := z.Generators[i]
		if rank < nAbsorb {
			for j := 0; j < n; j++ {
				absorbed[j] += math.Abs(g[j])
			}
		} else {
			kept = append(kept, g.Clone())
		}
	}
	for j := 0; j < n; j++ {
		if absorbed[j] > 0 {
			g := make(mat.Vec, n)
			g[j] = absorbed[j]
			kept = append(kept, g)
		}
	}
	return New(z.Center.Clone(), kept)
}

// Vertices2D enumerates the vertices of a 2-D zonotope in counterclockwise
// order (generators sorted by angle; linear-time construction).
func (z *Zonotope) Vertices2D() ([]mat.Vec, error) {
	if z.Dim() != 2 {
		return nil, errors.New("zono: Vertices2D: zonotope is not 2-D")
	}
	// Normalize generator directions into the upper half-plane and sort by
	// angle; walking +g then −g in order traces the boundary.
	gens := make([]mat.Vec, 0, len(z.Generators))
	for _, g := range z.Generators {
		if g[0] == 0 && g[1] == 0 {
			continue
		}
		if g[1] < 0 || (g[1] == 0 && g[0] < 0) {
			g = g.Scale(-1)
		}
		gens = append(gens, g)
	}
	if len(gens) == 0 {
		return []mat.Vec{z.Center.Clone()}, nil
	}
	sort.Slice(gens, func(a, b int) bool {
		return math.Atan2(gens[a][1], gens[a][0]) < math.Atan2(gens[b][1], gens[b][0])
	})
	// Start from the lowest vertex: c − Σ gᵢ.
	cur := z.Center.Clone()
	for _, g := range gens {
		cur = cur.Sub(g)
	}
	verts := make([]mat.Vec, 0, 2*len(gens))
	verts = append(verts, cur.Clone())
	for _, g := range gens {
		cur = cur.Add(g.Scale(2))
		verts = append(verts, cur.Clone())
	}
	for _, g := range gens {
		cur = cur.Sub(g.Scale(2))
		verts = append(verts, cur.Clone())
	}
	// The walk closes on the start vertex; drop the duplicate.
	return verts[:len(verts)-1], nil
}

// ToPolytope converts a 2-D zonotope to its exact H-representation.
func (z *Zonotope) ToPolytope() (*poly.Polytope, error) {
	verts, err := z.Vertices2D()
	if err != nil {
		return nil, err
	}
	return poly.FromVertices2D(verts)
}

// ForwardReach propagates the zonotope x0 through k steps of the affine
// dynamics x⁺ = A·x + c + W (W may be nil), returning Reach_0 … Reach_k
// with exact per-step images and sums. maxOrder bounds the generator count
// via Reduce (0 means no reduction).
func ForwardReach(x0 *Zonotope, a *mat.Mat, c mat.Vec, w *Zonotope, k, maxOrder int) []*Zonotope {
	out := []*Zonotope{x0.Clone()}
	cur := x0
	for t := 0; t < k; t++ {
		next := cur.Map(a, c)
		if w != nil {
			next = Sum(next, w)
		}
		if maxOrder > 0 && next.Order() > maxOrder {
			next = next.Reduce(maxOrder)
		}
		out = append(out, next)
		cur = next
	}
	return out
}
