package plant

import (
	"fmt"

	"oic/internal/core"
	"oic/internal/mat"
	"oic/internal/nn"
)

// DRLPolicyLabel is the canonical name of a trained DRL skipping policy
// — shared by the generic trainer, the plants' bespoke trainers, and the
// artifact restore paths so snapshots round-trip under one label.
const DRLPolicyLabel = "drl-ddqn"

// PolicySnapshot is the persistable form of a trained skipping policy:
// the Q-network's parameters plus the exact normalization bounds its
// encoder used during training. Restoring from these values (rather than
// re-deriving bounds from the safety sets) is what makes the restored
// policy bit-identical to the trained one even if set-derived defaults
// drift across versions.
type PolicySnapshot struct {
	Label   string
	Memory  int
	Net     *nn.Snapshot
	XCenter []float64
	XScale  []float64
	WScale  []float64
}

// SnapshottablePolicy is implemented by skipping policies that can
// serialize themselves into an artifact.
type SnapshottablePolicy interface {
	core.SkipPolicy
	PolicySnapshot() (*PolicySnapshot, error)
}

// SetsLoader is implemented by plants that can instantiate from
// precompiled safety sets, skipping the expensive offline synthesis
// (invariant-set computation, MPC feasible-set projection) entirely —
// the load half of the artifact pipeline.
type SetsLoader interface {
	Plant
	InstantiateWithSets(sc Scenario, sets core.SafetySets) (Instance, error)
}

// PolicyRestorer is implemented by instances that can rebuild a trained
// skipping policy from its snapshot without retraining.
type PolicyRestorer interface {
	Instance
	RestoreSkipPolicy(snap *PolicySnapshot) (core.SkipPolicy, error)
}

// RestoreDRLPolicy rebuilds the generic trained policy from a snapshot:
// the restored encoder uses the stored bounds verbatim and the restored
// network the stored parameters verbatim, so Decide computes the same
// float64s as the policy the snapshot was taken from. Plants whose
// TrainSkipPolicy delegates to TrainDRL implement RestoreSkipPolicy by
// delegating here; plants with a bespoke encoder (the ACC) restore their
// own policy type instead.
func RestoreDRLPolicy(snap *PolicySnapshot) (core.SkipPolicy, error) {
	if snap == nil {
		return nil, fmt.Errorf("plant: RestoreDRLPolicy: nil snapshot")
	}
	if snap.Label != DRLPolicyLabel {
		return nil, fmt.Errorf("plant: RestoreDRLPolicy: unknown policy label %q", snap.Label)
	}
	if snap.Memory < 1 {
		return nil, fmt.Errorf("plant: RestoreDRLPolicy: memory %d < 1", snap.Memory)
	}
	if len(snap.XCenter) == 0 || len(snap.XScale) != len(snap.XCenter) || len(snap.WScale) == 0 {
		return nil, fmt.Errorf("plant: RestoreDRLPolicy: bad normalization bounds (%d/%d/%d)",
			len(snap.XCenter), len(snap.XScale), len(snap.WScale))
	}
	net, err := nn.FromSnapshot(snap.Net)
	if err != nil {
		return nil, fmt.Errorf("plant: RestoreDRLPolicy: %w", err)
	}
	enc := &Encoder{
		xCenter: append(mat.Vec(nil), snap.XCenter...),
		xScale:  append(mat.Vec(nil), snap.XScale...),
		wScale:  append(mat.Vec(nil), snap.WScale...),
	}
	if want := enc.StateDim(snap.Memory); net.Sizes[0] != want {
		return nil, fmt.Errorf("plant: RestoreDRLPolicy: network input %d, encoder expects %d", net.Sizes[0], want)
	}
	if net.Sizes[len(net.Sizes)-1] != 2 {
		return nil, fmt.Errorf("plant: RestoreDRLPolicy: network has %d outputs, want 2", net.Sizes[len(net.Sizes)-1])
	}
	return trainedPolicy{net: net, enc: enc, memory: snap.Memory}, nil
}
