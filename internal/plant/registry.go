package plant

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Registry lookup sentinels, errors.Is-able through the wrapped errors Get
// and FindScenario return (pkg/oic re-exports them on its public surface).
var (
	ErrUnknownPlant    = errors.New("plant: unknown plant")
	ErrUnknownScenario = errors.New("plant: unknown scenario")
)

var (
	regMu    sync.RWMutex
	registry = map[string]Plant{}
)

// Register adds a plant to the global registry. Case studies call it from
// an init function so importing the package is enough to make the plant
// available to the harness and the CLI. Registering a duplicate name
// panics: it is always a programming error.
func Register(p Plant) {
	regMu.Lock()
	defer regMu.Unlock()
	name := p.Name()
	if name == "" {
		panic("plant: Register: empty plant name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("plant: Register: duplicate plant %q", name))
	}
	registry[name] = p
}

// Get returns the registered plant with the given name.
func Get(name string) (Plant, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownPlant, name, namesLocked())
	}
	return p, nil
}

// Names returns the registered plant names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FindScenario looks up a scenario of p by ID across the headline and all
// ladders.
func FindScenario(p Plant, id string) (Scenario, error) {
	if h := p.Headline(); h.ID == id {
		return h, nil
	}
	for _, l := range p.Ladders() {
		for _, sc := range l.Scenarios {
			if sc.ID == id {
				return sc, nil
			}
		}
	}
	return Scenario{}, fmt.Errorf("%w: plant %s has no scenario %q", ErrUnknownScenario, p.Name(), id)
}
