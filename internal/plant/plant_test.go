package plant_test

import (
	"math/rand"
	"testing"

	"oic/internal/core"
	"oic/internal/plant"

	// Register the case studies.
	_ "oic/internal/acc"
	_ "oic/internal/orbit"
	_ "oic/internal/thermo"
)

func TestRegistryHasAllPlants(t *testing.T) {
	names := plant.Names()
	want := []string{"acc", "orbit", "thermo"}
	if len(names) != len(want) {
		t.Fatalf("registered plants = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registered plants = %v, want %v", names, want)
		}
	}
	if _, err := plant.Get("acc"); err != nil {
		t.Fatal(err)
	}
	if _, err := plant.Get("nope"); err == nil {
		t.Fatal("Get(nope) should fail")
	}
}

func TestFindScenario(t *testing.T) {
	p, err := plant.Get("acc")
	if err != nil {
		t.Fatal(err)
	}
	if sc, err := plant.FindScenario(p, "Ex.3"); err != nil || sc.ID != "Ex.3" {
		t.Fatalf("FindScenario(Ex.3) = %v, %v", sc, err)
	}
	if sc, err := plant.FindScenario(p, "Fig.4"); err != nil || sc.ID != "Fig.4" {
		t.Fatalf("FindScenario(Fig.4) = %v, %v", sc, err)
	}
	if _, err := plant.FindScenario(p, "Ex.99"); err == nil {
		t.Fatal("FindScenario(Ex.99) should fail")
	}
}

// TestEveryPlantContract drives the full Instance surface of every
// registered plant: instantiate the headline scenario, check the set
// nesting, run paired episodes with zero violations, and verify the
// disturbance traces respect the declared W set (out-of-model
// disturbances void every guarantee).
func TestEveryPlantContract(t *testing.T) {
	for _, name := range plant.Names() {
		t.Run(name, func(t *testing.T) {
			p, err := plant.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if p.CostLabel() == "" || p.Description() == "" {
				t.Error("empty cost label or description")
			}
			if len(p.Ladders()) == 0 {
				t.Error("plant has no scenario ladders")
			}
			if p.EpisodeSteps() <= 0 {
				t.Error("non-positive default episode length")
			}
			inst, err := p.Instantiate(p.Headline())
			if err != nil {
				t.Fatal(err)
			}
			sets := inst.Sets()
			if ok, err := sets.XI.Covers(sets.XPrime, 1e-6); err != nil || !ok {
				t.Errorf("X' ⊄ XI (ok=%v err=%v)", ok, err)
			}
			if ok, err := sets.X.Covers(sets.XI, 1e-6); err != nil || !ok {
				t.Errorf("XI ⊄ X (ok=%v err=%v)", ok, err)
			}

			rng := rand.New(rand.NewSource(7))
			x0s, err := inst.SampleInitialStates(2, rng)
			if err != nil {
				t.Fatal(err)
			}
			steps := 30
			w := inst.Disturbances(rng, steps)
			if len(w) != steps {
				t.Fatalf("trace length %d, want %d", len(w), steps)
			}
			for ti, wt := range w {
				if !inst.System().W.Contains(wt, 1e-9) {
					t.Fatalf("disturbance %v at step %d outside W", wt, ti)
				}
			}
			for _, pol := range []core.SkipPolicy{core.AlwaysRun{}, core.BangBang{}} {
				ep, err := inst.RunEpisode(pol, x0s[0], w)
				if err != nil {
					t.Fatalf("%s: %v", pol.Name(), err)
				}
				if ep.Result.ViolationsX != 0 || ep.Result.ViolationsXI != 0 {
					t.Errorf("%s: violations X=%d XI=%d", pol.Name(), ep.Result.ViolationsX, ep.Result.ViolationsXI)
				}
				if ep.Cost < 0 {
					t.Errorf("%s: negative cost %v", pol.Name(), ep.Cost)
				}
			}
		})
	}
}

// TestGenericDRLTrainsSafely checks the plant-agnostic trainer end to end
// on the plants that use it: training must stay violation-free (the
// monitor guards exploration) and the trained policy must run.
func TestGenericDRLTrainsSafely(t *testing.T) {
	for _, name := range []string{"thermo", "orbit"} {
		t.Run(name, func(t *testing.T) {
			p, err := plant.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := p.Instantiate(p.Headline())
			if err != nil {
				t.Fatal(err)
			}
			pol, st, err := inst.TrainSkipPolicy(plant.TrainConfig{Episodes: 3, Steps: 25, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if st.TotalSteps != 75 {
				t.Errorf("trained %d steps, want 75", st.TotalSteps)
			}
			rng := rand.New(rand.NewSource(9))
			x0s, err := inst.SampleInitialStates(1, rng)
			if err != nil {
				t.Fatal(err)
			}
			ep, err := inst.RunEpisode(pol, x0s[0], inst.Disturbances(rng, 30))
			if err != nil {
				t.Fatal(err)
			}
			if ep.Result.ViolationsX != 0 {
				t.Errorf("violations = %d", ep.Result.ViolationsX)
			}
		})
	}
}

func TestEncoderNormalizesRanges(t *testing.T) {
	p, err := plant.Get("acc")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := p.Instantiate(p.Headline())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := plant.NewEncoder(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got := enc.StateDim(1); got != 4 {
		t.Fatalf("StateDim(1) = %d, want 4 (2 state + 2 disturbance)", got)
	}
	rng := rand.New(rand.NewSource(3))
	x0s, err := inst.SampleInitialStates(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range x0s {
		s := enc.Encode(x, inst.Disturbances(rng, 1))
		for i, v := range s {
			if v < -1.5 || v > 1.5 {
				t.Errorf("feature %d = %v outside O(1) range for x=%v", i, v, x)
			}
		}
	}
}

// TestMemoryPolicyEvaluates is the r > 1 regression: a policy trained
// with a longer disturbance memory must evaluate without dimension
// mismatches because RunEpisode sizes the session window from the policy
// (PolicyMemory).
func TestMemoryPolicyEvaluates(t *testing.T) {
	for _, name := range []string{"acc", "thermo"} {
		t.Run(name, func(t *testing.T) {
			p, err := plant.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := p.Instantiate(p.Headline())
			if err != nil {
				t.Fatal(err)
			}
			pol, _, err := inst.TrainSkipPolicy(plant.TrainConfig{Episodes: 2, Steps: 20, Memory: 3})
			if err != nil {
				t.Fatal(err)
			}
			if got := plant.PolicyMemory(pol); got != 3 {
				t.Fatalf("PolicyMemory = %d, want 3", got)
			}
			rng := rand.New(rand.NewSource(13))
			x0s, err := inst.SampleInitialStates(1, rng)
			if err != nil {
				t.Fatal(err)
			}
			ep, err := inst.RunEpisode(pol, x0s[0], inst.Disturbances(rng, 25))
			if err != nil {
				t.Fatal(err)
			}
			if ep.Result.ViolationsX != 0 {
				t.Errorf("violations = %d", ep.Result.ViolationsX)
			}
		})
	}
}
