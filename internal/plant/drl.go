package plant

import (
	"errors"
	"fmt"
	"math/rand"

	"oic/internal/core"
	"oic/internal/mat"
	"oic/internal/nn"
	"oic/internal/rl"
)

// Paper reward weights (Section IV): w₁ penalizes leaving X′, w₂ penalizes
// applied energy. They transfer across plants because the encoder below
// normalizes states and disturbances to O(1) ranges.
const (
	DefaultW1     = 0.01
	DefaultW2     = 0.0001
	DefaultMemory = 1
)

func (c TrainConfig) withDefaults(defaultSteps int) TrainConfig {
	if c.Episodes == 0 {
		c.Episodes = 200
	}
	if c.Steps == 0 {
		c.Steps = defaultSteps
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.W1 <= 0 {
		c.W1 = DefaultW1
	}
	if c.W2 <= 0 {
		c.W2 = DefaultW2
	}
	if c.Memory <= 0 {
		c.Memory = DefaultMemory
	}
	return c
}

// Encoder normalizes (state, recent disturbances) into the paper's agent
// state s(t) = {x(t), w(t−r+1), …, w(t)} with O(1) feature ranges. Center
// and scale come from the bounding boxes of the safe set X and the
// disturbance set W, so it applies to any plant.
type Encoder struct {
	xCenter, xScale mat.Vec
	wScale          mat.Vec
}

// NewEncoder derives normalization from the instance's constraint sets.
func NewEncoder(inst Instance) (*Encoder, error) {
	sys := inst.System()
	if sys.X == nil || sys.W == nil {
		return nil, errors.New("plant: NewEncoder: system lacks X or W set")
	}
	lo, hi, err := sys.X.BoundingBox()
	if err != nil {
		return nil, fmt.Errorf("plant: NewEncoder: X bounding box: %w", err)
	}
	e := &Encoder{
		xCenter: make(mat.Vec, len(lo)),
		xScale:  make(mat.Vec, len(lo)),
	}
	for i := range lo {
		e.xCenter[i] = (lo[i] + hi[i]) / 2
		e.xScale[i] = (hi[i] - lo[i]) / 2
		if e.xScale[i] <= 0 {
			e.xScale[i] = 1
		}
	}
	wlo, whi, err := sys.W.BoundingBox()
	if err != nil {
		return nil, fmt.Errorf("plant: NewEncoder: W bounding box: %w", err)
	}
	e.wScale = make(mat.Vec, len(wlo))
	for i := range wlo {
		s := whi[i]
		if d := -wlo[i]; d > s {
			s = d
		}
		if s <= 0 {
			s = 1 // flat disturbance direction (e.g. the ACC's second channel)
		}
		e.wScale[i] = s
	}
	return e, nil
}

// StateDim returns the encoded feature count for memory recent disturbances.
func (e *Encoder) StateDim(memory int) int { return len(e.xCenter) + memory*len(e.wScale) }

// Encode builds the normalized agent state (most recent disturbance last).
func (e *Encoder) Encode(x mat.Vec, wRecent []mat.Vec) mat.Vec {
	out := make(mat.Vec, 0, len(x)+len(wRecent)*len(e.wScale))
	for i, xi := range x {
		out = append(out, (xi-e.xCenter[i])/e.xScale[i])
	}
	for _, w := range wRecent {
		for i, wi := range w {
			out = append(out, wi/e.wScale[i])
		}
	}
	return out
}

// Env adapts any plant instance to rl.Env with the paper's reward
//
//	R(s, z, s′) = −w₁·[x′ ∉ X′] − w₂·‖u‖₁,
//
// where u is the actually applied input (zero on a skip). The monitor
// enforces safety during training, so exploration can never leave XI.
type Env struct {
	inst   Instance
	enc    *Encoder
	steps  int
	w1, w2 float64

	fw   *core.Framework
	sess *core.Session
	w    []mat.Vec
	t    int
}

// NewEnv builds a training environment over inst with episode length steps.
func NewEnv(inst Instance, steps int, w1, w2 float64, memory int) (*Env, error) {
	enc, err := NewEncoder(inst)
	if err != nil {
		return nil, err
	}
	// The framework policy is never consulted — the agent supplies choices
	// through StepWithChoice. BangBang is a placeholder.
	fw, err := inst.Framework(core.BangBang{}, memory)
	if err != nil {
		return nil, err
	}
	return &Env{inst: inst, enc: enc, steps: steps, w1: w1, w2: w2, fw: fw}, nil
}

// StateDim returns the agent state dimension.
func (e *Env) StateDim() int { return e.enc.StateDim(e.fw.WMemory) }

// Reset implements rl.Env.
func (e *Env) Reset(rng *rand.Rand) (mat.Vec, error) {
	x0s, err := e.inst.SampleInitialStates(1, rng)
	if err != nil {
		return nil, fmt.Errorf("plant: Env.Reset: sampling X′: %w", err)
	}
	if len(x0s) == 0 {
		return nil, errors.New("plant: Env.Reset: sampling X′: empty sample")
	}
	e.w = e.inst.Disturbances(rng, e.steps)
	sess, err := e.fw.NewSession(x0s[0])
	if err != nil {
		return nil, err
	}
	e.sess = sess
	e.t = 0
	return e.enc.Encode(x0s[0], sess.RecentWView()), nil
}

// Step implements rl.Env.
func (e *Env) Step(action int) (mat.Vec, float64, bool, error) {
	if e.sess == nil {
		return nil, 0, true, errors.New("plant: Env.Step: call Reset first")
	}
	if e.t >= e.steps {
		return nil, 0, true, errors.New("plant: Env.Step: episode exhausted")
	}
	rec, err := e.sess.StepWithChoice(e.w[e.t], action == 1)
	if err != nil {
		return nil, 0, true, err
	}
	e.t++

	r1 := 0.0
	if !e.fw.Sets.XPrime.Contains(rec.Next, 1e-9) {
		r1 = 1
	}
	reward := -e.w1*r1 - e.w2*rec.U.Norm1()

	done := e.t >= e.steps
	return e.enc.Encode(rec.Next, e.sess.RecentWView()), reward, done, nil
}

// TrainDRL trains a double-DQN skipping agent for inst with the paper's
// setup, generically over any plant: plants without a bespoke trainer
// implement TrainSkipPolicy by delegating here.
func TrainDRL(inst Instance, cfg TrainConfig, defaultSteps int) (core.SkipPolicy, rl.TrainStats, error) {
	cfg = cfg.withDefaults(defaultSteps)
	env, err := NewEnv(inst, cfg.Steps, cfg.W1, cfg.W2, cfg.Memory)
	if err != nil {
		return nil, rl.TrainStats{}, err
	}
	totalSteps := cfg.Episodes * cfg.Steps
	agent, err := rl.NewDDQN(rl.Config{
		StateDim:   env.StateDim(),
		NumActions: 2,
		Hidden:     []int{64, 64},
		Gamma:      0.95,
		EpsDecay:   totalSteps * 6 / 10,
		BatchSize:  32,
		ReplayCap:  totalSteps,
		TargetSync: 250,
		WarmUp:     500,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, rl.TrainStats{}, err
	}
	stats, err := rl.Train(agent, env, cfg.Episodes, cfg.Steps)
	if err != nil {
		return nil, stats, fmt.Errorf("plant: TrainDRL: %w", err)
	}
	policy := trainedPolicy{net: agent.Policy(), enc: env.enc, memory: cfg.Memory}
	return policy, stats, nil
}

// trainedPolicy is a trained DRL skipping policy: the greedy argmax over
// the online Q-network on the encoder's normalized agent state. It holds
// the network and encoder directly (rather than a closure over the agent)
// so the policy can be snapshotted into an artifact and restored
// bit-identically — the restored Decide runs the exact same float64
// pipeline as the freshly trained one. It also carries the
// disturbance-memory length the encoder expects, so episode runners size
// the session window to match (MemoryPolicy).
type trainedPolicy struct {
	net    *nn.MLP
	enc    *Encoder
	memory int
}

// Decide implements core.SkipPolicy: greedy action 1 ("run κ") iff
// Q(s, run) > Q(s, skip), matching rl.DDQN.Greedy's strict argmax.
func (p trainedPolicy) Decide(_ int, x mat.Vec, wRecent []mat.Vec) bool {
	q := p.net.Forward(p.enc.Encode(x, wRecent))
	return q[1] > q[0]
}

// Name implements core.SkipPolicy.
func (p trainedPolicy) Name() string { return DRLPolicyLabel }

// PolicyMemory implements MemoryPolicy.
func (p trainedPolicy) PolicyMemory() int { return p.memory }

// PolicySnapshot implements SnapshottablePolicy.
func (p trainedPolicy) PolicySnapshot() (*PolicySnapshot, error) {
	return &PolicySnapshot{
		Label:   DRLPolicyLabel,
		Memory:  p.memory,
		Net:     p.net.Snapshot(),
		XCenter: append([]float64(nil), p.enc.xCenter...),
		XScale:  append([]float64(nil), p.enc.xScale...),
		WScale:  append([]float64(nil), p.enc.wScale...),
	}, nil
}
