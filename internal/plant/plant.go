// Package plant defines the case-study abstraction the experiment harness
// is generic over. The paper's framework (Algorithm 1 + Theorem 1) is
// plant-agnostic: it needs only an affine LTI model, the nested safety sets
// X′ ⊆ XI ⊆ X, a safe controller κ, and a cost to minimize by skipping.
// A Plant packages exactly that, plus the experimental surface the paper's
// evaluation exercises — a headline scenario (Fig. 4), Table-I-style
// scenario ladders (Fig. 5 / Fig. 6), and a trainable skipping policy.
//
// New case studies register themselves (see Register) and immediately gain
// the whole evaluation pipeline: paired-case experiments, scenario sweeps,
// the timing analysis, CSV export, and the cmd/oic CLI.
package plant

import (
	"fmt"
	"math/rand"

	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/rl"
)

// Scenario identifies one experimental setting of a plant: an exogenous
// disturbance process plus (possibly) scenario-specific safety sets.
type Scenario struct {
	ID          string // e.g. "Ex.1", "Fig.4", "Th.2"
	Description string // one-line human description
	Detail      string // short setting summary for table rows (e.g. "v_f ∈ [30, 50]")
}

// Ladder is an ordered family of scenarios swept by one experiment — the
// shape of the paper's Table I / Fig. 5 (shrinking disturbance ranges) and
// Fig. 6 (increasing regularity).
type Ladder struct {
	Name      string // short key, e.g. "range" or "regularity"
	Title     string // report heading
	PaperNote string // expected qualitative shape, if the paper states one
	Scenarios []Scenario
}

// TrainConfig tunes learned-skip-policy training for one scenario.
type TrainConfig struct {
	Episodes int     // training episodes (0 = plant default)
	Steps    int     // episode length (0 = plant default)
	Seed     int64   // RNG seed (0 = 1)
	W1, W2   float64 // reward weights (≤ 0 = plant/paper defaults)
	Memory   int     // disturbance-memory length r (0 = 1)
}

// Episode is the outcome of one simulated run of Algorithm 1.
type Episode struct {
	Result *core.Result
	Cost   float64 // plant-specific resource metric (fuel, kWh, Δv)
	Energy float64 // Σ‖u‖₁ — Problem 1's objective, common to all plants
}

// Instance is a plant configured for one scenario: concrete dynamics,
// safety sets, an episode runner, and a policy trainer. Instances must be
// safe for concurrent RunEpisode calls (the harness evaluates cases in
// parallel).
type Instance interface {
	// System returns the affine LTI plant with its X/U/W constraint sets.
	System() *lti.System

	// Sets returns the nested safety sets X′ ⊆ XI ⊆ X of the scenario.
	Sets() core.SafetySets

	// Framework assembles an Algorithm 1 loop with the given skipping
	// policy and disturbance-memory length r.
	Framework(policy core.SkipPolicy, memory int) (*core.Framework, error)

	// SampleInitialStates draws n states from the strengthened safe set X′.
	SampleInitialStates(n int, rng *rand.Rand) ([]mat.Vec, error)

	// Disturbances draws an episode-long disturbance trace from the
	// scenario's exogenous process. Every element must lie in System().W,
	// or the framework's guarantees are void (the audit package checks).
	Disturbances(rng *rand.Rand, steps int) []mat.Vec

	// RunEpisode executes Algorithm 1 for len(w) steps from x0 under the
	// policy and meters the plant cost over the resulting trajectory.
	RunEpisode(policy core.SkipPolicy, x0 mat.Vec, w []mat.Vec) (*Episode, error)

	// TrainSkipPolicy trains the learned skipping policy (the paper's DRL
	// agent) for this scenario and returns it alongside training stats.
	TrainSkipPolicy(cfg TrainConfig) (core.SkipPolicy, rl.TrainStats, error)
}

// Plant is a registered case study: a scenario catalogue plus a factory
// for scenario-configured instances.
type Plant interface {
	// Name is the registry key (e.g. "acc", "thermo", "orbit").
	Name() string
	// Description is a one-line summary for the CLI listing.
	Description() string
	// CostLabel names the unit of Episode.Cost (e.g. "fuel", "kWh", "Δv").
	CostLabel() string
	// EpisodeSteps is the default episode length.
	EpisodeSteps() int
	// Headline is the plant's Fig.4-style flagship scenario.
	Headline() Scenario
	// Ladders returns the plant's scenario sweeps, most important first.
	Ladders() []Ladder
	// Instantiate builds the model and safety sets for a scenario. The
	// scenario must be one returned by Headline or Ladders.
	Instantiate(sc Scenario) (Instance, error)
}

// MemoryPolicy is an optional extension for skip policies that were
// trained with a disturbance-memory length r > 1: episode runners must
// build the framework session with a matching window or the policy's
// feature vector has the wrong dimension.
type MemoryPolicy interface {
	core.SkipPolicy
	// PolicyMemory returns the r the policy was trained with.
	PolicyMemory() int
}

// PolicyMemory returns the disturbance-memory length an episode run needs
// for the given policy: the policy's own requirement when it declares one
// (MemoryPolicy), the paper's default r = 1 otherwise.
func PolicyMemory(p core.SkipPolicy) int {
	if mp, ok := p.(MemoryPolicy); ok {
		if m := mp.PolicyMemory(); m > 0 {
			return m
		}
	}
	return DefaultMemory
}

// RunFramework executes Algorithm 1 over inst from x0 for the disturbance
// trace w and returns the raw result — the common core of every plant's
// RunEpisode implementation. The session's disturbance window is sized
// for the policy via PolicyMemory.
func RunFramework(inst Instance, policy core.SkipPolicy, x0 mat.Vec, w []mat.Vec) (*core.Result, error) {
	fw, err := inst.Framework(policy, PolicyMemory(policy))
	if err != nil {
		return nil, err
	}
	sess, err := fw.NewSession(x0)
	if err != nil {
		return nil, err
	}
	for _, wt := range w {
		if _, err := sess.Step(wt); err != nil {
			return nil, fmt.Errorf("plant: RunFramework (%s): %w", policy.Name(), err)
		}
	}
	return sess.Result, nil
}
