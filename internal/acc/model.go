// Package acc implements the paper's adaptive cruise control case study
// (Section IV): the two-vehicle longitudinal model
//
//	s(t+1) = s(t) − (v(t) − v_f(t))·δ
//	v(t+1) = v(t) − (k·v(t) − u(t))·δ
//
// with δ = 0.1, drag k = 0.2, safe distance s ∈ [120, 180], ego speed
// v ∈ [25, 55], input u ∈ [−40, 40], and front-vehicle speed v_f ∈ [30, 50].
//
// Rewriting around the nominal front speed VE = 40 gives the affine LTI
// form the framework consumes,
//
//	x⁺ = A·x + B·u + c + w,  w = (δ·(v_f − VE), 0) ∈ W,
//
// in physical coordinates, so a skipped control really applies zero
// actuation (and burns idle fuel only). The robust MPC κR, its feasible
// region XI (Proposition 1), and the strengthened safe set X′ are all
// constructed here.
package acc

import (
	"fmt"
	"math/rand"
	"sync"

	"oic/internal/controller"
	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
	"oic/internal/traffic"
)

// Paper constants (Section IV).
const (
	Delta = 0.1 // sampling/control period δ
	Drag  = 0.2 // drag coefficient k

	SMin, SMax = 120.0, 180.0 // safe relative distance
	VMin, VMax = 25.0, 55.0   // ego velocity limits
	UMin, UMax = -40.0, 40.0  // input limits

	VfMin, VfMax = 30.0, 50.0 // front vehicle speed range (Ex.1)
	VE           = 40.0       // nominal front speed

	SRef = 150.0 // distance setpoint (midpoint of the safe range)

	DefaultHorizon = 10 // RMPC prediction horizon (paper: 10)
	EpisodeSteps   = 100
)

// Config parameterizes the case-study model. The zero value selects the
// paper's settings.
type Config struct {
	VfMin, VfMax float64 // front-speed design range for the safety sets
	Horizon      int     // RMPC horizon
	StateWeight  float64 // RMPC P (1-norm)
	InputWeight  float64 // RMPC Q (1-norm)
}

func (c Config) withDefaults() Config {
	if c.VfMin == 0 && c.VfMax == 0 {
		c.VfMin, c.VfMax = VfMin, VfMax
	}
	if c.Horizon == 0 {
		c.Horizon = DefaultHorizon
	}
	if c.StateWeight == 0 {
		c.StateWeight = 1
	}
	if c.InputWeight == 0 {
		// The paper does not report P and Q. A light input weight makes the
		// RMPC an attentive tracker — the conservative baseline whose
		// pessimism the skipping framework exploits.
		c.InputWeight = 0.1
	}
	return c
}

// Model bundles the ACC system, the RMPC κR, and the safety sets.
type Model struct {
	Cfg  Config
	Sys  *lti.System
	RMPC *controller.RMPC
	Sets core.SafetySets
	URef mat.Vec // equilibrium input (8 at v = 40)
	XRef mat.Vec // (SRef, VE)
}

// NewModel constructs the case study: dynamics, constraint polytopes, the
// RMPC, its feasible region XI (Proposition 1), and X′.
func NewModel(cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.VfMin >= cfg.VfMax {
		return nil, fmt.Errorf("acc: NewModel: bad v_f range [%g, %g]", cfg.VfMin, cfg.VfMax)
	}

	a := mat.FromRows([][]float64{{1, -Delta}, {0, 1 - Drag*Delta}})
	b := mat.FromRows([][]float64{{0}, {Delta}})
	sys := lti.NewSystem(a, b).
		WithDrift(mat.Vec{Delta * VE, 0}).
		WithConstraints(
			poly.Box([]float64{SMin, VMin}, []float64{SMax, VMax}),
			poly.Box([]float64{UMin}, []float64{UMax}),
			poly.Box([]float64{Delta * (cfg.VfMin - VE), 0}, []float64{Delta * (cfg.VfMax - VE), 0}),
		)

	xref := mat.Vec{SRef, VE}
	uref, err := controller.EquilibriumInput(sys, xref, 0)
	if err != nil {
		return nil, fmt.Errorf("acc: NewModel: %w", err)
	}

	rmpc, err := controller.NewRMPC(sys, controller.RMPCConfig{
		Horizon:     cfg.Horizon,
		StateWeight: cfg.StateWeight,
		InputWeight: cfg.InputWeight,
		XRef:        xref,
		URef:        uref,
	})
	if err != nil {
		return nil, fmt.Errorf("acc: NewModel: %w", err)
	}

	// Proposition 1: the RMPC's feasible region is its robust control
	// invariant set.
	xi, err := rmpc.FeasibleSet()
	if err != nil {
		return nil, fmt.Errorf("acc: NewModel: feasible set: %w", err)
	}
	sets, err := core.ComputeSafetySets(sys, xi)
	if err != nil {
		return nil, fmt.Errorf("acc: NewModel: %w", err)
	}

	return &Model{Cfg: cfg, Sys: sys, RMPC: rmpc, Sets: sets, URef: uref, XRef: xref}, nil
}

// NewModelWithSets constructs the model around precompiled safety sets:
// dynamics, equilibrium, and the RMPC program are rebuilt (cheap, exact),
// but the expensive offline synthesis — feasible-set projection and
// ComputeSafetySets — is skipped and the supplied sets are used verbatim.
// This is the artifact-load path; the sets must come from a model built
// with the same Config or behavior will diverge.
func NewModelWithSets(cfg Config, sets core.SafetySets) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.VfMin >= cfg.VfMax {
		return nil, fmt.Errorf("acc: NewModelWithSets: bad v_f range [%g, %g]", cfg.VfMin, cfg.VfMax)
	}
	if sets.X == nil || sets.XI == nil || sets.XPrime == nil {
		return nil, fmt.Errorf("acc: NewModelWithSets: incomplete safety sets")
	}
	if sets.XI.Dim() != 2 || sets.XPrime.Dim() != 2 {
		return nil, fmt.Errorf("acc: NewModelWithSets: sets have dimension %d, want 2", sets.XI.Dim())
	}

	a := mat.FromRows([][]float64{{1, -Delta}, {0, 1 - Drag*Delta}})
	b := mat.FromRows([][]float64{{0}, {Delta}})
	sys := lti.NewSystem(a, b).
		WithDrift(mat.Vec{Delta * VE, 0}).
		WithConstraints(
			poly.Box([]float64{SMin, VMin}, []float64{SMax, VMax}),
			poly.Box([]float64{UMin}, []float64{UMax}),
			poly.Box([]float64{Delta * (cfg.VfMin - VE), 0}, []float64{Delta * (cfg.VfMax - VE), 0}),
		)

	xref := mat.Vec{SRef, VE}
	uref, err := controller.EquilibriumInput(sys, xref, 0)
	if err != nil {
		return nil, fmt.Errorf("acc: NewModelWithSets: %w", err)
	}
	rmpc, err := controller.NewRMPC(sys, controller.RMPCConfig{
		Horizon:     cfg.Horizon,
		StateWeight: cfg.StateWeight,
		InputWeight: cfg.InputWeight,
		XRef:        xref,
		URef:        uref,
	})
	if err != nil {
		return nil, fmt.Errorf("acc: NewModelWithSets: %w", err)
	}
	return &Model{Cfg: cfg, Sys: sys, RMPC: rmpc, Sets: sets, URef: uref, XRef: xref}, nil
}

// modelCache memoizes model construction per configuration, mirroring the
// scenario-independent sync.OnceValues caches thermo and orbit use. acc
// cannot share a single model — its safety sets depend on the scenario's
// v_f design range — so the cache is keyed by the defaulted Config: the
// expensive offline pipeline (tightening, terminal set, feasible-set
// projection, X′) runs once per distinct range per process instead of once
// per Instantiate. Construction errors are not cached; they re-derive
// cheaply and keep the cache free of dead entries.
var modelCache sync.Map // Config → *modelEntry

type modelEntry struct {
	once sync.Once
	m    *Model
	err  error
}

// SharedModel returns the process-wide memoized model for cfg. The result
// is shared: its sets and compiled RMPC program are immutable, and
// sessions fork per-session solver workspaces, so sharing is safe for
// concurrent evaluation workers.
func SharedModel(cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	e, _ := modelCache.LoadOrStore(cfg, &modelEntry{})
	entry := e.(*modelEntry)
	entry.once.Do(func() { entry.m, entry.err = NewModel(cfg) })
	if entry.err != nil {
		modelCache.Delete(cfg)
	}
	return entry.m, entry.err
}

// Disturbance maps a front-vehicle speed to the model disturbance vector
// w = (δ·(v_f − VE), 0).
func (m *Model) Disturbance(vf float64) mat.Vec {
	return mat.Vec{Delta * (vf - VE), 0}
}

// WScale returns the design half-range of the scalar disturbance, used to
// normalize DRL features.
func (m *Model) WScale() float64 {
	s := Delta * (m.Cfg.VfMax - VE)
	if d := Delta * (VE - m.Cfg.VfMin); d > s {
		s = d
	}
	if s <= 0 {
		s = 1
	}
	return s
}

// Framework assembles an Algorithm 1 loop over this model with the given
// skipping policy and disturbance memory r.
func (m *Model) Framework(policy core.SkipPolicy, memory int) (*core.Framework, error) {
	return core.NewFramework(m.Sys, m.RMPC, m.Sets, policy, memory)
}

// SampleInitialStates draws n random states from the strengthened safe set
// X′ (the paper picks "feasible initial states within X′").
func (m *Model) SampleInitialStates(n int, rng *rand.Rand) ([]mat.Vec, error) {
	return m.Sets.XPrime.Sample(n, rng.Float64)
}

// Episode is the outcome of one simulated 10-second run.
type Episode struct {
	Result *core.Result
	Fuel   float64   // metered by the traffic fuel model
	Energy float64   // Σ‖u‖₁ (Problem 1's objective)
	VF     []float64 // the front-vehicle speed sequence driven against
}

// RunEpisode executes Algorithm 1 for len(vf) steps from x0 under the given
// policy, then meters fuel over the resulting trajectory. The same x0 and
// vf can be replayed against different policies for paired comparisons.
// The policy sees the paper's default disturbance memory r = 1.
func (m *Model) RunEpisode(policy core.SkipPolicy, x0 mat.Vec, vf []float64, fm *traffic.FuelModel) (*Episode, error) {
	return m.RunEpisodeWithMemory(policy, x0, vf, fm, DefaultMemory)
}

// RunEpisodeWithMemory is RunEpisode with an explicit disturbance-memory
// length r for the policy (needed when evaluating DRL agents trained with
// r > 1).
func (m *Model) RunEpisodeWithMemory(policy core.SkipPolicy, x0 mat.Vec, vf []float64, fm *traffic.FuelModel, memory int) (*Episode, error) {
	w := make([]mat.Vec, len(vf))
	for i, v := range vf {
		w[i] = m.Disturbance(v)
	}
	return m.RunEpisodeW(policy, x0, w, vf, fm, memory)
}

// RunEpisodeW is the disturbance-vector core of RunEpisodeWithMemory: it
// drives Algorithm 1 with an explicit w trace (as the plant-agnostic
// harness does) and meters fuel over the resulting trajectory. vf may be
// nil; it is only recorded on the episode for reference.
func (m *Model) RunEpisodeW(policy core.SkipPolicy, x0 mat.Vec, w []mat.Vec, vf []float64, fm *traffic.FuelModel, memory int) (*Episode, error) {
	fw, err := m.Framework(policy, memory)
	if err != nil {
		return nil, err
	}
	sess, err := fw.NewSession(x0)
	if err != nil {
		return nil, err
	}
	for _, wt := range w {
		if _, err := sess.Step(wt); err != nil {
			return nil, fmt.Errorf("acc: RunEpisode (%s): %w", policy.Name(), err)
		}
	}
	res := sess.Result
	tr := res.Trajectory()
	speeds := make([]float64, len(tr.States))
	for i, x := range tr.States {
		speeds[i] = x[1]
	}
	cmds := make([]float64, len(tr.Inputs))
	for i, u := range tr.Inputs {
		cmds[i] = u[0]
	}
	if fm == nil {
		fm = traffic.DefaultFuelModel()
	}
	fuel, energy := fm.Episode(speeds, cmds, Delta)
	return &Episode{Result: res, Fuel: fuel, Energy: energy, VF: vf}, nil
}
