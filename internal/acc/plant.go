package acc

import (
	"fmt"
	"math/rand"

	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/plant"
	"oic/internal/rl"
	"oic/internal/traffic"
)

// Plant adapts the ACC case study to the plant-agnostic harness. It is
// registered under the name "acc"; importing this package is enough to
// make it available to internal/exp and cmd/oic.
type Plant struct{}

func init() { plant.Register(Plant{}) }

// Name implements plant.Plant.
func (Plant) Name() string { return "acc" }

// Description implements plant.Plant.
func (Plant) Description() string {
	return "adaptive cruise control, the paper's Section IV case study (RMPC, fuel cost)"
}

// CostLabel implements plant.Plant.
func (Plant) CostLabel() string { return "fuel" }

// EpisodeSteps implements plant.Plant.
func (Plant) EpisodeSteps() int { return EpisodeSteps }

// Generic converts an ACC scenario to the plant-agnostic form.
func (sc Scenario) Generic() plant.Scenario {
	return plant.Scenario{
		ID:          sc.ID,
		Description: sc.Description,
		Detail:      fmt.Sprintf("v_f ∈ [%g, %g]", sc.VfMin, sc.VfMax),
	}
}

func toGeneric(scs []Scenario) []plant.Scenario {
	out := make([]plant.Scenario, len(scs))
	for i, sc := range scs {
		out[i] = sc.Generic()
	}
	return out
}

// Headline implements plant.Plant: the Fig. 4 sinusoid scenario.
func (Plant) Headline() plant.Scenario { return Fig4Scenario().Generic() }

// Ladders implements plant.Plant: the Table I range ladder (Fig. 5) and
// the regularity ladder (Fig. 6).
func (Plant) Ladders() []plant.Ladder {
	return []plant.Ladder{
		{
			Name:      "range",
			Title:     "DRL fuel saving vs v_f range (Ex.1–Ex.5)",
			PaperNote: "paper shape: savings increase as the range narrows (≈7%→13%)",
			Scenarios: toGeneric(Table1Scenarios()),
		},
		{
			Name:      "regularity",
			Title:     "DRL fuel saving vs regularity (Ex.6–Ex.10)",
			PaperNote: "paper shape: savings rise with regularity Ex.7→Ex.10; Ex.6 (pure random) is an outlier",
			Scenarios: toGeneric(RegularityScenarios()),
		},
	}
}

// scenarioByID resolves a generic scenario back to the full ACC scenario.
func scenarioByID(id string) (Scenario, error) {
	all := []Scenario{Fig4Scenario(), StopAndGoScenario()}
	all = append(all, Table1Scenarios()...)
	all = append(all, RegularityScenarios()...)
	for _, sc := range all {
		if sc.ID == id {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("acc: %w %q", plant.ErrUnknownScenario, id)
}

// Instantiate implements plant.Plant.
func (Plant) Instantiate(gsc plant.Scenario) (plant.Instance, error) {
	sc, err := scenarioByID(gsc.ID)
	if err != nil {
		return nil, err
	}
	m, err := ModelFor(sc)
	if err != nil {
		return nil, err
	}
	return &Instance{m: m, sc: sc}, nil
}

// Instance is an ACC model bound to one scenario's front-vehicle profile.
type Instance struct {
	m  *Model
	sc Scenario
}

// Model exposes the underlying case-study model.
func (in *Instance) Model() *Model { return in.m }

// System implements plant.Instance.
func (in *Instance) System() *lti.System { return in.m.Sys }

// Sets implements plant.Instance.
func (in *Instance) Sets() core.SafetySets { return in.m.Sets }

// Framework implements plant.Instance.
func (in *Instance) Framework(policy core.SkipPolicy, memory int) (*core.Framework, error) {
	return in.m.Framework(policy, memory)
}

// SampleInitialStates implements plant.Instance.
func (in *Instance) SampleInitialStates(n int, rng *rand.Rand) ([]mat.Vec, error) {
	return in.m.SampleInitialStates(n, rng)
}

// Disturbances implements plant.Instance: it draws a front-vehicle speed
// trace from the scenario profile and maps it through the disturbance model
// w = (δ·(v_f − VE), 0).
func (in *Instance) Disturbances(rng *rand.Rand, steps int) []mat.Vec {
	vf := in.sc.Profile.Generate(rng, steps)
	out := make([]mat.Vec, len(vf))
	for i, v := range vf {
		out[i] = in.m.Disturbance(v)
	}
	return out
}

// RunEpisode implements plant.Instance; Cost is metered fuel. The session
// disturbance window is sized for the policy (plant.PolicyMemory), so
// agents trained with r > 1 evaluate correctly.
func (in *Instance) RunEpisode(policy core.SkipPolicy, x0 mat.Vec, w []mat.Vec) (*plant.Episode, error) {
	ep, err := in.m.RunEpisodeW(policy, x0, w, nil, traffic.DefaultFuelModel(), plant.PolicyMemory(policy))
	if err != nil {
		return nil, err
	}
	return &plant.Episode{Result: ep.Result, Cost: ep.Fuel, Energy: ep.Energy}, nil
}

// TrainSkipPolicy implements plant.Instance using the paper's bespoke
// encoding (Section IV hyper-parameters).
func (in *Instance) TrainSkipPolicy(cfg plant.TrainConfig) (core.SkipPolicy, rl.TrainStats, error) {
	agent, stats, err := in.m.TrainDRL(in.sc.Profile, TrainConfig{
		Episodes: cfg.Episodes, Steps: cfg.Steps, Seed: cfg.Seed,
		W1: cfg.W1, W2: cfg.W2, Memory: cfg.Memory,
	})
	if err != nil {
		return nil, stats, err
	}
	memory := cfg.Memory
	if memory <= 0 {
		memory = DefaultMemory
	}
	return accPolicy{SkipPolicy: in.m.DRLPolicy(agent), memory: memory}, stats, nil
}

// accPolicy tags the trained ACC policy with its disturbance-memory
// length (plant.MemoryPolicy).
type accPolicy struct {
	core.SkipPolicy
	memory int
}

// PolicyMemory implements plant.MemoryPolicy.
func (p accPolicy) PolicyMemory() int { return p.memory }
