package acc

import (
	"fmt"
	"math/rand"

	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/nn"
	"oic/internal/plant"
	"oic/internal/rl"
	"oic/internal/traffic"
)

// Plant adapts the ACC case study to the plant-agnostic harness. It is
// registered under the name "acc"; importing this package is enough to
// make it available to internal/exp and cmd/oic.
type Plant struct{}

func init() { plant.Register(Plant{}) }

// Name implements plant.Plant.
func (Plant) Name() string { return "acc" }

// Description implements plant.Plant.
func (Plant) Description() string {
	return "adaptive cruise control, the paper's Section IV case study (RMPC, fuel cost)"
}

// CostLabel implements plant.Plant.
func (Plant) CostLabel() string { return "fuel" }

// EpisodeSteps implements plant.Plant.
func (Plant) EpisodeSteps() int { return EpisodeSteps }

// Generic converts an ACC scenario to the plant-agnostic form.
func (sc Scenario) Generic() plant.Scenario {
	return plant.Scenario{
		ID:          sc.ID,
		Description: sc.Description,
		Detail:      fmt.Sprintf("v_f ∈ [%g, %g]", sc.VfMin, sc.VfMax),
	}
}

func toGeneric(scs []Scenario) []plant.Scenario {
	out := make([]plant.Scenario, len(scs))
	for i, sc := range scs {
		out[i] = sc.Generic()
	}
	return out
}

// Headline implements plant.Plant: the Fig. 4 sinusoid scenario.
func (Plant) Headline() plant.Scenario { return Fig4Scenario().Generic() }

// Ladders implements plant.Plant: the Table I range ladder (Fig. 5) and
// the regularity ladder (Fig. 6).
func (Plant) Ladders() []plant.Ladder {
	return []plant.Ladder{
		{
			Name:      "range",
			Title:     "DRL fuel saving vs v_f range (Ex.1–Ex.5)",
			PaperNote: "paper shape: savings increase as the range narrows (≈7%→13%)",
			Scenarios: toGeneric(Table1Scenarios()),
		},
		{
			Name:      "regularity",
			Title:     "DRL fuel saving vs regularity (Ex.6–Ex.10)",
			PaperNote: "paper shape: savings rise with regularity Ex.7→Ex.10; Ex.6 (pure random) is an outlier",
			Scenarios: toGeneric(RegularityScenarios()),
		},
	}
}

// scenarioByID resolves a generic scenario back to the full ACC scenario.
func scenarioByID(id string) (Scenario, error) {
	all := []Scenario{Fig4Scenario(), StopAndGoScenario()}
	all = append(all, Table1Scenarios()...)
	all = append(all, RegularityScenarios()...)
	for _, sc := range all {
		if sc.ID == id {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("acc: %w %q", plant.ErrUnknownScenario, id)
}

// Instantiate implements plant.Plant.
func (Plant) Instantiate(gsc plant.Scenario) (plant.Instance, error) {
	sc, err := scenarioByID(gsc.ID)
	if err != nil {
		return nil, err
	}
	m, err := ModelFor(sc)
	if err != nil {
		return nil, err
	}
	return &Instance{m: m, sc: sc}, nil
}

// Instance is an ACC model bound to one scenario's front-vehicle profile.
type Instance struct {
	m  *Model
	sc Scenario
}

// Model exposes the underlying case-study model.
func (in *Instance) Model() *Model { return in.m }

// System implements plant.Instance.
func (in *Instance) System() *lti.System { return in.m.Sys }

// Sets implements plant.Instance.
func (in *Instance) Sets() core.SafetySets { return in.m.Sets }

// Framework implements plant.Instance.
func (in *Instance) Framework(policy core.SkipPolicy, memory int) (*core.Framework, error) {
	return in.m.Framework(policy, memory)
}

// SampleInitialStates implements plant.Instance.
func (in *Instance) SampleInitialStates(n int, rng *rand.Rand) ([]mat.Vec, error) {
	return in.m.SampleInitialStates(n, rng)
}

// Disturbances implements plant.Instance: it draws a front-vehicle speed
// trace from the scenario profile and maps it through the disturbance model
// w = (δ·(v_f − VE), 0).
func (in *Instance) Disturbances(rng *rand.Rand, steps int) []mat.Vec {
	vf := in.sc.Profile.Generate(rng, steps)
	out := make([]mat.Vec, len(vf))
	for i, v := range vf {
		out[i] = in.m.Disturbance(v)
	}
	return out
}

// RunEpisode implements plant.Instance; Cost is metered fuel. The session
// disturbance window is sized for the policy (plant.PolicyMemory), so
// agents trained with r > 1 evaluate correctly.
func (in *Instance) RunEpisode(policy core.SkipPolicy, x0 mat.Vec, w []mat.Vec) (*plant.Episode, error) {
	ep, err := in.m.RunEpisodeW(policy, x0, w, nil, traffic.DefaultFuelModel(), plant.PolicyMemory(policy))
	if err != nil {
		return nil, err
	}
	return &plant.Episode{Result: ep.Result, Cost: ep.Fuel, Energy: ep.Energy}, nil
}

// TrainSkipPolicy implements plant.Instance using the paper's bespoke
// encoding (Section IV hyper-parameters).
func (in *Instance) TrainSkipPolicy(cfg plant.TrainConfig) (core.SkipPolicy, rl.TrainStats, error) {
	agent, stats, err := in.m.TrainDRL(in.sc.Profile, TrainConfig{
		Episodes: cfg.Episodes, Steps: cfg.Steps, Seed: cfg.Seed,
		W1: cfg.W1, W2: cfg.W2, Memory: cfg.Memory,
	})
	if err != nil {
		return nil, stats, err
	}
	memory := cfg.Memory
	if memory <= 0 {
		memory = DefaultMemory
	}
	return accPolicy{m: in.m, net: agent.Policy(), memory: memory}, stats, nil
}

// accPolicy is the trained ACC skipping policy: the greedy argmax over
// the Q-network on the paper's bespoke agent state m.Encode(x, w). It
// holds the network directly so the policy snapshots into an artifact and
// restores bit-identically, and carries its disturbance-memory length
// (plant.MemoryPolicy).
type accPolicy struct {
	m      *Model
	net    *nn.MLP
	memory int
}

// Decide implements core.SkipPolicy: action 1 ("run κ") iff
// Q(s, run) > Q(s, skip), matching rl.DDQN.Greedy's strict argmax.
func (p accPolicy) Decide(_ int, x mat.Vec, wRecent []mat.Vec) bool {
	q := p.net.Forward(p.m.Encode(x, wRecent))
	return q[1] > q[0]
}

// Name implements core.SkipPolicy.
func (p accPolicy) Name() string { return plant.DRLPolicyLabel }

// PolicyMemory implements plant.MemoryPolicy.
func (p accPolicy) PolicyMemory() int { return p.memory }

// PolicySnapshot implements plant.SnapshottablePolicy. The ACC's encoder
// is bespoke — it uses only the disturbance's first component against the
// scalar WScale — so the snapshot stores a scalar wScale and the paper's
// fixed state bounds.
func (p accPolicy) PolicySnapshot() (*plant.PolicySnapshot, error) {
	return &plant.PolicySnapshot{
		Label:   plant.DRLPolicyLabel,
		Memory:  p.memory,
		Net:     p.net.Snapshot(),
		XCenter: []float64{SRef, VE},
		XScale:  []float64{(SMax - SMin) / 2, (VMax - VMin) / 2},
		WScale:  []float64{p.m.WScale()},
	}, nil
}

// InstantiateWithSets implements plant.SetsLoader: it binds the scenario
// to a model rebuilt around precompiled safety sets, skipping the
// feasible-set projection and safe-set synthesis entirely.
func (Plant) InstantiateWithSets(gsc plant.Scenario, sets core.SafetySets) (plant.Instance, error) {
	sc, err := scenarioByID(gsc.ID)
	if err != nil {
		return nil, err
	}
	m, err := NewModelWithSets(Config{VfMin: sc.VfMin, VfMax: sc.VfMax}, sets)
	if err != nil {
		return nil, err
	}
	return &Instance{m: m, sc: sc}, nil
}

// RestoreSkipPolicy implements plant.PolicyRestorer: it rebuilds the
// trained ACC policy from its snapshot without retraining. The stored
// wScale must match this model's — a mismatch means the snapshot was
// taken on a different v_f design range and would silently misnormalize.
func (in *Instance) RestoreSkipPolicy(snap *plant.PolicySnapshot) (core.SkipPolicy, error) {
	if snap == nil {
		return nil, fmt.Errorf("acc: RestoreSkipPolicy: nil snapshot")
	}
	if snap.Label != plant.DRLPolicyLabel {
		return nil, fmt.Errorf("acc: RestoreSkipPolicy: unknown policy label %q", snap.Label)
	}
	if snap.Memory < 1 {
		return nil, fmt.Errorf("acc: RestoreSkipPolicy: memory %d < 1", snap.Memory)
	}
	if len(snap.WScale) != 1 || snap.WScale[0] != in.m.WScale() {
		return nil, fmt.Errorf("acc: RestoreSkipPolicy: snapshot wScale %v, model expects [%g]",
			snap.WScale, in.m.WScale())
	}
	net, err := nn.FromSnapshot(snap.Net)
	if err != nil {
		return nil, fmt.Errorf("acc: RestoreSkipPolicy: %w", err)
	}
	if want := 2 + snap.Memory; net.Sizes[0] != want {
		return nil, fmt.Errorf("acc: RestoreSkipPolicy: network input %d, encoder expects %d", net.Sizes[0], want)
	}
	if net.Sizes[len(net.Sizes)-1] != 2 {
		return nil, fmt.Errorf("acc: RestoreSkipPolicy: network has %d outputs, want 2", net.Sizes[len(net.Sizes)-1])
	}
	return accPolicy{m: in.m, net: net, memory: snap.Memory}, nil
}
