package acc

import (
	"fmt"

	"oic/internal/traffic"
)

// Scenario describes one of the paper's experimental settings: a front-
// vehicle behaviour pattern plus the v_f design range used to build the
// safety sets.
type Scenario struct {
	ID          string // "Ex.1" … "Ex.10" or "Fig.4"
	Description string
	VfMin       float64
	VfMax       float64
	Profile     traffic.Profile
}

// Fig4Scenario is the headline experiment (Section IV-A): sinusoidal front
// speed per Eq. 8 with v_e = 40, a_f = 9, disturbance w ∈ [−1, 1].
func Fig4Scenario() Scenario {
	return Scenario{
		ID:          "Fig.4",
		Description: "sinusoidal front vehicle, Eq. 8 (a_f=9, w∈[−1,1])",
		VfMin:       VfMin,
		VfMax:       VfMax,
		Profile: traffic.Sinusoid{
			VE: VE, Amp: 9, Noise: 1, Delta: Delta, Min: VfMin, Max: VfMax,
		},
	}
}

// Table1Scenarios are Ex.1–Ex.5 (Table I): bounded-acceleration random
// front vehicle (v_f′ ∈ [−20, 20]) over shrinking speed ranges.
func Table1Scenarios() []Scenario {
	ranges := [][2]float64{
		{30, 50},     // Ex.1
		{32.5, 47.5}, // Ex.2
		{35, 45},     // Ex.3
		{38, 42},     // Ex.4
		{39, 41},     // Ex.5
	}
	out := make([]Scenario, len(ranges))
	for i, r := range ranges {
		out[i] = Scenario{
			ID:          fmt.Sprintf("Ex.%d", i+1),
			Description: fmt.Sprintf("bounded-random v_f ∈ [%g, %g], |v_f′| ≤ 20", r[0], r[1]),
			VfMin:       r[0],
			VfMax:       r[1],
			Profile: traffic.BoundedRandom{
				Min: r[0], Max: r[1], AccelMax: 20, Delta: Delta,
			},
		}
	}
	return out
}

// RegularityScenarios are Ex.6–Ex.10 (Fig. 6): the same v_f range [30, 50]
// with increasing regularity of the front vehicle's behaviour.
func RegularityScenarios() []Scenario {
	return []Scenario{
		{
			ID:          "Ex.6",
			Description: "purely random v_f (instant drastic changes)",
			VfMin:       VfMin, VfMax: VfMax,
			Profile: traffic.PureRandom{Min: VfMin, Max: VfMax},
		},
		{
			ID:          "Ex.7",
			Description: "continuous random v_f (same setting as Ex.1)",
			VfMin:       VfMin, VfMax: VfMax,
			Profile: traffic.BoundedRandom{Min: VfMin, Max: VfMax, AccelMax: 20, Delta: Delta},
		},
		{
			ID:          "Ex.8",
			Description: "sinusoid a_f=5 with large disturbance w∈[−5,5]",
			VfMin:       VfMin, VfMax: VfMax,
			Profile: traffic.Sinusoid{VE: VE, Amp: 5, Noise: 5, Delta: Delta, Min: VfMin, Max: VfMax},
		},
		{
			ID:          "Ex.9",
			Description: "sinusoid a_f=8 with disturbance w∈[−2,2]",
			VfMin:       VfMin, VfMax: VfMax,
			Profile: traffic.Sinusoid{VE: VE, Amp: 8, Noise: 2, Delta: Delta, Min: VfMin, Max: VfMax},
		},
		{
			ID:          "Ex.10",
			Description: "sinusoid a_f=9 with disturbance w∈[−1,1] (most regular)",
			VfMin:       VfMin, VfMax: VfMax,
			Profile: traffic.Sinusoid{VE: VE, Amp: 9, Noise: 1, Delta: Delta, Min: VfMin, Max: VfMax},
		},
	}
}

// StopAndGoScenario models the introduction's "stop-and-go in a traffic
// jam" motivation (beyond the paper's evaluated set): the front vehicle is
// the tail of a Krauß car-following platoon whose head drives a congestion
// square wave. The emergent wave is clamped to the paper's [30, 50] design
// range so the safety sets remain valid.
func StopAndGoScenario() Scenario {
	return Scenario{
		ID:          "Ex.SG",
		Description: "stop-and-go congestion wave via a Krauß platoon",
		VfMin:       VfMin,
		VfMax:       VfMax,
		Profile: traffic.Platoon{
			Model:     traffic.DefaultKrauss(),
			N:         4,
			Head:      traffic.SquareWave{VHigh: 48, VLow: 32, HighSteps: 60, LowSteps: 40, Ramp: 1},
			InitSpeed: 40,
			Min:       VfMin,
			Max:       VfMax,
		},
	}
}

// ModelFor returns the case-study model whose safety sets are designed
// for the scenario's v_f range, memoized per range (SharedModel).
func ModelFor(sc Scenario) (*Model, error) {
	return SharedModel(Config{VfMin: sc.VfMin, VfMax: sc.VfMax})
}
