package acc

import (
	"math/rand"
	"testing"

	"oic/internal/core"
	"oic/internal/mat"
	"oic/internal/traffic"
)

func TestRunEpisodeWithMemoryWindowSize(t *testing.T) {
	m := model(t)
	rng := rand.New(rand.NewSource(71))
	x0s, err := m.SampleInitialStates(1, rng)
	if err != nil {
		t.Fatal(err)
	}
	vf := traffic.Constant{V: 40}.Generate(nil, 10)

	for _, r := range []int{1, 4} {
		seen := -1
		probe := core.PolicyFunc{
			Fn: func(_ int, _ mat.Vec, wRecent []mat.Vec) bool {
				seen = len(wRecent)
				return false
			},
			Label: "probe",
		}
		ep, err := m.RunEpisodeWithMemory(probe, x0s[0], vf, nil, r)
		if err != nil {
			t.Fatal(err)
		}
		if seen != r {
			t.Errorf("memory %d: policy saw window of %d", r, seen)
		}
		if ep.Result.ViolationsX != 0 {
			t.Errorf("memory %d: violations", r)
		}
	}
}

func TestEncodeWindowMatchesMemory(t *testing.T) {
	m := model(t)
	// Encode must accept any window length; dimension = 2 + len(window).
	for _, r := range []int{1, 2, 4, 8} {
		w := make([]mat.Vec, r)
		for i := range w {
			w[i] = mat.Vec{0, 0}
		}
		if got := len(m.Encode(mat.Vec{150, 40}, w)); got != 2+r {
			t.Errorf("r=%d: feature dim %d", r, got)
		}
	}
}

func TestDRLEnvMemoryGreaterThanOne(t *testing.T) {
	m := model(t)
	env, err := NewDRLEnv(m, traffic.Constant{V: 40}, 6, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if env.StateDim() != 5 {
		t.Fatalf("state dim = %d, want 5", env.StateDim())
	}
	rng := rand.New(rand.NewSource(72))
	s, err := env.Reset(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 5 {
		t.Fatalf("reset state dim = %d", len(s))
	}
	for i := 0; i < 6; i++ {
		s2, _, done, err := env.Step(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(s2) != 5 {
			t.Fatalf("step state dim = %d", len(s2))
		}
		if done != (i == 5) {
			t.Fatalf("done flag wrong at step %d", i)
		}
	}
}
