package acc

import (
	"errors"
	"fmt"
	"math/rand"

	"oic/internal/core"
	"oic/internal/mat"
	"oic/internal/plant"
	"oic/internal/rl"
	"oic/internal/traffic"
)

// Paper hyper-parameters for the DRL skipping agent (Section IV): reward
// weights w₁ = 0.01 (leaving X′) and w₂ = 0.0001 (energy), perturbation
// memory r = 1. Single-sourced from the plant package so every case study
// trains with the same paper defaults.
const (
	DefaultW1     = plant.DefaultW1
	DefaultW2     = plant.DefaultW2
	DefaultMemory = plant.DefaultMemory
)

// Encode builds the DRL agent state from the physical state and the recent
// observed disturbances (most recent last): the paper's
// s(t) = {x(t), w(t−r+1), …, w(t)}, normalized to O(1) feature ranges.
func (m *Model) Encode(x mat.Vec, wRecent []mat.Vec) mat.Vec {
	ws := m.WScale()
	out := make(mat.Vec, 2+len(wRecent))
	out[0] = (x[0] - SRef) / ((SMax - SMin) / 2)
	out[1] = (x[1] - VE) / ((VMax - VMin) / 2)
	for i, w := range wRecent {
		out[2+i] = w[0] / ws
	}
	return out
}

// DRLEnv adapts the framework session to rl.Env with the paper's reward:
//
//	R(s, z, s') = −w₁·[x' ∉ X′] − w₂·‖u‖₁,
//
// where u is the actually applied input (κ's output when z = 1 or when the
// monitor forces it; zero on a skip). Safety is enforced by the monitor
// during training, so exploration can never leave XI.
type DRLEnv struct {
	m       *Model
	profile traffic.Profile
	steps   int
	w1, w2  float64
	memory  int

	fw   *core.Framework
	sess *core.Session
	vf   []float64
	t    int
}

// NewDRLEnv builds a training environment. steps is the episode length
// (paper: 100); w1/w2 ≤ 0 select the paper defaults.
func NewDRLEnv(m *Model, profile traffic.Profile, steps int, w1, w2 float64, memory int) (*DRLEnv, error) {
	if steps <= 0 {
		steps = EpisodeSteps
	}
	if w1 <= 0 {
		w1 = DefaultW1
	}
	if w2 <= 0 {
		w2 = DefaultW2
	}
	if memory <= 0 {
		memory = DefaultMemory
	}
	// The framework policy is never consulted: the agent supplies choices
	// through StepWithChoice. BangBang is a placeholder.
	fw, err := m.Framework(core.BangBang{}, memory)
	if err != nil {
		return nil, err
	}
	return &DRLEnv{m: m, profile: profile, steps: steps, w1: w1, w2: w2, memory: memory, fw: fw}, nil
}

// StateDim returns the agent state dimension (2 + memory).
func (e *DRLEnv) StateDim() int { return 2 + e.memory }

// Reset implements rl.Env.
func (e *DRLEnv) Reset(rng *rand.Rand) (mat.Vec, error) {
	x0s, err := e.m.SampleInitialStates(1, rng)
	if err != nil {
		return nil, fmt.Errorf("acc: DRLEnv.Reset: sampling X′: %w", err)
	}
	if len(x0s) == 0 {
		return nil, errors.New("acc: DRLEnv.Reset: sampling X′: empty sample")
	}
	e.vf = e.profile.Generate(rng, e.steps)
	sess, err := e.fw.NewSession(x0s[0])
	if err != nil {
		return nil, err
	}
	e.sess = sess
	e.t = 0
	return e.m.Encode(x0s[0], sess.RecentWView()), nil
}

// Step implements rl.Env.
func (e *DRLEnv) Step(action int) (mat.Vec, float64, bool, error) {
	if e.sess == nil {
		return nil, 0, true, errors.New("acc: DRLEnv.Step: call Reset first")
	}
	if e.t >= e.steps {
		return nil, 0, true, errors.New("acc: DRLEnv.Step: episode exhausted")
	}
	rec, err := e.sess.StepWithChoice(e.m.Disturbance(e.vf[e.t]), action == 1)
	if err != nil {
		return nil, 0, true, err
	}
	e.t++

	r1 := 0.0
	if !e.m.Sets.XPrime.Contains(rec.Next, 1e-9) {
		r1 = 1
	}
	r2 := rec.U.Norm1()
	reward := -e.w1*r1 - e.w2*r2

	done := e.t >= e.steps
	return e.m.Encode(rec.Next, e.sess.RecentWView()), reward, done, nil
}

// TrainConfig tunes DRL training for a scenario.
type TrainConfig struct {
	Episodes int     // default 200
	Steps    int     // episode length; default 100
	W1, W2   float64 // reward weights; defaults are the paper's
	Memory   int     // perturbation memory r; default 1
	Seed     int64   // default 1
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Episodes == 0 {
		c.Episodes = 200
	}
	if c.Steps == 0 {
		c.Steps = EpisodeSteps
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TrainDRL trains a double-DQN skipping agent against the given front-
// vehicle profile using the paper's double deep Q-learning setup.
func (m *Model) TrainDRL(profile traffic.Profile, tc TrainConfig) (*rl.DDQN, rl.TrainStats, error) {
	tc = tc.withDefaults()
	env, err := NewDRLEnv(m, profile, tc.Steps, tc.W1, tc.W2, tc.Memory)
	if err != nil {
		return nil, rl.TrainStats{}, err
	}
	totalSteps := tc.Episodes * tc.Steps
	agent, err := rl.NewDDQN(rl.Config{
		StateDim:   env.StateDim(),
		NumActions: 2,
		Hidden:     []int{64, 64},
		Gamma:      0.95,
		EpsDecay:   totalSteps * 6 / 10,
		BatchSize:  32,
		ReplayCap:  totalSteps,
		TargetSync: 250,
		WarmUp:     500,
		Seed:       tc.Seed,
	})
	if err != nil {
		return nil, rl.TrainStats{}, err
	}
	stats, err := rl.Train(agent, env, tc.Episodes, tc.Steps)
	if err != nil {
		return nil, stats, fmt.Errorf("acc: TrainDRL: %w", err)
	}
	return agent, stats, nil
}

// DRLPolicy wraps a trained agent's greedy action as a framework skipping
// policy (z = 1 ⇔ the agent's action is 1).
func (m *Model) DRLPolicy(agent *rl.DDQN) core.SkipPolicy {
	return core.PolicyFunc{
		Fn: func(_ int, x mat.Vec, wRecent []mat.Vec) bool {
			return agent.Greedy(m.Encode(x, wRecent)) == 1
		},
		Label: "drl-ddqn",
	}
}
