package acc

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/core"
	"oic/internal/mat"
	"oic/internal/traffic"
)

// sharedModel is built once; the RMPC feasible-set projection dominates
// construction time.
var sharedModel *Model

func model(t *testing.T) *Model {
	t.Helper()
	if sharedModel == nil {
		m, err := NewModel(Config{})
		if err != nil {
			t.Fatal(err)
		}
		sharedModel = m
	}
	return sharedModel
}

func TestModelSetNesting(t *testing.T) {
	m := model(t)
	// Fig. 1: X′ ⊆ XI ⊆ X.
	if ok, err := m.Sets.XI.Covers(m.Sets.XPrime, 1e-6); err != nil || !ok {
		t.Errorf("X' ⊄ XI: %v %v", ok, err)
	}
	if ok, err := m.Sets.X.Covers(m.Sets.XI, 1e-6); err != nil || !ok {
		t.Errorf("XI ⊄ X: %v %v", ok, err)
	}
	if m.Sets.XPrime.IsEmpty() {
		t.Error("X' empty: no skipping would ever be admissible")
	}
}

func TestModelEquilibrium(t *testing.T) {
	m := model(t)
	if math.Abs(m.URef[0]-8) > 1e-9 {
		t.Errorf("equilibrium input = %v, want 8 (= k·VE)", m.URef[0])
	}
	next := m.Sys.Step(m.XRef, m.URef, nil)
	if !next.Equal(m.XRef, 1e-9) {
		t.Errorf("reference not a fixed point: %v", next)
	}
}

func TestDisturbanceMapping(t *testing.T) {
	m := model(t)
	w := m.Disturbance(50)
	if !w.Equal(mat.Vec{1, 0}, 1e-12) {
		t.Errorf("w(50) = %v, want [1 0]", w)
	}
	w = m.Disturbance(30)
	if !w.Equal(mat.Vec{-1, 0}, 1e-12) {
		t.Errorf("w(30) = %v, want [-1 0]", w)
	}
	// Disturbances from the design range must lie in W.
	for _, vf := range []float64{30, 35, 40, 45, 50} {
		if !m.Sys.W.Contains(m.Disturbance(vf), 1e-9) {
			t.Errorf("w(%v) outside W", vf)
		}
	}
}

func TestSampleInitialStatesInsideXPrime(t *testing.T) {
	m := model(t)
	rng := rand.New(rand.NewSource(1))
	xs, err := m.SampleInitialStates(20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 20 {
		t.Fatalf("got %d states", len(xs))
	}
	for _, x := range xs {
		if !m.Sets.XPrime.Contains(x, 1e-9) {
			t.Errorf("sample %v outside X'", x)
		}
	}
}

func TestRunEpisodeSafetyAllPolicies(t *testing.T) {
	m := model(t)
	rng := rand.New(rand.NewSource(2))
	sc := Fig4Scenario()
	x0s, err := m.SampleInitialStates(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	policies := []core.SkipPolicy{
		core.AlwaysRun{},
		core.BangBang{},
		core.PolicyFunc{Fn: func(int, mat.Vec, []mat.Vec) bool { return rng.Float64() < 0.5 }, Label: "random"},
	}
	for _, x0 := range x0s {
		vf := sc.Profile.Generate(rng, EpisodeSteps)
		for _, pol := range policies {
			ep, err := m.RunEpisode(pol, x0, vf, nil)
			if err != nil {
				t.Fatalf("%s from %v: %v", pol.Name(), x0, err)
			}
			if ep.Result.ViolationsX != 0 || ep.Result.ViolationsXI != 0 {
				t.Errorf("%s: violations X=%d XI=%d", pol.Name(), ep.Result.ViolationsX, ep.Result.ViolationsXI)
			}
			if ep.Fuel <= 0 || ep.Energy < 0 {
				t.Errorf("%s: fuel=%v energy=%v", pol.Name(), ep.Fuel, ep.Energy)
			}
		}
	}
}

func TestRunEpisodePairedComparability(t *testing.T) {
	m := model(t)
	rng := rand.New(rand.NewSource(3))
	sc := Fig4Scenario()
	x0s, _ := m.SampleInitialStates(1, rng)
	vf := sc.Profile.Generate(rng, EpisodeSteps)
	// Replaying the same episode must be deterministic.
	a, err := m.RunEpisode(core.BangBang{}, x0s[0], vf, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.RunEpisode(core.BangBang{}, x0s[0], vf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Fuel-b.Fuel) > 1e-12 || a.Result.Skips != b.Result.Skips {
		t.Error("episode replay not deterministic")
	}
}

func TestBangBangSkipsRoughlyPaperRate(t *testing.T) {
	// The paper reports 79.4/100 skipped steps on the Fig. 4 scenario; our
	// reproduction should be in the same regime (loose band).
	m := model(t)
	rng := rand.New(rand.NewSource(4))
	sc := Fig4Scenario()
	x0s, _ := m.SampleInitialStates(5, rng)
	total := 0
	for _, x0 := range x0s {
		vf := sc.Profile.Generate(rng, EpisodeSteps)
		ep, err := m.RunEpisode(core.BangBang{}, x0, vf, nil)
		if err != nil {
			t.Fatal(err)
		}
		total += ep.Result.Skips
	}
	avg := float64(total) / 5
	if avg < 50 || avg > 95 {
		t.Errorf("average skips = %v, want within [50, 95]", avg)
	}
}

func TestScenarioDefinitions(t *testing.T) {
	t1 := Table1Scenarios()
	if len(t1) != 5 {
		t.Fatalf("Table I scenarios = %d", len(t1))
	}
	// Table I ranges.
	wantRanges := [][2]float64{{30, 50}, {32.5, 47.5}, {35, 45}, {38, 42}, {39, 41}}
	for i, sc := range t1 {
		if sc.VfMin != wantRanges[i][0] || sc.VfMax != wantRanges[i][1] {
			t.Errorf("%s range [%g,%g], want %v", sc.ID, sc.VfMin, sc.VfMax, wantRanges[i])
		}
	}
	reg := RegularityScenarios()
	if len(reg) != 5 {
		t.Fatalf("regularity scenarios = %d", len(reg))
	}
	for i, sc := range reg {
		if sc.VfMin != 30 || sc.VfMax != 50 {
			t.Errorf("%s must share range [30,50]", sc.ID)
		}
		if sc.ID != [5]string{"Ex.6", "Ex.7", "Ex.8", "Ex.9", "Ex.10"}[i] {
			t.Errorf("unexpected ID %s", sc.ID)
		}
	}
}

func TestStopAndGoScenarioSafe(t *testing.T) {
	m := model(t)
	sc := StopAndGoScenario()
	rng := rand.New(rand.NewSource(91))
	vf := sc.Profile.Generate(rng, EpisodeSteps)
	for _, v := range vf {
		if v < VfMin-1e-9 || v > VfMax+1e-9 {
			t.Fatalf("stop-and-go speed %v outside design range", v)
		}
	}
	x0s, _ := m.SampleInitialStates(2, rng)
	for _, x0 := range x0s {
		ep, err := m.RunEpisode(core.BangBang{}, x0, vf, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ep.Result.ViolationsX != 0 {
			t.Errorf("stop-and-go episode violated X")
		}
	}
}

func TestModelForNarrowRange(t *testing.T) {
	if testing.Short() {
		t.Skip("model construction is slow")
	}
	sc := Table1Scenarios()[4] // [39, 41]
	m, err := ModelFor(sc)
	if err != nil {
		t.Fatal(err)
	}
	// A narrower disturbance yields a strengthened set at least as large:
	// X'_narrow ⊇ X'_wide.
	wide := model(t)
	ok, err := m.Sets.XPrime.Covers(wide.Sets.XPrime, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("narrow-W X' does not cover wide-W X'")
	}
}

func TestEncodeFeatures(t *testing.T) {
	m := model(t)
	s := m.Encode(mat.Vec{150, 40}, []mat.Vec{{1, 0}})
	if len(s) != 3 {
		t.Fatalf("feature dim = %d", len(s))
	}
	if math.Abs(s[0]) > 1e-12 || math.Abs(s[1]) > 1e-12 {
		t.Errorf("reference state must encode to zeros: %v", s)
	}
	if math.Abs(s[2]-1) > 1e-9 {
		t.Errorf("w=1 must encode to 1 with design range [30,50]: %v", s[2])
	}
}

func TestDRLEnvEpisode(t *testing.T) {
	m := model(t)
	env, err := NewDRLEnv(m, Fig4Scenario().Profile, 10, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if env.StateDim() != 3 {
		t.Fatalf("state dim = %d", env.StateDim())
	}
	rng := rand.New(rand.NewSource(5))
	s, err := env.Reset(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 {
		t.Fatalf("reset state dim = %d", len(s))
	}
	steps := 0
	for {
		s2, r, done, err := env.Step(steps % 2)
		if err != nil {
			t.Fatal(err)
		}
		if r > 0 {
			t.Errorf("reward %v > 0; paper's reward is a penalty", r)
		}
		if len(s2) != 3 {
			t.Fatalf("state dim = %d", len(s2))
		}
		steps++
		if done {
			break
		}
	}
	if steps != 10 {
		t.Errorf("episode length = %d, want 10", steps)
	}
	// Stepping past the end errors.
	if _, _, _, err := env.Step(0); err == nil {
		t.Error("step past episode end succeeded")
	}
}

func TestDRLEnvRewardSemantics(t *testing.T) {
	m := model(t)
	env, err := NewDRLEnv(m, traffic.Constant{V: 40}, 5, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	if _, err := env.Reset(rng); err != nil {
		t.Fatal(err)
	}
	// A skip applies u = 0: energy penalty must be 0 whenever the monitor
	// does not intervene and the state stays in X'.
	_, r, _, err := env.Step(0)
	if err != nil {
		t.Fatal(err)
	}
	if r < -DefaultW1-1e-9 {
		t.Errorf("skip reward %v below -w1; energy penalty charged on a skip", r)
	}
}

func TestTrainDRLSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("DRL training is slow")
	}
	m := model(t)
	agent, stats, err := m.TrainDRL(Fig4Scenario().Profile, TrainConfig{Episodes: 6, Steps: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Episodes != 6 {
		t.Errorf("episodes = %d", stats.Episodes)
	}
	// The policy must be usable by the framework without violations.
	rng := rand.New(rand.NewSource(7))
	x0s, _ := m.SampleInitialStates(1, rng)
	vf := Fig4Scenario().Profile.Generate(rng, 40)
	ep, err := m.RunEpisode(m.DRLPolicy(agent), x0s[0], vf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Result.ViolationsX != 0 {
		t.Errorf("DRL policy violated X %d times", ep.Result.ViolationsX)
	}
}
