package fault

import (
	"errors"
	"testing"
)

// Same seed, same call sequence ⇒ identical fire pattern. This is the
// property the chaos tests lean on: a fault-injected run is replayable.
func TestDeterministicAcrossRuns(t *testing.T) {
	pattern := func() []bool {
		in := New(42)
		in.Enable(SiteJournalAppend, 0.3)
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Hit(SiteJournalAppend) != nil
		}
		return out
	}
	a, b := pattern(), pattern()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: run A fired=%v, run B fired=%v", i, a[i], b[i])
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.3 over %d calls fired %d times; want strictly between", len(a), fired)
	}
}

// Different sites draw from independent streams: arming one site never
// perturbs another's pattern.
func TestSiteStreamsIndependent(t *testing.T) {
	solo := New(7)
	solo.Enable(SiteArtifactRead, 0.5)
	want := make([]bool, 100)
	for i := range want {
		want[i] = solo.Hit(SiteArtifactRead) != nil
	}

	both := New(7)
	both.Enable(SiteArtifactRead, 0.5)
	both.Enable(SiteJournalSync, 0.5)
	for i := range want {
		both.Hit(SiteJournalSync)
		if got := both.Hit(SiteArtifactRead) != nil; got != want[i] {
			t.Fatalf("call %d: artifact.read pattern changed when journal.sync was armed", i)
		}
	}
}

func TestFailFirst(t *testing.T) {
	in := New(1)
	in.FailFirst(SiteArtifactRead, 2)
	for i := 1; i <= 2; i++ {
		if err := in.Hit(SiteArtifactRead); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: want ErrInjected, got %v", i, err)
		}
	}
	for i := 3; i <= 10; i++ {
		if err := in.Hit(SiteArtifactRead); err != nil {
			t.Fatalf("call %d: want recovery after first 2, got %v", i, err)
		}
	}
	if got := in.Fired(SiteArtifactRead); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	if got := in.Calls(SiteArtifactRead); got != 10 {
		t.Fatalf("Calls = %d, want 10", got)
	}
}

func TestFailAfter(t *testing.T) {
	in := New(1)
	in.FailAfter(SiteJournalAppend, 3)
	for i := 1; i <= 3; i++ {
		if err := in.Hit(SiteJournalAppend); err != nil {
			t.Fatalf("call %d: want success before cut, got %v", i, err)
		}
	}
	for i := 4; i <= 8; i++ {
		if err := in.Hit(SiteJournalAppend); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: want sticky failure after cut, got %v", i, err)
		}
	}
}

// FailAfter(site, 0) fails from the very first call.
func TestFailAfterZero(t *testing.T) {
	in := New(1)
	in.FailAfter(SiteJournalSync, 0)
	if err := in.Hit(SiteJournalSync); !errors.Is(err, ErrInjected) {
		t.Fatalf("want immediate failure, got %v", err)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Hit(SiteJournalAppend); err != nil {
		t.Fatalf("nil Hit = %v, want nil", err)
	}
	in.Enable(SiteJournalAppend, 1)
	in.FailFirst(SiteJournalAppend, 1)
	in.FailAfter(SiteJournalAppend, 0)
	if err := in.Hit(SiteJournalAppend); err != nil {
		t.Fatalf("nil injector fired after arming calls: %v", err)
	}
	if in.Calls(SiteJournalAppend) != 0 || in.Fired(SiteJournalAppend) != 0 {
		t.Fatal("nil injector reported nonzero accounting")
	}
	if in.Stats() != nil {
		t.Fatal("nil Stats() should be nil")
	}
	if got := in.String(); got != "fault: off" {
		t.Fatalf("nil String() = %q", got)
	}
}

// An unarmed site on a live injector never fires and never counts.
func TestUnarmedSite(t *testing.T) {
	in := New(9)
	in.Enable(SiteArtifactRead, 1)
	if err := in.Hit(SiteSchedCompute); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if in.Calls(SiteSchedCompute) != 0 {
		t.Fatal("unarmed site counted a call")
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	in := New(3)
	in.Enable(SiteSchedCompute, 1)
	for i := 0; i < 50; i++ {
		if err := in.Hit(SiteSchedCompute); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: rate 1 did not fire: %v", i, err)
		}
	}
}

func TestParse(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		in, err := Parse(1, "  ")
		if err != nil || in != nil {
			t.Fatalf("Parse(empty) = %v, %v; want nil, nil", in, err)
		}
	})
	t.Run("mixed", func(t *testing.T) {
		in, err := Parse(5, "artifact.read=first:2, journal.append=after:100, sched.compute=0.25")
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Hit(SiteArtifactRead); !errors.Is(err, ErrInjected) {
			t.Fatalf("first:2 call 1: %v", err)
		}
		for i := 1; i <= 100; i++ {
			if err := in.Hit(SiteJournalAppend); err != nil {
				t.Fatalf("after:100 call %d fired early: %v", i, err)
			}
		}
		if err := in.Hit(SiteJournalAppend); !errors.Is(err, ErrInjected) {
			t.Fatalf("after:100 call 101: %v", err)
		}
	})
	t.Run("bad", func(t *testing.T) {
		for _, spec := range []string{
			"noequals",
			"=0.5",
			"sched.compute=first:-1",
			"sched.compute=after:nope",
			"sched.compute=1.5",
			"sched.compute=-0.1",
			"sched.compute=abc",
			"journl.append=0.5", // typo'd site must refuse, not silently arm nothing
		} {
			if _, err := Parse(1, spec); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", spec)
			}
		}
	})
}

func TestStatsAndString(t *testing.T) {
	in := New(11)
	in.FailFirst(SiteArtifactRead, 1)
	in.Hit(SiteArtifactRead)
	in.Hit(SiteArtifactRead)
	st := in.Stats()
	if got := st[SiteArtifactRead]; got.Calls != 2 || got.Fired != 1 {
		t.Fatalf("Stats[%s] = %+v, want Calls=2 Fired=1", SiteArtifactRead, got)
	}
	if s := in.String(); s == "" || s == "fault: off" {
		t.Fatalf("String() = %q", s)
	}
}

// Concurrent Hit calls must be race-free (exercised under -race in CI).
func TestConcurrentHits(t *testing.T) {
	in := New(13)
	in.Enable(SiteJournalAppend, 0.5)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				in.Hit(SiteJournalAppend)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := in.Calls(SiteJournalAppend); got != 8000 {
		t.Fatalf("Calls = %d, want 8000", got)
	}
}
