// Package fault is the runtime's deterministic fault-injection layer:
// a seeded, site-addressable source of synthetic failures threaded into
// the I/O and scheduling paths a production control service has to
// survive — artifact-store reads and writes, journal appends and
// fsyncs, and the fleet scheduler's compute lane.
//
// Every injection decision is a pure function of (seed, site, call
// index): two runs with the same seed and the same per-site call
// sequence inject at exactly the same points, so a chaos test can cut a
// journal at append #137, replay the run, and get a byte-identical
// prefix. Sites are plain strings (see the Site* constants); a nil
// *Injector is inert and free, so production call sites pay one nil
// check when injection is off.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Canonical site names. Call sites pass these to Hit; tests and the
// oicd -fault flag address them by the same strings.
const (
	// SiteArtifactRead fires inside artifact.Store.Get's file read.
	SiteArtifactRead = "artifact.read"
	// SiteArtifactWrite fires inside artifact.Store.Put's file write.
	SiteArtifactWrite = "artifact.write"
	// SiteJournalAppend fires inside journal.Writer.Append before any
	// bytes reach the segment, so an injected failure cuts the journal at
	// a clean record boundary — the deterministic crash point the chaos
	// tests restart from.
	SiteJournalAppend = "journal.append"
	// SiteJournalSync fires inside journal.Writer fsyncs.
	SiteJournalSync = "journal.sync"
	// SiteSchedCompute fires in the scheduler's step phase before a
	// member's κ computation — the synthetic solver failure that exercises
	// graceful degradation (optional computes shed to guaranteed-safe
	// skips; forced computes fail loudly).
	SiteSchedCompute = "sched.compute"
	// SiteSchedNoise is consulted once per fleet tick by load drivers
	// (oic fleet -elastic) to decide whether to burn CPU alongside that
	// tick — the deterministic co-tenant disturbance the elastic-budget
	// controller is evaluated against. The runtime never injects an error
	// here; a Hit that fires simply marks the tick noisy.
	SiteSchedNoise = "sched.noise"
)

// ErrInjected is the sentinel every injected failure wraps
// (errors.Is-able through the wrapping the call sites apply).
var ErrInjected = errors.New("fault: injected failure")

// siteState is one site's independent deterministic stream.
type siteState struct {
	rng   *rand.Rand // seeded from (injector seed, site name)
	rate  float64    // probabilistic mode: P(fire) per call
	first int64      // fail calls 1..first (transient-error mode)
	after int64      // fail every call > after (crash-cut mode); < 0 = off
	calls int64
	fired int64
}

// Injector is a deterministic, seeded fault source. All methods are
// safe for concurrent use; a nil *Injector never fires.
type Injector struct {
	mu    sync.Mutex
	seed  int64
	sites map[string]*siteState
}

// New returns an injector whose per-site decision streams derive from
// seed. No site fires until it is enabled.
func New(seed int64) *Injector {
	return &Injector{seed: seed, sites: map[string]*siteState{}}
}

// site returns (creating if needed) the state for name. Caller holds mu.
func (in *Injector) site(name string) *siteState {
	st, ok := in.sites[name]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(name))
		st = &siteState{
			rng:   rand.New(rand.NewSource(in.seed ^ int64(h.Sum64()))),
			after: -1,
		}
		in.sites[name] = st
	}
	return st
}

// Enable arms the site probabilistically: each Hit fires independently
// with probability rate, drawn from the site's own seeded stream (so the
// fire pattern is reproducible for a fixed seed and call sequence).
func (in *Injector) Enable(name string, rate float64) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(name).rate = rate
}

// FailFirst arms the site to fail its first n Hits and succeed
// afterwards — the transient-error shape (a flaky disk read that heals)
// the retry paths are tested against.
func (in *Injector) FailFirst(name string, n int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(name).first = int64(n)
}

// FailAfter arms the site to succeed its first n Hits and fail every
// one after — the crash-cut shape: a journal whose append site fails
// after n records is frozen at exactly n records, giving chaos tests a
// deterministic kill point.
func (in *Injector) FailAfter(name string, n int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(name).after = int64(n)
}

// Hit asks the site whether this call fails. It returns nil (no fault)
// or an error wrapping ErrInjected that names the site and call index.
func (in *Injector) Hit(name string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.sites[name]
	if !ok {
		return nil
	}
	st.calls++
	fire := false
	switch {
	case st.first > 0 && st.calls <= st.first:
		fire = true
	case st.after >= 0 && st.calls > st.after:
		fire = true
	case st.rate > 0 && st.rng.Float64() < st.rate:
		fire = true
	}
	if !fire {
		return nil
	}
	st.fired++
	return fmt.Errorf("%w at %s call %d", ErrInjected, name, st.calls)
}

// SiteStats is one site's call accounting.
type SiteStats struct {
	Calls int64
	Fired int64
}

// Calls returns how many times the site was consulted.
func (in *Injector) Calls(name string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.sites[name]; ok {
		return st.calls
	}
	return 0
}

// Fired returns how many faults the site injected.
func (in *Injector) Fired(name string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.sites[name]; ok {
		return st.fired
	}
	return 0
}

// Stats snapshots every armed site's accounting, keyed by site name.
func (in *Injector) Stats() map[string]SiteStats {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]SiteStats, len(in.sites))
	for name, st := range in.sites {
		out[name] = SiteStats{Calls: st.calls, Fired: st.fired}
	}
	return out
}

// String renders the armed sites in stable order (for logs).
func (in *Injector) String() string {
	if in == nil {
		return "fault: off"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.sites))
	for name := range in.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "fault: seed %d", in.seed)
	for _, name := range names {
		st := in.sites[name]
		fmt.Fprintf(&b, " %s(rate=%g,first=%d,after=%d)", name, st.rate, st.first, st.after)
	}
	return b.String()
}

// knownSites is the flag-addressable site vocabulary. Parse rejects
// names outside it — an unarmed typo ("journl.append") would otherwise
// silently inject nothing while the operator believes chaos is on.
var knownSites = map[string]bool{
	SiteArtifactRead:  true,
	SiteArtifactWrite: true,
	SiteJournalAppend: true,
	SiteJournalSync:   true,
	SiteSchedCompute:  true,
	SiteSchedNoise:    true,
}

// Parse builds an injector from the oicd -fault flag syntax: a
// comma-separated list of site=mode specs where mode is a probability
// ("journal.append=0.01"), "first:N" ("artifact.read=first:2" — fail the
// first two calls), or "after:N" ("journal.append=after:200" — fail
// every call past the 200th). An empty spec returns (nil, nil): no
// injection, zero overhead.
func Parse(seed int64, spec string) (*Injector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	in := New(seed)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, mode, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("fault: bad spec %q (want site=rate, site=first:N, or site=after:N)", part)
		}
		if !knownSites[name] {
			known := make([]string, 0, len(knownSites))
			for s := range knownSites {
				known = append(known, s)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("fault: unknown site %q (known: %s)", name, strings.Join(known, ", "))
		}
		switch {
		case strings.HasPrefix(mode, "first:"):
			n, err := strconv.Atoi(strings.TrimPrefix(mode, "first:"))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: bad spec %q: first:N needs N ≥ 0", part)
			}
			in.FailFirst(name, n)
		case strings.HasPrefix(mode, "after:"):
			n, err := strconv.Atoi(strings.TrimPrefix(mode, "after:"))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: bad spec %q: after:N needs N ≥ 0", part)
			}
			in.FailAfter(name, n)
		default:
			rate, err := strconv.ParseFloat(mode, 64)
			if err != nil || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("fault: bad spec %q: rate must be in [0, 1]", part)
			}
			in.Enable(name, rate)
		}
	}
	return in, nil
}
