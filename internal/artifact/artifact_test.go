package artifact

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"oic/internal/poly"
)

// sample builds a structurally valid artifact exercising every wire
// feature: all three sets, a two-entry skip chain, a snapshot policy,
// and a non-empty reward history.
func sample(withPolicy bool) *Artifact {
	a := &Artifact{
		Version: Version,
		NX:      2, NU: 1,
		Meta: Meta{
			Plant: "acc", Scenario: "vf-30", Policy: "drl",
			Memory: 0, TrainEpisodes: 24, TrainSteps: 40, TrainSeed: -5,
		},
		Sets: Sets{
			X:      poly.Box([]float64{-10, -3}, []float64{10, 3}),
			XI:     poly.Box([]float64{-8, -2.5}, []float64{8, 2.5}),
			XPrime: poly.Box([]float64{-6, -2}, []float64{6, 2}),
		},
		Chain: []*poly.Polytope{
			poly.Box([]float64{-5, -1.5}, []float64{5, 1.5}),
			poly.Box([]float64{-4, -1}, []float64{4, 1}),
		},
		Train: TrainStats{
			Episodes: 24, TotalSteps: 960, MeanReward: 1.25,
			RewardHistory: []float64{0.5, 1.0, 1.5},
			FinalEpsilon:  0.05, FinalLossEMA: 0.003,
		},
	}
	if withPolicy {
		a.Policy = &Policy{
			Label:  "drl-ddqn",
			Memory: 4,
			Sizes:  []int{6, 3, 2},
			Weights: [][]float64{
				{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18},
				{0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
			},
			Biases:  [][]float64{{-1, 0, 1}, {0.25, -0.25}},
			XCenter: []float64{50, 30},
			XScale:  []float64{25, 10},
			WScale:  []float64{2.5},
		}
	} else {
		a.Meta.Policy = "bang-bang"
		a.Meta.TrainEpisodes, a.Meta.TrainSteps, a.Meta.TrainSeed = 0, 0, 0
		a.Train = TrainStats{}
	}
	return a
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, withPolicy := range []bool{true, false} {
		a := sample(withPolicy)
		b, err := Encode(a)
		if err != nil {
			t.Fatalf("encode(policy=%v): %v", withPolicy, err)
		}
		if len(b) != a.EncodedSize() {
			t.Errorf("EncodedSize %d, encoded %d bytes", a.EncodedSize(), len(b))
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("decode(policy=%v): %v", withPolicy, err)
		}
		// Canonical form: re-encoding the decoded artifact reproduces the
		// input byte-for-byte, so byte equality is a sound identity check.
		b2, err := Encode(got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(b) != string(b2) {
			t.Errorf("Encode∘Decode is not the identity (%d vs %d bytes)", len(b), len(b2))
		}
		if got.Meta != a.Meta {
			t.Errorf("meta round-trip: got %+v, want %+v", got.Meta, a.Meta)
		}
		if withPolicy {
			if got.Policy == nil || !reflect.DeepEqual(got.Policy, a.Policy) {
				t.Errorf("policy round-trip: got %+v, want %+v", got.Policy, a.Policy)
			}
		} else if got.Policy != nil {
			t.Errorf("policy round-trip: got %+v, want nil", got.Policy)
		}
		if len(got.Chain) != len(a.Chain) {
			t.Errorf("chain round-trip: %d sets, want %d", len(got.Chain), len(a.Chain))
		}
	}
}

// TestDecodeRejectsCorruption pins the typed errors: a flipped checksum,
// flipped body byte, truncation, foreign magic, and future version each
// fail with the matching sentinel and never panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	b, err := Encode(sample(true))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		c := append([]byte(nil), b...)
		c[0] = 'X'
		if _, err := Decode(c); !errors.Is(err, ErrBadMagic) {
			t.Errorf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		c := append([]byte(nil), b...)
		c[4] = 0xFF
		c[5] = 0xFF
		if _, err := Decode(c); !errors.Is(err, ErrBadVersion) {
			t.Errorf("got %v, want ErrBadVersion", err)
		}
	})
	t.Run("flipped crc", func(t *testing.T) {
		c := append([]byte(nil), b...)
		c[len(c)-1] ^= 0x01
		if _, err := Decode(c); !errors.Is(err, ErrChecksum) {
			t.Errorf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("flipped body byte", func(t *testing.T) {
		c := append([]byte(nil), b...)
		// A float in the middle of the body: structure still parses, the
		// checksum catches the damage.
		c[len(c)/2] ^= 0x80
		if _, err := Decode(c); err == nil {
			t.Error("decode accepted a corrupted body")
		}
	})
	t.Run("truncation never panics", func(t *testing.T) {
		for n := 0; n < len(b); n++ {
			if _, err := Decode(b[:n]); err == nil {
				t.Fatalf("decode accepted %d-byte prefix of a %d-byte artifact", n, len(b))
			}
		}
	})
	t.Run("short header is ErrTruncated", func(t *testing.T) {
		if _, err := Decode(b[:10]); !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("trailing bytes rejected", func(t *testing.T) {
		c := append(append([]byte(nil), b...), 0)
		if _, err := Decode(c); err == nil {
			t.Error("decode accepted trailing bytes")
		}
	})
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(a *Artifact)
		want string
	}{
		{"wrong version", func(a *Artifact) { a.Version = 99 }, "version"},
		{"zero dimension", func(a *Artifact) { a.NX = 0 }, "dimensions"},
		{"empty plant", func(a *Artifact) { a.Meta.Plant = "" }, "plant"},
		{"nil set", func(a *Artifact) { a.Sets.XI = nil }, "polytope"},
		{"set dim mismatch", func(a *Artifact) {
			a.Sets.X = poly.Box([]float64{-1, -1, -1}, []float64{1, 1, 1})
		}, "dimension"},
		{"policy output arity", func(a *Artifact) {
			// Shapes consistent, but three outputs instead of skip/run.
			a.Policy.Sizes = []int{6, 3, 3}
			a.Policy.Weights[1] = make([]float64, 9)
			a.Policy.Biases[1] = make([]float64, 3)
		}, "outputs"},
		{"policy shape mismatch", func(a *Artifact) { a.Policy.Weights[0] = a.Policy.Weights[0][:5] }, "shape"},
		{"policy encoder mismatch", func(a *Artifact) { a.Policy.Memory = 2 }, "encoder"},
		{"non-finite stat", func(a *Artifact) { a.Train.MeanReward = nan() }, "non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := sample(true)
			tc.mut(a)
			err := a.Validate()
			if err == nil {
				t.Fatal("validate accepted a broken artifact")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if _, err := Encode(a); err == nil {
				t.Error("encode accepted a broken artifact")
			}
		})
	}
}

func nan() float64 { z := 0.0; return z / z }

func TestStore(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const fp = "acc|vf-30|drl|m0|e24|s40|seed-5"

	// Miss: no entry, no error.
	if a, err := st.Get(fp); a != nil || err != nil {
		t.Fatalf("empty-store Get = (%v, %v), want (nil, nil)", a, err)
	}

	a := sample(true)
	if err := st.Put(fp, a); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(fp)
	if err != nil || got == nil {
		t.Fatalf("Get after Put = (%v, %v)", got, err)
	}
	if got.Meta != a.Meta {
		t.Errorf("stored meta %+v, want %+v", got.Meta, a.Meta)
	}

	files, err := st.Files()
	if err != nil || len(files) != 1 {
		t.Fatalf("Files = (%v, %v), want one entry", files, err)
	}
	if files[0] != st.Path(fp) {
		t.Errorf("Files[0] = %s, Path = %s", files[0], st.Path(fp))
	}
	if filepath.Ext(files[0]) != Ext {
		t.Errorf("stored file %s lacks the %s extension", files[0], Ext)
	}

	// Corrupt the entry on disk: Get reports the damage, counts it, and
	// removes the file so the next lookup is a clean miss.
	b, err := os.ReadFile(st.Path(fp))
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(st.Path(fp), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(fp); err == nil {
		t.Error("Get accepted a corrupted entry")
	}
	if _, err := os.Stat(st.Path(fp)); !os.IsNotExist(err) {
		t.Error("corrupted entry not removed from disk")
	}
	if a, err := st.Get(fp); a != nil || err != nil {
		t.Errorf("Get after corruption cleanup = (%v, %v), want (nil, nil)", a, err)
	}

	stats := st.Stats()
	if stats.Hits != 1 || stats.Misses != 2 || stats.Corrupt != 1 || stats.Writes != 1 {
		t.Errorf("stats %+v, want hits=1 misses=2 corrupt=1 writes=1", stats)
	}

	// Different fingerprints address different files.
	if st.Path(fp) == st.Path(fp+"x") {
		t.Error("distinct fingerprints collide")
	}
}
