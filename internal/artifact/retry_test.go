package artifact

import (
	"errors"
	"testing"
	"time"

	"oic/internal/fault"
)

// storeWithFaults opens a store on a temp dir with injected faults and a
// no-op sleep so retry tests don't pay real backoff.
func storeWithFaults(t *testing.T, inj *fault.Injector) *Store {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetFaults(inj)
	st.sleep = func(time.Duration) {}
	return st
}

// Transient read failures within the retry budget are absorbed: the Get
// succeeds, and every absorbed failure is counted.
func TestStoreGetRetriesTransientFailures(t *testing.T) {
	inj := fault.New(1)
	inj.FailFirst(fault.SiteArtifactRead, 2)
	st := storeWithFaults(t, inj)
	a := sample(false)
	if err := st.Put("fp", a); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("fp")
	if err != nil || got == nil {
		t.Fatalf("Get = (%v, %v), want artifact", got, err)
	}
	s := st.Stats()
	if s.Retries != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 retries and 1 hit", s)
	}
}

// A persistent read failure exhausts the bounded budget and surfaces the
// underlying error — the loop never spins unbounded.
func TestStoreGetRetryBudgetExhausted(t *testing.T) {
	inj := fault.New(1)
	inj.Enable(fault.SiteArtifactRead, 1)
	st := storeWithFaults(t, inj)
	if err := st.Put("fp", sample(false)); err != nil {
		t.Fatal(err)
	}
	_, err := st.Get("fp")
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	s := st.Stats()
	if s.Retries != MaxReadRetries {
		t.Fatalf("retries = %d, want %d", s.Retries, MaxReadRetries)
	}
	if got := inj.Calls(fault.SiteArtifactRead); got != MaxReadRetries+1 {
		t.Fatalf("read attempts = %d, want %d", got, MaxReadRetries+1)
	}
}

// A miss is a terminal outcome, never retried.
func TestStoreGetMissNotRetried(t *testing.T) {
	st := storeWithFaults(t, nil)
	got, err := st.Get("absent")
	if got != nil || err != nil {
		t.Fatalf("Get = (%v, %v), want (nil, nil)", got, err)
	}
	if s := st.Stats(); s.Retries != 0 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want a plain miss", s)
	}
}

// Write faults are loud — a failed Put reports the injected error and
// leaves no entry behind.
func TestStorePutFaultIsLoud(t *testing.T) {
	inj := fault.New(1)
	inj.FailFirst(fault.SiteArtifactWrite, 1)
	st := storeWithFaults(t, inj)
	if err := st.Put("fp", sample(false)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Put err = %v, want injected failure", err)
	}
	if got, err := st.Get("fp"); got != nil || err != nil {
		t.Fatalf("entry exists after failed Put: (%v, %v)", got, err)
	}
	if err := st.Put("fp", sample(false)); err != nil {
		t.Fatalf("second Put: %v", err)
	}
	if got, err := st.Get("fp"); got == nil || err != nil {
		t.Fatalf("Get after recovery = (%v, %v)", got, err)
	}
}
