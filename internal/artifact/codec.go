package artifact

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"oic/internal/poly"
)

// Binary wire layout (all integers little-endian, floats IEEE-754 bits):
//
//	magic   [4]byte  "OICA"
//	u16     version
//	u16     nx
//	u16     nu
//	u16     memory (canonical config value; 0 = default)
//	u32     train episodes
//	u32     train steps
//	u64     train seed (two's complement)
//	str     plant     (u16 length + bytes)
//	str     scenario  (u16 length + bytes)
//	str     policy    (u16 length + bytes)
//	poly    X, XI, X′ (each: u16 rows, u16 cols, f64×R×C A row-major, f64×R B)
//	u16     skip-chain length m, then m polytopes S₁…S_m
//	u8      policy kind (0 = none, 1 = snapshot); kind 1 adds:
//	        str label, u16 memory,
//	        u16 layer-size count, u16 per size,
//	        per layer: f64×(r·c) weights then f64×r biases,
//	        u16 state-bound length, f64s xCenter, f64s xScale,
//	        u16 disturbance-bound length, f64s wScale
//	u32     train stats episodes, u32 total steps,
//	f64     mean reward, f64 final epsilon, f64 final loss EMA,
//	u32     reward-history length + f64s
//	u32     CRC-32 (IEEE) of every preceding byte
//
// No optional fields, no padding: every valid artifact has exactly one
// encoding, so Encode(Decode(b)) == b (fuzz-pinned) and byte equality of
// encoded artifacts is a sound identity check.

const magic = "OICA"

const (
	policyKindNone     = 0
	policyKindSnapshot = 1
)

// EncodedSize returns the exact byte length Encode will produce.
func (a *Artifact) EncodedSize() int {
	n := 4 + 2 + 2 + 2 + 2 + 4 + 4 + 8 +
		2 + len(a.Meta.Plant) + 2 + len(a.Meta.Scenario) + 2 + len(a.Meta.Policy) +
		poly.EncodedBinarySize(a.Sets.X) + poly.EncodedBinarySize(a.Sets.XI) + poly.EncodedBinarySize(a.Sets.XPrime) +
		2
	for _, s := range a.Chain {
		n += poly.EncodedBinarySize(s)
	}
	n++ // policy kind
	if a.Policy != nil {
		n += 2 + len(a.Policy.Label) + 2 + 2 + 2*len(a.Policy.Sizes)
		for l := range a.Policy.Weights {
			n += 8 * (len(a.Policy.Weights[l]) + len(a.Policy.Biases[l]))
		}
		n += 2 + 16*len(a.Policy.XCenter) + 2 + 8*len(a.Policy.WScale)
	}
	n += 4 + 4 + 8 + 8 + 8 + 4 + 8*len(a.Train.RewardHistory) + 4
	return n
}

func appendF64s(buf []byte, vs []float64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// Encode serializes the artifact into the canonical binary form. The
// artifact must be valid (Validate), or an error is returned.
func Encode(a *Artifact) ([]byte, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, a.EncodedSize())
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(a.Version))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(a.NX))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(a.NU))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(a.Meta.Memory))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Meta.TrainEpisodes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Meta.TrainSteps))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.Meta.TrainSeed))
	for _, s := range []string{a.Meta.Plant, a.Meta.Scenario, a.Meta.Policy} {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	for _, p := range []*poly.Polytope{a.Sets.X, a.Sets.XI, a.Sets.XPrime} {
		buf = poly.AppendBinary(buf, p)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a.Chain)))
	for _, s := range a.Chain {
		buf = poly.AppendBinary(buf, s)
	}
	if a.Policy == nil {
		buf = append(buf, policyKindNone)
	} else {
		p := a.Policy
		buf = append(buf, policyKindSnapshot)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Label)))
		buf = append(buf, p.Label...)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(p.Memory))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Sizes)))
		for _, sz := range p.Sizes {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(sz))
		}
		for l := range p.Weights {
			buf = appendF64s(buf, p.Weights[l])
			buf = appendF64s(buf, p.Biases[l])
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.XCenter)))
		buf = appendF64s(buf, p.XCenter)
		buf = appendF64s(buf, p.XScale)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.WScale)))
		buf = appendF64s(buf, p.WScale)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Train.Episodes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Train.TotalSteps))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Train.MeanReward))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Train.FinalEpsilon))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Train.FinalLossEMA))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.Train.RewardHistory)))
	buf = appendF64s(buf, a.Train.RewardHistory)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// decoder is a bounds-checked cursor over an encoded artifact.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) need(n int) error {
	if len(d.b)-d.off < n {
		return fmt.Errorf("%w at offset %d (need %d bytes)", ErrTruncated, d.off, n)
	}
	return nil
}

func (d *decoder) u8() byte    { v := d.b[d.off]; d.off++; return v }
func (d *decoder) u16() uint16 { v := binary.LittleEndian.Uint16(d.b[d.off:]); d.off += 2; return v }
func (d *decoder) u32() uint32 { v := binary.LittleEndian.Uint32(d.b[d.off:]); d.off += 4; return v }
func (d *decoder) u64() uint64 { v := binary.LittleEndian.Uint64(d.b[d.off:]); d.off += 8; return v }

// f64s reads n floats, checking the byte count before allocating.
func (d *decoder) f64s(n int) ([]float64, error) {
	if err := d.need(8 * n); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(d.u64())
	}
	return out, nil
}

func (d *decoder) str() (string, error) {
	if err := d.need(2); err != nil {
		return "", err
	}
	n := int(d.u16())
	if n > MaxString {
		return "", fmt.Errorf("artifact: string length %d exceeds %d", n, MaxString)
	}
	if err := d.need(n); err != nil {
		return "", err
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s, nil
}

func (d *decoder) polytope() (*poly.Polytope, error) {
	p, n, err := poly.DecodeBinary(d.b[d.off:], MaxRows, MaxDim)
	if err != nil {
		return nil, err
	}
	d.off += n
	return p, nil
}

// Decode parses a canonical binary artifact. It is strict: unknown
// versions and policy kinds, out-of-range dimensions and counts, length
// mismatches, trailing bytes, and checksum failures are all rejected, and
// every length is checked against the remaining input before the
// corresponding allocation — a hostile input cannot make Decode allocate
// more than the input's own size justifies.
func Decode(b []byte) (*Artifact, error) {
	d := &decoder{b: b}
	if err := d.need(4 + 2); err != nil {
		return nil, err
	}
	if string(d.b[:4]) != magic {
		return nil, fmt.Errorf("%w %q", ErrBadMagic, d.b[:4])
	}
	d.off = 4
	a := &Artifact{Version: int(d.u16())}
	if a.Version != Version {
		return nil, fmt.Errorf("%w %d (want %d)", ErrBadVersion, a.Version, Version)
	}
	if err := d.need(2 + 2 + 2 + 4 + 4 + 8); err != nil {
		return nil, err
	}
	a.NX = int(d.u16())
	a.NU = int(d.u16())
	a.Meta.Memory = int(d.u16())
	a.Meta.TrainEpisodes = int(d.u32())
	a.Meta.TrainSteps = int(d.u32())
	a.Meta.TrainSeed = int64(d.u64())
	var err error
	if a.Meta.Plant, err = d.str(); err != nil {
		return nil, err
	}
	if a.Meta.Scenario, err = d.str(); err != nil {
		return nil, err
	}
	if a.Meta.Policy, err = d.str(); err != nil {
		return nil, err
	}
	if a.Sets.X, err = d.polytope(); err != nil {
		return nil, err
	}
	if a.Sets.XI, err = d.polytope(); err != nil {
		return nil, err
	}
	if a.Sets.XPrime, err = d.polytope(); err != nil {
		return nil, err
	}
	if err := d.need(2); err != nil {
		return nil, err
	}
	chainLen := int(d.u16())
	if chainLen > MaxChain {
		return nil, fmt.Errorf("artifact: skip chain length %d exceeds %d", chainLen, MaxChain)
	}
	for i := 0; i < chainLen; i++ {
		s, err := d.polytope()
		if err != nil {
			return nil, err
		}
		a.Chain = append(a.Chain, s)
	}
	if err := d.need(1); err != nil {
		return nil, err
	}
	switch kind := d.u8(); kind {
	case policyKindNone:
	case policyKindSnapshot:
		p := &Policy{}
		if p.Label, err = d.str(); err != nil {
			return nil, err
		}
		if err := d.need(2 + 2); err != nil {
			return nil, err
		}
		p.Memory = int(d.u16())
		nsizes := int(d.u16())
		if nsizes < 2 || nsizes > MaxLayers+1 {
			return nil, fmt.Errorf("artifact: policy has %d layer sizes outside [2, %d]", nsizes, MaxLayers+1)
		}
		if err := d.need(2 * nsizes); err != nil {
			return nil, err
		}
		p.Sizes = make([]int, nsizes)
		for i := range p.Sizes {
			p.Sizes[i] = int(d.u16())
			if p.Sizes[i] < 1 || p.Sizes[i] > MaxUnits {
				return nil, fmt.Errorf("artifact: policy layer %d size %d outside [1, %d]", i, p.Sizes[i], MaxUnits)
			}
		}
		for l := 0; l < nsizes-1; l++ {
			r, c := p.Sizes[l+1], p.Sizes[l]
			w, err := d.f64s(r * c)
			if err != nil {
				return nil, err
			}
			bs, err := d.f64s(r)
			if err != nil {
				return nil, err
			}
			p.Weights = append(p.Weights, w)
			p.Biases = append(p.Biases, bs)
		}
		if err := d.need(2); err != nil {
			return nil, err
		}
		nx := int(d.u16())
		if nx < 1 || nx > MaxDim {
			return nil, fmt.Errorf("artifact: policy state bounds length %d outside [1, %d]", nx, MaxDim)
		}
		if p.XCenter, err = d.f64s(nx); err != nil {
			return nil, err
		}
		if p.XScale, err = d.f64s(nx); err != nil {
			return nil, err
		}
		if err := d.need(2); err != nil {
			return nil, err
		}
		nw := int(d.u16())
		if nw < 1 || nw > MaxDim {
			return nil, fmt.Errorf("artifact: policy disturbance bounds length %d outside [1, %d]", nw, MaxDim)
		}
		if p.WScale, err = d.f64s(nw); err != nil {
			return nil, err
		}
		a.Policy = p
	default:
		return nil, fmt.Errorf("artifact: unknown policy kind %d", kind)
	}
	if err := d.need(4 + 4 + 8 + 8 + 8 + 4); err != nil {
		return nil, err
	}
	a.Train.Episodes = int(d.u32())
	a.Train.TotalSteps = int(d.u32())
	a.Train.MeanReward = math.Float64frombits(d.u64())
	a.Train.FinalEpsilon = math.Float64frombits(d.u64())
	a.Train.FinalLossEMA = math.Float64frombits(d.u64())
	nhist := int(d.u32())
	if nhist > MaxHistory {
		return nil, fmt.Errorf("artifact: reward history length %d exceeds %d", nhist, MaxHistory)
	}
	if nhist > 0 {
		if a.Train.RewardHistory, err = d.f64s(nhist); err != nil {
			return nil, err
		}
	}
	if len(d.b)-d.off != 4 {
		return nil, fmt.Errorf("artifact: %d trailing bytes after body", len(d.b)-d.off-4)
	}
	sum := d.u32()
	if got := crc32.ChecksumIEEE(b[:len(b)-4]); got != sum {
		return nil, fmt.Errorf("%w (stored %08x, computed %08x)", ErrChecksum, sum, got)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
