// Package artifact defines the persisted form of a compiled engine: the
// paper's offline synthesis products — safety-set polytopes (X, XI, X′),
// the consecutive-skip chain S₁…S_m, the trained skipping policy's
// Q-network with its normalization bounds, and the training statistics —
// keyed by the canonicalized engine-config fingerprint. An artifact is
// everything the online loop needs that is expensive to recompute;
// loading one skips set synthesis and DRL training entirely while
// reproducing the built engine's behavior bit-for-bit.
//
// The binary codec follows the internal/trace idiom exactly: "OICA"
// magic, fixed little-endian layout, no optional fields or padding (so
// every valid artifact has exactly one encoding and Encode∘Decode is the
// identity, fuzz-pinned), a CRC-32 (IEEE) trailer, and a strict decoder
// that checks every length against the remaining input before
// allocating.
//
// The package deliberately depends only on internal/poly and the
// standard library: the network is stored as flat layer sizes, weights,
// and biases, and pkg/oic maps those to live nn/plant types.
package artifact

import (
	"errors"
	"fmt"
	"math"

	"oic/internal/poly"
)

// Format limits. Decoders reject anything outside these bounds before
// allocating, so a hostile header cannot demand unbounded memory.
const (
	Version    = 1
	MaxDim     = 64      // state/input dimension bound (shared with trace)
	MaxRows    = 4096    // halfspace rows per polytope
	MaxChain   = 64      // consecutive-skip chain length
	MaxString  = 1024    // identifier strings
	MaxLayers  = 16      // network layers (size entries − 1)
	MaxUnits   = 4096    // units per network layer
	MaxMemory  = 64      // disturbance-memory window
	MaxHistory = 1 << 20 // reward-history entries
)

// Typed decode failures, wrapped with context by the codec. Callers
// distinguish a corrupt entry (checksum, truncation) from a foreign file
// (magic, version) without string matching.
var (
	ErrBadMagic   = errors.New("artifact: bad magic")
	ErrBadVersion = errors.New("artifact: unsupported version")
	ErrTruncated  = errors.New("artifact: truncated input")
	ErrChecksum   = errors.New("artifact: checksum mismatch")
)

// Meta is the engine-configuration fingerprint the artifact was compiled
// from, in canonical form (policy name defaulted, training budget cleared
// for non-learned policies, memory folded to 0 when it equals the
// default, scenario resolved to a concrete ID) — the same canonical form
// oic.Config.Fingerprint and the oicd engine cache key use, so library,
// server, and store agree on identity.
type Meta struct {
	Plant         string
	Scenario      string
	Policy        string
	Memory        int
	TrainEpisodes int
	TrainSteps    int
	TrainSeed     int64
}

// Sets are the compiled safety-set polytopes of DESIGN.md §2: the safe
// set X, the robust control invariant XI (Proposition 1), and the
// strengthened safe set X′ (Theorem 1).
type Sets struct {
	X      *poly.Polytope
	XI     *poly.Polytope
	XPrime *poly.Polytope
}

// Policy is the persisted skipping policy: the Q-network's parameters
// plus the exact normalization bounds its encoder used during training
// (plant.PolicySnapshot, flattened so this package needs no nn import).
type Policy struct {
	Label   string
	Memory  int
	Sizes   []int       // layer sizes, input first
	Weights [][]float64 // Weights[l] is Sizes[l+1]×Sizes[l], row-major
	Biases  [][]float64 // Biases[l] has Sizes[l+1] entries
	XCenter []float64
	XScale  []float64 // same length as XCenter
	WScale  []float64
}

// TrainStats mirrors rl.TrainStats in a dependency-free form.
type TrainStats struct {
	Episodes      int
	TotalSteps    int
	MeanReward    float64
	RewardHistory []float64
	FinalEpsilon  float64
	FinalLossEMA  float64
}

// Artifact is one compiled engine, ready to persist or load.
type Artifact struct {
	Version int
	NX, NU  int
	Meta    Meta
	Sets    Sets
	Chain   []*poly.Polytope // S₁ ⊇ … ⊇ S_m (may be shorter than the max budget)
	Policy  *Policy          // nil for policies with no learned state
	Train   TrainStats
}

func validString(name, s string) error {
	if s == "" {
		return fmt.Errorf("artifact: empty %s", name)
	}
	if len(s) > MaxString {
		return fmt.Errorf("artifact: %s length %d exceeds %d", name, len(s), MaxString)
	}
	return nil
}

func validPolytope(name string, p *poly.Polytope, nx int) error {
	if p == nil {
		return fmt.Errorf("artifact: nil polytope %s", name)
	}
	if p.Dim() != nx {
		return fmt.Errorf("artifact: polytope %s has dimension %d, want %d", name, p.Dim(), nx)
	}
	if p.NumRows() < 1 || p.NumRows() > MaxRows {
		return fmt.Errorf("artifact: polytope %s has %d rows outside [1, %d]", name, p.NumRows(), MaxRows)
	}
	return nil
}

// Validate checks structural consistency against the format limits — the
// same predicate the decoder enforces, so valid artifacts round-trip and
// invalid ones never encode.
func (a *Artifact) Validate() error {
	if a == nil {
		return errors.New("artifact: nil artifact")
	}
	if a.Version != Version {
		return fmt.Errorf("%w %d (want %d)", ErrBadVersion, a.Version, Version)
	}
	if a.NX < 1 || a.NX > MaxDim || a.NU < 1 || a.NU > MaxDim {
		return fmt.Errorf("artifact: dimensions %d×%d outside [1, %d]", a.NX, a.NU, MaxDim)
	}
	if err := validString("plant", a.Meta.Plant); err != nil {
		return err
	}
	if err := validString("scenario", a.Meta.Scenario); err != nil {
		return err
	}
	if err := validString("policy name", a.Meta.Policy); err != nil {
		return err
	}
	if a.Meta.Memory < 0 || a.Meta.Memory > MaxMemory {
		return fmt.Errorf("artifact: memory %d outside [0, %d]", a.Meta.Memory, MaxMemory)
	}
	if a.Meta.TrainEpisodes < 0 || a.Meta.TrainEpisodes > math.MaxUint32 ||
		a.Meta.TrainSteps < 0 || a.Meta.TrainSteps > math.MaxUint32 {
		return fmt.Errorf("artifact: training budget %d×%d outside uint32",
			a.Meta.TrainEpisodes, a.Meta.TrainSteps)
	}
	if err := validPolytope("X", a.Sets.X, a.NX); err != nil {
		return err
	}
	if err := validPolytope("XI", a.Sets.XI, a.NX); err != nil {
		return err
	}
	if err := validPolytope("X'", a.Sets.XPrime, a.NX); err != nil {
		return err
	}
	if len(a.Chain) > MaxChain {
		return fmt.Errorf("artifact: skip chain length %d exceeds %d", len(a.Chain), MaxChain)
	}
	for i, s := range a.Chain {
		if err := validPolytope(fmt.Sprintf("S_%d", i+1), s, a.NX); err != nil {
			return err
		}
	}
	if a.Policy != nil {
		if err := a.Policy.validate(); err != nil {
			return err
		}
	}
	return a.Train.validate()
}

func (p *Policy) validate() error {
	if err := validString("policy label", p.Label); err != nil {
		return err
	}
	if p.Memory < 1 || p.Memory > MaxMemory {
		return fmt.Errorf("artifact: policy memory %d outside [1, %d]", p.Memory, MaxMemory)
	}
	if len(p.Sizes) < 2 || len(p.Sizes) > MaxLayers+1 {
		return fmt.Errorf("artifact: policy has %d layer sizes outside [2, %d]", len(p.Sizes), MaxLayers+1)
	}
	for i, sz := range p.Sizes {
		if sz < 1 || sz > MaxUnits {
			return fmt.Errorf("artifact: policy layer %d size %d outside [1, %d]", i, sz, MaxUnits)
		}
	}
	if len(p.Weights) != len(p.Sizes)-1 || len(p.Biases) != len(p.Sizes)-1 {
		return fmt.Errorf("artifact: policy has %d weight and %d bias layers, want %d",
			len(p.Weights), len(p.Biases), len(p.Sizes)-1)
	}
	for l := 0; l < len(p.Sizes)-1; l++ {
		r, c := p.Sizes[l+1], p.Sizes[l]
		if len(p.Weights[l]) != r*c || len(p.Biases[l]) != r {
			return fmt.Errorf("artifact: policy layer %d shape mismatch (%d weights, %d biases, want %d×%d)",
				l, len(p.Weights[l]), len(p.Biases[l]), r, c)
		}
	}
	if p.Sizes[len(p.Sizes)-1] != 2 {
		return fmt.Errorf("artifact: policy has %d outputs, want 2 (skip/run)", p.Sizes[len(p.Sizes)-1])
	}
	if len(p.XCenter) < 1 || len(p.XCenter) > MaxDim || len(p.XScale) != len(p.XCenter) {
		return fmt.Errorf("artifact: policy state bounds length %d/%d invalid", len(p.XCenter), len(p.XScale))
	}
	if len(p.WScale) < 1 || len(p.WScale) > MaxDim {
		return fmt.Errorf("artifact: policy disturbance bounds length %d outside [1, %d]", len(p.WScale), MaxDim)
	}
	if want := len(p.XCenter) + p.Memory*len(p.WScale); p.Sizes[0] != want {
		return fmt.Errorf("artifact: policy input size %d does not match encoder (%d state + %d×%d disturbance)",
			p.Sizes[0], len(p.XCenter), p.Memory, len(p.WScale))
	}
	return nil
}

func (t *TrainStats) validate() error {
	if t.Episodes < 0 || t.Episodes > math.MaxUint32 || t.TotalSteps < 0 || t.TotalSteps > math.MaxUint32 {
		return fmt.Errorf("artifact: train stats counts %d/%d outside uint32", t.Episodes, t.TotalSteps)
	}
	if len(t.RewardHistory) > MaxHistory {
		return fmt.Errorf("artifact: reward history length %d exceeds %d", len(t.RewardHistory), MaxHistory)
	}
	for _, v := range []float64{t.MeanReward, t.FinalEpsilon, t.FinalLossEMA} {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("artifact: non-finite train statistic %v", v)
		}
	}
	return nil
}
