package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"oic/internal/fault"
)

// Ext is the on-disk artifact file extension.
const Ext = ".oica"

// Retry policy for transient read failures: a Get re-reads up to
// MaxReadRetries times with exponential backoff plus full jitter before
// giving up. Missing entries and decode failures are terminal outcomes,
// never retried.
const (
	MaxReadRetries = 3
	retryBaseDelay = 2 * time.Millisecond
)

// Store is a content-addressed on-disk artifact catalogue: one file per
// compiled engine, named by the hash of (config fingerprint, format
// version), so equivalent configurations share an entry and a format bump
// can never alias an old layout. All methods are safe for concurrent use;
// writes go through a temp-file rename so readers never observe a
// partial artifact.
type Store struct {
	dir    string
	faults *fault.Injector          // nil-safe deterministic fault injection
	sleep  func(d time.Duration)    // test seam; nil means time.Sleep

	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
	writes  atomic.Int64
	retries atomic.Int64
}

// StoreStats is a point-in-time snapshot of the store's accounting.
type StoreStats struct {
	Hits    int64 // Get found and decoded an entry
	Misses  int64 // Get found no entry
	Corrupt int64 // entries that failed decode/validation and were dropped
	Writes  int64 // successful Puts
	Retries int64 // transient read failures absorbed by the retry loop
}

// OpenStore opens (creating if needed) the artifact store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: OpenStore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: OpenStore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetFaults installs (or clears, with nil) a deterministic fault injector
// on the store's I/O sites (fault.SiteArtifactRead / SiteArtifactWrite).
// Call before handing the store to concurrent users.
func (s *Store) SetFaults(inj *fault.Injector) { s.faults = inj }

// Path returns the entry path for a config fingerprint under the current
// format version.
func (s *Store) Path(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint + "|v" + fmt.Sprint(Version)))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:16])+Ext)
}

// Get looks the fingerprint up. A missing entry returns (nil, nil) and
// counts a miss; a transient read failure is retried up to MaxReadRetries
// times with jittered exponential backoff (each absorbed failure counts a
// retry) before surfacing; a present entry that fails to decode or
// validate counts as corrupt, is removed so it cannot poison future
// lookups, and returns the decode error; a healthy entry counts a hit.
func (s *Store) Get(fingerprint string) (*Artifact, error) {
	path := s.Path(fingerprint)
	var b []byte
	for attempt := 0; ; attempt++ {
		var err error
		b, err = s.readFile(path)
		if err == nil {
			break
		}
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return nil, nil
		}
		if attempt >= MaxReadRetries {
			s.corrupt.Add(1)
			return nil, fmt.Errorf("artifact: store get (after %d retries): %w", attempt, err)
		}
		s.retries.Add(1)
		s.backoff(attempt)
	}
	a, err := Decode(b)
	if err != nil {
		s.corrupt.Add(1)
		os.Remove(path)
		return nil, fmt.Errorf("artifact: store entry %s: %w", filepath.Base(path), err)
	}
	s.hits.Add(1)
	return a, nil
}

// readFile is one read attempt through the fault-injection site.
func (s *Store) readFile(path string) ([]byte, error) {
	if err := s.faults.Hit(fault.SiteArtifactRead); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// backoff sleeps retryBaseDelay·2^attempt plus a full-jitter term of the
// same magnitude, decorrelating concurrent retriers.
func (s *Store) backoff(attempt int) {
	d := retryBaseDelay << attempt
	d += time.Duration(rand.Int63n(int64(d)))
	if s.sleep != nil {
		s.sleep(d)
		return
	}
	time.Sleep(d)
}

// MarkCorrupt drops an entry the caller found inconsistent after a
// successful decode (e.g. its embedded fingerprint does not match the
// lookup key) and counts it.
func (s *Store) MarkCorrupt(fingerprint string) {
	s.corrupt.Add(1)
	os.Remove(s.Path(fingerprint))
}

// Put encodes and persists the artifact under the fingerprint. The write
// is atomic (temp file + rename), so a concurrent Get sees either the old
// entry or the complete new one.
func (s *Store) Put(fingerprint string, a *Artifact) error {
	b, err := Encode(a)
	if err != nil {
		return err
	}
	if err := s.faults.Hit(fault.SiteArtifactWrite); err != nil {
		return fmt.Errorf("artifact: store put: %w", err)
	}
	path := s.Path(fingerprint)
	tmp, err := os.CreateTemp(s.dir, "put-*"+Ext+".tmp")
	if err != nil {
		return fmt.Errorf("artifact: store put: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: store put: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// Files lists the store's entry paths in sorted order (preload iterates
// this catalogue).
func (s *Store) Files() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: store list: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), Ext) {
			continue
		}
		out = append(out, filepath.Join(s.dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}

// Stats snapshots the store's hit/miss/corrupt/write counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Writes:  s.writes.Load(),
		Retries: s.retries.Load(),
	}
}
