package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// Ext is the on-disk artifact file extension.
const Ext = ".oica"

// Store is a content-addressed on-disk artifact catalogue: one file per
// compiled engine, named by the hash of (config fingerprint, format
// version), so equivalent configurations share an entry and a format bump
// can never alias an old layout. All methods are safe for concurrent use;
// writes go through a temp-file rename so readers never observe a
// partial artifact.
type Store struct {
	dir string

	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
	writes  atomic.Int64
}

// StoreStats is a point-in-time snapshot of the store's accounting.
type StoreStats struct {
	Hits    int64 // Get found and decoded an entry
	Misses  int64 // Get found no entry
	Corrupt int64 // entries that failed decode/validation and were dropped
	Writes  int64 // successful Puts
}

// OpenStore opens (creating if needed) the artifact store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: OpenStore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: OpenStore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the entry path for a config fingerprint under the current
// format version.
func (s *Store) Path(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint + "|v" + fmt.Sprint(Version)))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:16])+Ext)
}

// Get looks the fingerprint up. A missing entry returns (nil, nil) and
// counts a miss; a present entry that fails to decode or validate counts
// as corrupt, is removed so it cannot poison future lookups, and returns
// the decode error; a healthy entry counts a hit.
func (s *Store) Get(fingerprint string) (*Artifact, error) {
	path := s.Path(fingerprint)
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return nil, nil
		}
		s.corrupt.Add(1)
		return nil, fmt.Errorf("artifact: store get: %w", err)
	}
	a, err := Decode(b)
	if err != nil {
		s.corrupt.Add(1)
		os.Remove(path)
		return nil, fmt.Errorf("artifact: store entry %s: %w", filepath.Base(path), err)
	}
	s.hits.Add(1)
	return a, nil
}

// MarkCorrupt drops an entry the caller found inconsistent after a
// successful decode (e.g. its embedded fingerprint does not match the
// lookup key) and counts it.
func (s *Store) MarkCorrupt(fingerprint string) {
	s.corrupt.Add(1)
	os.Remove(s.Path(fingerprint))
}

// Put encodes and persists the artifact under the fingerprint. The write
// is atomic (temp file + rename), so a concurrent Get sees either the old
// entry or the complete new one.
func (s *Store) Put(fingerprint string, a *Artifact) error {
	b, err := Encode(a)
	if err != nil {
		return err
	}
	path := s.Path(fingerprint)
	tmp, err := os.CreateTemp(s.dir, "put-*"+Ext+".tmp")
	if err != nil {
		return fmt.Errorf("artifact: store put: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: store put: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// Files lists the store's entry paths in sorted order (preload iterates
// this catalogue).
func (s *Store) Files() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: store list: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), Ext) {
			continue
		}
		out = append(out, filepath.Join(s.dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}

// Stats snapshots the store's hit/miss/corrupt/write counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Writes:  s.writes.Load(),
	}
}
