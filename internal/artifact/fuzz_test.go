package artifact

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeArtifact hammers the strict decoder with mutated inputs,
// seeded with the golden corpus (real encoded engines) and a valid
// synthetic artifact. Properties: Decode never panics and never accepts
// an input it cannot reproduce — every accepted input validates and
// re-encodes to the identical bytes (canonical form), so the fuzzer
// proves Encode∘Decode = id over the whole accepted language.
func FuzzDecodeArtifact(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("testdata", "golden", "*"+Ext))
	for _, path := range seeds {
		if b, err := os.ReadFile(path); err == nil {
			f.Add(b)
		}
	}
	if b, err := Encode(sample(true)); err == nil {
		f.Add(b)
	}
	if b, err := Encode(sample(false)); err == nil {
		f.Add(b)
	}
	f.Add([]byte("OICA"))
	f.Add([]byte("OICA\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := Decode(b)
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("decoded artifact fails validation: %v", err)
		}
		b2, err := Encode(a)
		if err != nil {
			t.Fatalf("decoded artifact fails to re-encode: %v", err)
		}
		if string(b2) != string(b) {
			t.Fatalf("non-canonical input accepted: re-encoding differs (%d vs %d bytes)", len(b2), len(b))
		}
	})
}
