package artifact_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"oic/internal/artifact"
	"oic/pkg/oic"

	// Register the case studies.
	_ "oic/internal/acc"
	_ "oic/internal/orbit"
	_ "oic/internal/thermo"
)

// The golden artifact corpus pins the wire format across PRs: one
// encoded engine per (plant, policy) under testdata/golden (shared with
// FuzzDecodeArtifact's seed corpus). The conformance test decodes each,
// requires the canonical re-encoding to reproduce the committed bytes
// exactly, and requires oic.LoadEngine to accept it — any codec change,
// set-synthesis change, or training change trips it.
//
// Regenerate after an *intentional* format or numerical change with:
//
//	go test ./internal/artifact -run TestGoldenArtifacts -update
var updateGolden = flag.Bool("update", false, "regenerate golden artifacts")

const goldenDir = "testdata/golden"

// goldenConfigs mirrors pkg/oic's golden-trace cases, so the artifact
// corpus and the trace corpus pin the same six engines.
var goldenConfigs = []struct {
	name string
	cfg  oic.Config
}{
	{"acc-always-run", oic.Config{Plant: "acc", Policy: oic.PolicyAlwaysRun}},
	{"acc-drl", oic.Config{Plant: "acc", Policy: oic.PolicyDRL, Train: oic.TrainConfig{Episodes: 24, Steps: 40, Seed: 5}}},
	{"thermo-always-run", oic.Config{Plant: "thermo", Policy: oic.PolicyAlwaysRun}},
	{"thermo-drl", oic.Config{Plant: "thermo", Policy: oic.PolicyDRL, Train: oic.TrainConfig{Episodes: 24, Steps: 40, Seed: 5}}},
	{"orbit-always-run", oic.Config{Plant: "orbit", Policy: oic.PolicyAlwaysRun}},
	{"orbit-drl", oic.Config{Plant: "orbit", Policy: oic.PolicyDRL, Train: oic.TrainConfig{Episodes: 24, Steps: 40, Seed: 5}}},
}

func goldenPath(name string) string { return filepath.Join(goldenDir, name+artifact.Ext) }

func TestGoldenArtifacts(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, gc := range goldenConfigs {
		t.Run(gc.name, func(t *testing.T) {
			if *updateGolden {
				eng, err := oic.NewEngine(gc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				a, err := eng.Artifact()
				if err != nil {
					t.Fatal(err)
				}
				b, err := artifact.Encode(a)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(gc.name), b, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes, chain S_1..S_%d)", goldenPath(gc.name), len(b), len(a.Chain))
				return
			}
			b, err := os.ReadFile(goldenPath(gc.name))
			if err != nil {
				t.Fatalf("reading golden artifact (regenerate with -update): %v", err)
			}
			a, err := artifact.Decode(b)
			if err != nil {
				t.Fatalf("decoding golden artifact: %v", err)
			}
			// Canonical form: the committed bytes are the only encoding.
			b2, err := artifact.Encode(a)
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != string(b2) {
				t.Errorf("re-encoding differs from committed bytes (%d vs %d)", len(b2), len(b))
			}
			// The fingerprint inverts to the canonical recording config.
			if got, want := oic.ConfigFromArtifact(a).Fingerprint(), gc.cfg.Fingerprint(); got != want {
				t.Errorf("fingerprint %q, want %q", got, want)
			}
			// And the artifact reconstructs a serving engine.
			eng, err := oic.LoadEngine(a)
			if err != nil {
				t.Fatalf("LoadEngine: %v", err)
			}
			if eng.PolicyName() == "" || eng.ScenarioID() == "" {
				t.Error("loaded engine is missing identity")
			}
		})
	}
}
