package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"oic/internal/mat"
)

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{3, 8, 2}, rng)
	out := m.Forward(mat.Vec{0.1, -0.2, 0.5})
	if len(out) != 2 {
		t.Fatalf("output dim = %d", len(out))
	}
}

func TestForwardDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP([]int{2, 4, 1}, rng)
	x := mat.Vec{0.3, -0.7}
	a := m.Forward(x)
	b := m.Forward(x)
	if !a.Equal(b, 0) {
		t.Error("forward pass not deterministic")
	}
}

func TestReLUActivation(t *testing.T) {
	// Hand-built network: single hidden unit with ReLU.
	m := &MLP{
		Sizes:   []int{1, 1, 1},
		Weights: []*mat.Mat{mat.FromRows([][]float64{{1}}), mat.FromRows([][]float64{{1}})},
		Biases:  []mat.Vec{{0}, {0}},
	}
	if got := m.Forward(mat.Vec{2})[0]; got != 2 {
		t.Errorf("f(2) = %v, want 2", got)
	}
	if got := m.Forward(mat.Vec{-2})[0]; got != 0 {
		t.Errorf("f(-2) = %v, want 0 (ReLU)", got)
	}
}

// TestGradientCheck verifies backprop against central finite differences on
// a scalar loss L = Σ out².
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{3, 5, 4, 2}, rng)
	x := mat.Vec{0.4, -0.3, 0.9}

	loss := func() float64 {
		out := m.Forward(x)
		s := 0.0
		for _, v := range out {
			s += v * v
		}
		return s
	}
	// Analytic gradient: dL/dout = 2·out.
	g := NewGrads(m)
	out := m.Forward(x)
	m.Accumulate(g, x, out.Scale(2))

	const h = 1e-6
	check := func(param *float64, analytic float64, where string) {
		orig := *param
		*param = orig + h
		lp := loss()
		*param = orig - h
		lm := loss()
		*param = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("%s: numeric %v vs analytic %v", where, numeric, analytic)
		}
	}
	for l := range m.Weights {
		for i := range m.Weights[l].Data {
			if i%3 != 0 { // spot-check a third of the entries
				continue
			}
			check(&m.Weights[l].Data[i], g.Weights[l].Data[i], "weight")
		}
		for i := range m.Biases[l] {
			check(&m.Biases[l][i], g.Biases[l][i], "bias")
		}
	}
}

func TestAdamConvergesOnRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP([]int{1, 16, 1}, rng)
	opt := NewAdam(m, 0.01)
	g := NewGrads(m)

	target := func(x float64) float64 { return math.Sin(3 * x) }
	sample := func() (mat.Vec, float64) {
		x := rng.Float64()*2 - 1
		return mat.Vec{x}, target(x)
	}
	mse := func() float64 {
		s := 0.0
		for i := 0; i < 200; i++ {
			x := -1 + 2*float64(i)/199
			d := m.Forward(mat.Vec{x})[0] - target(x)
			s += d * d
		}
		return s / 200
	}

	before := mse()
	for step := 0; step < 3000; step++ {
		g.Zero()
		for b := 0; b < 16; b++ {
			x, y := sample()
			out := m.Forward(x)
			m.Accumulate(g, x, mat.Vec{2 * (out[0] - y) / 16})
		}
		opt.Step(m, g)
	}
	after := mse()
	if after > before/10 || after > 0.05 {
		t.Errorf("Adam failed to fit: MSE %v -> %v", before, after)
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP([]int{2, 3, 1}, rng)
	c := m.Clone()
	x := mat.Vec{0.5, -0.5}
	if !m.Forward(x).Equal(c.Forward(x), 0) {
		t.Fatal("clone differs")
	}
	// Mutating the clone must not affect the original.
	c.Weights[0].Data[0] += 1
	if m.Forward(x).Equal(c.Forward(x), 1e-12) {
		t.Error("clone aliases original parameters")
	}
	m.CopyFrom(c)
	if !m.Forward(x).Equal(c.Forward(x), 0) {
		t.Error("CopyFrom did not synchronize parameters")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP([]int{3, 7, 2}, rng)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back MLP
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	x := mat.Vec{0.1, 0.2, -0.3}
	if !m.Forward(x).Equal(back.Forward(x), 0) {
		t.Error("round-tripped network computes differently")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var m MLP
	if err := json.Unmarshal([]byte(`{"sizes":[2,3],"weights":[[1,2]],"biases":[[0,0,0]]}`), &m); err == nil {
		t.Error("corrupt shape accepted")
	}
}
