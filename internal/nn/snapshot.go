package nn

import (
	"fmt"

	"oic/internal/mat"
)

// Snapshot is a stable, storage-friendly copy of an MLP's parameters:
// layer sizes plus flat row-major weight matrices and bias vectors. It is
// the exchange format between a live network and persisted artifacts
// (internal/artifact); unlike the MLP itself it has no behavior and no
// shared storage, so it can cross package and process boundaries safely.
type Snapshot struct {
	Sizes   []int
	Weights [][]float64 // Weights[l] is Sizes[l+1]×Sizes[l], row-major
	Biases  [][]float64 // Biases[l] has Sizes[l+1] entries
}

// Snapshot returns a deep copy of the network's parameters. The returned
// snapshot shares no storage with the model, so training the model after
// the call leaves the snapshot untouched.
func (m *MLP) Snapshot() *Snapshot {
	s := &Snapshot{Sizes: append([]int(nil), m.Sizes...)}
	for l := range m.Weights {
		s.Weights = append(s.Weights, append([]float64(nil), m.Weights[l].Data...))
		s.Biases = append(s.Biases, append([]float64(nil), m.Biases[l]...))
	}
	return s
}

// Validate checks the snapshot's internal shape consistency: at least an
// input and an output layer, one weight matrix and bias vector per layer
// transition, and per-layer lengths matching the declared sizes.
func (s *Snapshot) Validate() error {
	if s == nil {
		return fmt.Errorf("nn: nil snapshot")
	}
	if len(s.Sizes) < 2 {
		return fmt.Errorf("nn: snapshot has %d sizes, need at least 2", len(s.Sizes))
	}
	if len(s.Weights) != len(s.Sizes)-1 || len(s.Biases) != len(s.Sizes)-1 {
		return fmt.Errorf("nn: snapshot has %d weight and %d bias layers, want %d",
			len(s.Weights), len(s.Biases), len(s.Sizes)-1)
	}
	for l := 0; l < len(s.Sizes)-1; l++ {
		r, c := s.Sizes[l+1], s.Sizes[l]
		if r < 1 || c < 1 {
			return fmt.Errorf("nn: snapshot layer %d has non-positive size %d×%d", l, r, c)
		}
		if len(s.Weights[l]) != r*c || len(s.Biases[l]) != r {
			return fmt.Errorf("nn: snapshot layer %d shape mismatch (%d weights, %d biases, want %d×%d)",
				l, len(s.Weights[l]), len(s.Biases[l]), r, c)
		}
	}
	return nil
}

// FromSnapshot reconstructs an MLP from a snapshot. The restored network
// computes bit-identical forward passes to the network the snapshot was
// taken from (same float64 parameters, same evaluation order), which is
// what makes persisted DRL policies behaviorally equal to trained ones.
func FromSnapshot(s *Snapshot) (*MLP, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := &MLP{Sizes: append([]int(nil), s.Sizes...)}
	for l := 0; l < len(s.Sizes)-1; l++ {
		r, c := s.Sizes[l+1], s.Sizes[l]
		w := mat.New(r, c)
		copy(w.Data, s.Weights[l])
		m.Weights = append(m.Weights, w)
		m.Biases = append(m.Biases, append(mat.Vec(nil), s.Biases[l]...))
	}
	return m, nil
}
