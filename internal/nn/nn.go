// Package nn implements the small dense neural networks used by the deep
// reinforcement learning skipping policy: multi-layer perceptrons with ReLU
// hidden activations and linear outputs, trained with backpropagation and
// the Adam optimizer. Everything is float64 and single-threaded; the
// Q-networks in this repository are tiny (a few thousand parameters), so
// clarity and determinism win over throughput.
package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"oic/internal/mat"
)

// MLP is a fully connected network: sizes[0] inputs, sizes[len-1] outputs,
// ReLU after every hidden layer, linear output layer.
type MLP struct {
	Sizes   []int
	Weights []*mat.Mat // Weights[l] is sizes[l+1] × sizes[l]
	Biases  []mat.Vec  // Biases[l] has sizes[l+1] entries
}

// NewMLP builds a network with He-initialized weights drawn from rng.
func NewMLP(sizes []int, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP: need at least input and output sizes")
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for l := 0; l < len(sizes)-1; l++ {
		w := mat.New(sizes[l+1], sizes[l])
		std := math.Sqrt(2 / float64(sizes[l]))
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64() * std
		}
		m.Weights = append(m.Weights, w)
		m.Biases = append(m.Biases, make(mat.Vec, sizes[l+1]))
	}
	return m
}

// NumLayers returns the number of weight layers.
func (m *MLP) NumLayers() int { return len(m.Weights) }

// Forward evaluates the network on x.
func (m *MLP) Forward(x mat.Vec) mat.Vec {
	h := x
	for l := 0; l < m.NumLayers(); l++ {
		h = m.Weights[l].MulVec(h).Add(m.Biases[l])
		if l < m.NumLayers()-1 {
			for i, v := range h {
				if v < 0 {
					h[i] = 0
				}
			}
		}
	}
	return h
}

// forwardCache evaluates the network and returns the pre-activation inputs
// of every layer (acts[0] = x, acts[l] = input to layer l) plus the output.
func (m *MLP) forwardCache(x mat.Vec) (acts []mat.Vec, out mat.Vec) {
	acts = make([]mat.Vec, m.NumLayers())
	h := x
	for l := 0; l < m.NumLayers(); l++ {
		acts[l] = h
		h = m.Weights[l].MulVec(h).Add(m.Biases[l])
		if l < m.NumLayers()-1 {
			for i, v := range h {
				if v < 0 {
					h[i] = 0
				}
			}
		}
	}
	return acts, h
}

// Grads accumulates parameter gradients with the same shapes as the model.
type Grads struct {
	Weights []*mat.Mat
	Biases  []mat.Vec
}

// NewGrads returns zeroed gradients shaped like m.
func NewGrads(m *MLP) *Grads {
	g := &Grads{}
	for l := 0; l < m.NumLayers(); l++ {
		g.Weights = append(g.Weights, mat.New(m.Weights[l].R, m.Weights[l].C))
		g.Biases = append(g.Biases, make(mat.Vec, len(m.Biases[l])))
	}
	return g
}

// Zero resets all gradient entries.
func (g *Grads) Zero() {
	for l := range g.Weights {
		for i := range g.Weights[l].Data {
			g.Weights[l].Data[i] = 0
		}
		for i := range g.Biases[l] {
			g.Biases[l][i] = 0
		}
	}
}

// Accumulate backpropagates dLoss/dOut for input x and adds the parameter
// gradients into g.
func (m *MLP) Accumulate(g *Grads, x, gradOut mat.Vec) {
	acts, _ := m.forwardCache(x)
	// Recompute post-activation outputs per layer for the backward pass.
	// acts[l] is the input to layer l, which is already post-activation.
	delta := gradOut.Clone()
	for l := m.NumLayers() - 1; l >= 0; l-- {
		in := acts[l]
		w := m.Weights[l]
		gw := g.Weights[l]
		for i := 0; i < w.R; i++ {
			di := delta[i]
			if di == 0 {
				continue
			}
			g.Biases[l][i] += di
			row := gw.Data[i*gw.C : (i+1)*gw.C]
			for j := range in {
				row[j] += di * in[j]
			}
		}
		if l == 0 {
			break
		}
		// delta for the previous layer: Wᵀ·delta gated by ReLU(in > 0).
		prev := make(mat.Vec, w.C)
		for j := 0; j < w.C; j++ {
			s := 0.0
			for i := 0; i < w.R; i++ {
				s += w.At(i, j) * delta[i]
			}
			prev[j] = s
		}
		for j := range prev {
			if in[j] <= 0 {
				prev[j] = 0
			}
		}
		delta = prev
	}
}

// Clone returns a deep copy (used for DQN target networks).
func (m *MLP) Clone() *MLP {
	out := &MLP{Sizes: append([]int(nil), m.Sizes...)}
	for l := 0; l < m.NumLayers(); l++ {
		out.Weights = append(out.Weights, m.Weights[l].Clone())
		out.Biases = append(out.Biases, m.Biases[l].Clone())
	}
	return out
}

// CopyFrom overwrites this network's parameters with src's.
func (m *MLP) CopyFrom(src *MLP) {
	if len(m.Weights) != len(src.Weights) {
		panic("nn: CopyFrom: layer count mismatch")
	}
	for l := range m.Weights {
		copy(m.Weights[l].Data, src.Weights[l].Data)
		copy(m.Biases[l], src.Biases[l])
	}
}

// mlpJSON is the serialized form of an MLP.
type mlpJSON struct {
	Sizes   []int       `json:"sizes"`
	Weights [][]float64 `json:"weights"`
	Biases  [][]float64 `json:"biases"`
}

// MarshalJSON implements json.Marshaler.
func (m *MLP) MarshalJSON() ([]byte, error) {
	j := mlpJSON{Sizes: m.Sizes}
	for l := range m.Weights {
		j.Weights = append(j.Weights, append([]float64(nil), m.Weights[l].Data...))
		j.Biases = append(j.Biases, append([]float64(nil), m.Biases[l]...))
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var j mlpJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Sizes) < 2 || len(j.Weights) != len(j.Sizes)-1 || len(j.Biases) != len(j.Sizes)-1 {
		return fmt.Errorf("nn: UnmarshalJSON: inconsistent shape")
	}
	m.Sizes = j.Sizes
	m.Weights = nil
	m.Biases = nil
	for l := 0; l < len(j.Sizes)-1; l++ {
		r, c := j.Sizes[l+1], j.Sizes[l]
		if len(j.Weights[l]) != r*c || len(j.Biases[l]) != r {
			return fmt.Errorf("nn: UnmarshalJSON: layer %d shape mismatch", l)
		}
		w := mat.New(r, c)
		copy(w.Data, j.Weights[l])
		m.Weights = append(m.Weights, w)
		m.Biases = append(m.Biases, append(mat.Vec(nil), j.Biases[l]...))
	}
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba) over an MLP's parameters.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	t  int
	mw []*mat.Mat
	vw []*mat.Mat
	mb []mat.Vec
	vb []mat.Vec
}

// NewAdam returns an optimizer for model with the given learning rate and
// standard moment defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
func NewAdam(model *MLP, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	for l := 0; l < model.NumLayers(); l++ {
		a.mw = append(a.mw, mat.New(model.Weights[l].R, model.Weights[l].C))
		a.vw = append(a.vw, mat.New(model.Weights[l].R, model.Weights[l].C))
		a.mb = append(a.mb, make(mat.Vec, len(model.Biases[l])))
		a.vb = append(a.vb, make(mat.Vec, len(model.Biases[l])))
	}
	return a
}

// Step applies one Adam update of model parameters along -grads.
func (a *Adam) Step(model *MLP, grads *Grads) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for l := range model.Weights {
		wd := model.Weights[l].Data
		gd := grads.Weights[l].Data
		md := a.mw[l].Data
		vd := a.vw[l].Data
		for i := range wd {
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*gd[i]
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*gd[i]*gd[i]
			wd[i] -= a.LR * (md[i] / c1) / (math.Sqrt(vd[i]/c2) + a.Eps)
		}
		bb := model.Biases[l]
		gb := grads.Biases[l]
		mb := a.mb[l]
		vb := a.vb[l]
		for i := range bb {
			mb[i] = a.Beta1*mb[i] + (1-a.Beta1)*gb[i]
			vb[i] = a.Beta2*vb[i] + (1-a.Beta2)*gb[i]*gb[i]
			bb[i] -= a.LR * (mb[i] / c1) / (math.Sqrt(vb[i]/c2) + a.Eps)
		}
	}
}
