package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateMetrics is a strict Prometheus text-format checker used by the
// scrape-validity tests. It verifies that every line parses, no family is
// declared twice, no sample (name+labels) repeats, and that every family
// declared as a histogram has cumulative buckets ending in +Inf with a
// _count equal to the +Inf bucket and a _sum present, per label subset.
func ValidateMetrics(body []byte) error {
	types := map[string]string{} // family -> declared type
	seen := map[string]bool{}    // full sample line identity (name{labels})
	type sample struct {
		labels string // labels minus le, for grouping histogram series
		le     string
		value  float64
	}
	buckets := map[string][]sample{} // family -> bucket samples
	sums := map[string]map[string]float64{}
	counts := map[string]map[string]float64{}

	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			fam, typ := parts[2], parts[3]
			if prev, ok := types[fam]; ok {
				return fmt.Errorf("line %d: duplicate TYPE declaration for family %s (already %s)", lineNo, fam, prev)
			}
			types[fam] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		}
		name, labels, val, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			return fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true

		fam, kind := histFamily(name, types)
		switch kind {
		case "bucket":
			le, rest := splitLE(labels)
			if le == "" {
				return fmt.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
			}
			buckets[fam] = append(buckets[fam], sample{labels: rest, le: le, value: val})
		case "sum":
			if sums[fam] == nil {
				sums[fam] = map[string]float64{}
			}
			sums[fam][labels] = val
		case "count":
			if counts[fam] == nil {
				counts[fam] = map[string]float64{}
			}
			counts[fam][labels] = val
		default:
			if _, ok := types[name]; !ok {
				return fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		series := map[string][]sample{}
		for _, b := range buckets[fam] {
			series[b.labels] = append(series[b.labels], b)
		}
		if len(series) == 0 {
			return fmt.Errorf("histogram %s has no buckets", fam)
		}
		for labels, bs := range series {
			sort.SliceStable(bs, func(i, j int) bool { return leValue(bs[i].le) < leValue(bs[j].le) })
			prev := -1.0
			for _, b := range bs {
				if b.value < prev {
					return fmt.Errorf("histogram %s{%s}: buckets not cumulative at le=%s (%g < %g)", fam, labels, b.le, b.value, prev)
				}
				prev = b.value
			}
			last := bs[len(bs)-1]
			if last.le != "+Inf" {
				return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", fam, labels)
			}
			c, ok := counts[fam][labels]
			if !ok {
				return fmt.Errorf("histogram %s{%s}: missing _count", fam, labels)
			}
			if c != last.value {
				return fmt.Errorf("histogram %s{%s}: _count %g != +Inf bucket %g", fam, labels, c, last.value)
			}
			if _, ok := sums[fam][labels]; !ok {
				return fmt.Errorf("histogram %s{%s}: missing _sum", fam, labels)
			}
		}
	}
	return nil
}

// histFamily maps a sample name to its histogram family and role
// ("bucket", "sum", "count") if the trimmed name is a declared histogram.
func histFamily(name string, types map[string]string) (string, string) {
	for suffix, kind := range map[string]string{"_bucket": "bucket", "_sum": "sum", "_count": "count"} {
		if fam, ok := strings.CutSuffix(name, suffix); ok && types[fam] == "histogram" {
			return fam, kind
		}
	}
	return name, ""
}

// parseSample splits `name{labels} value` (labels optional) and parses
// the value.
func parseSample(line string) (name, labels string, val float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("malformed labels in %q", line)
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		parts := strings.Fields(line)
		if len(parts) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = parts[0], parts[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name, labels, v, nil
}

// splitLE pulls the le label out of a label string, returning its value
// and the remaining labels (order preserved).
func splitLE(labels string) (le, rest string) {
	var kept []string
	for _, part := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(part, "le="); ok {
			le = strings.Trim(v, `"`)
			continue
		}
		kept = append(kept, part)
	}
	return le, strings.Join(kept, ",")
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// leValue orders bucket bounds numerically with +Inf last.
func leValue(le string) float64 {
	if le == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return math.Inf(1)
	}
	return v
}
