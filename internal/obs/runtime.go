package obs

import (
	"fmt"
	"io"
	"runtime"
)

// WriteRuntimeMetrics appends Go runtime gauges shared by every serving
// binary: live goroutines, cumulative GC pause, and heap in use.
// runtime.ReadMemStats is a stop-the-world call, but only at scrape time.
func WriteRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP go_goroutines number of live goroutines\n# TYPE go_goroutines gauge\ngo_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP go_gc_pause_seconds_total cumulative GC stop-the-world pause time\n# TYPE go_gc_pause_seconds_total counter\ngo_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(w, "# HELP go_heap_inuse_bytes bytes in in-use heap spans\n# TYPE go_heap_inuse_bytes gauge\ngo_heap_inuse_bytes %d\n", ms.HeapInuse)
}
