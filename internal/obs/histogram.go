// Package obs is the zero-dependency observability core shared by oicd,
// oicd-router, and the journal: log-linear latency histograms rendered in
// Prometheus text format, structured slog loggers, cross-node trace IDs,
// and phase-timed spans with a bounded in-memory ring.
//
// The histogram hot path (Observe) is lock-free and allocation-free: a
// linear scan over a fixed bucket table plus two atomic adds. That keeps
// it safe to call from the session-step fast path without perturbing the
// latencies it measures.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with atomic counters. Buckets are
// non-cumulative internally and rendered cumulatively (Prometheus
// convention) at scrape time. A nil *Histogram is a valid no-op receiver
// so callers (e.g. journal.Options) can leave hooks unset.
type Histogram struct {
	name    string
	help    string
	bounds  []float64 // upper bounds, strictly increasing; +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram with the given strictly increasing
// upper bounds. The +Inf bucket is implicit.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be sorted: " + name)
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. Zero allocations; safe for concurrent use;
// no-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// formatBound renders a bucket upper bound the way Prometheus text format
// expects ("0.001", "+Inf").
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Write renders the histogram as a full Prometheus text-format family:
// HELP/TYPE headers, cumulative buckets, _sum and _count.
func (h *Histogram) Write(w io.Writer) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
}

// PhaseHistogram is a histogram family labeled by a fixed "phase" label
// value set, for per-phase operation timings
// (e.g. oicd_migration_phase_seconds{phase="freeze"}). The phase set is
// fixed at construction so Observe stays allocation-free.
type PhaseHistogram struct {
	name   string
	help   string
	phases []string
	hists  []*Histogram
}

// NewPhaseHistogram builds one sub-histogram per phase, all sharing the
// same bounds.
func NewPhaseHistogram(name, help string, phases []string, bounds []float64) *PhaseHistogram {
	ph := &PhaseHistogram{name: name, help: help, phases: phases}
	for _, p := range phases {
		ph.hists = append(ph.hists, NewHistogram(name, help, bounds))
		_ = p
	}
	return ph
}

// Observe records a value under the named phase. Unknown phases are
// dropped (the phase set is a closed vocabulary). No-op on nil.
func (ph *PhaseHistogram) Observe(phase string, v float64) {
	if ph == nil {
		return
	}
	for i, p := range ph.phases {
		if p == phase {
			ph.hists[i].Observe(v)
			return
		}
	}
}

// Write renders the family: one HELP/TYPE header, then every phase's
// cumulative buckets, _sum, and _count with a phase label.
func (ph *PhaseHistogram) Write(w io.Writer) {
	if ph == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", ph.name, ph.help, ph.name)
	for i, p := range ph.phases {
		h := ph.hists[i]
		var cum uint64
		for j, b := range h.bounds {
			cum += h.counts[j].Load()
			fmt.Fprintf(w, "%s_bucket{phase=%q,le=%q} %d\n", ph.name, p, formatBound(b), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{phase=%q,le=\"+Inf\"} %d\n", ph.name, p, cum)
		fmt.Fprintf(w, "%s_sum{phase=%q} %g\n", ph.name, p, h.Sum())
		fmt.Fprintf(w, "%s_count{phase=%q} %d\n", ph.name, p, cum)
	}
}

// LatencyBuckets is the shared log-linear layout for request/operation
// latencies: 1-2-5 steps per decade from 1µs to 10s. 22 buckets.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 2e-6, 5e-6,
		1e-5, 2e-5, 5e-5,
		1e-4, 2e-4, 5e-4,
		1e-3, 2e-3, 5e-3,
		1e-2, 2e-2, 5e-2,
		1e-1, 2e-1, 5e-1,
		1, 2, 5, 10,
	}
}

// MarginBuckets is the layout for the tick deadline margin
// (deadline − elapsed): symmetric around zero so overruns (negative
// margin) are as visible as slack. 19 buckets.
func MarginBuckets() []float64 {
	return []float64{
		-1, -0.1, -0.01, -1e-3, -1e-4, -1e-5, 0,
		1e-5, 1e-4, 1e-3, 2e-3, 5e-3,
		1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1,
	}
}
