package obs

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewHistogram("x_seconds", "test", LatencyBuckets())
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(3.7e-4) })
	if allocs != 0 {
		t.Fatalf("Observe allocated %v times per call, want 0", allocs)
	}
}

func TestHistogramBucketsAndRender(t *testing.T) {
	h := NewHistogram("x_seconds", "test latencies", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.0005+0.005+0.005+0.05+5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	var buf bytes.Buffer
	h.Write(&buf)
	out := buf.String()
	for _, want := range []string{
		`x_seconds_bucket{le="0.001"} 1`,
		`x_seconds_bucket{le="0.01"} 3`,
		`x_seconds_bucket{le="0.1"} 4`,
		`x_seconds_bucket{le="+Inf"} 5`,
		`x_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if err := ValidateMetrics(buf.Bytes()); err != nil {
		t.Fatalf("ValidateMetrics: %v", err)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.Write(&bytes.Buffer{})
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should be empty")
	}
	var ph *PhaseHistogram
	ph.Observe("x", 1)
	ph.Write(&bytes.Buffer{})
}

func TestPhaseHistogramRender(t *testing.T) {
	ph := NewPhaseHistogram("op_phase_seconds", "per-phase", []string{"a", "b"}, []float64{0.01, 0.1})
	ph.Observe("a", 0.005)
	ph.Observe("b", 0.5)
	ph.Observe("zzz", 1) // unknown phase dropped
	var buf bytes.Buffer
	ph.Write(&buf)
	out := buf.String()
	for _, want := range []string{
		`op_phase_seconds_bucket{phase="a",le="0.01"} 1`,
		`op_phase_seconds_bucket{phase="b",le="+Inf"} 1`,
		`op_phase_seconds_count{phase="a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if err := ValidateMetrics(buf.Bytes()); err != nil {
		t.Fatalf("ValidateMetrics: %v", err)
	}
}

func TestValidateMetricsCatchesBrokenScrapes(t *testing.T) {
	cases := map[string]string{
		"non-cumulative buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"count mismatch":         "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 9\n",
		"missing sum":            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
		"missing inf":            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"duplicate family":       "# TYPE g gauge\n# TYPE g counter\ng 1\n",
		"duplicate sample":       "# TYPE g gauge\ng 1\ng 2\n",
		"undeclared sample":      "mystery_metric 4\n",
	}
	for name, body := range cases {
		if err := ValidateMetrics([]byte(body)); err == nil {
			t.Errorf("%s: validator accepted broken scrape", name)
		}
	}
}

func TestSpanRingAndPhases(t *testing.T) {
	ring := NewSpanRing(2)
	ph := NewPhaseHistogram("mig_phase_seconds", "t", []string{"freeze", "export"}, LatencyBuckets())
	sp := StartSpan("migration", "s1", "trace-1", ring, ph)
	sp.Phase("freeze")
	time.Sleep(time.Millisecond)
	sp.Phase("export")
	time.Sleep(time.Millisecond)
	sp.End(nil)

	sp2 := StartSpan("failover", "s2", "", ring, nil)
	sp2.Phase("land")
	sp2.End(errors.New("boom"))

	got := ring.Snapshot()
	if len(got) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(got))
	}
	if got[0].Op != "failover" || got[0].Err != "boom" {
		t.Fatalf("newest span wrong: %+v", got[0])
	}
	mig := got[1]
	if mig.Op != "migration" || mig.TraceID != "trace-1" || len(mig.Phases) != 2 {
		t.Fatalf("migration span wrong: %+v", mig)
	}
	for _, p := range mig.Phases {
		if p.Elapsed <= 0 {
			t.Fatalf("phase %s has nonpositive duration", p.Name)
		}
	}
	// Overflow: a third span evicts the oldest.
	StartSpan("recovery", "", "", ring, nil).End(nil)
	got = ring.Snapshot()
	if len(got) != 2 || got[0].Op != "recovery" || got[1].Op != "failover" {
		t.Fatalf("ring eviction wrong: %+v", got)
	}
	// Nil receivers are safe.
	var nilSpan *Span
	nilSpan.Phase("x")
	nilSpan.End(nil)
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "trace_id", "abc123")
	if !strings.Contains(buf.String(), `"trace_id":"abc123"`) {
		t.Fatalf("json log missing field: %s", buf.String())
	}
	buf.Reset()
	lg, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept")
	if strings.Contains(buf.String(), "dropped") || !strings.Contains(buf.String(), "kept") {
		t.Fatalf("level filtering wrong: %s", buf.String())
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
	if NopLogger().Handler().Enabled(context.Background(), slog.LevelError) {
		t.Fatal("NopLogger should discard")
	}
}

func TestTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || a == b {
		t.Fatalf("trace IDs not unique 16-hex: %q %q", a, b)
	}
	ctx := WithTraceID(context.Background(), a)
	if got := TraceIDFrom(ctx); got != a {
		t.Fatalf("TraceIDFrom = %q, want %q", got, a)
	}
	if TraceIDFrom(context.Background()) != "" {
		t.Fatal("empty context should have no trace ID")
	}
}

func TestRuntimeMetrics(t *testing.T) {
	var buf bytes.Buffer
	WriteRuntimeMetrics(&buf)
	out := buf.String()
	for _, want := range []string{"go_goroutines ", "go_gc_pause_seconds_total ", "go_heap_inuse_bytes "} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime metrics missing %q:\n%s", want, out)
		}
	}
	if err := ValidateMetrics(buf.Bytes()); err != nil {
		t.Fatalf("ValidateMetrics: %v", err)
	}
}
