package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// TraceHeader carries the request's trace ID between router and shard and
// back to the client on every /v1/* response.
const TraceHeader = "X-Oic-Trace-Id"

type traceKey struct{}

// NewTraceID mints a 16-hex-char random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively unreachable; a fixed ID is
		// still a valid (if uncorrelatable) trace ID.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom returns the context's trace ID, or "" if none was attached.
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
