package obs

import (
	"sync"
	"time"
)

// PhaseRecord is one timed phase inside a span.
type PhaseRecord struct {
	Name    string        `json:"name"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// SpanRecord is a completed multi-phase operation, as served by
// GET /v1/debug/ops.
type SpanRecord struct {
	Op      string        `json:"op"`                 // "migration", "failover", "recovery"
	ID      string        `json:"id,omitempty"`       // session/subject identifier
	TraceID string        `json:"trace_id,omitempty"` // correlating request trace, if any
	Start   time.Time     `json:"start"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Err     string        `json:"error,omitempty"`
	Phases  []PhaseRecord `json:"phases"`
}

// SpanRing keeps the most recent completed spans in a bounded ring.
// Spans are rare (migrations, failovers, boots), so a mutex is fine.
type SpanRing struct {
	mu   sync.Mutex
	cap  int
	recs []SpanRecord
	next int
	full bool
}

// NewSpanRing builds a ring holding up to capacity spans (min 1).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{cap: capacity, recs: make([]SpanRecord, capacity)}
}

func (r *SpanRing) push(rec SpanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recs[r.next] = rec
	r.next = (r.next + 1) % r.cap
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained spans, newest first.
func (r *SpanRing) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = r.cap
	}
	out := make([]SpanRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.recs[((r.next-1-i)%r.cap+r.cap)%r.cap])
	}
	return out
}

// Span times a multi-phase operation. Phase(name) closes the previous
// phase and opens the next; End closes the last phase, records the span
// into the ring, and feeds each phase duration into hist (both optional).
type Span struct {
	rec       SpanRecord
	ring      *SpanRing
	hist      *PhaseHistogram
	phaseName string
	phaseAt   time.Time
}

// StartSpan begins a span for op. ring and hist may be nil.
func StartSpan(op, id, traceID string, ring *SpanRing, hist *PhaseHistogram) *Span {
	return &Span{
		rec:  SpanRecord{Op: op, ID: id, TraceID: traceID, Start: time.Now()},
		ring: ring,
		hist: hist,
	}
}

func (s *Span) closePhase(now time.Time) {
	if s.phaseName == "" {
		return
	}
	d := now.Sub(s.phaseAt)
	s.rec.Phases = append(s.rec.Phases, PhaseRecord{Name: s.phaseName, Elapsed: d})
	s.hist.Observe(s.phaseName, d.Seconds())
	s.phaseName = ""
}

// Phase closes the current phase (if any) and starts a new one.
func (s *Span) Phase(name string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.closePhase(now)
	s.phaseName = name
	s.phaseAt = now
}

// End closes the span and pushes it to the ring. err may be nil.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	now := time.Now()
	s.closePhase(now)
	s.rec.Elapsed = now.Sub(s.rec.Start)
	if err != nil {
		s.rec.Err = err.Error()
	}
	s.ring.push(s.rec)
}
