package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a *slog.Logger writing to w at the given level in the
// given format ("text" or "json"). Level is one of debug|info|warn|error
// (case-insensitive); both arguments reject anything else so flag typos
// surface at startup rather than silently logging at the wrong level.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default when
// a Config.Logger is left nil, so library code can log unconditionally.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
