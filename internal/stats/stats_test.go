package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2, 75: 4}
	for p, want := range cases {
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	if got := Percentile([]float64{1, 2}, 50); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("interpolated median = %v", got)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0, 10, 20, 30})
	for _, x := range []float64{-5, 0, 5, 9.999, 10, 25, 30, 99} {
		h.Add(x)
	}
	if h.Underflow != 1 {
		t.Errorf("underflow = %d", h.Underflow)
	}
	if h.Overflow != 2 { // 30 and 99
		t.Errorf("overflow = %d", h.Overflow)
	}
	want := []int{3, 1, 1} // {0,5,9.999}, {10}, {25}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramEdgeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nonincreasing edges")
		}
	}()
	NewHistogram([]float64{0, 0})
}

func TestRenderGrouped(t *testing.T) {
	a := NewHistogram([]float64{0, 10, 20})
	b := NewHistogram([]float64{0, 10, 20})
	a.Add(5)
	a.Add(15)
	b.Add(-1)
	out := RenderGrouped([]string{"alpha", "beta"}, []*Histogram{a, b}, 20)
	for _, want := range []string{"alpha", "beta", "0–10", "10–20", "< 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries([]string{"Ex.1", "Ex.2"}, []float64{5, 10}, "%", 10)
	if !strings.Contains(out, "Ex.1") || !strings.Contains(out, "10.00%") {
		t.Errorf("render output:\n%s", out)
	}
	// The larger value must have the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "█") <= strings.Count(lines[0], "█") {
		t.Error("bar lengths not proportional")
	}
}

func TestBinLabel(t *testing.T) {
	h := NewHistogram([]float64{0, 10, 20})
	if h.BinLabel(0) != "0–10" {
		t.Errorf("label = %q", h.BinLabel(0))
	}
}
