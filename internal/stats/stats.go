// Package stats provides the small descriptive-statistics toolkit used by
// the experiment harness: summaries, percentiles, and fixed-bin histograms
// with ASCII rendering for terminal reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation (n−1)
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero value.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		s.Mean += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram counts samples into len(Edges)−1 bins [Edges[i], Edges[i+1]),
// with explicit underflow and overflow counters.
type Histogram struct {
	Edges     []float64
	Counts    []int
	Underflow int
	Overflow  int
}

// NewHistogram returns a histogram over the given strictly increasing bin
// edges.
func NewHistogram(edges []float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: NewHistogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: NewHistogram edges must increase")
		}
	}
	return &Histogram{Edges: append([]float64(nil), edges...), Counts: make([]int, len(edges)-1)}
}

// Add counts one sample.
func (h *Histogram) Add(x float64) {
	if x < h.Edges[0] {
		h.Underflow++
		return
	}
	if x >= h.Edges[len(h.Edges)-1] {
		h.Overflow++
		return
	}
	i := sort.SearchFloat64s(h.Edges, x)
	// SearchFloat64s returns the insertion point; bin index is point−1
	// except when x equals an edge exactly.
	if i < len(h.Edges) && h.Edges[i] == x {
		h.Counts[i]++
		return
	}
	h.Counts[i-1]++
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinLabel renders bin i as "lo–hi".
func (h *Histogram) BinLabel(i int) string {
	return fmt.Sprintf("%g–%g", h.Edges[i], h.Edges[i+1])
}

// RenderGrouped renders one or more histograms with identical edges as a
// grouped ASCII bar chart (one row per bin, one bar per series). width is
// the maximum bar length in characters.
func RenderGrouped(names []string, hists []*Histogram, width int) string {
	if len(names) != len(hists) || len(hists) == 0 {
		panic("stats: RenderGrouped: names/hists mismatch")
	}
	edges := hists[0].Edges
	for _, h := range hists[1:] {
		if len(h.Edges) != len(edges) {
			panic("stats: RenderGrouped: histograms must share edges")
		}
	}
	if width <= 0 {
		width = 40
	}
	maxCount := 1
	for _, h := range hists {
		for _, c := range h.Counts {
			if c > maxCount {
				maxCount = c
			}
		}
		if h.Underflow > maxCount {
			maxCount = h.Underflow
		}
	}
	var b strings.Builder
	bar := func(c int) string {
		n := c * width / maxCount
		return strings.Repeat("█", n)
	}
	anyUnder := false
	for _, h := range hists {
		if h.Underflow > 0 {
			anyUnder = true
		}
	}
	if anyUnder {
		fmt.Fprintf(&b, "%12s\n", "< "+fmt.Sprint(edges[0]))
		for s, h := range hists {
			fmt.Fprintf(&b, "  %-18s %4d %s\n", names[s], h.Underflow, bar(h.Underflow))
		}
	}
	for i := 0; i < len(edges)-1; i++ {
		fmt.Fprintf(&b, "%12s\n", hists[0].BinLabel(i))
		for s, h := range hists {
			fmt.Fprintf(&b, "  %-18s %4d %s\n", names[s], h.Counts[i], bar(h.Counts[i]))
		}
	}
	return b.String()
}

// RenderSeries renders labeled values as an ASCII bar chart, scaling bars
// to the maximum absolute value.
func RenderSeries(labels []string, values []float64, unit string, width int) string {
	if len(labels) != len(values) {
		panic("stats: RenderSeries: labels/values mismatch")
	}
	if width <= 0 {
		width = 40
	}
	maxAbs := 1e-12
	for _, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := int(math.Abs(v) / maxAbs * float64(width))
		fmt.Fprintf(&b, "%-14s %8.2f%s %s\n", labels[i], v, unit, strings.Repeat("█", n))
	}
	return b.String()
}
