// Package mip implements a small mixed-integer linear programming solver
// via best-first branch and bound over LP relaxations from package lp.
//
// It exists to solve the paper's model-based skipping problem (Eq. 6): a
// horizon-H plan over binary skip decisions z(k) with big-M linearized
// actuation u(k) = z(k)·κ(x(k)). Those programs have tens of binaries at
// most, well within reach of straightforward branch and bound.
package mip

import (
	"container/heap"
	"fmt"
	"math"

	"oic/internal/lp"
)

// Status reports the outcome of a MIP solve.
type Status int

// Solve outcomes.
const (
	Optimal    Status = iota
	Infeasible        // no integer-feasible point exists
	NodeLimit         // search truncated; Solution may hold an incumbent
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Problem is a linear program in which a subset of the variables is
// restricted to integer values.
type Problem struct {
	base    *lp.Problem
	integer []bool
}

// Solution is the result of a MIP solve. X and Objective are valid when
// Status is Optimal, or when Status is NodeLimit and HasIncumbent is true.
type Solution struct {
	Status       Status
	HasIncumbent bool
	X            []float64
	Objective    float64
	Nodes        int // number of branch-and-bound nodes explored
}

// NewProblem returns a MIP with n continuous free variables.
func NewProblem(n int) *Problem {
	return &Problem{base: lp.NewProblem(n), integer: make([]bool, n)}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.base.NumVars() }

// SetObjective sets the minimized cost vector.
func (p *Problem) SetObjective(c []float64) { p.base.SetObjective(c) }

// AddConstraint appends a linear constraint row.
func (p *Problem) AddConstraint(coeffs []float64, sense lp.Sense, rhs float64) {
	p.base.AddConstraint(coeffs, sense, rhs)
}

// SetBounds restricts variable i to [lo, hi].
func (p *Problem) SetBounds(i int, lo, hi float64) { p.base.SetBounds(i, lo, hi) }

// SetInteger marks variable i as integral.
func (p *Problem) SetInteger(i int) { p.integer[i] = true }

// SetBinary marks variable i as binary (integral in [0, 1]).
func (p *Problem) SetBinary(i int) {
	p.integer[i] = true
	p.base.SetBounds(i, 0, 1)
}

const intTol = 1e-6

type node struct {
	bound float64 // LP relaxation objective (lower bound)
	// extra bounds applied on the path from the root
	lo, hi map[int]float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Options tunes the branch-and-bound search.
type Options struct {
	MaxNodes int     // 0 means the default (50000)
	Gap      float64 // absolute optimality gap for pruning (default 1e-9)
}

// Solve runs best-first branch and bound and returns the best integer
// solution. The problem is not modified.
func (p *Problem) Solve(opts Options) *Solution {
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 50000
	}
	gap := opts.Gap
	if gap == 0 {
		gap = 1e-9
	}

	// Every node shares one compiled solver: branching bounds are applied
	// as parametric variable bounds (intersected with the base bounds, so
	// they always tighten), which warm-starts each node LP from the last
	// solved basis instead of recompiling the clone from scratch.
	nvars := p.base.NumVars()
	solver := lp.NewSolver(p.base)
	baseLo := make([]float64, nvars)
	baseHi := make([]float64, nvars)
	for i := 0; i < nvars; i++ {
		baseLo[i], baseHi[i] = p.base.Bounds(i)
	}
	lo := make([]float64, nvars)
	hi := make([]float64, nvars)
	solveNode := func(n *node) *lp.Solution {
		copy(lo, baseLo)
		copy(hi, baseHi)
		for i, v := range n.lo {
			if v > lo[i] {
				lo[i] = v
			}
		}
		for i, v := range n.hi {
			if v < hi[i] {
				hi[i] = v
			}
		}
		if sol, ok := solver.SolveParams(nil, lo, hi); ok {
			// The solver owns sol.X; nodes outlive the next solve.
			out := &lp.Solution{Status: sol.Status, Objective: sol.Objective}
			if sol.Status == lp.Optimal {
				out.X = append([]float64(nil), sol.X...)
			}
			return out
		}
		// Branching changed a variable's boundedness class (a previously
		// unbounded integer picked up its first finite bound): fall back
		// to the historical clone-plus-rows path for this node.
		q := p.base.Clone()
		for i, v := range n.lo {
			row := make([]float64, nvars)
			row[i] = 1
			q.AddConstraint(row, lp.GE, v)
		}
		for i, v := range n.hi {
			row := make([]float64, nvars)
			row[i] = 1
			q.AddConstraint(row, lp.LE, v)
		}
		return q.Solve()
	}

	root := &node{lo: map[int]float64{}, hi: map[int]float64{}}
	rootSol := solveNode(root)
	if rootSol.Status == lp.Infeasible {
		return &Solution{Status: Infeasible, Nodes: 1}
	}
	if rootSol.Status != lp.Optimal {
		// An unbounded relaxation with binaries can still be integer
		// unbounded; we report it as infeasible-for-our-purposes since the
		// callers in this repository always pose bounded problems.
		return &Solution{Status: Infeasible, Nodes: 1}
	}
	root.bound = rootSol.Objective

	h := &nodeHeap{root}
	heap.Init(h)
	sols := map[*node]*lp.Solution{root: rootSol}

	best := math.Inf(1)
	var bestX []float64
	nodes := 0

	for h.Len() > 0 {
		if nodes >= maxNodes {
			st := &Solution{Status: NodeLimit, Nodes: nodes}
			if bestX != nil {
				st.HasIncumbent = true
				st.X = bestX
				st.Objective = best
			}
			return st
		}
		n := heap.Pop(h).(*node)
		nodes++
		if n.bound >= best-gap {
			continue // pruned by bound
		}
		sol := sols[n]
		delete(sols, n)
		if sol == nil {
			sol = solveNode(n)
			if sol.Status != lp.Optimal || sol.Objective >= best-gap {
				continue
			}
		}

		// Find the most fractional integer variable.
		branch := -1
		worst := intTol
		for i, isInt := range p.integer {
			if !isInt {
				continue
			}
			f := math.Abs(sol.X[i] - math.Round(sol.X[i]))
			if f > worst {
				worst = f
				branch = i
			}
		}
		if branch == -1 {
			// Integer feasible.
			if sol.Objective < best {
				best = sol.Objective
				bestX = roundIntegers(sol.X, p.integer)
			}
			continue
		}

		val := sol.X[branch]
		down := &node{lo: cloneMap(n.lo), hi: cloneMap(n.hi)}
		down.hi[branch] = math.Floor(val)
		up := &node{lo: cloneMap(n.lo), hi: cloneMap(n.hi)}
		up.lo[branch] = math.Ceil(val)
		for _, child := range []*node{down, up} {
			cs := solveNode(child)
			if cs.Status != lp.Optimal {
				continue
			}
			if cs.Objective >= best-gap {
				continue
			}
			child.bound = cs.Objective
			sols[child] = cs
			heap.Push(h, child)
		}
	}

	if bestX == nil {
		return &Solution{Status: Infeasible, Nodes: nodes}
	}
	return &Solution{Status: Optimal, HasIncumbent: true, X: bestX, Objective: best, Nodes: nodes}
}

func cloneMap(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func roundIntegers(x []float64, integer []bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for i, isInt := range integer {
		if isInt {
			out[i] = math.Round(out[i])
		}
	}
	return out
}
