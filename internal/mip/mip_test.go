package mip

import (
	"math"
	"math/rand"
	"testing"

	"oic/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binaries.
	// Optimum: a=1, c=1 (weight 3), b could fit? 2+3+1=6 > 5, so a+c = 8;
	// a+b = 9 with weight 5 — feasible and better.
	p := NewProblem(3)
	p.SetObjective([]float64{-5, -4, -3})
	for i := 0; i < 3; i++ {
		p.SetBinary(i)
	}
	p.AddConstraint([]float64{2, 3, 1}, lp.LE, 5)
	sol := p.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-9)) > 1e-6 {
		t.Errorf("objective = %v, want -9 (x=%v)", sol.Objective, sol.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min -x s.t. 2x <= 7, x integer >= 0 → x = 3.
	p := NewProblem(1)
	p.SetObjective([]float64{-1})
	p.SetInteger(0)
	p.SetBounds(0, 0, math.Inf(1))
	p.AddConstraint([]float64{2}, lp.LE, 7)
	sol := p.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[0]-3) > 1e-6 {
		t.Errorf("x = %v, want 3", sol.X[0])
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 2x = 1 with binary x has a fractional LP solution but no integer one.
	p := NewProblem(1)
	p.SetBinary(0)
	p.AddConstraint([]float64{2}, lp.EQ, 1)
	if sol := p.Solve(Options{}); sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestLPInfeasibleRoot(t *testing.T) {
	p := NewProblem(1)
	p.SetBinary(0)
	p.AddConstraint([]float64{1}, lp.GE, 2)
	if sol := p.Solve(Options{}); sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min y s.t. y >= 1.5 - z, y >= z - 0.5, z binary, y free.
	// z=1 → y >= 0.5; z=0 → y >= 1.5. Optimum y = 0.5.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 0})
	p.SetBinary(1)
	p.AddConstraint([]float64{1, 1}, lp.GE, 1.5)
	p.AddConstraint([]float64{1, -1}, lp.GE, -0.5)
	sol := p.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-0.5) > 1e-6 {
		t.Errorf("objective = %v, want 0.5 (x=%v)", sol.Objective, sol.X)
	}
	if math.Abs(sol.X[1]-1) > 1e-6 {
		t.Errorf("z = %v, want 1", sol.X[1])
	}
}

func TestBigMIndicator(t *testing.T) {
	// Force u = z·5 with big-M rows: |u - 5| <= M(1-z), |u| <= M·z.
	// min -u → wants u = 5 with z = 1.
	const M = 100
	p := NewProblem(2) // u, z
	p.SetObjective([]float64{-1, 0})
	p.SetBinary(1)
	p.AddConstraint([]float64{1, M}, lp.LE, 5+M)  // u - 5 <= M(1-z)
	p.AddConstraint([]float64{-1, M}, lp.LE, M-5) // -(u-5) <= M(1-z)
	p.AddConstraint([]float64{1, -M}, lp.LE, 0)   // u <= Mz
	p.AddConstraint([]float64{-1, -M}, lp.LE, 0)  // -u <= Mz
	p.SetBounds(0, -10, 10)
	sol := p.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[0]-5) > 1e-6 || math.Abs(sol.X[1]-1) > 1e-6 {
		t.Errorf("x = %v, want u=5, z=1", sol.X)
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem that needs branching, with MaxNodes=1 forcing truncation.
	p := NewProblem(2)
	p.SetObjective([]float64{-1, -1})
	p.SetInteger(0)
	p.SetInteger(1)
	p.SetBounds(0, 0, 3.5)
	p.SetBounds(1, 0, 3.5)
	p.AddConstraint([]float64{1, 2}, lp.LE, 6.3)
	sol := p.Solve(Options{MaxNodes: 1})
	if sol.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", sol.Status)
	}
}

// TestRandomBinaryAgainstBruteForce enumerates all binary assignments of
// random small MIPs and compares the optimum.
func TestRandomBinaryAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nb := 2 + rng.Intn(4) // binaries
		type rowT struct {
			a   []float64
			rhs float64
		}
		var rows []rowT
		for i := 0; i < 2+rng.Intn(3); i++ {
			a := make([]float64, nb)
			for j := range a {
				a[j] = math.Round(rng.NormFloat64() * 3)
			}
			rows = append(rows, rowT{a: a, rhs: rng.Float64() * 4})
		}
		c := make([]float64, nb)
		for j := range c {
			c[j] = math.Round(rng.NormFloat64() * 5)
		}

		p := NewProblem(nb)
		p.SetObjective(c)
		for i := 0; i < nb; i++ {
			p.SetBinary(i)
		}
		for _, r := range rows {
			p.AddConstraint(r.a, lp.LE, r.rhs)
		}
		sol := p.Solve(Options{})

		best := math.Inf(1)
		for mask := 0; mask < 1<<nb; mask++ {
			ok := true
			obj := 0.0
			for _, r := range rows {
				s := 0.0
				for j := 0; j < nb; j++ {
					if mask&(1<<j) != 0 {
						s += r.a[j]
					}
				}
				if s > r.rhs+1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for j := 0; j < nb; j++ {
				if mask&(1<<j) != 0 {
					obj += c[j]
				}
			}
			if obj < best {
				best = obj
			}
		}

		if math.IsInf(best, 1) {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: want infeasible, got %v", trial, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, brute force found %v", trial, sol.Status, best)
		}
		if math.Abs(sol.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: mip %v vs brute force %v (x=%v)", trial, sol.Objective, best, sol.X)
		}
	}
}
